// Benchmarks regenerating the paper's evaluation (DESIGN.md E1..E10).
// Each bench boots a fresh simulated system and performs b.N unit
// operations inside it; wall-clock ns/op is the host cost, and the
// "simcyc/op" metric is the simulated machine's cycle cost — the number
// that corresponds to what the paper measured on the MIPS R2000. Shapes
// (orderings, ratios, crossovers), not absolute values, are the
// reproduction target; cmd/benchtab renders the same drivers as the
// EXPERIMENTS.md tables.
package irix

import (
	"fmt"
	"testing"

	"repro/internal/kernel"
	"repro/internal/workload"
)

func cfg() kernel.Config { return workload.DefaultConfig() }

func report(b *testing.B, m workload.Metrics) {
	b.ReportMetric(m.CyclesPerOp(), "simcyc/op")
	if m.Shootdowns > 0 {
		b.ReportMetric(float64(m.Shootdowns)/float64(m.Ops), "shootdowns/op")
	}
}

// E1/E4 — process creation: sproc() vs fork() (§7: "the time for a sproc()
// system call is slightly less than a regular fork()"), plus the Mach
// thread baseline (§3: threads create ~10x faster than fork) and the
// non-VM-sharing sproc that pays fork-style copy-on-write setup.
func BenchmarkCreate(b *testing.B) {
	for _, kind := range []workload.CreateKind{
		workload.CreateFork, workload.CreateSproc,
		workload.CreateSprocNVM, workload.CreateThread,
	} {
		for _, pages := range []int{0, 32} {
			b.Run(fmt.Sprintf("%s/dirty=%dpages", kind, pages), func(b *testing.B) {
				report(b, workload.Creation(cfg(), kind, pages, b.N))
			})
		}
	}
}

// E2 (hot path) — demand-fault cost under the shared read lock as group
// size grows; "solo" is a plain process on its private pregion list.
func BenchmarkFault(b *testing.B) {
	for _, members := range []int{0, 1, 2, 4} {
		name := "solo"
		if members > 0 {
			name = fmt.Sprintf("group=%d", members)
		}
		b.Run(name, func(b *testing.B) {
			per := b.N
			if members > 0 {
				per = b.N/members + 1
			}
			report(b, workload.FaultScaling(cfg(), members, per))
		})
	}
}

// E2 (slow path) — region shrink with the synchronous machine-wide TLB
// shootdown (§6.2/§7: "the overhead for synchronizing virtual memory is
// negligible except when detaching or shrinking regions"), against the
// shootdown-free grow path.
func BenchmarkShrinkShootdown(b *testing.B) {
	b.Run("grow-only", func(b *testing.B) {
		report(b, workload.GrowOnly(cfg(), b.N))
	})
	for _, spinners := range []int{0, 3} {
		b.Run(fmt.Sprintf("shrink/spinners=%d", spinners), func(b *testing.B) {
			report(b, workload.ShrinkShootdown(cfg(), spinners, b.N))
		})
	}
}

// E3 — no penalty for normal processes (§7: "normal UNIX processes
// experience no penalty for the addition of share group support"): null
// syscall and open/close for a plain process vs a clean group member.
func BenchmarkSyscallOverhead(b *testing.B) {
	b.Run("getpid/plain", func(b *testing.B) {
		report(b, workload.SyscallNull(cfg(), false, b.N))
	})
	b.Run("getpid/member", func(b *testing.B) {
		report(b, workload.SyscallNull(cfg(), true, b.N))
	})
	b.Run("openclose/plain", func(b *testing.B) {
		report(b, workload.SyscallOpenClose(cfg(), false, false, b.N))
	})
	b.Run("openclose/member", func(b *testing.B) {
		report(b, workload.SyscallOpenClose(cfg(), true, false, b.N))
	})
}

// E8 — deferred attribute synchronization (§6.3): open/close while a
// sibling dirties the descriptor table every iteration, and full umask
// propagate-reconcile rounds across group sizes.
func BenchmarkAttrSync(b *testing.B) {
	b.Run("openclose/storm", func(b *testing.B) {
		report(b, workload.SyscallOpenClose(cfg(), true, true, b.N))
	})
	for _, members := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("umask-roundtrip/members=%d", members), func(b *testing.B) {
			m := workload.AttrSync(cfg(), members, b.N)
			report(b, m)
			b.ReportMetric(float64(m.Syncs)/float64(m.Ops), "syncs/op")
		})
	}
}

// E5 — data-passing bandwidth (§3): shared memory vs the queueing
// mechanisms, 4 KiB chunks.
func BenchmarkIPCBandwidth(b *testing.B) {
	for _, mech := range []workload.Mech{
		workload.MechShm, workload.MechPipe, workload.MechMsgq, workload.MechSocket,
	} {
		for _, chunk := range []int{256, 4096} {
			b.Run(fmt.Sprintf("%s/chunk=%d", mech, chunk), func(b *testing.B) {
				m := workload.IPCBandwidth(cfg(), mech, chunk, chunk*b.N)
				report(b, m)
				b.SetBytes(int64(chunk))
			})
		}
	}
}

// E6 — synchronization latency (§3): busy-wait vs kernel mechanisms,
// round-trip between two processes.
func BenchmarkSyncLatency(b *testing.B) {
	for _, mech := range []workload.SyncMech{
		workload.SyncSpin, workload.SyncSemop, workload.SyncPipe, workload.SyncSignal,
	} {
		b.Run(string(mech), func(b *testing.B) {
			report(b, workload.SyncLatency(cfg(), mech, b.N))
		})
	}
}

// E7 — the self-scheduling pool (§3): preallocated share-group workers
// against dynamic creation and pipe-fed workers, and the worker-count
// scaling curve on 4 CPUs.
func BenchmarkSelfSchedulingPool(b *testing.B) {
	const grain = 2000
	for _, mode := range []workload.PoolMode{
		workload.PoolSproc, workload.PoolForkPerTask, workload.PoolPipeWorkers,
	} {
		b.Run(string(mode)+"/workers=4", func(b *testing.B) {
			report(b, workload.Pool(cfg(), mode, 4, b.N, grain))
		})
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sproc-pool/workers=%d", w), func(b *testing.B) {
			report(b, workload.Pool(cfg(), workload.PoolSproc, w, b.N, grain))
		})
	}
}

// E10 — the §8 gang-scheduling extension (ablation): overcommitted
// spin-barrier groups with and without gang dispatch.
func BenchmarkGangScheduling(b *testing.B) {
	for _, gang := range []bool{false, true} {
		b.Run(fmt.Sprintf("gang=%v", gang), func(b *testing.B) {
			report(b, workload.GangBarrier(cfg(), gang, 4, 4, b.N, 600))
		})
	}
}

// MP hot-path scaling — the de-serialized substrate (per-CPU frame caches,
// per-CPU trace shards, per-CPU run queues with stealing) under storms that
// hammer exactly one substrate from 1..8 processors. The total operation
// count is fixed at b.N and split across the workers, so ns/op falling (or
// holding) as NCPU grows is the de-serialization paying off; a global-lock
// substrate shows ns/op rising with NCPU instead.
func BenchmarkHotPathScaling(b *testing.B) {
	ncpus := []int{1, 2, 4, 8}
	mpCfg := func(ncpu int) kernel.Config {
		c := cfg()
		c.NCPU = ncpu
		return c
	}
	for _, ncpu := range ncpus {
		b.Run(fmt.Sprintf("fault-storm/ncpu=%d", ncpu), func(b *testing.B) {
			per := b.N/ncpu + 1
			report(b, workload.FaultStorm(mpCfg(ncpu), ncpu, per))
		})
	}
	for _, ncpu := range ncpus {
		b.Run(fmt.Sprintf("resident-fault-storm/ncpu=%d", ncpu), func(b *testing.B) {
			per := b.N/ncpu + 1
			report(b, workload.ResidentFaultStorm(mpCfg(ncpu), ncpu, per))
		})
	}
	for _, ncpu := range ncpus {
		b.Run(fmt.Sprintf("create-storm/ncpu=%d", ncpu), func(b *testing.B) {
			per := b.N/ncpu + 1
			report(b, workload.CreateStorm(mpCfg(ncpu), ncpu, per))
		})
	}
	for _, ncpu := range ncpus {
		b.Run(fmt.Sprintf("trace-storm/ncpu=%d", ncpu), func(b *testing.B) {
			c := mpCfg(ncpu)
			c.TraceEvents = 4096
			per := b.N/ncpu + 1
			report(b, workload.TraceStorm(c, ncpu, per))
		})
	}
	for _, ncpu := range ncpus {
		b.Run(fmt.Sprintf("dispatch-storm/ncpu=%d", ncpu), func(b *testing.B) {
			procs := 2 * ncpu
			per := b.N/procs + 1
			report(b, workload.DispatchStorm(mpCfg(ncpu), procs, per))
		})
	}
}

// Ablations (DESIGN.md §6) — the designs the paper rejected, measured:
// an exclusive lock on the shared pregion list serializes every member's
// page fault; eager attribute pushing moves the whole propagation cost
// onto the updater's critical path.
func BenchmarkAblation(b *testing.B) {
	b.Run("fault-lock/shared-read", func(b *testing.B) {
		report(b, workload.FaultScaling(cfg(), 4, b.N/4+1))
	})
	b.Run("fault-lock/exclusive", func(b *testing.B) {
		c := cfg()
		c.ExclusiveVMLock = true
		report(b, workload.FaultScaling(c, 4, b.N/4+1))
	})
	b.Run("attr-sync/deferred", func(b *testing.B) {
		report(b, workload.AttrSync(cfg(), 4, b.N))
	})
	b.Run("attr-sync/eager", func(b *testing.B) {
		c := cfg()
		c.EagerAttrSync = true
		report(b, workload.AttrSync(c, 4, b.N))
	})
}
