package irix_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	irix "repro"
)

// The root tests exercise the repository's public surface the way the
// examples do: everything goes through package irix only.

func runSys(t *testing.T, cfg irix.Config, main irix.Main) *irix.System {
	t.Helper()
	sys := irix.New(cfg)
	sys.Start("main", main)
	done := make(chan struct{})
	go func() { sys.WaitIdle(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("system did not go idle")
	}
	return sys
}

func TestPublicAPIQuickstart(t *testing.T) {
	runSys(t, irix.Config{NCPU: 2}, func(c *irix.Ctx) {
		shm, err := c.Mmap(1)
		if err != nil {
			t.Errorf("Mmap: %v", err)
			return
		}
		lock := irix.Spinlock{VA: shm}
		lock.Init(c)
		const members, per = 3, 200
		for i := 0; i < members; i++ {
			c.Sproc("w", func(w *irix.Ctx, _ int64) {
				for n := 0; n < per; n++ {
					lock.Lock(w)
					v, _ := w.Load32(shm + 4)
					w.Store32(shm+4, v+1)
					lock.Unlock(w)
				}
			}, irix.PRSALL, int64(i))
		}
		for i := 0; i < members; i++ {
			c.Wait()
		}
		if v, _ := c.Load32(shm + 4); v != members*per {
			t.Errorf("counter = %d", v)
		}
	})
}

func TestPublicAPIFilesAndDirs(t *testing.T) {
	runSys(t, irix.Config{}, func(c *irix.Ctx) {
		if err := c.Mkdir("/data", 0o755); err != nil {
			t.Errorf("Mkdir: %v", err)
		}
		fd, err := c.Open("/data/report", irix.ORead|irix.OWrite|irix.OCreat, 0o644)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		if _, err := c.WriteString(fd, irix.DataBase, "findings"); err != nil {
			t.Errorf("WriteString: %v", err)
		}
		c.Lseek(fd, 0, irix.SeekSet)
		got, err := c.ReadString(fd, irix.DataBase+4096, 32)
		if err != nil || got != "findings" {
			t.Errorf("ReadString = (%q, %v)", got, err)
		}
		st, err := c.Stat("/data/report")
		if err != nil || st.Size != 8 {
			t.Errorf("Stat = (%+v, %v)", st, err)
		}
		if err := c.Close(fd); err != nil {
			t.Errorf("Close: %v", err)
		}
		if _, err := c.Stat("/missing"); !errors.Is(err, irix.ErrNotExist) {
			t.Errorf("Stat missing = %v", err)
		}
	})
}

func TestPublicAPIShareMaskSemantics(t *testing.T) {
	runSys(t, irix.Config{}, func(c *irix.Ctx) {
		var sawFd, sawMem atomic.Bool
		fd, _ := c.Creat("/shared", 0o644)
		c.Store32(irix.DataBase, 7)
		done := make(chan struct{})
		c.Sproc("fds-only", func(w *irix.Ctx, _ int64) {
			defer close(done)
			w.P.Mu.Lock()
			_, err := w.P.GetFd(fd)
			w.P.Mu.Unlock()
			sawFd.Store(err == nil)
			v, _ := w.Load32(irix.DataBase)
			sawMem.Store(v == 7)
			w.Store32(irix.DataBase, 8) // private COW write
		}, irix.PRSFDS, 0)
		<-done
		c.Wait()
		if !sawFd.Load() {
			t.Error("PR_SFDS child did not see the descriptor")
		}
		if !sawMem.Load() {
			t.Error("child did not see COW snapshot")
		}
		if v, _ := c.Load32(irix.DataBase); v != 7 {
			t.Errorf("non-VM child's write leaked: %d", v)
		}
	})
}

func TestPublicAPISignalsAndPipes(t *testing.T) {
	runSys(t, irix.Config{}, func(c *irix.Ctx) {
		r, w, err := c.Pipe()
		if err != nil {
			t.Errorf("Pipe: %v", err)
			return
		}
		pid, _ := c.Fork("child", func(cc *irix.Ctx) {
			cc.WriteString(w, irix.DataBase, "from child")
			cc.Pause() // until killed
		})
		got, err := c.ReadString(r, irix.DataBase, 16)
		if err != nil || got != "from child" {
			t.Errorf("pipe read = (%q, %v)", got, err)
		}
		c.Kill(pid, irix.SIGTERM)
		_, status, _ := c.Wait()
		if status != 128+irix.SIGTERM {
			t.Errorf("status = %d", status)
		}
	})
}

func TestPublicAPIMachTask(t *testing.T) {
	runSys(t, irix.Config{}, func(c *irix.Ctx) {
		task := irix.NewTask(c)
		for i := 0; i < 3; i++ {
			task.ThreadCreate(func(w *irix.Ctx, arg int64) {
				w.Add32(irix.DataBase, uint32(arg+1))
			}, int64(i))
		}
		task.Join(3)
		if v, _ := c.Load32(irix.DataBase); v != 6 {
			t.Errorf("task sum = %d", v)
		}
	})
}

func TestPublicAPINetAndExec(t *testing.T) {
	runSys(t, irix.Config{}, func(c *irix.Ctx) {
		l, err := c.NetListen("svc")
		if err != nil {
			t.Errorf("NetListen: %v", err)
			return
		}
		c.Fork("client", func(cc *irix.Ctx) {
			fd, err := cc.NetConnect("svc")
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			cc.WriteString(fd, irix.DataBase, "go")
			// Exec into a second image after the exchange.
			cc.Exec("second", func(n *irix.Ctx) {
				if n.P.InGroup() {
					t.Error("exec kept group membership")
				}
			})
		})
		fd, err := c.NetAccept(l)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		if got, _ := c.ReadString(fd, irix.DataBase, 8); got != "go" {
			t.Errorf("server got %q", got)
		}
		c.Wait()
	})
}

func TestPublicAPIUnshare(t *testing.T) {
	runSys(t, irix.Config{}, func(c *irix.Ctx) {
		done := make(chan struct{})
		c.Sproc("rebel", func(w *irix.Ctx, _ int64) {
			defer close(done)
			if err := w.Unshare(irix.PRSUMASK); err != nil {
				t.Errorf("Unshare: %v", err)
			}
		}, irix.PRSALL, 0)
		<-done
		c.Wait()
	})
}

// ExampleSystem demonstrates the basic programming model for godoc.
func ExampleSystem() {
	sys := irix.New(irix.Config{NCPU: 2})
	sys.Start("example", func(c *irix.Ctx) {
		shm, _ := c.Mmap(1)
		c.Sproc("adder", func(w *irix.Ctx, arg int64) {
			w.Add32(shm, uint32(arg))
		}, irix.PRSADDR, 42)
		c.Wait()
		v, _ := c.Load32(shm)
		fmt.Println("shared word:", v)
	})
	sys.WaitIdle()
	// Output: shared word: 42
}
