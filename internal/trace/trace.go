// Package trace is a bounded in-kernel event ring, in the spirit of the
// ktrace/par facilities that shipped with IRIX: subsystems append
// fixed-size events (process creation, dispatch, fault, shootdown, signal,
// share-group synchronization) and tools drain a consistent snapshot. The
// ring is lock-protected and loss-counting: when full it overwrites the
// oldest events and records how many were dropped.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind classifies an event.
type Kind uint8

const (
	EvNone      Kind = iota
	EvCreate         // process created (Arg: child pid, Aux: creation kind)
	EvExit           // process exited (Arg: status)
	EvDispatch       // process placed on a CPU (Arg: cpu)
	EvPreempt        // process preempted (Arg: cpu)
	EvFault          // page fault (Arg: virtual address)
	EvShootdown      // machine-wide TLB shootdown (Arg: address-space id)
	EvSignal         // signal delivered (Arg: signal number)
	EvSyscall        // selected system call (Arg: code, Aux: detail)
	EvPropagate      // shared-resource update pushed to the block (Arg: bits)
	EvSync           // member reconciled shared state on entry (Arg: bits)
)

var kindNames = [...]string{
	"none", "create", "exit", "dispatch", "preempt", "fault",
	"shootdown", "signal", "syscall", "propagate", "sync",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Creation kinds for EvCreate's Aux field.
const (
	CreateFork uint32 = iota + 1
	CreateSproc
	CreateThread
	CreateExec
)

// Event is one fixed-size trace record.
type Event struct {
	Seq  uint64 // monotonically increasing sequence number
	Kind Kind
	PID  int32  // the process the event concerns
	CPU  int32  // CPU it happened on, -1 if not applicable
	Arg  uint64 // kind-specific payload
	Aux  uint32 // kind-specific secondary payload
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %-9s pid=%-3d cpu=%-2d arg=%#x aux=%d",
		e.Seq, e.Kind, e.PID, e.CPU, e.Arg, e.Aux)
}

// Ring is the bounded event buffer. A nil *Ring is a valid, disabled ring:
// every method is a cheap no-op, so instrumentation sites need no guards.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	seq     atomic.Uint64
	dropped atomic.Uint64
	enabled atomic.Bool
}

// New creates a ring holding up to size events, enabled.
func New(size int) *Ring {
	if size <= 0 {
		size = 4096
	}
	r := &Ring{buf: make([]Event, size)}
	r.enabled.Store(true)
	return r
}

// SetEnabled turns recording on or off (draining stays possible).
func (r *Ring) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether the ring records.
func (r *Ring) Enabled() bool { return r != nil && r.enabled.Load() }

// Record appends an event. Safe on a nil or disabled ring.
func (r *Ring) Record(kind Kind, pid int32, cpu int32, arg uint64, aux uint32) {
	if r == nil || !r.enabled.Load() {
		return
	}
	seq := r.seq.Add(1)
	r.mu.Lock()
	if r.wrapped {
		r.dropped.Add(1)
	}
	r.buf[r.next] = Event{Seq: seq, Kind: kind, PID: pid, CPU: cpu, Arg: arg, Aux: aux}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered events in sequence order and the count of
// events lost to wrap-around.
func (r *Ring) Snapshot() (events []Event, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		events = append(events, r.buf[r.next:]...)
	}
	events = append(events, r.buf[:r.next]...)
	return events, r.dropped.Load()
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// CountKind counts buffered events of the given kind.
func (r *Ring) CountKind(kind Kind) int {
	events, _ := r.Snapshot()
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
