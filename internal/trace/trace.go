// Package trace is a bounded in-kernel event ring, in the spirit of the
// ktrace/par facilities that shipped with IRIX: subsystems append
// fixed-size events (process creation, dispatch, fault, shootdown, signal,
// share-group synchronization) and tools drain a consistent snapshot.
//
// The ring is sharded per CPU so recording never funnels every processor
// through one lock: each CPU appends to its own loss-counting ring (a CPU's
// shard is written only by code running there in the common case, so its
// lock is uncontended), a global atomic sequence number provides the total
// order, and Snapshot merges the shards back into one ordered stream at
// drain time. Events recorded off-CPU (cpu < 0) land in a dedicated
// overflow shard.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies an event.
type Kind uint8

const (
	EvNone      Kind = iota
	EvCreate         // process created (Arg: child pid, Aux: creation kind)
	EvExit           // process exited (Arg: status)
	EvDispatch       // process placed on a CPU (Arg: cpu)
	EvPreempt        // process preempted (Arg: cpu)
	EvFault          // page fault (Arg: virtual address)
	EvShootdown      // machine-wide TLB shootdown (Arg: address-space id)
	EvSignal         // signal delivered (Arg: signal number)
	EvSyscall        // selected system call (Arg: code, Aux: detail)
	EvPropagate      // shared-resource update pushed to the block (Arg: bits)
	EvSync           // member reconciled shared state on entry (Arg: bits)

	// Syscall gateway spans: every system call dispatched through the
	// kernel's descriptor table records an enter/exit pair carrying the
	// syscall number, with the errno of the completed call in the exit
	// event's Aux field.
	EvSyscallEnter // gateway entry (Arg: syscall number)
	EvSyscallExit  // gateway exit (Arg: syscall number, Aux: errno)

	// EvFaultInject records a deterministic injected fault (Arg: the
	// injection site's key — syscall number, pid, cpu —, Aux: site<<8|fault
	// in faultinject numbering).
	EvFaultInject

	// Sleep-wake spans: a process leaving the run queues for a kernel
	// sleep (blockproc, semaphore, wait list) and the wakeup that makes it
	// runnable again.
	EvBlock   // process blocked in the kernel (Arg: 0)
	EvUnblock // blocked process made runnable (Arg: 0)

	// EvLazyBreak records a first touch materializing a lazy COW
	// duplication (Arg: faulting virtual address, Aux: page-table slots
	// walked) — where the creation cost a DupLazy spawn deferred actually
	// landed.
	EvLazyBreak

	// Checkpoint/restore spans (DESIGN.md §17): one EvCkptPass per
	// snapshot pass over the group's regions (Arg: pages copied, Aux: pass
	// number; pass 0 is the full copy), one EvCkptSTW closing the
	// stop-the-world window (Arg: pages copied frozen, Aux: members
	// parked), and one EvRestore per rebuilt group (Arg: members
	// respawned).
	EvCkptPass
	EvCkptSTW
	EvRestore
)

var kindNames = [...]string{
	"none", "create", "exit", "dispatch", "preempt", "fault",
	"shootdown", "signal", "syscall", "propagate", "sync",
	"sysenter", "sysexit", "faultinj", "block", "unblock",
	"lazybreak", "ckptpass", "ckptstw", "restore",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Creation kinds for EvCreate's Aux field.
const (
	CreateFork uint32 = iota + 1
	CreateSproc
	CreateThread
	CreateExec
)

// Event is one fixed-size trace record.
type Event struct {
	Seq  uint64 // monotonically increasing sequence number
	Kind Kind
	PID  int32  // the process the event concerns
	CPU  int32  // CPU it happened on, -1 if not applicable
	Arg  uint64 // kind-specific payload
	Aux  uint32 // kind-specific secondary payload
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %-9s pid=%-3d cpu=%-2d arg=%#x aux=%d",
		e.Seq, e.Kind, e.PID, e.CPU, e.Arg, e.Aux)
}

// shard is one CPU's private ring: a bounded buffer that overwrites the
// oldest events when full and counts what it lost.
type shard struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	dropped atomic.Uint64
	_       [64]byte // keep neighbouring shards off the same cache line
}

// Ring is the sharded event buffer. A nil *Ring is a valid, disabled ring:
// every method is a cheap no-op, so instrumentation sites need no guards.
type Ring struct {
	shards  []shard // shards[0..n-1] per CPU, shards[n] for cpu < 0
	seq     atomic.Uint64
	enabled atomic.Bool
}

// New creates a single-CPU ring holding up to size events per shard,
// enabled. Use NewMP for a multiprocessor ring.
func New(size int) *Ring { return NewMP(size, 1) }

// NewMP creates a ring with one shard per CPU plus an overflow shard for
// events recorded with no CPU context. Each shard holds up to size events.
func NewMP(size, ncpu int) *Ring {
	if size <= 0 {
		size = 4096
	}
	if ncpu < 1 {
		ncpu = 1
	}
	r := &Ring{shards: make([]shard, ncpu+1)}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, size)
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled turns recording on or off (draining stays possible).
func (r *Ring) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether the ring records.
func (r *Ring) Enabled() bool { return r != nil && r.enabled.Load() }

// Shards returns the number of shards (CPU shards plus the overflow shard).
func (r *Ring) Shards() int {
	if r == nil {
		return 0
	}
	return len(r.shards)
}

// Record appends an event to the shard of the CPU it happened on. Safe on a
// nil or disabled ring.
func (r *Ring) Record(kind Kind, pid int32, cpu int32, arg uint64, aux uint32) {
	if r == nil || !r.enabled.Load() {
		return
	}
	seq := r.seq.Add(1)
	i := int(cpu)
	if i < 0 || i >= len(r.shards)-1 {
		i = len(r.shards) - 1
	}
	s := &r.shards[i]
	s.mu.Lock()
	if s.wrapped {
		s.dropped.Add(1)
	}
	s.buf[s.next] = Event{Seq: seq, Kind: kind, PID: pid, CPU: cpu, Arg: arg, Aux: aux}
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.wrapped = true
	}
	s.mu.Unlock()
}

// Snapshot returns the buffered events merged across all shards in
// sequence order, and the total count of events lost to wrap-around.
// Shards are read one at a time, so events recorded concurrently with the
// drain may or may not be included — each is either present or counted
// dropped, never silently lost.
func (r *Ring) Snapshot() (events []Event, dropped uint64) {
	if r == nil {
		return nil, 0
	}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if s.wrapped {
			events = append(events, s.buf[s.next:]...)
		}
		events = append(events, s.buf[:s.next]...)
		s.mu.Unlock()
		dropped += s.dropped.Load()
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Seq < events[b].Seq })
	return events, dropped
}

// DropsByCPU returns the per-shard drop counts: index i is CPU i's shard,
// the last entry is the overflow shard for events with no CPU context.
func (r *Ring) DropsByCPU() []uint64 {
	if r == nil {
		return nil
	}
	out := make([]uint64, len(r.shards))
	for i := range r.shards {
		out[i] = r.shards[i].dropped.Load()
	}
	return out
}

// Len returns the number of buffered events across all shards.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if s.wrapped {
			n += len(s.buf)
		} else {
			n += s.next
		}
		s.mu.Unlock()
	}
	return n
}

// CountKind counts buffered events of the given kind.
func (r *Ring) CountKind(kind Kind) int {
	events, _ := r.Snapshot()
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
