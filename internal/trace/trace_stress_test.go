package trace

import (
	"sync"
	"testing"
)

// TestConcurrentShardsConserveEvents hammers a deliberately tiny ring from
// many recorders across all shards and verifies the drain accounting: every
// recorded event is either present in the final snapshot or counted in a
// shard's drop counter — none silently vanish.
func TestConcurrentShardsConserveEvents(t *testing.T) {
	const (
		ncpu    = 4
		writers = 8
		each    = 2000
		size    = 64 // tiny: forces heavy wrap-around
	)
	r := NewMP(size, ncpu)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cpu := int32(w % (ncpu + 1)) // include the overflow shard (cpu -1)
			if cpu == ncpu {
				cpu = -1
			}
			for i := 0; i < each; i++ {
				r.Record(EvSyscall, int32(w), cpu, uint64(i), 0)
			}
		}(w)
	}
	wg.Wait()

	events, dropped := r.Snapshot()
	if got := int(dropped) + len(events); got != writers*each {
		t.Fatalf("kept(%d) + dropped(%d) = %d, want %d",
			len(events), dropped, got, writers*each)
	}

	// The merged snapshot is in strict sequence order with no duplicates.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d",
				i, events[i-1].Seq, events[i].Seq)
		}
	}

	// Per-shard drops sum to the snapshot's total.
	var sum uint64
	for _, d := range r.DropsByCPU() {
		sum += d
	}
	if sum != dropped {
		t.Fatalf("per-shard drops sum %d != snapshot dropped %d", sum, dropped)
	}
}

// TestSnapshotDuringRecording drains while recorders are still running; the
// invariant is weaker (events land between the count and the drain) but the
// snapshot itself must stay ordered and duplicate-free.
func TestSnapshotDuringRecording(t *testing.T) {
	r := NewMP(32, 2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					r.Record(EvFault, int32(w), int32(w%2), uint64(i), 0)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		events, _ := r.Snapshot()
		for j := 1; j < len(events); j++ {
			if events[j].Seq <= events[j-1].Seq {
				t.Errorf("snapshot %d out of order at %d", i, j)
			}
		}
	}
	close(stop)
	wg.Wait()
}
