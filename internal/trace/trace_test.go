package trace

import (
	"sync"
	"testing"
)

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Record(EvFault, 1, 0, 0x1000, 0)
	r.SetEnabled(true)
	if r.Enabled() {
		t.Fatal("nil ring enabled")
	}
	if ev, dropped := r.Snapshot(); ev != nil || dropped != 0 {
		t.Fatal("nil ring returned events")
	}
	if r.Len() != 0 || r.CountKind(EvFault) != 0 {
		t.Fatal("nil ring has length")
	}
}

func TestRecordSnapshotOrder(t *testing.T) {
	r := New(8)
	for i := 0; i < 5; i++ {
		r.Record(EvDispatch, int32(i), 0, uint64(i), 0)
	}
	ev, dropped := r.Snapshot()
	if dropped != 0 || len(ev) != 5 {
		t.Fatalf("snapshot = %d events, %d dropped", len(ev), dropped)
	}
	for i, e := range ev {
		if e.Seq != uint64(i+1) || e.PID != int32(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestWrapAroundKeepsNewest(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(EvFault, int32(i), 0, 0, 0)
	}
	ev, dropped := r.Snapshot()
	if len(ev) != 4 {
		t.Fatalf("len = %d", len(ev))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if ev[0].PID != 6 || ev[3].PID != 9 {
		t.Fatalf("wrong window: %v..%v", ev[0].PID, ev[3].PID)
	}
	// Sequence stays strictly increasing across the wrap.
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatal("sequence gap inside window")
		}
	}
}

func TestDisableStopsRecording(t *testing.T) {
	r := New(8)
	r.Record(EvExit, 1, -1, 0, 0)
	r.SetEnabled(false)
	r.Record(EvExit, 2, -1, 0, 0)
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	r.SetEnabled(true)
	r.Record(EvExit, 3, -1, 0, 0)
	if r.CountKind(EvExit) != 2 {
		t.Fatalf("count = %d", r.CountKind(EvExit))
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int32) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(EvDispatch, id, 0, uint64(i), 0)
			}
		}(int32(g))
	}
	wg.Wait()
	ev, dropped := r.Snapshot()
	if len(ev) != 800 || dropped != 0 {
		t.Fatalf("events=%d dropped=%d", len(ev), dropped)
	}
	seen := map[uint64]bool{}
	for _, e := range ev {
		if seen[e.Seq] {
			t.Fatal("duplicate sequence number")
		}
		seen[e.Seq] = true
	}
}

func TestKindStrings(t *testing.T) {
	if EvFault.String() != "fault" || EvShootdown.String() != "shootdown" {
		t.Fatal("kind names")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
	e := Event{Seq: 3, Kind: EvSignal, PID: 7, CPU: 1, Arg: 15}
	if e.String() == "" {
		t.Fatal("event string empty")
	}
}
