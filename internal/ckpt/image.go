// Package ckpt defines the checkpoint image of a running share group: a
// deterministic, self-contained description of the group's shared address
// space (region geometry and page contents), its members (identity,
// masks, stacks, PRDA contents, descriptor tables), and the share block's
// attributes and entitlements.
//
// The package is deliberately a leaf: it imports nothing from the kernel,
// vm, or hw layers, and it never sees a page-table entry or a physical
// frame number — the kernel serializes regions exclusively through the vm
// package's page-read API and hands this package plain bytes (the
// lint-ckpt rule in the Makefile pins that boundary). Everything in an
// image is virtual-address- and content-level state, so two checkpoints
// of identical logical states encode to identical bytes regardless of
// frame placement, CPU interleaving, or pass count.
package ckpt

import (
	"fmt"
	"sort"
)

// Version is the image format version encoded in the header.
const Version = 1

// Region types, mirroring the vm package's numbering (the kernel converts
// both ways; ckpt keeps its own constants so it does not import vm).
const (
	RText  = 0
	RData  = 1
	RStack = 2
	RShm   = 3
	RPRDA  = 4
)

// GroupAttr is the share block's captured attribute and entitlement
// state: the shadowed environment (umask, ulimit, ids) plus the
// setshares(2) entitlements and the gang-scheduling request. Delivery
// counters (cycles, decayed usage) are deliberately excluded — they are
// schedule-dependent and would break image determinism.
type GroupAttr struct {
	Umask      uint16
	Ulimit     int64
	Uid, Gid   uint16
	CPUShares  int32
	FrameQuota int64
	MemberCap  int32
	Gang       bool
}

// PageImage is one resident page's contents at its index within a region.
type PageImage struct {
	Index int
	Data  []byte // exactly Image.PageSize bytes
}

// RegionImage is one shared region: base virtual address, geometry, and
// the resident pages in ascending index order. Pages absent from the list
// are demand-zero — a restore leaves them untouched and a diff treats an
// absent page and an all-zero page as equal.
type RegionImage struct {
	Base  uint64
	Pages int // region size in pages
	Type  uint8
	Resid []PageImage
}

// FdImage is one open descriptor of a member's table. Regular files carry
// the path, flags and offset needed to reacquire them at restore;
// anonymous stream endpoints (pipes, sockets) are recorded structurally —
// Stream true, Path empty — and are not reopened.
type FdImage struct {
	Fd      int
	Path    string
	Flags   int
	FdFlags uint8 // per-descriptor flags (close-on-exec, non-blocking)
	Offset  int64
	Stream  bool
}

// MemberImage is one group member's register-level state: identity, share
// mask, entry argument, stack placement, PRDA contents and descriptor
// table. Members appear in creation order; index 0 is the group creator,
// whose role the restoring caller adopts.
type MemberImage struct {
	PID        int
	Name       string
	Mask       uint32
	Prio       int32
	Arg        int64
	StackBase  uint64
	StackPages int
	PRDA       []byte // PRDA page contents; nil when never touched
	Fds        []FdImage
}

// Image is one checkpoint of a share group.
type Image struct {
	Version  int
	PageSize int
	Attr     GroupAttr
	Regions  []RegionImage // ascending Base
	Members  []MemberImage // creation order
}

// Validate runs the structural checks — layer one of the livecore-style
// validation stack: internally consistent geometry before any restore or
// diff is attempted.
func (im *Image) Validate() error {
	if im.Version != Version {
		return fmt.Errorf("ckpt: image version %d, want %d", im.Version, Version)
	}
	if im.PageSize <= 0 {
		return fmt.Errorf("ckpt: non-positive page size %d", im.PageSize)
	}
	if len(im.Members) == 0 {
		return fmt.Errorf("ckpt: image has no members")
	}
	var prevEnd uint64
	for i, r := range im.Regions {
		if r.Pages <= 0 {
			return fmt.Errorf("ckpt: region %d at %#x has %d pages", i, r.Base, r.Pages)
		}
		if i > 0 && r.Base < prevEnd {
			return fmt.Errorf("ckpt: region %d at %#x overlaps predecessor ending at %#x", i, r.Base, prevEnd)
		}
		prevEnd = r.Base + uint64(r.Pages*im.PageSize)
		last := -1
		for _, pg := range r.Resid {
			if pg.Index <= last {
				return fmt.Errorf("ckpt: region %#x pages out of order (%d after %d)", r.Base, pg.Index, last)
			}
			last = pg.Index
			if pg.Index >= r.Pages {
				return fmt.Errorf("ckpt: region %#x page %d beyond %d-page extent", r.Base, pg.Index, r.Pages)
			}
			if len(pg.Data) != im.PageSize {
				return fmt.Errorf("ckpt: region %#x page %d holds %d bytes, want %d", r.Base, pg.Index, len(pg.Data), im.PageSize)
			}
		}
	}
	seen := map[int]bool{}
	for i, m := range im.Members {
		if seen[m.PID] {
			return fmt.Errorf("ckpt: duplicate member pid %d", m.PID)
		}
		seen[m.PID] = true
		if m.StackPages <= 0 {
			return fmt.Errorf("ckpt: member %d (%q) has %d stack pages", i, m.Name, m.StackPages)
		}
		if m.PRDA != nil && len(m.PRDA) != im.PageSize {
			return fmt.Errorf("ckpt: member %d PRDA holds %d bytes, want %d", i, len(m.PRDA), im.PageSize)
		}
		if m.Mask&1 == 0 { // PRSADDR: the restorable contract
			return fmt.Errorf("ckpt: member %d (%q) does not share the address space", i, m.Name)
		}
		last := -1
		for _, fd := range m.Fds {
			if fd.Fd <= last {
				return fmt.Errorf("ckpt: member %d descriptors out of order", i)
			}
			last = fd.Fd
		}
	}
	return nil
}

// DiffOpts selects what a comparison ignores.
type DiffOpts struct {
	// IgnorePIDs drops member PIDs from the comparison: a restored group
	// has fresh PIDs but must match in everything else.
	IgnorePIDs bool
}

// Diff compares two images and returns a human-readable line per
// difference, empty when equivalent. An absent page and an all-zero page
// compare equal (both restore to demand-zero), so a round trip through
// restore — which materializes zero pages a copy pass recorded — still
// diffs clean.
func Diff(a, b *Image, opts DiffOpts) []string {
	var out []string
	miss := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	if a.PageSize != b.PageSize {
		miss("page size %d vs %d", a.PageSize, b.PageSize)
		return out
	}
	if a.Attr != b.Attr {
		miss("group attrs %+v vs %+v", a.Attr, b.Attr)
	}
	if len(a.Regions) != len(b.Regions) {
		miss("region count %d vs %d", len(a.Regions), len(b.Regions))
	}
	for i := 0; i < len(a.Regions) && i < len(b.Regions); i++ {
		ra, rb := &a.Regions[i], &b.Regions[i]
		if ra.Base != rb.Base || ra.Pages != rb.Pages || ra.Type != rb.Type {
			miss("region %d geometry %#x/%d/%d vs %#x/%d/%d",
				i, ra.Base, ra.Pages, ra.Type, rb.Base, rb.Pages, rb.Type)
			continue
		}
		diffPages(ra, rb, a.PageSize, miss)
	}
	if len(a.Members) != len(b.Members) {
		miss("member count %d vs %d", len(a.Members), len(b.Members))
	}
	for i := 0; i < len(a.Members) && i < len(b.Members); i++ {
		ma, mb := a.Members[i], b.Members[i]
		if !opts.IgnorePIDs && ma.PID != mb.PID {
			miss("member %d pid %d vs %d", i, ma.PID, mb.PID)
		}
		if ma.Name != mb.Name || ma.Mask != mb.Mask || ma.Prio != mb.Prio || ma.Arg != mb.Arg {
			miss("member %d identity %q/%#x/%d/%d vs %q/%#x/%d/%d", i,
				ma.Name, ma.Mask, ma.Prio, ma.Arg, mb.Name, mb.Mask, mb.Prio, mb.Arg)
		}
		if ma.StackBase != mb.StackBase || ma.StackPages != mb.StackPages {
			miss("member %d stack %#x/%d vs %#x/%d", i, ma.StackBase, ma.StackPages, mb.StackBase, mb.StackPages)
		}
		if !pagesEqual(ma.PRDA, mb.PRDA) {
			miss("member %d PRDA contents differ", i)
		}
		if len(ma.Fds) != len(mb.Fds) {
			miss("member %d descriptor count %d vs %d", i, len(ma.Fds), len(mb.Fds))
			continue
		}
		for j := range ma.Fds {
			if ma.Fds[j] != mb.Fds[j] {
				miss("member %d fd %d: %+v vs %+v", i, ma.Fds[j].Fd, ma.Fds[j], mb.Fds[j])
			}
		}
	}
	return out
}

// diffPages compares two equal-geometry regions' resident sets, treating
// absent pages as zero.
func diffPages(ra, rb *RegionImage, pageSize int, miss func(string, ...any)) {
	ia, ib := 0, 0
	for ia < len(ra.Resid) || ib < len(rb.Resid) {
		switch {
		case ib >= len(rb.Resid) || (ia < len(ra.Resid) && ra.Resid[ia].Index < rb.Resid[ib].Index):
			if !zeroPage(ra.Resid[ia].Data) {
				miss("region %#x page %d present only in first image (non-zero)", ra.Base, ra.Resid[ia].Index)
			}
			ia++
		case ia >= len(ra.Resid) || rb.Resid[ib].Index < ra.Resid[ia].Index:
			if !zeroPage(rb.Resid[ib].Data) {
				miss("region %#x page %d present only in second image (non-zero)", ra.Base, rb.Resid[ib].Index)
			}
			ib++
		default:
			if !pagesEqual(ra.Resid[ia].Data, rb.Resid[ib].Data) {
				miss("region %#x page %d contents differ", ra.Base, ra.Resid[ia].Index)
			}
			ia++
			ib++
		}
	}
}

// pagesEqual compares two pages where nil means all-zero.
func pagesEqual(a, b []byte) bool {
	if a == nil {
		return zeroPage(b)
	}
	if b == nil {
		return zeroPage(a)
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func zeroPage(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// Normalize sorts regions by base and each region's pages by index —
// the canonical order Encode requires. The kernel builds images in order
// already; Normalize makes hand-built test images canonical too.
func (im *Image) Normalize() {
	sort.Slice(im.Regions, func(i, j int) bool { return im.Regions[i].Base < im.Regions[j].Base })
	for i := range im.Regions {
		r := &im.Regions[i]
		sort.Slice(r.Resid, func(a, b int) bool { return r.Resid[a].Index < r.Resid[b].Index })
	}
}

// ResidentPages counts the pages carried in the image (image weight in
// pages; the encoded size adds headers and tables).
func (im *Image) ResidentPages() int {
	n := 0
	for _, r := range im.Regions {
		n += len(r.Resid)
	}
	for _, m := range im.Members {
		if m.PRDA != nil {
			n++
		}
	}
	return n
}
