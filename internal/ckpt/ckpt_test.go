package ckpt

import (
	"bytes"
	"testing"
)

func samplePage(size int, fill byte) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = fill + byte(i&7)
	}
	return p
}

func sampleImage() *Image {
	const ps = 64
	return &Image{
		Version:  Version,
		PageSize: ps,
		Attr: GroupAttr{
			Umask: 0o022, Ulimit: 1 << 30, Uid: 7, Gid: 9,
			CPUShares: 3, FrameQuota: 512, MemberCap: 8, Gang: true,
		},
		Regions: []RegionImage{
			{Base: 0x1000, Pages: 4, Type: RText, Resid: []PageImage{
				{Index: 0, Data: samplePage(ps, 1)},
			}},
			{Base: 0x8000, Pages: 16, Type: RData, Resid: []PageImage{
				{Index: 2, Data: samplePage(ps, 3)},
				{Index: 9, Data: samplePage(ps, 5)},
			}},
		},
		Members: []MemberImage{
			{PID: 1, Name: "creator", Mask: 0x3f, Prio: 0, Arg: 0,
				StackBase: 0x70000, StackPages: 8,
				Fds: []FdImage{
					{Fd: 0, Path: "/tmp/log", Flags: 3, Offset: 42},
					{Fd: 3, Stream: true},
				}},
			{PID: 2, Name: "worker", Mask: 0x3f, Prio: 1, Arg: 11,
				StackBase: 0x90000, StackPages: 8,
				PRDA: samplePage(ps, 8)},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	im := sampleImage()
	if err := im.Validate(); err != nil {
		t.Fatalf("sample image invalid: %v", err)
	}
	enc := im.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if diffs := Diff(im, got, DiffOpts{}); len(diffs) != 0 {
		t.Fatalf("round trip lost information: %v", diffs)
	}
	// Canonical: re-encoding the decoded image is byte-identical.
	if !bytes.Equal(enc, got.Encode()) {
		t.Fatal("re-encode of decoded image differs from original bytes")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := sampleImage().Encode()

	bad := append([]byte{}, enc...)
	bad[len(bad)/2] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("decode accepted a flipped body byte")
	}
	if _, err := Decode(enc[:len(enc)-9]); err == nil {
		t.Fatal("decode accepted a truncated image")
	}
	bad = append([]byte{}, enc...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Fatal("decode accepted bad magic")
	}
}

func TestValidateCatchesStructuralDamage(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Image)
	}{
		{"overlapping regions", func(im *Image) { im.Regions[1].Base = im.Regions[0].Base }},
		{"page beyond extent", func(im *Image) { im.Regions[0].Resid[0].Index = 99 }},
		{"short page", func(im *Image) { im.Regions[0].Resid[0].Data = im.Regions[0].Resid[0].Data[:8] }},
		{"duplicate pid", func(im *Image) { im.Members[1].PID = im.Members[0].PID }},
		{"no members", func(im *Image) { im.Members = nil }},
		{"unshared member", func(im *Image) { im.Members[1].Mask = 0 }},
		{"unordered fds", func(im *Image) {
			m := &im.Members[0]
			m.Fds[0].Fd, m.Fds[1].Fd = 3, 0
		}},
	}
	for _, tc := range cases {
		im := sampleImage()
		tc.break_(im)
		if err := im.Validate(); err == nil {
			t.Errorf("%s: validate accepted damaged image", tc.name)
		}
	}
}

func TestDiffAbsentEqualsZero(t *testing.T) {
	a, b := sampleImage(), sampleImage()
	// A zero page recorded in one image and absent from the other is the
	// same logical state — a restore materializes it back to zeros.
	b.Regions[1].Resid = append(b.Regions[1].Resid, PageImage{Index: 12, Data: make([]byte, b.PageSize)})
	b.Normalize()
	if diffs := Diff(a, b, DiffOpts{}); len(diffs) != 0 {
		t.Fatalf("zero page vs absent page reported as difference: %v", diffs)
	}
	// A non-zero extra page is a real difference.
	b.Regions[1].Resid[0].Data[5] = 0xaa
	if diffs := Diff(a, b, DiffOpts{}); len(diffs) == 0 {
		t.Fatal("non-zero extra page not reported")
	}
}

func TestDiffIgnorePIDs(t *testing.T) {
	a, b := sampleImage(), sampleImage()
	b.Members[0].PID, b.Members[1].PID = 41, 42
	if diffs := Diff(a, b, DiffOpts{}); len(diffs) == 0 {
		t.Fatal("pid change not reported without IgnorePIDs")
	}
	if diffs := Diff(a, b, DiffOpts{IgnorePIDs: true}); len(diffs) != 0 {
		t.Fatalf("IgnorePIDs still reported: %v", diffs)
	}
	b.Members[1].Arg = 99
	if diffs := Diff(a, b, DiffOpts{IgnorePIDs: true}); len(diffs) == 0 {
		t.Fatal("argument change masked by IgnorePIDs")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	a, b := sampleImage(), sampleImage()
	// Build b's page list in a different order; Normalize must restore
	// the canonical form so the encodings agree byte for byte.
	r := &b.Regions[1]
	r.Resid[0], r.Resid[1] = r.Resid[1], r.Resid[0]
	b.Normalize()
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("same logical image encoded to different bytes")
	}
}
