package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
)

// Binary image format: little-endian, fixed-width integers, length-
// prefixed strings and lists, in canonical order (regions ascending by
// base, pages ascending by index, members in creation order), closed by a
// CRC64 of everything before it. Two checkpoints of identical logical
// state therefore encode byte-identically — the determinism contract the
// restore-and-diff and double-checkpoint tests pin.

var magic = [8]byte{'S', 'G', 'C', 'K', 'P', 'T', 0, '\n'}

var crcTable = crc64.MakeTable(crc64.ECMA)

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Encode serializes the image to its canonical byte form.
func (im *Image) Encode() []byte {
	w := &writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, magic[:]...)
	w.u32(uint32(im.Version))
	w.u32(uint32(im.PageSize))

	w.u16(im.Attr.Umask)
	w.i64(im.Attr.Ulimit)
	w.u16(im.Attr.Uid)
	w.u16(im.Attr.Gid)
	w.u32(uint32(im.Attr.CPUShares))
	w.i64(im.Attr.FrameQuota)
	w.u32(uint32(im.Attr.MemberCap))
	w.boolean(im.Attr.Gang)

	w.u32(uint32(len(im.Regions)))
	for _, r := range im.Regions {
		w.u64(r.Base)
		w.u32(uint32(r.Pages))
		w.u8(r.Type)
		w.u32(uint32(len(r.Resid)))
		for _, pg := range r.Resid {
			w.u32(uint32(pg.Index))
			w.buf = append(w.buf, pg.Data...)
		}
	}

	w.u32(uint32(len(im.Members)))
	for _, m := range im.Members {
		w.u32(uint32(m.PID))
		w.str(m.Name)
		w.u32(m.Mask)
		w.u32(uint32(m.Prio))
		w.i64(m.Arg)
		w.u64(m.StackBase)
		w.u32(uint32(m.StackPages))
		w.bytes(m.PRDA)
		w.u32(uint32(len(m.Fds)))
		for _, fd := range m.Fds {
			w.u32(uint32(fd.Fd))
			w.str(fd.Path)
			w.u32(uint32(fd.Flags))
			w.u8(fd.FdFlags)
			w.i64(fd.Offset)
			w.boolean(fd.Stream)
		}
	}

	w.u64(crc64.Checksum(w.buf, crcTable))
	return w.buf
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) need(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("ckpt: truncated image at offset %d", r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.need(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u16() uint16 {
	b := r.need(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}
func (r *reader) u32() uint32 {
	b := r.need(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *reader) u64() uint64 {
	b := r.need(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
func (r *reader) i64() int64    { return int64(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }
func (r *reader) count(limit int, what string) int {
	n := int(r.u32())
	if r.err == nil && (n < 0 || n > limit) {
		r.err = fmt.Errorf("ckpt: implausible %s count %d", what, n)
	}
	if r.err != nil {
		return 0
	}
	return n
}
func (r *reader) str() string {
	n := r.count(1<<20, "string byte")
	b := r.need(n)
	if b == nil {
		return ""
	}
	return string(b)
}
func (r *reader) bytes() []byte {
	n := r.count(1<<24, "byte-slice byte")
	b := r.need(n)
	if b == nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Decode parses a canonical image, verifying magic and checksum. The
// result passes Validate when the encoder's input did.
func Decode(data []byte) (*Image, error) {
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("ckpt: image too short (%d bytes)", len(data))
	}
	for i, b := range magic {
		if data[i] != b {
			return nil, fmt.Errorf("ckpt: bad magic")
		}
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if got, want := binary.LittleEndian.Uint64(trailer), crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("ckpt: checksum mismatch (%#x != %#x)", got, want)
	}

	r := &reader{buf: body, off: len(magic)}
	im := &Image{
		Version:  int(r.u32()),
		PageSize: int(r.u32()),
	}
	if r.err == nil && im.Version != Version {
		return nil, fmt.Errorf("ckpt: image version %d, want %d", im.Version, Version)
	}
	if r.err == nil && (im.PageSize <= 0 || im.PageSize > 1<<20) {
		return nil, fmt.Errorf("ckpt: implausible page size %d", im.PageSize)
	}

	im.Attr.Umask = r.u16()
	im.Attr.Ulimit = r.i64()
	im.Attr.Uid = r.u16()
	im.Attr.Gid = r.u16()
	im.Attr.CPUShares = int32(r.u32())
	im.Attr.FrameQuota = r.i64()
	im.Attr.MemberCap = int32(r.u32())
	im.Attr.Gang = r.boolean()

	nr := r.count(1<<16, "region")
	for i := 0; i < nr && r.err == nil; i++ {
		reg := RegionImage{
			Base:  r.u64(),
			Pages: int(r.u32()),
			Type:  r.u8(),
		}
		np := r.count(1<<24, "page")
		for j := 0; j < np && r.err == nil; j++ {
			idx := int(r.u32())
			b := r.need(im.PageSize)
			if b == nil {
				break
			}
			data := make([]byte, im.PageSize)
			copy(data, b)
			reg.Resid = append(reg.Resid, PageImage{Index: idx, Data: data})
		}
		im.Regions = append(im.Regions, reg)
	}

	nm := r.count(1<<16, "member")
	for i := 0; i < nm && r.err == nil; i++ {
		m := MemberImage{
			PID:  int(r.u32()),
			Name: r.str(),
			Mask: r.u32(),
			Prio: int32(r.u32()),
			Arg:  r.i64(),
		}
		m.StackBase = r.u64()
		m.StackPages = int(r.u32())
		m.PRDA = r.bytes()
		nf := r.count(1<<16, "descriptor")
		for j := 0; j < nf && r.err == nil; j++ {
			m.Fds = append(m.Fds, FdImage{
				Fd:      int(r.u32()),
				Path:    r.str(),
				Flags:   int(r.u32()),
				FdFlags: r.u8(),
				Offset:  r.i64(),
				Stream:  r.boolean(),
			})
		}
		im.Members = append(im.Members, m)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("ckpt: %d trailing bytes", len(body)-r.off)
	}
	return im, nil
}
