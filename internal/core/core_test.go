package core

import (
	"testing"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// rig builds a filesystem, memory and a creator process with a canonical
// address space (text, data, PRDA) and cdir/rdir set to the root.
type rig struct {
	fs  *fs.FS
	mem *hw.Memory
}

func newRig() *rig {
	return &rig{fs: fs.New(), mem: hw.NewMemory(4096)}
}

func (r *rig) newProc(pid int) *proc.Proc {
	p := proc.New(pid, "t")
	p.ASID = hw.ASID(pid)
	p.Cdir = r.fs.Root().Hold()
	p.Rdir = r.fs.Root().Hold()
	p.Private = []*vm.PRegion{
		{Reg: vm.NewRegion(r.mem, vm.RText, 4), Base: vm.TextBase},
		{Reg: vm.NewRegion(r.mem, vm.RData, 8), Base: vm.DataBase},
		{Reg: vm.NewRegion(r.mem, vm.RPRDA, vm.PRDAPages), Base: vm.PRDABase},
	}
	return p
}

func (r *rig) cred() fs.Cred {
	return fs.Cred{Uid: 0, Cwd: r.fs.Root(), Root: r.fs.Root()}
}

func TestNewGroupMovesSharablePregions(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	if len(p.Private) != 1 || p.Private[0].Reg.Type != vm.RPRDA {
		t.Fatalf("private list after group creation: %v", p.Private)
	}
	regs := sa.RegionList(p)
	if len(regs) != 2 {
		t.Fatalf("shared list has %d regions, want 2", len(regs))
	}
	if p.ShMask() != proc.PRSALL {
		t.Fatalf("creator mask = %v, want PR_SALL", p.ShMask())
	}
	if p.ShareGrp() != proc.ShareGroup(sa) {
		t.Fatal("creator not linked to block")
	}
	if sa.Size() != 1 {
		t.Fatalf("Size = %d", sa.Size())
	}
}

func TestBlockHoldsReferences(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	file, _ := r.fs.Open(r.cred(), "/f", fs.OWrite|fs.OCreat, 0o644)
	p.Mu.Lock()
	p.AllocFd(file)
	p.Mu.Unlock()
	rootRefBefore := r.fs.Root().Ref()
	sa := New(p)
	if file.Ref() != 2 {
		t.Fatalf("file ref = %d, want 2 (fd + block)", file.Ref())
	}
	if r.fs.Root().Ref() != rootRefBefore+2 {
		t.Fatalf("root ref = %d, want +2 (cdir+rdir shadows)", r.fs.Root().Ref())
	}
	// Last member leaving tears the block down.
	sa.Leave(p)
	if file.Ref() != 1 {
		t.Fatalf("file ref after teardown = %d, want 1", file.Ref())
	}
	if r.fs.Root().Ref() != rootRefBefore {
		t.Fatalf("root ref after teardown = %d, want %d", r.fs.Root().Ref(), rootRefBefore)
	}
	if p.ShareGrp() != nil || p.ShMask() != 0 {
		t.Fatal("leaver still linked")
	}
}

func TestMembershipLifecycle(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	kids := make([]*proc.Proc, 3)
	for i := range kids {
		kids[i] = r.newProc(i + 2)
		kids[i].SetShMask(proc.PRSALL)
		sa.AddMember(kids[i])
	}
	if sa.Size() != 4 {
		t.Fatalf("Size = %d", sa.Size())
	}
	ms := sa.Members()
	if len(ms) != 4 || ms[0] != p {
		t.Fatalf("Members = %v", ms)
	}
	sa.Leave(p) // creator may leave first; block survives
	if sa.Size() != 3 {
		t.Fatalf("Size after creator left = %d", sa.Size())
	}
	for _, k := range kids {
		sa.Leave(k)
	}
	if sa.Size() != 0 {
		t.Fatal("members remain")
	}
}

func TestAttrPropagationAndSync(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	q := r.newProc(2)
	q.SetShMask(proc.PRSALL)
	sa.AddMember(q)

	// p changes umask, ulimit, ids; q must see them after SyncEntry.
	p.Mu.Lock()
	p.Umask = 0o077
	p.Ulimit = 12345
	p.Uid, p.Gid = 7, 8
	p.Mu.Unlock()
	sa.PropagateUmask(p)
	sa.PropagateUlimit(p)
	sa.PropagateID(p)

	if q.Flag.Load()&proc.FSyncAny == 0 {
		t.Fatal("no sync bits set on q")
	}
	if p.Flag.Load()&proc.FSyncAny != 0 {
		t.Fatal("updater marked dirty")
	}
	sa.SyncEntry(q)
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if q.Umask != 0o077 || q.Ulimit != 12345 || q.Uid != 7 || q.Gid != 8 {
		t.Fatalf("q after sync: umask=%o ulimit=%d uid=%d gid=%d", q.Umask, q.Ulimit, q.Uid, q.Gid)
	}
	if sa.Syncs.Load() != 1 || sa.Propagations.Load() != 3 {
		t.Fatalf("stats: syncs=%d props=%d", sa.Syncs.Load(), sa.Propagations.Load())
	}
}

func TestSyncHonoursMemberMask(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	q := r.newProc(2)
	q.SetShMask(proc.PRSUMASK) // shares umask only
	sa.AddMember(q)
	q.Mu.Lock()
	q.Ulimit = 999
	q.Mu.Unlock()

	p.Mu.Lock()
	p.Umask = 0o007
	p.Ulimit = 555
	p.Mu.Unlock()
	sa.PropagateUmask(p)
	sa.PropagateUlimit(p) // q does not share ulimit: no bit set for it

	sa.SyncEntry(q)
	q.Mu.Lock()
	defer q.Mu.Unlock()
	if q.Umask != 0o007 {
		t.Fatalf("umask not synced: %o", q.Umask)
	}
	if q.Ulimit != 999 {
		t.Fatalf("ulimit synced despite mask: %d", q.Ulimit)
	}
}

func TestDirPropagation(t *testing.T) {
	r := newRig()
	r.fs.Mkdir(r.cred(), "/work", 0o755)
	work, _ := r.fs.Lookup(r.cred(), "/work")
	p := r.newProc(1)
	sa := New(p)
	q := r.newProc(2)
	q.SetShMask(proc.PRSALL)
	sa.AddMember(q)

	// p chdirs to /work.
	p.Mu.Lock()
	old := p.Cdir
	p.Cdir = work.Hold()
	p.Mu.Unlock()
	old.Release()
	sa.PropagateDir(p)

	sa.SyncEntry(q)
	q.Mu.Lock()
	got := q.Cdir
	q.Mu.Unlock()
	if got != work {
		t.Fatalf("q cdir = %v, want /work", got)
	}
	// Reference accounting: work is held by p, q, and the block.
	if work.Ref() != 3 {
		t.Fatalf("work ref = %d, want 3", work.Ref())
	}
	sa.Leave(q)
	sa.Leave(p)
	q.Mu.Lock()
	q.Cdir.Release()
	q.Rdir.Release()
	q.Mu.Unlock()
	p.Mu.Lock()
	p.Cdir.Release()
	p.Rdir.Release()
	p.Mu.Unlock()
	if work.Ref() != 0 {
		t.Fatalf("work ref after teardown = %d", work.Ref())
	}
}

func TestFdPropagation(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	q := r.newProc(2)
	q.SetShMask(proc.PRSALL)
	// Initialize q's table from the block (the sproc child path).
	q.Fd, q.FdFlags = sa.ShadowFds(q)
	sa.AddMember(q)

	// p opens a file; q must see the descriptor after sync.
	file, _ := r.fs.Open(r.cred(), "/data", fs.ORead|fs.OWrite|fs.OCreat, 0o644)
	sa.BeginFdUpdate(p)
	p.Mu.Lock()
	fd, _ := p.AllocFd(file)
	p.Mu.Unlock()
	sa.EndFdUpdate(p, fd)

	if q.Flag.Load()&proc.FSyncFds == 0 {
		t.Fatal("q not marked for fd sync")
	}
	sa.SyncEntry(q)
	q.Mu.Lock()
	got, err := q.GetFd(fd)
	q.Mu.Unlock()
	if err != nil || got != file {
		t.Fatalf("q fd %d = (%v,%v), want shared file", fd, got, err)
	}
	// file refs: p's fd, q's fd, block copy.
	if file.Ref() != 3 {
		t.Fatalf("file ref = %d, want 3", file.Ref())
	}

	// p closes: q must lose the descriptor after sync.
	sa.BeginFdUpdate(p)
	p.Mu.Lock()
	f, _ := p.ClearFd(fd)
	p.Mu.Unlock()
	f.Release()
	sa.EndFdUpdate(p, fd)
	sa.SyncEntry(q)
	q.Mu.Lock()
	_, err = q.GetFd(fd)
	q.Mu.Unlock()
	if err != fs.ErrBadFd {
		t.Fatalf("q still sees closed fd: %v", err)
	}
	if file.Ref() != 0 {
		t.Fatalf("file ref after close everywhere = %d", file.Ref())
	}
}

func TestSecondUpdaterSyncsBeforeUpdate(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	q := r.newProc(2)
	q.SetShMask(proc.PRSALL)
	q.Fd, q.FdFlags = sa.ShadowFds(q)
	sa.AddMember(q)

	// p opens fd 0; q is now dirty. Without syncing first, q's own open
	// would also pick slot 0 and the two tables would diverge.
	fileA, _ := r.fs.Open(r.cred(), "/a", fs.OWrite|fs.OCreat, 0o644)
	sa.BeginFdUpdate(p)
	p.Mu.Lock()
	fdA, _ := p.AllocFd(fileA)
	p.Mu.Unlock()
	sa.EndFdUpdate(p, fdA)

	fileB, _ := r.fs.Open(r.cred(), "/b", fs.OWrite|fs.OCreat, 0o644)
	sa.BeginFdUpdate(q) // must reconcile q with p's open first
	q.Mu.Lock()
	fdB, _ := q.AllocFd(fileB)
	q.Mu.Unlock()
	sa.EndFdUpdate(q, fdB)

	if fdA == fdB {
		t.Fatalf("descriptor collision: both opens landed on fd %d", fdA)
	}
	q.Mu.Lock()
	gotA, _ := q.GetFd(fdA)
	q.Mu.Unlock()
	if gotA != fileA {
		t.Fatal("q lost p's descriptor during its own update")
	}
}

func TestResolveShared(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	pfn, w, res, found, err := sa.ResolveShared(p, vm.DataBase+hw.PageSize, true)
	if err != nil || !found || !w || pfn == hw.NoPFN || res != vm.FillZeroed {
		t.Fatalf("ResolveShared = (%v,%v,%v,%v,%v)", pfn, w, res, found, err)
	}
	if _, _, _, found, _ := sa.ResolveShared(p, vm.ShmBase, false); found {
		t.Fatal("resolved an unmapped address")
	}
	if sa.Acc.Readers() != 0 {
		t.Fatal("read lock leaked")
	}
}

func TestAttachDetachShared(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	seg := &vm.PRegion{Reg: vm.NewRegion(r.mem, vm.RShm, 4), Base: vm.ShmBase}
	if err := sa.AttachShared(p, seg); err != nil {
		t.Fatal(err)
	}
	if err := sa.AttachShared(p, &vm.PRegion{Reg: vm.NewRegion(r.mem, vm.RShm, 1), Base: vm.ShmBase + hw.PageSize}); err == nil {
		t.Fatal("overlapping attach accepted")
	}
	// Touch a page so detach has something to free.
	if _, _, _, found, err := sa.ResolveShared(p, vm.ShmBase, true); !found || err != nil {
		t.Fatal("attached region not faultable")
	}
	used := r.mem.InUse()
	shot := 0
	if err := sa.DetachShared(p, seg, func() { shot++ }); err != nil {
		t.Fatal(err)
	}
	if shot != 1 {
		t.Fatalf("shootdowns = %d, want 1", shot)
	}
	if r.mem.InUse() != used-1 {
		t.Fatal("detached frames not freed")
	}
	if err := sa.DetachShared(p, seg, func() { shot++ }); err == nil {
		t.Fatal("double detach accepted")
	}
}

func TestGrowShrinkShared(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	data := sa.RegionList(p)[1] // the data region
	if data.Reg.Type != vm.RData {
		t.Fatalf("expected data region, got %v", data.Reg.Type)
	}
	sa.GrowShared(p, data, 4)
	if data.Reg.Pages() != 12 {
		t.Fatalf("pages after grow = %d", data.Reg.Pages())
	}
	// Touch the new pages; then shrink them away.
	va := vm.DataBase + hw.VAddr(10*hw.PageSize)
	if _, _, _, found, err := sa.ResolveShared(p, va, true); !found || err != nil {
		t.Fatal("grown page not faultable")
	}
	shot := 0
	freed, err := sa.ShrinkShared(p, data, 4, func() { shot++ })
	if err != nil {
		t.Fatal(err)
	}
	if freed != 1 || shot != 1 {
		t.Fatalf("shrink freed=%d shot=%d", freed, shot)
	}
	// Over-shrinking is rejected under the update lock, without a shootdown.
	if _, err := sa.ShrinkShared(p, data, data.Reg.Pages()+1, func() { shot++ }); err == nil {
		t.Fatal("shrink past the region's extent succeeded")
	}
	if shot != 1 {
		t.Fatalf("rejected shrink still shot down: shot=%d", shot)
	}
	if _, _, _, found, _ := sa.ResolveShared(p, va, false); found {
		t.Fatal("shrunk page still resolvable")
	}
}

func TestCarveStack(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	c1 := r.newProc(2)
	c2 := r.newProc(3)
	s1 := sa.CarveStack(c1, r.mem, 64, true)
	s2 := sa.CarveStack(c2, r.mem, 64, true)
	if s1.Base == s2.Base {
		t.Fatal("stacks overlap")
	}
	if s2.Base < s1.End()+hw.VAddr(StackGapPages*hw.PageSize) {
		t.Fatal("no guard gap between stacks")
	}
	// Both stacks are visible in the shared space.
	if sa.FindShared(p, s1.Base) != s1 || sa.FindShared(p, s2.Base+hw.PageSize) != s2 {
		t.Fatal("stacks not on shared list")
	}
	// Member exit detaches its stack.
	c1.SetShMask(proc.PRSALL)
	c2.SetShMask(proc.PRSALL)
	sa.AddMember(c1)
	sa.AddMember(c2)
	sa.ResolveShared(c1, s1.Base, true) // make a page resident
	used := r.mem.InUse()
	sa.Leave(c1)
	if sa.FindShared(p, s1.Base) != nil {
		t.Fatal("dead member's stack still shared")
	}
	if r.mem.InUse() != used-1 {
		t.Fatal("dead member's stack frames not freed")
	}
}

func TestCarveStackPrivate(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	c := r.newProc(2)
	st := sa.CarveStack(c, r.mem, 32, false)
	if sa.FindShared(p, st.Base) != nil {
		t.Fatal("non-shared stack visible in shared space (paper: must not be)")
	}
}

func TestCOWImageIsolation(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	// Write a value into the shared data region.
	va := vm.DataBase
	pfn, _, _, _, err := sa.ResolveShared(p, va, true)
	if err != nil {
		t.Fatal(err)
	}
	r.mem.StoreWord(pfn, 0, 41)

	shot := 0
	img := vm.Find(nil, 0) // keep vm import honest
	_ = img
	image := sa.COWImage(p, func() { shot++ })
	if shot != 1 {
		t.Fatal("COWImage did not shoot down stale translations")
	}
	child := vm.Find(image, va)
	if child == nil {
		t.Fatal("image misses data region")
	}
	// Child read sees the snapshot; group write after the image copies.
	cpfn, w, _, _ := child.Reg.Fill(child.PageIndex(va), false)
	if w {
		t.Fatal("aliased page writable")
	}
	if r.mem.LoadWord(cpfn, 0) != 41 {
		t.Fatal("image lost data")
	}
	gp, _, _, _, _ := sa.ResolveShared(p, va, true) // group write: breaks alias
	r.mem.StoreWord(gp, 0, 99)
	cpfn2, _, _, _ := child.Reg.Fill(child.PageIndex(va), false)
	if r.mem.LoadWord(cpfn2, 0) != 41 {
		t.Fatal("group write leaked into COW image")
	}
	// And the group still sees its own update.
	gp2, _, _, _, _ := sa.ResolveShared(p, va, false)
	if r.mem.LoadWord(gp2, 0) != 99 {
		t.Fatal("group lost its own write")
	}
	vm.DetachList(image)
}

func TestShadowEnv(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	p.Mu.Lock()
	p.Umask = 0o027
	p.Ulimit = 777
	p.Uid, p.Gid = 3, 4
	p.Mu.Unlock()
	sa := New(p)
	cdir, rdir, umask, ulimit, uid, gid := sa.ShadowEnv()
	if cdir != r.fs.Root() || rdir != r.fs.Root() {
		t.Fatal("shadow dirs wrong")
	}
	if umask != 0o027 || ulimit != 777 || uid != 3 || gid != 4 {
		t.Fatalf("shadow env = %o %d %d %d", umask, ulimit, uid, gid)
	}
}
