package core

import (
	"repro/internal/fs"
	"repro/internal/proc"
)

// SyncEntry reconciles p's private copies of shared resources from the
// shared address block. The kernel calls it when the single test of p's
// p_flag word finds sync bits set on kernel entry (paper §6.3: "when a
// shared process enters the system via a system call, the collection of
// bits in p_flag is checked in a single test; if any are set then a
// routine to handle the synchronization is called").
func (sa *ShAddr) SyncEntry(p *proc.Proc) {
	bits := p.TakeSyncBits()
	if bits == 0 {
		return
	}
	sa.Syncs.Add(1)
	if bits&proc.FSyncFds != 0 && p.ShMask()&proc.PRSFDS != 0 {
		sa.FupdSema.P(p, "shaddr: fd table sync")
		sa.syncFdsLocked(p)
		sa.FupdSema.V()
	}
	if bits&(proc.FSyncDir|proc.FSyncUmask|proc.FSyncUlimit|proc.FSyncID) != 0 {
		sa.syncAttrs(p, bits)
	}
}

// syncFdsLocked copies the block's descriptor table into p's, adjusting
// reference counts. Another member may have opened a descriptor past the
// end of p's table, so the table is grown to the block's length first —
// truncating would silently drop those descriptors. Caller holds FupdSema.
func (sa *ShAddr) syncFdsLocked(p *proc.Proc) {
	p.Mu.Lock()
	p.GrowFd(len(sa.ofile))
	for i := range sa.ofile {
		blk := sa.ofile[i]
		if p.Fd[i] == blk {
			p.FdFlags[i] = sa.pofile[i]
			continue
		}
		if p.Fd[i] != nil {
			p.Fd[i].Release()
		}
		if blk != nil {
			p.Fd[i] = blk.Hold()
		} else {
			p.Fd[i] = nil
		}
		p.FdFlags[i] = sa.pofile[i]
	}
	// The copy may have cleared slots below the allocation scan hint.
	p.ResetFdHint()
	p.Mu.Unlock()
}

// syncAttrs copies directory, umask, ulimit and identity shadows into p,
// honouring p's share mask.
func (sa *ShAddr) syncAttrs(p *proc.Proc, bits uint32) {
	sa.rupdLock.Lock()
	cdir, rdir := sa.cdir, sa.rdir
	cmask, limit := sa.cmask, sa.limit
	uid, gid := sa.uid, sa.gid
	if bits&proc.FSyncDir != 0 && p.ShMask()&proc.PRSDIR != 0 {
		cdir.Hold()
		rdir.Hold()
	}
	sa.rupdLock.Unlock()

	p.Mu.Lock()
	if bits&proc.FSyncDir != 0 && p.ShMask()&proc.PRSDIR != 0 {
		old, oldr := p.Cdir, p.Rdir
		p.Cdir, p.Rdir = cdir, rdir
		old.Release()
		oldr.Release()
	}
	if bits&proc.FSyncUmask != 0 && p.ShMask()&proc.PRSUMASK != 0 {
		p.Umask = cmask
	}
	if bits&proc.FSyncUlimit != 0 && p.ShMask()&proc.PRSULIMIT != 0 {
		p.Ulimit = limit
	}
	if bits&proc.FSyncID != 0 && p.ShMask()&proc.PRSID != 0 {
		p.Uid, p.Gid = uid, gid
	}
	p.Mu.Unlock()
}

// BeginFdUpdate single-threads a descriptor-table change (paper: "semaphore
// for single threading open file updating"). After acquiring the semaphore
// it re-synchronizes the caller if another member updated in the meantime
// — "it is important that the second process be synchronized prior to
// being allowed to update the resource. This is handled by also checking
// the synchronization bits after acquiring the lock."
func (sa *ShAddr) BeginFdUpdate(p *proc.Proc) {
	sa.FupdSema.P(p, "shaddr: fd update")
	// Clear only the fd bit; other dirty resources are reconciled at the
	// next kernel entry as usual.
	for {
		old := p.Flag.Load()
		if old&proc.FSyncFds == 0 {
			return
		}
		if p.Flag.CompareAndSwap(old, old&^proc.FSyncFds) {
			break
		}
	}
	sa.syncFdsLocked(p)
}

// EndFdUpdate publishes p's descriptor slot fd into the block (the block
// takes its own reference) and marks every other sharing member dirty.
// Caller holds the update semaphore via BeginFdUpdate; EndFdUpdate
// releases it.
func (sa *ShAddr) EndFdUpdate(p *proc.Proc, fds ...int) {
	p.Mu.Lock()
	for _, fd := range fds {
		if fd < 0 || fd >= p.FdCeiling() {
			continue
		}
		if fd >= len(sa.ofile) {
			// The updater's table grew past the block's shadow copy;
			// grow the shadow so the new slot is published, not dropped.
			ofile := make([]*fs.File, fd+1)
			pofile := make([]uint8, fd+1)
			copy(ofile, sa.ofile)
			copy(pofile, sa.pofile)
			sa.ofile, sa.pofile = ofile, pofile
		}
		old := sa.ofile[fd]
		var now *fs.File
		if fd < len(p.Fd) && p.Fd[fd] != nil {
			now = p.Fd[fd]
		}
		if old != now {
			if now != nil {
				sa.ofile[fd] = now.Hold()
			} else {
				sa.ofile[fd] = nil
			}
			if old != nil {
				old.Release()
			}
		}
		if fd < len(p.FdFlags) {
			sa.pofile[fd] = p.FdFlags[fd]
		}
	}
	p.Mu.Unlock()
	sa.markOthers(p, proc.PRSFDS, proc.FSyncFds)
	sa.FupdSema.V()
}

// PropagateDir publishes p's current and root directory into the block and
// marks sharing members dirty. p's own Cdir/Rdir are already updated.
func (sa *ShAddr) PropagateDir(p *proc.Proc) {
	p.Mu.Lock()
	cdir, rdir := p.Cdir.Hold(), p.Rdir.Hold()
	p.Mu.Unlock()
	sa.rupdLock.Lock()
	old, oldr := sa.cdir, sa.rdir
	sa.cdir, sa.rdir = cdir, rdir
	sa.rupdLock.Unlock()
	old.Release()
	oldr.Release()
	sa.markOthers(p, proc.PRSDIR, proc.FSyncDir)
}

// PropagateUmask publishes p's umask.
func (sa *ShAddr) PropagateUmask(p *proc.Proc) {
	p.Mu.Lock()
	v := p.Umask
	p.Mu.Unlock()
	sa.rupdLock.Lock()
	sa.cmask = v
	sa.rupdLock.Unlock()
	sa.markOthers(p, proc.PRSUMASK, proc.FSyncUmask)
}

// PropagateUlimit publishes p's ulimit.
func (sa *ShAddr) PropagateUlimit(p *proc.Proc) {
	p.Mu.Lock()
	v := p.Ulimit
	p.Mu.Unlock()
	sa.rupdLock.Lock()
	sa.limit = v
	sa.rupdLock.Unlock()
	sa.markOthers(p, proc.PRSULIMIT, proc.FSyncUlimit)
}

// PropagateID publishes p's uid/gid.
func (sa *ShAddr) PropagateID(p *proc.Proc) {
	p.Mu.Lock()
	uid, gid := p.Uid, p.Gid
	p.Mu.Unlock()
	sa.rupdLock.Lock()
	sa.uid, sa.gid = uid, gid
	sa.rupdLock.Unlock()
	sa.markOthers(p, proc.PRSID, proc.FSyncID)
}

// ShadowEnv returns the block's current shadow attribute values (for
// diagnostics and for initializing sproc children).
func (sa *ShAddr) ShadowEnv() (cdir, rdir *fs.Inode, umask uint16, ulimit int64, uid, gid uint16) {
	sa.rupdLock.Lock()
	defer sa.rupdLock.Unlock()
	return sa.cdir, sa.rdir, sa.cmask, sa.limit, sa.uid, sa.gid
}

// ShadowFds returns a copy of the block's descriptor table with references
// held for the caller (the sproc child initialization path).
func (sa *ShAddr) ShadowFds(p *proc.Proc) ([]*fs.File, []uint8) {
	sa.FupdSema.P(p, "shaddr: fd snapshot")
	fds := make([]*fs.File, len(sa.ofile))
	flags := make([]uint8, len(sa.pofile))
	copy(flags, sa.pofile)
	for i, f := range sa.ofile {
		if f != nil {
			fds[i] = f.Hold()
		}
	}
	sa.FupdSema.V()
	return fds, flags
}
