package core

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// ErrTextWrite reports a store into a shared text region.
var ErrTextWrite = vm.ErrTextWrite

// ResolveShared resolves a page fault against the shared pregion list
// under the shared read lock — the hot path of §6.2. Multiple members
// fault concurrently; an updater excludes them all. found is false when no
// shared pregion covers va.
//
// The common case touches no lock word shared with another CPU: the read
// lock is taken on the faulting CPU's own reader slot, the pregion comes
// from the process's last-hit cache (valid because the list generation,
// bumped by every mutation under the update lock, still matches), and a
// resident fill is two atomic loads in the region's page table.
func (sa *ShAddr) ResolveShared(p *proc.Proc, va hw.VAddr, write bool) (pfn hw.PFN, writable bool, res vm.FillResult, found bool, err error) {
	pfn, writable, res, _, found, err = sa.ResolveSharedAccounted(p, va, write)
	return pfn, writable, res, found, err
}

// ResolveSharedAccounted is ResolveShared additionally drawing the fill's
// quota charge from the member's spawn-time frame reservation (when it has
// one) and reporting the page-table slots a lazy-dup materialization
// walked on this fault, so the kernel charges the deferred duplication
// cost to the CPU that took the first touch.
func (sa *ShAddr) ResolveSharedAccounted(p *proc.Proc, va hw.VAddr, write bool) (pfn hw.PFN, writable bool, res vm.FillResult, lazyPages int, found bool, err error) {
	cpu := int(p.CPU.Load())
	if sa.opts.ExclusiveVMLock {
		// Ablation: the rejected design — faults serialize on one lock.
		sa.Acc.Lock(p)
		defer sa.Acc.Unlock()
		pr := vm.Find(sa.regions, va)
		if pr == nil {
			return hw.NoPFN, false, vm.FillCached, 0, false, nil
		}
		pfn, writable, res, lazyPages, err = pr.Reg.FillAccounted(pr.PageIndex(va), write, cpu, &sa.frameAcct, p.Resv)
		return pfn, writable, res, lazyPages, true, err
	}
	slot := sa.Acc.RLockOn(p, cpu)
	gen := sa.gen.Load()
	pr := p.VMC.Get(gen)
	if pr != nil && pr.Contains(va) {
		sa.CacheHits.Add(1)
	} else {
		pr = vm.Find(sa.regions, va)
		if pr == nil {
			sa.Acc.RUnlockOn(slot)
			return hw.NoPFN, false, vm.FillCached, 0, false, nil
		}
		sa.CacheMisses.Add(1)
		p.VMC.Put(gen, pr)
	}
	pfn, writable, res, lazyPages, err = pr.Reg.FillAccounted(pr.PageIndex(va), write, cpu, &sa.frameAcct, p.Resv)
	sa.Acc.RUnlockOn(slot)
	return pfn, writable, res, lazyPages, true, err
}

// ReclaimQuota is the over-quota degradation pass: under the update lock,
// walk the shared pregion list freeing resident, sole-referenced, all-zero
// frames charged to the group, then shoot down every TLB so no member can
// reach a freed frame. Dropping all-zero pages is semantically lossless
// (the next touch refaults an identical zero fill), so this runs before a
// member's over-quota fault is allowed to surface ENOMEM — the same
// reclaim-before-failure contract the frame allocator's cache drain
// provides for machine-wide exhaustion. Returns the frames released.
func (sa *ShAddr) ReclaimQuota(p *proc.Proc, shoot func()) int {
	cpu := int(p.CPU.Load())
	sa.Acc.Lock(p)
	freed := vm.ReclaimZeroList(sa.regions, &sa.frameAcct, cpu)
	sa.QuotaReclaims.Add(1)
	if freed > 0 {
		sa.touchRegions()
		sa.ReclaimedZeros.Add(int64(freed))
		shoot()
		sa.Shootdowns.Add(1)
	}
	sa.Acc.Unlock()
	return freed
}

// UnshareVM detaches p from the shared address space (§8 "stop sharing"):
// p gets a copy-on-write private image of everything it could see, a fresh
// address-space identifier, and its sproc stack is withdrawn from the
// shared list. The whole transition happens under the update lock with a
// shootdown, exactly like a shrink.
func (sa *ShAddr) UnshareVM(p *proc.Proc, shoot func()) []*vm.PRegion {
	dup := vm.DupListFlush
	if sa.opts.EagerDup {
		dup = vm.DupListEager
	}
	sa.Acc.Lock(p)
	priv, _ := dup(p.Private)
	shared, _ := dup(sa.regions)
	// The stack withdrawal below frees address space unconditionally, so
	// the shootdown cannot be elided here whatever the dup reported.
	img := vm.MergeLists(priv, shared)
	// Withdraw p's own stack from the shared space; p keeps the COW dup.
	sa.listLock.Lock()
	ms := sa.memberStack[p]
	delete(sa.memberStack, p)
	sa.listLock.Unlock()
	if ms.pr != nil && ms.shared {
		sa.regions = vm.Remove(sa.regions, ms.pr)
		defer ms.pr.Reg.Detach()
	}
	sa.touchRegions()
	// p resolves faults privately from now on; a cached shared pregion
	// must not survive into a future group, where a colliding generation
	// could validate it.
	p.VMC.Clear()
	shoot()
	sa.Shootdowns.Add(1)
	sa.Acc.Unlock()
	return img
}

// FindShared locates the shared pregion containing va under the read lock
// (for syscalls that validate an address without filling it).
func (sa *ShAddr) FindShared(p *proc.Proc, va hw.VAddr) *vm.PRegion {
	slot := sa.Acc.RLockOn(p, int(p.CPU.Load()))
	pr := vm.Find(sa.regions, va)
	sa.Acc.RUnlockOn(slot)
	return pr
}

// Regions returns a snapshot of the shared pregion list (diagnostics).
func (sa *ShAddr) RegionList(p *proc.Proc) []*vm.PRegion {
	slot := sa.Acc.RLockOn(p, int(p.CPU.Load()))
	out := make([]*vm.PRegion, len(sa.regions))
	copy(out, sa.regions)
	sa.Acc.RUnlockOn(slot)
	return out
}

// AttachShared adds a pregion to the shared list under the update lock
// (mmap/shmat by a VM-sharing member: "if one process adds a pregion, all
// other share group members will immediately see that new virtual
// region"). Attaching never frees pages, so no shootdown is needed.
func (sa *ShAddr) AttachShared(p *proc.Proc, pr *vm.PRegion) error {
	sa.Acc.Lock(p)
	defer sa.Acc.Unlock()
	if vm.Overlaps(sa.regions, pr.Base, pr.Reg.Pages()) {
		return fmt.Errorf("core: attach overlaps existing shared region at %#x", uint32(pr.Base))
	}
	sa.regions = vm.Insert(sa.regions, pr)
	sa.touchRegions()
	return nil
}

// DetachShared removes a pregion from the shared list and frees its pages,
// following the §6.2 protocol exactly: take the update lock (any member
// that faults now sleeps on the shared read lock), synchronously flush the
// TLBs of all processors via shoot, and only then release the physical
// pages.
func (sa *ShAddr) DetachShared(p *proc.Proc, pr *vm.PRegion, shoot func()) error {
	sa.Acc.Lock(p)
	defer sa.Acc.Unlock()
	before := len(sa.regions)
	sa.regions = vm.Remove(sa.regions, pr)
	if len(sa.regions) == before {
		return fmt.Errorf("core: detach of pregion not on shared list")
	}
	sa.touchRegions()
	shoot()
	sa.Shootdowns.Add(1)
	if pr.Reg.Type == vm.RShm && pr.Base >= vm.ShmBase && pr.Base < vm.SprocStackBase {
		sa.shmFree[pr.Reg.Pages()] = append(sa.shmFree[pr.Reg.Pages()], pr.Base)
	}
	pr.Reg.Detach()
	return nil
}

// GrowShared extends a shared region by n pages under the update lock
// (the sbrk path). Growth exposes new demand-zero pages; no pages die, so
// no shootdown is required — but the lock guarantees the §5.1 rule that by
// the time the grower returns, every member sees the new size.
func (sa *ShAddr) GrowShared(p *proc.Proc, pr *vm.PRegion, n int) {
	sa.Acc.Lock(p)
	pr.Reg.Grow(n)
	sa.touchRegions()
	sa.Acc.Unlock()
}

// ShrinkShared removes the last n pages of a shared region: update lock,
// TLB flush, then the frames are freed. Returns the number of resident
// frames released. The region's extent is validated under the update lock
// (another member may have shrunk it since the caller looked), and shoot
// runs under the lock too — a range-based shootdown must compute its range
// inside the closure, where pr.Reg.Pages() is stable, or it will flush the
// wrong tail.
func (sa *ShAddr) ShrinkShared(p *proc.Proc, pr *vm.PRegion, n int, shoot func()) (int, error) {
	sa.Acc.Lock(p)
	defer sa.Acc.Unlock()
	if n > pr.Reg.Pages() {
		return 0, fmt.Errorf("core: shrink of %d pages exceeds region's %d", n, pr.Reg.Pages())
	}
	sa.touchRegions()
	shoot()
	sa.Shootdowns.Add(1)
	return pr.Reg.Shrink(n), nil
}

// CarveStack allocates a non-overlapping stack range in the shared space
// for a new sproc child (paper §5.1: "a new stack is automatically created
// for the child process ... visible to all other processes in the share
// group, and will automatically grow in size as needed"). The stack is a
// demand-zero region of maxPages; it is attached to the shared list when
// shared is true (PR_SADDR child) and recorded so Leave can detach it.
func (sa *ShAddr) CarveStack(child *proc.Proc, mem *hw.Memory, maxPages int, shared bool) *vm.PRegion {
	sa.Acc.Lock(child)
	defer sa.Acc.Unlock()
	// Recycle the range of a departed member's stack when one fits;
	// otherwise carve fresh address space.
	sa.listLock.Lock()
	var base hw.VAddr
	if free := sa.stackFree[maxPages]; len(free) > 0 {
		base = free[len(free)-1]
		sa.stackFree[maxPages] = free[:len(free)-1]
	} else {
		base = sa.nextStack
		sa.nextStack += hw.VAddr((maxPages + StackGapPages) * hw.PageSize)
	}
	sa.listLock.Unlock()
	pr := &vm.PRegion{Reg: vm.NewRegion(mem, vm.RStack, maxPages), Base: base}
	sa.listLock.Lock()
	sa.memberStack[child] = memberStack{pr: pr, pages: maxPages, shared: shared}
	sa.listLock.Unlock()
	if shared {
		sa.regions = vm.Insert(sa.regions, pr)
		sa.touchRegions()
	}
	return pr
}

// CarveStackAt places a member stack at an exact base address — the
// restore path's fidelity requirement: a checkpointed member's stack must
// reappear at its recorded base, not wherever deterministic re-carving
// would land after free-list recycling. The range is overlap-checked
// against the shared list, and the carve cursor is advanced past it so
// later CarveStack calls cannot collide.
func (sa *ShAddr) CarveStackAt(child *proc.Proc, mem *hw.Memory, base hw.VAddr, maxPages int, shared bool) (*vm.PRegion, error) {
	sa.Acc.Lock(child)
	defer sa.Acc.Unlock()
	end := base + hw.VAddr(maxPages*hw.PageSize)
	sa.listLock.Lock()
	if vm.Overlaps(sa.regions, base, maxPages) {
		sa.listLock.Unlock()
		return nil, fmt.Errorf("core: stack range %#x..%#x collides with a shared region", base, end)
	}
	if next := end + hw.VAddr(StackGapPages*hw.PageSize); sa.nextStack < next {
		sa.nextStack = next
	}
	pr := &vm.PRegion{Reg: vm.NewRegion(mem, vm.RStack, maxPages), Base: base}
	sa.memberStack[child] = memberStack{pr: pr, pages: maxPages, shared: shared}
	sa.listLock.Unlock()
	if shared {
		sa.regions = vm.Insert(sa.regions, pr)
		sa.touchRegions()
	}
	return pr, nil
}

// AttachAnon carves a fresh range in the group's mapping arena and
// attaches reg there on the shared list (the mmap path for VM-sharing
// members). It returns the base address.
func (sa *ShAddr) AttachAnon(p *proc.Proc, reg *vm.Region) hw.VAddr {
	sa.Acc.Lock(p)
	defer sa.Acc.Unlock()
	base := sa.carveShmLocked(reg.Pages())
	sa.regions = vm.Insert(sa.regions, &vm.PRegion{Reg: reg, Base: base})
	sa.touchRegions()
	return base
}

// carveShmLocked hands out an arena range, recycling released ranges so
// long-running map/unmap churn cannot exhaust the 32-bit space. Caller
// holds the update lock.
func (sa *ShAddr) carveShmLocked(npages int) hw.VAddr {
	if free := sa.shmFree[npages]; len(free) > 0 {
		base := free[len(free)-1]
		sa.shmFree[npages] = free[:len(free)-1]
		return base
	}
	base := sa.nextShm
	sa.nextShm += hw.VAddr((npages + 1) * hw.PageSize)
	return base
}

// AttachPrivateRange carves a range from the group's mapping arena without
// attaching anything to the shared list — the address space bookkeeping
// half of a member-private mapping (the §8 selective-sharing extension).
// Reserving the range in the shared arena keeps future shared mappings
// from colliding with it.
func (sa *ShAddr) AttachPrivateRange(p *proc.Proc, npages int) hw.VAddr {
	sa.Acc.Lock(p)
	defer sa.Acc.Unlock()
	return sa.carveShmLocked(npages)
}

// COWImage builds a copy-on-write private image of the group's address
// space for a child that does not share VM (fork by a member, or sproc
// without PR_SADDR): the parent's private pregions plus the whole shared
// list are duplicated — lazily by default (DESIGN.md §16), eagerly under
// the EagerDup ablation. When any duplicated region has ever held a
// writable PTE, writable translations cached for the space may now be
// stale, so shoot flushes every processor before the update lock is
// released; a never-written image skips the flush entirely.
func (sa *ShAddr) COWImage(parent *proc.Proc, shoot func()) []*vm.PRegion {
	dup := vm.DupListFlush
	if sa.opts.EagerDup {
		dup = vm.DupListEager
	}
	sa.Acc.Lock(parent)
	defer sa.Acc.Unlock()
	priv, f1 := dup(parent.Private)
	shared, f2 := dup(sa.regions)
	img := vm.MergeLists(priv, shared)
	if f1 || f2 {
		shoot()
		sa.Shootdowns.Add(1)
	}
	return img
}
