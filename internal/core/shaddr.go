// Package core implements process share groups — the paper's contribution.
//
// A share group is a set of processes with a common ancestor that have not
// exec'd, selectively sharing resources according to per-process share
// masks. All members reference a single shared address block (shaddr_t,
// paper §6.1) holding:
//
//   - the shared pregion list and its shared read lock (s_region,
//     s_acclck/s_acccnt/s_waitcnt/s_updwait);
//   - the member list (s_plink, s_refcnt, s_flag, s_listlock);
//   - the open-file update semaphore and shadow descriptor table
//     (s_fupdsema, s_ofile, s_pofile);
//   - shadow copies of the current/root directory, umask, ulimit and ids
//     (s_cdir, s_rdir, s_cmask, s_limit, s_uid, s_gid) with a misc update
//     lock (s_rupdlock).
//
// Resources with reference counts (files, inodes) have their counts bumped
// once for the shared address block itself, so the member that changed a
// resource may exit before the others synchronize (paper §6.3).
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/klock"
	"repro/internal/proc"
	"repro/internal/vm"
)

// StackGapPages separates consecutive sproc stacks in the shared space so
// a runaway stack cannot silently walk into its neighbour.
const StackGapPages = 16

// ShAddr is the shared address block: one per share group.
type ShAddr struct {
	// Shared pregion handling.
	Acc     klock.MRLock  // s_acclck / s_acccnt / s_waitcnt / s_updwait
	regions []*vm.PRegion // s_region: the shared pregion list
	ASID    hw.ASID       // the shared virtual space's identifier

	// gen is the shared-list generation: bumped (under the Acc update
	// lock) by every mutation of the list or of a listed region's extent,
	// it validates the members' last-hit pregion caches — a fault whose
	// cached generation still matches may skip the list scan. nregions
	// mirrors len(regions) for lock-free diagnostics (String, sgtop).
	gen      atomic.Uint64
	nregions atomic.Int32

	// Membership.
	listLock klock.Spin   // s_listlock
	members  []*proc.Proc // s_plink
	refcnt   int          // s_refcnt

	// Single-threaded open-file updating.
	FupdSema *klock.Sema // s_fupdsema (initialized to 1: a sleeping mutex)
	ofile    []*fs.File  // s_ofile: block's copy of the descriptor table
	pofile   []uint8     // s_pofile: copy of the descriptor flags

	// Misc shared attributes, guarded by rupdLock.
	rupdLock klock.Spin // s_rupdlock
	cdir     *fs.Inode  // s_cdir (held)
	rdir     *fs.Inode  // s_rdir (held)
	cmask    uint16     // s_cmask: umask
	limit    int64      // s_limit: ulimit
	uid      uint16     // s_uid
	gid      uint16     // s_gid

	// Stack and mapping arenas, guarded by the Acc update lock.
	nextStack hw.VAddr
	nextShm   hw.VAddr

	// memberStack remembers the stack sproc carved for each member so the
	// range can be recycled (and, for VM-sharing members, the pregion
	// detached from the shared list) when the member exits.
	memberStack map[*proc.Proc]memberStack
	stackFree   map[int][]hw.VAddr // free stack ranges by size in pages
	shmFree     map[int][]hw.VAddr // free mapping ranges by size in pages

	// Options (ablation and §8-extension switches).
	opts Options

	// gang is the per-group gang-scheduling request (§8, PR_SETGANG).
	gang atomic.Bool

	// Resource-principal state (setshares(2)/getusage(2)): the fair-share
	// CPU account the scheduler charges at quantum boundaries, the frame
	// account every member's page fills charge, and the member ceiling
	// sproc enforces (0 = unlimited).
	cpuAcct   *proc.CPUAcct
	frameAcct hw.FrameAcct
	memberCap atomic.Int32

	// Quota-reclaim statistics (the over-quota degradation path).
	QuotaReclaims  atomic.Int64 // reclaim passes run for this group
	ReclaimedZeros atomic.Int64 // all-zero frames the passes released

	// Statistics.
	Propagations atomic.Int64 // shared-resource updates pushed to the block
	Syncs        atomic.Int64 // member entry synchronizations performed
	Shootdowns   atomic.Int64 // region shrink/detach shootdowns
	CacheHits    atomic.Int64 // faults resolved from a member's pregion cache
	CacheMisses  atomic.Int64 // faults that scanned the shared list
}

// touchRegions records a mutation of the shared pregion list (or of a
// listed region's extent): it invalidates every member's lookup cache by
// bumping the generation and refreshes the lock-free region count. Caller
// holds the Acc update lock (or is the teardown's last member).
func (sa *ShAddr) touchRegions() {
	sa.gen.Add(1)
	sa.nregions.Store(int32(len(sa.regions)))
}

// Generation returns the shared-list generation (tests, diagnostics).
func (sa *ShAddr) Generation() uint64 { return sa.gen.Load() }

// Options selects implementation variants, used by the ablation
// experiments to measure the design choices the paper made.
type Options struct {
	// ExclusiveVMLock replaces the shared read lock on the pregion list
	// with an exclusive lock — the design the paper rejected because
	// every member's page fault would serialize.
	ExclusiveVMLock bool
	// EagerAttrSync pushes attribute changes into every member's user
	// area at update time instead of deferring to each member's next
	// kernel entry — the design the paper rejected because members may
	// not be available ("it could even be waiting for a resource that
	// the examining process controls").
	EagerAttrSync bool
	// Topo shapes the shared read lock's distributed reader slots to the
	// machine's NUMA topology, so member CPUs that share a slot are always
	// node-mates. The zero value leaves the flat slot hash.
	Topo hw.Topology
	// EagerDup makes COWImage/UnshareVM duplicate regions with the
	// spawn-time table walk (vm.DupListEager) instead of the lazy O(1)
	// clone — the pre-lazy fork path, kept so benchtab E1c can measure
	// the O(pages) cost the lazy protocol removes.
	EagerDup bool
}

// Gang implements proc.ShareGroup: whether the group asked for gang
// scheduling.
func (sa *ShAddr) Gang() bool { return sa.gang.Load() }

// SetGang records the group's gang-scheduling request (PR_SETGANG).
func (sa *ShAddr) SetGang(on bool) { sa.gang.Store(on) }

// CPUAcct implements proc.ShareGroup: the group's fair-share CPU account.
func (sa *ShAddr) CPUAcct() *proc.CPUAcct { return sa.cpuAcct }

// FrameAcct returns the group's frame account; member page fills charge it.
func (sa *ShAddr) FrameAcct() *hw.FrameAcct { return &sa.frameAcct }

// MemberCap returns the group's member ceiling (0 = unlimited).
func (sa *ShAddr) MemberCap() int32 { return sa.memberCap.Load() }

// SetMemberCap replaces the member ceiling. An existing overshoot is not
// evicted; further sprocs are refused until attrition brings it back down.
func (sa *ShAddr) SetMemberCap(n int32) {
	if n < 0 {
		n = 0
	}
	sa.memberCap.Store(n)
}

var _ proc.ShareGroup = (*ShAddr)(nil)

// New creates a share group around its first member with default options.
func New(creator *proc.Proc) *ShAddr { return NewWithOptions(creator, Options{}) }

// NewWithOptions creates a share group around its first member. The creator's
// sharable pregions move to the shared list (paper §6.2: "when a process
// first creates a share group all of its sharable pregions are moved to
// the list of pregions in the shared address block"); the PRDA stays
// private. The block takes its own references on the creator's open files
// and directories. The creator's share mask becomes PR_SALL ("the original
// process in a share group is given a mask indicating that all resources
// are shared").
func NewWithOptions(creator *proc.Proc, opts Options) *ShAddr {
	sa := &ShAddr{
		FupdSema:    klock.NewSema(1),
		cpuAcct:     proc.NewCPUAcct(),
		ASID:        creator.ASID,
		nextStack:   vm.SprocStackBase,
		nextShm:     creator.NextShm,
		memberStack: map[*proc.Proc]memberStack{},
		stackFree:   map[int][]hw.VAddr{},
		shmFree:     map[int][]hw.VAddr{},
		opts:        opts,
	}

	// Move sharable pregions to the shared list; only the PRDA stays
	// private. Both halves of the partition keep the index's sort order.
	shared, private := vm.Partition(creator.Private, func(pr *vm.PRegion) bool {
		return pr.Reg.Type != vm.RPRDA
	})
	sa.regions = shared
	creator.Private = private
	sa.Acc.ConfigureTopology(opts.Topo.NCPU, opts.Topo.Nodes)
	sa.touchRegions()

	// Shadow the environment, bumping reference counts for the block.
	creator.Mu.Lock()
	sa.ofile = make([]*fs.File, len(creator.Fd))
	sa.pofile = make([]uint8, len(creator.FdFlags))
	copy(sa.pofile, creator.FdFlags)
	for i, f := range creator.Fd {
		if f != nil {
			sa.ofile[i] = f.Hold()
		}
	}
	if creator.Cdir != nil {
		sa.cdir = creator.Cdir.Hold()
	}
	if creator.Rdir != nil {
		sa.rdir = creator.Rdir.Hold()
	}
	sa.cmask = creator.Umask
	sa.limit = creator.Ulimit
	sa.uid = creator.Uid
	sa.gid = creator.Gid
	creator.Mu.Unlock()

	sa.members = []*proc.Proc{creator}
	sa.refcnt = 1
	creator.SetShare(sa)
	creator.SetShMask(proc.PRSALL)
	return sa
}

// AddMember links p into the group.
func (sa *ShAddr) AddMember(p *proc.Proc) {
	sa.listLock.Lock()
	sa.members = append(sa.members, p)
	sa.refcnt++
	sa.listLock.Unlock()
	p.SetShare(sa)
}

// memberStack records the stack sproc carved for a member.
type memberStack struct {
	pr     *vm.PRegion
	pages  int // carved size, for range recycling
	shared bool
}

// Leave removes p from the group (exit or exec). The last member out
// tears the block down, releasing the block's own references. If p shares
// the address space, the stack sproc carved for it is detached from the
// shared list under the update lock — other members may still be running,
// so the detach follows the full shootdown protocol. The stack's address
// range is recycled for future sproc children either way.
func (sa *ShAddr) Leave(p *proc.Proc) {
	if ms := sa.takeMemberStack(p); ms.pr != nil {
		if ms.shared {
			sa.Acc.Lock(p)
			sa.regions = vm.Remove(sa.regions, ms.pr)
			sa.touchRegions()
			sa.Acc.Unlock()
			ms.pr.Reg.Detach()
		}
		sa.listLock.Lock()
		sa.stackFree[ms.pages] = append(sa.stackFree[ms.pages], ms.pr.Base)
		sa.listLock.Unlock()
	}

	sa.listLock.Lock()
	for i, m := range sa.members {
		if m == p {
			sa.members = append(sa.members[:i], sa.members[i+1:]...)
			break
		}
	}
	sa.refcnt--
	last := sa.refcnt == 0
	sa.listLock.Unlock()
	p.SetShare(nil)
	p.SetShMask(0)
	// The lookup cache must not outlive the membership: generations are
	// per-group counters, so a stale entry carried into a later group
	// could validate against a colliding generation.
	p.VMC.Clear()

	if last {
		sa.teardown()
	}
}

func (sa *ShAddr) takeMemberStack(p *proc.Proc) memberStack {
	sa.listLock.Lock()
	defer sa.listLock.Unlock()
	ms := sa.memberStack[p]
	delete(sa.memberStack, p)
	return ms
}

// teardown releases everything the block holds. Only the last leaving
// member calls it, so no locks are needed.
func (sa *ShAddr) teardown() {
	vm.DetachList(sa.regions)
	sa.regions = nil
	sa.touchRegions()
	for i, f := range sa.ofile {
		if f != nil {
			f.Release()
			sa.ofile[i] = nil
		}
	}
	// The creator's directories can be nil (embryonic or torn-down
	// processes); NewWithOptions only takes references that exist.
	if sa.cdir != nil {
		sa.cdir.Release()
	}
	if sa.rdir != nil {
		sa.rdir.Release()
	}
	sa.cdir, sa.rdir = nil, nil
}

// Size returns the number of members.
func (sa *ShAddr) Size() int {
	sa.listLock.Lock()
	defer sa.listLock.Unlock()
	return sa.refcnt
}

// Members returns a snapshot of the member list.
func (sa *ShAddr) Members() []*proc.Proc {
	sa.listLock.Lock()
	defer sa.listLock.Unlock()
	out := make([]*proc.Proc, len(sa.members))
	copy(out, sa.members)
	return out
}

// markOthers sets sync bits on every sharing member except the updater.
// This is the p_flag update walk of §6.3. In the eager-sync ablation the
// update is pushed into every member's user area immediately instead.
func (sa *ShAddr) markOthers(updater *proc.Proc, mask proc.Mask, bits uint32) {
	if sa.opts.EagerAttrSync {
		sa.pushOthers(updater, mask, bits)
		return
	}
	sa.listLock.Lock()
	for _, m := range sa.members {
		if m != updater && m.ShMask()&mask != 0 {
			m.SetSyncBits(bits)
		}
	}
	sa.listLock.Unlock()
	sa.Propagations.Add(1)
}

// pushOthers is the eager-sync ablation: apply the change to every member
// now, while it may be running, sleeping, or waiting on a resource the
// updater holds. For descriptor pushes the caller holds FupdSema.
func (sa *ShAddr) pushOthers(updater *proc.Proc, mask proc.Mask, bits uint32) {
	for _, m := range sa.Members() {
		if m == updater || m.ShMask()&mask == 0 {
			continue
		}
		if bits&proc.FSyncFds != 0 {
			sa.syncFdsLocked(m)
		}
		if rest := bits &^ proc.FSyncFds; rest != 0 {
			sa.syncAttrs(m, rest)
		}
		sa.Syncs.Add(1)
	}
	sa.Propagations.Add(1)
}

func (sa *ShAddr) String() string {
	sa.listLock.Lock()
	n := sa.refcnt
	sa.listLock.Unlock()
	// nregions mirrors len(sa.regions) atomically: reading the slice here
	// would race with list mutations made under the Acc update lock.
	return fmt.Sprintf("shaddr{members=%d, regions=%d, asid=%d}", n, sa.nregions.Load(), sa.ASID)
}
