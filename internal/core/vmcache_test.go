package core

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// resolve faults va through the shared fast path and fails the test if no
// shared pregion covers it.
func resolve(t *testing.T, sa *ShAddr, p *proc.Proc, va hw.VAddr) {
	t.Helper()
	if _, _, _, found, err := sa.ResolveShared(p, va, false); err != nil || !found {
		t.Fatalf("ResolveShared(%#x) = found=%v err=%v", uint32(va), found, err)
	}
}

// TestLookupCacheHitsAndInvalidation drives the per-process last-hit
// pregion cache through its whole protocol: a first fault misses and
// seeds the cache, a repeat fault in the same pregion hits, and every
// list/extent mutation (attach, grow, shrink, detach, member leave) bumps
// the generation so the next fault re-scans instead of trusting a stale
// hit.
func TestLookupCacheHitsAndInvalidation(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)

	hits := func() int64 { return sa.CacheHits.Load() }
	misses := func() int64 { return sa.CacheMisses.Load() }

	resolve(t, sa, p, vm.DataBase)
	if hits() != 0 || misses() != 1 {
		t.Fatalf("first fault: hits=%d misses=%d, want 0/1", hits(), misses())
	}
	resolve(t, sa, p, vm.DataBase+hw.PageSize)
	if hits() != 1 || misses() != 1 {
		t.Fatalf("repeat fault: hits=%d misses=%d, want 1/1", hits(), misses())
	}

	// Attach invalidates: the generation moves, the cached hit is stale.
	gen := sa.Generation()
	base := sa.AttachAnon(p, vm.NewRegion(r.mem, vm.RShm, 2))
	if sa.Generation() == gen {
		t.Fatal("AttachAnon did not bump the generation")
	}
	resolve(t, sa, p, vm.DataBase)
	if hits() != 1 || misses() != 2 {
		t.Fatalf("post-attach fault: hits=%d misses=%d, want 1/2", hits(), misses())
	}

	// Extent changes invalidate too: grow, then shrink.
	data := sa.FindShared(p, vm.DataBase)
	gen = sa.Generation()
	sa.GrowShared(p, data, 2)
	if sa.Generation() == gen {
		t.Fatal("GrowShared did not bump the generation")
	}
	gen = sa.Generation()
	if _, err := sa.ShrinkShared(p, data, 2, func() {}); err != nil {
		t.Fatal(err)
	}
	if sa.Generation() == gen {
		t.Fatal("ShrinkShared did not bump the generation")
	}
	resolve(t, sa, p, vm.DataBase)
	if hits() != 1 || misses() != 3 {
		t.Fatalf("post-resize fault: hits=%d misses=%d, want 1/3", hits(), misses())
	}

	// Cache the mapped pregion, detach it, and fault elsewhere: the evicted
	// entry must not resurface as a hit.
	resolve(t, sa, p, base) // miss 4, caches the anon pregion
	pr := sa.FindShared(p, base)
	gen = sa.Generation()
	if err := sa.DetachShared(p, pr, func() {}); err != nil {
		t.Fatal(err)
	}
	if sa.Generation() == gen {
		t.Fatal("DetachShared did not bump the generation")
	}
	resolve(t, sa, p, vm.DataBase)
	if hits() != 1 || misses() != 5 {
		t.Fatalf("post-detach fault: hits=%d misses=%d, want 1/5", hits(), misses())
	}
	// And the refreshed cache serves hits again.
	resolve(t, sa, p, vm.DataBase)
	if hits() != 2 {
		t.Fatalf("refreshed cache: hits=%d, want 2", hits())
	}
}

// TestLookupCacheClearedOnLeave: generations are per-group counters, so a
// cached pregion must not survive the owner's departure — carried into a
// later group, a colliding generation would validate it against a list it
// is not on.
func TestLookupCacheClearedOnLeave(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	resolve(t, sa, p, vm.DataBase)
	gen := sa.Generation()
	if p.VMC.Get(gen) == nil {
		t.Fatal("fault did not seed the cache")
	}
	sa.Leave(p)
	if p.VMC.Get(gen) != nil {
		t.Fatal("Leave left a cached shared pregion behind")
	}
}

// TestLookupCacheClearedOnUnshareVM: same hazard when a member keeps its
// group membership but stops sharing VM.
func TestLookupCacheClearedOnUnshareVM(t *testing.T) {
	r := newRig()
	p := r.newProc(1)
	sa := New(p)
	resolve(t, sa, p, vm.DataBase)
	if p.VMC.Get(sa.Generation()) == nil {
		t.Fatal("fault did not seed the cache")
	}
	gen := sa.Generation()
	img := sa.UnshareVM(p, func() {})
	if len(img) == 0 {
		t.Fatal("UnshareVM returned no image")
	}
	if p.VMC.Get(gen) != nil || p.VMC.Get(sa.Generation()) != nil {
		t.Fatal("UnshareVM left a cached shared pregion behind")
	}
	vm.DetachList(img)
}

// TestLookupCacheStaleGenerationMisses checks the cache object itself: a
// Put under one generation is invisible to Gets under any other.
func TestLookupCacheStaleGenerationMisses(t *testing.T) {
	var c vm.LookupCache
	m := hw.NewMemory(8)
	pr := &vm.PRegion{Reg: vm.NewRegion(m, vm.RData, 1), Base: vm.DataBase}
	if c.Get(0) != nil {
		t.Fatal("empty cache returned a pregion")
	}
	c.Put(3, pr)
	if c.Get(3) != pr {
		t.Fatal("cache missed its own generation")
	}
	if c.Get(4) != nil || c.Get(2) != nil {
		t.Fatal("cache hit across a generation change")
	}
}
