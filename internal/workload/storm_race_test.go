package workload

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/uspin"
)

// TestResidentFaultStormRace drives the lock-free fault fast path from
// every member while the driver churns everything that can race with it:
// map/unmap of shared regions (generation bumps that evict the members'
// pregion caches, batched page shootdowns) and forks whose COW children
// break pages against the members' resident writes. Run under -race this
// is the integration check for the whole §6.2 fast path; the assertions
// are conservation ones — teardown frees every frame, and the lock-free
// path actually carried the storm.
func TestResidentFaultStormRace(t *testing.T) {
	const window = 128
	members := 4
	touches := 3000
	if testing.Short() {
		touches = 600
	}
	s := newSession(small())
	s.Sys.Start("driver", func(c *kernel.Context) {
		va, err := c.Mmap(window)
		if err != nil {
			panic(err)
		}
		for i := 0; i < window; i++ {
			c.Store32(va+hw.VAddr(i*pageSize), uint32(i))
		}
		gate := uspin.Barrier{VA: dataBase, N: uint32(members) + 1}
		gate.Init(c)
		for mIdx := 0; mIdx < members; mIdx++ {
			c.Sproc("refaulter", func(cc *kernel.Context, arg int64) {
				gate.Enter(cc) // storm start
				p := int(arg) * 13
				for i := 0; i < touches; i++ {
					p = (p + 13) % window
					cc.Store32(va+hw.VAddr(p*pageSize), uint32(i))
				}
				gate.Enter(cc) // storm done
			}, proc.PRSALL, int64(mIdx))
		}
		gate.Enter(c) // release the storm

		// Churn while the storm runs. Attach/detach bumps the shared-list
		// generation (cache eviction) and the 4-page unmap takes the batched
		// page-shootdown path; each fork duplicates the shared image, so its
		// child's writes race the members' COW re-breaks.
		for i := 0; i < 6; i++ {
			mva, err := c.Mmap(4)
			if err != nil {
				panic(err)
			}
			c.Store32(mva, uint32(i))
			if err := c.Munmap(mva); err != nil {
				panic(err)
			}
			if _, err := c.Fork("cowkid", func(cc *kernel.Context) {
				for j := 0; j < window; j += 8 {
					cc.Store32(va+hw.VAddr(j*pageSize), ^uint32(j))
				}
			}); err != nil {
				panic(err)
			}
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}

		gate.Enter(c) // wait for every member
		for mIdx := 0; mIdx < members; mIdx++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
	})
	s.Sys.WaitIdle()

	mem := s.Sys.Machine.Mem
	if mem.InUse() != 0 {
		t.Errorf("frames leaked: %d still in use after full teardown", mem.InUse())
	}
	if mem.FastFills.Load() == 0 {
		t.Error("storm never took the lock-free fast path")
	}
	if mem.SlowFills.Load() == 0 {
		t.Error("COW churn never took the striped slow path")
	}
	if s.Sys.Machine.PageShootdowns.Load() == 0 {
		t.Error("small unmaps never took the batched page-shootdown path")
	}
}
