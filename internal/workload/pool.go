package workload

import (
	"fmt"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/uspin"
)

// PoolMode selects a parallel-execution organization for E7.
type PoolMode string

const (
	// PoolSproc is the paper's model: a preallocated share-group pool
	// self-scheduling from a shared-memory work cursor.
	PoolSproc PoolMode = "sproc-pool"
	// PoolForkPerTask creates and destroys a process per work item — the
	// dynamic-creation cost the paper says pools exist to avoid.
	PoolForkPerTask PoolMode = "fork-per-task"
	// PoolPipeWorkers feeds preallocated forked workers through a pipe —
	// the queueing model.
	PoolPipeWorkers PoolMode = "pipe-workers"
)

// Pool runs items work items of grain simulated memory operations each,
// organized per mode with the given worker count, and reports wall time
// and cycles per item (E7). The work itself is identical across modes:
// grain stores into the worker's private scratch page.
func Pool(cfg kernel.Config, mode PoolMode, workers, items, grain int) Metrics {
	return runMeasured(cfg, int64(items), func(c *kernel.Context, s *session) {
		switch mode {
		case PoolSproc:
			poolSproc(c, s, workers, items, grain)
		case PoolForkPerTask:
			poolFork(c, s, workers, items, grain)
		case PoolPipeWorkers:
			poolPipe(c, s, workers, items, grain)
		default:
			panic(fmt.Sprintf("workload: unknown pool mode %q", mode))
		}
	})
}

// doWork performs one item's computation: grain stores/loads against the
// process's own stack page (always mapped, so pure memory cost).
func doWork(c *kernel.Context, grain int) {
	va := c.StackBase() + 128
	for i := 0; i < grain; i++ {
		c.Store32(va, uint32(i))
	}
}

func poolSproc(c *kernel.Context, s *session, workers, items, grain int) {
	cursor := uspin.Counter{VA: dataBase}
	gate := uspin.Barrier{VA: dataBase + 16, N: uint32(workers) + 1}
	gate.Init(c)
	c.Store32(dataBase, 0)
	for w := 0; w < workers; w++ {
		c.Sproc("worker", func(cc *kernel.Context, _ int64) {
			gate.Enter(cc)
			for {
				n, err := cursor.Next(cc)
				if err != nil || n > uint32(items) {
					return
				}
				doWork(cc, grain)
			}
		}, proc.PRSALL, int64(w))
	}
	s.start()
	gate.Enter(c)
	for w := 0; w < workers; w++ {
		c.Wait()
	}
	s.stop()
}

func poolFork(c *kernel.Context, s *session, workers, items, grain int) {
	s.start()
	outstanding := 0
	for i := 0; i < items; i++ {
		if outstanding == workers {
			c.Wait()
			outstanding--
		}
		if _, err := c.Fork("task", func(cc *kernel.Context) {
			doWork(cc, grain)
		}); err != nil {
			panic(err)
		}
		outstanding++
	}
	for ; outstanding > 0; outstanding-- {
		c.Wait()
	}
	s.stop()
}

func poolPipe(c *kernel.Context, s *session, workers, items, grain int) {
	taskR, taskW, err := c.Pipe()
	if err != nil {
		panic(err)
	}
	doneR, doneW, err := c.Pipe()
	if err != nil {
		panic(err)
	}
	for w := 0; w < workers; w++ {
		c.Fork("worker", func(cc *kernel.Context) {
			// Close the ends this worker does not use, so the parent's
			// close of the task pipe produces EOF here.
			cc.Close(taskW)
			cc.Close(doneR)
			buf := cc.StackBase()
			for {
				n, err := cc.Read(taskR, buf, 1)
				if err != nil || n == 0 {
					return
				}
				doWork(cc, grain)
				cc.Write(doneW, buf, 1)
			}
		})
	}
	c.Store32(dataBase+256, 0x55)
	s.start()
	sent, done := 0, 0
	// Keep the pipe primed without overrunning its buffer.
	for done < items {
		for sent < items && sent-done < workers*2 {
			if _, err := c.Write(taskW, dataBase+256, 1); err != nil {
				panic(err)
			}
			sent++
		}
		if _, err := c.Read(doneR, dataBase+260, 1); err != nil {
			panic(err)
		}
		done++
	}
	s.stop()
	c.Close(taskW)
	c.Close(taskR)
	for w := 0; w < workers; w++ {
		c.Wait()
	}
}

// Speedup runs the sproc pool at each worker count in ws and returns the
// wall-time metrics, for the E7 scaling curve.
func Speedup(cfg kernel.Config, ws []int, items, grain int) []Metrics {
	out := make([]Metrics, len(ws))
	for i, w := range ws {
		out[i] = Pool(cfg, PoolSproc, w, items, grain)
	}
	return out
}

// GangBarrier measures E10, the paper's §8 scheduling extension: one share
// group of `members` processes alternates grain units of computation with
// spin-barrier rounds while `load` independent compute processes contend
// for the same CPUs. Without gang scheduling the dispatcher rotates
// members out to run load, so every round stalls on a descheduled member
// and members need many re-dispatches; with gang scheduling (affinity in
// the pick plus stickiness at the preemption point) the group converges to
// co-residency and completes with a handful of dispatches. The group's
// member-dispatch count is the deterministic metric; wall time is noisy on
// an oversubscribed host.
func GangBarrier(cfg kernel.Config, gang bool, members, load, rounds, grain int) Metrics {
	total := int64(rounds)
	s := newSession(cfg)

	var stopLoad atomic.Bool
	loadDone := make(chan struct{}, load)
	for i := 0; i < load; i++ {
		s.Sys.Start("load", func(c *kernel.Context) {
			defer func() { loadDone <- struct{}{} }()
			for !stopLoad.Load() {
				// Plain compute: burns its slice and gets preempted.
				for k := 0; k < 512; k++ {
					c.Store32(dataBase, uint32(k))
				}
			}
		})
	}

	done := make(chan struct{})
	var memberDispatches int64
	s.start()
	s.Sys.Start("group-leader", func(c *kernel.Context) {
		if gang {
			// The §8 extension is requested per group via prctl.
			c.Sproc("primer", func(*kernel.Context, int64) {}, proc.PRSALL, 0)
			c.Wait()
			c.SetGang(true)
		}
		bar := uspin.Barrier{VA: dataBase, N: uint32(members)}
		bar.Init(c)
		group := []*proc.Proc{c.P}
		for m := 1; m < members; m++ {
			pid, err := c.Sproc("member", func(cc *kernel.Context, _ int64) {
				for r := 0; r < rounds; r++ {
					doWork(cc, grain)
					if err := bar.Enter(cc); err != nil {
						return
					}
				}
			}, proc.PRSALL, int64(m))
			if err != nil {
				panic(err)
			}
			if mp, ok := s.Sys.Lookup(pid); ok {
				group = append(group, mp)
			}
		}
		for r := 0; r < rounds; r++ {
			doWork(c, grain)
			if err := bar.Enter(c); err != nil {
				return
			}
		}
		// The measured section ends when the barrier phase completes;
		// the exit bookkeeping below is not part of the experiment.
		for _, mp := range group {
			memberDispatches += mp.Dispatched.Load()
		}
		close(done)
		for m := 1; m < members; m++ {
			c.Wait()
		}
	})
	<-done
	s.stop()
	stopLoad.Store(true)
	for i := 0; i < load; i++ {
		<-loadDone
	}
	s.Sys.WaitIdle()
	m := s.metrics(total)
	m.Dispatches = memberDispatches
	return m
}
