package workload

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/uspin"
)

// FairShareConfig sizes one S8 fair-share run: len(Shares) share groups of
// Members CPU-bound processes each, all competing for the machine until
// Horizon simulated cycles elapse. With Members*len(Shares) > NCPU the
// machine is overcommitted — the regime where entitlements matter, because
// every group could consume every cycle it is offered.
type FairShareConfig struct {
	Shares  []int32 // one group per entry: its CPU entitlement weight
	Members int     // CPU-bound members per group (default NCPU)
	Horizon int64   // simulated cycles the contention runs for
	Fair    bool    // set entitlements via setshares(2); false = share-blind baseline

	// Frame-quota variant: group QuotaGroup is capped at QuotaFrames
	// resident frames while each of its members streams reads over its
	// own QuotaPages-page mapping — demand deliberately above the cap, so
	// the group lives against its quota and degrades through zero-page
	// reclaim. QuotaFrames <= 0 disables the variant.
	QuotaGroup  int
	QuotaFrames int64
	QuotaPages  int
}

// FairMetrics reports one S8 run: the machine-level Metrics plus each
// group's operation count and final entitlement/delivery record
// (snapshotted by the group leader after its members exited).
type FairMetrics struct {
	Metrics
	FairOn   bool
	Shares   []int32
	GroupOps []int64
	Usage    []kernel.GroupUsage
}

// EntitledFrac returns each group's entitled fraction of the machine:
// shares over total shares.
func (m FairMetrics) EntitledFrac() []float64 {
	var tot float64
	for _, s := range m.Shares {
		tot += float64(s)
	}
	out := make([]float64, len(m.Shares))
	for i, s := range m.Shares {
		out[i] = float64(s) / tot
	}
	return out
}

// DeliveredFrac returns each group's delivered fraction: its members'
// charged cycles over all groups' charged cycles.
func (m FairMetrics) DeliveredFrac() []float64 {
	var tot float64
	for _, u := range m.Usage {
		tot += float64(u.Delivered)
	}
	out := make([]float64, len(m.Usage))
	if tot == 0 {
		return out
	}
	for i, u := range m.Usage {
		out[i] = float64(u.Delivered) / tot
	}
	return out
}

// MaxShareError returns the largest |delivered − entitled| fraction over
// the groups — the S8 acceptance number (within 0.05 of entitlement).
func (m FairMetrics) MaxShareError() float64 {
	ent, del := m.EntitledFrac(), m.DeliveredFrac()
	var worst float64
	for i := range ent {
		if d := del[i] - ent[i]; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	return worst
}

// String renders the fair-share metrics compactly.
func (m FairMetrics) String() string {
	return fmt.Sprintf("fair=%v shares=%v err=%.3f %s",
		m.FairOn, m.Shares, m.MaxShareError(), m.Metrics.String())
}

// FairShare runs the S8 workload: one leader per group forks off the
// driver (so each leader founds its own share group), sprocs Members
// CPU-bound workers, attaches the group's entitlement with setshares(2),
// and releases the workers into a shared-memory increment loop until the
// deadline. Delivered CPU per group is read back with getusage(2) once
// the workers exit. With Fair false, setshares is never called and the
// scheduler runs share-blind — the baseline the aggregate-throughput
// acceptance compares against.
func FairShare(cfg kernel.Config, fc FairShareConfig) FairMetrics {
	ngroups := len(fc.Shares)
	if ngroups == 0 {
		panic("workload: FairShare needs at least one group")
	}
	if fc.Members <= 0 {
		fc.Members = cfg.NCPU
	}
	if fc.Horizon <= 0 {
		fc.Horizon = 2_000_000
	}
	if need := ngroups*(fc.Members+1) + 8; cfg.MaxProcs < need {
		cfg.MaxProcs = need
	}

	s := newSession(cfg)
	clock := s.Sys.Machine.TotalCycles

	// Host-side driver bookkeeping (the serve.go latency-shard pattern):
	// per-group op counters the workers bump, and the usage record each
	// leader snapshots on its way out.
	ops := make([]atomic.Int64, ngroups)
	usage := make([]kernel.GroupUsage, ngroups)

	s.start()
	s.Sys.Start("fair-driver", func(c *kernel.Context) {
		deadline := clock() + fc.Horizon
		for g := 0; g < ngroups; g++ {
			g := g
			c.Fork("fair-leader", func(lc *kernel.Context) {
				runFairGroup(lc, g, fc, clock, deadline, &ops[g], &usage[g])
			})
		}
		for g := 0; g < ngroups; g++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
	})
	s.Sys.WaitIdle()
	s.stop()

	var total int64
	gops := make([]int64, ngroups)
	for g := range gops {
		gops[g] = ops[g].Load()
		total += gops[g]
	}
	return FairMetrics{
		Metrics:  s.metrics(total),
		FairOn:   fc.Fair,
		Shares:   append([]int32(nil), fc.Shares...),
		GroupOps: gops,
		Usage:    usage,
	}
}

// runFairGroup is one group leader: sproc the workers behind a start gate,
// attach the entitlement, release the gate, wait, and read back usage.
func runFairGroup(lc *kernel.Context, g int, fc FairShareConfig, clock func() int64, deadline int64, ops *atomic.Int64, usage *kernel.GroupUsage) {
	gate := uspin.Barrier{VA: dataBase, N: uint32(fc.Members) + 1}
	gate.Init(lc)
	quota := fc.QuotaFrames > 0 && g == fc.QuotaGroup
	for w := 0; w < fc.Members; w++ {
		lc.Sproc("fair-worker", func(wc *kernel.Context, _ int64) {
			if err := gate.Enter(wc); err != nil {
				return
			}
			if quota {
				streamPages(wc, fc.QuotaPages, clock, deadline, ops)
			} else {
				burnCPU(wc, clock, deadline, ops)
			}
		}, proc.PRSADDR|proc.PRSFDS, int64(w))
	}

	// The first sproc founded the group; its entitlement must be on the
	// books before any worker burns a cycle, so the gate stays closed
	// until setshares returns.
	lim := kernel.GroupLimits{CPUShares: -1, FrameQuota: -1, MemberCap: -1}
	if fc.Fair {
		lim.CPUShares = fc.Shares[g]
	}
	if quota {
		lim.FrameQuota = fc.QuotaFrames
	}
	if lim.CPUShares > 0 || lim.FrameQuota >= 0 {
		if err := lc.Setshares(lim); err != nil {
			panic(fmt.Sprintf("workload: setshares: %v", err))
		}
	}

	if err := gate.Enter(lc); err != nil {
		panic(err)
	}
	for w := 0; w < fc.Members; w++ {
		if _, _, err := lc.Wait(); err != nil {
			panic(err)
		}
	}
	u, err := lc.Getusage()
	if err != nil {
		panic(fmt.Sprintf("workload: getusage: %v", err))
	}
	*usage = u
}

// burnCPU is the CPU-bound worker body: atomic increments of a group-local
// shared word until the deadline. Every increment crosses the MMU, so
// consumed cycles track delivered CPU and the op counter doubles as a
// throughput measure.
func burnCPU(wc *kernel.Context, clock func() int64, deadline int64, ops *atomic.Int64) {
	va := dataBase + hw.VAddr(uspin.BarrierBytes)
	for clock() < deadline {
		for i := 0; i < 32; i++ {
			if _, err := wc.Add32(va, 1); err != nil {
				panic(fmt.Sprintf("workload: burn: %v", err))
			}
		}
		ops.Add(32)
	}
}

// streamPages is the quota-group worker body: map QuotaPages of fresh
// shared space and stream reads over it. The pages are never written, so
// every resident frame stays an all-zero, sole-referenced candidate for
// the over-quota reclaim pass — the group runs indefinitely against a cap
// far below its footprint, degrading (refault + rezero) instead of dying.
// A SIGSEGV handler is installed so the rare exhausted-retry fault surfaces
// as an error return (tolerated: the next pass refaults) rather than
// terminating the worker.
func streamPages(wc *kernel.Context, pages int, clock func() int64, deadline int64, ops *atomic.Int64) {
	if pages <= 0 {
		pages = 64
	}
	wc.Signal(proc.SIGSEGV, func(int) {})
	base, err := wc.Mmap(pages)
	if err != nil {
		panic(fmt.Sprintf("workload: quota mmap: %v", err))
	}
	for clock() < deadline {
		for p := 0; p < pages; p++ {
			if _, err := wc.Load32(base + hw.VAddr(p*hw.PageSize)); err == nil {
				ops.Add(1)
			}
			if clock() >= deadline {
				return
			}
		}
	}
}
