package workload

// The chaos driver: a seeded soak that runs a mixed syscall workload under
// an armed fault-injection plan and then checks the kernel's conservation
// invariants. Every worker's protocol is self-contained (its own pipe, its
// own semaphore, its own message queue), so injected EINTRs, short I/O,
// spurious wakeups, and ENOMEMs can kill or starve any worker without
// wedging the others — exactly the degradation the gateway promises.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/vm"
)

// ChaosResult reports one chaos soak: how much havoc the plan caused and
// whether any kernel invariant broke under it.
type ChaosResult struct {
	Steps          int64    // worker protocol steps completed
	FaultsInjected int64    // faults the plan injected
	FaultChecks    int64    // injection decisions taken
	Restarts       int64    // EINTR auto-restarts performed by the gateway
	Retries        int64    // EAGAIN retries performed by the gateway
	Reclaims       int64    // frame-cache drain-and-reclaim passes
	Violations     []string // conservation invariants that failed (empty = pass)
	Stats          kernel.Stats
}

// Ok reports whether the soak finished with every invariant intact.
func (r ChaosResult) Ok() bool { return len(r.Violations) == 0 }

func (r ChaosResult) String() string {
	return fmt.Sprintf("steps=%d injected=%d restarts=%d retries=%d reclaims=%d violations=%d",
		r.Steps, r.FaultsInjected, r.Restarts, r.Retries, r.Reclaims, len(r.Violations))
}

// Chaos boots cfg (which should carry a FaultSeed/FaultRate), runs workers
// processes through steps protocol rounds each, waits for the system to
// drain, and audits the conservation invariants: no leaked frames, no
// leaked processes, and a balanced syscall-span ledger.
func Chaos(cfg kernel.Config, workers, steps int) ChaosResult {
	sys := kernel.NewSystem(cfg)
	var res ChaosResult
	var stepsDone atomic.Int64

	sys.Start("chaos", func(c *kernel.Context) {
		for w := 0; w < workers; w++ {
			w := w
			c.Fork(fmt.Sprintf("worker%d", w), func(cc *kernel.Context) {
				chaosWorker(cc, &stepsDone, cfg.FaultSeed, w, steps)
			})
		}
		// Reap everything, whatever order it died or finished in. The
		// plan injects EINTR into wait(2) too, so tolerate it.
		for {
			if _, _, err := c.Wait(); err != nil && errors.Is(err, kernel.ErrNoChildren) {
				break
			}
		}
	})
	sys.WaitIdle()
	res.Steps = stepsDone.Load()

	st := sys.Stats()
	res.Stats = st
	res.FaultsInjected = st.FaultsInjected
	res.FaultChecks = st.FaultChecks
	res.Restarts = st.SyscallRestarts
	res.Retries = st.SyscallRetries
	res.Reclaims = st.FrameReclaims

	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if st.FramesInUse != 0 {
		violate("frames leaked: FramesInUse=%d after idle", st.FramesInUse)
	}
	if got := st.FrameAllocs - st.FrameFrees; got != 0 {
		violate("frame ledger unbalanced: Allocs-Frees=%d after idle", got)
	}
	if n := sys.NProcs(); n != 0 {
		violate("processes leaked: NProcs=%d after idle", n)
	}
	if st.TraceDropped == 0 {
		enter := sys.Machine.Trace.CountKind(trace.EvSyscallEnter)
		exit := sys.Machine.Trace.CountKind(trace.EvSyscallExit)
		if enter != exit {
			violate("syscall spans unbalanced: %d enters, %d exits", enter, exit)
		}
	}
	return res
}

// chaosWorker runs one worker's protocol rounds, bumping done after each
// so a worker killed mid-soak (injected ENOMEM under a page touch is
// fatal, as real SIGSEGV is) still reports partial progress. Every syscall
// failure is tolerated — the worker's job is to keep hammering the kernel,
// not to succeed.
func chaosWorker(c *kernel.Context, done *atomic.Int64, seed uint64, w, steps int) {
	rng := rand.New(rand.NewSource(int64(seed) + int64(w)*7919))
	c.Signal(proc.SIGUSR1, func(int) {})
	self := c.Getpid()
	buf := vm.DataBase + hw.VAddr(64*w)
	for i := 0; i < steps; i++ {
		switch rng.Intn(7) {
		case 0: // pipe round-trip through own pipe; short I/O tolerated
			if r, wr, err := c.Pipe(); err == nil {
				c.WriteString(wr, buf, "chaos")
				c.Read(r, buf, 5)
				c.Close(r)
				c.Close(wr)
			}
		case 1: // own semaphore: V then P, never blocks on others
			id := c.Semget(1000+w, 1)
			if err := c.Semop(id, 0, 1); err == nil {
				c.Semop(id, 0, -1)
			}
		case 2: // own message queue, own type
			id := c.Msgget(2000 + w)
			if err := c.Msgsnd(id, int64(self), buf, 4); err == nil {
				c.Msgrcv(id, int64(self), buf, 8)
			}
		case 3: // fork/wait churn; child may be killed by injection
			if _, err := c.Fork("chaoskid", func(k *kernel.Context) {
				k.Getpid()
			}); err == nil {
				for {
					if _, _, werr := c.Wait(); werr == nil ||
						errors.Is(werr, kernel.ErrNoChildren) {
						break
					}
				}
			}
		case 4: // private mapping: map, touch, unmap
			if va, err := c.MmapPrivate(1); err == nil {
				c.Store32(va, uint32(i))
				c.Munmap(va)
			}
		case 5: // self-signal: exercises delivery on syscall exit
			c.Kill(self, proc.SIGUSR1)
		case 6: // grow the heap and touch the new page
			if va, err := c.Sbrk(hw.PageSize); err == nil {
				c.Store32(va, uint32(i))
			}
		}
		done.Add(1)
	}
}
