package workload

import (
	"repro/internal/hw"
	"repro/internal/vm"
)

// Address helpers shared by the drivers.
type hwVAddr = hw.VAddr

const (
	pageSize = hw.PageSize
	dataBase = vm.DataBase
)
