package workload

import "testing"

func TestStormSmoke(t *testing.T) {
	cfg := small()
	if m := FaultStorm(cfg, 2, 200); m.Ops != 400 {
		t.Errorf("fault ops=%d", m.Ops)
	}
	if m := CreateStorm(cfg, 2, 5); m.Ops != 10 {
		t.Errorf("create ops=%d", m.Ops)
	}
	if m := TraceStorm(cfg, 4, 1000); m.Ops != 4000 {
		t.Errorf("trace ops=%d", m.Ops)
	}
	if m := DispatchStorm(cfg, 4, 100); m.Ops != 400 {
		t.Errorf("dispatch ops=%d", m.Ops)
	}
}
