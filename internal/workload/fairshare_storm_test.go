package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
)

// TestFairShareStormRace is the fair-share conservation storm (run under
// -race in tier 1): several share groups of CPU burners plus one
// quota-capped page streamer hammer the machine, and afterwards the books
// must balance exactly —
//
//	FlushedCyc == Σ group Delivered + UngroupedCyc   (no cycle lost or
//	double-charged between the per-CPU flush and the group accounts), and
//	Charges − Uncharges == Used == 0 per group        (every frame granted
//	to a group was uncharged on its final release).
func TestFairShareStormRace(t *testing.T) {
	cfg := kernel.Config{NCPU: 4, MemFrames: 4096, TimeSlice: 1500, MaxProcs: 64}
	sys := kernel.NewSystem(cfg)
	clock := sys.Machine.TotalCycles

	const groups = 3
	const members = 3
	// The group blocks outlive their procs: capture them host-side from
	// inside each leader so the conservation check can read the accounts
	// after every member is gone.
	var sas [groups]*core.ShAddr

	sys.Start("storm-driver", func(c *kernel.Context) {
		deadline := clock() + 1_200_000
		for g := 0; g < groups; g++ {
			g := g
			c.Fork("storm-leader", func(lc *kernel.Context) {
				stream := g == groups-1 // last group streams against a frame quota
				// Found the group with a throwaway member so the limits are
				// on the books before any worker touches memory.
				lc.Sproc("storm-founder", func(*kernel.Context, int64) {}, proc.PRSADDR, 0)
				lc.Wait()
				sas[g] = kernel.GroupOf(lc.P)
				lim := kernel.GroupLimits{CPUShares: int32(g + 1), FrameQuota: -1, MemberCap: -1}
				if stream {
					lim.FrameQuota = 16
				}
				if err := lc.Setshares(lim); err != nil {
					t.Errorf("storm setshares: %v", err)
				}
				for w := 0; w < members; w++ {
					lc.Sproc("storm-worker", func(wc *kernel.Context, _ int64) {
						if stream {
							wc.Signal(proc.SIGSEGV, func(int) {})
							base, err := wc.Mmap(48)
							if err != nil {
								t.Errorf("storm mmap: %v", err)
								return
							}
							// At least one full sweep even if the (global-
							// cycle) deadline already passed: the sweep is
							// what drives the group over its quota.
							for pass := 0; pass == 0 || clock() < deadline; pass++ {
								for p := 0; p < 48; p++ {
									wc.Load32(base + hw.VAddr(p*hw.PageSize))
								}
							}
						} else {
							for clock() < deadline {
								wc.Add32(dataBase, 1)
							}
						}
					}, proc.PRSADDR|proc.PRSFDS, int64(w))
				}
				for w := 0; w < members; w++ {
					lc.Wait()
				}
			})
		}
		for g := 0; g < groups; g++ {
			c.Wait()
		}
	})
	sys.WaitIdle()

	var delivered int64
	for g, sa := range sas {
		if sa == nil {
			t.Fatalf("group %d never captured", g)
		}
		delivered += sa.CPUAcct().Delivered.Load()
		fa := sa.FrameAcct()
		if diff := fa.Charges.Load() - fa.Uncharges.Load(); diff != fa.Used() {
			t.Errorf("group %d: Charges-Uncharges = %d but Used = %d", g, diff, fa.Used())
		}
		if used := fa.Used(); used != 0 {
			t.Errorf("group %d: %d frames still charged after teardown", g, used)
		}
	}
	flushed := sys.Sched.FlushedCyc.Load()
	ungrouped := sys.Sched.UngroupedCyc.Load()
	if flushed != delivered+ungrouped {
		t.Errorf("cycle conservation broken: flushed %d != delivered %d + ungrouped %d (off by %d)",
			flushed, delivered, ungrouped, flushed-delivered-ungrouped)
	}
	if delivered == 0 {
		t.Error("no cycles delivered to any group: the storm never ran")
	}
	if sas[groups-1].QuotaReclaims.Load() == 0 {
		t.Error("quota group never reclaimed: the storm missed the over-quota path")
	}
	st := sys.Stats()
	if !st.FairShareOn || st.FairPasses == 0 {
		t.Errorf("fair-share dispatch not exercised: on=%v passes=%d", st.FairShareOn, st.FairPasses)
	}
}

// TestFairShareEntitlement is the S8 acceptance run: three groups with
// shares 4:2:1 on an overcommitted machine. Delivered CPU per group must
// land within 5 points of entitlement, and turning fair-share on must not
// cost aggregate throughput (within 5% of the share-blind baseline).
func TestFairShareEntitlement(t *testing.T) {
	if testing.Short() {
		t.Skip("S8 acceptance run is long")
	}
	cfg := DefaultConfig()
	fc := FairShareConfig{
		Shares:  []int32{4, 2, 1},
		Members: cfg.NCPU,  // 3 groups x 4 burners on 4 CPUs: 3x overcommit
		Horizon: 6_000_000, // long enough for the decayed bands to settle
	}

	fc.Fair = true
	fair := FairShare(cfg, fc)
	if err := fair.MaxShareError(); err > 0.05 {
		// Simulated cycle delivery rides on the host scheduler; a loaded
		// host can skew one run. One retry before declaring the scheduler
		// itself unfair (typical error is ~0.02, ceiling 0.05).
		t.Logf("fair run missed entitlement (err %.3f), retrying once for host jitter", err)
		fair = FairShare(cfg, fc)
	}
	if err := fair.MaxShareError(); err > 0.05 {
		t.Errorf("fair run: delivered %v off entitlement %v by %.3f, want <= 0.05",
			fair.DeliveredFrac(), fair.EntitledFrac(), err)
	}

	fc.Fair = false
	blind := FairShare(cfg, fc)
	if blind.Ops == 0 {
		t.Fatal("share-blind baseline did no work")
	}
	if ratio := float64(fair.Ops) / float64(blind.Ops); ratio < 0.95 {
		t.Errorf("fair-share costs throughput: %d ops vs blind %d (ratio %.3f, want >= 0.95)",
			fair.Ops, blind.Ops, ratio)
	}
}

// TestFairShareQuotaDegrades checks the S8 quota leg: the capped group
// lives far above its frame quota yet keeps making progress by reclaiming
// its own zero pages — it degrades, it does not die with ENOMEM.
func TestFairShareQuotaDegrades(t *testing.T) {
	cfg := DefaultConfig()
	m := FairShare(cfg, FairShareConfig{
		Shares:      []int32{2, 1},
		Members:     2,
		Horizon:     1_500_000,
		Fair:        true,
		QuotaGroup:  1,
		QuotaFrames: 32,
		QuotaPages:  96, // 3x the quota per streamer
	})
	u := m.Usage[1]
	if u.QuotaHits == 0 || u.QuotaReclaims == 0 || u.ReclaimedZeros == 0 {
		t.Errorf("quota group never throttled: hits=%d reclaims=%d zeros=%d",
			u.QuotaHits, u.QuotaReclaims, u.ReclaimedZeros)
	}
	if u.FramesUsed > u.FrameQuota {
		t.Errorf("quota breached: %d frames used, cap %d", u.FramesUsed, u.FrameQuota)
	}
	if m.GroupOps[1] == 0 {
		t.Error("quota group made no progress: degradation turned into starvation")
	}
}
