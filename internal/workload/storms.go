package workload

import (
	"sync"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/uspin"
)

// The storm drivers measure the de-serialized MP hot paths in isolation:
// each hammers exactly one substrate (frame allocator, process creation,
// trace ring, dispatcher) from a configurable number of processors, so the
// scaling benchmarks can show throughput holding up as NCPU grows. All but
// ResidentFaultStorm are deliberately free of share groups — the point is
// the contention on the machine-wide structures underneath; the resident
// storm is the exception, hammering the sharing protocol's own hot path.

// FaultStorm hammers the frame allocator: `workers` forked (fully private)
// processes each demand-fault pagesEach fresh pages through a bounded
// mmap/touch/munmap window. Every touch allocates a zero frame and every
// unmap frees a batch, so concurrent workers exercise the per-CPU frame
// caches in both directions. Ops = pages faulted.
func FaultStorm(cfg kernel.Config, workers, pagesEach int) Metrics {
	const window = 128 // pages per mapping; bounds resident memory per worker
	total := int64(workers * pagesEach)
	return runMeasured(cfg, total, func(c *kernel.Context, s *session) {
		s.start()
		for w := 0; w < workers; w++ {
			_, err := c.Fork("faulter", func(cc *kernel.Context) {
				left := pagesEach
				for left > 0 {
					n := window
					if n > left {
						n = left
					}
					va, err := cc.Mmap(n)
					if err != nil {
						panic(err)
					}
					for i := 0; i < n; i++ {
						cc.Store32(va+hw.VAddr(i*pageSize), uint32(i))
					}
					left -= n
					if err := cc.Munmap(va); err != nil {
						panic(err)
					}
				}
			})
			if err != nil {
				panic(err)
			}
		}
		for w := 0; w < workers; w++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
		s.stop()
	})
}

// ResidentFaultStorm hammers the paper's §6.2 hot path in its purest form:
// the fault that finds its page already resident with the right permission.
// The creator maps a shared window far larger than the 64-entry TLB and
// touches every page resident, then `members` share-group siblings each
// perform touchesEach strided stores across the window. Every store misses
// the TLB (the working set is 8x the TLB) and re-enters the fault handler,
// which must find the pregion, find the cached frame, and return — no
// allocation, no copy. Throughput here is bounded purely by the fault
// path's synchronization. Ops = touches.
func ResidentFaultStorm(cfg kernel.Config, members, touchesEach int) Metrics {
	const window = 512 // pages; 8x the TLB, so resident touches still fault
	var rlocks, wlocks, sleeps, fast, slow, hits int64
	total := int64(members * touchesEach)
	m := runMeasured(cfg, total, func(c *kernel.Context, s *session) {
		va, err := c.Mmap(window)
		if err != nil {
			panic(err)
		}
		for i := 0; i < window; i++ {
			c.Store32(va+hw.VAddr(i*pageSize), uint32(i))
		}
		gate := uspin.Barrier{VA: dataBase, N: uint32(members) + 1}
		gate.Init(c)
		for mIdx := 0; mIdx < members; mIdx++ {
			c.Sproc("refaulter", func(cc *kernel.Context, arg int64) {
				gate.Enter(cc) // storm start
				p := int(arg) * 67
				for i := 0; i < touchesEach; i++ {
					p = (p + 67) % window // coprime stride: spreads the window
					cc.Store32(va+hw.VAddr(p*pageSize), uint32(i))
				}
				gate.Enter(cc) // storm done
			}, proc.PRSALL, int64(mIdx))
		}
		s.start()
		gate.Enter(c) // release the storm
		gate.Enter(c) // wait for every member
		s.stop()
		if sa := kernel.GroupOf(c.P); sa != nil {
			rlocks = sa.Acc.RLocks.Load()
			wlocks = sa.Acc.WLocks.Load()
			sleeps = sa.Acc.RSleeps.Load() + sa.Acc.WSleeps.Load()
			hits = sa.CacheHits.Load()
		}
		fast = c.S.Machine.Mem.FastFills.Load()
		slow = c.S.Machine.Mem.SlowFills.Load()
		for mIdx := 0; mIdx < members; mIdx++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
	})
	m.RLocks, m.WLocks, m.LockSleeps = rlocks, wlocks, sleeps
	m.FastFills, m.SlowFills, m.CacheHits = fast, slow, hits
	return m
}

// PrivateRefaultStorm is the NUMA-locality variant of ResidentFaultStorm:
// `workers` forked (fully private) processes each map their own window,
// touch it resident, then re-fault it with strided stores through a window
// twice the TLB. The data is single-owner, so frame placement is the whole
// story: a locality-aware allocator serves every fill and every re-fault
// from the worker's home node, while node-blind round-robin spreads the
// frames machine-wide and pays the remote-access penalty on every touch.
// Ops = re-fault touches.
func PrivateRefaultStorm(cfg kernel.Config, workers, touchesEach int) Metrics {
	const window = 128 // pages; 2x the TLB, so resident touches still fault
	var fast, slow int64
	total := int64(workers * touchesEach)
	m := runMeasured(cfg, total, func(c *kernel.Context, s *session) {
		s.start()
		for w := 0; w < workers; w++ {
			_, err := c.Fork("refaulter", func(cc *kernel.Context) {
				va, err := cc.Mmap(window)
				if err != nil {
					panic(err)
				}
				for i := 0; i < window; i++ {
					cc.Store32(va+hw.VAddr(i*pageSize), uint32(i))
				}
				p := 0
				for i := 0; i < touchesEach; i++ {
					p = (p + 67) % window // coprime stride: spreads the window
					cc.Store32(va+hw.VAddr(p*pageSize), uint32(i))
				}
			})
			if err != nil {
				panic(err)
			}
		}
		for w := 0; w < workers; w++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
		s.stop()
		fast = c.S.Machine.Mem.FastFills.Load()
		slow = c.S.Machine.Mem.SlowFills.Load()
	})
	m.FastFills, m.SlowFills = fast, slow
	return m
}

// CreateStorm hammers process creation and teardown: `creators` forked
// processes each fork-and-wait perCreator no-op children. Creation
// allocates an image's worth of frames and exit frees them, all four
// per-CPU substrates light up at once. Ops = processes created.
func CreateStorm(cfg kernel.Config, creators, perCreator int) Metrics {
	total := int64(creators * perCreator)
	return runMeasured(cfg, total, func(c *kernel.Context, s *session) {
		s.start()
		for w := 0; w < creators; w++ {
			_, err := c.Fork("creator", func(cc *kernel.Context) {
				for i := 0; i < perCreator; i++ {
					if _, err := cc.Fork("noop", func(*kernel.Context) {}); err != nil {
						panic(err)
					}
					if _, _, err := cc.Wait(); err != nil {
						panic(err)
					}
				}
			})
			if err != nil {
				panic(err)
			}
		}
		for w := 0; w < creators; w++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
		s.stop()
	})
}

// TraceStorm hammers the trace ring directly: `writers` concurrent
// recorders each append eventsEach events, writer w recording as CPU
// w%NCPU so the shards split the load exactly as the kernel's per-CPU
// instrumentation does. It bypasses the simulated kernel — the metric is
// the ring's own concurrency, host wall clock per recorded event.
// Ops = events recorded.
func TraceStorm(cfg kernel.Config, writers, eventsEach int) Metrics {
	if cfg.NCPU == 0 {
		cfg.NCPU = 4
	}
	size := cfg.TraceEvents
	if size == 0 {
		size = 4096
	}
	r := trace.NewMP(size, cfg.NCPU)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cpu := int32(w % cfg.NCPU)
			for i := 0; i < eventsEach; i++ {
				r.Record(trace.EvSyscall, int32(w), cpu, uint64(i), 0)
			}
		}(w)
	}
	wg.Wait()
	return Metrics{
		Wall: time.Since(t0),
		Ops:  int64(writers * eventsEach),
	}
}

// DispatchStorm hammers the dispatcher: `procs` independent processes each
// pass the preemption point yieldsEach times with their slices forced
// empty, so every pass rotates the CPU to a queued process. With procs
// twice NCPU the run queues never drain and every yield is a full
// enqueue-pick-dispatch cycle. Ops = yields.
func DispatchStorm(cfg kernel.Config, procs, yieldsEach int) Metrics {
	total := int64(procs * yieldsEach)
	s := newSession(cfg)
	var wg sync.WaitGroup
	s.start()
	for i := 0; i < procs; i++ {
		wg.Add(1)
		s.Sys.Start("yielder", func(cc *kernel.Context) {
			defer wg.Done()
			for n := 0; n < yieldsEach; n++ {
				cc.P.SliceLeft.Store(0)
				cc.S.Sched.Yield(cc.P)
			}
		})
	}
	wg.Wait()
	s.Sys.WaitIdle()
	s.stop()
	return s.metrics(total)
}
