package workload

import (
	"errors"
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
)

// TestFailedSpawnStormRace is the FrameResv conservation storm: spawn
// members with batched reservations under a tight member cap, a frame
// quota, and an armed fault plan, so every failure path fires — member-cap
// EAGAIN before any side effect, quota refusals of the batch, injected
// hard ENOMEMs that refund prepaid frames after consume, and reaps that
// release remainders while fills are still failing. Run under -race (the
// tier1 StormRace line). The assertions are the reservation flow law
//
//	ResvReserved + ResvRefunds == ResvConsumed + ResvReleased
//
// at quiescence, plus the usual drains: the group account back to zero
// and no machine frame leaked.
func TestFailedSpawnStormRace(t *testing.T) {
	rounds := 48
	if testing.Short() {
		rounds = 16
	}
	cfg := small()
	cfg.MaxProcs = 64
	cfg.SpawnReserve = 8
	cfg.FaultSeed = 0xC0FFEE
	cfg.FaultRate = 150

	s := newSession(cfg)
	var acct *hw.FrameAcct
	sawEAGAIN := false
	s.Sys.Start("driver", func(c *kernel.Context) {
		// First member just establishes the group so the limits have a
		// principal to attach to; retry around injected failures.
		for kernel.GroupOf(c.P) == nil {
			if _, err := c.Sproc("seed", func(cc *kernel.Context, _ int64) {}, proc.PRSALL, 0); err == nil {
				for {
					if _, _, werr := c.Wait(); werr == nil || errors.Is(werr, kernel.ErrNoChildren) {
						break
					}
				}
			}
		}
		acct = kernel.GroupOf(c.P).FrameAcct()
		// The plan injects into setshares too; retry around EINTR.
		for {
			if err := c.Setshares(kernel.GroupLimits{CPUShares: 0, FrameQuota: 200, MemberCap: 4}); err == nil {
				break
			} else if !errors.Is(err, kernel.EINTR) && !errors.Is(err, kernel.EAGAIN) {
				panic(err)
			}
		}
		for i := 0; i < rounds; i++ {
			live := 0
			// Over-subscribe the member cap so some sprocs take the
			// EAGAIN path (possibly after the gateway's retry backoff).
			for m := 0; m < 6; m++ {
				_, err := c.Sproc("stormer", func(cc *kernel.Context, arg int64) {
					// Touch enough private pages to outrun the prepaid
					// batch; injected hard ENOMEMs kill the member
					// mid-fill, leaving consumed-then-refunded frames
					// and a remainder for the reap to release.
					va, err := cc.MmapPrivate(12)
					if err != nil {
						return
					}
					for j := 0; j < 12; j++ {
						cc.Store32(va+hw.VAddr(j*pageSize), uint32(arg)+uint32(j))
					}
					cc.Munmap(va)
				}, proc.PRSALL, int64(i*8+m))
				if err == nil {
					live++
				} else if errors.Is(err, kernel.EAGAIN) {
					sawEAGAIN = true
				}
			}
			for live > 0 {
				if _, _, err := c.Wait(); err == nil {
					live--
				} else if errors.Is(err, kernel.ErrNoChildren) {
					break
				}
			}
		}
	})
	s.Sys.WaitIdle()

	if acct == nil {
		t.Fatal("driver never captured the group account")
	}
	if !sawEAGAIN {
		t.Log("note: member-cap EAGAIN path never fired this seed")
	}
	res, cons, ref, rel := acct.ResvReserved.Load(), acct.ResvConsumed.Load(),
		acct.ResvRefunds.Load(), acct.ResvReleased.Load()
	if res == 0 {
		t.Fatal("storm never took a spawn reservation")
	}
	if res+ref != cons+rel {
		t.Fatalf("reservation flow broken: reserved %d + refunds %d != consumed %d + released %d",
			res, ref, cons, rel)
	}
	if u := acct.Used(); u != 0 {
		t.Fatalf("group account leaked %d frames after drain", u)
	}
	mem := s.Sys.Machine.Mem
	if mem.InUse() != 0 {
		t.Fatalf("frames leaked: %d still in use after full teardown", mem.InUse())
	}
}
