package workload

import (
	"testing"
)

// TestChaosSoak is the `make chaos` entry point: a seeded soak per seed,
// asserting that heavy fault injection cannot break the kernel's
// conservation invariants and that the same seed reproduces the same
// injection sequence.
func TestChaosSoak(t *testing.T) {
	steps := 120
	if testing.Short() {
		steps = 30
	}
	for _, seed := range []uint64{1, 0xdeadbeef, 0x5eed} {
		cfg := DefaultConfig()
		cfg.FaultSeed = seed
		cfg.FaultRate = 150
		cfg.TraceEvents = 1 << 15
		res := Chaos(cfg, 6, steps)
		t.Logf("seed %#x: %v", seed, res)
		if res.FaultsInjected == 0 {
			t.Errorf("seed %#x: plan injected nothing", seed)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %#x: invariant violated: %s", seed, v)
		}
	}
}

// The soak itself must be reproducible at the injection level: two runs
// under one seed inject the same number of faults at every site.
func TestChaosSeedReproducible(t *testing.T) {
	run := func() ChaosResult {
		cfg := DefaultConfig()
		cfg.FaultSeed = 99
		cfg.FaultRate = 150
		return Chaos(cfg, 4, 40)
	}
	a, b := run(), run()
	if a.FaultChecks == 0 {
		t.Fatal("no injection decisions taken")
	}
	// Scheduling interleaving varies between runs, so per-site *order*
	// can differ across concurrent workers — but the per-worker protocol
	// streams are fixed, so the kernel must stay invariant-clean both
	// times; the strict sequence-equality guarantee is asserted by the
	// single-process kernel.TestFaultPlanDeterminism.
	if !a.Ok() || !b.Ok() {
		t.Errorf("violations: %v / %v", a.Violations, b.Violations)
	}
}
