package workload

import "testing"

// TestContentionHybridBeatsSpin is the S5 acceptance regression: under
// 2× CPU overcommit (8 members, 4 processors) the hybrid spin-then-block
// lock must beat the pure spin lock on wall-clock, must actually convert
// spins to blocks, and must not lose a wakeup (a lost wakeup hangs the
// run; a lost update panics inside Contention).
func TestContentionHybridBeatsSpin(t *testing.T) {
	members, iters, grain := 8, 200, 600
	if testing.Short() {
		iters = 80
	}
	spin := Contention(DefaultConfig(), LockSpin, members, iters, grain)
	hybrid := Contention(DefaultConfig(), LockHybrid, members, iters, grain)
	t.Logf("spin-only: wall=%v cycles/op=%.0f preempts=%d", spin.Wall, spin.CyclesPerOp(), spin.Preempts)
	t.Logf("hybrid:    wall=%v cycles/op=%.0f blocks=%d wakes=%d banked=%d s2b=%d",
		hybrid.Wall, hybrid.CyclesPerOp(), hybrid.Blocks, hybrid.Wakes, hybrid.BankedWakes, hybrid.SpinToBlocks)
	if hybrid.SpinToBlocks == 0 {
		t.Error("hybrid mode under overcommit never converted a spin to a block")
	}
	if hybrid.Wall >= spin.Wall {
		t.Errorf("hybrid (%v) did not beat spin-only (%v) under overcommit", hybrid.Wall, spin.Wall)
	}
	// Every block must eventually be paid for by a wake (or the run
	// would have hung): released + banked covers all issued unblocks.
	if hybrid.Wakes == 0 {
		t.Error("hybrid run recorded blocks but no wakes")
	}
}
