package workload

import "testing"

// The S10 claim in unit form: against the decaying dirtier, the final
// stop-the-world delta must shrink monotonically as pre-copy passes are
// added — the whole resident set with no passes, a tail of a few pages
// after one, nothing once the passes outlast the churn.
func TestCkptPrecopyMonotone(t *testing.T) {
	passes := []int{0, 1, 2, 4}
	prev := -1
	for i, p := range passes {
		info, err := CkptPrecopy(DefaultConfig(), 4, 64, p)
		if err != nil {
			t.Fatalf("passes=%d: %v", p, err)
		}
		t.Logf("passes=%d: pre=%d stw=%d stwcyc=%d image=%dB",
			p, info.PrePages, info.STWPages, info.STWCycles, info.ImageBytes)
		if i == 0 {
			if info.STWPages < 4*64 {
				t.Errorf("naive snapshot copied %d pages stopped, want the whole %d-page set", info.STWPages, 4*64)
			}
		} else if info.STWPages > prev {
			t.Errorf("STW delta grew from %d to %d pages when passes went from %d to %d",
				prev, info.STWPages, passes[i-1], p)
		}
		if p > 0 && info.PrePages == 0 {
			t.Errorf("passes=%d copied nothing live", p)
		}
		prev = info.STWPages
	}
}
