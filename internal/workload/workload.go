// Package workload implements the paper's experiments (DESIGN.md E1..E10)
// as reusable drivers: each boots a fresh simulated system, runs a
// workload inside it, and reports wall-clock time, simulated cycles, and
// event counts. The root package's benchmarks and cmd/benchtab both build
// on these drivers, so the numbers in EXPERIMENTS.md are regenerable from
// either.
package workload

import (
	"fmt"
	"time"

	"repro/internal/kernel"
)

// Metrics reports one experiment run.
type Metrics struct {
	Wall       time.Duration // host wall-clock time of the measured section
	Cycles     int64         // simulated CPU cycles consumed by the section
	Ops        int64         // unit operations performed
	Shootdowns int64         // machine-wide TLB shootdown operations
	Faults     int64         // page faults taken
	Syncs      int64         // share-group entry synchronizations
	Preempts   int64         // scheduler preemptions
	Updater    int64         // cycles charged to the driver process alone
	RLocks     int64         // shared-read acquisitions of the VM lock
	WLocks     int64         // exclusive acquisitions of the VM lock
	LockSleeps int64         // times a process slept on the VM lock
	Dispatches int64         // CPU dispatches of the measured processes
	FastFills  int64         // faults resolved on the lock-free PTE path
	SlowFills  int64         // faults that took a region fill stripe
	CacheHits  int64         // faults served by a last-hit pregion cache

	// Sleep-wake subsystem (blockproc/unblockproc, hybrid uspin).
	Blocks       int64 // blockproc(2) calls that actually slept
	Wakes        int64 // unblocks that released a sleeper
	BankedWakes  int64 // unblocks banked with no sleeper (wasted wakes)
	SpinToBlocks int64 // bounded spins converted to blockproc sleeps
}

// UpdaterPerOp returns the driver process's own cycles per operation —
// the critical-path cost the deferred-synchronization design minimizes.
func (m Metrics) UpdaterPerOp() float64 {
	if m.Ops == 0 {
		return 0
	}
	return float64(m.Updater) / float64(m.Ops)
}

// CyclesPerOp returns simulated cycles per unit operation.
func (m Metrics) CyclesPerOp() float64 {
	if m.Ops == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Ops)
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("ops=%d wall=%v cycles/op=%.0f shootdowns=%d faults=%d",
		m.Ops, m.Wall.Round(time.Microsecond), m.CyclesPerOp(), m.Shootdowns, m.Faults)
}

// DefaultConfig is the standard experiment machine: 4 processors, 64 MiB,
// short time slices so preemption is realistic at bench scale.
func DefaultConfig() kernel.Config {
	return kernel.Config{NCPU: 4, MemFrames: 16384, TimeSlice: 2000}
}

// session boots a system, runs body as process 1, waits for the system to
// go idle, and collects machine-level deltas around the measured section.
// body must call s.start() when setup is done and s.stop() when the
// measured section ends.
type session struct {
	Sys      *kernel.System
	t0       time.Time
	wall     time.Duration
	c0       int64
	cycles   int64
	sd0, sd1 int64
	f0, f1   int64
	p0, p1   int64
}

func newSession(cfg kernel.Config) *session {
	return &session{Sys: kernel.NewSystem(cfg)}
}

func (s *session) start() {
	s.c0 = s.Sys.Machine.TotalCycles()
	s.sd0 = s.Sys.Machine.ShootdownOps.Load()
	s.f0 = s.faults()
	s.p0 = s.Sys.Sched.Preemptions.Load()
	s.t0 = time.Now()
}

func (s *session) stop() {
	s.wall = time.Since(s.t0)
	s.cycles = s.Sys.Machine.TotalCycles() - s.c0
	s.sd1 = s.Sys.Machine.ShootdownOps.Load()
	s.f1 = s.faults()
	s.p1 = s.Sys.Sched.Preemptions.Load()
}

func (s *session) faults() int64 {
	var n int64
	for _, c := range s.Sys.Machine.CPUs {
		n += c.Faults.Load()
	}
	return n
}

// metrics finalizes the session into a Metrics with the given op count.
func (s *session) metrics(ops int64) Metrics {
	return Metrics{
		Wall:       s.wall,
		Cycles:     s.cycles,
		Ops:        ops,
		Shootdowns: s.sd1 - s.sd0,
		Faults:     s.f1 - s.f0,
		Preempts:   s.p1 - s.p0,
	}
}

// runMeasured boots cfg, runs body as process 1 (bracketing it with
// start/stop), waits for idle, and returns metrics for ops operations.
func runMeasured(cfg kernel.Config, ops int64, body func(*kernel.Context, *session)) Metrics {
	s := newSession(cfg)
	s.Sys.Start("driver", func(c *kernel.Context) {
		body(c, s)
	})
	s.Sys.WaitIdle()
	return s.metrics(ops)
}
