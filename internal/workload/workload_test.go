package workload

import (
	"testing"

	"repro/internal/kernel"
)

// small returns a test-sized machine configuration.
func small() kernel.Config {
	return kernel.Config{NCPU: 4, MemFrames: 16384, TimeSlice: 1000}
}

func TestCreationOrdering(t *testing.T) {
	// The paper's qualitative claims: sproc() is slightly cheaper than
	// fork() (§7), and thread creation is much cheaper than fork (§3).
	const n = 40
	fork := Creation(small(), CreateFork, 32, n)
	sproc := Creation(small(), CreateSproc, 32, n)
	nvm := Creation(small(), CreateSprocNVM, 32, n)
	thread := Creation(small(), CreateThread, 32, n)

	if fork.Ops != n || sproc.Ops != n {
		t.Fatalf("ops: fork=%d sproc=%d", fork.Ops, sproc.Ops)
	}
	if sproc.CyclesPerOp() >= fork.CyclesPerOp() {
		t.Errorf("sproc (%.0f cyc) not cheaper than fork (%.0f cyc)",
			sproc.CyclesPerOp(), fork.CyclesPerOp())
	}
	if thread.CyclesPerOp() >= sproc.CyclesPerOp() {
		t.Errorf("thread (%.0f cyc) not cheaper than sproc (%.0f cyc)",
			thread.CyclesPerOp(), sproc.CyclesPerOp())
	}
	// A non-VM-sharing sproc pays the COW duplication, like fork.
	if nvm.CyclesPerOp() < sproc.CyclesPerOp() {
		t.Errorf("sproc-nvm (%.0f cyc) cheaper than VM-sharing sproc (%.0f cyc)",
			nvm.CyclesPerOp(), sproc.CyclesPerOp())
	}
}

func TestFaultScalingCountsFaults(t *testing.T) {
	m := FaultScaling(small(), 4, 64)
	if m.Ops != 256 {
		t.Fatalf("ops = %d", m.Ops)
	}
	if m.Faults < 256 {
		t.Errorf("faults = %d, want >= 256 (one per touched page)", m.Faults)
	}
	solo := FaultScaling(small(), 0, 64)
	if solo.Ops != 64 || solo.Faults < 64 {
		t.Errorf("solo: %+v", solo)
	}
}

func TestShrinkShootdown(t *testing.T) {
	m := ShrinkShootdown(small(), 2, 20)
	if m.Shootdowns < 20 {
		t.Errorf("shootdowns = %d, want >= 20", m.Shootdowns)
	}
	grow := GrowOnly(small(), 20)
	if grow.Shootdowns != 0 {
		t.Errorf("grow-only performed %d shootdowns; growth must not shoot down", grow.Shootdowns)
	}
	if grow.CyclesPerOp() >= m.CyclesPerOp() {
		t.Errorf("grow (%.0f) not cheaper than shrink+shootdown (%.0f)",
			grow.CyclesPerOp(), m.CyclesPerOp())
	}
}

func TestSyscallNullNoGroupPenalty(t *testing.T) {
	const n = 2000
	plain := SyscallNull(small(), false, n)
	member := SyscallNull(small(), true, n)
	// Design goal 4: same fast path. Allow small noise, not a penalty.
	if member.CyclesPerOp() > plain.CyclesPerOp()*1.25 {
		t.Errorf("group member null syscall %.1f cyc vs plain %.1f cyc",
			member.CyclesPerOp(), plain.CyclesPerOp())
	}
}

func TestOpenCloseStormCostsMore(t *testing.T) {
	const n = 150
	clean := SyscallOpenClose(small(), true, false, n)
	storm := SyscallOpenClose(small(), true, true, n)
	if storm.CyclesPerOp() <= clean.CyclesPerOp() {
		t.Errorf("storm (%.0f) not costlier than clean (%.0f)",
			storm.CyclesPerOp(), clean.CyclesPerOp())
	}
}

func TestAttrSyncPerformsSyncs(t *testing.T) {
	m := AttrSync(small(), 3, 50)
	if m.Syncs == 0 {
		t.Error("no entry synchronizations recorded")
	}
	if m.Ops != 50 {
		t.Errorf("ops = %d", m.Ops)
	}
}

func TestIPCBandwidthShapes(t *testing.T) {
	const chunk, total = 4096, 128 * 1024
	pipe := IPCBandwidth(small(), MechPipe, chunk, total)
	shm := IPCBandwidth(small(), MechShm, chunk, total)
	msgq := IPCBandwidth(small(), MechMsgq, chunk, total)
	sock := IPCBandwidth(small(), MechSocket, chunk, total)
	for name, m := range map[string]Metrics{"pipe": pipe, "shm": shm, "msgq": msgq, "socket": sock} {
		if m.Ops != total/chunk {
			t.Fatalf("%s ops = %d", name, m.Ops)
		}
	}
	// The §3 shape: shared memory beats every queueing mechanism.
	if shm.CyclesPerOp() >= pipe.CyclesPerOp() {
		t.Errorf("shm (%.0f) not cheaper than pipe (%.0f)", shm.CyclesPerOp(), pipe.CyclesPerOp())
	}
	if shm.CyclesPerOp() >= msgq.CyclesPerOp() {
		t.Errorf("shm (%.0f) not cheaper than msgq (%.0f)", shm.CyclesPerOp(), msgq.CyclesPerOp())
	}
	if shm.CyclesPerOp() >= sock.CyclesPerOp() {
		t.Errorf("shm (%.0f) not cheaper than socket (%.0f)", shm.CyclesPerOp(), sock.CyclesPerOp())
	}
}

func TestSyncLatencyShapes(t *testing.T) {
	const rounds = 100
	spin := SyncLatency(small(), SyncSpin, rounds)
	sem := SyncLatency(small(), SyncSemop, rounds)
	pipe := SyncLatency(small(), SyncPipe, rounds)
	// §3: busy-waiting approaches memory speed; kernel mechanisms don't.
	if spin.CyclesPerOp() >= sem.CyclesPerOp() {
		t.Errorf("spin (%.0f) not cheaper than semop (%.0f)", spin.CyclesPerOp(), sem.CyclesPerOp())
	}
	if spin.CyclesPerOp() >= pipe.CyclesPerOp() {
		t.Errorf("spin (%.0f) not cheaper than pipe (%.0f)", spin.CyclesPerOp(), pipe.CyclesPerOp())
	}
}

func TestSyncLatencySignal(t *testing.T) {
	m := SyncLatency(small(), SyncSignal, 30)
	if m.Ops != 30 {
		t.Fatalf("ops = %d", m.Ops)
	}
	spin := SyncLatency(small(), SyncSpin, 30)
	if spin.CyclesPerOp() >= m.CyclesPerOp() {
		t.Errorf("spin (%.0f) not cheaper than signal (%.0f)", spin.CyclesPerOp(), m.CyclesPerOp())
	}
}

func TestPoolModes(t *testing.T) {
	const workers, items, grain = 4, 60, 400
	pool := Pool(small(), PoolSproc, workers, items, grain)
	forked := Pool(small(), PoolForkPerTask, workers, items, grain)
	piped := Pool(small(), PoolPipeWorkers, workers, items, grain)
	for name, m := range map[string]Metrics{"pool": pool, "fork": forked, "pipe": piped} {
		if m.Ops != items {
			t.Fatalf("%s ops = %d", name, m.Ops)
		}
	}
	// §3: preallocated self-scheduling beats dynamic creation.
	if pool.CyclesPerOp() >= forked.CyclesPerOp() {
		t.Errorf("pool (%.0f) not cheaper than fork-per-task (%.0f)",
			pool.CyclesPerOp(), forked.CyclesPerOp())
	}
}

func TestSpeedupCurve(t *testing.T) {
	ms := Speedup(small(), []int{1, 2, 4}, 64, 2000)
	if len(ms) != 3 {
		t.Fatalf("got %d points", len(ms))
	}
	// More workers must not increase total cycles dramatically, and wall
	// time with 4 workers should be below 1 worker's on a 4-CPU machine.
	if ms[2].Wall >= ms[0].Wall {
		t.Logf("note: wall did not improve with workers: %v vs %v (host scheduling noise)", ms[2].Wall, ms[0].Wall)
	}
}

func TestGangReducesMemberDispatches(t *testing.T) {
	std := GangBarrier(small(), false, 4, 4, 50, 600)
	gang := GangBarrier(small(), true, 4, 4, 50, 600)
	if std.Ops != 50 || gang.Ops != 50 {
		t.Fatalf("ops: std=%d gang=%d", std.Ops, gang.Ops)
	}
	// The §8 claim: scheduling the group as a whole keeps spinners'
	// partners running. Without it, members rotate against the load on
	// every few rounds; with it, the initial dispatches suffice.
	if gang.Dispatches*4 > std.Dispatches {
		t.Errorf("gang dispatches = %d, std = %d; expected >=4x reduction",
			gang.Dispatches, std.Dispatches)
	}
}
