package workload

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/uspin"
)

// Mech selects a data-passing mechanism for the E5 bandwidth comparison.
type Mech string

const (
	MechPipe   Mech = "pipe"   // V7 queueing model
	MechMsgq   Mech = "msgq"   // System V message queue
	MechSocket Mech = "socket" // BSD stream socket pair
	MechShm    Mech = "shm"    // share group memory + busy-wait flags
)

// IPCBandwidth moves total bytes from a producer to a consumer in chunk-
// sized units through the chosen mechanism and reports cycles per chunk
// (Ops = chunks). The shared-memory variant is the paper's §3 argument:
// it crosses the kernel only for page faults, while every queueing
// mechanism pays two copies plus sleep/wakeup per chunk.
func IPCBandwidth(cfg kernel.Config, mech Mech, chunk, total int) Metrics {
	chunks := total / chunk
	return runMeasured(cfg, int64(chunks), func(c *kernel.Context, s *session) {
		switch mech {
		case MechPipe:
			ipcPipe(c, s, chunk, chunks)
		case MechMsgq:
			ipcMsgq(c, s, chunk, chunks)
		case MechSocket:
			ipcSocket(c, s, chunk, chunks)
		case MechShm:
			ipcShm(c, s, chunk, chunks)
		default:
			panic(fmt.Sprintf("workload: unknown mech %q", mech))
		}
	})
}

// srcVA/dstVA are private buffers the producer fills and the consumer
// drains, so every mechanism pays the same user-side touch cost.
const (
	srcVA = dataBase
	dstVA = dataBase + 64*1024
)

func ipcPipe(c *kernel.Context, s *session, chunk, chunks int) {
	rfd, wfd, err := c.Pipe()
	if err != nil {
		panic(err)
	}
	c.StoreBytes(srcVA, make([]byte, chunk))
	c.Fork("consumer", func(cc *kernel.Context) {
		got := 0
		for got < chunk*chunks {
			n, err := cc.Read(rfd, dstVA, chunk)
			if err != nil || n == 0 {
				return
			}
			got += n
		}
	})
	s.start()
	for i := 0; i < chunks; i++ {
		sent := 0
		for sent < chunk {
			n, err := c.Write(wfd, srcVA+hw.VAddr(sent), chunk-sent)
			if err != nil {
				panic(err)
			}
			sent += n
		}
	}
	c.Wait()
	s.stop()
}

func ipcMsgq(c *kernel.Context, s *session, chunk, chunks int) {
	id := c.Msgget(0)
	c.StoreBytes(srcVA, make([]byte, chunk))
	c.Fork("consumer", func(cc *kernel.Context) {
		for i := 0; i < chunks; i++ {
			if _, _, err := cc.Msgrcv(id, 0, dstVA, chunk); err != nil {
				return
			}
		}
	})
	s.start()
	for i := 0; i < chunks; i++ {
		if err := c.Msgsnd(id, 1, srcVA, chunk); err != nil {
			panic(err)
		}
	}
	c.Wait()
	s.stop()
}

func ipcSocket(c *kernel.Context, s *session, chunk, chunks int) {
	l, err := c.NetListen("bw")
	if err != nil {
		panic(err)
	}
	c.StoreBytes(srcVA, make([]byte, chunk))
	c.Fork("consumer", func(cc *kernel.Context) {
		fd, err := cc.NetConnect("bw")
		if err != nil {
			return
		}
		got := 0
		for got < chunk*chunks {
			n, err := cc.Read(fd, dstVA, chunk)
			if err != nil || n == 0 {
				return
			}
			got += n
		}
	})
	fd, err := c.NetAccept(l)
	if err != nil {
		panic(err)
	}
	s.start()
	for i := 0; i < chunks; i++ {
		sent := 0
		for sent < chunk {
			n, err := c.Write(fd, srcVA+hw.VAddr(sent), chunk-sent)
			if err != nil {
				panic(err)
			}
			sent += n
		}
	}
	c.Wait()
	s.stop()
}

// ipcShm passes chunks through group-shared memory with busy-wait flags:
// the producer writes each chunk directly into the shared buffer (its
// production cost), raises the flag, and the consumer reads it in place.
// No kernel copy, no sleep/wakeup — the paper's high-bandwidth path.
func ipcShm(c *kernel.Context, s *session, chunk, chunks int) {
	bufVA, err := c.Mmap((chunk+pageSize-1)/pageSize + 1)
	if err != nil {
		panic(err)
	}
	flag := uspin.Word{VA: bufVA} // word 0: ready flag; data at +64
	data := bufVA + 64
	c.Sproc("consumer", func(cc *kernel.Context, _ int64) {
		buf := make([]byte, chunk)
		for i := 0; i < chunks; i++ {
			if err := flag.AwaitEq(cc, 1); err != nil {
				return
			}
			cc.LoadBytes(data, buf) // consume in place
			flag.Store(cc, 0)
		}
	}, proc.PRSALL, 0)
	s.start()
	buf := make([]byte, chunk)
	for i := 0; i < chunks; i++ {
		if err := flag.AwaitEq(c, 0); err != nil {
			panic(err)
		}
		c.StoreBytes(data, buf) // produce directly into shared memory
		flag.Store(c, 1)
	}
	c.Wait()
	s.stop()
}
