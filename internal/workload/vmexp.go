package workload

import (
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/uspin"
)

// FaultScaling measures demand-fault throughput for E2's hot path:
// members' concurrent page faults all take the shared read lock. The
// workload touches fresh pages of a shared mapping; to keep physical
// memory bounded at any request size, it works through a fixed-size window
// that is unmapped and remapped once filled (every touch therefore demand-
// faults a never-before-seen page). members == 0 measures a solo,
// non-group process for comparison (the private-list path).
func FaultScaling(cfg kernel.Config, members, pagesEach int) Metrics {
	const window = 256 // pages per mapping; well under physical memory
	var rlocks, wlocks, sleeps int64
	var ops int64
	m := runMeasured(cfg, 0, func(c *kernel.Context, s *session) {
		if members == 0 {
			s.start()
			left := pagesEach
			for left > 0 {
				n := window
				if n > left {
					n = left
				}
				va, err := c.Mmap(n)
				if err != nil {
					panic(err)
				}
				for i := 0; i < n; i++ {
					c.Store32(va+hw.VAddr(i*pageSize), 1)
				}
				ops += int64(n)
				left -= n
				if err := c.Munmap(va); err != nil {
					panic(err)
				}
			}
			s.stop()
			return
		}

		gate := uspin.Barrier{VA: dataBase, N: uint32(members) + 1}
		gate.Init(c)
		// Control words live past the barrier's whole footprint.
		ctl := dataBase + uspin.BarrierBytes // per-round window base
		stop := dataBase + uspin.BarrierBytes + 4
		for mIdx := 0; mIdx < members; mIdx++ {
			c.Sproc("faulter", func(cc *kernel.Context, arg int64) {
				for {
					gate.Enter(cc) // round start
					if v, _ := cc.Load32(stop); v == 1 {
						return
					}
					base, _ := cc.Load32(ctl)
					per := window / members
					lo := hw.VAddr(base) + hw.VAddr(int(arg)*per*pageSize)
					for i := 0; i < per; i++ {
						cc.Store32(lo+hw.VAddr(i*pageSize), 1)
					}
					gate.Enter(cc) // round done
				}
			}, proc.PRSALL, int64(mIdx))
		}

		per := window / members
		rounds := (pagesEach + per - 1) / per
		s.start()
		for r := 0; r < rounds; r++ {
			va, err := c.Mmap(window)
			if err != nil {
				panic(err)
			}
			c.Store32(ctl, uint32(va))
			gate.Enter(c) // release the faulters
			gate.Enter(c) // wait for the round
			ops += int64(per * members)
			if err := c.Munmap(va); err != nil {
				panic(err)
			}
		}
		c.Store32(stop, 1)
		gate.Enter(c)
		s.stop()
		if sa := kernel.GroupOf(c.P); sa != nil {
			rlocks = sa.Acc.RLocks.Load()
			wlocks = sa.Acc.WLocks.Load()
			sleeps = sa.Acc.RSleeps.Load() + sa.Acc.WSleeps.Load()
		}
		for mIdx := 0; mIdx < members; mIdx++ {
			c.Wait()
		}
	})
	m.Ops = ops
	m.RLocks, m.WLocks, m.LockSleeps = rlocks, wlocks, sleeps
	return m
}

// ShrinkShootdown measures E2's slow path: region shrink with the full
// update-lock + machine-wide TLB shootdown protocol. The creator grows and
// shrinks its data region n times while spinners occupy the other CPUs
// with hot TLBs, so every shrink really invalidates remote state.
func ShrinkShootdown(cfg kernel.Config, spinners, n int) Metrics {
	return runMeasured(cfg, int64(n), func(c *kernel.Context, s *session) {
		stop := uspin.Word{VA: dataBase}
		stop.Store(c, 0)
		for i := 0; i < spinners; i++ {
			c.Sproc("spinner", func(cc *kernel.Context, _ int64) {
				stop.AwaitNe(cc, 0)
			}, proc.PRSALL, 0)
		}
		s.start()
		for i := 0; i < n; i++ {
			if _, err := c.Sbrk(pageSize); err != nil {
				panic(err)
			}
			end := c.Brk()
			c.Store32(end-pageSize, 7) // make the page resident and cached
			if _, err := c.Sbrk(-pageSize); err != nil {
				panic(err)
			}
		}
		s.stop()
		stop.Store(c, 1)
		for i := 0; i < spinners; i++ {
			c.Wait()
		}
	})
}

// GrowOnly is the cheap half of E2: sbrk growth takes the update lock but
// needs no shootdown. To bound the address space at any request size, the
// data region is shrunk back every windowful of growth (the give-back is a
// small, amortized pollution of the metric, noted in EXPERIMENTS.md).
func GrowOnly(cfg kernel.Config, n int) Metrics {
	const window = 1024
	return runMeasured(cfg, int64(n), func(c *kernel.Context, s *session) {
		c.Sproc("bystander", func(cc *kernel.Context, _ int64) {}, proc.PRSALL, 0)
		c.Wait()
		s.start()
		for i := 0; i < n; i++ {
			if _, err := c.Sbrk(pageSize); err != nil {
				panic(err)
			}
			if (i+1)%window == 0 {
				if _, err := c.Sbrk(-int64(window) * pageSize); err != nil {
					panic(err)
				}
			}
		}
		s.stop()
		c.Sbrk(-int64(n%window) * pageSize)
	})
}
