package workload

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/proc"
)

// CreateKind selects a process-creation primitive for E1/E4.
type CreateKind string

const (
	CreateFork     CreateKind = "fork"      // fork(2): full COW image + fd copy
	CreateSproc    CreateKind = "sproc"     // sproc(PR_SALL): shared VM, no copying
	CreateSprocNVM CreateKind = "sproc-nvm" // sproc without PR_SADDR: COW image
	CreateThread   CreateKind = "thread"    // Mach-baseline thread_create
)

// Creation measures n create+join cycles of the given kind (E1, E4). The
// creator dirties dataPages pages first so fork-style duplication has a
// real page table to copy. Stacks are limited to 64 KiB so address-space
// consumption stays bounded at bench scale.
func Creation(cfg kernel.Config, kind CreateKind, dataPages, n int) Metrics {
	return runMeasured(cfg, int64(n), func(c *kernel.Context, s *session) {
		c.SetStackSize(64 * 1024)
		for i := 0; i < dataPages && i < cfg.DataPages; i++ {
			c.Store32(dataVA(i), uint32(i))
		}
		noopMain := func(cc *kernel.Context) {}
		noopEntry := func(cc *kernel.Context, _ int64) {}

		s.start()
		for i := 0; i < n; i++ {
			var err error
			switch kind {
			case CreateFork:
				_, err = c.Fork("child", noopMain)
			case CreateSproc:
				_, err = c.Sproc("child", noopEntry, proc.PRSALL, 0)
			case CreateSprocNVM:
				_, err = c.Sproc("child", noopEntry, proc.PRSALL&^proc.PRSADDR, 0)
			case CreateThread:
				_, err = c.ThreadCreate("child", noopEntry, 0)
			default:
				panic(fmt.Sprintf("workload: unknown create kind %q", kind))
			}
			if err != nil {
				panic(fmt.Sprintf("workload: %s create %d: %v", kind, i, err))
			}
			if _, _, err := c.Wait(); err != nil {
				panic(fmt.Sprintf("workload: wait %d: %v", i, err))
			}
		}
		s.stop()
	})
}

func dataVA(page int) (va hwVAddr) {
	return dataBase + hwVAddr(page*pageSize)
}
