package workload

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/uspin"
)

// LockMode selects a waiting discipline for the S5 overcommit contention
// experiment.
type LockMode string

const (
	// LockSpin is the paper's pure busy-wait lock: cheap while the holder
	// runs, pathological when the holder is descheduled — the waiters burn
	// their slices spinning on a lock that cannot be released.
	LockSpin LockMode = "spin-only"
	// LockHybrid spins a bounded budget, then blocks in the kernel with
	// blockproc(2) so the CPU goes to a process that can make progress.
	LockHybrid LockMode = "hybrid"
	// LockGang is pure spinning under gang scheduling (§8): the dispatcher
	// keeps the whole group co-resident, so the holder is (mostly) running
	// whenever a waiter spins.
	LockGang LockMode = "gang-spin"
)

// Contention measures a contended critical section under CPU overcommit:
// `members` share-group processes (deliberately more than the machine has
// processors) each perform `iters` increments of a shared, non-atomic
// counter protected by one uspin.Mutex, with `grain` stores of extra work
// inside the critical section so holding spans a meaningful fraction of a
// time slice. The member count exceeding NCPU is the point — a lock
// holder regularly loses its processor while waiters hold theirs, which
// is exactly the case blockproc(2) exists for. The counter is read back
// and checked after the run: any lost update means mutual exclusion was
// broken, any hang means a wakeup was lost.
func Contention(cfg kernel.Config, mode LockMode, members, iters, grain int) Metrics {
	total := int64(members * iters)
	var blocks, wakes, banked, s2b int64
	m := runMeasured(cfg, total, func(c *kernel.Context, s *session) {
		if mode == LockGang {
			c.Sproc("primer", func(*kernel.Context, int64) {}, proc.PRSALL, 0)
			c.Wait()
			c.SetGang(true)
		}
		lock := uspin.Mutex{VA: dataBase}
		lock.Init(c)
		shared := dataBase + uspin.MutexBytes
		gate := uspin.Barrier{VA: dataBase + uspin.MutexBytes + 64, N: uint32(members) + 1}
		gate.Init(c)
		st0 := c.S.Stats()
		for w := 0; w < members; w++ {
			c.Sproc("contender", func(cc *kernel.Context, _ int64) {
				if err := gate.Enter(cc); err != nil {
					return
				}
				for i := 0; i < iters; i++ {
					var err error
					if mode == LockHybrid {
						err = lock.Lock(cc)
					} else {
						err = lock.LockSpin(cc)
					}
					if err != nil {
						panic(fmt.Sprintf("workload: contender lock: %v", err))
					}
					// Non-atomic read-modify-write: only mutual exclusion
					// keeps this update from being lost.
					v, _ := cc.Load32(shared)
					doWork(cc, grain)
					cc.Store32(shared, v+1)
					if err := lock.Unlock(cc); err != nil {
						panic(fmt.Sprintf("workload: contender unlock: %v", err))
					}
				}
			}, proc.PRSALL, int64(w))
		}
		s.start()
		if err := gate.Enter(c); err != nil {
			panic(err)
		}
		for w := 0; w < members; w++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
		s.stop()
		if v, _ := c.Load32(shared); v != uint32(total) {
			panic(fmt.Sprintf("workload: contention lost updates: counter=%d want=%d", v, total))
		}
		st1 := c.S.Stats()
		blocks = st1.ProcBlocks - st0.ProcBlocks
		wakes = st1.ProcWakes - st0.ProcWakes
		banked = st1.BankedWakes - st0.BankedWakes
		s2b = st1.SpinToBlocks - st0.SpinToBlocks
	})
	m.Blocks, m.Wakes, m.BankedWakes, m.SpinToBlocks = blocks, wakes, banked, s2b
	return m
}
