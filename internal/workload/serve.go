package workload

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/proc"
)

// ServeMode selects a connection-serving organization for S7, the C10k
// experiment: how many share-group members does it take to hold N
// concurrent client connections open and answer them all?
type ServeMode string

const (
	// ServePoll is the readiness-based organization: a small share group
	// whose members each multiplex a shard of the connections through
	// poll(2) and non-blocking reads. Member count is independent of
	// connection count.
	ServePoll ServeMode = "poll"
	// ServeBlocking is the thread-per-connection organization: every
	// member sits in a blocking accept/read/respond cycle, so holding N
	// connections open concurrently requires N members.
	ServeBlocking ServeMode = "blocking"
)

// ServeConfig sizes one serving run.
type ServeConfig struct {
	Conns   int // concurrent client connections to push through
	Members int // share-group members serving them (including the leader's pool)
	Clients int // client processes multiplexing the connections (default 4)
}

// ServeMetrics reports one serving run: the machine-level Metrics plus the
// per-connection request→response latency distribution in simulated
// cycles, and the readiness-layer counters behind it.
type ServeMetrics struct {
	Metrics
	Conns   int
	Members int
	P50     int64 // median request→response latency, simcyc
	P99     int64 // 99th-percentile latency, simcyc

	PollSleeps   int64 // poll(2) waits that slept
	Transitions  int64 // readiness transitions published
	SleeperWakes int64 // blocked stream ops released
	PollerWakes  int64 // poll registrations notified
}

// String renders the serving metrics compactly.
func (m ServeMetrics) String() string {
	return fmt.Sprintf("conns=%d members=%d p50=%d p99=%d %s",
		m.Conns, m.Members, m.P50, m.P99, m.Metrics.String())
}

// shutdownJob is the sentinel the leader writes into a job pipe after the
// last descriptor: the worker drains its remaining connections and exits.
const shutdownJob = ^uint32(0)

// Serve runs the S7 serving workload: sc.Clients client processes open
// sc.Conns connections in total against one listener, write a 4-byte
// request on each, and collect the 4-byte responses; sc.Members share-group
// members answer them, organized per mode. Latency per connection is the
// simulated-cycle interval between the client writing its request and
// reading the response.
func Serve(cfg kernel.Config, mode ServeMode, sc ServeConfig) ServeMetrics {
	if sc.Clients <= 0 {
		sc.Clients = 4
	}
	if sc.Clients > sc.Conns {
		sc.Clients = sc.Conns
	}
	// Every accepted descriptor stays in the shared table until a member
	// serves it, so the ceiling must cover the whole connection load; the
	// process limit likewise has to admit the member pool (the blocking
	// organization runs one member per connection).
	if cfg.MaxFiles < sc.Conns+sc.Members+16 {
		cfg.MaxFiles = sc.Conns + sc.Members + 16
	}
	if cfg.MaxProcs < sc.Members+sc.Clients+8 {
		cfg.MaxProcs = sc.Members + sc.Clients + 8
	}
	s := newSession(cfg)
	clock := s.Sys.Machine.TotalCycles // the run's simulated-time base

	// Latency collection is host-side driver bookkeeping (like GangBarrier's
	// dispatch counts): each client proc records into its own shard.
	lat := make([][]int64, sc.Clients)

	s.start()
	s.Sys.Start("serve-leader", func(c *kernel.Context) {
		lfd, err := c.NetListen("serve")
		if err != nil {
			panic(err)
		}
		switch mode {
		case ServePoll:
			servePoll(c, lfd, clock, lat, sc)
		case ServeBlocking:
			serveBlocking(c, lfd, clock, lat, sc)
		default:
			panic(fmt.Sprintf("workload: unknown serve mode %q", mode))
		}
	})
	s.Sys.WaitIdle()
	s.stop()

	m := ServeMetrics{Metrics: s.metrics(int64(sc.Conns)), Conns: sc.Conns, Members: sc.Members}
	var all []int64
	for _, shard := range lat {
		all = append(all, shard...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		m.P50 = all[len(all)/2]
		m.P99 = all[len(all)*99/100]
	}
	st := s.Sys.Stats()
	m.PollSleeps = st.PollSleeps
	m.Transitions = st.ReadyTransitions
	m.SleeperWakes = st.ReadySleeperWakes
	m.PollerWakes = st.ReadyPollerWakes
	return m
}

// spawnClients forks the client processes. Each opens its share of the
// connections, writes a 4-byte request on every one (recording the send
// time), then collects all the responses via its own poll loop — one
// process multiplexing thousands of concurrent connections from the client
// side too.
func spawnClients(c *kernel.Context, clock func() int64, lat [][]int64, sc ServeConfig) {
	per := sc.Conns / sc.Clients
	extra := sc.Conns % sc.Clients
	for i := 0; i < sc.Clients; i++ {
		n := per
		if i < extra {
			n++
		}
		shard := make([]int64, 0, n)
		lat[i] = shard
		idx := i
		nconns := n
		c.Fork("client", func(cc *kernel.Context) {
			va := dataBase
			fds := make([]int, nconns)
			t0 := make(map[int]int64, nconns)
			for j := 0; j < nconns; j++ {
				fd, err := cc.NetConnect("serve")
				if err != nil {
					panic(err)
				}
				fds[j] = fd
			}
			// All connections are open before the first request goes out,
			// so the server really holds nconns concurrent streams.
			set := make([]kernel.PollFd, 0, nconns)
			for _, fd := range fds {
				cc.Store32(va, uint32(fd))
				t0[fd] = clock()
				if _, err := cc.Write(fd, va, 4); err != nil {
					panic(err)
				}
				cc.SetNonblock(fd, true)
				set = append(set, kernel.PollFd{Fd: fd, Events: kernel.PollIn})
			}
			for len(set) > 0 {
				if _, err := cc.Poll(set, -1); err != nil {
					panic(err)
				}
				live := set[:0]
				for _, pf := range set {
					if pf.Revents == 0 {
						live = append(live, kernel.PollFd{Fd: pf.Fd, Events: kernel.PollIn})
						continue
					}
					n, err := cc.Read(pf.Fd, va+8, 4)
					if err != nil {
						// A spurious or consumed readiness edge: keep waiting.
						live = append(live, kernel.PollFd{Fd: pf.Fd, Events: kernel.PollIn})
						continue
					}
					if n != 4 {
						panic(fmt.Sprintf("client: short response (%d bytes)", n))
					}
					lat[idx] = append(lat[idx], clock()-t0[pf.Fd])
					cc.Close(pf.Fd)
				}
				set = live
			}
		})
	}
}

// servePoll is the readiness-based server: sc.Members workers sharing the
// descriptor table (PR_SFDS) each poll a job pipe plus their shard of
// accepted connections; the leader accepts and deals descriptor numbers
// round-robin into the job pipes. Descriptors travel as 4-byte numbers —
// the descriptor itself is already in every member's table.
func servePoll(c *kernel.Context, lfd int, clock func() int64, lat [][]int64, sc ServeConfig) {
	jobR := make([]int, sc.Members)
	jobW := make([]int, sc.Members)
	for w := 0; w < sc.Members; w++ {
		r, wr, err := c.Pipe()
		if err != nil {
			panic(err)
		}
		// The worker batch-drains its job pipe, so the read end is
		// non-blocking from the start; workers inherit the flag with the
		// shared table.
		c.SetNonblock(r, true)
		jobR[w], jobW[w] = r, wr
	}
	for w := 0; w < sc.Members; w++ {
		c.Sproc("server", func(wc *kernel.Context, id int64) {
			pollWorker(wc, jobR[id])
		}, proc.PRSADDR|proc.PRSFDS, int64(w))
	}

	spawnClients(c, clock, lat, sc)

	// Accept loop: the "security check" dispatcher of the paper's §1
	// example, upgraded from one mailbox to per-worker job pipes.
	va := dataBase
	for i := 0; i < sc.Conns; i++ {
		fd, err := c.NetAccept(lfd)
		if err != nil {
			panic(err)
		}
		c.Store32(va, uint32(fd))
		if _, err := c.Write(jobW[i%sc.Members], va, 4); err != nil {
			panic(err)
		}
	}
	for w := 0; w < sc.Members; w++ {
		c.Store32(va, shutdownJob)
		if _, err := c.Write(jobW[w], va, 4); err != nil {
			panic(err)
		}
	}
	for i := 0; i < sc.Members+sc.Clients; i++ {
		c.Wait()
	}
}

// pollWorker is one poll-driven serving member: wait for readiness on the
// job pipe plus every owned connection, batch-drain new descriptor numbers,
// and answer every readable connection with a non-blocking read and a
// 4-byte response.
func pollWorker(wc *kernel.Context, jobR int) {
	va := wc.StackBase()
	set := []kernel.PollFd{{Fd: jobR, Events: kernel.PollIn}}
	draining := false
	for {
		if draining && len(set) == 1 {
			wc.Close(jobR)
			return
		}
		if _, err := wc.Poll(set, -1); err != nil {
			panic(err)
		}
		live := set[:1] // slot 0 is always the job pipe
		for _, pf := range set[1:] {
			if pf.Revents == 0 {
				live = append(live, kernel.PollFd{Fd: pf.Fd, Events: kernel.PollIn})
				continue
			}
			// This member is the connection's only reader, so a PollIn edge
			// cannot be consumed by anyone else and a blocking read returns
			// immediately. (Flipping FdNonblock here would also work, but
			// every flag write on a PR_SFDS table re-dirties the whole
			// group's shadow sync — needless churn at 10k descriptors.)
			n, err := wc.Read(pf.Fd, va, 4)
			if err != nil || n != 4 {
				live = append(live, kernel.PollFd{Fd: pf.Fd, Events: kernel.PollIn})
				continue
			}
			// Echo the request id back: the 4-byte response.
			wc.Write(pf.Fd, va, 4)
			wc.Close(pf.Fd)
		}
		set = live
		if set[0].Revents != 0 && !draining {
			for {
				n, err := wc.Read(jobR, va+8, 4)
				if err != nil || n != 4 {
					break // EAGAIN: batch drained
				}
				v, _ := wc.Load32(va + 8)
				if v == shutdownJob {
					draining = true
					break
				}
				set = append(set, kernel.PollFd{Fd: int(v), Events: kernel.PollIn})
			}
		}
		set[0] = kernel.PollFd{Fd: jobR, Events: kernel.PollIn}
	}
}

// serveBlocking is the thread-per-connection server: every member loops
// accept → blocking read → respond. Nothing overlaps inside a member, so
// holding N connections open concurrently needs N members; with fewer,
// connections queue in the backlog and the tail latency shows it.
func serveBlocking(c *kernel.Context, lfd int, clock func() int64, lat [][]int64, sc ServeConfig) {
	quota := make([]int, sc.Members)
	for i := 0; i < sc.Conns; i++ {
		quota[i%sc.Members]++
	}
	for w := 0; w < sc.Members; w++ {
		c.Sproc("server", func(wc *kernel.Context, id int64) {
			va := wc.StackBase()
			for k := 0; k < quota[id]; k++ {
				fd, err := wc.NetAccept(lfd)
				if err != nil {
					panic(err)
				}
				n, err := wc.Read(fd, va, 4)
				if err != nil || n != 4 {
					panic(fmt.Sprintf("server: bad request (%d, %v)", n, err))
				}
				wc.Write(fd, va, 4)
				wc.Close(fd)
			}
		}, proc.PRSADDR|proc.PRSFDS, int64(w))
	}
	spawnClients(c, clock, lat, sc)
	for i := 0; i < sc.Members+sc.Clients; i++ {
		c.Wait()
	}
}
