package workload

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
)

// TestPrefork drives the prefork pool driver end to end: every connection
// answered, worker churn real (more creations than the steady pool), and
// the lazy-creation books balanced.
func TestPrefork(t *testing.T) {
	conns := 96
	if testing.Short() {
		conns = 48
	}
	m := Prefork(small(), PreforkConfig{Conns: conns, Workers: 4, Lifespan: 8})
	if m.P50 <= 0 || m.P99 < m.P50 {
		t.Errorf("latency distribution broken: p50=%d p99=%d", m.P50, m.P99)
	}
	if m.Creations <= m.Workers {
		t.Errorf("no pool churn: %d creations for a pool of %d", m.Creations, m.Workers)
	}
	if m.LazyDups == 0 {
		t.Error("worker creation never took the lazy duplication path")
	}
	if m.LazyDups != m.LazyBreaks+m.LazyDrops {
		t.Errorf("lazy conservation violated: dups=%d breaks=%d drops=%d",
			m.LazyDups, m.LazyBreaks, m.LazyDrops)
	}
	if m.SpawnReserved == 0 {
		t.Error("pool churn never took a spawn reservation")
	}
}

// TestPreforkCreationStormRace is the -race conservation check for O(1)
// member creation (DESIGN.md §16): several share-group members churn
// COW-imaged children concurrently — half touch their image (materializing
// the pending duplication and COW-breaking against the group's pages,
// racing the members' own stores), half exit untouched — every child
// carrying a batched spawn reservation. Once the storm drains, the books
// must balance exactly: every lazy clone materialized or dropped, every
// reserved frame returned to the group account, every frame freed.
func TestPreforkCreationStormRace(t *testing.T) {
	const (
		members = 4
		touched = 8 // image pages the master dirties and touchy kids re-break
	)
	kidsPer := 40
	if testing.Short() {
		kidsPer = 10
	}
	cfg := small()
	cfg.SpawnReserve = 8
	s := newSession(cfg)
	var acct *hw.FrameAcct
	s.Sys.Start("driver", func(c *kernel.Context) {
		for i := 0; i < touched; i++ {
			c.Store32(dataVA(i), uint32(i))
		}
		for mIdx := 0; mIdx < members; mIdx++ {
			c.Sproc("churner", func(cc *kernel.Context, arg int64) {
				for g := 0; g < kidsPer; g++ {
					if _, err := cc.Sproc("kid", func(kc *kernel.Context, kind int64) {
						if kind%2 == 0 {
							return // exit untouched: the O(1) drop path
						}
						for i := 0; i < touched; i++ {
							kc.Store32(dataVA(i), ^uint32(i)) // COW break in the clone
						}
					}, proc.PRSFDS, int64(g)); err != nil {
						panic(err)
					}
					// The member's own store races the kid's materialization:
					// the group page re-breaks against whatever aliases the
					// resolution just installed.
					cc.Store32(dataVA(int(arg)), uint32(g))
					if _, _, err := cc.Wait(); err != nil {
						panic(err)
					}
				}
			}, proc.PRSALL, int64(mIdx))
		}
		acct = kernel.GroupOf(c.P).FrameAcct()
		for mIdx := 0; mIdx < members; mIdx++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
		// Quiet tail: with no member storing any more, a no-op child's
		// clones are guaranteed to exit untouched — the deterministic check
		// that the O(1) drop path exists at the kernel level too.
		for g := 0; g < members; g++ {
			if _, err := c.Sproc("idlekid", func(*kernel.Context, int64) {}, proc.PRSFDS, 0); err != nil {
				panic(err)
			}
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
		}
	})
	s.Sys.WaitIdle()

	st := s.Sys.Stats()
	if st.LazyDups == 0 {
		t.Fatal("storm never created a lazy clone")
	}
	if st.LazyDups != st.LazyBreaks+st.LazyDrops {
		t.Errorf("lazy conservation violated: dups=%d breaks=%d drops=%d",
			st.LazyDups, st.LazyBreaks, st.LazyDrops)
	}
	if st.LazyBreaks == 0 {
		t.Error("no clone was ever materialized by a touch")
	}
	if st.LazyDrops == 0 {
		t.Error("no clone ever exited untouched (quiet-tail kids should drop)")
	}
	if st.SpawnReserved == 0 {
		t.Error("no kid ever took a spawn reservation")
	}
	if used := acct.Used(); used != 0 {
		t.Errorf("group account leaked: %d frames still charged after teardown (reservation not returned?)", used)
	}
	if mem := s.Sys.Machine.Mem; mem.InUse() != 0 {
		t.Errorf("frames leaked: %d still in use after full teardown", mem.InUse())
	}
}
