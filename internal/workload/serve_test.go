package workload

import (
	"testing"

	"repro/internal/kernel"
)

func serveCfg() kernel.Config {
	return kernel.Config{NCPU: 4, MemFrames: 16384, TimeSlice: 2000}
}

// TestServePollSmall pushes a modest connection load through a share group
// an order of magnitude smaller — the S7 shape at test scale.
func TestServePollSmall(t *testing.T) {
	m := Serve(serveCfg(), ServePoll, ServeConfig{Conns: 96, Members: 4, Clients: 3})
	if m.Ops != 96 {
		t.Fatalf("ops = %d, want 96", m.Ops)
	}
	if m.P50 <= 0 || m.P99 < m.P50 {
		t.Errorf("latency distribution p50=%d p99=%d", m.P50, m.P99)
	}
	if m.PollSleeps == 0 {
		t.Errorf("poll-driven run recorded no poll sleeps")
	}
	if m.Transitions == 0 || m.PollerWakes == 0 {
		t.Errorf("readiness counters empty: transitions=%d pollerWakes=%d",
			m.Transitions, m.PollerWakes)
	}
}

// TestServeBlockingSmall runs the thread-per-connection organization with
// one member per connection — the configuration the mode requires to hold
// all connections concurrently.
func TestServeBlockingSmall(t *testing.T) {
	m := Serve(serveCfg(), ServeBlocking, ServeConfig{Conns: 24, Members: 24, Clients: 3})
	if m.Ops != 24 {
		t.Fatalf("ops = %d, want 24", m.Ops)
	}
	if m.P50 <= 0 || m.P99 < m.P50 {
		t.Errorf("latency distribution p50=%d p99=%d", m.P50, m.P99)
	}
}

// TestServePollC10k is the S7 headline row: ten thousand concurrent
// connections through an 8-member share group. Kept out of -short runs.
func TestServePollC10k(t *testing.T) {
	if testing.Short() {
		t.Skip("C10k serve run in -short mode")
	}
	m := Serve(serveCfg(), ServePoll, ServeConfig{Conns: 10000, Members: 8, Clients: 4})
	if m.Ops != 10000 {
		t.Fatalf("ops = %d, want 10000", m.Ops)
	}
	if m.P99 == 0 {
		t.Errorf("no latency tail recorded")
	}
}
