package workload

import (
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/uspin"
)

// SyscallNull measures the null-system-call (getpid) cost for E3: a plain
// process on a share-group kernel (group=false) against a clean share
// group member (group=true). The paper's design goal 4 demands the plain
// process pay nothing, and the member's fast path is a single flag test.
func SyscallNull(cfg kernel.Config, group bool, n int) Metrics {
	return runMeasured(cfg, int64(n), func(c *kernel.Context, s *session) {
		if group {
			c.Sproc("bystander", func(cc *kernel.Context, _ int64) {}, proc.PRSALL, 0)
			c.Wait()
		}
		s.start()
		for i := 0; i < n; i++ {
			c.Getpid()
		}
		s.stop()
	})
}

// SyscallOpenClose measures an open+close pair for E3/E8. With storm set,
// a sibling member performs its own open+close between each of the
// measured pairs — in lockstep, so the driver deterministically pays the
// dirty-descriptor synchronization path on every entry.
func SyscallOpenClose(cfg kernel.Config, group, storm bool, n int) Metrics {
	return runMeasured(cfg, int64(n), func(c *kernel.Context, s *session) {
		c.Creat("/victim", 0o644)
		turn := uspin.Word{VA: dataBase}
		turn.Store(c, 0)
		stormers := 0
		if group {
			c.Sproc("bystander", func(cc *kernel.Context, _ int64) {}, proc.PRSALL, 0)
			c.Wait()
			if storm {
				stormers = 1
				c.Sproc("stormer", func(cc *kernel.Context, _ int64) {
					for i := 0; i < n; i++ {
						want := uint32(2*i + 1)
						if err := turn.AwaitEq(cc, want); err != nil {
							return
						}
						fd, err := cc.Open("/victim", fs.ORead, 0)
						if err == nil {
							cc.Close(fd)
						}
						turn.Store(cc, want+1)
					}
				}, proc.PRSALL, 0)
			}
		}
		s.start()
		for i := 0; i < n; i++ {
			if storm {
				// Let the sibling dirty the table first.
				turn.Store(c, uint32(2*i+1))
				if err := turn.AwaitEq(c, uint32(2*i+2)); err != nil {
					panic(err)
				}
			}
			fd, err := c.Open("/victim", fs.ORead, 0)
			if err != nil {
				panic(err)
			}
			c.Close(fd)
		}
		s.stop()
		for j := 0; j < stormers; j++ {
			c.Wait()
		}
	})
}

// SyscallMix drives a representative syscall mix (getpid, open, lseek,
// write, close) and reports, alongside the usual machine metrics, the
// per-syscall count and in-kernel latency deltas from the gateway's own
// accounting — the source of benchtab's S2 table and of the E3
// re-measurement. With group set the driver runs as a clean share-group
// member, so the latency includes the single-test sync check of §6.3.
func SyscallMix(cfg kernel.Config, group bool, n int) (Metrics, []kernel.SyscallStat) {
	var stats []kernel.SyscallStat
	m := runMeasured(cfg, int64(n), func(c *kernel.Context, s *session) {
		if group {
			c.Sproc("bystander", func(cc *kernel.Context, _ int64) {}, proc.PRSALL, 0)
			c.Wait()
		}
		c.Creat("/victim", 0o644)
		before := s.Sys.Stats().Syscalls
		s.start()
		for i := 0; i < n; i++ {
			c.Getpid()
			fd, err := c.Open("/victim", fs.ORead|fs.OWrite, 0)
			if err != nil {
				panic(err)
			}
			c.Lseek(fd, 0, fs.SeekSet)
			if _, err := c.Write(fd, dataBase, 64); err != nil {
				panic(err)
			}
			c.Close(fd)
		}
		s.stop()
		stats = diffSyscalls(before, s.Sys.Stats().Syscalls)
	})
	return m, stats
}

// diffSyscalls subtracts an earlier Stats().Syscalls snapshot from a later
// one, keeping entries whose count moved.
func diffSyscalls(before, after []kernel.SyscallStat) []kernel.SyscallStat {
	base := map[kernel.Sysno]kernel.SyscallStat{}
	for _, st := range before {
		base[st.Num] = st
	}
	var out []kernel.SyscallStat
	for _, st := range after {
		b := base[st.Num]
		st.Count -= b.Count
		st.SimCyc -= b.SimCyc
		if st.Count > 0 {
			out = append(out, st)
		}
	}
	return out
}

// AttrSync measures E8's full propagate-and-reconcile round: the driver
// publishes a new umask, then waits until every member has entered the
// kernel, synchronized, and acknowledged seeing the new value. Lockstep
// generations make the count of entry synchronizations deterministic:
// members * n.
func AttrSync(cfg kernel.Config, members, n int) Metrics {
	var syncs, updater int64
	m := runMeasured(cfg, int64(n), func(c *kernel.Context, s *session) {
		gen := uspin.Word{VA: dataBase}     // generation word the driver advances
		ack := uspin.Word{VA: dataBase + 4} // members increment after syncing
		gen.Store(c, 0)
		ack.Store(c, 0)
		for i := 0; i < members; i++ {
			c.Sproc("enterer", func(cc *kernel.Context, _ int64) {
				for g := 1; g <= n; g++ {
					if _, err := gen.AwaitMin(cc, uint32(g)); err != nil {
						return
					}
					cc.Getpid() // kernel entry: the single-test sync point
					cc.P.Mu.Lock()
					got := cc.P.Umask
					cc.P.Mu.Unlock()
					if got != uint16(g&0o777) {
						panic("attr sync: member missed umask update")
					}
					ack.Add(cc, 1)
				}
			}, proc.PRSALL, 0)
		}
		u0 := c.P.Cycles.Load()
		s.start()
		for g := 1; g <= n; g++ {
			// The updater's own critical path is the umask call; the
			// spin-wait that follows is measurement scaffolding, so it
			// is excluded from the updater-cycles metric.
			c.Umask(uint16(g & 0o777))
			updater += c.P.Cycles.Load() - u0
			gen.Store(c, uint32(g))
			if _, err := ack.AwaitMin(c, uint32(g*members)); err != nil {
				panic(err)
			}
			u0 = c.P.Cycles.Load()
		}
		s.stop()
		if sa := kernel.GroupOf(c.P); sa != nil {
			syncs = sa.Syncs.Load()
		}
		for i := 0; i < members; i++ {
			c.Wait()
		}
	})
	m.Syncs = syncs
	m.Updater = updater
	return m
}
