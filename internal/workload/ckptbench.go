package workload

// The S10 driver: measures what iterative pre-copy buys. A share group of
// dirtiers re-writes its working set at a geometrically decaying rate —
// hot at first, trailing off — while the driver takes one checkpoint with
// a varying number of pre-copy passes. With zero passes the whole resident
// set is copied inside the stop-the-world window; each added pass moves
// the earlier (larger) share of the copying into live execution and leaves
// only the still-cooling tail for the window, so the final STW delta
// shrinks as passes grow and converges to zero once the passes outlast the
// churn.

import (
	"errors"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
)

// ckptEpochCrossings paces the dirtiers: each churn epoch ends with this
// many idle kernel crossings (~100 cycles each), and the checkpoint's
// PassGap is matched to it so one pre-copy pass faces roughly one epoch's
// worth of re-dirtying.
const ckptEpochCrossings = 512

// CkptPrecopy boots cfg, runs members dirtiers over pagesEach pages each,
// and checkpoints the group once with the given pre-copy pass budget while
// the churn decays. Returns the checkpoint's cost report.
func CkptPrecopy(cfg kernel.Config, members, pagesEach, passes int) (kernel.CkptInfo, error) {
	sys := kernel.NewSystem(cfg)
	var out kernel.CkptInfo
	var outErr error
	sys.Start("ckpt-bench", func(c *kernel.Context) {
		va, err := c.Mmap(members * pagesEach)
		if err != nil {
			outErr = err
			return
		}
		// Last word of each member's first page doubles as its ready flag.
		ready := func(m int) hw.VAddr {
			return va + hw.VAddr(m*pagesEach*hw.PageSize+hw.PageSize-4)
		}
		var pids []int
		for i := 0; i < members; i++ {
			pid, err := c.Sproc("dirtier", func(cc *kernel.Context, arg int64) {
				base := va + hw.VAddr(int(arg)*pagesEach*hw.PageSize)
				// Establish the full resident set, then signal readiness
				// so the measured checkpoint starts against a stable
				// pass-0 copy size.
				for pg := 0; pg < pagesEach; pg++ {
					cc.Store32(base+hw.VAddr(pg*hw.PageSize), uint32(arg)<<16|uint32(pg))
				}
				cc.Store32(ready(int(arg)), 1)
				// Decaying churn: every epoch lasts about the same
				// simulated time, but each halves the number of pages
				// re-dirtied and doubles the idle spacing between
				// stores, so the dirtying rate cools exponentially
				// while staying spread across the epoch (bursts would
				// make the final delta depend on phase luck, not on the
				// pass count).
				pace := 8
				for batch := pagesEach; batch > 0; batch /= 2 {
					for pg := 0; pg < batch; pg++ {
						cc.Store32(base+hw.VAddr(pg*hw.PageSize+4), uint32(batch)<<8|uint32(pg))
						for k := 0; k < pace; k++ {
							cc.Getpid()
						}
					}
					pace *= 2
				}
				cc.Blockproc(0)
			}, proc.PRSALL, int64(i))
			if err != nil {
				outErr = err
				return
			}
			pids = append(pids, pid)
		}
		for i := 0; i < members; i++ {
			for {
				if v, _ := c.Load32(ready(i)); v == 1 {
					break
				}
				c.Getpid()
			}
		}
		img, info, err := c.Ckpt(kernel.CkptOpts{
			Passes:  passes,
			PassGap: ckptEpochCrossings * 100, // ≈ one churn epoch per pass
		})
		if err != nil {
			outErr = err
		} else if err := img.Validate(); err != nil {
			outErr = err
		}
		out = info
		for _, pid := range pids {
			for {
				err := c.Unblockproc(pid)
				if err == nil || !errors.Is(err, kernel.ErrInterrupt) {
					break
				}
			}
		}
		for {
			if _, _, err := c.Wait(); err != nil && errors.Is(err, kernel.ErrNoChildren) {
				break
			}
		}
	})
	sys.WaitIdle()
	return out, outErr
}
