package workload

import (
	"testing"
)

// TestChaosCkptSoak runs the checkpoint soak with the fault plan armed:
// live pre-copy checkpoints under churn, restore round trips into fresh
// systems, and pre-copy-vs-stop-world differentials, all while the plan
// injects pass-boundary delays, aborted checkpoints, and restore ENOMEMs.
func TestChaosCkptSoak(t *testing.T) {
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for _, seed := range []uint64{1, 0xc4p7} {
		cfg := DefaultConfig()
		cfg.FaultSeed = seed
		cfg.FaultRate = 120
		res := CkptSoak(cfg, 4, rounds)
		t.Logf("seed %#x: %v", seed, res)
		if res.Images == 0 {
			t.Errorf("seed %#x: no checkpoint survived the fault plan", seed)
		}
		if res.L1 == 0 || res.L3 == 0 {
			t.Errorf("seed %#x: validation layers starved: l1=%d l3=%d", seed, res.L1, res.L3)
		}
		for _, v := range res.Violations {
			t.Errorf("seed %#x: %s", seed, v)
		}
	}
}

// The soak must also hold with injection off — a clean run exercises the
// same layers without the abort/retry noise, so every round validates.
func TestChaosCkptSoakClean(t *testing.T) {
	res := CkptSoak(DefaultConfig(), 3, 4)
	t.Logf("clean: %v", res)
	if res.Aborted != 0 {
		t.Errorf("aborts without a fault plan: %d", res.Aborted)
	}
	if res.Images == 0 || res.L1 == 0 || res.L2 == 0 || res.L3 == 0 {
		t.Errorf("layers starved: %v", res)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
}
