package workload

// The checkpoint soak: a chaos variant that exercises live
// checkpoint/restore under fault injection and validates every image three
// ways, in the layered style livecore uses — each layer catches a class of
// bug the previous one cannot see.
//
//	L1 (structural): every image taken while members churn must satisfy
//	    the format's own invariants (ordering, extents, sizes) and decode
//	    back to an equal image. Catches serialization bugs.
//	L2 (round trip): restore an image into a brand-new system, checkpoint
//	    the restored group before it runs, and diff the two images with
//	    PIDs masked. Catches restore bugs: a page written to the wrong
//	    place, a lost attribute, a ghost region from the adoptive caller.
//	L3 (differential): at a quiesced point, an iterative pre-copy
//	    checkpoint and a naive stop-everything snapshot must produce the
//	    same image. Catches pre-copy bugs: a racing store that slipped
//	    between a dirty-bitmap harvest and its TLB shootdown.
//
// The soak runs with the fault plan armed, so pass-boundary delays and
// aborted checkpoints (EAGAIN), injected restore ENOMEMs, and all the
// usual chaos interference happen while the layers are checking.

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
)

// CkptSoakResult reports one checkpoint soak run.
type CkptSoakResult struct {
	Rounds         int64    // churn rounds completed
	Images         int64    // checkpoints that produced an image
	Aborted        int64    // checkpoint/restore attempts the fault plan aborted
	L1, L2, L3     int64    // validation-layer checks performed
	PrePages       int64    // pages copied live across all checkpoints
	STWPages       int64    // pages copied stopped across all checkpoints
	FaultsInjected int64    // faults the plan injected
	Violations     []string // failed checks (empty = pass)
}

// Ok reports whether every validation layer held.
func (r CkptSoakResult) Ok() bool { return len(r.Violations) == 0 }

func (r CkptSoakResult) String() string {
	return fmt.Sprintf("rounds=%d images=%d aborted=%d l1=%d l2=%d l3=%d pre=%d stw=%d injected=%d violations=%d",
		r.Rounds, r.Images, r.Aborted, r.L1, r.L2, r.L3, r.PrePages, r.STWPages, r.FaultsInjected, len(r.Violations))
}

// ckptSoakFile is the path-backed descriptor the group keeps open across
// checkpoints, so fd capture and reacquire-by-path are part of every L2
// round trip. (Anonymous stream fds are deliberately absent: they restore
// as empty slots, which the strict diff would flag.)
const ckptSoakFile = "/ckpt-soak.dat"

// CkptSoak boots cfg (normally with a fault seed/rate armed), runs a
// share group of members through rounds of churn-then-quiesce, and at
// each round takes live and stopped checkpoints and pushes them through
// the three validation layers.
func CkptSoak(cfg kernel.Config, members, rounds int) CkptSoakResult {
	sys := kernel.NewSystem(cfg)
	var res CkptSoakResult
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// Checkpoint with tolerance for the fault plan: the gateway already
	// retries EAGAIN with backoff; a still-failing call counts as an
	// aborted attempt, not a violation.
	tryCkpt := func(c *kernel.Context, passes int) (*ckpt.Image, kernel.CkptInfo) {
		img, info, err := c.Ckpt(kernel.CkptOpts{Passes: passes})
		if err != nil {
			if kernel.ErrnoOf(err) == kernel.EAGAIN {
				res.Aborted++
				return nil, info
			}
			violate("ckpt(passes=%d): %v", passes, err)
			return nil, info
		}
		res.Images++
		res.PrePages += int64(info.PrePages)
		res.STWPages += int64(info.STWPages)
		return img, info
	}

	sys.Start("ckpt-soak", func(c *kernel.Context) {
		// Setup runs under the same armed plan as the soak proper, so
		// every call here retries through injected transient failures.
		var va hw.VAddr
		var fd int
		if !persist(func() error { v, err := c.Mmap(members); va = v; return err }) {
			violate("mmap never succeeded under the fault plan")
			return
		}
		if !persist(func() error {
			f, err := c.Open(ckptSoakFile, fs.ORead|fs.OWrite|fs.OCreat, 0o644)
			fd = f
			return err
		}) {
			violate("open never succeeded under the fault plan")
			return
		}
		persist(func() error { _, err := c.WriteString(fd, va, "soak state"); return err })
		var pids []int
		for i := 0; i < members; i++ {
			var pid int
			ok := persist(func() error {
				id, err := c.Sproc("churner", func(cc *kernel.Context, arg int64) {
					base := va + hw.VAddr(int(arg)*hw.PageSize)
					for r := 0; r < rounds; r++ {
						for w := 0; w < 16; w++ {
							v := uint32(arg)<<24 | uint32(r)<<12 | uint32(w)
							cc.Store32(base+hw.VAddr(w*4), v*2654435761)
						}
						// Quiesce point: the initiator banks one unblock per
						// round, injected EINTR notwithstanding.
						for {
							err := cc.Blockproc(0)
							if err == nil || !errors.Is(err, kernel.ErrInterrupt) {
								break
							}
						}
					}
				}, proc.PRSALL, int64(i))
				pid = id
				return err
			})
			if !ok {
				violate("sproc %d never succeeded under the fault plan", i)
				return
			}
			pids = append(pids, pid)
		}

		for r := 0; r < rounds; r++ {
			// Members are churning (or already parked at this round's
			// quiesce point) — take a live pre-copy checkpoint and run L1.
			if img, _ := tryCkpt(c, 1+r%3); img != nil {
				res.L1++
				if err := img.Validate(); err != nil {
					violate("round %d L1: %v", r, err)
				}
				re, err := ckpt.Decode(img.Encode())
				if err != nil {
					violate("round %d L1 decode: %v", r, err)
				} else if d := ckpt.Diff(img, re, ckpt.DiffOpts{}); len(d) != 0 {
					violate("round %d L1 decode diff: %v", r, d[0])
				}
			}

			// Wait for every member to park, then run the stopped-world
			// layers at a state no store can be racing.
			for _, pid := range pids {
				for {
					p, ok := sys.Lookup(pid)
					if !ok || p.State() == proc.SSleep || p.State() == proc.SZomb {
						break
					}
					c.Getpid()
				}
			}
			imgPre, _ := tryCkpt(c, 4)
			imgStop, _ := tryCkpt(c, 0)
			if imgPre != nil && imgStop != nil {
				res.L3++
				if d := ckpt.Diff(imgPre, imgStop, ckpt.DiffOpts{}); len(d) != 0 {
					violate("round %d L3: pre-copy vs stop-world: %v", r, d[0])
				}
			}
			if imgPre != nil && r%2 == 0 {
				res.L2++
				if msg := ckptRoundTrip(cfg, imgPre); msg != "" {
					if msg == "aborted" {
						res.Aborted++
						res.L2--
					} else {
						violate("round %d L2: %s", r, msg)
					}
				}
			}
			for _, pid := range pids {
				for {
					err := c.Unblockproc(pid)
					if err == nil || !errors.Is(err, kernel.ErrInterrupt) {
						break
					}
				}
			}
			res.Rounds++
		}
		c.Close(fd)
		for {
			if _, _, err := c.Wait(); err != nil && errors.Is(err, kernel.ErrNoChildren) {
				break
			}
		}
	})
	sys.WaitIdle()

	st := sys.Stats()
	res.FaultsInjected = st.FaultsInjected
	if st.FramesInUse != 0 {
		violate("frames leaked: FramesInUse=%d after idle", st.FramesInUse)
	}
	if n := sys.NProcs(); n != 0 {
		violate("processes leaked: NProcs=%d after idle", n)
	}
	if st.Ckpts != res.Images {
		violate("stats count %d ckpts, soak took %d", st.Ckpts, res.Images)
	}
	return res
}

// ckptRoundTrip is validation layer two: rebuild the image's group in a
// pristine system (same config, so the fault plan stays armed), checkpoint
// the restored group before any member runs its body, and demand the
// re-checkpoint match the original up to PIDs. Returns "" on success,
// "aborted" when the fault plan killed the restore or the re-checkpoint,
// and a violation message otherwise.
func ckptRoundTrip(cfg kernel.Config, orig *ckpt.Image) string {
	sys := kernel.NewSystem(cfg)
	var msg string
	sys.Start("adoptive", func(c *kernel.Context) {
		// The image's descriptor table is reacquired by path; the
		// pristine system needs the file to exist (restore never creates).
		if fd, err := c.Open(ckptSoakFile, fs.OWrite|fs.OCreat, 0o644); err == nil {
			c.Close(fd)
		}
		_, err := c.Restore(orig, func(cc *kernel.Context, _ int64) {
			for {
				err := cc.Blockproc(0)
				if err == nil || !errors.Is(err, kernel.ErrInterrupt) {
					return
				}
			}
		})
		if err != nil {
			if kernel.ErrnoOf(err) == kernel.ENOMEM || kernel.ErrnoOf(err) == kernel.EAGAIN {
				msg = "aborted"
			} else {
				msg = fmt.Sprintf("restore: %v", err)
			}
			for {
				if _, _, werr := c.Wait(); werr != nil && errors.Is(werr, kernel.ErrNoChildren) {
					break
				}
			}
			return
		}
		re, _, err := c.Ckpt(kernel.CkptOpts{Passes: 1})
		switch {
		case err != nil && kernel.ErrnoOf(err) == kernel.EAGAIN:
			msg = "aborted"
		case err != nil:
			msg = fmt.Sprintf("re-checkpoint: %v", err)
		default:
			if d := ckpt.Diff(orig, re, ckpt.DiffOpts{IgnorePIDs: true}); len(d) != 0 {
				msg = fmt.Sprintf("restored group diverges: %v", d[0])
			} else if bytes.Equal(orig.Encode(), re.Encode()) != (len(d) == 0 && samePids(orig, re)) {
				// Encode equality must agree with Diff+PID equality —
				// a self-check on the validators themselves.
				msg = "diff and encode disagree"
			}
		}
		for _, m := range memberPids(c) {
			c.Unblockproc(m)
		}
		for {
			if _, _, werr := c.Wait(); werr != nil && errors.Is(werr, kernel.ErrNoChildren) {
				break
			}
		}
	})
	sys.WaitIdle()
	return msg
}

// persist retries op through injected transient failures (EINTR, EAGAIN,
// ENOMEM) so an armed fault plan cannot starve the soak's setup; false
// when the plan never let the call through.
func persist(op func() error) bool {
	for i := 0; i < 64; i++ {
		err := op()
		if err == nil {
			return true
		}
		switch kernel.ErrnoOf(err) {
		case kernel.EINTR, kernel.EAGAIN, kernel.ENOMEM:
			continue
		default:
			return false
		}
	}
	return false
}

// samePids reports whether two images list identical member PIDs.
func samePids(a, b *ckpt.Image) bool {
	if len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i].PID != b.Members[i].PID {
			return false
		}
	}
	return true
}

// memberPids lists the caller's group co-members, for waking parked
// restored children.
func memberPids(c *kernel.Context) []int {
	sa := kernel.GroupOf(c.P)
	if sa == nil {
		return nil
	}
	var out []int
	self := c.Getpid()
	for _, m := range sa.Members() {
		if m.PID != self {
			out = append(out, m.PID)
		}
	}
	return out
}
