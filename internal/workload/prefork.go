package workload

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/proc"
)

// PreforkConfig sizes one prefork serving run (E1c).
type PreforkConfig struct {
	Conns    int // client connections to push through in total
	Workers  int // pool size the master maintains (default 4)
	Lifespan int // requests a worker serves before exiting (default 8)
	Clients  int // client processes multiplexing the connections (default 4)
	Pages    int // data pages the master dirties before spawning (default 64)
}

// PreforkMetrics reports one prefork run: the machine-level Metrics, the
// request→response latency distribution, and the lazy-creation counters
// the pool churn exercises (DESIGN.md §16).
type PreforkMetrics struct {
	Metrics
	Conns     int
	Workers   int
	Lifespan  int
	Creations int   // worker processes created over the run
	P50       int64 // median request→response latency, simcyc
	P99       int64 // 99th-percentile latency, simcyc

	LazyDups      int64 // O(1) region clones created at spawn
	LazyBreaks    int64 // clones materialized by a first touch
	LazyDrops     int64 // clones that exited untouched
	SpawnReserved int64 // frames prepaid to workers at spawn
}

// String renders the prefork metrics compactly.
func (m PreforkMetrics) String() string {
	return fmt.Sprintf("conns=%d workers=%d lifespan=%d creations=%d p50=%d p99=%d lazydups=%d breaks=%d drops=%d %s",
		m.Conns, m.Workers, m.Lifespan, m.Creations, m.P50, m.P99,
		m.LazyDups, m.LazyBreaks, m.LazyDrops, m.Metrics.String())
}

// Prefork runs the process-pool serving workload: a master listens, then
// keeps pc.Workers COW-imaged children alive, each blocking-accepting on
// the listener inherited through the shared descriptor table and exiting
// after pc.Lifespan requests; the master reaps and re-creates workers
// until pc.Conns connections have been answered. It is the classic
// prefork/max-requests-per-child server organization, and the creation
// churn is the point: every worker generation is one lazy image
// duplication (most regions never touched before exit — LazyDrops), and
// every reap returns a spawn reservation. Latency is measured exactly as
// in Serve, so prefork rows compare directly against the poll and
// blocking organizations.
func Prefork(cfg kernel.Config, pc PreforkConfig) PreforkMetrics {
	if pc.Workers <= 0 {
		pc.Workers = 4
	}
	if pc.Lifespan <= 0 {
		pc.Lifespan = 8
	}
	if pc.Clients <= 0 {
		pc.Clients = 4
	}
	if pc.Clients > pc.Conns {
		pc.Clients = pc.Conns
	}
	if pc.Pages <= 0 {
		pc.Pages = 64
	}
	if cfg.DataPages == 0 {
		cfg.DataPages = 64 // mirror the system default so the clamp below holds
	}
	if pc.Pages > cfg.DataPages {
		pc.Pages = cfg.DataPages
	}
	// The pool churn is what this driver measures, so the batched spawn
	// reservation is on unless the caller chose a size.
	if cfg.SpawnReserve == 0 {
		cfg.SpawnReserve = 8
	}
	if cfg.MaxFiles < pc.Conns+pc.Workers+16 {
		cfg.MaxFiles = pc.Conns + pc.Workers + 16
	}
	if cfg.MaxProcs < pc.Workers+pc.Clients+8 {
		cfg.MaxProcs = pc.Workers + pc.Clients + 8
	}
	s := newSession(cfg)
	clock := s.Sys.Machine.TotalCycles
	sc := ServeConfig{Conns: pc.Conns, Members: pc.Workers, Clients: pc.Clients}
	lat := make([][]int64, sc.Clients)

	// Worker generations: each serves exactly Lifespan accepts (the last
	// one the remainder), so the quotas sum to Conns and every accept is
	// matched by a connection.
	gens := (pc.Conns + pc.Lifespan - 1) / pc.Lifespan
	quota := make([]int, gens)
	left := pc.Conns
	for g := range quota {
		quota[g] = pc.Lifespan
		if left < pc.Lifespan {
			quota[g] = left
		}
		left -= quota[g]
	}

	s.start()
	s.Sys.Start("prefork-master", func(c *kernel.Context) {
		// Dirty the master's data image so every worker generation clones a
		// real, resident region set — the cost lazy duplication defers.
		for i := 0; i < pc.Pages; i++ {
			c.Store32(dataVA(i), uint32(i))
		}
		lfd, err := c.NetListen("serve")
		if err != nil {
			panic(err)
		}
		// Workers are sproc'd with a shared descriptor table but a private
		// COW image (no PR_SADDR): the listener is inherited the way a real
		// prefork server inherits it, while the image duplication goes down
		// the lazy path this PR adds. A worker touches only its stack, so
		// its data and text clones exit unmaterialized.
		spawn := func(g int) {
			if _, err := c.Sproc("worker", func(wc *kernel.Context, id int64) {
				va := wc.StackBase()
				for k := 0; k < quota[id]; k++ {
					fd, err := wc.NetAccept(lfd)
					if err != nil {
						panic(err)
					}
					n, err := wc.Read(fd, va, 4)
					if err != nil || n != 4 {
						panic(fmt.Sprintf("worker: bad request (%d, %v)", n, err))
					}
					wc.Write(fd, va, 4)
					wc.Close(fd)
				}
			}, proc.PRSFDS, int64(g)); err != nil {
				panic(fmt.Sprintf("prefork: spawn worker %d: %v", g, err))
			}
		}
		next := 0
		for ; next < pc.Workers && next < gens; next++ {
			spawn(next)
		}
		spawnClients(c, clock, lat, sc)

		// Reap loop: every exiting child (worker or client) is one Wait;
		// each reaped worker slot is refilled until the generations run out.
		for reaped := 0; reaped < gens+sc.Clients; reaped++ {
			if _, _, err := c.Wait(); err != nil {
				panic(err)
			}
			if next < gens {
				spawn(next)
				next++
			}
		}
		c.Close(lfd)
	})
	s.Sys.WaitIdle()
	s.stop()

	m := PreforkMetrics{
		Metrics:   s.metrics(int64(pc.Conns)),
		Conns:     pc.Conns,
		Workers:   pc.Workers,
		Lifespan:  pc.Lifespan,
		Creations: gens,
	}
	var all []int64
	for _, shard := range lat {
		all = append(all, shard...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		m.P50 = all[len(all)/2]
		m.P99 = all[len(all)*99/100]
	}
	st := s.Sys.Stats()
	m.LazyDups = st.LazyDups
	m.LazyBreaks = st.LazyBreaks
	m.LazyDrops = st.LazyDrops
	m.SpawnReserved = st.SpawnReserved
	return m
}
