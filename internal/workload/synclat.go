package workload

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/uspin"
)

// SyncMech selects a synchronization mechanism for the E6 latency
// comparison.
type SyncMech string

const (
	SyncSpin   SyncMech = "spinlock" // busy-wait on shared memory (§3's winner)
	SyncSemop  SyncMech = "semop"    // System V semaphores (kernel interaction)
	SyncPipe   SyncMech = "pipe"     // 1-byte pipe round trip
	SyncSignal SyncMech = "signal"   // kill(2) + handler round trip
)

// SyncLatency ping-pongs between two processes for rounds rounds through
// the chosen mechanism, reporting cycles per round trip.
func SyncLatency(cfg kernel.Config, mech SyncMech, rounds int) Metrics {
	return runMeasured(cfg, int64(rounds), func(c *kernel.Context, s *session) {
		switch mech {
		case SyncSpin:
			latSpin(c, s, rounds)
		case SyncSemop:
			latSemop(c, s, rounds)
		case SyncPipe:
			latPipe(c, s, rounds)
		case SyncSignal:
			latSignal(c, s, rounds)
		default:
			panic(fmt.Sprintf("workload: unknown sync mech %q", mech))
		}
	})
}

// latSpin ping-pongs a shared word: each side waits for its parity.
func latSpin(c *kernel.Context, s *session, rounds int) {
	ball := uspin.Word{VA: dataBase}
	ball.Store(c, 0)
	c.Sproc("ponger", func(cc *kernel.Context, _ int64) {
		for i := 0; i < rounds; i++ {
			want := uint32(2*i + 1)
			if err := ball.AwaitEq(cc, want); err != nil {
				return
			}
			ball.Store(cc, want+1)
		}
	}, proc.PRSALL, 0)
	s.start()
	for i := 0; i < rounds; i++ {
		ball.Store(c, uint32(2*i+1))
		if err := ball.AwaitEq(c, uint32(2*i+2)); err != nil {
			panic(err)
		}
	}
	s.stop()
	c.Wait()
}

func latSemop(c *kernel.Context, s *session, rounds int) {
	id := c.Semget(0, 2)
	c.Sproc("ponger", func(cc *kernel.Context, _ int64) {
		for i := 0; i < rounds; i++ {
			if err := cc.Semop(id, 0, -1); err != nil {
				return
			}
			cc.Semop(id, 1, 1)
		}
	}, proc.PRSALL, 0)
	s.start()
	for i := 0; i < rounds; i++ {
		c.Semop(id, 0, 1)
		if err := c.Semop(id, 1, -1); err != nil {
			panic(err)
		}
	}
	s.stop()
	c.Wait()
}

func latPipe(c *kernel.Context, s *session, rounds int) {
	r1, w1, err := c.Pipe()
	if err != nil {
		panic(err)
	}
	r2, w2, err := c.Pipe()
	if err != nil {
		panic(err)
	}
	c.Store32(dataBase, 0x2a)
	c.Fork("ponger", func(cc *kernel.Context) {
		for i := 0; i < rounds; i++ {
			if n, err := cc.Read(r1, dataBase+64, 1); err != nil || n == 0 {
				return
			}
			cc.Write(w2, dataBase+64, 1)
		}
	})
	s.start()
	for i := 0; i < rounds; i++ {
		if _, err := c.Write(w1, dataBase, 1); err != nil {
			panic(err)
		}
		if _, err := c.Read(r2, dataBase+128, 1); err != nil {
			panic(err)
		}
	}
	s.stop()
	c.Wait()
	_ = w2
	_ = r1
}

// latSignal round-trips SIGUSR1/SIGUSR2 between parent and child. Handler
// deliveries are counted host-side; the processes keep entering the kernel
// so deliveries happen promptly.
func latSignal(c *kernel.Context, s *session, rounds int) {
	var parentGot, childGot atomic.Int64
	var ready atomic.Bool
	parentPID := c.Getpid()
	childPID, _ := c.Fork("ponger", func(cc *kernel.Context) {
		cc.Signal(proc.SIGUSR1, func(int) {
			childGot.Add(1)
			cc.Kill(parentPID, proc.SIGUSR2)
		})
		ready.Store(true)
		for childGot.Load() < int64(rounds) {
			cc.Getpid()
			runtime.Gosched() // host politeness: keep the peer running
		}
	})
	c.Signal(proc.SIGUSR2, func(int) { parentGot.Add(1) })
	// The child must install its handler before the first shot, or the
	// default action would kill it.
	for !ready.Load() {
		c.Getpid()
		runtime.Gosched()
	}
	s.start()
	for i := 1; i <= rounds; i++ {
		c.Kill(childPID, proc.SIGUSR1)
		for parentGot.Load() < int64(i) {
			c.Getpid()
			runtime.Gosched()
		}
	}
	s.stop()
	c.Wait()
}
