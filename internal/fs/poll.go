package fs

import (
	"sync/atomic"

	"repro/internal/klock"
)

// Readiness bits, poll(2) style. A descriptor's readiness is level-
// triggered state, not an event: the mask reports what is true *now*, and
// a poller that saw a bit set must still be prepared to block again if the
// condition evaporates before it acts (another consumer got there first).
const (
	PollIn   uint16 = 0x01 // readable: data buffered, EOF, or a pending connection
	PollOut  uint16 = 0x04 // writable: buffer space available and a reader present
	PollErr  uint16 = 0x08 // error condition: write side of a readerless pipe (EPIPE)
	PollHup  uint16 = 0x10 // peer gone: all writers closed, listener shut down
	PollNval uint16 = 0x20 // the descriptor is not open
)

// Pollable is the waitable-descriptor abstraction: a stream whose
// readiness can be queried and waited on. Pipe ends, socket-pair
// endpoints, and listeners implement it; regular files do not need to
// (storage is always ready — poll(2) semantics).
//
// The protocol is level-triggered with edge notification: Ready reports
// the current mask, and every state transition that could turn a bit on
// (write makes readable, read makes writable, close makes EOF/EPIPE, a
// connection joins the backlog) notifies all registered waiters. A waiter
// re-checks Ready after every notification; a notification whose condition
// has already been consumed by someone else is a spurious wake the waiter
// must tolerate.
type Pollable interface {
	// Ready returns the current readiness mask.
	Ready() uint16
	// PollRegister subscribes w to readiness transitions on the stream.
	PollRegister(w *PollWaiter)
	// PollUnregister withdraws a subscription. Safe to call after the
	// stream closed, and for a waiter that was never registered.
	PollUnregister(w *PollWaiter)
}

// PollWaiter is one sleeping poller's registration on a set of pollable
// streams: the thread to poke plus a notification counter the readiness
// conservation tests audit.
type PollWaiter struct {
	T        klock.Thread
	Notified atomic.Int64 // transitions delivered to this waiter
}

// Notify delivers one readiness transition: deposit a level-triggered wake
// for the thread. Unblock never blocks (it coalesces into the thread's
// wake token), so a stream may notify from under its own mutex.
func (w *PollWaiter) Notify() {
	w.Notified.Add(1)
	w.T.Unblock()
}

// PollReady returns the descriptor's current readiness mask. Streams
// report their own state; regular files and directories are always ready
// for both directions (storage never blocks — classic poll(2) semantics).
func (f *File) PollReady() uint16 {
	if p, ok := f.Stream.(Pollable); ok {
		return p.Ready()
	}
	return PollIn | PollOut
}

// PollRegister subscribes w to the descriptor's readiness transitions. It
// reports false when the descriptor has no transitions to wait for (a
// regular file: always ready).
func (f *File) PollRegister(w *PollWaiter) bool {
	if p, ok := f.Stream.(Pollable); ok {
		p.PollRegister(w)
		return true
	}
	return false
}

// PollUnregister withdraws a PollRegister subscription.
func (f *File) PollUnregister(w *PollWaiter) {
	if p, ok := f.Stream.(Pollable); ok {
		p.PollUnregister(w)
	}
}
