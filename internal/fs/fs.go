package fs

import (
	"strings"
	"sync"
	"sync/atomic"
)

// FS is the filesystem: a root directory plus inode accounting.
type FS struct {
	mu         sync.Mutex
	root       *Inode
	nextIno    uint32
	liveInodes atomic.Int64
}

// New creates a filesystem with an empty root directory owned by root.
func New() *FS {
	f := &FS{}
	f.root = f.newInode(ModeDir|0o755, 0, 0)
	f.root.parent = f.root
	f.root.dir = map[string]*Inode{}
	atomic.StoreInt32(&f.root.Nlink, 2)
	f.root.Hold() // the filesystem itself keeps the root alive
	return f
}

// Root returns the filesystem root (unheld; callers Hold what they keep).
func (f *FS) Root() *Inode { return f.root }

// LiveInodes returns the number of inodes with storage (diagnostics).
func (f *FS) LiveInodes() int64 { return f.liveInodes.Load() }

func (f *FS) newInode(mode uint16, uid, gid uint16) *Inode {
	f.mu.Lock()
	f.nextIno++
	ino := f.nextIno
	f.mu.Unlock()
	f.liveInodes.Add(1)
	return &Inode{Ino: ino, Mode: mode, Uid: uid, Gid: gid, fs: f}
}

// Cred carries the identity and filter state path operations run under:
// the caller's uid/gid for permission checks, umask for creation, and the
// current and root directories for resolution. In a share group these are
// exactly the values that may live in the shared address block.
type Cred struct {
	Uid, Gid uint16
	Umask    uint16
	Cwd      *Inode // start for relative paths
	Root     *Inode // barrier for absolute paths and ".."
}

// resolve walks path from the cred's cwd (or root for absolute paths),
// returning the parent directory, the final component name, and the target
// inode (nil if the final component does not exist). With wantParent the
// caller intends to create/remove the final component.
func (f *FS) resolve(c Cred, path string) (parent *Inode, name string, target *Inode, err error) {
	cur := c.Cwd
	root := c.Root
	if root == nil {
		root = f.root
	}
	if cur == nil {
		cur = root
	}
	if strings.HasPrefix(path, "/") {
		cur = root
	}
	parts := make([]string, 0, 8)
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		// "/" or "." as a whole path.
		return cur, ".", cur, nil
	}
	for i, p := range parts {
		last := i == len(parts)-1
		if !cur.IsDir() {
			return nil, "", nil, ErrNotDir
		}
		if err := cur.Access(c.Uid, c.Gid, 1); err != nil {
			return nil, "", nil, err
		}
		var next *Inode
		switch p {
		case ".":
			next = cur
		case "..":
			if cur == root {
				next = cur // cannot escape the root (chroot barrier)
			} else {
				next = cur.parent
			}
		default:
			cur.mu.Lock()
			next = cur.dir[p]
			cur.mu.Unlock()
		}
		if last {
			return cur, p, next, nil
		}
		if next == nil {
			return nil, "", nil, ErrNotExist
		}
		cur = next
	}
	panic("unreachable")
}

// Lookup resolves path to its inode without holding a new reference.
func (f *FS) Lookup(c Cred, path string) (*Inode, error) {
	_, _, ip, err := f.resolve(c, path)
	if err != nil {
		return nil, err
	}
	if ip == nil {
		return nil, ErrNotExist
	}
	return ip, nil
}

// Create makes a regular file, or returns the existing one (open with
// O_CREAT semantics: creation is conditional, truncation is O_TRUNC's
// job). mode is masked by the cred's umask.
func (f *FS) Create(c Cred, path string, mode uint16) (*Inode, error) {
	parent, name, ip, err := f.resolve(c, path)
	if err != nil {
		return nil, err
	}
	if ip != nil {
		if ip.IsDir() {
			return nil, ErrIsDir
		}
		if err := ip.Access(c.Uid, c.Gid, 2); err != nil {
			return nil, err
		}
		return ip, nil
	}
	if err := parent.Access(c.Uid, c.Gid, 2); err != nil {
		return nil, err
	}
	ip = f.newInode(ModeFile|(mode&PermMask&^c.Umask), c.Uid, c.Gid)
	atomic.StoreInt32(&ip.Nlink, 1)
	parent.mu.Lock()
	parent.dir[name] = ip
	parent.mu.Unlock()
	return ip, nil
}

// Mkdir creates a directory, applying the umask.
func (f *FS) Mkdir(c Cred, path string, mode uint16) (*Inode, error) {
	parent, name, ip, err := f.resolve(c, path)
	if err != nil {
		return nil, err
	}
	if ip != nil {
		return nil, ErrExist
	}
	if err := parent.Access(c.Uid, c.Gid, 2); err != nil {
		return nil, err
	}
	ip = f.newInode(ModeDir|(mode&PermMask&^c.Umask), c.Uid, c.Gid)
	ip.dir = map[string]*Inode{}
	ip.parent = parent
	atomic.StoreInt32(&ip.Nlink, 2)
	parent.mu.Lock()
	parent.dir[name] = ip
	parent.mu.Unlock()
	atomic.AddInt32(&parent.Nlink, 1)
	return ip, nil
}

// Link creates a hard link newpath to the file at oldpath.
func (f *FS) Link(c Cred, oldpath, newpath string) error {
	src, err := f.Lookup(c, oldpath)
	if err != nil {
		return err
	}
	if src.IsDir() {
		return ErrIsDir
	}
	parent, name, ip, err := f.resolve(c, newpath)
	if err != nil {
		return err
	}
	if ip != nil {
		return ErrExist
	}
	if err := parent.Access(c.Uid, c.Gid, 2); err != nil {
		return err
	}
	parent.mu.Lock()
	parent.dir[name] = src
	parent.mu.Unlock()
	atomic.AddInt32(&src.Nlink, 1)
	return nil
}

// Unlink removes the directory entry at path. The inode's storage persists
// while in-core references remain (the classic "unlinked but open" case,
// and the share block's extra reference).
func (f *FS) Unlink(c Cred, path string) error {
	parent, name, ip, err := f.resolve(c, path)
	if err != nil {
		return err
	}
	if ip == nil {
		return ErrNotExist
	}
	if ip.IsDir() {
		ip.mu.Lock()
		n := len(ip.dir)
		ip.mu.Unlock()
		if n > 0 {
			return ErrNotEmpty
		}
	}
	if err := parent.Access(c.Uid, c.Gid, 2); err != nil {
		return err
	}
	parent.mu.Lock()
	delete(parent.dir, name)
	parent.mu.Unlock()
	if ip.IsDir() {
		atomic.AddInt32(&parent.Nlink, -1)
		atomic.AddInt32(&ip.Nlink, -2)
	} else {
		atomic.AddInt32(&ip.Nlink, -1)
	}
	if atomic.LoadInt32(&ip.Nlink) == 0 && ip.Ref() == 0 {
		ip.mu.Lock()
		ip.data = nil
		ip.dir = nil
		ip.mu.Unlock()
		f.liveInodes.Add(-1)
	}
	return nil
}

// Stat describes an inode.
type Stat struct {
	Ino   uint32
	Mode  uint16
	Uid   uint16
	Gid   uint16
	Nlink int32
	Size  int64
}

// StatPath stats the inode at path.
func (f *FS) StatPath(c Cred, path string) (Stat, error) {
	ip, err := f.Lookup(c, path)
	if err != nil {
		return Stat{}, err
	}
	return Stat{
		Ino: ip.Ino, Mode: ip.Mode, Uid: ip.Uid, Gid: ip.Gid,
		Nlink: atomic.LoadInt32(&ip.Nlink), Size: ip.Size(),
	}, nil
}

// MkInode creates a detached inode of the given mode (pipes, sockets).
func (f *FS) MkInode(mode uint16, uid, gid uint16) *Inode {
	return f.newInode(mode, uid, gid)
}
