package fs

import (
	"fmt"
	"testing"
	"testing/quick"
)

type nopThread struct{ ch chan struct{} }

func newNopThread() *nopThread      { return &nopThread{ch: make(chan struct{}, 1)} }
func (n *nopThread) Block(_ string) { <-n.ch }
func (n *nopThread) Unblock()       { n.ch <- struct{}{} }

func rootCred(f *FS) Cred {
	return Cred{Uid: 0, Gid: 0, Umask: 0o022, Cwd: f.Root(), Root: f.Root()}
}

const noLimit = int64(1) << 40

func TestCreateLookupReadWrite(t *testing.T) {
	f := New()
	c := rootCred(f)
	file, err := f.Open(c, "/hello.txt", ORead|OWrite|OCreat, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	th := newNopThread()
	if n, err := file.Write(th, []byte("hello, world"), noLimit, false); n != 12 || err != nil {
		t.Fatalf("Write = (%d,%v)", n, err)
	}
	if _, err := file.Seek(0, SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := file.Read(th, buf, false)
	if err != nil || string(buf[:n]) != "hello, world" {
		t.Fatalf("Read = (%q,%v)", buf[:n], err)
	}
	st, err := f.StatPath(c, "/hello.txt")
	if err != nil || st.Size != 12 || st.Mode&TypeMask != ModeFile {
		t.Fatalf("Stat = (%+v,%v)", st, err)
	}
	// umask 022 on 0666 -> 0644
	if st.Mode&PermMask != 0o644 {
		t.Fatalf("perm = %o, want 644", st.Mode&PermMask)
	}
	file.Release()
}

func TestMkdirTreeAndRelativePaths(t *testing.T) {
	f := New()
	c := rootCred(f)
	mustMkdir := func(p string) {
		if _, err := f.Mkdir(c, p, 0o755); err != nil {
			t.Fatalf("Mkdir %s: %v", p, err)
		}
	}
	mustMkdir("/usr")
	mustMkdir("/usr/src")
	mustMkdir("/usr/src/uts")
	if _, err := f.Mkdir(c, "/usr", 0o755); err != ErrExist {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	// Relative resolution from /usr/src.
	cwd, _ := f.Lookup(c, "/usr/src")
	rel := c
	rel.Cwd = cwd
	if _, err := f.Lookup(rel, "uts"); err != nil {
		t.Fatalf("relative lookup: %v", err)
	}
	if ip, err := f.Lookup(rel, "../src/uts/../../src"); err != nil || ip != cwd {
		t.Fatalf("dotdot lookup = (%v,%v)", ip, err)
	}
	if _, err := f.Lookup(rel, "nope/deeper"); err != ErrNotExist {
		t.Fatalf("missing intermediate: %v", err)
	}
}

func TestChrootBarrier(t *testing.T) {
	f := New()
	c := rootCred(f)
	f.Mkdir(c, "/jail", 0o755)
	f.Mkdir(c, "/jail/inside", 0o755)
	f.Create(c, "/secret", 0o644)
	jail, _ := f.Lookup(c, "/jail")
	jc := Cred{Uid: 1, Gid: 1, Cwd: jail, Root: jail}
	// ".." from the jail root stays in the jail.
	if _, err := f.Lookup(jc, "../secret"); err != ErrNotExist {
		t.Fatalf("escape via ..: %v", err)
	}
	// Absolute paths resolve relative to the jail.
	if _, err := f.Lookup(jc, "/inside"); err != nil {
		t.Fatalf("absolute within jail: %v", err)
	}
	if _, err := f.Lookup(jc, "/secret"); err != ErrNotExist {
		t.Fatalf("jail leaked host root: %v", err)
	}
}

func TestPermissions(t *testing.T) {
	f := New()
	root := rootCred(f)
	f.Mkdir(root, "/home", 0o755)
	alice := Cred{Uid: 100, Gid: 10, Umask: 0o022, Cwd: f.Root(), Root: f.Root()}
	// Alice cannot create in a root-owned 755 directory.
	if _, err := f.Create(alice, "/home/x", 0o644); err != ErrPerm {
		t.Fatalf("create in read-only dir: %v", err)
	}
	// Give alice a home directory she owns.
	dir, _ := f.Mkdir(root, "/home/alice", 0o700)
	dir.Uid, dir.Gid = 100, 10
	if _, err := f.Create(alice, "/home/alice/notes", 0o600); err != nil {
		t.Fatalf("create in own dir: %v", err)
	}
	// Bob (other) can't search alice's 700 directory.
	bob := Cred{Uid: 200, Gid: 20, Cwd: f.Root(), Root: f.Root()}
	if _, err := f.Lookup(bob, "/home/alice/notes"); err != ErrPerm {
		t.Fatalf("bob searched alice's dir: %v", err)
	}
	// Group access: file 640, same gid reads, other doesn't.
	fi, _ := f.Create(alice, "/home/alice/shared", 0o666)
	fi.Mode = ModeFile | 0o640
	carol := Cred{Uid: 300, Gid: 10, Cwd: f.Root(), Root: f.Root()}
	dir.Mode = ModeDir | 0o755 // open the directory for search
	if err := fi.Access(carol.Uid, carol.Gid, 4); err != nil {
		t.Fatalf("group read denied: %v", err)
	}
	if err := fi.Access(bob.Uid, bob.Gid, 4); err != ErrPerm {
		t.Fatalf("other read allowed: %v", err)
	}
}

func TestUnlinkOpenFileKeepsData(t *testing.T) {
	f := New()
	c := rootCred(f)
	file, _ := f.Open(c, "/tmpfile", ORead|OWrite|OCreat, 0o644)
	th := newNopThread()
	file.Write(th, []byte("still here"), noLimit, false)
	if err := f.Unlink(c, "/tmpfile"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lookup(c, "/tmpfile"); err != ErrNotExist {
		t.Fatal("unlinked file still visible")
	}
	file.Seek(0, SeekSet)
	buf := make([]byte, 16)
	n, _ := file.Read(th, buf, false)
	if string(buf[:n]) != "still here" {
		t.Fatalf("open unlinked file lost data: %q", buf[:n])
	}
	live := f.LiveInodes()
	file.Release()
	if f.LiveInodes() != live-1 {
		t.Fatal("inode storage not reclaimed after last close")
	}
}

func TestLinkSemantics(t *testing.T) {
	f := New()
	c := rootCred(f)
	f.Create(c, "/a", 0o644)
	if err := f.Link(c, "/a", "/b"); err != nil {
		t.Fatal(err)
	}
	ia, _ := f.Lookup(c, "/a")
	ib, _ := f.Lookup(c, "/b")
	if ia != ib {
		t.Fatal("link created a different inode")
	}
	if ia.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", ia.Nlink)
	}
	f.Unlink(c, "/a")
	if _, err := f.Lookup(c, "/b"); err != nil {
		t.Fatal("surviving link broken")
	}
	if ib.Nlink != 1 {
		t.Fatalf("nlink after unlink = %d", ib.Nlink)
	}
	if err := f.Link(c, "/b", "/b"); err != ErrExist {
		t.Fatalf("self link: %v", err)
	}
}

func TestUnlinkDirRules(t *testing.T) {
	f := New()
	c := rootCred(f)
	f.Mkdir(c, "/d", 0o755)
	f.Create(c, "/d/f", 0o644)
	if err := f.Unlink(c, "/d"); err != ErrNotEmpty {
		t.Fatalf("unlink non-empty dir: %v", err)
	}
	f.Unlink(c, "/d/f")
	if err := f.Unlink(c, "/d"); err != nil {
		t.Fatalf("unlink empty dir: %v", err)
	}
}

func TestSharedOffsetThroughDup(t *testing.T) {
	f := New()
	c := rootCred(f)
	file, _ := f.Open(c, "/log", ORead|OWrite|OCreat, 0o644)
	dup := file.Hold()
	th := newNopThread()
	file.Write(th, []byte("one"), noLimit, false)
	dup.Write(th, []byte("two"), noLimit, false)
	if file.Offset() != 6 {
		t.Fatalf("offset = %d, want 6 (shared)", file.Offset())
	}
	dup.Release()
	file.Release()
}

func TestUlimitEnforced(t *testing.T) {
	f := New()
	c := rootCred(f)
	file, _ := f.Open(c, "/big", OWrite|OCreat, 0o644)
	th := newNopThread()
	if _, err := file.Write(th, make([]byte, 100), 50, false); err != ErrFileLimit {
		t.Fatalf("ulimit write: %v", err)
	}
	if n, err := file.Write(th, make([]byte, 50), 50, false); n != 50 || err != nil {
		t.Fatalf("write at limit = (%d,%v)", n, err)
	}
	file.Release()
}

func TestAppendMode(t *testing.T) {
	f := New()
	c := rootCred(f)
	file, _ := f.Open(c, "/app", OWrite|OCreat, 0o644)
	th := newNopThread()
	file.Write(th, []byte("start"), noLimit, false)
	file.Release()

	app, _ := f.Open(c, "/app", OWrite|OAppend, 0)
	app.Write(th, []byte("+end"), noLimit, false)
	app.Release()
	st, _ := f.StatPath(c, "/app")
	if st.Size != 9 {
		t.Fatalf("size = %d, want 9", st.Size)
	}
}

func TestOpenModes(t *testing.T) {
	f := New()
	c := rootCred(f)
	file, _ := f.Open(c, "/x", OWrite|OCreat, 0o644)
	th := newNopThread()
	if _, err := file.Read(th, make([]byte, 4), false); err != ErrBadFd {
		t.Fatalf("read on write-only fd: %v", err)
	}
	file.Release()
	ro, _ := f.Open(c, "/x", ORead, 0)
	if _, err := ro.Write(th, []byte("no"), noLimit, false); err != ErrBadFd {
		t.Fatalf("write on read-only fd: %v", err)
	}
	ro.Release()
	if _, err := f.Open(c, "/", OWrite, 0); err != ErrIsDir {
		t.Fatalf("write-open of directory: %v", err)
	}
	if _, err := f.Open(c, "/missing", ORead, 0); err != ErrNotExist {
		t.Fatalf("open missing: %v", err)
	}
}

func TestOTruncClearsFile(t *testing.T) {
	f := New()
	c := rootCred(f)
	file, _ := f.Open(c, "/t", OWrite|OCreat, 0o644)
	th := newNopThread()
	file.Write(th, []byte("old contents"), noLimit, false)
	file.Release()
	tr, _ := f.Open(c, "/t", OWrite|OTrunc, 0)
	tr.Release()
	st, _ := f.StatPath(c, "/t")
	if st.Size != 0 {
		t.Fatalf("size after O_TRUNC = %d", st.Size)
	}
}

func TestSeekRules(t *testing.T) {
	f := New()
	c := rootCred(f)
	file, _ := f.Open(c, "/s", ORead|OWrite|OCreat, 0o644)
	th := newNopThread()
	file.Write(th, []byte("0123456789"), noLimit, false)
	if off, _ := file.Seek(-3, SeekEnd); off != 7 {
		t.Fatalf("SeekEnd = %d", off)
	}
	if off, _ := file.Seek(1, SeekCur); off != 8 {
		t.Fatalf("SeekCur = %d", off)
	}
	if _, err := file.Seek(-1, SeekSet); err != ErrInval {
		t.Fatalf("negative seek: %v", err)
	}
	if _, err := file.Seek(0, 9); err != ErrInval {
		t.Fatalf("bad whence: %v", err)
	}
	// Sparse write past EOF zero-fills.
	file.Seek(20, SeekSet)
	file.Write(th, []byte("x"), noLimit, false)
	file.Seek(15, SeekSet)
	buf := make([]byte, 1)
	file.Read(th, buf, false)
	if buf[0] != 0 {
		t.Fatal("hole not zero-filled")
	}
	file.Release()
}

// Property: a random sequence of create/link/unlink keeps Nlink equal to the
// number of directory entries referring to each inode.
func TestQuickNlinkInvariant(t *testing.T) {
	f := New()
	c := rootCred(f)
	f.Mkdir(c, "/d", 0o755)
	names := []string{"/a", "/b", "/d/a", "/d/b", "/d/c"}
	check := func(ops []byte) bool {
		for _, op := range ops {
			n := names[int(op)%len(names)]
			m := names[int(op/8)%len(names)]
			switch op % 3 {
			case 0:
				f.Create(c, n, 0o644)
			case 1:
				f.Link(c, n, m)
			case 2:
				f.Unlink(c, n)
			}
		}
		// Count entries per inode.
		counts := map[*Inode]int32{}
		var walk func(dir *Inode)
		walk = func(dir *Inode) {
			for _, name := range dir.Entries() {
				dir.mu.Lock()
				ip := dir.dir[name]
				dir.mu.Unlock()
				if ip.IsDir() {
					counts[ip] += 2 // its own entry + its "."
					walk(ip)
				} else {
					counts[ip]++
				}
			}
		}
		walk(f.Root())
		for ip, want := range counts {
			got := ip.Nlink
			if ip.IsDir() {
				// Each child dir adds one to the parent (its "..").
				sub := 0
				for _, name := range ip.Entries() {
					ip.mu.Lock()
					child := ip.dir[name]
					ip.mu.Unlock()
					if child.IsDir() {
						sub++
					}
				}
				want += int32(sub)
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyFilesStress(t *testing.T) {
	f := New()
	c := rootCred(f)
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("/f%03d", i)
		if _, err := f.Create(c, p, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 2 {
		if err := f.Unlink(c, fmt.Sprintf("/f%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ents := f.Root().Entries()
	if len(ents) != 100 {
		t.Fatalf("entries = %d, want 100", len(ents))
	}
}

func TestOpenCreatDoesNotTruncateExisting(t *testing.T) {
	// open(O_CREAT) without O_TRUNC must keep an existing file's
	// contents — the bug class this guards was found by cmd/vsh.
	f := New()
	c := rootCred(f)
	th := newNopThread()
	file, _ := f.Open(c, "/keep", OWrite|OCreat, 0o644)
	file.Write(th, []byte("precious"), noLimit, false)
	file.Release()

	again, err := f.Open(c, "/keep", OWrite|OCreat|OAppend, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	again.Write(th, []byte("+more"), noLimit, false)
	again.Release()
	st, _ := f.StatPath(c, "/keep")
	if st.Size != int64(len("precious+more")) {
		t.Fatalf("size = %d; O_CREAT truncated an existing file", st.Size)
	}
}
