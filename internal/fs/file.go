package fs

import (
	"sync"
	"sync/atomic"

	"repro/internal/klock"
)

// Open flags.
const (
	ORead   = 1 << 0
	OWrite  = 1 << 1
	OAppend = 1 << 2
	OCreat  = 1 << 3
	OTrunc  = 1 << 4
)

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Stream is a non-regular file endpoint (pipe end, socket end). Reads and
// writes may sleep, so they take the calling thread; wakeups are addressed
// to specific threads through klock.WaitList. With nonblock set an
// operation that would sleep returns ErrAgain instead — the per-descriptor
// FdNonblock mode the kernel threads through from the fd table. Streams
// that can block also implement Pollable (poll.go), the waitable-
// descriptor half of the same readiness protocol.
type Stream interface {
	Read(t klock.Thread, p []byte, nonblock bool) (int, error)
	Write(t klock.Thread, p []byte, nonblock bool) (int, error)
	Close()
}

// File is an open-file table entry: an inode (or stream), the open flags,
// and the shared offset. Descriptors in per-process fd tables point here;
// dup, fork and share-group descriptor sharing all alias the same entry,
// so the offset is shared, exactly as on V.3.
type File struct {
	mu     sync.Mutex
	Inode  *Inode // held reference; nil only for anonymous streams
	Stream Stream // nil for regular files
	Flags  int
	offset int64
	ref    atomic.Int32

	// Path is the name the file was opened by, recorded so a checkpoint
	// can note how to reacquire the descriptor at restore (the CRIU
	// convention). Empty for anonymous endpoints (pipes, sockets), which a
	// checkpoint records structurally but cannot reopen.
	Path string

	Reads  atomic.Int64
	Writes atomic.Int64
}

// NewFile wraps an inode (already held by the caller on the file's behalf)
// in an open-file entry with reference count one.
func NewFile(ip *Inode, stream Stream, flags int) *File {
	f := &File{Inode: ip, Stream: stream, Flags: flags}
	f.ref.Store(1)
	return f
}

// Hold takes a reference (dup, fork, share-block copy).
func (f *File) Hold() *File {
	f.ref.Add(1)
	return f
}

// Release drops a reference; the last release closes the stream and
// releases the inode.
func (f *File) Release() {
	if f == nil {
		return
	}
	n := f.ref.Add(-1)
	if n < 0 {
		panic("fs: file reference count underflow")
	}
	if n == 0 {
		if f.Stream != nil {
			f.Stream.Close()
		}
		f.Inode.Release()
	}
}

// Ref returns the current reference count.
func (f *File) Ref() int32 { return f.ref.Load() }

// Offset returns the current file offset.
func (f *File) Offset() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.offset
}

// Read reads from the file at the shared offset, advancing it. nonblock
// applies to streams only: a read that would sleep returns ErrAgain.
func (f *File) Read(t klock.Thread, p []byte, nonblock bool) (int, error) {
	if f.Flags&ORead == 0 {
		return 0, ErrBadFd
	}
	f.Reads.Add(1)
	if f.Stream != nil {
		return f.Stream.Read(t, p, nonblock)
	}
	if f.Inode.IsDir() {
		return 0, ErrIsDir
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.Inode.ReadAt(p, f.offset)
	f.offset += int64(n)
	return n, nil
}

// Write writes at the shared offset (or end-of-file with OAppend),
// enforcing the caller's ulimit. nonblock applies to streams only: a write
// that would sleep with nothing transferred returns ErrAgain.
func (f *File) Write(t klock.Thread, p []byte, ulimit int64, nonblock bool) (int, error) {
	if f.Flags&OWrite == 0 {
		return 0, ErrBadFd
	}
	f.Writes.Add(1)
	if f.Stream != nil {
		return f.Stream.Write(t, p, nonblock)
	}
	if f.Inode.IsDir() {
		return 0, ErrIsDir
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	off := f.offset
	if f.Flags&OAppend != 0 {
		off = f.Inode.Size()
	}
	n, err := f.Inode.WriteAt(p, off, ulimit)
	if err != nil {
		return 0, err
	}
	f.offset = off + int64(n)
	return n, nil
}

// Seek repositions the shared offset.
func (f *File) Seek(off int64, whence int) (int64, error) {
	if f.Stream != nil {
		return 0, ErrInval
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.offset
	case SeekEnd:
		base = f.Inode.Size()
	default:
		return 0, ErrInval
	}
	if base+off < 0 {
		return 0, ErrInval
	}
	f.offset = base + off
	return f.offset, nil
}

// Open opens (optionally creating) the file at path under cred c.
func (f *FS) Open(c Cred, path string, flags int, mode uint16) (*File, error) {
	var ip *Inode
	var err error
	if flags&OCreat != 0 {
		ip, err = f.Create(c, path, mode)
	} else {
		ip, err = f.Lookup(c, path)
	}
	if err != nil {
		return nil, err
	}
	var want uint16
	if flags&ORead != 0 {
		want |= 4
	}
	if flags&OWrite != 0 {
		want |= 2
	}
	// Creation grants the creator access regardless of the masked mode,
	// matching creat(2); otherwise check permissions.
	if flags&OCreat == 0 {
		if err := ip.Access(c.Uid, c.Gid, want); err != nil {
			return nil, err
		}
	}
	if flags&OWrite != 0 && ip.IsDir() {
		return nil, ErrIsDir
	}
	if flags&OTrunc != 0 && !ip.IsDir() {
		ip.Truncate()
	}
	file := NewFile(ip.Hold(), nil, flags)
	file.Path = path
	return file, nil
}
