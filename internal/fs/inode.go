// Package fs is an in-memory UNIX filesystem: a tree of reference-counted
// inodes, an open-file table, and path resolution relative to a process's
// current and root directories.
//
// The share-group design leans on two properties reproduced exactly here:
// in-core inodes and open-file entries are reference counted (the shared
// address block holds one reference of its own so an updater may exit
// before the group synchronizes, paper §6.3), and an open-file entry holds
// the shared offset, so descriptor sharing gives share-group members the
// same I/O cursor just as dup(2) and fork(2) do.
package fs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Mode bits, following the UNIX conventions.
const (
	ModeDir  uint16 = 0o040000
	ModeFile uint16 = 0o100000
	ModeFIFO uint16 = 0o010000
	ModeSock uint16 = 0o140000

	PermMask uint16 = 0o777
	TypeMask uint16 = 0o170000
)

// Errors mirror the errno values a V.3 kernel would return.
var (
	ErrNotExist  = errors.New("fs: no such file or directory")        // ENOENT
	ErrExist     = errors.New("fs: file exists")                      // EEXIST
	ErrNotDir    = errors.New("fs: not a directory")                  // ENOTDIR
	ErrIsDir     = errors.New("fs: is a directory")                   // EISDIR
	ErrPerm      = errors.New("fs: permission denied")                // EACCES
	ErrNotEmpty  = errors.New("fs: directory not empty")              // ENOTEMPTY
	ErrFileLimit = errors.New("fs: file size limit exceeded")         // EFBIG (ulimit)
	ErrBadFd     = errors.New("fs: bad file descriptor")              // EBADF
	ErrInval     = errors.New("fs: invalid argument")                 // EINVAL
	ErrPipe      = errors.New("fs: broken pipe")                      // EPIPE
	ErrAgain     = errors.New("fs: resource temporarily unavailable") // EAGAIN
)

// Inode is one in-core inode. Ref counts in-core references (open files,
// cdir/rdir pointers, share-block copies); Nlink counts directory entries.
type Inode struct {
	mu     sync.Mutex
	Ino    uint32
	Mode   uint16
	Uid    uint16
	Gid    uint16
	Nlink  int32
	ref    atomic.Int32
	data   []byte            // regular file contents
	dir    map[string]*Inode // directory entries
	parent *Inode            // ".." (directories only)
	fs     *FS
}

// IsDir reports whether the inode is a directory.
func (ip *Inode) IsDir() bool { return ip.Mode&TypeMask == ModeDir }

// Type returns the inode's type bits.
func (ip *Inode) Type() uint16 { return ip.Mode & TypeMask }

// Perm returns the permission bits.
func (ip *Inode) Perm() uint16 { return ip.Mode & PermMask }

// Ref returns the in-core reference count.
func (ip *Inode) Ref() int32 { return ip.ref.Load() }

// Hold takes an in-core reference (iget).
func (ip *Inode) Hold() *Inode {
	ip.ref.Add(1)
	return ip
}

// Release drops an in-core reference (iput). An inode with no references
// and no links is dead; its storage is dropped.
func (ip *Inode) Release() {
	if ip == nil {
		return
	}
	if n := ip.ref.Add(-1); n < 0 {
		panic("fs: inode reference count underflow")
	} else if n == 0 && atomic.LoadInt32(&ip.Nlink) == 0 {
		ip.mu.Lock()
		ip.data = nil
		ip.dir = nil
		ip.mu.Unlock()
		ip.fs.liveInodes.Add(-1)
	}
}

// Size returns the file size in bytes.
func (ip *Inode) Size() int64 {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	return int64(len(ip.data))
}

// ReadAt copies file bytes at off into p, returning the count.
func (ip *Inode) ReadAt(p []byte, off int64) int {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	if off >= int64(len(ip.data)) {
		return 0
	}
	return copy(p, ip.data[off:])
}

// WriteAt stores p at off, extending the file as needed. limit is the
// process's ulimit (maximum write offset, paper §4: "s_limit — maximum
// write address"); a write that would exceed it fails with ErrFileLimit.
func (ip *Inode) WriteAt(p []byte, off int64, limit int64) (int, error) {
	if off+int64(len(p)) > limit {
		return 0, ErrFileLimit
	}
	ip.mu.Lock()
	defer ip.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(ip.data)) {
		grown := make([]byte, end)
		copy(grown, ip.data)
		ip.data = grown
	}
	copy(ip.data[off:], p)
	return len(p), nil
}

// Truncate clears a regular file's contents.
func (ip *Inode) Truncate() {
	ip.mu.Lock()
	ip.data = nil
	ip.mu.Unlock()
}

// entries returns a snapshot of a directory's names (tests, envdiag).
func (ip *Inode) Entries() []string {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	out := make([]string, 0, len(ip.dir))
	for name := range ip.dir {
		out = append(out, name)
	}
	return out
}

// Access checks rwx permission for (uid, gid). want is a bitmask of 4
// (read), 2 (write), 1 (execute/search). Uid 0 bypasses checks, as root
// does.
func (ip *Inode) Access(uid, gid uint16, want uint16) error {
	if uid == 0 {
		return nil
	}
	perm := ip.Perm()
	var got uint16
	switch {
	case uid == ip.Uid:
		got = perm >> 6
	case gid == ip.Gid:
		got = perm >> 3
	default:
		got = perm
	}
	if got&want != want {
		return ErrPerm
	}
	return nil
}

func (ip *Inode) String() string {
	return fmt.Sprintf("inode{ino=%d mode=%o nlink=%d ref=%d}", ip.Ino, ip.Mode, atomic.LoadInt32(&ip.Nlink), ip.ref.Load())
}
