// Package ipc implements the queueing IPC mechanisms the paper contrasts
// share groups against: pipes (the Version 7 model), System V message
// queues, semaphores and shared memory (the System V model of Figure 2),
// and stream socket pairs (the BSD model). All of them move data through
// kernel buffers with sleep/wakeup synchronization — the data copying and
// kernel interaction whose cost motivates the shared-memory/busy-wait
// model of paper §3.
//
// Blocking uses targeted wait lists (klock.WaitList): every wakeup is
// addressed to a specific thread, so a wakeup can never be stolen by a
// waiter whose condition is still false.
package ipc

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/klock"
)

// PipeCap is a pipe's kernel buffer capacity (ten 1 KiB blocks, as in
// classic UNIX).
const PipeCap = 10240

// Pipe is a bounded kernel byte queue with blocking reads and writes.
type Pipe struct {
	mu      sync.Mutex
	buf     []byte
	readers int32
	writers int32
	rwait   klock.WaitList
	wwait   klock.WaitList

	// FI, when armed, injects spurious wakeups (SiteIPCSleep) and short
	// reads/writes (SiteIPCData). The kernel sets it at pipe creation.
	FI *faultinject.Plan

	BytesMoved atomic.Int64
}

// NewPipe creates a pipe with one reader and one writer end open.
func NewPipe() *Pipe {
	return &Pipe{readers: 1, writers: 1}
}

// read implements the reader end: block while empty (unless all writers
// are gone: EOF), then drain up to len(b) bytes. A pending signal breaks
// the sleep with ErrIntr; an armed fault plan occasionally returns fewer
// bytes than are available (short read — always at least one).
func (p *Pipe) read(t klock.Thread, b []byte) (int, error) {
	p.mu.Lock()
	for len(p.buf) == 0 {
		if p.writers == 0 {
			p.mu.Unlock()
			return 0, nil // EOF
		}
		if err := sleepOn(p.FI, &p.mu, &p.rwait, t, "pipe read"); err != nil {
			p.mu.Unlock()
			return 0, err
		}
	}
	n := copy(b, p.buf)
	if n > 1 {
		if hit, draw := p.FI.Decide(faultinject.SiteIPCData, uint32(n)); hit {
			n = 1 + int(draw%uint64(n))
			p.FI.Note(faultinject.SiteIPCData, faultinject.FaultShortIO, uint32(n))
		}
	}
	p.buf = p.buf[n:]
	p.BytesMoved.Add(int64(n))
	p.wwait.WakeAll()
	p.mu.Unlock()
	return n, nil
}

// write implements the writer end: block while full; EPIPE when no
// readers remain. A signal that lands before any byte moved surfaces as
// ErrIntr; after a partial transfer it surfaces as a short write (UNIX
// write(2) semantics). An armed fault plan also forces occasional short
// writes outright.
func (p *Pipe) write(t klock.Thread, b []byte) (int, error) {
	total := 0
	p.mu.Lock()
	for len(b) > 0 {
		if p.readers == 0 {
			p.mu.Unlock()
			return total, fs.ErrPipe
		}
		space := PipeCap - len(p.buf)
		if space == 0 {
			if err := sleepOn(p.FI, &p.mu, &p.wwait, t, "pipe write"); err != nil {
				p.mu.Unlock()
				if total > 0 {
					return total, nil
				}
				return 0, err
			}
			continue
		}
		n := space
		if n > len(b) {
			n = len(b)
		}
		p.buf = append(p.buf, b[:n]...)
		b = b[n:]
		total += n
		p.rwait.WakeAll()
		if len(b) > 0 {
			if hit, _ := p.FI.Decide(faultinject.SiteIPCData, uint32(total)); hit {
				p.FI.Note(faultinject.SiteIPCData, faultinject.FaultShortIO, uint32(total))
				break
			}
		}
	}
	p.mu.Unlock()
	return total, nil
}

// closeEnd closes one end, waking sleepers so they observe EOF/EPIPE.
func (p *Pipe) closeEnd(read bool) {
	p.mu.Lock()
	if read {
		p.readers--
	} else {
		p.writers--
	}
	p.rwait.WakeAll()
	p.wwait.WakeAll()
	p.mu.Unlock()
}

// Buffered returns the number of bytes queued in the pipe.
func (p *Pipe) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// pipeEnd adapts one end of a pipe to fs.Stream.
type pipeEnd struct {
	p    *Pipe
	read bool
}

func (e *pipeEnd) Read(t klock.Thread, b []byte) (int, error) {
	if !e.read {
		return 0, fs.ErrBadFd
	}
	return e.p.read(t, b)
}

func (e *pipeEnd) Write(t klock.Thread, b []byte) (int, error) {
	if e.read {
		return 0, fs.ErrBadFd
	}
	return e.p.write(t, b)
}

func (e *pipeEnd) Close() { e.p.closeEnd(e.read) }

// Ends returns the reader and writer fs.Streams of a pipe.
func (p *Pipe) Ends() (r, w fs.Stream) {
	return &pipeEnd{p: p, read: true}, &pipeEnd{p: p, read: false}
}

// duplexEnd is one endpoint of a connected stream pair: it reads from one
// pipe and writes to the other (the socketpair model).
type duplexEnd struct {
	in  *Pipe
	out *Pipe
}

func (d *duplexEnd) Read(t klock.Thread, b []byte) (int, error)  { return d.in.read(t, b) }
func (d *duplexEnd) Write(t klock.Thread, b []byte) (int, error) { return d.out.write(t, b) }
func (d *duplexEnd) Close() {
	d.in.closeEnd(true)
	d.out.closeEnd(false)
}

// SocketPair creates a connected pair of duplex byte streams, modelling
// socketpair(2) on a UNIX-domain stream socket.
func SocketPair() (a, b fs.Stream) { return socketPair(nil) }

// socketPair is SocketPair with both underlying pipes wired to a fault
// plan (Connect passes the namespace's plan through).
func socketPair(fi *faultinject.Plan) (a, b fs.Stream) {
	p1, p2 := NewPipe(), NewPipe()
	p1.FI, p2.FI = fi, fi
	return &duplexEnd{in: p1, out: p2}, &duplexEnd{in: p2, out: p1}
}
