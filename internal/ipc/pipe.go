// Package ipc implements the queueing IPC mechanisms the paper contrasts
// share groups against: pipes (the Version 7 model), System V message
// queues, semaphores and shared memory (the System V model of Figure 2),
// and stream socket pairs (the BSD model). All of them move data through
// kernel buffers with sleep/wakeup synchronization — the data copying and
// kernel interaction whose cost motivates the shared-memory/busy-wait
// model of paper §3.
//
// Blocking uses targeted wait lists (klock.WaitList): every wakeup is
// addressed to a specific thread, so a wakeup can never be stolen by a
// waiter whose condition is still false. Byte streams route all blocking
// and wakeups through per-direction event queues (pollable.go) and
// implement fs.Pollable, so the same transitions that release sleepers
// also drive poll(2).
package ipc

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/klock"
)

// PipeCap is a pipe's kernel buffer capacity (ten 1 KiB blocks, as in
// classic UNIX).
const PipeCap = 10240

// Pipe is a bounded kernel byte queue with blocking reads and writes.
type Pipe struct {
	mu      sync.Mutex
	buf     []byte
	readers int32
	writers int32
	rq      evQueue // reader-side events: data arrived, writers gone
	wq      evQueue // writer-side events: space appeared, readers gone

	// FI, when armed, injects spurious wakeups (SiteIPCSleep) and short
	// reads/writes (SiteIPCData). The kernel sets it at pipe creation.
	FI *faultinject.Plan
	// PS, when set, aggregates readiness-notification counters for
	// Stats(). The kernel sets it at pipe creation.
	PS *PollStats

	BytesMoved atomic.Int64
}

// NewPipe creates a pipe with one reader and one writer end open.
func NewPipe() *Pipe {
	return &Pipe{readers: 1, writers: 1}
}

// WakeCounts returns the sleeper wakeups issued on the reader and writer
// queues — the thundering-herd tests assert these stay proportional to
// transitions, not to sleepers × chunks.
func (p *Pipe) WakeCounts() (readers, writers int64) {
	return p.rq.SleeperWakes(), p.wq.SleeperWakes()
}

// readyRead returns the reader end's readiness mask. Caller holds p.mu.
// EOF counts as readable: a read returns immediately (with 0 bytes).
func (p *Pipe) readyRead() uint16 {
	var m uint16
	if len(p.buf) > 0 {
		m |= fs.PollIn
	}
	if p.writers == 0 {
		m |= fs.PollIn | fs.PollHup
	}
	return m
}

// readyWrite returns the writer end's readiness mask. Caller holds p.mu.
// A readerless pipe reports PollErr (the write will raise EPIPE), which
// poll reports regardless of the requested event set.
func (p *Pipe) readyWrite() uint16 {
	if p.readers == 0 {
		return fs.PollErr
	}
	if len(p.buf) < PipeCap {
		return fs.PollOut
	}
	return 0
}

// read implements the reader end: block while empty (unless all writers
// are gone: EOF), then drain up to len(b) bytes. A pending signal breaks
// the sleep with ErrIntr; with nonblock an empty pipe returns ErrAgain
// instead of sleeping. An armed fault plan occasionally returns fewer
// bytes than are available (short read — always at least one).
func (p *Pipe) read(t klock.Thread, b []byte, nonblock bool) (int, error) {
	p.mu.Lock()
	for len(p.buf) == 0 {
		if p.writers == 0 {
			p.mu.Unlock()
			return 0, nil // EOF
		}
		if nonblock {
			p.mu.Unlock()
			return 0, fs.ErrAgain
		}
		if err := p.rq.waitOn(p.FI, &p.mu, t, "pipe read"); err != nil {
			p.mu.Unlock()
			return 0, err
		}
	}
	wasFull := len(p.buf) == PipeCap
	n := copy(b, p.buf)
	if n > 1 {
		if hit, draw := p.FI.Decide(faultinject.SiteIPCData, uint32(n)); hit {
			n = 1 + int(draw%uint64(n))
			p.FI.Note(faultinject.SiteIPCData, faultinject.FaultShortIO, uint32(n))
		}
	}
	p.buf = p.buf[n:]
	p.BytesMoved.Add(int64(n))
	if wasFull && n > 0 {
		// Full→unfull transition: space appeared, release one writer.
		p.wq.wake(p.PS, false)
	}
	if len(p.buf) > 0 {
		// Data is left over; pass the baton to the next sleeping reader
		// (a targeted wake replaced the historical broadcast, so leftover
		// condition must be handed on explicitly).
		p.rq.baton(p.PS)
	}
	p.mu.Unlock()
	return n, nil
}

// write implements the writer end: block while full; EPIPE when no
// readers remain; with nonblock a full pipe returns ErrAgain (or a short
// count if some bytes already moved). A signal that lands before any byte
// moved surfaces as ErrIntr; after a partial transfer it surfaces as a
// short write (UNIX write(2) semantics). An armed fault plan also forces
// occasional short writes outright.
//
// Readers are woken once per empty→nonempty transition — at most once per
// buffer-drain cycle — not once per appended chunk: the thundering-herd
// fix. A targeted wake suffices because read passes the baton on.
func (p *Pipe) write(t klock.Thread, b []byte, nonblock bool) (int, error) {
	total := 0
	p.mu.Lock()
	for len(b) > 0 {
		if p.readers == 0 {
			p.mu.Unlock()
			return total, fs.ErrPipe
		}
		space := PipeCap - len(p.buf)
		if space == 0 {
			if nonblock {
				p.mu.Unlock()
				if total > 0 {
					return total, nil
				}
				return 0, fs.ErrAgain
			}
			if err := p.wq.waitOn(p.FI, &p.mu, t, "pipe write"); err != nil {
				p.mu.Unlock()
				if total > 0 {
					return total, nil
				}
				return 0, err
			}
			continue
		}
		n := space
		if n > len(b) {
			n = len(b)
		}
		wasEmpty := len(p.buf) == 0
		p.buf = append(p.buf, b[:n]...)
		b = b[n:]
		total += n
		if wasEmpty {
			p.rq.wake(p.PS, false)
		}
		if len(b) > 0 {
			if hit, _ := p.FI.Decide(faultinject.SiteIPCData, uint32(total)); hit {
				p.FI.Note(faultinject.SiteIPCData, faultinject.FaultShortIO, uint32(total))
				break
			}
		}
	}
	if PipeCap-len(p.buf) > 0 {
		// Space is left over; hand it to the next sleeping writer, if any.
		p.wq.baton(p.PS)
	}
	p.mu.Unlock()
	return total, nil
}

// closeEnd closes one end — a terminal transition: broadcast both
// directions so every sleeper observes EOF/EPIPE and every poller sees
// PollHup/PollErr.
func (p *Pipe) closeEnd(read bool) {
	p.mu.Lock()
	if read {
		p.readers--
	} else {
		p.writers--
	}
	p.rq.wake(p.PS, true)
	p.wq.wake(p.PS, true)
	p.mu.Unlock()
}

// Buffered returns the number of bytes queued in the pipe.
func (p *Pipe) Buffered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// pipeEnd adapts one end of a pipe to fs.Stream and fs.Pollable.
type pipeEnd struct {
	p    *Pipe
	read bool
}

func (e *pipeEnd) Read(t klock.Thread, b []byte, nonblock bool) (int, error) {
	if !e.read {
		return 0, fs.ErrBadFd
	}
	return e.p.read(t, b, nonblock)
}

func (e *pipeEnd) Write(t klock.Thread, b []byte, nonblock bool) (int, error) {
	if e.read {
		return 0, fs.ErrBadFd
	}
	return e.p.write(t, b, nonblock)
}

func (e *pipeEnd) Close() { e.p.closeEnd(e.read) }

// Ready implements fs.Pollable for the end's own direction.
func (e *pipeEnd) Ready() uint16 {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	if e.read {
		return e.p.readyRead()
	}
	return e.p.readyWrite()
}

// PollRegister implements fs.Pollable: subscribe on the end's queue.
func (e *pipeEnd) PollRegister(w *fs.PollWaiter) {
	e.p.mu.Lock()
	if e.read {
		e.p.rq.register(w)
	} else {
		e.p.wq.register(w)
	}
	e.p.mu.Unlock()
}

// PollUnregister implements fs.Pollable.
func (e *pipeEnd) PollUnregister(w *fs.PollWaiter) {
	e.p.mu.Lock()
	if e.read {
		e.p.rq.unregister(w)
	} else {
		e.p.wq.unregister(w)
	}
	e.p.mu.Unlock()
}

// Ends returns the reader and writer fs.Streams of a pipe.
func (p *Pipe) Ends() (r, w fs.Stream) {
	return &pipeEnd{p: p, read: true}, &pipeEnd{p: p, read: false}
}

// duplexEnd is one endpoint of a connected stream pair: it reads from one
// pipe and writes to the other (the socketpair model).
type duplexEnd struct {
	in  *Pipe
	out *Pipe
}

func (d *duplexEnd) Read(t klock.Thread, b []byte, nonblock bool) (int, error) {
	return d.in.read(t, b, nonblock)
}
func (d *duplexEnd) Write(t klock.Thread, b []byte, nonblock bool) (int, error) {
	return d.out.write(t, b, nonblock)
}
func (d *duplexEnd) Close() {
	d.in.closeEnd(true)
	d.out.closeEnd(false)
}

// Ready implements fs.Pollable: a duplex endpoint is readable by its
// inbound pipe and writable by its outbound one.
func (d *duplexEnd) Ready() uint16 {
	d.in.mu.Lock()
	m := d.in.readyRead()
	d.in.mu.Unlock()
	d.out.mu.Lock()
	m |= d.out.readyWrite()
	d.out.mu.Unlock()
	return m
}

// PollRegister implements fs.Pollable: subscribe to both directions.
func (d *duplexEnd) PollRegister(w *fs.PollWaiter) {
	d.in.mu.Lock()
	d.in.rq.register(w)
	d.in.mu.Unlock()
	d.out.mu.Lock()
	d.out.wq.register(w)
	d.out.mu.Unlock()
}

// PollUnregister implements fs.Pollable.
func (d *duplexEnd) PollUnregister(w *fs.PollWaiter) {
	d.in.mu.Lock()
	d.in.rq.unregister(w)
	d.in.mu.Unlock()
	d.out.mu.Lock()
	d.out.wq.unregister(w)
	d.out.mu.Unlock()
}

// SocketPair creates a connected pair of duplex byte streams, modelling
// socketpair(2) on a UNIX-domain stream socket.
func SocketPair() (a, b fs.Stream) { return socketPair(nil, nil) }

// socketPair is SocketPair with both underlying pipes wired to a fault
// plan and poll-stats aggregator (Connect passes the namespace's through).
func socketPair(fi *faultinject.Plan, ps *PollStats) (a, b fs.Stream) {
	p1, p2 := NewPipe(), NewPipe()
	p1.FI, p2.FI = fi, fi
	p1.PS, p2.PS = ps, ps
	return &duplexEnd{in: p1, out: p2}, &duplexEnd{in: p2, out: p1}
}
