package ipc

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/vm"
)

type goThread struct{ ch chan struct{} }

func newGoThread() *goThread       { return &goThread{ch: make(chan struct{}, 1)} }
func (g *goThread) Block(_ string) { <-g.ch }
func (g *goThread) Unblock()       { g.ch <- struct{}{} }

func TestPipeBasicTransfer(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	th := newGoThread()
	if n, err := w.Write(th, []byte("hello"), false); n != 5 || err != nil {
		t.Fatalf("Write = (%d,%v)", n, err)
	}
	buf := make([]byte, 16)
	if n, err := r.Read(th, buf, false); n != 5 || err != nil || string(buf[:5]) != "hello" {
		t.Fatalf("Read = (%d,%v,%q)", n, err, buf[:n])
	}
}

func TestPipeBlocksWhenEmptyAndFull(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	reader := newGoThread()
	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 8)
		n, _ := r.Read(reader, buf, false)
		got <- string(buf[:n])
	}()
	select {
	case <-got:
		t.Fatal("read returned on empty pipe")
	case <-time.After(20 * time.Millisecond):
	}
	writer := newGoThread()
	w.Write(writer, []byte("x"), false)
	select {
	case s := <-got:
		if s != "x" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader never woke")
	}

	// Fill the pipe; the next write must block until drained.
	w.Write(writer, make([]byte, PipeCap), false)
	wrote := make(chan struct{})
	go func() {
		w.Write(writer, []byte("y"), false)
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write returned on full pipe")
	case <-time.After(20 * time.Millisecond):
	}
	buf := make([]byte, PipeCap)
	r.Read(reader, buf, false)
	select {
	case <-wrote:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never woke")
	}
}

func TestPipeEOFAndEPIPE(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	th := newGoThread()
	w.Write(th, []byte("tail"), false)
	w.Close()
	buf := make([]byte, 8)
	if n, err := r.Read(th, buf, false); n != 4 || err != nil {
		t.Fatalf("drain = (%d,%v)", n, err)
	}
	if n, err := r.Read(th, buf, false); n != 0 || err != nil {
		t.Fatalf("EOF = (%d,%v)", n, err)
	}

	p2 := NewPipe()
	r2, w2 := p2.Ends()
	r2.Close()
	if _, err := w2.Write(th, []byte("z"), false); err != fs.ErrPipe {
		t.Fatalf("EPIPE = %v", err)
	}
}

func TestPipeCloseWakesSleepers(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	th := newGoThread()
	done := make(chan int, 1)
	go func() {
		n, _ := r.Read(th, make([]byte, 4), false)
		done <- n
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case n := <-done:
		if n != 0 {
			t.Fatalf("read %d after close", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleeping reader not woken by close")
	}
}

func TestPipeWrongDirection(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	th := newGoThread()
	if _, err := r.Write(th, []byte("x"), false); err != fs.ErrBadFd {
		t.Fatalf("write on read end: %v", err)
	}
	if _, err := w.Read(th, make([]byte, 1), false); err != fs.ErrBadFd {
		t.Fatalf("read on write end: %v", err)
	}
}

func TestPipeConcurrentStream(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	const total = 256 * 1024
	var rn int
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		th := newGoThread()
		sent := 0
		chunk := make([]byte, 1024)
		for sent < total {
			n, err := w.Write(th, chunk, false)
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
			sent += n
		}
		w.Close()
	}()
	go func() {
		defer wg.Done()
		th := newGoThread()
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(th, buf, false)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				return
			}
			rn += n
		}
	}()
	wg.Wait()
	if rn != total {
		t.Fatalf("received %d, want %d", rn, total)
	}
}

func TestSocketPairDuplex(t *testing.T) {
	a, b := SocketPair()
	th := newGoThread()
	a.Write(th, []byte("ping"), false)
	buf := make([]byte, 8)
	n, _ := b.Read(th, buf, false)
	if string(buf[:n]) != "ping" {
		t.Fatalf("b got %q", buf[:n])
	}
	b.Write(th, []byte("pong"), false)
	n, _ = a.Read(th, buf, false)
	if string(buf[:n]) != "pong" {
		t.Fatalf("a got %q", buf[:n])
	}
	a.Close()
	if n, err := b.Read(th, buf, false); n != 0 || err != nil {
		t.Fatalf("EOF after peer close = (%d,%v)", n, err)
	}
}

func TestMsgQueueTypes(t *testing.T) {
	r := NewRegistry()
	id := r.Msgget(5)
	if r.Msgget(5) != id {
		t.Fatal("same key, different queue")
	}
	q, err := r.Msgq(id)
	if err != nil {
		t.Fatal(err)
	}
	th := newGoThread()
	q.Send(th, Msg{Type: 2, Data: []byte("two")})
	q.Send(th, Msg{Type: 1, Data: []byte("one")})
	q.Send(th, Msg{Type: 2, Data: []byte("two-b")})

	m, _ := q.Recv(th, 1)
	if string(m.Data) != "one" {
		t.Fatalf("typed recv got %q", m.Data)
	}
	m, _ = q.Recv(th, 0)
	if string(m.Data) != "two" {
		t.Fatalf("any recv got %q", m.Data)
	}
	m, _ = q.Recv(th, 2)
	if string(m.Data) != "two-b" {
		t.Fatalf("second typed recv got %q", m.Data)
	}
	if q.Len() != 0 {
		t.Fatal("queue not drained")
	}
	if err := q.Send(th, Msg{Type: 0, Data: []byte("bad")}); err == nil {
		t.Fatal("type 0 send accepted")
	}
	if err := q.Send(th, Msg{Type: 1, Data: make([]byte, MsgMax+1)}); err == nil {
		t.Fatal("oversize send accepted")
	}
}

func TestMsgQueueBlocking(t *testing.T) {
	r := NewRegistry()
	q, _ := r.Msgq(r.Msgget(0))
	th := newGoThread()
	got := make(chan Msg, 1)
	go func() {
		m, _ := q.Recv(th, 0)
		got <- m
	}()
	select {
	case <-got:
		t.Fatal("recv on empty queue returned")
	case <-time.After(20 * time.Millisecond):
	}
	sender := newGoThread()
	q.Send(sender, Msg{Type: 9, Data: []byte("wake")})
	select {
	case m := <-got:
		if m.Type != 9 {
			t.Fatalf("type %d", m.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver never woke")
	}

	// Fill past capacity: sender must block until a receiver drains.
	big := Msg{Type: 1, Data: make([]byte, MsgMax)}
	q.Send(sender, big)
	q.Send(sender, big)
	sent := make(chan struct{})
	go func() {
		q.Send(sender, big)
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("send past capacity returned")
	case <-time.After(20 * time.Millisecond):
	}
	q.Recv(th, 0)
	select {
	case <-sent:
	case <-time.After(2 * time.Second):
		t.Fatal("sender never woke")
	}
}

func TestSemSetOps(t *testing.T) {
	r := NewRegistry()
	id := r.Semget(3, 2)
	if r.Semget(3, 2) != id {
		t.Fatal("same key, different set")
	}
	s, _ := r.Sem(id)
	th := newGoThread()
	s.Op(th, 0, 2)
	if s.Val(0) != 2 || s.Val(1) != 0 {
		t.Fatalf("vals = %d,%d", s.Val(0), s.Val(1))
	}
	s.Op(th, 0, -2)
	if s.Val(0) != 0 {
		t.Fatalf("val = %d", s.Val(0))
	}
	if err := s.Op(th, 7, 1); err != ErrNoEntry {
		t.Fatalf("bad index: %v", err)
	}

	// Blocking P.
	done := make(chan struct{})
	waiter := newGoThread()
	go func() {
		s.Op(waiter, 1, -1)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("negative op returned while value 0")
	case <-time.After(20 * time.Millisecond):
	}
	s.Op(th, 1, 1)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("semop waiter never woke")
	}
	if s.Val(1) != 0 {
		t.Fatalf("val after P/V = %d", s.Val(1))
	}
}

func TestSemMutualExclusion(t *testing.T) {
	r := NewRegistry()
	s, _ := r.Sem(r.Semget(0, 1))
	init := newGoThread()
	s.Op(init, 0, 1) // mutex unlocked
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := newGoThread()
			for j := 0; j < 200; j++ {
				s.Op(th, 0, -1)
				counter++
				s.Op(th, 0, 1)
			}
		}()
	}
	wg.Wait()
	if counter != 800 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestShmRegistry(t *testing.T) {
	r := NewRegistry()
	mem := hw.NewMemory(64)
	mk := func(pages int) *vm.Region { return vm.NewRegion(mem, vm.RShm, pages) }
	id := r.Shmget(11, 4, mk)
	if r.Shmget(11, 4, mk) != id {
		t.Fatal("same key, different segment")
	}
	seg, err := r.Shm(id)
	if err != nil || seg.Reg.Pages() != 4 {
		t.Fatalf("Shm = (%v,%v)", seg, err)
	}
	// Two attachments write/read the same frames.
	seg.Reg.Attach()
	pfn, _, _, _ := seg.Reg.Fill(0, true)
	mem.StoreWord(pfn, 0, 31337)
	pfn2, _, _, _ := seg.Reg.Fill(0, false)
	if pfn2 != pfn || mem.LoadWord(pfn2, 0) != 31337 {
		t.Fatal("attachments do not share frames")
	}
	seg.Reg.Detach()
	if mem.InUse() == 0 {
		t.Fatal("segment died while registry holds it")
	}
	if err := r.ShmRemove(id); err != nil {
		t.Fatal(err)
	}
	if mem.InUse() != 0 {
		t.Fatal("segment frames leaked after remove")
	}
	if _, err := r.Shm(id); err != ErrNoEntry {
		t.Fatal("removed segment still visible")
	}
	if err := r.ShmRemove(id); err != ErrNoEntry {
		t.Fatal("double remove")
	}
}

func TestListenerAcceptConnect(t *testing.T) {
	n := NewNetNames()
	l, err := n.Listen("db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("db"); err != ErrAddrInUse {
		t.Fatalf("double listen: %v", err)
	}
	if _, err := n.Connect(newGoThread(), "nowhere"); err != ErrNoListen {
		t.Fatalf("connect to nothing: %v", err)
	}

	srvGot := make(chan string, 1)
	go func() {
		th := newGoThread()
		conn, err := l.Accept(th, false)
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 16)
		nn, _ := conn.Read(th, buf, false)
		conn.Write(th, []byte("ack"), false)
		srvGot <- string(buf[:nn])
	}()
	th := newGoThread()
	conn, err := n.Connect(th, "db")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(th, []byte("query"), false)
	if got := <-srvGot; got != "query" {
		t.Fatalf("server got %q", got)
	}
	buf := make([]byte, 8)
	nn, _ := conn.Read(th, buf, false)
	if string(buf[:nn]) != "ack" {
		t.Fatalf("client got %q", buf[:nn])
	}
	l.Close()
	if _, err := n.Connect(th, "db"); err != ErrNoListen {
		t.Fatalf("connect after close: %v", err)
	}
	if _, err := l.Accept(th, false); err != ErrClosed {
		t.Fatalf("accept after close: %v", err)
	}
}
