package ipc

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/klock"
	"repro/internal/vm"
)

// System V IPC errors.
var (
	ErrNoEntry  = errors.New("ipc: no such identifier")    // EINVAL/EIDRM
	ErrTooBig   = errors.New("ipc: message too long")      // EINVAL
	ErrAgainIPC = errors.New("ipc: operation interrupted") // EINTR
	ErrExists   = errors.New("ipc: key exists")            // EEXIST
)

// MsgMax is the largest single message; MsgQueueCap bounds a queue's total
// bytes (msgmnb).
const (
	MsgMax      = 8192
	MsgQueueCap = 16384
)

// Msg is one System V message.
type Msg struct {
	Type int64
	Data []byte
}

// MsgQueue is a System V message queue: typed messages, blocking send on a
// full queue, blocking receive by type.
type MsgQueue struct {
	ID int

	mu    sync.Mutex
	msgs  []Msg
	bytes int
	rwait klock.WaitList
	swait klock.WaitList
	fi    *faultinject.Plan

	Sends atomic.Int64
	Recvs atomic.Int64
}

func newMsgQueue(id int, fi *faultinject.Plan) *MsgQueue {
	return &MsgQueue{ID: id, fi: fi}
}

// Send enqueues m, sleeping while the queue is full (msgsnd).
func (q *MsgQueue) Send(t klock.Thread, m Msg) error {
	if len(m.Data) > MsgMax || m.Type <= 0 {
		return ErrTooBig
	}
	q.mu.Lock()
	for q.bytes+len(m.Data) > MsgQueueCap {
		if err := sleepOn(q.fi, &q.mu, &q.swait, t, "msgsnd: queue full"); err != nil {
			q.mu.Unlock()
			return err
		}
	}
	data := make([]byte, len(m.Data))
	copy(data, m.Data)
	q.msgs = append(q.msgs, Msg{Type: m.Type, Data: data})
	q.bytes += len(m.Data)
	q.rwait.WakeAll()
	q.mu.Unlock()
	q.Sends.Add(1)
	return nil
}

// Recv dequeues the first message of the given type (0 matches any),
// sleeping while none is available (msgrcv).
func (q *MsgQueue) Recv(t klock.Thread, typ int64) (Msg, error) {
	q.mu.Lock()
	for {
		for i, m := range q.msgs {
			if typ == 0 || m.Type == typ {
				q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
				q.bytes -= len(m.Data)
				q.swait.WakeAll()
				q.mu.Unlock()
				q.Recvs.Add(1)
				return m, nil
			}
		}
		if err := sleepOn(q.fi, &q.mu, &q.rwait, t, "msgrcv: queue empty"); err != nil {
			q.mu.Unlock()
			return Msg{}, err
		}
	}
}

// Len returns the number of queued messages.
func (q *MsgQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}

// SemSet is a System V semaphore set. Operations with negative deltas
// sleep until the value can absorb them — synchronization that always
// costs kernel interaction, the System V weakness of paper §2.
type SemSet struct {
	ID int

	mu      sync.Mutex
	vals    []int
	waiters klock.WaitList
	fi      *faultinject.Plan

	Ops atomic.Int64
}

func newSemSet(id, n int, fi *faultinject.Plan) *SemSet {
	return &SemSet{ID: id, vals: make([]int, n), fi: fi}
}

// Op applies delta to semaphore idx (semop): a negative delta sleeps until
// the value stays non-negative; a positive delta wakes every sleeper to
// re-evaluate its own condition. Waiters on different indices share the
// wait list, so each wake is addressed: a waiter whose condition is still
// false simply re-registers, and nobody's wakeup can be stolen.
func (s *SemSet) Op(t klock.Thread, idx, delta int) error {
	if idx < 0 || idx >= len(s.vals) {
		return ErrNoEntry
	}
	s.Ops.Add(1)
	s.mu.Lock()
	for s.vals[idx]+delta < 0 {
		if err := sleepOn(s.fi, &s.mu, &s.waiters, t, "semop: would go negative"); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.vals[idx] += delta
	if delta > 0 {
		s.waiters.WakeAll()
	}
	s.mu.Unlock()
	return nil
}

// Val returns the current value of semaphore idx.
func (s *SemSet) Val(idx int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < 0 || idx >= len(s.vals) {
		return -1
	}
	return s.vals[idx]
}

// ShmSeg is a System V shared-memory segment: a region attachable into any
// address space. The registry holds one region attachment so the segment
// survives while detached from every process.
type ShmSeg struct {
	ID  int
	Key int
	Reg *vm.Region
	Att atomic.Int32 // live attachments
}

// Registry is the kernel's System V IPC namespace.
type Registry struct {
	mu     sync.Mutex
	fi     *faultinject.Plan
	nextID int
	msgqs  map[int]*MsgQueue
	msgKey map[int]int
	sems   map[int]*SemSet
	semKey map[int]int
	shms   map[int]*ShmSeg
	shmKey map[int]int
}

// NewRegistry creates an empty IPC namespace.
func NewRegistry() *Registry {
	return &Registry{
		msgqs: map[int]*MsgQueue{}, msgKey: map[int]int{},
		sems: map[int]*SemSet{}, semKey: map[int]int{},
		shms: map[int]*ShmSeg{}, shmKey: map[int]int{},
	}
}

// SetFault arms the namespace with a fault plan; queues and semaphore
// sets created afterwards inherit it. Call at boot, before user code runs.
func (r *Registry) SetFault(fi *faultinject.Plan) {
	r.mu.Lock()
	r.fi = fi
	r.mu.Unlock()
}

// Msgget returns the id of the queue with the given key, creating it if
// absent (key 0 always creates a fresh private queue).
func (r *Registry) Msgget(key int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if key != 0 {
		if id, ok := r.msgKey[key]; ok {
			return id
		}
	}
	r.nextID++
	q := newMsgQueue(r.nextID, r.fi)
	r.msgqs[q.ID] = q
	if key != 0 {
		r.msgKey[key] = q.ID
	}
	return q.ID
}

// Msgq looks up a queue by id.
func (r *Registry) Msgq(id int) (*MsgQueue, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.msgqs[id]
	if !ok {
		return nil, ErrNoEntry
	}
	return q, nil
}

// Semget returns the id of the semaphore set with the given key, creating
// an n-semaphore set if absent.
func (r *Registry) Semget(key, n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if key != 0 {
		if id, ok := r.semKey[key]; ok {
			return id
		}
	}
	r.nextID++
	s := newSemSet(r.nextID, n, r.fi)
	r.sems[s.ID] = s
	if key != 0 {
		r.semKey[key] = s.ID
	}
	return s.ID
}

// Sem looks up a semaphore set by id.
func (r *Registry) Sem(id int) (*SemSet, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sems[id]
	if !ok {
		return nil, ErrNoEntry
	}
	return s, nil
}

// Shmget returns the id of the shared segment with the given key,
// creating a pages-sized segment if absent. mem is the machine memory the
// region allocates from.
func (r *Registry) Shmget(key, pages int, newRegion func(pages int) *vm.Region) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if key != 0 {
		if id, ok := r.shmKey[key]; ok {
			return id
		}
	}
	r.nextID++
	seg := &ShmSeg{ID: r.nextID, Key: key, Reg: newRegion(pages)}
	r.shms[seg.ID] = seg
	if key != 0 {
		r.shmKey[key] = seg.ID
	}
	return seg.ID
}

// Shm looks up a segment by id.
func (r *Registry) Shm(id int) (*ShmSeg, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.shms[id]
	if !ok {
		return nil, ErrNoEntry
	}
	return s, nil
}

// ShmRemove deletes the segment id (shmctl IPC_RMID); its region is
// detached from the registry's hold, so memory dies with the last
// detachment.
func (r *Registry) ShmRemove(id int) error {
	r.mu.Lock()
	seg, ok := r.shms[id]
	if !ok {
		r.mu.Unlock()
		return ErrNoEntry
	}
	delete(r.shms, id)
	if seg.Key != 0 {
		delete(r.shmKey, seg.Key)
	}
	r.mu.Unlock()
	seg.Reg.Detach()
	return nil
}
