package ipc

import (
	"errors"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/klock"
)

// Socket-layer errors.
var (
	ErrAddrInUse = errors.New("ipc: address already in use") // EADDRINUSE
	ErrNoListen  = errors.New("ipc: connection refused")     // ECONNREFUSED
	ErrClosed    = errors.New("ipc: listener closed")
)

// Listener accepts stream connections on a name — an abstract-namespace
// UNIX-domain listening socket.
type Listener struct {
	name    string
	net     *NetNames
	mu      sync.Mutex
	pending []fs.Stream
	waiters klock.WaitList
	closed  bool
}

// Accept blocks until a client connects, returning the server-side stream.
// A pending signal breaks the wait with ErrIntr.
func (l *Listener) Accept(t klock.Thread) (fs.Stream, error) {
	l.mu.Lock()
	for {
		if len(l.pending) > 0 {
			s := l.pending[0]
			l.pending = l.pending[1:]
			l.mu.Unlock()
			return s, nil
		}
		if l.closed {
			l.mu.Unlock()
			return nil, ErrClosed
		}
		if err := sleepOn(l.net.fi, &l.mu, &l.waiters, t, "accept: wait for connection"); err != nil {
			l.mu.Unlock()
			return nil, err
		}
	}
}

// Close stops the listener and wakes pending accepts.
func (l *Listener) Close() {
	l.mu.Lock()
	l.closed = true
	l.waiters.WakeAll()
	l.mu.Unlock()
	l.net.mu.Lock()
	delete(l.net.listeners, l.name)
	l.net.mu.Unlock()
}

// NetNames is the abstract socket namespace.
type NetNames struct {
	mu        sync.Mutex
	fi        *faultinject.Plan
	listeners map[string]*Listener
}

// NewNetNames creates an empty namespace.
func NewNetNames() *NetNames {
	return &NetNames{listeners: map[string]*Listener{}}
}

// SetFault arms the namespace with a fault plan: accepts and the pipes of
// subsequently connected stream pairs inherit it. Call at boot.
func (n *NetNames) SetFault(fi *faultinject.Plan) {
	n.mu.Lock()
	n.fi = fi
	n.mu.Unlock()
}

// Listen binds a listener to name.
func (n *NetNames) Listen(name string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[name]; ok {
		return nil, ErrAddrInUse
	}
	l := &Listener{name: name, net: n}
	n.listeners[name] = l
	return l, nil
}

// Connect establishes a stream to the listener bound at name, returning
// the client-side stream.
func (n *NetNames) Connect(t klock.Thread, name string) (fs.Stream, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	fi := n.fi
	n.mu.Unlock()
	if !ok {
		return nil, ErrNoListen
	}
	client, server := socketPair(fi)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrNoListen
	}
	l.pending = append(l.pending, server)
	l.waiters.WakeOne()
	l.mu.Unlock()
	return client, nil
}
