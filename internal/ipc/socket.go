package ipc

import (
	"errors"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/klock"
)

// Socket-layer errors.
var (
	ErrAddrInUse = errors.New("ipc: address already in use") // EADDRINUSE
	ErrNoListen  = errors.New("ipc: connection refused")     // ECONNREFUSED
	ErrClosed    = errors.New("ipc: listener closed")
)

// Listener accepts stream connections on a name — an abstract-namespace
// UNIX-domain listening socket. It lives behind a descriptor like any
// other stream (the kernel installs it in the fd table), implements
// fs.Pollable (PollIn = backlog non-empty), and blocks through its event
// queue like the pipes do. Its fs.Stream Read/Write reject with EBADF:
// a listening socket moves no data.
type Listener struct {
	name    string
	net     *NetNames
	fi      *faultinject.Plan
	ps      *PollStats
	mu      sync.Mutex
	pending []fs.Stream
	q       evQueue
	closed  bool
}

// Accept blocks until a client connects, returning the server-side stream.
// A pending signal breaks the wait with ErrIntr; with nonblock an empty
// backlog returns fs.ErrAgain instead of sleeping.
func (l *Listener) Accept(t klock.Thread, nonblock bool) (fs.Stream, error) {
	l.mu.Lock()
	for {
		if len(l.pending) > 0 {
			s := l.pending[0]
			l.pending = l.pending[1:]
			if len(l.pending) > 0 {
				// Backlog left over: hand it to the next sleeping acceptor.
				l.q.baton(l.ps)
			}
			l.mu.Unlock()
			return s, nil
		}
		if l.closed {
			l.mu.Unlock()
			return nil, ErrClosed
		}
		if nonblock {
			l.mu.Unlock()
			return nil, fs.ErrAgain
		}
		if err := l.q.waitOn(l.fi, &l.mu, t, "accept: wait for connection"); err != nil {
			l.mu.Unlock()
			return nil, err
		}
	}
}

// Close stops the listener — a terminal transition: wake pending accepts
// (they return ErrClosed) and every poller (PollHup).
func (l *Listener) Close() {
	l.mu.Lock()
	l.closed = true
	l.q.wake(l.ps, true)
	l.mu.Unlock()
	l.net.mu.Lock()
	delete(l.net.listeners, l.name)
	l.net.mu.Unlock()
}

// Read implements fs.Stream: a listening socket moves no data.
func (l *Listener) Read(klock.Thread, []byte, bool) (int, error) {
	return 0, fs.ErrBadFd
}

// Write implements fs.Stream: a listening socket moves no data.
func (l *Listener) Write(klock.Thread, []byte, bool) (int, error) {
	return 0, fs.ErrBadFd
}

// Ready implements fs.Pollable: PollIn when a connection is waiting in the
// backlog (the poll-driven accept loop's signal), PollHup once closed.
func (l *Listener) Ready() uint16 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var m uint16
	if len(l.pending) > 0 {
		m |= fs.PollIn
	}
	if l.closed {
		m |= fs.PollIn | fs.PollHup
	}
	return m
}

// PollRegister implements fs.Pollable.
func (l *Listener) PollRegister(w *fs.PollWaiter) {
	l.mu.Lock()
	l.q.register(w)
	l.mu.Unlock()
}

// PollUnregister implements fs.Pollable.
func (l *Listener) PollUnregister(w *fs.PollWaiter) {
	l.mu.Lock()
	l.q.unregister(w)
	l.mu.Unlock()
}

// NetNames is the abstract socket namespace.
type NetNames struct {
	mu        sync.Mutex
	fi        *faultinject.Plan
	ps        *PollStats
	listeners map[string]*Listener
}

// NewNetNames creates an empty namespace.
func NewNetNames() *NetNames {
	return &NetNames{listeners: map[string]*Listener{}}
}

// SetFault arms the namespace with a fault plan: accepts and the pipes of
// subsequently connected stream pairs inherit it. Call at boot.
func (n *NetNames) SetFault(fi *faultinject.Plan) {
	n.mu.Lock()
	n.fi = fi
	n.mu.Unlock()
}

// SetPollStats wires the namespace's readiness counters: listeners and the
// pipes of subsequently connected stream pairs publish into ps. Call at
// boot.
func (n *NetNames) SetPollStats(ps *PollStats) {
	n.mu.Lock()
	n.ps = ps
	n.mu.Unlock()
}

// Listen binds a listener to name.
func (n *NetNames) Listen(name string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[name]; ok {
		return nil, ErrAddrInUse
	}
	l := &Listener{name: name, net: n, fi: n.fi, ps: n.ps}
	n.listeners[name] = l
	return l, nil
}

// Connect establishes a stream to the listener bound at name, returning
// the client-side stream. Joining the backlog is a readiness transition:
// a sleeping acceptor is released and the listener's pollers are notified.
func (n *NetNames) Connect(t klock.Thread, name string) (fs.Stream, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	fi, ps := n.fi, n.ps
	n.mu.Unlock()
	if !ok {
		return nil, ErrNoListen
	}
	client, server := socketPair(fi, ps)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrNoListen
	}
	l.pending = append(l.pending, server)
	l.q.wake(ps, false)
	l.mu.Unlock()
	return client, nil
}
