package ipc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fs"
)

// pollThread models the process layer's coalescing wake token: Unblock
// never blocks, extra wakes collapse into one. PollWaiter.Notify runs
// under the stream's own mutex and depends on exactly this property.
type pollThread struct{ ch chan struct{} }

func newPollThread() *pollThread     { return &pollThread{ch: make(chan struct{}, 1)} }
func (g *pollThread) Block(_ string) { <-g.ch }
func (g *pollThread) Unblock() {
	select {
	case g.ch <- struct{}{}:
	default:
	}
}

// waitSleepers blocks until q has exactly n sleeping threads (the only way
// a test can know a reader goroutine has actually gone down on the queue).
func waitSleepers(t *testing.T, mu *sync.Mutex, q *evQueue, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := q.sleepers.Len()
		mu.Unlock()
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d sleepers (have %d)", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipeSingleWakePerTransition is the thundering-herd regression test:
// a write that makes an empty pipe readable wakes exactly one of the
// sleeping readers, not all of them — the historical wakeup(&pipe)
// broadcast woke every sleeper to fight over one chunk.
func TestPipeSingleWakePerTransition(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	const nReaders = 3
	results := make(chan int, nReaders)
	for i := 0; i < nReaders; i++ {
		g := newGoThread()
		go func() {
			buf := make([]byte, 1)
			n, _ := r.Read(g, buf, false)
			results <- n
		}()
	}
	waitSleepers(t, &p.mu, &p.rq, nReaders)

	th := newGoThread()
	w.Write(th, []byte("x"), false)
	if n := <-results; n != 1 {
		t.Fatalf("woken reader got %d bytes", n)
	}
	if rw, _ := p.WakeCounts(); rw != 1 {
		t.Errorf("one write to %d sleepers issued %d reader wakes, want exactly 1", nReaders, rw)
	}
	// The other readers must still be asleep — no byte arrived for them.
	waitSleepers(t, &p.mu, &p.rq, nReaders-1)

	w.Write(th, []byte("y"), false)
	<-results
	w.Write(th, []byte("z"), false)
	<-results
	if rw, _ := p.WakeCounts(); rw != nReaders {
		t.Errorf("%d single-byte writes issued %d reader wakes, want %d (one per transition)",
			nReaders, rw, nReaders)
	}
}

// TestPipeReadBatonPassing: one write carrying enough data for every
// sleeping reader releases them one at a time through the baton — each
// wake is productive (the woken reader finds data), and the whole chain
// publishes only the single empty→nonempty transition to pollers.
func TestPipeReadBatonPassing(t *testing.T) {
	p := NewPipe()
	p.PS = &PollStats{}
	r, w := p.Ends()
	const nReaders = 3
	results := make(chan int, nReaders)
	for i := 0; i < nReaders; i++ {
		g := newGoThread()
		go func() {
			buf := make([]byte, 1)
			n, _ := r.Read(g, buf, false)
			results <- n
		}()
	}
	waitSleepers(t, &p.mu, &p.rq, nReaders)

	th := newGoThread()
	if n, err := w.Write(th, []byte("abc"), false); n != 3 || err != nil {
		t.Fatalf("write = %d, %v", n, err)
	}
	for i := 0; i < nReaders; i++ {
		if n := <-results; n != 1 {
			t.Fatalf("reader got %d bytes, want 1", n)
		}
	}
	if rw, _ := p.WakeCounts(); rw != nReaders {
		t.Errorf("baton chain issued %d wakes, want %d (every wake productive)", rw, nReaders)
	}
	if tr := p.PS.Transitions.Load(); tr != 1 {
		t.Errorf("chain published %d transitions, want 1 (batons are not transitions)", tr)
	}
}

// TestPipeCloseBroadcast: close is a terminal transition — every sleeping
// reader is released at once and observes EOF.
func TestPipeCloseBroadcast(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	const nReaders = 2
	results := make(chan int, nReaders)
	for i := 0; i < nReaders; i++ {
		g := newGoThread()
		go func() {
			buf := make([]byte, 4)
			n, _ := r.Read(g, buf, false)
			results <- n
		}()
	}
	waitSleepers(t, &p.mu, &p.rq, nReaders)
	w.Close()
	for i := 0; i < nReaders; i++ {
		if n := <-results; n != 0 {
			t.Errorf("reader woken by close got %d bytes, want 0 (EOF)", n)
		}
	}
}

// TestPipeNonblock: EAGAIN instead of sleeping, in both directions.
func TestPipeNonblock(t *testing.T) {
	p := NewPipe()
	r, w := p.Ends()
	th := newGoThread()
	if _, err := r.Read(th, make([]byte, 4), true); err != fs.ErrAgain {
		t.Errorf("nonblock read of empty pipe: %v, want ErrAgain", err)
	}
	if n, err := w.Write(th, make([]byte, PipeCap), true); n != PipeCap || err != nil {
		t.Fatalf("fill: %d, %v", n, err)
	}
	if _, err := w.Write(th, []byte("x"), true); err != fs.ErrAgain {
		t.Errorf("nonblock write to full pipe: %v, want ErrAgain", err)
	}
	// A nonblock write that moves some bytes before filling reports the
	// short count, not EAGAIN.
	buf := make([]byte, 4)
	r.Read(th, buf, false)
	if n, err := w.Write(th, make([]byte, 100), true); n != 4 || err != nil {
		t.Errorf("partial nonblock write = %d, %v; want 4, nil", n, err)
	}
}

// TestListenerNonblockAndReadiness: accept honours nonblock, and the
// listener's readiness mask tracks its backlog and closure.
func TestListenerNonblockAndReadiness(t *testing.T) {
	net := NewNetNames()
	l, err := net.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	th := newGoThread()
	if _, err := l.Accept(th, true); err != fs.ErrAgain {
		t.Errorf("nonblock accept with empty backlog: %v, want ErrAgain", err)
	}
	if m := l.Ready(); m != 0 {
		t.Errorf("idle listener ready mask %#x, want 0", m)
	}
	if _, err := net.Connect(th, "svc"); err != nil {
		t.Fatal(err)
	}
	if m := l.Ready(); m&fs.PollIn == 0 {
		t.Errorf("listener with backlog ready mask %#x, want PollIn", m)
	}
	if _, err := l.Accept(th, true); err != nil {
		t.Errorf("nonblock accept with backlog: %v", err)
	}
	l.Close()
	if m := l.Ready(); m&fs.PollHup == 0 {
		t.Errorf("closed listener ready mask %#x, want PollHup", m)
	}
}

// TestReadinessConservationStormRace hammers a socket pair with concurrent
// writers, readers, and registered pollers (run under -race in tier 1) and
// then audits the conservation laws of the readiness layer: every byte
// written is read, every sleeper wake the queues issued is in the
// aggregate counter, and every poller notification the queues published
// was delivered to a registered waiter.
func TestReadinessConservationStormRace(t *testing.T) {
	ps := &PollStats{}
	a, b := socketPair(nil, ps)
	const nWriters = 4
	const perWriter = 16 * 1024

	// Pollers watch the b endpoint throughout the storm.
	const nPollers = 2
	waiters := make([]*fs.PollWaiter, nPollers)
	done := make(chan struct{})
	var pollerWG sync.WaitGroup
	pb := b.(fs.Pollable)
	for i := 0; i < nPollers; i++ {
		g := newPollThread()
		w := &fs.PollWaiter{T: g}
		waiters[i] = w
		pb.PollRegister(w)
		pollerWG.Add(1)
		go func() {
			defer pollerWG.Done()
			for {
				select {
				case <-g.ch:
					_ = pb.Ready() // level-triggered re-check
				case <-done:
					return
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for i := 0; i < nWriters; i++ {
		writerWG.Add(1)
		go func(seed byte) {
			defer writerWG.Done()
			g := newGoThread()
			buf := make([]byte, 37) // deliberately misaligned with PipeCap
			for k := range buf {
				buf[k] = seed
			}
			sent := 0
			for sent < perWriter {
				n := len(buf)
				if perWriter-sent < n {
					n = perWriter - sent
				}
				m, err := a.Write(g, buf[:n], false)
				if err != nil {
					t.Errorf("storm write: %v", err)
					return
				}
				sent += m
			}
		}(byte(i))
	}

	var total atomic.Int64
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		g := newGoThread()
		buf := make([]byte, 101)
		for {
			n, err := b.Read(g, buf, false)
			if err != nil {
				t.Errorf("storm read: %v", err)
				return
			}
			if n == 0 {
				return // EOF: all writers closed
			}
			total.Add(int64(n))
		}
	}()

	// Close a once every writer is finished, so the reader sees EOF
	// exactly after the last byte; then let the reader drain.
	writerWG.Wait()
	a.Close()
	readerWG.Wait()

	close(done)
	pollerWG.Wait()
	for _, w := range waiters {
		pb.PollUnregister(w)
	}

	if got := total.Load(); got != nWriters*perWriter {
		t.Errorf("conservation: read %d bytes, wrote %d", got, nWriters*perWriter)
	}
	var notified int64
	for _, w := range waiters {
		notified += w.Notified.Load()
	}
	if pw := ps.PollerWakes.Load(); pw != notified {
		t.Errorf("conservation: queues published %d poller wakes, waiters received %d", pw, notified)
	}
	var queueWakes int64
	for _, p := range []*Pipe{a.(*duplexEnd).in, a.(*duplexEnd).out} {
		r, w := p.WakeCounts()
		queueWakes += r + w
	}
	if sw := ps.SleeperWakes.Load(); sw != queueWakes {
		t.Errorf("conservation: queues issued %d sleeper wakes, aggregate says %d", queueWakes, sw)
	}
}
