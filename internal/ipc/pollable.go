package ipc

// This file is the waitable-descriptor substrate: every byte stream the
// kernel exposes (pipe ends, socket-pair endpoints, listeners) routes both
// its blocking *and* its wakeups through one evQueue per direction, and
// publishes every readiness transition — write makes readable, read makes
// writable, close makes EOF/EPIPE, a connection joins the backlog — to the
// sleepers and the poll(2) registrations on that queue. Streams no longer
// touch their wait lists directly (a make-lint rule holds the line); the
// queue is the single place wake policy lives:
//
//   - Sleepers are woken one at a time on an ordinary transition (the
//     FIFO baton: the woken thread re-wakes the next sleeper if any of the
//     condition is left over when it is done), and all at once only on a
//     terminal transition (close), where every sleeper's condition — EOF,
//     EPIPE, ErrClosed — is now true. This replaces the historical
//     wakeup(&pipe) broadcast after every buffer chunk, which woke every
//     sleeping reader to fight over one chunk of data.
//   - Pollers are level-triggered: every transition notifies all of them,
//     and each re-checks Ready, so a notification whose condition was
//     consumed first is just a spurious wake.

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/klock"
)

// PollStats aggregates the readiness-notification counters of every stream
// wired to it. The kernel arms one per system at boot and surfaces it
// through Stats(); the conservation storms audit it directly.
type PollStats struct {
	Transitions  atomic.Int64 // readiness transitions published
	SleeperWakes atomic.Int64 // blocked stream operations released
	PollerWakes  atomic.Int64 // poll registrations notified
}

// evQueue is one direction's event wait queue: the threads blocked in a
// read/write/accept on the stream plus the poll(2) registrations watching
// it. Every field is guarded by the owning stream's mutex.
type evQueue struct {
	sleepers klock.WaitList
	pollers  []*fs.PollWaiter
	wakes    atomic.Int64 // sleeper wakeups issued (thundering-herd audit)
}

// register subscribes w. Owner's mutex held.
func (q *evQueue) register(w *fs.PollWaiter) {
	q.pollers = append(q.pollers, w)
}

// unregister withdraws w (no-op if absent). Owner's mutex held.
func (q *evQueue) unregister(w *fs.PollWaiter) {
	for i, x := range q.pollers {
		if x == w {
			last := len(q.pollers) - 1
			q.pollers[i] = q.pollers[last]
			q.pollers[last] = nil
			q.pollers = q.pollers[:last]
			return
		}
	}
}

// wake publishes one readiness transition on the queue: release sleepers —
// all of them when broadcast (terminal transitions: every sleeper's
// condition holds), otherwise exactly one (the baton) — and notify every
// registered poller. Owner's mutex held.
func (q *evQueue) wake(ps *PollStats, broadcast bool) {
	if ps != nil {
		ps.Transitions.Add(1)
	}
	n := 0
	if broadcast {
		n = q.sleepers.Len()
		q.sleepers.WakeAll()
	} else if q.sleepers.Len() > 0 {
		n = 1
		q.sleepers.WakeOne()
	}
	if n > 0 {
		q.wakes.Add(int64(n))
		if ps != nil {
			ps.SleeperWakes.Add(int64(n))
		}
	}
	for _, w := range q.pollers {
		w.Notify()
	}
	if ps != nil && len(q.pollers) > 0 {
		ps.PollerWakes.Add(int64(len(q.pollers)))
	}
}

// baton hands a leftover condition to the next sleeper without
// republishing a transition: pollers are level-triggered and were already
// notified when the condition appeared, so only a sleeper that consumed
// part of it needs to pass the remainder on. Owner's mutex held.
func (q *evQueue) baton(ps *PollStats) {
	if q.sleepers.Len() == 0 {
		return
	}
	q.sleepers.WakeOne()
	q.wakes.Add(1)
	if ps != nil {
		ps.SleeperWakes.Add(1)
	}
}

// waitOn blocks t on the queue until the next transition (or a signal, or
// an injected spurious wake). Called with mu held and the condition false;
// the caller loops.
func (q *evQueue) waitOn(fi *faultinject.Plan, mu *sync.Mutex, t klock.Thread, reason string) error {
	return sleepOn(fi, mu, &q.sleepers, t, reason)
}

// SleeperWakes returns the number of sleeper wakeups the queue has issued
// (the wake-count assertions of the thundering-herd tests).
func (q *evQueue) SleeperWakes() int64 { return q.wakes.Load() }
