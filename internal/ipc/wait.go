package ipc

import (
	"errors"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/klock"
)

// ErrIntr reports a blocking IPC sleep broken by signal delivery — the
// kernel maps it to EINTR. Whether the caller then sees the error is the
// gateway's restart policy, not the IPC layer's.
var ErrIntr = errors.New("ipc: interrupted sleep")

// sleepOn is the one blocking point of the IPC layer: called with mu held
// and the condition false, it registers t on list, sleeps, and re-acquires
// mu; the caller re-evaluates its condition in a loop. It returns ErrIntr
// when a signal is pending — checked both before the sleep (the pause(2)
// race: a signal posted a moment earlier must not be lost) and after every
// wake (a poke from the signal layer is a wake with the condition still
// false). A fault plan armed at SiteIPCSleep converts some sleeps into
// spurious wakeups: sleepOn returns nil without blocking and the caller's
// loop re-checks, which is exactly what it must tolerate anyway.
func sleepOn(fi *faultinject.Plan, mu *sync.Mutex, list *klock.WaitList, t klock.Thread, reason string) error {
	sig, _ := t.(klock.Interruptible)
	if sig != nil && sig.SignalPending() {
		return ErrIntr
	}
	if hit, _ := fi.Decide(faultinject.SiteIPCSleep, 0); hit {
		fi.Note(faultinject.SiteIPCSleep, faultinject.FaultWakeup, 0)
		return nil
	}
	list.Append(t)
	mu.Unlock()
	t.Block(reason)
	mu.Lock()
	// Whatever woke us — targeted wakeup, WakeAll, or a signal poke — the
	// registration must not linger, or a later WakeOne would spend its
	// wakeup on this stale entry.
	list.Remove(t)
	if sig != nil && sig.SignalPending() {
		return ErrIntr
	}
	return nil
}
