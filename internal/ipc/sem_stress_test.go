package ipc

import (
	"testing"
	"time"
)

// Regression stress for the semop ping-pong deadlock: two parties
// alternate P/V on two semaphores of one set at high volume.
func TestSemPingPongStress(t *testing.T) {
	r := NewRegistry()
	s, _ := r.Sem(r.Semget(0, 2))
	const rounds = 200000
	done := make(chan struct{})
	go func() {
		th := newGoThread()
		for i := 0; i < rounds; i++ {
			if err := s.Op(th, 0, -1); err != nil {
				t.Errorf("ponger P: %v", err)
				return
			}
			s.Op(th, 1, 1)
		}
		done <- struct{}{}
	}()
	go func() {
		th := newGoThread()
		for i := 0; i < rounds; i++ {
			s.Op(th, 0, 1)
			if err := s.Op(th, 1, -1); err != nil {
				t.Errorf("pinger P: %v", err)
				return
			}
		}
		done <- struct{}{}
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("ping-pong deadlocked (vals: %d %d)", s.Val(0), s.Val(1))
		}
	}
}
