package klock

import "sync/atomic"

// MRLock is the shared read lock of paper §6.2, protecting the share
// group's pregion list. Any number of processes may scan the list (page
// fault, pager); a process that needs to update the list — or what it
// points to — must wait until all scanners are done, and excludes scanners
// while it works.
//
// The logical structure still mirrors the shaddr_t fields (s_acclck /
// s_acccnt / s_waitcnt / s_updwait), but the reader count is distributed:
// instead of one s_acccnt word that every fault-path acquisition bounces
// between CPU caches, each CPU increments its own padded slot and checks
// for a pending update afterwards (increment-then-check). An updater
// announces itself (wDrain), sums the slots, and sleeps until the last
// reader's decrement finds the sum at zero. Fault-path readers on
// different CPUs therefore never write the same cache line, which is what
// lets the resident-fault storm scale.
//
// Updates are preferred over new readers so an updater is not starved by a
// stream of page faults; the paper notes updates (fork, exec, mmap, sbrk)
// are rare compared with scans, so the shared lock is almost always free.
type MRLock struct {
	slots  [mrSlots]mrSlot // distributed reader counts, one per CPU
	wstate atomic.Int32    // wNone, wDrain (update waiting), wActive (update holds)

	// Topology shaping (ConfigureTopology): when set, slotOf groups the
	// slot space by NUMA node so CPUs that share a slot — inevitable once
	// the machine outgrows mrSlots — are always node-mates, and a reader's
	// slot cache line never ping-pongs across the interconnect. Written
	// once at group creation, before the lock is shared, so plain ints are
	// safe.
	cpusPerNode  int
	slotsPerNode int

	acclck  Spin // guards the queues, waitcnt, and wstate transitions
	waitcnt int  // threads sleeping on the lock
	drainer *mrWaiter
	rwait   []*mrWaiter
	wwait   []*mrWaiter

	RLocks  atomic.Int64 // read acquisitions
	WLocks  atomic.Int64 // update acquisitions
	RSleeps atomic.Int64 // read acquisitions that had to sleep
	WSleeps atomic.Int64 // update acquisitions that had to sleep
}

// mrSlots is the number of distributed reader slots. By default CPU c uses
// slot c&(mrSlots-1); after ConfigureTopology the slot space is carved into
// per-node groups. The queue-granted path and the no-affinity entry points
// use slot 0. 64 slots keeps the fault path write-private up to a 64-CPU
// machine; at 256 CPUs four node-mates share each slot, which is cheap
// sharing (same node) rather than interconnect traffic.
const mrSlots = 64

// mrSlot is one padded reader count: the padding keeps neighbouring
// slots off the same cache line, which is the entire point.
type mrSlot struct {
	n atomic.Int64
	_ [56]byte
}

const (
	wNone   int32 = iota // no update pending: readers take the fast path
	wDrain               // an updater waits for the reader sum to drain
	wActive              // an updater holds the lock
)

// mrWaiter is one thread sleeping on the lock. granted is written under
// acclck; wake tokens are level-triggered (Thread.Unblock buffers one), so
// a woken sleeper re-blocks until its waiter is marked granted.
type mrWaiter struct {
	t       Thread
	granted bool
}

// ConfigureTopology shapes the reader-slot mapping for a machine of ncpu
// CPUs over nodes locality domains: node i's CPUs are confined to the slot
// block [i*slotsPerNode, (i+1)*slotsPerNode). Must be called before the
// lock is shared (group creation), since the fields are unsynchronized.
func (l *MRLock) ConfigureTopology(ncpu, nodes int) {
	if ncpu < 1 || nodes <= 1 {
		l.cpusPerNode, l.slotsPerNode = 0, 0
		return
	}
	if nodes > ncpu {
		nodes = ncpu
	}
	l.cpusPerNode = (ncpu + nodes - 1) / nodes
	l.slotsPerNode = mrSlots / nodes
	if l.slotsPerNode < 1 {
		l.slotsPerNode = 1
	}
}

// slotOf maps a CPU to its reader slot. Unshaped: a plain modulo hash.
// Shaped: the node picks a block of slots and the CPU's intra-node index
// picks within it, so slot-sharing CPUs are always on the same node.
func (l *MRLock) slotOf(cpu int) int {
	if cpu <= 0 {
		return 0
	}
	if l.slotsPerNode == 0 {
		return cpu & (mrSlots - 1)
	}
	node := cpu / l.cpusPerNode
	return (node*l.slotsPerNode + (cpu%l.cpusPerNode)%l.slotsPerNode) % mrSlots
}

// RLock acquires the lock for scanning with no CPU affinity (slot 0).
// Multiple readers may hold it. Pair with RUnlock.
func (l *MRLock) RLock(t Thread) { l.RLockOn(t, 0) }

// RUnlock releases a read hold taken by RLock.
func (l *MRLock) RUnlock() { l.RUnlockOn(0) }

// RLockOn acquires the lock for scanning, counting the hold on cpu's slot,
// and returns the slot the caller must pass to RUnlockOn. The fast path —
// no update pending — is one increment of a CPU-private word and one load:
// no spin lock, no shared store. cpu < 0 uses slot 0.
func (l *MRLock) RLockOn(t Thread, cpu int) int {
	l.RLocks.Add(1)
	slot := l.slotOf(cpu)
	if l.wstate.Load() == wNone {
		// Increment-then-check: publish the hold first, then re-examine.
		// Every interleaving with an updater's announce-then-sum is safe:
		// either the updater's sum sees our increment (it waits; we back
		// out and our decrement re-checks the drain), or our re-check sees
		// its announcement (we back out and queue).
		l.slots[slot].n.Add(1)
		if l.wstate.Load() == wNone {
			return slot
		}
		// An updater announced itself while we entered: back out and take
		// the slow path. The decrement may be the one that drains the sum
		// to zero, so it must perform the updater wakeup check.
		l.RUnlockOn(slot)
	}
	for {
		l.acclck.Lock()
		if l.wstate.Load() == wNone && len(l.wwait) == 0 && l.drainer == nil {
			// The update finished between our check and the queue; retry
			// the fast path rather than sleeping on a free lock.
			l.acclck.Unlock()
			l.slots[slot].n.Add(1)
			if l.wstate.Load() == wNone {
				return slot
			}
			l.RUnlockOn(slot)
			continue
		}
		w := &mrWaiter{t: t}
		l.rwait = append(l.rwait, w)
		l.waitcnt++
		l.acclck.Unlock()
		l.RSleeps.Add(1)
		for {
			t.Block("mrlock: wait for update to finish")
			l.acclck.Lock()
			granted := w.granted
			l.acclck.Unlock()
			if granted {
				// The releasing updater registered our hold on slot 0.
				return 0
			}
		}
	}
}

// RUnlockOn releases a read hold counted on slot (the value RLockOn
// returned). The last reader out hands the lock to a draining updater.
func (l *MRLock) RUnlockOn(slot int) {
	if l.slots[slot&(mrSlots-1)].n.Add(-1) < 0 {
		l.slots[slot&(mrSlots-1)].n.Add(1)
		panic("klock: RUnlock without read hold")
	}
	if l.wstate.Load() == wDrain {
		l.drainWake()
	}
}

// sumReaders totals the distributed slots. Only meaningful for an updater
// that has already announced wDrain (new readers back out), or under
// acclck for diagnostics.
func (l *MRLock) sumReaders() int64 {
	var n int64
	for i := range l.slots {
		n += l.slots[i].n.Load()
	}
	return n
}

// drainWake grants the lock to the draining updater if the reader sum has
// reached zero. Called by any decrement that observes wDrain; the acclck
// serializes it against the updater registering itself.
func (l *MRLock) drainWake() {
	l.acclck.Lock()
	if l.wstate.Load() != wDrain || l.drainer == nil || l.sumReaders() != 0 {
		l.acclck.Unlock()
		return
	}
	w := l.drainer
	l.drainer = nil
	l.waitcnt--
	l.wstate.Store(wActive)
	w.granted = true
	l.acclck.Unlock()
	w.t.Unblock()
}

// Lock acquires the lock for update, excluding all scanners.
func (l *MRLock) Lock(t Thread) {
	l.WLocks.Add(1)
	l.acclck.Lock()
	if l.wstate.Load() == wNone {
		// First updater: announce, then count the readers already inside.
		l.wstate.Store(wDrain)
		if l.sumReaders() == 0 {
			l.wstate.Store(wActive)
			l.acclck.Unlock()
			return
		}
		w := &mrWaiter{t: t}
		l.drainer = w
		l.waitcnt++
		l.acclck.Unlock()
		l.WSleeps.Add(1)
		l.sleep(t, w, "mrlock: wait for scanners to drain")
		return
	}
	// Another update is draining or active: FIFO queue behind it.
	w := &mrWaiter{t: t}
	l.wwait = append(l.wwait, w)
	l.waitcnt++
	l.acclck.Unlock()
	l.WSleeps.Add(1)
	l.sleep(t, w, "mrlock: wait for update to finish")
}

// sleep blocks until w is granted, absorbing stale level-triggered wake
// tokens (a signal poke can leave one buffered in the thread).
func (l *MRLock) sleep(t Thread, w *mrWaiter, reason string) {
	for {
		t.Block(reason)
		l.acclck.Lock()
		granted := w.granted
		l.acclck.Unlock()
		if granted {
			return
		}
	}
}

// Unlock releases an update hold, handing the lock to the next updater if
// one waits, otherwise admitting every waiting reader at once.
func (l *MRLock) Unlock() {
	l.acclck.Lock()
	if l.wstate.Load() != wActive {
		l.acclck.Unlock()
		panic("klock: Unlock without update hold")
	}
	if len(l.wwait) > 0 {
		w := l.wwait[0]
		l.wwait = l.wwait[1:]
		l.waitcnt--
		w.granted = true
		// wstate stays wActive: ownership passes directly.
		l.acclck.Unlock()
		w.t.Unblock()
		return
	}
	rs := l.rwait
	l.rwait = nil
	l.waitcnt -= len(rs)
	// Register the granted readers' holds (on slot 0) before reopening the
	// gate, so an updater arriving the instant wstate goes to wNone counts
	// them in its drain sum.
	if len(rs) > 0 {
		l.slots[0].n.Add(int64(len(rs)))
		for _, w := range rs {
			w.granted = true
		}
	}
	l.wstate.Store(wNone)
	l.acclck.Unlock()
	for _, w := range rs {
		w.t.Unblock()
	}
}

// Readers returns the number of current read holders (0 during an update).
func (l *MRLock) Readers() int {
	l.acclck.Lock()
	defer l.acclck.Unlock()
	if l.wstate.Load() == wActive {
		return 0
	}
	if n := l.sumReaders(); n > 0 {
		return int(n)
	}
	return 0
}

// UpdateHeld reports whether an update is in progress.
func (l *MRLock) UpdateHeld() bool { return l.wstate.Load() == wActive }

// WaitCount returns the number of threads sleeping on the lock.
func (l *MRLock) WaitCount() int {
	l.acclck.Lock()
	defer l.acclck.Unlock()
	return l.waitcnt
}
