package klock

import "sync/atomic"

// MRLock is the shared read lock of paper §6.2, protecting the share
// group's pregion list. Any number of processes may scan the list (page
// fault, pager); a process that needs to update the list — or what it
// points to — must wait until all scanners are done, and excludes scanners
// while it works.
//
// The structure mirrors the shaddr_t fields:
//
//	s_acclck  — spin lock guarding the counters  -> acclck
//	s_acccnt  — readers, or -1 while updating    -> acccnt
//	s_waitcnt — processes waiting for the lock   -> waitcnt
//	s_updwait — semaphore waiters sleep on       -> the rwait/wwait queues
//
// Updates are preferred over new readers so an updater is not starved by a
// stream of page faults; the paper notes updates (fork, exec, mmap, sbrk)
// are rare compared with scans, so the shared lock is almost always free.
type MRLock struct {
	acclck  Spin
	acccnt  int // readers holding the lock; -1 = update in progress
	waitcnt int // threads sleeping on the lock
	rwait   []Thread
	wwait   []Thread

	RLocks  atomic.Int64 // read acquisitions
	WLocks  atomic.Int64 // update acquisitions
	RSleeps atomic.Int64 // read acquisitions that had to sleep
	WSleeps atomic.Int64 // update acquisitions that had to sleep
}

// RLock acquires the lock for scanning. Multiple readers may hold it.
func (l *MRLock) RLock(t Thread) {
	l.RLocks.Add(1)
	l.acclck.Lock()
	if l.acccnt >= 0 && len(l.wwait) == 0 {
		l.acccnt++
		l.acclck.Unlock()
		return
	}
	l.waitcnt++
	l.rwait = append(l.rwait, t)
	l.acclck.Unlock()
	l.RSleeps.Add(1)
	t.Block("mrlock: wait for update to finish")
	// The waker granted us the read lock before Unblock.
}

// RUnlock releases a read hold. The last reader out hands the lock to a
// waiting updater, if any.
func (l *MRLock) RUnlock() {
	l.acclck.Lock()
	if l.acccnt <= 0 {
		l.acclck.Unlock()
		panic("klock: RUnlock without read hold")
	}
	l.acccnt--
	if l.acccnt == 0 && len(l.wwait) > 0 {
		w := l.wwait[0]
		l.wwait = l.wwait[1:]
		l.waitcnt--
		l.acccnt = -1
		l.acclck.Unlock()
		w.Unblock()
		return
	}
	l.acclck.Unlock()
}

// Lock acquires the lock for update, excluding all scanners.
func (l *MRLock) Lock(t Thread) {
	l.WLocks.Add(1)
	l.acclck.Lock()
	if l.acccnt == 0 {
		l.acccnt = -1
		l.acclck.Unlock()
		return
	}
	l.waitcnt++
	l.wwait = append(l.wwait, t)
	l.acclck.Unlock()
	l.WSleeps.Add(1)
	t.Block("mrlock: wait for scanners to drain")
}

// Unlock releases an update hold, handing the lock to the next updater if
// one waits, otherwise admitting every waiting reader at once.
func (l *MRLock) Unlock() {
	l.acclck.Lock()
	if l.acccnt != -1 {
		l.acclck.Unlock()
		panic("klock: Unlock without update hold")
	}
	if len(l.wwait) > 0 {
		w := l.wwait[0]
		l.wwait = l.wwait[1:]
		l.waitcnt--
		// acccnt stays -1: ownership passes directly.
		l.acclck.Unlock()
		w.Unblock()
		return
	}
	rs := l.rwait
	l.rwait = nil
	l.waitcnt -= len(rs)
	l.acccnt = len(rs)
	l.acclck.Unlock()
	for _, r := range rs {
		r.Unblock()
	}
}

// Readers returns the number of current read holders (0 during an update).
func (l *MRLock) Readers() int {
	l.acclck.Lock()
	defer l.acclck.Unlock()
	if l.acccnt < 0 {
		return 0
	}
	return l.acccnt
}

// UpdateHeld reports whether an update is in progress.
func (l *MRLock) UpdateHeld() bool {
	l.acclck.Lock()
	defer l.acclck.Unlock()
	return l.acccnt == -1
}

// WaitCount returns the number of threads sleeping on the lock.
func (l *MRLock) WaitCount() int {
	l.acclck.Lock()
	defer l.acclck.Unlock()
	return l.waitcnt
}
