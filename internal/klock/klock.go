// Package klock provides the kernel synchronization primitives the share
// group implementation is built from: spin locks (lock_t), sleeping
// semaphores (sema_t), and the shared read lock of paper §6.2 composed from
// a spin lock, two counters, and a semaphore — exactly the s_acclck /
// s_acccnt / s_waitcnt / s_updwait fields of the shared address block.
//
// Sleeping primitives operate on a Thread, the minimal interface a
// schedulable entity must provide. The process layer implements Thread so
// that sleeping in the kernel releases the simulated CPU (design goal 2 of
// paper §6: synchronization must proceed even though some members are not
// available for execution).
package klock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Thread is a schedulable entity that can be blocked and unblocked.
// Unblock may be called before Block; the pair must still rendezvous
// (no lost wakeups).
type Thread interface {
	// Block suspends the caller until Unblock is called. It must be
	// invoked only by the thread itself.
	Block(reason string)
	// Unblock makes a past or future Block return. One Unblock releases
	// exactly one Block.
	Unblock()
}

// Interruptible is a Thread whose kernel sleeps can be broken by signal
// delivery. Sleep loops built on WaitList check SignalPending after every
// wake so a poke from the signal layer turns into EINTR instead of a
// re-sleep.
type Interruptible interface {
	Thread
	// SignalPending reports whether an unmasked signal is pending.
	SignalPending() bool
}

// Spin is a busy-wait kernel lock (lock_t). Kernel spin locks protect short
// critical sections; the holder never sleeps.
type Spin struct {
	state      atomic.Int32
	Contention atomic.Int64 // acquisitions that had to spin
}

// Lock acquires the spin lock, busy-waiting until free.
func (s *Spin) Lock() {
	if s.state.CompareAndSwap(0, 1) {
		return
	}
	s.Contention.Add(1)
	for {
		for s.state.Load() != 0 {
			runtime.Gosched()
		}
		if s.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

// TryLock acquires the lock if it is free.
func (s *Spin) TryLock() bool { return s.state.CompareAndSwap(0, 1) }

// Unlock releases the spin lock.
func (s *Spin) Unlock() {
	if !s.state.CompareAndSwap(1, 0) {
		panic("klock: unlock of unlocked Spin")
	}
}

// WaitList is a FIFO of blocked threads, manipulated under the owner's
// own lock. Wakeups target specific threads, so — unlike a counting
// semaphore shared between waiters with different predicates — a wakeup
// can never be consumed by a waiter it was not meant for. The owner's
// pattern is:
//
//	mu.Lock()
//	for !condition {
//		list.Append(t)
//		mu.Unlock()
//		t.Block(reason)
//		mu.Lock()
//	}
//
// and wakers call WakeOne/WakeAll while holding mu. Thread.Unblock is
// buffered, so a wake issued between Append and Block is not lost.
type WaitList struct {
	ts []Thread
}

// Append registers t as the newest waiter. Caller holds the owner's lock.
func (w *WaitList) Append(t Thread) {
	w.ts = append(w.ts, t)
}

// WakeOne unblocks the oldest waiter, reporting whether there was one.
// Caller holds the owner's lock.
func (w *WaitList) WakeOne() bool {
	if len(w.ts) == 0 {
		return false
	}
	t := w.ts[0]
	w.ts = w.ts[1:]
	t.Unblock()
	return true
}

// WakeAll unblocks every waiter, returning how many. Caller holds the
// owner's lock.
func (w *WaitList) WakeAll() int {
	n := len(w.ts)
	for _, t := range w.ts {
		t.Unblock()
	}
	w.ts = nil
	return n
}

// Remove deregisters t wherever it sits in the list, reporting whether it
// was present. A waiter woken for a reason other than its wakeup — signal
// poke, spurious wake — must Remove itself after re-acquiring the owner's
// lock, or a later WakeOne would spend its wakeup on the stale entry.
// Caller holds the owner's lock.
func (w *WaitList) Remove(t Thread) bool {
	for i, x := range w.ts {
		if x == t {
			w.ts = append(w.ts[:i], w.ts[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of waiters. Caller holds the owner's lock.
func (w *WaitList) Len() int { return len(w.ts) }

// waiter is one thread sleeping on a semaphore.
type waiter struct {
	t           Thread
	interrupted bool
	granted     bool
}

// Sema is a counting sleep/wakeup semaphore (sema_t). P may block; V wakes
// the longest sleeper first (FIFO).
type Sema struct {
	mu      sync.Mutex
	count   int
	waiters []*waiter

	Sleeps  atomic.Int64
	Wakeups atomic.Int64
}

// NewSema returns a semaphore with the given initial count.
func NewSema(n int) *Sema { return &Sema{count: n} }

// P decrements the semaphore, sleeping while the count is zero.
func (s *Sema) P(t Thread, reason string) {
	s.mu.Lock()
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return
	}
	w := &waiter{t: t}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	s.Sleeps.Add(1)
	// Wake tokens are level-triggered (a signal poke can leave a stale
	// one), so a returning Block does not by itself mean the semaphore was
	// granted — re-sleep until V marked this waiter granted.
	for {
		t.Block(reason)
		s.mu.Lock()
		if w.granted || w.interrupted {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
	}
}

// PInterruptible is P, but the sleep can be broken by Interrupt (signal
// delivery to a process sleeping in the kernel). It reports whether the
// semaphore was actually acquired (false means interrupted).
func (s *Sema) PInterruptible(t Thread, reason string) bool {
	s.mu.Lock()
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return true
	}
	w := &waiter{t: t}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	s.Sleeps.Add(1)
	return s.sleep(t, reason, w)
}

// sleep blocks until the waiter is granted or interrupted, absorbing
// spurious wakes from stale level-triggered tokens. It reports whether the
// semaphore was acquired.
func (s *Sema) sleep(t Thread, reason string, w *waiter) bool {
	for {
		t.Block(reason)
		s.mu.Lock()
		granted, interrupted := w.granted, w.interrupted
		s.mu.Unlock()
		if granted {
			return true
		}
		if interrupted {
			return false
		}
	}
}

// PInterruptibleIf is PInterruptible with an atomic pre-sleep abort check:
// abort is evaluated under the semaphore's lock before the caller is added
// to the wait list, so an Interrupt-triggering event that happens before
// the sleep is never lost (the pause(2) race). It returns false without
// sleeping when abort() is true.
func (s *Sema) PInterruptibleIf(t Thread, reason string, abort func() bool) bool {
	s.mu.Lock()
	if abort != nil && abort() {
		s.mu.Unlock()
		return false
	}
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return true
	}
	w := &waiter{t: t}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	s.Sleeps.Add(1)
	return s.sleep(t, reason, w)
}

// V increments the semaphore, waking the oldest sleeper if any.
func (s *Sema) V() {
	s.mu.Lock()
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.interrupted {
			continue // already woken by Interrupt; grant to next
		}
		w.granted = true
		s.mu.Unlock()
		s.Wakeups.Add(1)
		w.t.Unblock()
		return
	}
	s.count++
	s.mu.Unlock()
}

// Interrupt breaks t's sleep on the semaphore, if it is sleeping here.
// It reports whether a sleep was broken.
func (s *Sema) Interrupt(t Thread) bool {
	s.mu.Lock()
	for i, w := range s.waiters {
		if w.t == t && !w.interrupted {
			w.interrupted = true
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			s.mu.Unlock()
			t.Unblock()
			return true
		}
	}
	s.mu.Unlock()
	return false
}

// Count returns the current count (for tests and diagnostics).
func (s *Sema) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Waiting returns the number of sleeping threads.
func (s *Sema) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}
