package klock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// goThread implements Thread on a plain goroutine for tests. A buffered
// channel of one token makes Unblock-before-Block safe.
type goThread struct {
	ch chan struct{}
}

func newGoThread() *goThread       { return &goThread{ch: make(chan struct{}, 1)} }
func (g *goThread) Block(_ string) { <-g.ch }
func (g *goThread) Unblock()       { g.ch <- struct{}{} }

func TestSpinMutualExclusion(t *testing.T) {
	var l Spin
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 16000 {
		t.Fatalf("counter = %d, want 16000", counter)
	}
}

func TestSpinTryLock(t *testing.T) {
	var l Spin
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestSpinUnlockOfUnlockedPanics(t *testing.T) {
	var l Spin
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Unlock()
}

func TestSemaImmediateP(t *testing.T) {
	s := NewSema(2)
	th := newGoThread()
	s.P(th, "a")
	s.P(th, "b")
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	s.V()
	if s.Count() != 1 {
		t.Fatalf("Count after V = %d, want 1", s.Count())
	}
}

func TestSemaBlockWake(t *testing.T) {
	s := NewSema(0)
	th := newGoThread()
	done := make(chan struct{})
	go func() {
		s.P(th, "wait")
		close(done)
	}()
	// Wait until the sleeper is registered, then wake it.
	for s.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	s.V()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("P never woke")
	}
	if s.Sleeps.Load() != 1 || s.Wakeups.Load() != 1 {
		t.Fatalf("sleeps=%d wakeups=%d", s.Sleeps.Load(), s.Wakeups.Load())
	}
}

func TestSemaFIFO(t *testing.T) {
	s := NewSema(0)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		th := newGoThread()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.P(th, "fifo")
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}(i)
		for s.Waiting() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 3; i++ {
		s.V()
		// Give the woken goroutine time to record its slot so the
		// ordering observation is meaningful.
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	for i, id := range order {
		if id != i {
			t.Fatalf("wake order %v, want FIFO", order)
		}
	}
}

func TestSemaInterrupt(t *testing.T) {
	s := NewSema(0)
	th := newGoThread()
	got := make(chan bool, 1)
	go func() {
		got <- s.PInterruptible(th, "interruptible")
	}()
	for s.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	if !s.Interrupt(th) {
		t.Fatal("Interrupt found no sleeper")
	}
	select {
	case ok := <-got:
		if ok {
			t.Fatal("PInterruptible reported acquisition after interrupt")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("interrupted sleeper never returned")
	}
	// A V after the interrupt must not be consumed by the dead waiter.
	s.V()
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
	// Interrupting a thread that is not sleeping reports false.
	if s.Interrupt(th) {
		t.Fatal("Interrupt of non-sleeper returned true")
	}
}

func TestSemaInterruptThenPSucceedsForOthers(t *testing.T) {
	s := NewSema(0)
	a, b := newGoThread(), newGoThread()
	resA := make(chan bool, 1)
	go func() { resA <- s.PInterruptible(a, "a") }()
	for s.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		s.P(b, "b")
		close(done)
	}()
	for s.Waiting() != 2 {
		time.Sleep(time.Millisecond)
	}
	s.Interrupt(a)
	if ok := <-resA; ok {
		t.Fatal("a acquired despite interrupt")
	}
	s.V() // must wake b, not be swallowed
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("b never woke after V")
	}
}

func TestMRLockReadersShareWritersExclude(t *testing.T) {
	var l MRLock
	var inside atomic.Int32
	var maxReaders atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th := newGoThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.RLock(th)
				n := inside.Add(1)
				for {
					m := maxReaders.Load()
					if n <= m || maxReaders.CompareAndSwap(m, n) {
						break
					}
				}
				inside.Add(-1)
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if maxReaders.Load() < 2 {
		t.Logf("note: readers never overlapped (max=%d); still correct", maxReaders.Load())
	}
	if l.Readers() != 0 {
		t.Fatalf("Readers = %d after all released", l.Readers())
	}
}

func TestMRLockWriterExcludesReaders(t *testing.T) {
	var l MRLock
	w := newGoThread()
	l.Lock(w)
	if !l.UpdateHeld() {
		t.Fatal("UpdateHeld false while locked")
	}
	readerIn := make(chan struct{})
	r := newGoThread()
	go func() {
		l.RLock(r)
		close(readerIn)
		l.RUnlock()
	}()
	select {
	case <-readerIn:
		t.Fatal("reader entered during update")
	case <-time.After(50 * time.Millisecond):
	}
	if l.WaitCount() != 1 {
		t.Fatalf("WaitCount = %d, want 1", l.WaitCount())
	}
	l.Unlock()
	select {
	case <-readerIn:
	case <-time.After(2 * time.Second):
		t.Fatal("reader never admitted after update released")
	}
}

func TestMRLockWriterWaitsForReaders(t *testing.T) {
	var l MRLock
	r := newGoThread()
	l.RLock(r)
	writerIn := make(chan struct{})
	w := newGoThread()
	go func() {
		l.Lock(w)
		close(writerIn)
		l.Unlock()
	}()
	select {
	case <-writerIn:
		t.Fatal("writer entered while reader held lock")
	case <-time.After(50 * time.Millisecond):
	}
	l.RUnlock()
	select {
	case <-writerIn:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never admitted after readers drained")
	}
}

func TestMRLockWriterPreferredOverNewReaders(t *testing.T) {
	var l MRLock
	r1 := newGoThread()
	l.RLock(r1)
	w := newGoThread()
	go l.Lock(w)
	for l.WaitCount() == 0 {
		time.Sleep(time.Millisecond)
	}
	// A new reader arriving while a writer waits must queue behind it.
	r2In := make(chan struct{})
	r2 := newGoThread()
	go func() {
		l.RLock(r2)
		close(r2In)
	}()
	select {
	case <-r2In:
		t.Fatal("new reader jumped the waiting writer")
	case <-time.After(50 * time.Millisecond):
	}
	l.RUnlock() // writer gets the lock
	time.Sleep(10 * time.Millisecond)
	if !l.UpdateHeld() {
		t.Fatal("writer did not get the lock after last reader")
	}
	l.Unlock() // now the queued reader is admitted
	select {
	case <-r2In:
	case <-time.After(2 * time.Second):
		t.Fatal("queued reader never admitted")
	}
	l.RUnlock()
}

func TestMRLockHandoffBetweenWriters(t *testing.T) {
	var l MRLock
	a := newGoThread()
	l.Lock(a)
	order := make(chan int, 2)
	for i := 0; i < 2; i++ {
		th := newGoThread()
		go func(id int) {
			l.Lock(th)
			order <- id
			l.Unlock()
		}(i)
		for l.WaitCount() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	l.Unlock()
	first := <-order
	second := <-order
	if first != 0 || second != 1 {
		t.Fatalf("writer handoff order %d,%d; want 0,1", first, second)
	}
	if l.UpdateHeld() || l.Readers() != 0 {
		t.Fatal("lock not free at end")
	}
}

func TestMRLockMisusePanics(t *testing.T) {
	var l MRLock
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RUnlock without hold must panic")
			}
		}()
		l.RUnlock()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Unlock without hold must panic")
			}
		}()
		l.Unlock()
	}()
}

func TestMRLockStressMixed(t *testing.T) {
	var l MRLock
	var shared, reads int64
	var wg sync.WaitGroup
	stop := time.After(200 * time.Millisecond)
	_ = stop
	for i := 0; i < 6; i++ {
		th := newGoThread()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 300; j++ {
				if id%3 == 0 {
					l.Lock(th)
					shared++
					l.Unlock()
				} else {
					l.RLock(th)
					atomic.AddInt64(&reads, 1)
					_ = shared
					l.RUnlock()
				}
			}
		}(i)
	}
	wg.Wait()
	if shared != 600 {
		t.Fatalf("writer increments = %d, want 600", shared)
	}
}

func TestWaitListTargetedWakeups(t *testing.T) {
	// The property that distinguishes WaitList from a counting semaphore:
	// wakeups go to specific threads, in FIFO order.
	var mu sync.Mutex
	var wl WaitList
	a, b := newGoThread(), newGoThread()
	order := make(chan string, 2)
	started := make(chan struct{}, 2)
	go func() {
		mu.Lock()
		wl.Append(a)
		mu.Unlock()
		started <- struct{}{}
		a.Block("wait a")
		order <- "a"
	}()
	<-started
	go func() {
		mu.Lock()
		wl.Append(b)
		mu.Unlock()
		started <- struct{}{}
		b.Block("wait b")
		order <- "b"
	}()
	<-started
	mu.Lock()
	if wl.Len() != 2 {
		t.Fatalf("Len = %d", wl.Len())
	}
	if !wl.WakeOne() {
		t.Fatal("WakeOne found nobody")
	}
	mu.Unlock()
	if got := <-order; got != "a" {
		t.Fatalf("first wake = %q, want a (FIFO)", got)
	}
	mu.Lock()
	n := wl.WakeAll()
	mu.Unlock()
	if n != 1 {
		t.Fatalf("WakeAll woke %d", n)
	}
	if got := <-order; got != "b" {
		t.Fatalf("second wake = %q", got)
	}
	mu.Lock()
	if wl.WakeOne() {
		t.Fatal("WakeOne on empty list")
	}
	if wl.WakeAll() != 0 || wl.Len() != 0 {
		t.Fatal("empty list not empty")
	}
	mu.Unlock()
}

func TestWaitListWakeBeforeBlock(t *testing.T) {
	// A wake issued between Append and Block must not be lost (the token
	// is buffered in the thread).
	var wl WaitList
	th := newGoThread()
	wl.Append(th)
	wl.WakeOne()
	done := make(chan struct{})
	go func() {
		th.Block("late block")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("buffered wake lost")
	}
}
