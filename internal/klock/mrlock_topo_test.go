package klock

import "testing"

// Slot-sharing CPUs must always be node-mates once the lock is shaped:
// sharing a padded counter inside one node is cheap cache traffic, sharing
// it across nodes is interconnect ping-pong.
func TestMRLockSlotTopology(t *testing.T) {
	for _, tc := range []struct{ ncpu, nodes int }{
		{8, 2}, {64, 8}, {256, 32}, {256, 8}, {96, 12}, {5, 3},
	} {
		var l MRLock
		l.ConfigureTopology(tc.ncpu, tc.nodes)
		cpn := (tc.ncpu + tc.nodes - 1) / tc.nodes
		slotNode := make(map[int]int)
		for cpu := 1; cpu < tc.ncpu; cpu++ {
			s := l.slotOf(cpu)
			if s < 0 || s >= mrSlots {
				t.Fatalf("ncpu=%d nodes=%d: slotOf(%d) = %d out of range", tc.ncpu, tc.nodes, cpu, s)
			}
			node := cpu / cpn
			if prev, ok := slotNode[s]; ok && prev != node {
				t.Fatalf("ncpu=%d nodes=%d: slot %d shared by nodes %d and %d",
					tc.ncpu, tc.nodes, s, prev, node)
			}
			slotNode[s] = node
		}
	}
}

// Unshaped locks keep the legacy modulo hash, and slot 0 stays reserved for
// the no-affinity paths in both modes.
func TestMRLockSlotDefault(t *testing.T) {
	var l MRLock
	for _, cpu := range []int{-1, 0} {
		if l.slotOf(cpu) != 0 {
			t.Fatalf("slotOf(%d) = %d, want 0", cpu, l.slotOf(cpu))
		}
	}
	if l.slotOf(5) != 5 || l.slotOf(mrSlots+3) != 3 {
		t.Fatalf("unshaped slotOf not a modulo hash")
	}
	l.ConfigureTopology(256, 8)
	if l.slotOf(0) != 0 || l.slotOf(-1) != 0 {
		t.Fatalf("shaped slotOf(<=0) must stay 0")
	}
}

// The shaped mapping must round-trip through RLockOn/RUnlockOn: the slot
// returned is the one the hold was counted on, and releases drain exactly.
func TestMRLockShapedRoundTrip(t *testing.T) {
	var l MRLock
	l.ConfigureTopology(256, 8)
	th := newGoThread()
	var slots []int
	for cpu := 0; cpu < 256; cpu += 17 {
		slots = append(slots, l.RLockOn(th, cpu))
	}
	if l.Readers() != len(slots) {
		t.Fatalf("Readers = %d, want %d", l.Readers(), len(slots))
	}
	for _, s := range slots {
		l.RUnlockOn(s)
	}
	if l.Readers() != 0 {
		t.Fatalf("Readers = %d after release, want 0", l.Readers())
	}
}
