// Package proc implements the UNIX process: the proc-table entry and user
// area of a V.3 kernel — identity, environment, descriptor table, private
// pregion list, signal state — extended with the share-group fields the
// paper adds: the kernel share mask (p_shmask), the pointer to the shared
// address block, and the p_flag synchronization bits checked in a single
// test on every kernel entry (paper §6.3).
package proc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/klock"
	"repro/internal/vm"
)

// State is a process state, following the V.3 proc states.
type State int32

const (
	SIdle  State = iota // being created
	SReady              // on the run queue
	SRun                // executing on a CPU
	SSleep              // sleeping on a kernel semaphore
	SZomb               // exited, awaiting wait(2)
)

var stateNames = [...]string{"idle", "ready", "run", "sleep", "zombie"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Mask is a share mask: the shmask argument of sproc(2). Each bit names a
// resource the new process shares with the share group (paper §5.1).
type Mask uint32

const (
	PRSADDR   Mask = 1 << iota // share virtual address space
	PRSULIMIT                  // share ulimit values
	PRSUMASK                   // share umask value
	PRSDIR                     // share current/root directory
	PRSFDS                     // share open file descriptors
	PRSID                      // share uid/gid

	// PRSALL shares all of the above and any future resources.
	PRSALL Mask = PRSADDR | PRSULIMIT | PRSUMASK | PRSDIR | PRSFDS | PRSID
)

func (m Mask) String() string {
	if m == 0 {
		return "none"
	}
	if m == PRSALL {
		return "PR_SALL"
	}
	names := []struct {
		bit  Mask
		name string
	}{
		{PRSADDR, "PR_SADDR"}, {PRSULIMIT, "PR_SULIMIT"}, {PRSUMASK, "PR_SUMASK"},
		{PRSDIR, "PR_SDIR"}, {PRSFDS, "PR_SFDS"}, {PRSID, "PR_SID"},
	}
	s := ""
	for _, n := range names {
		if m&n.bit != 0 {
			if s != "" {
				s += "|"
			}
			s += n.name
		}
	}
	return s
}

// Synchronization bits held in the p_flag word. When a member changes a
// shared resource it sets the matching bit on every other sharing member;
// the bits are checked in a single test on kernel entry (paper §6.3).
const (
	FSyncFds uint32 = 1 << iota // descriptor table out of date
	FSyncDir                    // cdir/rdir out of date
	FSyncUmask
	FSyncUlimit
	FSyncID // uid/gid out of date

	FSyncAny = FSyncFds | FSyncDir | FSyncUmask | FSyncUlimit | FSyncID
)

// ShareGroup is what the process layer needs from the shared address
// block; the core package implements it. Keeping it an interface mirrors
// the layering of the paper's kernel, where generic proc handling tests
// p_flag bits and calls into share-group routines only when needed.
type ShareGroup interface {
	// SyncEntry reconciles the process's private copies of shared
	// resources from the share block, honouring p's share mask. It is
	// called when FSyncAny bits are found set on kernel entry.
	SyncEntry(p *Proc)
	// Leave removes p from the group (exit, exec).
	Leave(p *Proc)
	// Size returns the current number of members.
	Size() int
	// Gang reports whether the group asked to be gang-scheduled
	// (prctl PR_SETGANG, the paper's §8 scheduling extension).
	Gang() bool
	// CPUAcct returns the group's fair-share CPU account (never nil):
	// the scheduler charges it at quantum boundaries and orders run
	// queues by its band; setshares(2)/getusage(2) are its control plane.
	CPUAcct() *CPUAcct
}

// Scheduler is the dispatch interface the process layer blocks through.
type Scheduler interface {
	// Block releases p's CPU and sleeps until Unblock; called by p itself.
	Block(p *Proc, reason string)
	// Unblock makes a blocked p runnable again.
	Unblock(p *Proc)
}

// DefaultStackPages is the default maximum stack size (1 MiB), adjustable
// per process with prctl(PR_SETSTACKSIZE).
const DefaultStackPages = 256

// NOFILE is the maximum descriptor table size, as on V.3.
const NOFILE = 64

// NFdInit is the initial descriptor table size; AllocFd and GrowFd extend
// the table on demand up to NOFILE.
const NFdInit = 16

// Proc is one process: proc-table entry plus user area.
type Proc struct {
	PID  int
	PPID int
	Name string // diagnostic label

	state atomic.Int32

	// Mu guards the mutable user-area fields: identity, descriptors,
	// directories, limits, handlers, children.
	Mu sync.Mutex

	// Identity and environment (user area).
	Uid, Gid uint16
	Umask    uint16
	Ulimit   int64
	Cdir     *fs.Inode // held
	Rdir     *fs.Inode // held
	Fd       []*fs.File
	FdFlags  []uint8 // per-descriptor flags (close-on-exec, non-blocking)
	FdMax    int     // descriptor-table ceiling (0 = NOFILE), inherited
	fdHint   int     // lowest-free-slot scan hint (see AllocFd)

	// Virtual memory.
	ASID     hw.ASID
	VMC      vm.LookupCache     // last-hit shared-pregion cache (fault fast path)
	Private  []*vm.PRegion      // private pregion list (scanned first on fault)
	Stack    *vm.PRegion        // this process's stack (may live on the shared list)
	StackMax int                // max stack pages (PR_SETSTACKSIZE), inherited
	NextShm  hw.VAddr           // next free address in the mmap/shm arena
	ShmFree  map[int][]hw.VAddr // recycled arena ranges by size in pages

	// Resv is the spawn-time frame reservation against the share group's
	// account: a batch of quota prepaid by one CAS at sproc time and
	// consumed by this process's page fills. Set before the child first
	// runs, released (remainder returned) when it is reaped or execs out
	// of the group; nil when the group ran without SpawnReserve.
	Resv *hw.FrameResv

	// Share group state (nil / zero outside a group). The share-group
	// pointer is read by the scheduler while exit clears it, and the
	// share mask is read by other members' propagation walks while
	// unshare narrows it, so both are accessed atomically.
	shMask atomic.Uint32
	share  atomic.Pointer[shareRef]
	Flag   atomic.Uint32 // p_flag synchronization bits

	// Arg is the entry argument this process was sproc'd with, recorded so
	// a checkpoint can note it and a restore can respawn the member with
	// the same argument (freeze.go, DESIGN.md §17).
	Arg int64

	// Checkpoint freeze state (freeze.go): the pending gate installed by a
	// checkpoint initiator, and the gate this process is currently parked
	// on (nil when running free).
	frz       atomic.Pointer[FreezeGate]
	frzParked atomic.Pointer[FreezeGate]

	// SysCount is the per-process syscall profile: call counts indexed by
	// the kernel's syscall number. The kernel sizes and owns it (proc does
	// not know the table size); nil means no accounting.
	SysCount []atomic.Int64

	// Scheduling.
	Cycles     atomic.Int64 // simulated cycles charged to this process
	Dispatched atomic.Int64 // times this process was placed on a CPU
	Prio       atomic.Int32 // scheduling priority (higher runs first)
	CPU        atomic.Int32 // current CPU, -1 when not running
	LastCPU    atomic.Int32 // CPU of the most recent dispatch (run-queue affinity)
	Sched      Scheduler
	wake       chan struct{} // wakeup token (cap 1): Unblock before Block is safe
	RunGate    chan int      // dispatch channel: scheduler sends the CPU id
	SliceLeft  atomic.Int64  // remaining charge units in this time slice
	RunStamp   atomic.Int64  // p.Cycles at dispatch: quantum usage = Cycles - RunStamp

	// Blockproc sleep-wake state (blockproc(2)/unblockproc(2), paper §3):
	// blockCnt is the saturating count of banked unblocks, driven negative
	// by a block in progress; blockSleep marks a sleeper waiting for the
	// count to return to zero. Guarded by blockMu; see blockcnt.go.
	blockMu    sync.Mutex
	blockCnt   int32
	blockSleep bool

	// Signals.
	SigPending atomic.Uint32
	SigMask    uint32
	Handlers   [NSig]Handler
	Killed     atomic.Bool // SIGKILL latched
	sleepMu    sync.Mutex
	sleepSema  *klock.Sema // interruptible kernel sleep in progress

	// LastSleep records the reason of the most recent scheduler block
	// (diagnostics only).
	LastSleep atomic.Value

	// Exit/wait.
	Children   []*Proc
	ExitStatus int
	DeadSema   *klock.Sema // parent sleeps here for dying children
	Exited     chan struct{}
}

// New creates an embryonic process. The caller fills in environment and VM
// before making it runnable.
func New(pid int, name string) *Proc {
	p := &Proc{
		PID:      pid,
		Name:     name,
		Ulimit:   1 << 30,
		Umask:    0o022,
		StackMax: DefaultStackPages,
		NextShm:  vm.ShmBase,
		ShmFree:  map[int][]hw.VAddr{},
		Fd:       make([]*fs.File, NFdInit),
		FdFlags:  make([]uint8, NFdInit),
		wake:     make(chan struct{}, 1),
		RunGate:  make(chan int, 1),
		DeadSema: klock.NewSema(0),
		Exited:   make(chan struct{}),
	}
	p.CPU.Store(-1)
	p.LastCPU.Store(-1)
	p.state.Store(int32(SIdle))
	return p
}

// AllocShmRange returns a base address for an npages mapping in the
// process's private arena, recycling a previously released range when one
// fits.
func (p *Proc) AllocShmRange(npages int) hw.VAddr {
	if free := p.ShmFree[npages]; len(free) > 0 {
		base := free[len(free)-1]
		p.ShmFree[npages] = free[:len(free)-1]
		return base
	}
	base := p.NextShm
	p.NextShm += hw.VAddr((npages + 1) * hw.PageSize)
	return base
}

// FreeShmRange returns a released mapping's range to the arena.
func (p *Proc) FreeShmRange(base hw.VAddr, npages int) {
	if p.ShmFree == nil {
		p.ShmFree = map[int][]hw.VAddr{}
	}
	p.ShmFree[npages] = append(p.ShmFree[npages], base)
}

// State returns the current process state.
func (p *Proc) State() State { return State(p.state.Load()) }

// SetState transitions the process state.
func (p *Proc) SetState(s State) { p.state.Store(int32(s)) }

// Block implements klock.Thread: sleep until Unblock, releasing the CPU
// through the scheduler when one is attached.
func (p *Proc) Block(reason string) {
	if p.Sched != nil {
		p.Sched.Block(p, reason)
		return
	}
	<-p.wake
}

// Unblock implements klock.Thread.
func (p *Proc) Unblock() {
	if p.Sched != nil {
		p.Sched.Unblock(p)
		return
	}
	p.NotifyWake()
}

// WaitWake consumes the wakeup token; the scheduler's Block uses it so an
// Unblock that raced ahead is not lost.
func (p *Proc) WaitWake() { <-p.wake }

// NotifyWake deposits the wakeup token. The token is level-triggered and
// the deposit must not block: with signal pokes a second wake can arrive
// while an unconsumed token already sits in the channel, and the waker may
// be holding the sleep owner's mutex — the very mutex the woken process
// needs to make progress. A dropped deposit is always redundant (the
// existing token wakes the same Block), and every sleep loop re-checks its
// condition after waking, so tolerating the occasional spurious wake is
// the whole correctness story.
func (p *Proc) NotifyWake() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// shareRef boxes the interface so it can sit behind an atomic pointer.
type shareRef struct{ g ShareGroup }

// ShareGrp returns the process's share group, or nil.
func (p *Proc) ShareGrp() ShareGroup {
	if r := p.share.Load(); r != nil {
		return r.g
	}
	return nil
}

// SetShare links (or, with nil, unlinks) the process's share group.
func (p *Proc) SetShare(g ShareGroup) {
	if g == nil {
		p.share.Store(nil)
		return
	}
	p.share.Store(&shareRef{g: g})
}

// InGroup reports whether the process belongs to a share group.
func (p *Proc) InGroup() bool { return p.ShareGrp() != nil }

// ShMask returns the process's share mask (p_shmask).
func (p *Proc) ShMask() Mask { return Mask(p.shMask.Load()) }

// SetShMask replaces the process's share mask.
func (p *Proc) SetShMask(m Mask) { p.shMask.Store(uint32(m)) }

// Shares reports whether the process shares the given resource with its
// group: it must be in a group and its share mask must include the bit.
func (p *Proc) Shares(bit Mask) bool {
	return p.ShareGrp() != nil && p.ShMask()&bit != 0
}

// SetSyncBits ORs bits into the p_flag word.
func (p *Proc) SetSyncBits(bits uint32) {
	for {
		old := p.Flag.Load()
		if p.Flag.CompareAndSwap(old, old|bits) {
			return
		}
	}
}

// TakeSyncBits atomically clears and returns the sync bits — the single
// test performed on kernel entry.
func (p *Proc) TakeSyncBits() uint32 {
	for {
		old := p.Flag.Load()
		if old&FSyncAny == 0 {
			return 0
		}
		if p.Flag.CompareAndSwap(old, old&^FSyncAny) {
			return old & FSyncAny
		}
	}
}

var _ klock.Thread = (*Proc)(nil)

func (p *Proc) String() string {
	return fmt.Sprintf("proc{pid=%d %q %s mask=%s}", p.PID, p.Name, p.State(), p.ShMask())
}
