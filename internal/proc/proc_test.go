package proc

import (
	"testing"
	"testing/quick"

	"repro/internal/fs"
	"repro/internal/klock"
)

func TestMaskString(t *testing.T) {
	cases := map[Mask]string{
		0:                "none",
		PRSADDR:          "PR_SADDR",
		PRSADDR | PRSFDS: "PR_SADDR|PR_SFDS",
		PRSALL:           "PR_SALL",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%#x.String() = %q, want %q", uint32(m), got, want)
		}
	}
}

func TestSyncBits(t *testing.T) {
	p := New(1, "t")
	if p.TakeSyncBits() != 0 {
		t.Fatal("fresh proc has sync bits")
	}
	p.SetSyncBits(FSyncFds | FSyncDir)
	p.SetSyncBits(FSyncUmask)
	got := p.TakeSyncBits()
	if got != FSyncFds|FSyncDir|FSyncUmask {
		t.Fatalf("TakeSyncBits = %#x", got)
	}
	if p.TakeSyncBits() != 0 {
		t.Fatal("bits not cleared by take")
	}
}

func TestSharesRequiresGroupAndBit(t *testing.T) {
	p := New(2, "t")
	p.SetShMask(PRSFDS)
	if p.Shares(PRSFDS) {
		t.Fatal("Shares true without group")
	}
	p.SetShare(fakeGroup{})
	if !p.Shares(PRSFDS) {
		t.Fatal("Shares false with group and bit")
	}
	if p.Shares(PRSDIR) {
		t.Fatal("Shares true for unshared bit")
	}
}

type fakeGroup struct{}

func (fakeGroup) SyncEntry(*Proc) {}
func (fakeGroup) Leave(*Proc)     {}
func (fakeGroup) Size() int       { return 1 }
func (fakeGroup) Gang() bool      { return false }

var fakeGroupAcct = NewCPUAcct()

func (fakeGroup) CPUAcct() *CPUAcct { return fakeGroupAcct }

func TestFdTable(t *testing.T) {
	f := fs.New()
	c := fs.Cred{Uid: 0, Cwd: f.Root(), Root: f.Root()}
	p := New(3, "t")
	file, err := f.Open(c, "/x", fs.OWrite|fs.OCreat, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	p.Mu.Lock()
	defer p.Mu.Unlock()
	fd, err := p.AllocFd(file)
	if err != nil || fd != 0 {
		t.Fatalf("AllocFd = (%d,%v)", fd, err)
	}
	fd2, _ := p.AllocFd(file.Hold())
	if fd2 != 1 {
		t.Fatalf("second fd = %d", fd2)
	}
	got, err := p.GetFd(0)
	if err != nil || got != file {
		t.Fatalf("GetFd = (%v,%v)", got, err)
	}
	if _, err := p.GetFd(63); err != fs.ErrBadFd {
		t.Fatalf("GetFd empty slot: %v", err)
	}
	if _, err := p.GetFd(-1); err != fs.ErrBadFd {
		t.Fatalf("GetFd -1: %v", err)
	}
	if _, err := p.GetFd(1000); err != fs.ErrBadFd {
		t.Fatalf("GetFd oob: %v", err)
	}
	// Dup the table: refcounts bump.
	fds, _ := p.DupFdTable()
	if file.Ref() != 4 { // two fds + two dup'd copies
		t.Fatalf("ref = %d, want 4", file.Ref())
	}
	for _, d := range fds {
		if d != nil {
			d.Release()
		}
	}
	// Clear without release, then close all.
	cleared, _ := p.ClearFd(1)
	cleared.Release()
	if p.OpenFdCount() != 1 {
		t.Fatalf("open count = %d", p.OpenFdCount())
	}
	p.CloseAllFds()
	if p.OpenFdCount() != 0 {
		t.Fatal("CloseAllFds left descriptors")
	}
}

func TestFdTableFull(t *testing.T) {
	f := fs.New()
	c := fs.Cred{Uid: 0, Cwd: f.Root(), Root: f.Root()}
	p := New(4, "t")
	file, _ := f.Open(c, "/x", fs.OWrite|fs.OCreat, 0o644)
	p.Mu.Lock()
	defer p.Mu.Unlock()
	for i := 0; i < NOFILE; i++ {
		if _, err := p.AllocFd(file.Hold()); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := p.AllocFd(file); err != fs.ErrBadFd {
		t.Fatalf("overfull table: %v", err)
	}
	p.CloseAllFds()
}

func TestSignalPendingAndMask(t *testing.T) {
	p := New(5, "t")
	if p.PendingSignal() != 0 {
		t.Fatal("signal on fresh proc")
	}
	p.Post(SIGUSR1)
	p.Post(SIGTERM)
	if s := p.PendingSignal(); s != SIGTERM { // lowest number first
		t.Fatalf("first = %d, want SIGTERM", s)
	}
	if s := p.PendingSignal(); s != SIGUSR1 {
		t.Fatalf("second = %d, want SIGUSR1", s)
	}
	if p.PendingSignal() != 0 {
		t.Fatal("queue not drained")
	}
	// Masked signals stay pending.
	p.SigMask = 1 << SIGUSR2
	p.Post(SIGUSR2)
	if p.PendingSignal() != 0 {
		t.Fatal("masked signal delivered")
	}
	p.SigMask = 0
	if p.PendingSignal() != SIGUSR2 {
		t.Fatal("unmasked signal lost")
	}
}

func TestSIGKILLUnmaskable(t *testing.T) {
	p := New(6, "t")
	p.SigMask = ^uint32(0)
	p.Post(SIGKILL)
	if !p.Killed.Load() {
		t.Fatal("Killed not latched")
	}
	if p.PendingSignal() != SIGKILL {
		t.Fatal("SIGKILL masked out")
	}
	if h, fatal := p.SignalAction(SIGKILL); h != nil || !fatal {
		t.Fatal("SIGKILL must be uncatchable and fatal")
	}
}

func TestSignalActions(t *testing.T) {
	p := New(7, "t")
	if _, fatal := p.SignalAction(SIGTERM); !fatal {
		t.Fatal("default SIGTERM not fatal")
	}
	if _, fatal := p.SignalAction(SIGCLD); fatal {
		t.Fatal("default SIGCLD fatal")
	}
	fired := 0
	p.SetHandler(SIGUSR1, func(sig int) { fired = sig })
	h, fatal := p.SignalAction(SIGUSR1)
	if h == nil || fatal {
		t.Fatal("handler not returned")
	}
	h(SIGUSR1)
	if fired != SIGUSR1 {
		t.Fatal("handler did not run")
	}
	p.SetHandler(SIGUSR1, nil)
	if h, _ := p.SignalAction(SIGUSR1); h != nil {
		t.Fatal("handler not reset")
	}
	// SIGKILL handler installation is refused.
	p.SetHandler(SIGKILL, func(int) {})
	if h, fatal := p.SignalAction(SIGKILL); h != nil || !fatal {
		t.Fatal("SIGKILL handler installed")
	}
}

func TestPostInterruptsSleep(t *testing.T) {
	p := New(8, "t")
	s := klock.NewSema(0)
	res := make(chan bool, 1)
	go func() { res <- p.SleepInterruptible(s, "pause") }()
	for s.Waiting() == 0 {
	}
	p.Post(SIGINT)
	if ok := <-res; ok {
		t.Fatal("sleep not interrupted by signal")
	}
	// After the sleep, Post with no sleeper is a no-op.
	p.Post(SIGINT)
}

func TestBlockUnblockStandalone(t *testing.T) {
	p := New(9, "t")
	done := make(chan struct{})
	go func() {
		p.Block("test")
		close(done)
	}()
	p.Unblock()
	<-done
	// Unblock before Block must also rendezvous.
	p.Unblock()
	p.Block("again")
}

func TestQuickSyncBitsIdempotent(t *testing.T) {
	f := func(bits []uint32) bool {
		p := New(10, "q")
		var want uint32
		for _, b := range bits {
			b &= FSyncAny
			p.SetSyncBits(b)
			want |= b
		}
		got := p.TakeSyncBits()
		return got == want && p.TakeSyncBits() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateTransitions(t *testing.T) {
	p := New(11, "t")
	if p.State() != SIdle {
		t.Fatalf("fresh state = %v", p.State())
	}
	for _, s := range []State{SReady, SRun, SSleep, SZomb} {
		p.SetState(s)
		if p.State() != s {
			t.Fatalf("state = %v, want %v", p.State(), s)
		}
	}
	if SZomb.String() != "zombie" || State(99).String() == "" {
		t.Fatal("state names")
	}
}
