package proc

// This file is the process half of the paper's blockproc(2)/unblockproc(2)
// sleep-wake subsystem (§3): when busy-waiting is no longer profitable —
// a partner is descheduled or dead — a share-group member must be able to
// block in the kernel and be woken by name. The primitive is a per-process
// counting block count: unblockproc banks a wakeup (saturating, so wakes
// are never lost), blockproc consumes one, and a consume that drives the
// count negative puts the process to sleep until the count returns to
// zero. "Unblock before block" therefore never loses the wake — the
// paper's required semantics for user-level synchronization, where the
// releasing member can run arbitrarily far ahead of the blocking one.

// BlockCntMax bounds the banked unblock count. IRIX capped the count so a
// runaway unblocker cannot overflow it; further unblocks saturate rather
// than wrap.
const BlockCntMax = 1 << 15

// BlockprocEnter consumes one banked unblock, reporting whether the
// caller must sleep (the count went negative). Called by p itself on the
// blockproc path; a false return means a banked wakeup paid for the block
// and the caller returns to user mode immediately.
func (p *Proc) BlockprocEnter() bool {
	p.blockMu.Lock()
	defer p.blockMu.Unlock()
	p.blockCnt--
	return p.blockCnt < 0
}

// BlockprocSleep sleeps until banked unblocks return the count to zero,
// tolerating spurious wakeups by re-checking the count each time. It
// reports false when a deliverable signal breaks the sleep instead; the
// consumed count is restored so the aborted block does not eat a future
// unblock. Must be called by p's own goroutine after BlockprocEnter
// returned true.
func (p *Proc) BlockprocSleep(reason string) bool {
	for {
		p.blockMu.Lock()
		if p.blockCnt >= 0 {
			p.blockSleep = false
			p.blockMu.Unlock()
			return true
		}
		if p.SignalPending() {
			// EINTR: undo this block's decrement so the banked count
			// again reflects only completed blocks. An unblock that
			// raced in stays banked for the next blockproc.
			if p.blockCnt < BlockCntMax {
				p.blockCnt++
			}
			p.blockSleep = false
			p.blockMu.Unlock()
			return false
		}
		p.blockSleep = true
		p.blockMu.Unlock()
		// A signal posted between the check above and this Block is not
		// lost: Post's interruptSleep deposits the wake token, so Block
		// returns immediately and the loop re-checks SignalPending.
		p.Block(reason)
	}
}

// BlockprocWake banks one unblock (saturating at BlockCntMax) and wakes
// the sleeper when the count returns to zero. It reports whether a
// sleeping process was actually released — false means the unblock was
// banked (no sleeper, or the sleeper still owes more unblocks).
func (p *Proc) BlockprocWake() bool {
	p.blockMu.Lock()
	if p.blockCnt < BlockCntMax {
		p.blockCnt++
	}
	woken := p.blockSleep && p.blockCnt >= 0
	if woken {
		p.blockSleep = false
	}
	p.blockMu.Unlock()
	if woken {
		p.Unblock()
	}
	return woken
}

// SetBlockCnt sets the banked unblock count outright (setblockproccnt(2)),
// clamping to [0, BlockCntMax], and wakes the sleeper if the new count
// releases it. The caller validates the sign; the clamp here is a
// belt-and-braces bound. It reports whether a sleeper was released.
func (p *Proc) SetBlockCnt(cnt int32) bool {
	if cnt < 0 {
		cnt = 0
	}
	if cnt > BlockCntMax {
		cnt = BlockCntMax
	}
	p.blockMu.Lock()
	p.blockCnt = cnt
	woken := p.blockSleep
	if woken {
		p.blockSleep = false
	}
	p.blockMu.Unlock()
	if woken {
		p.Unblock()
	}
	return woken
}

// BlockCnt returns the current banked count; negative while a block is in
// progress (diagnostics and tests).
func (p *Proc) BlockCnt() int32 {
	p.blockMu.Lock()
	defer p.blockMu.Unlock()
	return p.blockCnt
}
