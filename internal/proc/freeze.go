package proc

import "sync/atomic"

// Checkpoint freeze protocol (DESIGN.md §17). A checkpoint initiator that
// has finished its pre-copy passes must bring every other group member to
// quiescence before it captures the final dirty delta and the members'
// kernel state. It does so by installing a FreezeGate on each member; the
// members park themselves at the next safepoint they cross — the top of a
// user memory access or a kernel entry, both points where the member holds
// no kernel locks and has no user-visible store in flight — and sleep on
// the gate's thaw channel until the initiator releases them.
//
// The gate deliberately does not ride the blockproc wake token (Proc.wake):
// consuming a banked unblock while frozen would lose a wakeup another
// subsystem deposited, so Sched.Park sleeps on the gate's own channel.

// FreezeGate is one checkpoint's stop-the-world barrier: members park on
// its thaw channel, and the initiator counts arrivals through the per-proc
// parked markers.
type FreezeGate struct {
	thaw   chan struct{}
	Parked atomic.Int32 // members currently parked here (diagnostics)
}

// NewFreezeGate creates a closed gate; Open releases everyone parked on it.
func NewFreezeGate() *FreezeGate {
	return &FreezeGate{thaw: make(chan struct{})}
}

// Thaw returns the channel parked members sleep on.
func (g *FreezeGate) Thaw() <-chan struct{} { return g.thaw }

// Open releases every member parked on the gate. Call exactly once, after
// clearing the members' freeze pointers, so a woken member's re-check sees
// no pending freeze and resumes.
func (g *FreezeGate) Open() { close(g.thaw) }

// SetFreeze installs the gate as p's pending freeze request; p parks at
// its next safepoint crossing.
func (p *Proc) SetFreeze(g *FreezeGate) { p.frz.Store(g) }

// ClearFreeze withdraws the gate if it is still the pending request. The
// compare-and-swap means a newer checkpoint's gate installed concurrently
// is never clobbered by an older checkpoint's thaw.
func (p *Proc) ClearFreeze(g *FreezeGate) { p.frz.CompareAndSwap(g, nil) }

// Freeze returns the pending freeze gate, or nil. One atomic load: this is
// the safepoint fast path, crossed on every user memory access.
func (p *Proc) Freeze() *FreezeGate { return p.frz.Load() }

// FreezePending reports whether a freeze request is installed.
func (p *Proc) FreezePending() bool { return p.frz.Load() != nil }

// MarkParked publishes that p has reached a safepoint and is about to
// sleep on g. From this moment p performs no user-visible work until the
// gate opens, so the initiator may treat it as quiescent even though the
// scheduler handoff inside Park is still in flight.
func (p *Proc) MarkParked(g *FreezeGate) {
	p.frzParked.Store(g)
	g.Parked.Add(1)
}

// ClearParked withdraws the parked marker after the gate opened.
func (p *Proc) ClearParked(g *FreezeGate) {
	p.frzParked.Store(nil)
	g.Parked.Add(-1)
}

// FrozenAt reports whether p is parked on g — the initiator's quiescence
// predicate for running members (sleeping and zombie members are quiescent
// by state).
func (p *Proc) FrozenAt(g *FreezeGate) bool { return p.frzParked.Load() == g }
