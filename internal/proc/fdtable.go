package proc

import (
	"repro/internal/fs"
)

// Descriptor flag bits (per-fd, not shared through dup).
const (
	FdCloseOnExec uint8 = 1 << 0
)

// AllocFd installs f in the lowest free descriptor slot, growing the table
// up to NOFILE only (V.3 has a fixed table; the sub-NOFILE start just
// avoids committing 64 slots to every process). It returns the descriptor
// or an error when the table is full. The caller holds p.Mu.
func (p *Proc) AllocFd(f *fs.File) (int, error) {
	for i, slot := range p.Fd {
		if slot == nil {
			p.Fd[i] = f
			p.FdFlags[i] = 0
			return i, nil
		}
	}
	if len(p.Fd) < NOFILE {
		fd := len(p.Fd)
		p.GrowFd(fd * 2)
		p.Fd[fd] = f
		return fd, nil
	}
	return -1, fs.ErrBadFd
}

// GrowFd extends the descriptor table to hold at least n slots, capped at
// NOFILE. Existing entries keep their indices; new slots are empty. The
// caller holds p.Mu.
func (p *Proc) GrowFd(n int) {
	if n > NOFILE {
		n = NOFILE
	}
	if n <= len(p.Fd) {
		return
	}
	fds := make([]*fs.File, n)
	flags := make([]uint8, n)
	copy(fds, p.Fd)
	copy(flags, p.FdFlags)
	p.Fd, p.FdFlags = fds, flags
}

// GetFd returns the open file at descriptor fd. The caller holds p.Mu.
func (p *Proc) GetFd(fd int) (*fs.File, error) {
	if fd < 0 || fd >= len(p.Fd) || p.Fd[fd] == nil {
		return nil, fs.ErrBadFd
	}
	return p.Fd[fd], nil
}

// SetFd stores f at descriptor fd, growing the table as needed (used when
// synchronizing the table from the share block, whose shadow copy may be
// longer than this member's table). The caller holds p.Mu.
func (p *Proc) SetFd(fd int, f *fs.File) {
	p.GrowFd(fd + 1)
	p.Fd[fd] = f
}

// ClearFd removes the descriptor without releasing the file (the caller
// owns the release). The caller holds p.Mu.
func (p *Proc) ClearFd(fd int) (*fs.File, error) {
	f, err := p.GetFd(fd)
	if err != nil {
		return nil, err
	}
	p.Fd[fd] = nil
	p.FdFlags[fd] = 0
	return f, nil
}

// DupFdTable returns a copy of the descriptor table with every open file's
// reference count bumped — the fork(2) path. The caller holds p.Mu.
func (p *Proc) DupFdTable() ([]*fs.File, []uint8) {
	fds := make([]*fs.File, len(p.Fd))
	flags := make([]uint8, len(p.FdFlags))
	copy(flags, p.FdFlags)
	for i, f := range p.Fd {
		if f != nil {
			fds[i] = f.Hold()
		}
	}
	return fds, flags
}

// CloseAllFds releases every descriptor (exit path). The caller holds p.Mu.
func (p *Proc) CloseAllFds() {
	for i, f := range p.Fd {
		if f != nil {
			f.Release()
			p.Fd[i] = nil
		}
	}
}

// OpenFdCount counts live descriptors. The caller holds p.Mu.
func (p *Proc) OpenFdCount() int {
	n := 0
	for _, f := range p.Fd {
		if f != nil {
			n++
		}
	}
	return n
}
