package proc

import (
	"repro/internal/fs"
)

// Descriptor flag bits (per-fd, not shared through dup).
const (
	FdCloseOnExec uint8 = 1 << 0
)

// AllocFd installs f in the lowest free descriptor slot, growing the table
// up to NOFILE only (V.3 has a fixed table). It returns the descriptor or
// an error when the table is full. The caller holds p.Mu.
func (p *Proc) AllocFd(f *fs.File) (int, error) {
	for i, slot := range p.Fd {
		if slot == nil {
			p.Fd[i] = f
			p.FdFlags[i] = 0
			return i, nil
		}
	}
	return -1, fs.ErrBadFd
}

// GetFd returns the open file at descriptor fd. The caller holds p.Mu.
func (p *Proc) GetFd(fd int) (*fs.File, error) {
	if fd < 0 || fd >= len(p.Fd) || p.Fd[fd] == nil {
		return nil, fs.ErrBadFd
	}
	return p.Fd[fd], nil
}

// SetFd stores f at descriptor fd (used when synchronizing the table from
// the share block). The caller holds p.Mu.
func (p *Proc) SetFd(fd int, f *fs.File) {
	p.Fd[fd] = f
}

// ClearFd removes the descriptor without releasing the file (the caller
// owns the release). The caller holds p.Mu.
func (p *Proc) ClearFd(fd int) (*fs.File, error) {
	f, err := p.GetFd(fd)
	if err != nil {
		return nil, err
	}
	p.Fd[fd] = nil
	p.FdFlags[fd] = 0
	return f, nil
}

// DupFdTable returns a copy of the descriptor table with every open file's
// reference count bumped — the fork(2) path. The caller holds p.Mu.
func (p *Proc) DupFdTable() ([]*fs.File, []uint8) {
	fds := make([]*fs.File, len(p.Fd))
	flags := make([]uint8, len(p.FdFlags))
	copy(flags, p.FdFlags)
	for i, f := range p.Fd {
		if f != nil {
			fds[i] = f.Hold()
		}
	}
	return fds, flags
}

// CloseAllFds releases every descriptor (exit path). The caller holds p.Mu.
func (p *Proc) CloseAllFds() {
	for i, f := range p.Fd {
		if f != nil {
			f.Release()
			p.Fd[i] = nil
		}
	}
}

// OpenFdCount counts live descriptors. The caller holds p.Mu.
func (p *Proc) OpenFdCount() int {
	n := 0
	for _, f := range p.Fd {
		if f != nil {
			n++
		}
	}
	return n
}
