package proc

import (
	"repro/internal/fs"
)

// Descriptor flag bits (per-fd, not shared through dup).
const (
	FdCloseOnExec uint8 = 1 << 0
	// FdNonblock is per-descriptor non-blocking mode (fcntl F_SETFL
	// O_NDELAY): stream operations that would sleep return EAGAIN
	// instead. Like close-on-exec it travels in the fd-flag table, so a
	// share group propagates it with the descriptor update protocol.
	FdNonblock uint8 = 1 << 1
)

// FdCeiling returns the descriptor-table limit: NOFILE (the V.3 default)
// unless the system raised it at boot (Config.MaxFiles — the C10k serving
// experiments hold tens of thousands of descriptors open at once).
func (p *Proc) FdCeiling() int {
	if p.FdMax > 0 {
		return p.FdMax
	}
	return NOFILE
}

// AllocFd installs f in the lowest free descriptor slot, growing the table
// up to the ceiling only (V.3 has a fixed table; the small start just
// avoids committing every slot to every process). It returns the
// descriptor or an error when the table is full. The caller holds p.Mu.
func (p *Proc) AllocFd(f *fs.File) (int, error) {
	// Resume the lowest-free scan where the last one left off when the
	// table below is known dense — the C10k accept loop would otherwise
	// rescan thousands of occupied slots per connection. Any ClearFd
	// resets the hint, preserving the lowest-free-slot contract.
	start := p.fdHint
	if start >= len(p.Fd) {
		start = 0
	}
	for i := start; i < len(p.Fd); i++ {
		if p.Fd[i] == nil {
			p.Fd[i] = f
			p.FdFlags[i] = 0
			p.fdHint = i + 1
			return i, nil
		}
	}
	if len(p.Fd) < p.FdCeiling() {
		fd := len(p.Fd)
		p.GrowFd(fd * 2)
		p.Fd[fd] = f
		p.fdHint = fd + 1
		return fd, nil
	}
	return -1, fs.ErrBadFd
}

// GrowFd extends the descriptor table to hold at least n slots, capped at
// the ceiling. Existing entries keep their indices; new slots are empty.
// The caller holds p.Mu.
func (p *Proc) GrowFd(n int) {
	if max := p.FdCeiling(); n > max {
		n = max
	}
	if n <= len(p.Fd) {
		return
	}
	fds := make([]*fs.File, n)
	flags := make([]uint8, n)
	copy(fds, p.Fd)
	copy(flags, p.FdFlags)
	p.Fd, p.FdFlags = fds, flags
}

// GetFd returns the open file at descriptor fd. The caller holds p.Mu.
func (p *Proc) GetFd(fd int) (*fs.File, error) {
	if fd < 0 || fd >= len(p.Fd) || p.Fd[fd] == nil {
		return nil, fs.ErrBadFd
	}
	return p.Fd[fd], nil
}

// SetFd stores f at descriptor fd, growing the table as needed (used when
// synchronizing the table from the share block, whose shadow copy may be
// longer than this member's table). The caller holds p.Mu.
func (p *Proc) SetFd(fd int, f *fs.File) {
	p.GrowFd(fd + 1)
	p.Fd[fd] = f
}

// ClearFd removes the descriptor without releasing the file (the caller
// owns the release). The caller holds p.Mu.
func (p *Proc) ClearFd(fd int) (*fs.File, error) {
	f, err := p.GetFd(fd)
	if err != nil {
		return nil, err
	}
	p.Fd[fd] = nil
	p.FdFlags[fd] = 0
	if fd < p.fdHint {
		p.fdHint = fd
	}
	return f, nil
}

// ResetFdHint invalidates the lowest-free-slot scan hint. Code that edits
// the table without going through AllocFd/ClearFd (the share-block fd
// sync) must call it so AllocFd keeps returning the lowest free slot. The
// caller holds p.Mu.
func (p *Proc) ResetFdHint() { p.fdHint = 0 }

// DupFdTable returns a copy of the descriptor table with every open file's
// reference count bumped — the fork(2) path. The caller holds p.Mu.
func (p *Proc) DupFdTable() ([]*fs.File, []uint8) {
	fds := make([]*fs.File, len(p.Fd))
	flags := make([]uint8, len(p.FdFlags))
	copy(flags, p.FdFlags)
	for i, f := range p.Fd {
		if f != nil {
			fds[i] = f.Hold()
		}
	}
	return fds, flags
}

// CloseAllFds releases every descriptor (exit path). The caller holds p.Mu.
func (p *Proc) CloseAllFds() {
	for i, f := range p.Fd {
		if f != nil {
			f.Release()
			p.Fd[i] = nil
		}
	}
	p.fdHint = 0
}

// OpenFdCount counts live descriptors. The caller holds p.Mu.
func (p *Proc) OpenFdCount() int {
	n := 0
	for _, f := range p.Fd {
		if f != nil {
			n++
		}
	}
	return n
}
