package proc

import (
	"math"
	"sync"
	"sync/atomic"
)

// Fair-share CPU accounting (the resource-control extension of the share
// group, after Gunther's UNIX resource managers): each group carries a
// CPU-share entitlement and a decayed usage accumulator charged from the
// per-CPU cycle accounting at every quantum boundary. The scheduler reads
// the group's *band* — usage normalized by entitlement and quantized —
// and runs low-band groups ahead of high-band ones, so delivered CPU
// tracks entitlement under overload while idle groups forgive their past
// usage exponentially.
const (
	// AcctTau is the decay time constant of the usage accumulator, in
	// machine total-cycle units: a group's past usage loses a factor of e
	// every AcctTau cycles of machine time. Around 32 default time slices
	// — long enough to smooth quantum granularity, short enough that an
	// idle group recovers its entitlement in a few milliseconds of
	// simulated time.
	AcctTau = 1 << 16
	// AcctBandUnit is the usage-per-share width of one priority band.
	// Smaller units discriminate finer but make the band jitter with
	// every quantum; one quarter of a default slice is a good balance.
	AcctBandUnit = 1 << 9
	// AcctMaxBand caps the band so a badly over-delivered group is
	// deprioritized but still comparable (and still ages normally).
	AcctMaxBand = 63
)

// CPUAcct is one share group's fair-share CPU account. The scheduler
// charges it at quantum boundaries and reads the cached band lock-free on
// every dispatch decision; Shares and Delivered are the control-plane
// surface (setshares(2)/getusage(2)).
type CPUAcct struct {
	shares atomic.Int32 // entitlement, >= 1

	// Delivered is the undecayed total of cycles charged to the group —
	// the measurement surface for entitlement tracking (benchtab S8) and
	// the conservation invariant (sum over groups + ungrouped == flushed).
	Delivered atomic.Int64

	// band caches usage/(shares*AcctBandUnit) so the dispatcher never
	// takes mu; stamp mirrors the decay clock for cheap staleness checks.
	band  atomic.Int32
	stamp atomic.Int64

	mu    sync.Mutex
	usage float64 // decayed usage, guarded by mu
}

// NewCPUAcct returns an account with the default entitlement of one share.
func NewCPUAcct() *CPUAcct {
	a := &CPUAcct{}
	a.shares.Store(1)
	return a
}

// Shares returns the group's CPU-share entitlement.
func (a *CPUAcct) Shares() int32 { return a.shares.Load() }

// SetShares replaces the entitlement; values below 1 clamp to 1.
func (a *CPUAcct) SetShares(n int32) {
	if n < 1 {
		n = 1
	}
	a.shares.Store(n)
}

// decayLocked ages the usage accumulator to now. Callers hold mu.
func (a *CPUAcct) decayLocked(now int64) {
	e := now - a.stamp.Load()
	if e <= 0 {
		return
	}
	a.usage *= math.Exp(-float64(e) / AcctTau)
	a.stamp.Store(now)
}

// rebandLocked recomputes the cached band from usage. Callers hold mu.
func (a *CPUAcct) rebandLocked() {
	b := int32(a.usage / (float64(a.Shares()) * AcctBandUnit))
	if b > AcctMaxBand {
		b = AcctMaxBand
	}
	a.band.Store(b)
}

// Charge adds delta cycles of delivered CPU at machine time now: decay,
// accumulate, recompute the band. Called at quantum boundaries only.
func (a *CPUAcct) Charge(delta, now int64) {
	if delta > 0 {
		a.Delivered.Add(delta)
	}
	a.mu.Lock()
	a.decayLocked(now)
	a.usage += float64(delta)
	a.rebandLocked()
	a.mu.Unlock()
}

// Refresh ages the band if the account has gone a while without a charge,
// so a queued member of an idle group regains priority without running.
// Lock-free when fresh; TryLock keeps it off every dispatcher hot path.
func (a *CPUAcct) Refresh(now int64) {
	if now-a.stamp.Load() < AcctTau/8 {
		return
	}
	if a.mu.TryLock() {
		a.decayLocked(now)
		a.rebandLocked()
		a.mu.Unlock()
	}
}

// Band returns the cached fair-share band: 0 for an under-delivered group,
// growing as delivered CPU outruns entitlement. Lower runs first.
func (a *CPUAcct) Band() int32 { return a.band.Load() }

// Usage returns the decayed usage accumulator aged to now.
func (a *CPUAcct) Usage(now int64) float64 {
	a.mu.Lock()
	a.decayLocked(now)
	u := a.usage
	a.mu.Unlock()
	return u
}
