package proc

import (
	"repro/internal/klock"
)

// Signal numbers (the System V set we model).
const (
	SIGHUP  = 1
	SIGINT  = 2
	SIGQUIT = 3
	SIGKILL = 9
	SIGSEGV = 11
	SIGPIPE = 13
	SIGALRM = 14
	SIGTERM = 15
	SIGUSR1 = 16
	SIGUSR2 = 17
	SIGCLD  = 18

	NSig = 32
)

// Handler is a user signal handler. The kernel invokes it on the signalled
// process's own execution context, at kernel exit — normal UNIX semantics,
// which the paper insists share groups must preserve ("signals, system
// calls, traps and other process events should happen in an expected
// way").
type Handler func(sig int)

// Disposition constants: a nil entry in Handlers means default action;
// Ignore discards the signal.
func Ignore(int) {}

// defaultFatal reports whether sig's default action terminates.
func defaultFatal(sig int) bool {
	switch sig {
	case SIGCLD:
		return false
	default:
		return true
	}
}

// Post marks sig pending on p and interrupts an interruptible kernel sleep
// so the signal is noticed promptly (read on a pty, pause, wait — the slow
// operations of paper §6).
func (p *Proc) Post(sig int) {
	if sig <= 0 || sig >= NSig {
		return
	}
	if sig == SIGKILL {
		p.Killed.Store(true)
	}
	for {
		old := p.SigPending.Load()
		if p.SigPending.CompareAndSwap(old, old|1<<uint(sig)) {
			break
		}
	}
	p.interruptSleep()
}

// interruptSleep breaks the interruptible kernel sleep in progress, if any.
// A process blocked on a WaitList (pipe, message queue, semaphore set,
// accept) has no registered sleepSema; poking its wake token makes the
// sleep loop wake, re-check its condition, and notice SignalPending — the
// EINTR path. A stale token costs at most one tolerated spurious wake.
func (p *Proc) interruptSleep() {
	p.sleepMu.Lock()
	s := p.sleepSema
	p.sleepMu.Unlock()
	if s != nil {
		s.Interrupt(p)
		return
	}
	p.NotifyWake()
}

// SignalPending implements klock.Interruptible: it reports whether any
// deliverable signal is pending.
func (p *Proc) SignalPending() bool { return p.UnmaskedPending(0) }

// SleepInterruptible performs an interruptible P on s, registering the
// sleep so Post can break it. It reports whether the semaphore was
// acquired (false: interrupted by a signal).
func (p *Proc) SleepInterruptible(s *klock.Sema, reason string) bool {
	return p.SleepInterruptibleIf(s, reason, nil)
}

// SleepInterruptibleIf is SleepInterruptible with an atomic pre-sleep
// abort check (see klock.Sema.PInterruptibleIf): a signal posted before
// the sleep registers is caught by abort instead of being lost.
func (p *Proc) SleepInterruptibleIf(s *klock.Sema, reason string, abort func() bool) bool {
	p.sleepMu.Lock()
	p.sleepSema = s
	p.sleepMu.Unlock()
	ok := s.PInterruptibleIf(p, reason, abort)
	p.sleepMu.Lock()
	p.sleepSema = nil
	p.sleepMu.Unlock()
	return ok
}

// UnmaskedPending reports whether any deliverable signal is pending,
// optionally ignoring the signals in ignore (a bitmask).
func (p *Proc) UnmaskedPending(ignore uint32) bool {
	pend := p.SigPending.Load()
	avail := pend&^p.SigMask | pend&(1<<SIGKILL)
	return avail&^ignore != 0
}

// PendingSignal dequeues the lowest pending, unmasked signal, or 0.
// SIGKILL cannot be masked.
func (p *Proc) PendingSignal() int {
	for {
		old := p.SigPending.Load()
		avail := old &^ p.SigMask
		avail |= old & (1 << SIGKILL)
		if avail == 0 {
			return 0
		}
		sig := 0
		for s := 1; s < NSig; s++ {
			if avail&(1<<uint(s)) != 0 {
				sig = s
				break
			}
		}
		if p.SigPending.CompareAndSwap(old, old&^(1<<uint(sig))) {
			return sig
		}
	}
}

// SignalAction resolves what to do with sig: the installed handler, or nil
// with fatal reporting whether the default action terminates the process.
func (p *Proc) SignalAction(sig int) (h Handler, fatal bool) {
	if sig == SIGKILL {
		return nil, true // SIGKILL cannot be caught or ignored
	}
	p.Mu.Lock()
	h = p.Handlers[sig]
	p.Mu.Unlock()
	if h != nil {
		return h, false
	}
	return nil, defaultFatal(sig)
}

// SetHandler installs a handler (nil restores the default action).
func (p *Proc) SetHandler(sig int, h Handler) {
	if sig <= 0 || sig >= NSig || sig == SIGKILL {
		return
	}
	p.Mu.Lock()
	p.Handlers[sig] = h
	p.Mu.Unlock()
}
