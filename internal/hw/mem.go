// Package hw simulates the hardware substrate the paper's kernel runs on: a
// MIPS R2000-style shared-memory multiprocessor with per-CPU software-managed
// TLBs, a physical page-frame pool, and a cycle cost model.
//
// The simulation is faithful to the two hardware properties the share-group
// design actually depends on: the TLB is refilled and flushed entirely by
// kernel software (which makes the synchronous shootdown protocol of paper
// §6.2 possible), and memory words support atomic compare-and-swap (which
// makes user-level busy-wait synchronization possible).
package hw

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Page geometry. 4 KiB pages, 32-bit virtual addresses, matching the R2000.
const (
	PageShift    = 12
	PageSize     = 1 << PageShift
	PageMask     = PageSize - 1
	WordsPerPage = PageSize / 4
)

// VAddr is a 32-bit virtual address.
type VAddr uint32

// PFN is a physical page frame number.
type PFN uint32

// NoPFN marks a page-table slot with no frame assigned (demand fill pending).
const NoPFN PFN = ^PFN(0)

// VPN returns the virtual page number of va.
func (va VAddr) VPN() uint32 { return uint32(va) >> PageShift }

// Offset returns the byte offset of va within its page.
func (va VAddr) Offset() uint32 { return uint32(va) & PageMask }

// PageBase returns the address of the first byte of va's page.
func (va VAddr) PageBase() VAddr { return va &^ VAddr(PageMask) }

// Memory is the machine's physical memory: a pool of page frames with
// per-frame reference counts. Reference counts above one arise from
// copy-on-write duplication (paper §6.2): a frame is writable through a
// mapping only while its count is exactly one.
type Memory struct {
	mu       sync.Mutex
	frames   [][]uint32 // frame storage, allocated lazily
	refs     []int32    // per-frame reference counts
	free     []PFN      // recycled frames
	capacity int        // maximum number of frames
	inUse    int

	// Statistics.
	Allocs atomic.Int64
	Frees  atomic.Int64
	Copies atomic.Int64
}

// NewMemory creates a physical memory of capacity page frames.
func NewMemory(capacity int) *Memory {
	if capacity <= 0 {
		panic("hw: memory capacity must be positive")
	}
	return &Memory{capacity: capacity}
}

// Capacity returns the total number of frames the memory can hold.
func (m *Memory) Capacity() int { return m.capacity }

// InUse returns the number of frames currently allocated.
func (m *Memory) InUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inUse
}

// ErrNoMemory is returned when the frame pool is exhausted.
var ErrNoMemory = fmt.Errorf("hw: out of physical memory")

// Alloc allocates a zeroed frame with reference count one.
func (m *Memory) Alloc() (PFN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inUse >= m.capacity {
		return NoPFN, ErrNoMemory
	}
	m.inUse++
	m.Allocs.Add(1)
	if n := len(m.free); n > 0 {
		pfn := m.free[n-1]
		m.free = m.free[:n-1]
		clear(m.frames[pfn])
		m.refs[pfn] = 1
		return pfn, nil
	}
	pfn := PFN(len(m.frames))
	m.frames = append(m.frames, make([]uint32, WordsPerPage))
	m.refs = append(m.refs, 1)
	return pfn, nil
}

// IncRef increments the reference count of pfn (copy-on-write duplication).
func (m *Memory) IncRef(pfn PFN) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.refs[pfn] <= 0 {
		panic("hw: IncRef on free frame")
	}
	m.refs[pfn]++
}

// DecRef decrements the reference count of pfn, releasing the frame when it
// reaches zero. It returns the remaining count.
func (m *Memory) DecRef(pfn PFN) int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.refs[pfn] <= 0 {
		panic("hw: DecRef on free frame")
	}
	m.refs[pfn]--
	n := m.refs[pfn]
	if n == 0 {
		m.free = append(m.free, pfn)
		m.inUse--
		m.Frees.Add(1)
	}
	return n
}

// Ref returns the current reference count of pfn.
func (m *Memory) Ref(pfn PFN) int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.refs[pfn]
}

// frame returns the word slice backing pfn. Frames are never reallocated
// once created, so the returned slice stays valid; the refs table says
// whether its content is live.
func (m *Memory) frame(pfn PFN) []uint32 {
	m.mu.Lock()
	f := m.frames[pfn]
	m.mu.Unlock()
	return f
}

// CopyFrame allocates a new frame holding a copy of src (the copy-on-write
// copy path) and returns it with reference count one.
func (m *Memory) CopyFrame(src PFN) (PFN, error) {
	dst, err := m.Alloc()
	if err != nil {
		return NoPFN, err
	}
	s, d := m.frame(src), m.frame(dst)
	for i := range s {
		atomic.StoreUint32(&d[i], atomic.LoadUint32(&s[i]))
	}
	m.Copies.Add(1)
	return dst, nil
}

// LoadWord atomically loads the 32-bit word at the given word offset of pfn.
func (m *Memory) LoadWord(pfn PFN, word uint32) uint32 {
	return atomic.LoadUint32(&m.frame(pfn)[word])
}

// StoreWord atomically stores v at the given word offset of pfn.
func (m *Memory) StoreWord(pfn PFN, word uint32, v uint32) {
	atomic.StoreUint32(&m.frame(pfn)[word], v)
}

// CASWord performs an atomic compare-and-swap on a word of pfn. This models
// the hardware interlocked operation that user-level spinlocks are built on
// (paper §3: "some form of hardware supported lock is usually best").
func (m *Memory) CASWord(pfn PFN, word uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(&m.frame(pfn)[word], old, new)
}

// AddWord atomically adds delta to a word of pfn and returns the new value.
func (m *Memory) AddWord(pfn PFN, word uint32, delta uint32) uint32 {
	return atomic.AddUint32(&m.frame(pfn)[word], delta)
}

// ReadBytes copies len(dst) bytes from pfn starting at byte offset off.
// The range must lie within one page.
func (m *Memory) ReadBytes(pfn PFN, off uint32, dst []byte) {
	if int(off)+len(dst) > PageSize {
		panic("hw: ReadBytes crosses page boundary")
	}
	f := m.frame(pfn)
	for i := range dst {
		b := off + uint32(i)
		w := atomic.LoadUint32(&f[b>>2])
		dst[i] = byte(w >> ((b & 3) * 8))
	}
}

// WriteBytes copies src into pfn starting at byte offset off.
// The range must lie within one page.
func (m *Memory) WriteBytes(pfn PFN, off uint32, src []byte) {
	if int(off)+len(src) > PageSize {
		panic("hw: WriteBytes crosses page boundary")
	}
	f := m.frame(pfn)
	for i := range src {
		b := off + uint32(i)
		w := b >> 2
		shift := (b & 3) * 8
		for {
			old := atomic.LoadUint32(&f[w])
			new := old&^(0xff<<shift) | uint32(src[i])<<shift
			if atomic.CompareAndSwapUint32(&f[w], old, new) {
				break
			}
		}
	}
}
