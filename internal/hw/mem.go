// Package hw simulates the hardware substrate the paper's kernel runs on: a
// MIPS R2000-style shared-memory multiprocessor with per-CPU software-managed
// TLBs, a physical page-frame pool, and a cycle cost model.
//
// The simulation is faithful to the two hardware properties the share-group
// design actually depends on: the TLB is refilled and flushed entirely by
// kernel software (which makes the synchronous shootdown protocol of paper
// §6.2 possible), and memory words support atomic compare-and-swap (which
// makes user-level busy-wait synchronization possible).
package hw

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Page geometry. 4 KiB pages, 32-bit virtual addresses, matching the R2000.
const (
	PageShift    = 12
	PageSize     = 1 << PageShift
	PageMask     = PageSize - 1
	WordsPerPage = PageSize / 4
)

// VAddr is a 32-bit virtual address.
type VAddr uint32

// PFN is a physical page frame number.
type PFN uint32

// NoPFN marks a page-table slot with no frame assigned (demand fill pending).
const NoPFN PFN = ^PFN(0)

// VPN returns the virtual page number of va.
func (va VAddr) VPN() uint32 { return uint32(va) >> PageShift }

// Offset returns the byte offset of va within its page.
func (va VAddr) Offset() uint32 { return uint32(va) & PageMask }

// PageBase returns the address of the first byte of va's page.
func (va VAddr) PageBase() VAddr { return va &^ VAddr(PageMask) }

// frameArray is the word storage of one page frame.
type frameArray [WordsPerPage]uint32

// Frame-cache geometry: a CPU refills its cache with refillBatch frames at a
// time and gives half back to the global pool when it accumulates more than
// cacheMax, so frames circulate instead of pooling on one processor.
const (
	refillBatch = 16
	cacheMax    = 2 * refillBatch
)

// frameCache is one CPU's private stock of free frames. Its lock is
// effectively uncontended — only that CPU's allocations and frees touch it,
// except for the rare scavenge pass when the global pool runs dry.
type frameCache struct {
	mu   sync.Mutex
	free []PFN
	_    [64]byte // keep neighbouring caches off the same cache line
}

// Memory is the machine's physical memory: a pool of page frames with
// per-frame reference counts. Reference counts above one arise from
// copy-on-write duplication (paper §6.2): a frame is writable through a
// mapping only while its count is exactly one.
//
// The hot paths are deliberately lock-free or per-CPU: the frame and
// refcount tables are preallocated at NewMemory so word access and
// IncRef/DecRef/Ref never take a lock, and allocation is served from
// per-CPU free-frame caches (AttachCaches) that refill from the global
// pool in batches. Only the batch refill/drain path takes the pool lock.
type Memory struct {
	capacity int
	frames   []atomic.Pointer[frameArray] // frame storage, published once per frame
	refs     []atomic.Int32               // per-frame reference counts
	inUse    atomic.Int64                 // referenced frames (reservation counter)

	pool struct {
		mu    sync.Mutex
		free  []PFN // recycled frames, already zeroed
		fresh int   // next never-used frame index
	}
	caches []frameCache // per-CPU free-frame caches (nil before AttachCaches)

	// Statistics.
	Allocs     atomic.Int64
	Frees      atomic.Int64
	Copies     atomic.Int64
	CacheHits  atomic.Int64 // allocations served from a per-CPU cache
	Refills    atomic.Int64 // batch refills of a per-CPU cache from the pool
	Drains     atomic.Int64 // batch give-backs from a cache to the pool
	Scavenges  atomic.Int64 // frames reclaimed from other CPUs' caches
	PoolAllocs atomic.Int64 // allocations that went to the global pool

	// Fault-path fill statistics (maintained by vm.FillOn; they live here
	// because Memory is the one object every region shares).
	FastFills atomic.Int64 // resident faults resolved lock-free
	SlowFills atomic.Int64 // faults that took a fill stripe (zero fill, COW, upgrade)

	// Reclaim statistics (exhaustion degradation).
	Reclaims        atomic.Int64 // cache-drain-and-reclaim passes
	ReclaimedFrames atomic.Int64 // frames returned to the pool by reclaims

	// FI, when armed at SiteFrameAlloc, makes AllocOn exercise the
	// exhaustion path deterministically: a hit first drains the per-CPU
	// caches back to the pool (the reclaim fallback a real pageout daemon
	// would provide), and a fraction of hits still fail with ErrNoMemory.
	FI *faultinject.Plan
}

// NewMemory creates a physical memory of capacity page frames. Frame
// storage itself is still allocated on demand, but the frame and refcount
// tables are preallocated so lookups never need the pool lock.
func NewMemory(capacity int) *Memory {
	if capacity <= 0 {
		panic("hw: memory capacity must be positive")
	}
	return &Memory{
		capacity: capacity,
		frames:   make([]atomic.Pointer[frameArray], capacity),
		refs:     make([]atomic.Int32, capacity),
	}
}

// AttachCaches equips the memory with ncpu per-CPU free-frame caches.
// AllocOn/DecRefOn calls with a CPU id in range are then served from the
// caller's cache; out-of-range ids (and the plain Alloc/DecRef forms) use
// the global pool directly.
func (m *Memory) AttachCaches(ncpu int) {
	if ncpu <= 0 {
		return
	}
	m.caches = make([]frameCache, ncpu)
}

// Capacity returns the total number of frames the memory can hold.
func (m *Memory) Capacity() int { return m.capacity }

// InUse returns the number of frames currently allocated (reference count
// above zero). Frames parked in per-CPU caches are free, not in use.
func (m *Memory) InUse() int { return int(m.inUse.Load()) }

// CachedFrames returns the number of free frames parked in per-CPU caches.
func (m *Memory) CachedFrames() int {
	n := 0
	for i := range m.caches {
		c := &m.caches[i]
		c.mu.Lock()
		n += len(c.free)
		c.mu.Unlock()
	}
	return n
}

// ErrNoMemory is returned when the frame pool is exhausted.
var ErrNoMemory = fmt.Errorf("hw: out of physical memory")

// cache returns cpu's frame cache, or nil when cpu has none.
func (m *Memory) cache(cpu int) *frameCache {
	if cpu < 0 || cpu >= len(m.caches) {
		return nil
	}
	return &m.caches[cpu]
}

// Alloc allocates a zeroed frame with reference count one from the global
// pool (no CPU affinity).
func (m *Memory) Alloc() (PFN, error) { return m.AllocOn(-1) }

// AllocOn allocates a zeroed frame with reference count one, preferring
// cpu's free-frame cache. Frames are zeroed when freed, so no zeroing
// happens here and no lock is held while a frame's contents are cleared.
func (m *Memory) AllocOn(cpu int) (PFN, error) {
	// Deterministic exhaustion, before the reservation so an injected
	// failure neither leaks an inUse reservation nor counts as an Alloc.
	if pl := m.FI; pl != nil {
		if hit, draw := pl.Decide(faultinject.SiteFrameAlloc, uint32(cpu+1)); hit {
			m.ReclaimCaches()
			if draw%4 == 0 {
				// A quarter of hits are hard failures that survive the
				// reclaim — the caller's ENOMEM path must cope.
				pl.Note(faultinject.SiteFrameAlloc, faultinject.FaultENOMEM, uint32(cpu+1))
				return NoPFN, ErrNoMemory
			}
			pl.Note(faultinject.SiteFrameAlloc, faultinject.FaultReclaim, uint32(cpu+1))
		}
	}
	// Reserve one frame against capacity. The counter includes in-flight
	// reservations, so once the CAS succeeds a free frame is guaranteed to
	// exist somewhere (pool, fresh range, or a cache) for every reserver.
	for {
		n := m.inUse.Load()
		if int(n) >= m.capacity {
			return NoPFN, ErrNoMemory
		}
		if m.inUse.CompareAndSwap(n, n+1) {
			break
		}
	}
	m.Allocs.Add(1)

	if c := m.cache(cpu); c != nil {
		c.mu.Lock()
		if n := len(c.free); n > 0 {
			pfn := c.free[n-1]
			c.free = c.free[:n-1]
			c.mu.Unlock()
			m.CacheHits.Add(1)
			m.refs[pfn].Store(1)
			return pfn, nil
		}
		c.mu.Unlock()
		// Cache empty: refill a batch from the pool (keeping one frame for
		// the caller). No cache lock is held while the pool lock is taken.
		for {
			batch := m.takeFromPool(refillBatch)
			if len(batch) == 0 {
				batch = m.scavenge(cpu, refillBatch/2)
			}
			if len(batch) > 0 {
				pfn := batch[0]
				if rest := batch[1:]; len(rest) > 0 {
					c.mu.Lock()
					c.free = append(c.free, rest...)
					c.mu.Unlock()
				}
				m.Refills.Add(1)
				m.refs[pfn].Store(1)
				return pfn, nil
			}
			// Every free frame is transiently in another allocator's hands;
			// our reservation guarantees one will surface.
			runtime.Gosched()
		}
	}

	// No cache: serve one frame straight from the pool.
	for {
		batch := m.takeFromPool(1)
		if len(batch) == 0 {
			batch = m.scavenge(-1, 1)
		}
		if len(batch) > 0 {
			m.PoolAllocs.Add(1)
			pfn := batch[0]
			m.refs[pfn].Store(1)
			return pfn, nil
		}
		runtime.Gosched()
	}
}

// takeFromPool removes up to want free frames from the global pool,
// minting storage for never-used frames when the recycled list runs out.
func (m *Memory) takeFromPool(want int) []PFN {
	m.pool.mu.Lock()
	defer m.pool.mu.Unlock()
	var out []PFN
	if n := len(m.pool.free); n > 0 {
		take := want
		if take > n {
			take = n
		}
		out = append(out, m.pool.free[n-take:]...)
		m.pool.free = m.pool.free[:n-take]
	}
	for len(out) < want && m.pool.fresh < m.capacity {
		pfn := PFN(m.pool.fresh)
		m.pool.fresh++
		m.frames[pfn].Store(new(frameArray))
		out = append(out, pfn)
	}
	return out
}

// scavenge pulls up to want free frames out of other CPUs' caches — the
// path of last resort when the global pool is dry but cached frames exist.
// It never holds the pool lock or more than one cache lock at a time.
func (m *Memory) scavenge(cpu, want int) []PFN {
	for i := range m.caches {
		if i == cpu {
			continue
		}
		c := &m.caches[i]
		c.mu.Lock()
		if n := len(c.free); n > 0 {
			take := want
			if take > n {
				take = n
			}
			out := append([]PFN(nil), c.free[n-take:]...)
			c.free = c.free[:n-take]
			c.mu.Unlock()
			m.Scavenges.Add(int64(len(out)))
			return out
		}
		c.mu.Unlock()
	}
	return nil
}

// ReclaimCaches drains every per-CPU free-frame cache back into the global
// pool, returning how many frames moved. This is the memory-pressure
// degradation step: before the allocator reports ENOMEM it repatriates
// frames parked on idle CPUs so a genuinely free frame is never stranded.
// One cache lock is held at a time, then the pool lock once.
func (m *Memory) ReclaimCaches() int {
	var drained []PFN
	for i := range m.caches {
		c := &m.caches[i]
		c.mu.Lock()
		if len(c.free) > 0 {
			drained = append(drained, c.free...)
			c.free = c.free[:0]
		}
		c.mu.Unlock()
	}
	if len(drained) > 0 {
		m.pool.mu.Lock()
		m.pool.free = append(m.pool.free, drained...)
		m.pool.mu.Unlock()
		m.ReclaimedFrames.Add(int64(len(drained)))
	}
	m.Reclaims.Add(1)
	return len(drained)
}

// IncRef increments the reference count of pfn (copy-on-write duplication).
func (m *Memory) IncRef(pfn PFN) {
	if m.refs[pfn].Add(1) <= 1 {
		panic("hw: IncRef on free frame")
	}
}

// DecRef decrements the reference count of pfn, releasing the frame to the
// global pool when it reaches zero. It returns the remaining count.
func (m *Memory) DecRef(pfn PFN) int32 { return m.DecRefOn(pfn, -1) }

// DecRefOn is DecRef with CPU affinity: a frame that dies is zeroed outside
// any lock and parked in cpu's cache for reuse, draining a batch back to
// the global pool when the cache overfills.
func (m *Memory) DecRefOn(pfn PFN, cpu int) int32 {
	n := m.refs[pfn].Add(-1)
	if n < 0 {
		panic("hw: DecRef on free frame")
	}
	if n > 0 {
		return n
	}
	// Frame is dead: zero it now, outside every lock, so the next Alloc
	// pays nothing and no other CPU stalls behind the clear.
	clear(m.frames[pfn].Load()[:])
	m.Frees.Add(1)
	m.inUse.Add(-1)

	if c := m.cache(cpu); c != nil {
		c.mu.Lock()
		c.free = append(c.free, pfn)
		var spill []PFN
		if len(c.free) > cacheMax {
			h := len(c.free) - refillBatch
			spill = append([]PFN(nil), c.free[h:]...)
			c.free = c.free[:h]
		}
		c.mu.Unlock()
		if spill != nil {
			m.pool.mu.Lock()
			m.pool.free = append(m.pool.free, spill...)
			m.pool.mu.Unlock()
			m.Drains.Add(1)
		}
		return 0
	}
	m.pool.mu.Lock()
	m.pool.free = append(m.pool.free, pfn)
	m.pool.mu.Unlock()
	return 0
}

// Ref returns the current reference count of pfn.
func (m *Memory) Ref(pfn PFN) int32 { return m.refs[pfn].Load() }

// frame returns the word slice backing pfn without taking any lock: the
// storage pointer is published atomically exactly once, when the frame is
// first minted, and frames are never reallocated.
func (m *Memory) frame(pfn PFN) []uint32 {
	return m.frames[pfn].Load()[:]
}

// CopyFrame allocates a new frame holding a copy of src (the copy-on-write
// copy path) and returns it with reference count one.
func (m *Memory) CopyFrame(src PFN) (PFN, error) { return m.CopyFrameOn(src, -1) }

// CopyFrameOn is CopyFrame allocating from cpu's frame cache.
func (m *Memory) CopyFrameOn(src PFN, cpu int) (PFN, error) {
	dst, err := m.AllocOn(cpu)
	if err != nil {
		return NoPFN, err
	}
	s, d := m.frame(src), m.frame(dst)
	for i := range s {
		atomic.StoreUint32(&d[i], atomic.LoadUint32(&s[i]))
	}
	m.Copies.Add(1)
	return dst, nil
}

// LoadWord atomically loads the 32-bit word at the given word offset of pfn.
func (m *Memory) LoadWord(pfn PFN, word uint32) uint32 {
	return atomic.LoadUint32(&m.frame(pfn)[word])
}

// StoreWord atomically stores v at the given word offset of pfn.
func (m *Memory) StoreWord(pfn PFN, word uint32, v uint32) {
	atomic.StoreUint32(&m.frame(pfn)[word], v)
}

// CASWord performs an atomic compare-and-swap on a word of pfn. This models
// the hardware interlocked operation that user-level spinlocks are built on
// (paper §3: "some form of hardware supported lock is usually best").
func (m *Memory) CASWord(pfn PFN, word uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(&m.frame(pfn)[word], old, new)
}

// AddWord atomically adds delta to a word of pfn and returns the new value.
func (m *Memory) AddWord(pfn PFN, word uint32, delta uint32) uint32 {
	return atomic.AddUint32(&m.frame(pfn)[word], delta)
}

// ReadBytes copies len(dst) bytes from pfn starting at byte offset off.
// The range must lie within one page.
func (m *Memory) ReadBytes(pfn PFN, off uint32, dst []byte) {
	if int(off)+len(dst) > PageSize {
		panic("hw: ReadBytes crosses page boundary")
	}
	f := m.frame(pfn)
	for i := range dst {
		b := off + uint32(i)
		w := atomic.LoadUint32(&f[b>>2])
		dst[i] = byte(w >> ((b & 3) * 8))
	}
}

// WriteBytes copies src into pfn starting at byte offset off.
// The range must lie within one page.
func (m *Memory) WriteBytes(pfn PFN, off uint32, src []byte) {
	if int(off)+len(src) > PageSize {
		panic("hw: WriteBytes crosses page boundary")
	}
	f := m.frame(pfn)
	for i := range src {
		b := off + uint32(i)
		w := b >> 2
		shift := (b & 3) * 8
		for {
			old := atomic.LoadUint32(&f[w])
			new := old&^(0xff<<shift) | uint32(src[i])<<shift
			if atomic.CompareAndSwapUint32(&f[w], old, new) {
				break
			}
		}
	}
}
