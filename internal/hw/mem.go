// Package hw simulates the hardware substrate the paper's kernel runs on: a
// MIPS R2000-style shared-memory multiprocessor with per-CPU software-managed
// TLBs, a physical page-frame pool, and a cycle cost model.
//
// The simulation is faithful to the two hardware properties the share-group
// design actually depends on: the TLB is refilled and flushed entirely by
// kernel software (which makes the synchronous shootdown protocol of paper
// §6.2 possible), and memory words support atomic compare-and-swap (which
// makes user-level busy-wait synchronization possible).
package hw

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Page geometry. 4 KiB pages, 32-bit virtual addresses, matching the R2000.
const (
	PageShift    = 12
	PageSize     = 1 << PageShift
	PageMask     = PageSize - 1
	WordsPerPage = PageSize / 4
)

// VAddr is a 32-bit virtual address.
type VAddr uint32

// PFN is a physical page frame number.
type PFN uint32

// NoPFN marks a page-table slot with no frame assigned (demand fill pending).
const NoPFN PFN = ^PFN(0)

// VPN returns the virtual page number of va.
func (va VAddr) VPN() uint32 { return uint32(va) >> PageShift }

// Offset returns the byte offset of va within its page.
func (va VAddr) Offset() uint32 { return uint32(va) & PageMask }

// PageBase returns the address of the first byte of va's page.
func (va VAddr) PageBase() VAddr { return va &^ VAddr(PageMask) }

// frameArray is the word storage of one page frame.
type frameArray [WordsPerPage]uint32

// Frame-cache geometry: a CPU refills its cache with refillBatch frames at a
// time and gives half back to the global pool when it accumulates more than
// cacheMax, so frames circulate instead of pooling on one processor.
const (
	refillBatch = 16
	cacheMax    = 2 * refillBatch
)

// frameCache is one CPU's private stock of free frames. Its lock is
// effectively uncontended — only that CPU's allocations and frees touch it,
// except for the rare scavenge pass when the node's pools run dry.
type frameCache struct {
	mu   sync.Mutex
	free []PFN
	_    [64]byte // keep neighbouring caches off the same cache line
}

// framePool is one NUMA node's slice of physical memory: a recycled free
// list plus a never-used fresh range [fresh, end). A flat machine has one
// pool covering everything.
type framePool struct {
	mu    sync.Mutex
	free  []PFN // recycled frames homed on this node, already zeroed
	fresh int   // next never-used frame index
	lo    int   // first frame this node owns
	end   int   // one past the last frame this node owns
}

// Memory is the machine's physical memory: page frames with per-frame
// reference counts, partitioned into per-node pools by the NUMA topology.
// Reference counts above one arise from copy-on-write duplication (paper
// §6.2): a frame is writable through a mapping only while its count is
// exactly one.
//
// The hot paths are deliberately lock-free or per-CPU: the frame and
// refcount tables are preallocated at NewMemory so word access and
// IncRef/DecRef/Ref never take a lock, and allocation is served from
// per-CPU free-frame caches (AttachTopology) that refill from the caller's
// home-node pool in batches, falling back nearest-first to remote nodes
// only when the home node is dry. Only the batch refill/drain path takes a
// pool lock, and dead frames always drain back to the pool of the node
// that owns them, so locality is self-restoring.
type Memory struct {
	capacity int
	frames   []atomic.Pointer[frameArray] // frame storage, published once per frame
	refs     []atomic.Int32               // per-frame reference counts
	owners   []atomic.Pointer[FrameAcct]  // charging principal per frame (nil = unowned)
	inUse    atomic.Int64                 // referenced frames (reservation counter)

	topo      Topology
	pools     []framePool  // one per node (always at least one)
	nodeBase  int          // frames per node, small nodes
	nodeExtra int          // first nodeExtra nodes own nodeBase+1 frames
	caches    []frameCache // per-CPU free-frame caches (nil before AttachTopology)

	// NodeBlind, when set, makes refills ignore the caller's home node and
	// rotate round-robin over every pool — the flat allocator a pre-NUMA
	// kernel would use, kept as the S6 ablation so the locality win is
	// measurable on the same topology.
	NodeBlind bool
	blindNext atomic.Uint32 // round-robin cursor for node-blind refills

	// Statistics.
	Allocs     atomic.Int64
	Frees      atomic.Int64
	Copies     atomic.Int64
	CacheHits  atomic.Int64 // allocations served from a per-CPU cache
	Refills    atomic.Int64 // batch refills of a per-CPU cache from a pool
	Drains     atomic.Int64 // batch give-backs from a cache to the pools
	Scavenges  atomic.Int64 // frames reclaimed from other CPUs' caches
	PoolAllocs atomic.Int64 // allocations that went straight to a pool

	// Locality statistics: frames taken from the caller's home-node pool
	// versus a remote node's pool (the nearest-first fallback).
	LocalTakes  atomic.Int64
	RemoteTakes atomic.Int64

	// Fault-path fill statistics (maintained by vm.FillOn; they live here
	// because Memory is the one object every region shares).
	FastFills atomic.Int64 // resident faults resolved lock-free
	SlowFills atomic.Int64 // faults that took a fill stripe (zero fill, COW, upgrade)

	// Lazy-duplication statistics (maintained by vm.DupLazy and the
	// first-touch materialization; here for the same reason as the fill
	// counters). Conservation: LazyDups == LazyBreaks + LazyDrops once a
	// creation storm has drained.
	LazyDups       atomic.Int64 // O(1) region clones created at spawn
	LazyBreaks     atomic.Int64 // clones materialized by a first touch
	LazyDrops      atomic.Int64 // clones that exited untouched (no walk ever)
	LazyBreakPages atomic.Int64 // page-table slots walked by materializations

	// Reclaim statistics (exhaustion degradation).
	Reclaims        atomic.Int64 // cache-drain-and-reclaim passes
	ReclaimedFrames atomic.Int64 // frames returned to the pools by reclaims

	// FI, when armed at SiteFrameAlloc, makes AllocOn exercise the
	// exhaustion path deterministically: a hit first drains the per-CPU
	// caches back to the pools (the reclaim fallback a real pageout daemon
	// would provide), and a fraction of hits still fail with ErrNoMemory.
	FI *faultinject.Plan
}

// NewMemory creates a physical memory of capacity page frames with a flat
// (single-node) topology. Frame storage itself is still allocated on
// demand, but the frame and refcount tables are preallocated so lookups
// never need a pool lock.
func NewMemory(capacity int) *Memory {
	if capacity <= 0 {
		panic("hw: memory capacity must be positive")
	}
	m := &Memory{
		capacity: capacity,
		frames:   make([]atomic.Pointer[frameArray], capacity),
		refs:     make([]atomic.Int32, capacity),
		owners:   make([]atomic.Pointer[FrameAcct], capacity),
	}
	m.setTopology(Topology{NCPU: 0, Nodes: 1})
	return m
}

// AttachCaches equips the memory with ncpu per-CPU free-frame caches on a
// flat topology. AllocOn/DecRefOn calls with a CPU id in range are then
// served from the caller's cache; out-of-range ids (and the plain
// Alloc/DecRef forms) use the pools directly.
func (m *Memory) AttachCaches(ncpu int) {
	m.AttachTopology(NewTopology(ncpu, 1))
}

// AttachTopology equips the memory with t.NCPU per-CPU caches and
// partitions the frame space into t.Nodes per-node pools (node i owns a
// contiguous ~capacity/nodes block). Must be called before the first
// allocation; it panics once frames are in flight, because repartitioning
// would re-home live frames.
func (m *Memory) AttachTopology(t Topology) {
	if m.inUse.Load() > 0 {
		panic("hw: AttachTopology after allocation")
	}
	for i := range m.pools {
		p := &m.pools[i]
		if p.fresh != p.lo || len(p.free) > 0 {
			panic("hw: AttachTopology after allocation")
		}
	}
	if t.NCPU > 0 {
		m.caches = make([]frameCache, t.NCPU)
	}
	m.setTopology(t)
}

// setTopology partitions [0, capacity) into per-node pools.
func (m *Memory) setTopology(t Topology) {
	nodes := t.Nodes
	if nodes < 1 {
		nodes = 1
	}
	if nodes > m.capacity {
		nodes = m.capacity
	}
	t.Nodes = nodes
	m.topo = t
	m.nodeBase = m.capacity / nodes
	m.nodeExtra = m.capacity % nodes
	m.pools = make([]framePool, nodes)
	lo := 0
	for i := range m.pools {
		size := m.nodeBase
		if i < m.nodeExtra {
			size++
		}
		m.pools[i] = framePool{lo: lo, fresh: lo, end: lo + size}
		lo += size
	}
}

// Topo returns the memory's NUMA topology.
func (m *Memory) Topo() Topology { return m.topo }

// Nodes returns the number of per-node frame pools.
func (m *Memory) Nodes() int { return len(m.pools) }

// NodeOfPFN returns the node that owns pfn's frame (its home pool).
func (m *Memory) NodeOfPFN(pfn PFN) int {
	if len(m.pools) <= 1 {
		return 0
	}
	f := int(pfn)
	split := m.nodeExtra * (m.nodeBase + 1)
	if f < split {
		return f / (m.nodeBase + 1)
	}
	return m.nodeExtra + (f-split)/m.nodeBase
}

// NodePoolStat is one node pool's occupancy snapshot.
type NodePoolStat struct {
	Node     int
	Capacity int // frames the node owns
	Free     int // recycled frames parked in the node's pool
	Fresh    int // never-used frames remaining
}

// NodeOccupancy snapshots every node pool (sgtop's per-node display).
func (m *Memory) NodeOccupancy() []NodePoolStat {
	out := make([]NodePoolStat, len(m.pools))
	for i := range m.pools {
		p := &m.pools[i]
		p.mu.Lock()
		out[i] = NodePoolStat{Node: i, Capacity: p.end - p.lo, Free: len(p.free), Fresh: p.end - p.fresh}
		p.mu.Unlock()
	}
	return out
}

// Capacity returns the total number of frames the memory can hold.
func (m *Memory) Capacity() int { return m.capacity }

// InUse returns the number of frames currently allocated (reference count
// above zero). Frames parked in per-CPU caches are free, not in use.
func (m *Memory) InUse() int { return int(m.inUse.Load()) }

// CachedFrames returns the number of free frames parked in per-CPU caches.
func (m *Memory) CachedFrames() int {
	n := 0
	for i := range m.caches {
		c := &m.caches[i]
		c.mu.Lock()
		n += len(c.free)
		c.mu.Unlock()
	}
	return n
}

// ErrNoMemory is returned when the frame pool is exhausted.
var ErrNoMemory = fmt.Errorf("hw: out of physical memory")

// cache returns cpu's frame cache, or nil when cpu has none.
func (m *Memory) cache(cpu int) *frameCache {
	if cpu < 0 || cpu >= len(m.caches) {
		return nil
	}
	return &m.caches[cpu]
}

// Alloc allocates a zeroed frame with reference count one from the node-0
// pool chain (no CPU affinity).
func (m *Memory) Alloc() (PFN, error) { return m.AllocOn(-1) }

// AllocOn allocates a zeroed frame with reference count one, preferring
// cpu's free-frame cache and refilling it from cpu's home-node pool, then
// from remote nodes nearest-first, without charging any frame account.
func (m *Memory) AllocOn(cpu int) (PFN, error) { return m.AllocFor(cpu, nil) }

// AllocFor is AllocOn charging the grant to acct (nil = unaccounted): the
// quota is reserved before the frame reservation so a refusal leaks
// nothing, the granted frame is tagged with acct, and the final DecRef
// uncharges it. A full account fails with ErrNoQuota without touching the
// pools. Frames are zeroed when freed, so no zeroing happens here and no
// lock is held while a frame's contents are cleared.
func (m *Memory) AllocFor(cpu int, acct *FrameAcct) (PFN, error) {
	return m.AllocResv(cpu, acct, nil)
}

// AllocResv is AllocFor drawing the quota charge from a spawn-time
// reservation when one is supplied for the same account and still has
// prepaid frames left; only when the reservation is absent, mismatched, or
// dry does the allocation fall back to the account's per-frame CAS. The
// granted frame is tagged with acct either way, so release accounting is
// identical.
func (m *Memory) AllocResv(cpu int, acct *FrameAcct, resv *FrameResv) (PFN, error) {
	prepaid := resv != nil && acct != nil && resv.acct == acct && resv.consume()
	if !prepaid && acct != nil && !acct.tryCharge() {
		return NoPFN, ErrNoQuota
	}
	uncharge := func() {
		if prepaid {
			resv.refund()
		} else if acct != nil {
			acct.uncharge()
		}
	}
	// Deterministic exhaustion, before the reservation so an injected
	// failure neither leaks an inUse reservation nor counts as an Alloc.
	if pl := m.FI; pl != nil {
		if hit, draw := pl.Decide(faultinject.SiteFrameAlloc, uint32(cpu+1)); hit {
			m.ReclaimCaches()
			if draw%4 == 0 {
				// A quarter of hits are hard failures that survive the
				// reclaim — the caller's ENOMEM path must cope.
				pl.Note(faultinject.SiteFrameAlloc, faultinject.FaultENOMEM, uint32(cpu+1))
				uncharge()
				return NoPFN, ErrNoMemory
			}
			pl.Note(faultinject.SiteFrameAlloc, faultinject.FaultReclaim, uint32(cpu+1))
		}
	}
	// Reserve one frame against capacity. The counter includes in-flight
	// reservations, so once the CAS succeeds a free frame is guaranteed to
	// exist somewhere (a pool, a fresh range, or a cache) for every
	// reserver.
	for {
		n := m.inUse.Load()
		if int(n) >= m.capacity {
			uncharge()
			return NoPFN, ErrNoMemory
		}
		if m.inUse.CompareAndSwap(n, n+1) {
			break
		}
	}
	m.Allocs.Add(1)
	node := m.topo.NodeOf(cpu)

	if c := m.cache(cpu); c != nil {
		c.mu.Lock()
		if n := len(c.free); n > 0 {
			pfn := c.free[n-1]
			c.free = c.free[:n-1]
			c.mu.Unlock()
			m.CacheHits.Add(1)
			return m.grant(pfn, acct), nil
		}
		c.mu.Unlock()
		// Cache empty: refill a batch from the pools (keeping one frame for
		// the caller). No cache lock is held while a pool lock is taken.
		for {
			batch := m.takeFromPools(node, refillBatch)
			if len(batch) == 0 {
				batch = m.scavenge(cpu, node, refillBatch/2)
			}
			if len(batch) > 0 {
				pfn := batch[0]
				if rest := batch[1:]; len(rest) > 0 {
					c.mu.Lock()
					c.free = append(c.free, rest...)
					c.mu.Unlock()
				}
				m.Refills.Add(1)
				return m.grant(pfn, acct), nil
			}
			// Every free frame is transiently in another allocator's hands;
			// our reservation guarantees one will surface.
			runtime.Gosched()
		}
	}

	// No cache: serve one frame straight from the pools.
	for {
		batch := m.takeFromPools(node, 1)
		if len(batch) == 0 {
			batch = m.scavenge(-1, node, 1)
		}
		if len(batch) > 0 {
			m.PoolAllocs.Add(1)
			return m.grant(batch[0], acct), nil
		}
		runtime.Gosched()
	}
}

// grant finalizes an allocation: reference count one, ownership tag.
func (m *Memory) grant(pfn PFN, acct *FrameAcct) PFN {
	m.refs[pfn].Store(1)
	m.owners[pfn].Store(acct)
	return pfn
}

// OwnerOf returns the frame account charged for pfn, or nil.
func (m *Memory) OwnerOf(pfn PFN) *FrameAcct { return m.owners[pfn].Load() }

// takeFromPools removes up to want free frames, walking the node pools
// nearest-first from the caller's home node (or round-robin over every
// node in the NodeBlind ablation). A batch is taken from a single pool, so
// a refill never mixes nodes; the remote fallback only triggers when the
// home pool is completely dry.
func (m *Memory) takeFromPools(node, want int) []PFN {
	if m.NodeBlind && len(m.pools) > 1 {
		node = int(m.blindNext.Add(1)) % len(m.pools)
		for i := 0; i < len(m.pools); i++ {
			if out := m.takeFromNode((node+i)%len(m.pools), want); len(out) > 0 {
				return out
			}
		}
		return nil
	}
	if len(m.pools) == 1 {
		return m.takeFromNode(0, want)
	}
	for _, n := range m.topo.NodeOrder(node) {
		if out := m.takeFromNode(n, want); len(out) > 0 {
			if n == node {
				m.LocalTakes.Add(int64(len(out)))
			} else {
				m.RemoteTakes.Add(int64(len(out)))
			}
			return out
		}
	}
	return nil
}

// takeFromNode removes up to want free frames from one node's pool,
// minting storage for never-used frames when the recycled list runs out.
func (m *Memory) takeFromNode(node, want int) []PFN {
	p := &m.pools[node]
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []PFN
	if n := len(p.free); n > 0 {
		take := want
		if take > n {
			take = n
		}
		out = append(out, p.free[n-take:]...)
		p.free = p.free[:n-take]
	}
	for len(out) < want && p.fresh < p.end {
		pfn := PFN(p.fresh)
		p.fresh++
		m.frames[pfn].Store(new(frameArray))
		out = append(out, pfn)
	}
	return out
}

// scavenge pulls up to want free frames out of other CPUs' caches — the
// path of last resort when every pool is dry but cached frames exist.
// Same-node caches are raided before remote ones, and it never holds a
// pool lock or more than one cache lock at a time.
func (m *Memory) scavenge(cpu, node, want int) []PFN {
	raid := func(i int) []PFN {
		c := &m.caches[i]
		c.mu.Lock()
		defer c.mu.Unlock()
		if n := len(c.free); n > 0 {
			take := want
			if take > n {
				take = n
			}
			out := append([]PFN(nil), c.free[n-take:]...)
			c.free = c.free[:n-take]
			m.Scavenges.Add(int64(len(out)))
			return out
		}
		return nil
	}
	for pass := 0; pass < 2; pass++ {
		for i := range m.caches {
			if i == cpu {
				continue
			}
			local := m.topo.NodeOf(i) == node
			if (pass == 0) != local {
				continue
			}
			if out := raid(i); out != nil {
				return out
			}
		}
	}
	return nil
}

// ReclaimCaches drains every per-CPU free-frame cache back into the node
// pools (each frame to the node that owns it), returning how many frames
// moved. This is the memory-pressure degradation step: before the
// allocator reports ENOMEM it repatriates frames parked on idle CPUs so a
// genuinely free frame is never stranded. One cache lock is held at a
// time, then each affected pool lock once.
func (m *Memory) ReclaimCaches() int {
	var drained []PFN
	for i := range m.caches {
		c := &m.caches[i]
		c.mu.Lock()
		if len(c.free) > 0 {
			drained = append(drained, c.free...)
			c.free = c.free[:0]
		}
		c.mu.Unlock()
	}
	if len(drained) > 0 {
		m.releaseToPools(drained)
		m.ReclaimedFrames.Add(int64(len(drained)))
	}
	m.Reclaims.Add(1)
	return len(drained)
}

// releaseToPools returns each frame to its home node's pool.
func (m *Memory) releaseToPools(frames []PFN) {
	if len(m.pools) == 1 {
		p := &m.pools[0]
		p.mu.Lock()
		p.free = append(p.free, frames...)
		p.mu.Unlock()
		return
	}
	for _, pfn := range frames {
		p := &m.pools[m.NodeOfPFN(pfn)]
		p.mu.Lock()
		p.free = append(p.free, pfn)
		p.mu.Unlock()
	}
}

// IncRef increments the reference count of pfn (copy-on-write duplication).
func (m *Memory) IncRef(pfn PFN) {
	if m.refs[pfn].Add(1) <= 1 {
		panic("hw: IncRef on free frame")
	}
}

// DecRef decrements the reference count of pfn, releasing the frame to its
// home pool when it reaches zero. It returns the remaining count.
func (m *Memory) DecRef(pfn PFN) int32 { return m.DecRefOn(pfn, -1) }

// DecRefOn is DecRef with CPU affinity: a frame that dies is zeroed outside
// any lock and parked in cpu's cache for reuse, draining a batch back to
// the home pools when the cache overfills.
func (m *Memory) DecRefOn(pfn PFN, cpu int) int32 {
	n := m.refs[pfn].Add(-1)
	if n < 0 {
		panic("hw: DecRef on free frame")
	}
	if n > 0 {
		return n
	}
	// Frame is dead: uncharge its owning account (whoever releases it),
	// then zero it now, outside every lock, so the next Alloc pays nothing
	// and no other CPU stalls behind the clear.
	if acct := m.owners[pfn].Swap(nil); acct != nil {
		acct.uncharge()
	}
	clear(m.frames[pfn].Load()[:])
	m.Frees.Add(1)
	m.inUse.Add(-1)

	if c := m.cache(cpu); c != nil {
		c.mu.Lock()
		c.free = append(c.free, pfn)
		var spill []PFN
		if len(c.free) > cacheMax {
			h := len(c.free) - refillBatch
			spill = append([]PFN(nil), c.free[h:]...)
			c.free = c.free[:h]
		}
		c.mu.Unlock()
		if spill != nil {
			m.releaseToPools(spill)
			m.Drains.Add(1)
		}
		return 0
	}
	m.releaseToPools([]PFN{pfn})
	return 0
}

// Ref returns the current reference count of pfn.
func (m *Memory) Ref(pfn PFN) int32 { return m.refs[pfn].Load() }

// frame returns the word slice backing pfn without taking any lock: the
// storage pointer is published atomically exactly once, when the frame is
// first minted, and frames are never reallocated.
func (m *Memory) frame(pfn PFN) []uint32 {
	return m.frames[pfn].Load()[:]
}

// CopyFrame allocates a new frame holding a copy of src (the copy-on-write
// copy path) and returns it with reference count one.
func (m *Memory) CopyFrame(src PFN) (PFN, error) { return m.CopyFrameOn(src, -1) }

// CopyFrameOn is CopyFrame allocating from cpu's frame cache.
func (m *Memory) CopyFrameOn(src PFN, cpu int) (PFN, error) {
	return m.CopyFrameFor(src, cpu, nil)
}

// CopyFrameFor is CopyFrameOn charging the new frame to acct.
func (m *Memory) CopyFrameFor(src PFN, cpu int, acct *FrameAcct) (PFN, error) {
	return m.CopyFrameResv(src, cpu, acct, nil)
}

// CopyFrameResv is CopyFrameFor drawing the charge from a spawn-time
// reservation when possible (see AllocResv).
func (m *Memory) CopyFrameResv(src PFN, cpu int, acct *FrameAcct, resv *FrameResv) (PFN, error) {
	dst, err := m.AllocResv(cpu, acct, resv)
	if err != nil {
		return NoPFN, err
	}
	s, d := m.frame(src), m.frame(dst)
	for i := range s {
		atomic.StoreUint32(&d[i], atomic.LoadUint32(&s[i]))
	}
	m.Copies.Add(1)
	return dst, nil
}

// FrameZero reports whether every word of pfn is currently zero (the
// quota-reclaim scan uses it to find pages that can be dropped losslessly).
func (m *Memory) FrameZero(pfn PFN) bool {
	f := m.frame(pfn)
	for i := range f {
		if atomic.LoadUint32(&f[i]) != 0 {
			return false
		}
	}
	return true
}

// LoadWord atomically loads the 32-bit word at the given word offset of pfn.
func (m *Memory) LoadWord(pfn PFN, word uint32) uint32 {
	return atomic.LoadUint32(&m.frame(pfn)[word])
}

// StoreWord atomically stores v at the given word offset of pfn.
func (m *Memory) StoreWord(pfn PFN, word uint32, v uint32) {
	atomic.StoreUint32(&m.frame(pfn)[word], v)
}

// CASWord performs an atomic compare-and-swap on a word of pfn. This models
// the hardware interlocked operation that user-level spinlocks are built on
// (paper §3: "some form of hardware supported lock is usually best").
func (m *Memory) CASWord(pfn PFN, word uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(&m.frame(pfn)[word], old, new)
}

// AddWord atomically adds delta to a word of pfn and returns the new value.
func (m *Memory) AddWord(pfn PFN, word uint32, delta uint32) uint32 {
	return atomic.AddUint32(&m.frame(pfn)[word], delta)
}

// ReadBytes copies len(dst) bytes from pfn starting at byte offset off.
// The range must lie within one page.
func (m *Memory) ReadBytes(pfn PFN, off uint32, dst []byte) {
	if int(off)+len(dst) > PageSize {
		panic("hw: ReadBytes crosses page boundary")
	}
	f := m.frame(pfn)
	for i := range dst {
		b := off + uint32(i)
		w := atomic.LoadUint32(&f[b>>2])
		dst[i] = byte(w >> ((b & 3) * 8))
	}
}

// WriteBytes copies src into pfn starting at byte offset off.
// The range must lie within one page.
func (m *Memory) WriteBytes(pfn PFN, off uint32, src []byte) {
	if int(off)+len(src) > PageSize {
		panic("hw: WriteBytes crosses page boundary")
	}
	f := m.frame(pfn)
	for i := range src {
		b := off + uint32(i)
		w := b >> 2
		shift := (b & 3) * 8
		for {
			old := atomic.LoadUint32(&f[w])
			new := old&^(0xff<<shift) | uint32(src[i])<<shift
			if atomic.CompareAndSwapUint32(&f[w], old, new) {
				break
			}
		}
	}
}
