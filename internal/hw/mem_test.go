package hw

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocZeroedAndDistinct(t *testing.T) {
	m := NewMemory(8)
	seen := map[PFN]bool{}
	for i := 0; i < 8; i++ {
		pfn, err := m.Alloc()
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if seen[pfn] {
			t.Fatalf("frame %d handed out twice", pfn)
		}
		seen[pfn] = true
		for w := uint32(0); w < WordsPerPage; w += 97 {
			if v := m.LoadWord(pfn, w); v != 0 {
				t.Fatalf("frame %d word %d not zero: %d", pfn, w, v)
			}
		}
	}
	if _, err := m.Alloc(); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory, got %v", err)
	}
}

func TestFreeListRecyclesZeroed(t *testing.T) {
	m := NewMemory(2)
	pfn, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	m.StoreWord(pfn, 5, 0xdeadbeef)
	if n := m.DecRef(pfn); n != 0 {
		t.Fatalf("DecRef = %d, want 0", n)
	}
	if m.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", m.InUse())
	}
	pfn2, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if pfn2 != pfn {
		t.Fatalf("free list not recycled: got %d want %d", pfn2, pfn)
	}
	if v := m.LoadWord(pfn2, 5); v != 0 {
		t.Fatalf("recycled frame not zeroed: %#x", v)
	}
}

func TestRefCountLifecycle(t *testing.T) {
	m := NewMemory(4)
	pfn, _ := m.Alloc()
	m.IncRef(pfn)
	m.IncRef(pfn)
	if r := m.Ref(pfn); r != 3 {
		t.Fatalf("Ref = %d, want 3", r)
	}
	if n := m.DecRef(pfn); n != 2 {
		t.Fatalf("DecRef = %d, want 2", n)
	}
	m.DecRef(pfn)
	if n := m.DecRef(pfn); n != 0 {
		t.Fatalf("final DecRef = %d, want 0", n)
	}
}

func TestCopyFrameIsDeepAndCounted(t *testing.T) {
	m := NewMemory(4)
	src, _ := m.Alloc()
	m.StoreWord(src, 0, 123)
	m.StoreWord(src, WordsPerPage-1, 456)
	dst, err := m.CopyFrame(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.LoadWord(dst, 0) != 123 || m.LoadWord(dst, WordsPerPage-1) != 456 {
		t.Fatal("copy did not preserve contents")
	}
	m.StoreWord(src, 0, 999)
	if m.LoadWord(dst, 0) != 123 {
		t.Fatal("copy aliases source")
	}
	if m.Copies.Load() != 1 {
		t.Fatalf("Copies = %d, want 1", m.Copies.Load())
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := NewMemory(2)
	pfn, _ := m.Alloc()
	src := []byte("share groups: selective resource sharing")
	m.WriteBytes(pfn, 3, src)
	dst := make([]byte, len(src))
	m.ReadBytes(pfn, 3, dst)
	if string(dst) != string(src) {
		t.Fatalf("round trip: got %q want %q", dst, src)
	}
}

func TestBytesWordInterleave(t *testing.T) {
	// Byte writes must not clobber neighbouring bytes within a word.
	m := NewMemory(1)
	pfn, _ := m.Alloc()
	m.StoreWord(pfn, 0, 0xaabbccdd)
	m.WriteBytes(pfn, 1, []byte{0x11})
	got := m.LoadWord(pfn, 0)
	if got != 0xaabb11dd {
		t.Fatalf("word after byte write = %#x, want 0xaabb11dd", got)
	}
}

func TestBytesCrossPagePanics(t *testing.T) {
	m := NewMemory(1)
	pfn, _ := m.Alloc()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cross-page write")
		}
	}()
	m.WriteBytes(pfn, PageSize-2, []byte{1, 2, 3})
}

func TestCASWordConcurrent(t *testing.T) {
	m := NewMemory(1)
	pfn, _ := m.Alloc()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for {
					old := m.LoadWord(pfn, 0)
					if m.CASWord(pfn, 0, old, old+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if v := m.LoadWord(pfn, 0); v != goroutines*perG {
		t.Fatalf("CAS counter = %d, want %d", v, goroutines*perG)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	m := NewMemory(2)
	pfn, _ := m.Alloc()
	f := func(off uint16, data []byte) bool {
		o := uint32(off) % (PageSize / 2)
		if len(data) > PageSize/2 {
			data = data[:PageSize/2]
		}
		m.WriteBytes(pfn, o, data)
		got := make([]byte, len(data))
		m.ReadBytes(pfn, o, got)
		return string(got) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVAddrHelpers(t *testing.T) {
	va := VAddr(0x1234_5678)
	if va.VPN() != 0x12345 {
		t.Fatalf("VPN = %#x", va.VPN())
	}
	if va.Offset() != 0x678 {
		t.Fatalf("Offset = %#x", va.Offset())
	}
	if va.PageBase() != 0x1234_5000 {
		t.Fatalf("PageBase = %#x", va.PageBase())
	}
}
