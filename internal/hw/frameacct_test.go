package hw

import (
	"sync"
	"testing"
)

// TestResvLateRefundSettles is the regression test for the refund leak:
// a refund that lands after Release must settle with the account instead
// of depositing into the dead reservation, or the account's used count
// keeps the charge forever (the failed allocation granted no frame, so no
// DecRef will ever return it).
func TestResvLateRefundSettles(t *testing.T) {
	var a FrameAcct
	rv := a.Reserve(4)
	if rv == nil {
		t.Fatal("Reserve refused with no quota set")
	}
	if !rv.consume() || !rv.consume() {
		t.Fatal("consume refused with prepaid frames left")
	}
	if got := rv.Release(); got != 2 {
		t.Fatalf("Release returned %d, want 2", got)
	}
	// The two consumed frames' allocations now fail and refund late.
	rv.refund()
	rv.refund()
	if u := a.Used(); u != 0 {
		t.Fatalf("account leaked %d frames after late refunds", u)
	}
	if rv.Left() != 0 {
		t.Fatalf("dead reservation holds %d frames", rv.Left())
	}
	if rv.consume() {
		t.Fatal("consume succeeded on a released reservation")
	}
	if res, cons, ref, rel := a.ResvReserved.Load(), a.ResvConsumed.Load(),
		a.ResvRefunds.Load(), a.ResvReleased.Load(); res+ref != cons+rel {
		t.Fatalf("conservation broken: reserved %d + refunds %d != consumed %d + released %d",
			res, ref, cons, rel)
	}
}

// TestResvRefundReleaseRace hammers refund against Release from racing
// goroutines; under -race this doubles as the memory-order check for the
// closed-flag settle protocol. The invariant is the account drains to
// zero and the flow counters balance.
func TestResvRefundReleaseRace(t *testing.T) {
	var a FrameAcct
	const rounds = 200
	for i := 0; i < rounds; i++ {
		rv := a.Reserve(8)
		consumed := 0
		for j := 0; j < 5; j++ {
			if rv.consume() {
				consumed++
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < consumed; j++ {
				rv.refund()
			}
		}()
		go func() {
			defer wg.Done()
			rv.Release()
		}()
		wg.Wait()
		rv.Release() // idempotent; sweeps anything the race left behind
		if u := a.Used(); u != 0 {
			t.Fatalf("round %d: account leaked %d frames", i, u)
		}
	}
	if res, cons, ref, rel := a.ResvReserved.Load(), a.ResvConsumed.Load(),
		a.ResvRefunds.Load(), a.ResvReleased.Load(); res+ref != cons+rel {
		t.Fatalf("conservation broken: reserved %d + refunds %d != consumed %d + released %d",
			res, ref, cons, rel)
	}
}
