package hw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the TLB behaves like a bounded cache over a model map — a hit
// must return exactly what the model holds; a flush must remove precisely
// the targeted entries. (Misses are always allowed: the TLB may evict.)
func TestQuickTLBAgainstModel(t *testing.T) {
	type key struct {
		vpn   uint32
		space ASID
	}
	type val struct {
		pfn      PFN
		writable bool
	}
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		var tlb TLB
		model := map[key]val{}
		for _, op := range ops {
			vpn := uint32(rng.Intn(8))
			space := ASID(1 + rng.Intn(3))
			switch op % 5 {
			case 0, 1: // insert
				v := val{pfn: PFN(rng.Intn(64)), writable: rng.Intn(2) == 0}
				tlb.Insert(vpn, space, v.pfn, v.writable)
				model[key{vpn, space}] = v
			case 2: // lookup: hit must match the model exactly
				pfn, w, ok := tlb.Lookup(vpn, space)
				if ok {
					mv, in := model[key{vpn, space}]
					if !in || mv.pfn != pfn || mv.writable != w {
						return false
					}
				}
			case 3: // flush one space
				tlb.FlushSpace(space)
				for k := range model {
					if k.space == space {
						delete(model, k)
					}
				}
			case 4: // flush one page
				tlb.FlushPage(vpn, space)
				delete(model, key{vpn, space})
			}
			// Global invariant: no resident entry disagrees with the model.
			for k, mv := range model {
				if pfn, w, ok := tlb.Lookup(k.vpn, k.space); ok {
					if pfn != mv.pfn || w != mv.writable {
						return false
					}
				}
			}
			if tlb.ValidCount() > TLBSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
