package hw

import (
	"fmt"
	"sync/atomic"

	"repro/internal/trace"
)

// Costs is the cycle cost model. Every kernel and memory operation charges
// cycles to the CPU it runs on, so experiments can report simulated cycles
// alongside wall-clock time. The defaults are scaled from the R2000 era
// (roughly 16 MHz, cache-less memory at a few cycles per access); only the
// ratios matter for reproducing the paper's shapes.
type Costs struct {
	MemAccess     int64 // one user load/store that hits the TLB
	TLBRefill     int64 // software TLB refill (fast path, no fault)
	PageFault     int64 // full fault: trap, pregion scan, validate
	PageZero      int64 // demand zero-fill of one page
	PageCopy      int64 // copy-on-write copy of one page
	SyscallEntry  int64 // trap into the kernel
	SyscallExit   int64 // return to user mode
	ContextSwitch int64 // dispatch a different process on a CPU
	IPI           int64 // one inter-processor interrupt (TLB shootdown)
	SemaSleep     int64 // block on a kernel semaphore
	SemaWakeup    int64 // wake a kernel semaphore sleeper
	ProcCreate    int64 // proc-table entry, u-area, kernel stack
	ThreadCreate  int64 // Mach baseline: kernel stack + thread context only
	RegionDup     int64 // per-page cost of duplicating a page table (fork)
	FDTableCopy   int64 // per-descriptor cost of copying the fd table
	AttrSync      int64 // reconciling one dirty shared attribute on entry
}

// DefaultCosts returns the standard cost table.
func DefaultCosts() Costs {
	return Costs{
		MemAccess:     1,
		TLBRefill:     20,
		PageFault:     500,
		PageZero:      1024,
		PageCopy:      2048,
		SyscallEntry:  100,
		SyscallExit:   60,
		ContextSwitch: 1000,
		IPI:           400,
		SemaSleep:     300,
		SemaWakeup:    250,
		ProcCreate:    4000,
		ThreadCreate:  800,
		RegionDup:     16,
		FDTableCopy:   8,
		AttrSync:      150,
	}
}

// CPU is one processor of the machine: an ID, a private software-managed
// TLB, and a cycle accumulator.
type CPU struct {
	ID     int
	TLB    TLB
	Cycles atomic.Int64

	Switches atomic.Int64 // context switches dispatched here
	Faults   atomic.Int64 // page faults taken here
}

// Charge adds n cycles to the CPU's accumulator.
func (c *CPU) Charge(n int64) { c.Cycles.Add(n) }

// Machine is the simulated multiprocessor: NCPU processors sharing one
// physical memory.
type Machine struct {
	CPUs []*CPU
	Mem  *Memory
	Cost Costs

	// Trace is the kernel event ring; nil disables tracing (the zero
	// cost path — every Record on a nil ring is a no-op).
	Trace *trace.Ring

	ShootdownOps atomic.Int64 // machine-wide shootdown operations
	nextASID     atomic.Uint32
}

// NewMachine builds a machine with ncpu processors and memFrames page
// frames of physical memory.
func NewMachine(ncpu, memFrames int) *Machine {
	if ncpu <= 0 {
		panic("hw: machine needs at least one CPU")
	}
	m := &Machine{
		CPUs: make([]*CPU, ncpu),
		Mem:  NewMemory(memFrames),
		Cost: DefaultCosts(),
	}
	m.Mem.AttachCaches(ncpu)
	for i := range m.CPUs {
		m.CPUs[i] = &CPU{ID: i}
	}
	m.nextASID.Store(uint32(NoASID))
	return m
}

// NCPU returns the number of processors.
func (m *Machine) NCPU() int { return len(m.CPUs) }

// AllocASID hands out a fresh address-space identifier.
func (m *Machine) AllocASID() ASID {
	return ASID(m.nextASID.Add(1))
}

// ShootdownSpace synchronously flushes every CPU's TLB entries for the
// given address space, charging the initiating CPU one IPI per remote
// processor. This is the paper's §6.2 protocol: because the R2000 TLB is
// software managed, the kernel can flush all processors while holding the
// share group's update lock; running members immediately take TLB-miss
// exceptions, attempt the shared read lock, and sleep until the update is
// complete.
func (m *Machine) ShootdownSpace(initiator *CPU, space ASID) {
	m.ShootdownOps.Add(1)
	cpu := int32(-1)
	if initiator != nil {
		cpu = int32(initiator.ID)
	}
	m.Trace.Record(trace.EvShootdown, 0, cpu, uint64(space), 0)
	for _, c := range m.CPUs {
		c.TLB.FlushSpace(space)
		if c != initiator {
			c.TLB.Shootdowns.Add(1)
			if initiator != nil {
				initiator.Charge(m.Cost.IPI)
			}
		}
	}
}

// ShootdownPage flushes one page of one space on every CPU.
func (m *Machine) ShootdownPage(initiator *CPU, vpn uint32, space ASID) {
	m.ShootdownOps.Add(1)
	for _, c := range m.CPUs {
		c.TLB.FlushPage(vpn, space)
		if c != initiator {
			c.TLB.Shootdowns.Add(1)
			if initiator != nil {
				initiator.Charge(m.Cost.IPI)
			}
		}
	}
}

// TotalCycles sums the cycle counters of all CPUs.
func (m *Machine) TotalCycles() int64 {
	var n int64
	for _, c := range m.CPUs {
		n += c.Cycles.Load()
	}
	return n
}

// String summarizes the machine configuration.
func (m *Machine) String() string {
	return fmt.Sprintf("machine{ncpu=%d, mem=%dKiB}", len(m.CPUs), m.Mem.Capacity()*PageSize/1024)
}
