package hw

import (
	"fmt"
	"sync/atomic"

	"repro/internal/trace"
)

// Costs is the cycle cost model. Every kernel and memory operation charges
// cycles to the CPU it runs on, so experiments can report simulated cycles
// alongside wall-clock time. The defaults are scaled from the R2000 era
// (roughly 16 MHz, cache-less memory at a few cycles per access); only the
// ratios matter for reproducing the paper's shapes.
type Costs struct {
	MemAccess     int64 // one user load/store that hits the TLB
	TLBRefill     int64 // software TLB refill (fast path, no fault)
	PageFault     int64 // full fault: trap, pregion scan, validate
	PageZero      int64 // demand zero-fill of one page
	PageCopy      int64 // copy-on-write copy of one page
	SyscallEntry  int64 // trap into the kernel
	SyscallExit   int64 // return to user mode
	ContextSwitch int64 // dispatch a different process on a CPU
	IPI           int64 // one inter-processor interrupt (TLB shootdown)
	SemaSleep     int64 // block on a kernel semaphore
	SemaWakeup    int64 // wake a kernel semaphore sleeper
	ProcCreate    int64 // proc-table entry, u-area, kernel stack
	ThreadCreate  int64 // Mach baseline: kernel stack + thread context only
	RegionDup     int64 // per-page cost of duplicating a page table (fork)
	LazyDup       int64 // per-region cost of a lazy COW clone at spawn
	FDTableCopy   int64 // per-descriptor cost of copying the fd table
	AttrSync      int64 // reconciling one dirty shared attribute on entry
	RemoteAccess  int64 // extra cycles when a memory op crosses a node boundary
}

// DefaultCosts returns the standard cost table.
func DefaultCosts() Costs {
	return Costs{
		MemAccess:     1,
		TLBRefill:     20,
		PageFault:     500,
		PageZero:      1024,
		PageCopy:      2048,
		SyscallEntry:  100,
		SyscallExit:   60,
		ContextSwitch: 1000,
		IPI:           400,
		SemaSleep:     300,
		SemaWakeup:    250,
		ProcCreate:    4000,
		ThreadCreate:  800,
		RegionDup:     16,
		LazyDup:       64,
		FDTableCopy:   8,
		AttrSync:      150,
		RemoteAccess:  100,
	}
}

// CPU is one processor of the machine: an ID, a private software-managed
// TLB, and a cycle accumulator.
type CPU struct {
	ID     int
	TLB    TLB
	Cycles atomic.Int64

	Switches atomic.Int64 // context switches dispatched here
	Faults   atomic.Int64 // page faults taken here
}

// Charge adds n cycles to the CPU's accumulator.
func (c *CPU) Charge(n int64) { c.Cycles.Add(n) }

// Machine is the simulated multiprocessor: NCPU processors sharing one
// physical memory.
type Machine struct {
	CPUs []*CPU
	Mem  *Memory
	Cost Costs

	// Topo is the machine's NUMA shape. A flat machine (Nodes <= 1) never
	// pays RemoteAccess; NodePenalty and the shootdown remote surcharge are
	// both derived from it.
	Topo Topology

	// Trace is the kernel event ring; nil disables tracing (the zero
	// cost path — every Record on a nil ring is a no-op).
	Trace *trace.Ring

	ShootdownOps    atomic.Int64 // machine-wide shootdown operations
	PageShootdowns  atomic.Int64 // shootdowns served page-by-page (small ranges)
	SpaceShootdowns atomic.Int64 // shootdowns that flushed a whole space
	RemoteIPIs      atomic.Int64 // shootdown IPIs that crossed a node boundary
	RemoteFills     atomic.Int64 // page fills backed by a remote-node frame

	// PageShootdownMax is the largest freed range (in pages) that
	// ShootdownRange invalidates page-by-page; anything larger falls back
	// to a full space flush. Per-page flushes leave the members' unrelated
	// TLB entries warm and cost one IPI per remote CPU either way; past a
	// few entries the per-page bookkeeping stops paying for itself.
	PageShootdownMax int

	nextASID atomic.Uint32
}

// DefaultPageShootdownMax is the default ShootdownRange threshold: ranges
// of up to this many pages are invalidated page-by-page, larger ones flush
// the whole space. The break-even point is where per-page TLB bookkeeping
// on every member outgrows the cost of refilling the unrelated entries a
// space flush discards — with a 64-entry R2000-style TLB and a ~20-cycle
// software refill that crossover sits at around 8 pages. The IPI count is
// the same either way (one per remote CPU, the initiator names the pages
// in the request), and on a NUMA machine each IPI that crosses a node
// boundary additionally pays Costs.RemoteAccess — the interconnect round
// trip — so batching matters more, not less, as the machine grows: the
// threshold bounds how much per-page work each of those expensive remote
// interrupts carries.
const DefaultPageShootdownMax = 8

// NewMachine builds a flat (single-node) machine with ncpu processors and
// memFrames page frames of physical memory.
func NewMachine(ncpu, memFrames int) *Machine {
	return NewMachineNUMA(ncpu, memFrames, 1)
}

// NewMachineNUMA builds a machine of ncpu processors split into nodes
// locality domains, each owning an equal slice of the memFrames physical
// frames. nodes is clamped to [1, ncpu]; nodes=1 is the flat machine the
// paper measured.
func NewMachineNUMA(ncpu, memFrames, nodes int) *Machine {
	if ncpu <= 0 {
		panic("hw: machine needs at least one CPU")
	}
	topo := NewTopology(ncpu, nodes)
	m := &Machine{
		CPUs:             make([]*CPU, ncpu),
		Mem:              NewMemory(memFrames),
		Cost:             DefaultCosts(),
		Topo:             topo,
		PageShootdownMax: DefaultPageShootdownMax,
	}
	m.Mem.AttachTopology(topo)
	for i := range m.CPUs {
		m.CPUs[i] = &CPU{ID: i}
	}
	m.nextASID.Store(uint32(NoASID))
	return m
}

// NodePenalty returns the extra cycles cpu pays to touch the frame pfn: 0
// when the frame is homed on cpu's node (or the machine is flat), one
// RemoteAccess charge per hop otherwise. It also maintains the RemoteFills
// counter so experiments can report what fraction of fills went remote.
func (m *Machine) NodePenalty(cpuID int, pfn PFN) int64 {
	if m.Topo.Flat() {
		return 0
	}
	d := m.Topo.Distance(m.Topo.NodeOf(cpuID), m.Mem.NodeOfPFN(pfn))
	if d == 0 {
		return 0
	}
	m.RemoteFills.Add(1)
	return int64(d) * m.Cost.RemoteAccess
}

// chargeIPI charges initiator for one shootdown IPI to remote CPU c,
// adding the interconnect surcharge when c sits on another node.
func (m *Machine) chargeIPI(initiator, c *CPU) {
	cost := m.Cost.IPI
	if !m.Topo.Flat() && m.Topo.NodeOf(c.ID) != m.Topo.NodeOf(initiator.ID) {
		cost += m.Cost.RemoteAccess
		m.RemoteIPIs.Add(1)
	}
	initiator.Charge(cost)
}

// NCPU returns the number of processors.
func (m *Machine) NCPU() int { return len(m.CPUs) }

// AllocASID hands out a fresh address-space identifier.
func (m *Machine) AllocASID() ASID {
	return ASID(m.nextASID.Add(1))
}

// ShootdownSpace synchronously flushes every CPU's TLB entries for the
// given address space, charging the initiating CPU one IPI per remote
// processor. This is the paper's §6.2 protocol: because the R2000 TLB is
// software managed, the kernel can flush all processors while holding the
// share group's update lock; running members immediately take TLB-miss
// exceptions, attempt the shared read lock, and sleep until the update is
// complete.
func (m *Machine) ShootdownSpace(initiator *CPU, space ASID) {
	m.ShootdownOps.Add(1)
	m.SpaceShootdowns.Add(1)
	cpu := int32(-1)
	if initiator != nil {
		cpu = int32(initiator.ID)
	}
	m.Trace.Record(trace.EvShootdown, 0, cpu, uint64(space), 0)
	for _, c := range m.CPUs {
		c.TLB.FlushSpace(space)
		if c != initiator {
			c.TLB.Shootdowns.Add(1)
			if initiator != nil {
				m.chargeIPI(initiator, c)
			}
		}
	}
}

// ShootdownPage flushes one page of one space on every CPU.
func (m *Machine) ShootdownPage(initiator *CPU, vpn uint32, space ASID) {
	m.ShootdownOps.Add(1)
	for _, c := range m.CPUs {
		c.TLB.FlushPage(vpn, space)
		if c != initiator {
			c.TLB.Shootdowns.Add(1)
			if initiator != nil {
				m.chargeIPI(initiator, c)
			}
		}
	}
}

// ShootdownRange invalidates npages pages starting at vpn on every CPU.
// A small range (≤ PageShootdownMax) is flushed page-by-page in a single
// batch: one IPI per remote processor covers all the pages (the initiator
// names them in the request), so members keep the rest of their cached
// translations — the common stack-recycle and small-unmap case. A large
// range falls back to a full space flush, which is cheaper than walking
// the TLB once per page.
func (m *Machine) ShootdownRange(initiator *CPU, vpn uint32, npages int, space ASID) {
	if max := m.PageShootdownMax; max <= 0 || npages > max {
		m.ShootdownSpace(initiator, space)
		return
	}
	m.ShootdownOps.Add(1)
	m.PageShootdowns.Add(1)
	cpu := int32(-1)
	if initiator != nil {
		cpu = int32(initiator.ID)
	}
	m.Trace.Record(trace.EvShootdown, int32(npages), cpu, uint64(space), vpn)
	for _, c := range m.CPUs {
		for i := 0; i < npages; i++ {
			c.TLB.FlushPage(vpn+uint32(i), space)
		}
		if c != initiator {
			c.TLB.Shootdowns.Add(1)
			if initiator != nil {
				m.chargeIPI(initiator, c)
			}
		}
	}
}

// TotalCycles sums the cycle counters of all CPUs.
func (m *Machine) TotalCycles() int64 {
	var n int64
	for _, c := range m.CPUs {
		n += c.Cycles.Load()
	}
	return n
}

// String summarizes the machine configuration.
func (m *Machine) String() string {
	return fmt.Sprintf("machine{ncpu=%d, mem=%dKiB}", len(m.CPUs), m.Mem.Capacity()*PageSize/1024)
}
