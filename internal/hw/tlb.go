package hw

import (
	"sync"
	"sync/atomic"
)

// TLBSize is the number of entries in each CPU's TLB. The MIPS R2000 has a
// 64-entry, fully associative, software-refilled TLB [MIPS 1986].
const TLBSize = 64

// ASID identifies an address space. The R2000 tags TLB entries with a
// process identifier so the TLB need not be flushed on context switch; we
// give every address space (and therefore every share group that shares its
// VM image) a distinct ASID. The simulated ASID space is wide enough that
// identifiers are never recycled, so a stale TLB entry can never match a
// new address space (real kernels flush on ASID rollover instead).
type ASID uint32

// NoASID is never assigned to an address space.
const NoASID ASID = 0

// TLBEntry is one translation: virtual page -> physical frame for an
// address space, with a writable bit. A clear writable bit on a resident
// page means a store must trap (the copy-on-write path).
type TLBEntry struct {
	VPN      uint32
	Space    ASID
	Frame    PFN
	Writable bool
	Valid    bool
}

// TLB is a CPU's translation lookaside buffer. It is software managed: the
// kernel inserts entries on miss and the kernel flushes entries when
// translations die. Lookups and flushes may race (another CPU shooting this
// one down), so the structure is locked.
type TLB struct {
	mu      sync.Mutex
	entries [TLBSize]TLBEntry
	next    int // round-robin replacement victim

	Hits       atomic.Int64
	Misses     atomic.Int64
	Flushes    atomic.Int64 // full or ASID flushes
	Shootdowns atomic.Int64 // flushes initiated by another CPU
}

// Lookup probes the TLB for (vpn, space). On a hit it returns the frame and
// writability of the mapping.
func (t *TLB) Lookup(vpn uint32, space ASID) (pfn PFN, writable, ok bool) {
	t.mu.Lock()
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.VPN == vpn && e.Space == space {
			pfn, writable = e.Frame, e.Writable
			t.mu.Unlock()
			t.Hits.Add(1)
			return pfn, writable, true
		}
	}
	t.mu.Unlock()
	t.Misses.Add(1)
	return NoPFN, false, false
}

// Insert adds a translation, evicting the round-robin victim if needed. Any
// existing entry for (vpn, space) is replaced, so an upgrade to writable
// after a copy-on-write copy takes effect immediately.
func (t *TLB) Insert(vpn uint32, space ASID, pfn PFN, writable bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	slot := -1
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.VPN == vpn && e.Space == space {
			slot = i
			break
		}
		if !e.Valid && slot < 0 {
			slot = i
		}
	}
	if slot < 0 {
		slot = t.next
		t.next = (t.next + 1) % TLBSize
	}
	t.entries[slot] = TLBEntry{VPN: vpn, Space: space, Frame: pfn, Writable: writable, Valid: true}
}

// FlushAll invalidates every entry.
func (t *TLB) FlushAll() {
	t.mu.Lock()
	for i := range t.entries {
		t.entries[i].Valid = false
	}
	t.mu.Unlock()
	t.Flushes.Add(1)
}

// FlushSpace invalidates every entry belonging to the given address space.
func (t *TLB) FlushSpace(space ASID) {
	t.mu.Lock()
	for i := range t.entries {
		if t.entries[i].Space == space {
			t.entries[i].Valid = false
		}
	}
	t.mu.Unlock()
	t.Flushes.Add(1)
}

// FlushPage invalidates the entry for (vpn, space) if present.
func (t *TLB) FlushPage(vpn uint32, space ASID) {
	t.mu.Lock()
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.VPN == vpn && e.Space == space {
			e.Valid = false
		}
	}
	t.mu.Unlock()
}

// Resident reports whether a valid entry for (vpn, space) is present.
func (t *TLB) Resident(vpn uint32, space ASID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.VPN == vpn && e.Space == space {
			return true
		}
	}
	return false
}

// ValidCount returns the number of valid entries (for tests and sgtop).
func (t *TLB) ValidCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
	}
	return n
}
