package hw

import (
	"fmt"
	"sync/atomic"
)

// ErrNoQuota is returned when an allocation would push a resource
// principal's frame account over its quota. It is distinct from
// ErrNoMemory — the machine has frames, the principal has spent its
// budget — so the fault path can reclaim the principal's own pages
// before giving up, and only then surface ENOMEM.
var ErrNoQuota = fmt.Errorf("hw: frame quota exceeded")

// FrameAcct is one resource principal's physical-frame account (a share
// group's, in this kernel). Every frame grant charges the allocating
// principal's account and tags the frame with it; the release at the
// frame's final DecRef uncharges the same account, whichever CPU and
// process performs it. COW aliasing (IncRef) does not charge — the
// charge stays with the principal that allocated the frame.
//
// The conservation invariants, checked by the -race storm tests:
// Used == Charges - Uncharges at all times, and Used == 0 once every
// frame the principal allocated has been released.
type FrameAcct struct {
	quota atomic.Int64 // frame ceiling; 0 = unlimited
	used  atomic.Int64 // frames currently charged

	Charges   atomic.Int64 // total grants charged
	Uncharges atomic.Int64 // total releases uncharged
	QuotaHits atomic.Int64 // allocations refused at the quota

	// Reservation flow counters. Every prepaid frame unit enters the
	// reservation pool through Reserve or refund and leaves through consume
	// or Release (a refund that arrives after Release counts as released:
	// the quota goes straight back to the account). At quiescence — every
	// reservation dead, left == 0 — the conservation law is
	//
	//	ResvReserved + ResvRefunds == ResvConsumed + ResvReleased
	//
	// and the -race failed-spawn storm asserts it.
	ResvReserved atomic.Int64 // frames prepaid by Reserve
	ResvConsumed atomic.Int64 // prepaid frames taken by fills
	ResvRefunds  atomic.Int64 // consumed frames returned (failed alloc)
	ResvReleased atomic.Int64 // frames returned to the account
}

// Quota returns the account's frame ceiling (0 = unlimited).
func (a *FrameAcct) Quota() int64 { return a.quota.Load() }

// SetQuota replaces the frame ceiling. Lowering it below current use does
// not evict frames; it only refuses further grants until use drains.
func (a *FrameAcct) SetQuota(n int64) {
	if n < 0 {
		n = 0
	}
	a.quota.Store(n)
}

// Used returns the number of frames currently charged to the account.
func (a *FrameAcct) Used() int64 { return a.used.Load() }

// tryCharge reserves one frame against the quota, failing without side
// effects when the account is full.
func (a *FrameAcct) tryCharge() bool {
	for {
		u := a.used.Load()
		if q := a.quota.Load(); q > 0 && u >= q {
			a.QuotaHits.Add(1)
			return false
		}
		if a.used.CompareAndSwap(u, u+1) {
			a.Charges.Add(1)
			return true
		}
	}
}

// uncharge releases one frame's worth of quota.
func (a *FrameAcct) uncharge() {
	if a.used.Add(-1) < 0 {
		panic("hw: FrameAcct uncharge below zero")
	}
	a.Uncharges.Add(1)
}

// FrameResv is a batched charge against a frame account: n frames paid for
// with a single compare-and-swap at spawn time, then handed out one by one
// to the owner's page fills without touching the account again. It exists
// so a creation storm of members does not serialize on the shared
// account's quota CAS — the per-spawn reservation is the only contended
// operation, and it happens once per member instead of once per page.
//
// Frames granted through a reservation are still tagged with the owning
// account, so the release at the frame's final DecRef uncharges the
// account exactly as a directly charged frame would; the reservation only
// prepays the charge side. Whatever is left unconsumed when the member
// exits must be returned with Release, and the storm tests assert that no
// reservation outlives its process (zero leaked reservations).
type FrameResv struct {
	acct   *FrameAcct
	left   atomic.Int64 // prepaid frames not yet consumed by a fill
	closed atomic.Bool  // Release ran; stragglers settle with the account
}

// Reserve charges n frames to the account in one CAS and returns the
// reservation, or nil when the quota cannot absorb the whole batch — the
// caller then falls back to per-fill charging, which degrades page by page
// instead of refusing the spawn. n <= 0 returns nil.
func (a *FrameAcct) Reserve(n int64) *FrameResv {
	if n <= 0 {
		return nil
	}
	for {
		u := a.used.Load()
		if q := a.quota.Load(); q > 0 && u+n > q {
			return nil
		}
		if a.used.CompareAndSwap(u, u+n) {
			a.Charges.Add(n)
			a.ResvReserved.Add(n)
			rv := &FrameResv{acct: a}
			rv.left.Store(n)
			return rv
		}
	}
}

// Acct returns the account the reservation was charged to.
func (rv *FrameResv) Acct() *FrameAcct {
	if rv == nil {
		return nil
	}
	return rv.acct
}

// Left returns the prepaid frames not yet consumed.
func (rv *FrameResv) Left() int64 {
	if rv == nil {
		return 0
	}
	return rv.left.Load()
}

// consume takes one prepaid frame from the reservation, reporting false
// when it has run dry or been released (the caller then charges the
// account directly).
func (rv *FrameResv) consume() bool {
	if rv.closed.Load() {
		return false
	}
	for {
		n := rv.left.Load()
		if n <= 0 {
			return false
		}
		if rv.left.CompareAndSwap(n, n-1) {
			rv.acct.ResvConsumed.Add(1)
			return true
		}
	}
}

// take pulls one frame back out of the pool on the late-refund settle
// path; false means a concurrent Release already swept it.
func (rv *FrameResv) take() bool {
	for {
		n := rv.left.Load()
		if n <= 0 {
			return false
		}
		if rv.left.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// refund returns one consumed frame to the reservation (an allocation that
// failed after the prepaid frame was taken). A refund that lands after the
// reservation was released must not deposit into the dead pool — the
// sweep already ran, so the frame's worth of quota would stay charged to
// the account forever. Instead it settles with the account directly,
// exactly once: deposit, re-check closed, and if the release beat us take
// the deposit back out and uncharge. Sequentially consistent atomics make
// the check decisive — if Release's sweep preceded our deposit, its
// closed store is visible here; if we read closed == false, the sweep is
// still to come and will return the deposit itself.
func (rv *FrameResv) refund() {
	rv.acct.ResvRefunds.Add(1)
	rv.left.Add(1)
	if rv.closed.Load() && rv.take() {
		rv.acct.ResvReleased.Add(1)
		rv.acct.uncharge()
	}
}

// Release returns the unconsumed remainder to the account and closes the
// reservation; it is idempotent and reports how many frames it returned.
// Every spawn-time reservation must be released when its process is
// reaped, or the account leaks quota. After Release, late refunds settle
// with the account directly and further consumes fail.
func (rv *FrameResv) Release() int64 {
	if rv == nil {
		return 0
	}
	rv.closed.Store(true)
	n := rv.left.Swap(0)
	if n > 0 {
		if rv.acct.used.Add(-n) < 0 {
			panic("hw: FrameResv release below zero")
		}
		rv.acct.Uncharges.Add(n)
		rv.acct.ResvReleased.Add(n)
	}
	return n
}
