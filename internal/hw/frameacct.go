package hw

import (
	"fmt"
	"sync/atomic"
)

// ErrNoQuota is returned when an allocation would push a resource
// principal's frame account over its quota. It is distinct from
// ErrNoMemory — the machine has frames, the principal has spent its
// budget — so the fault path can reclaim the principal's own pages
// before giving up, and only then surface ENOMEM.
var ErrNoQuota = fmt.Errorf("hw: frame quota exceeded")

// FrameAcct is one resource principal's physical-frame account (a share
// group's, in this kernel). Every frame grant charges the allocating
// principal's account and tags the frame with it; the release at the
// frame's final DecRef uncharges the same account, whichever CPU and
// process performs it. COW aliasing (IncRef) does not charge — the
// charge stays with the principal that allocated the frame.
//
// The conservation invariants, checked by the -race storm tests:
// Used == Charges - Uncharges at all times, and Used == 0 once every
// frame the principal allocated has been released.
type FrameAcct struct {
	quota atomic.Int64 // frame ceiling; 0 = unlimited
	used  atomic.Int64 // frames currently charged

	Charges   atomic.Int64 // total grants charged
	Uncharges atomic.Int64 // total releases uncharged
	QuotaHits atomic.Int64 // allocations refused at the quota
}

// Quota returns the account's frame ceiling (0 = unlimited).
func (a *FrameAcct) Quota() int64 { return a.quota.Load() }

// SetQuota replaces the frame ceiling. Lowering it below current use does
// not evict frames; it only refuses further grants until use drains.
func (a *FrameAcct) SetQuota(n int64) {
	if n < 0 {
		n = 0
	}
	a.quota.Store(n)
}

// Used returns the number of frames currently charged to the account.
func (a *FrameAcct) Used() int64 { return a.used.Load() }

// tryCharge reserves one frame against the quota, failing without side
// effects when the account is full.
func (a *FrameAcct) tryCharge() bool {
	for {
		u := a.used.Load()
		if q := a.quota.Load(); q > 0 && u >= q {
			a.QuotaHits.Add(1)
			return false
		}
		if a.used.CompareAndSwap(u, u+1) {
			a.Charges.Add(1)
			return true
		}
	}
}

// uncharge releases one frame's worth of quota.
func (a *FrameAcct) uncharge() {
	if a.used.Add(-1) < 0 {
		panic("hw: FrameAcct uncharge below zero")
	}
	a.Uncharges.Add(1)
}
