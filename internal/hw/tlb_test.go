package hw

import (
	"testing"
)

func TestTLBInsertLookup(t *testing.T) {
	var tlb TLB
	tlb.Insert(10, 1, 42, true)
	pfn, w, ok := tlb.Lookup(10, 1)
	if !ok || pfn != 42 || !w {
		t.Fatalf("Lookup = (%d,%v,%v)", pfn, w, ok)
	}
	if _, _, ok := tlb.Lookup(10, 2); ok {
		t.Fatal("ASID 2 must not hit ASID 1's entry")
	}
	if _, _, ok := tlb.Lookup(11, 1); ok {
		t.Fatal("VPN 11 must miss")
	}
	if tlb.Hits.Load() != 1 || tlb.Misses.Load() != 2 {
		t.Fatalf("stats hits=%d misses=%d", tlb.Hits.Load(), tlb.Misses.Load())
	}
}

func TestTLBReplaceUpgradesWritable(t *testing.T) {
	var tlb TLB
	tlb.Insert(7, 1, 5, false)
	tlb.Insert(7, 1, 9, true) // COW copy installed a new writable frame
	pfn, w, ok := tlb.Lookup(7, 1)
	if !ok || pfn != 9 || !w {
		t.Fatalf("Lookup after replace = (%d,%v,%v)", pfn, w, ok)
	}
	if tlb.ValidCount() != 1 {
		t.Fatalf("ValidCount = %d, want 1 (replacement, not duplicate)", tlb.ValidCount())
	}
}

func TestTLBEviction(t *testing.T) {
	var tlb TLB
	for i := 0; i < TLBSize+8; i++ {
		tlb.Insert(uint32(i), 1, PFN(i), false)
	}
	if n := tlb.ValidCount(); n != TLBSize {
		t.Fatalf("ValidCount = %d, want %d", n, TLBSize)
	}
	// The most recent insertions must be resident.
	if !tlb.Resident(uint32(TLBSize+7), 1) {
		t.Fatal("most recent entry evicted")
	}
}

func TestTLBFlushSpace(t *testing.T) {
	var tlb TLB
	tlb.Insert(1, 1, 10, false)
	tlb.Insert(2, 1, 11, false)
	tlb.Insert(3, 2, 12, false)
	tlb.FlushSpace(1)
	if tlb.Resident(1, 1) || tlb.Resident(2, 1) {
		t.Fatal("space 1 entries survived flush")
	}
	if !tlb.Resident(3, 2) {
		t.Fatal("space 2 entry wrongly flushed")
	}
}

func TestTLBFlushPageAndAll(t *testing.T) {
	var tlb TLB
	tlb.Insert(1, 1, 10, false)
	tlb.Insert(2, 1, 11, false)
	tlb.FlushPage(1, 1)
	if tlb.Resident(1, 1) {
		t.Fatal("page survived FlushPage")
	}
	if !tlb.Resident(2, 1) {
		t.Fatal("unrelated page flushed")
	}
	tlb.FlushAll()
	if tlb.ValidCount() != 0 {
		t.Fatal("entries survived FlushAll")
	}
}

func TestMachineShootdown(t *testing.T) {
	m := NewMachine(4, 16)
	for _, c := range m.CPUs {
		c.TLB.Insert(1, 1, 3, true)
		c.TLB.Insert(2, 2, 4, true)
	}
	init := m.CPUs[0]
	m.ShootdownSpace(init, 1)
	for i, c := range m.CPUs {
		if c.TLB.Resident(1, 1) {
			t.Fatalf("cpu %d still maps space 1", i)
		}
		if !c.TLB.Resident(2, 2) {
			t.Fatalf("cpu %d lost space 2 mapping", i)
		}
	}
	// Initiator pays IPI cost for each of the 3 remote CPUs.
	if got := init.Cycles.Load(); got != 3*m.Cost.IPI {
		t.Fatalf("initiator cycles = %d, want %d", got, 3*m.Cost.IPI)
	}
	if m.CPUs[1].TLB.Shootdowns.Load() != 1 {
		t.Fatal("remote CPU did not record shootdown")
	}
}

func TestMachineASIDsDistinct(t *testing.T) {
	m := NewMachine(1, 1)
	a, b := m.AllocASID(), m.AllocASID()
	if a == b || a == NoASID || b == NoASID {
		t.Fatalf("ASIDs %d %d", a, b)
	}
}
