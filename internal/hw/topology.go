package hw

// Topology describes the machine's NUMA shape: NCPU processors grouped
// into Nodes locality domains of contiguous CPU ids. Each node owns an
// equal slice of physical memory (its frame pool); accesses that cross a
// node boundary pay Costs.RemoteAccess on top of the local cost.
//
// A Topology with Nodes <= 1 is the flat SMP the paper measured: every
// frame is local and no remote penalty is ever charged. The node distance
// model is linear — |a-b| hops — which is what a ring or dance-hall
// interconnect gives; only the nearest-first *order* it induces matters to
// the allocator, not the absolute distances.
type Topology struct {
	NCPU  int
	Nodes int
}

// NewTopology builds a topology of ncpu processors over nodes domains.
// nodes is clamped to [1, ncpu]; CPUs are dealt to nodes in contiguous
// blocks of ceil(ncpu/nodes).
func NewTopology(ncpu, nodes int) Topology {
	if ncpu < 1 {
		ncpu = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	if nodes > ncpu {
		nodes = ncpu
	}
	return Topology{NCPU: ncpu, Nodes: nodes}
}

// Flat reports whether the topology has a single locality domain.
func (t Topology) Flat() bool { return t.Nodes <= 1 }

// CPUsPerNode returns the size of one node's CPU block (the last node may
// be smaller when nodes does not divide NCPU).
func (t Topology) CPUsPerNode() int {
	if t.Nodes <= 1 {
		if t.NCPU < 1 {
			return 1
		}
		return t.NCPU
	}
	return (t.NCPU + t.Nodes - 1) / t.Nodes
}

// NodeOf returns the node a CPU belongs to. Out-of-range ids (the
// no-affinity -1 paths) map to node 0.
func (t Topology) NodeOf(cpu int) int {
	if t.Nodes <= 1 || cpu < 0 || cpu >= t.NCPU {
		return 0
	}
	n := cpu / t.CPUsPerNode()
	if n >= t.Nodes {
		n = t.Nodes - 1
	}
	return n
}

// Distance returns the hop count between two nodes (0 = same node).
func (t Topology) Distance(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// NodeOrder returns every node id ordered nearest-first from node: node
// itself, then its neighbours by increasing distance (lower id first on a
// tie). This is the fallback order the allocator walks when a home pool
// runs dry.
func (t Topology) NodeOrder(node int) []int {
	if node < 0 || node >= t.Nodes {
		node = 0
	}
	out := make([]int, 0, t.Nodes)
	out = append(out, node)
	for d := 1; d < t.Nodes; d++ {
		if node-d >= 0 {
			out = append(out, node-d)
		}
		if node+d < t.Nodes {
			out = append(out, node+d)
		}
		if len(out) == t.Nodes {
			break
		}
	}
	return out
}
