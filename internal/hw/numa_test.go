package hw

import (
	"sync"
	"testing"
)

func TestTopologyNodeOf(t *testing.T) {
	topo := NewTopology(64, 8)
	if topo.CPUsPerNode() != 8 {
		t.Fatalf("CPUsPerNode = %d, want 8", topo.CPUsPerNode())
	}
	for cpu := 0; cpu < 64; cpu++ {
		if got, want := topo.NodeOf(cpu), cpu/8; got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", cpu, got, want)
		}
	}
	// Out-of-range ids (the no-affinity paths) land on node 0.
	if topo.NodeOf(-1) != 0 || topo.NodeOf(64) != 0 {
		t.Fatalf("out-of-range NodeOf not clamped to 0")
	}
	// Clamping: more nodes than CPUs collapses to one node per CPU.
	if n := NewTopology(4, 16).Nodes; n != 4 {
		t.Fatalf("NewTopology(4,16).Nodes = %d, want 4", n)
	}
	if n := NewTopology(8, 0).Nodes; n != 1 {
		t.Fatalf("NewTopology(8,0).Nodes = %d, want 1", n)
	}
}

func TestTopologyNodeOrder(t *testing.T) {
	topo := NewTopology(32, 4)
	cases := map[int][]int{
		0: {0, 1, 2, 3},
		1: {1, 0, 2, 3},
		2: {2, 1, 3, 0},
		3: {3, 2, 1, 0},
	}
	for node, want := range cases {
		got := topo.NodeOrder(node)
		if len(got) != len(want) {
			t.Fatalf("NodeOrder(%d) = %v, want %v", node, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("NodeOrder(%d) = %v, want %v", node, got, want)
			}
		}
	}
}

func TestNodeOfPFNPartition(t *testing.T) {
	// 103 frames over 4 nodes: 26,26,26,25 — NodeOfPFN must agree with the
	// pool bounds exactly.
	m := NewMemory(103)
	m.AttachTopology(NewTopology(16, 4))
	counts := make([]int, 4)
	prev := 0
	for f := 0; f < 103; f++ {
		n := m.NodeOfPFN(PFN(f))
		if n < prev {
			t.Fatalf("NodeOfPFN not monotone at frame %d", f)
		}
		prev = n
		counts[n]++
	}
	want := []int{26, 26, 26, 25}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("node %d owns %d frames, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	for _, st := range m.NodeOccupancy() {
		if st.Capacity != want[st.Node] {
			t.Fatalf("pool %d capacity %d, want %d", st.Node, st.Capacity, want[st.Node])
		}
	}
}

func TestAllocLocalityAndFallback(t *testing.T) {
	// 4 nodes x 64 frames, 8 CPUs (2 per node). A CPU's allocations come
	// from its home node until that node is dry, then from the nearest
	// neighbour.
	m := NewMemory(256)
	m.AttachTopology(NewTopology(8, 4))

	// CPU 6 lives on node 3 (frames 192..255).
	var got []PFN
	for i := 0; i < 48; i++ {
		pfn, err := m.AllocOn(6)
		if err != nil {
			t.Fatalf("AllocOn: %v", err)
		}
		if n := m.NodeOfPFN(pfn); n != 3 {
			t.Fatalf("alloc %d: frame %d homed on node %d, want 3", i, pfn, n)
		}
		got = append(got, pfn)
	}
	if m.RemoteTakes.Load() != 0 {
		t.Fatalf("remote takes before exhaustion: %d", m.RemoteTakes.Load())
	}

	// Drain the rest of node 3 (64 - 48 allocated; cached frames count as
	// node-3 stock, so keep allocating until a remote frame shows up).
	for i := 0; i < 64; i++ {
		pfn, err := m.AllocOn(6)
		if err != nil {
			t.Fatalf("AllocOn: %v", err)
		}
		got = append(got, pfn)
		if m.NodeOfPFN(pfn) != 3 {
			// First spill must land on the nearest node, 2.
			if n := m.NodeOfPFN(pfn); n != 2 {
				t.Fatalf("spill went to node %d, want nearest node 2", n)
			}
			if m.RemoteTakes.Load() == 0 {
				t.Fatalf("remote take not counted")
			}
			// Free everything and verify conservation.
			for _, p := range got {
				m.DecRefOn(p, 6)
			}
			if m.InUse() != 0 {
				t.Fatalf("InUse = %d after freeing all", m.InUse())
			}
			return
		}
	}
	t.Fatalf("node 3 never ran dry after %d allocations", len(got))
}

func TestNodeBlindIgnoresLocality(t *testing.T) {
	m := NewMemory(256)
	m.AttachTopology(NewTopology(8, 4))
	m.NodeBlind = true
	nodes := make(map[int]bool)
	var frames []PFN
	for i := 0; i < 8; i++ {
		// Bypass the per-CPU cache (cpu=-1) so every allocation hits the
		// round-robin pool walk directly.
		pfn, err := m.AllocOn(-1)
		if err != nil {
			t.Fatalf("AllocOn: %v", err)
		}
		frames = append(frames, pfn)
		nodes[m.NodeOfPFN(pfn)] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("node-blind allocation stayed on %v, want round-robin spread", nodes)
	}
	for _, p := range frames {
		m.DecRef(p)
	}
}

func TestReclaimReturnsFramesHome(t *testing.T) {
	m := NewMemory(128)
	m.AttachTopology(NewTopology(4, 2))
	// Allocate and free on CPU 3 (node 1) so its cache holds node-1 frames.
	var frames []PFN
	for i := 0; i < 20; i++ {
		pfn, err := m.AllocOn(3)
		if err != nil {
			t.Fatalf("AllocOn: %v", err)
		}
		frames = append(frames, pfn)
	}
	for _, p := range frames {
		m.DecRefOn(p, 3)
	}
	moved := m.ReclaimCaches()
	if moved == 0 {
		t.Fatalf("reclaim moved nothing")
	}
	for _, st := range m.NodeOccupancy() {
		p := &m.pools[st.Node]
		p.mu.Lock()
		for _, f := range p.free {
			if m.NodeOfPFN(f) != st.Node {
				p.mu.Unlock()
				t.Fatalf("frame %d parked in pool %d but homed on %d", f, st.Node, m.NodeOfPFN(f))
			}
		}
		p.mu.Unlock()
	}
}

func TestNUMAAllocConservation(t *testing.T) {
	// Hammer a small NUMA memory from every CPU concurrently; the
	// reservation counter must guarantee progress and exact conservation
	// even when allocations constantly spill across nodes. Run with -race.
	const (
		ncpu   = 8
		frames = 96 // small enough that nodes run dry constantly
		iters  = 300
	)
	m := NewMemory(frames)
	m.AttachTopology(NewTopology(ncpu, 4))
	var wg sync.WaitGroup
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			var held []PFN
			for i := 0; i < iters; i++ {
				if len(held) < 8 {
					if pfn, err := m.AllocOn(cpu); err == nil {
						held = append(held, pfn)
						continue
					}
				}
				if len(held) > 0 {
					m.DecRefOn(held[len(held)-1], cpu)
					held = held[:len(held)-1]
				}
			}
			for _, p := range held {
				m.DecRefOn(p, cpu)
			}
		}(cpu)
	}
	wg.Wait()
	if m.InUse() != 0 {
		t.Fatalf("InUse = %d after all frees", m.InUse())
	}
	total := 0
	for _, st := range m.NodeOccupancy() {
		total += st.Free + st.Fresh
	}
	total += m.CachedFrames()
	if total != frames {
		t.Fatalf("free+fresh+cached = %d, want %d", total, frames)
	}
}

func TestRemoteIPIAndNodePenalty(t *testing.T) {
	m := NewMachineNUMA(8, 256, 4)
	init := m.CPUs[0] // node 0
	before := init.Cycles.Load()
	m.ShootdownPage(init, 5, ASID(1))
	// 7 remote CPUs: 1 same-node (cpu 1), 6 on other nodes.
	wantIPI := 7*m.Cost.IPI + 6*m.Cost.RemoteAccess
	if got := init.Cycles.Load() - before; got != wantIPI {
		t.Fatalf("shootdown charged %d cycles, want %d", got, wantIPI)
	}
	if m.RemoteIPIs.Load() != 6 {
		t.Fatalf("RemoteIPIs = %d, want 6", m.RemoteIPIs.Load())
	}

	// NodePenalty: frame 0 is node 0's; CPU 7 (node 3) pays distance 3.
	if p := m.NodePenalty(0, PFN(0)); p != 0 {
		t.Fatalf("local penalty = %d, want 0", p)
	}
	if p := m.NodePenalty(7, PFN(0)); p != 3*m.Cost.RemoteAccess {
		t.Fatalf("remote penalty = %d, want %d", p, 3*m.Cost.RemoteAccess)
	}
	if m.RemoteFills.Load() != 1 {
		t.Fatalf("RemoteFills = %d, want 1", m.RemoteFills.Load())
	}

	// A flat machine never charges the surcharge.
	flat := NewMachine(4, 64)
	if p := flat.NodePenalty(3, PFN(0)); p != 0 {
		t.Fatalf("flat machine penalty = %d, want 0", p)
	}
}
