package hw

import (
	"sync"
	"testing"
)

// TestConcurrentAllocFreeConservesFrames races allocation, copy-on-write
// duplication, and freeing across every per-CPU cache: no frame may be
// lost or double-freed, so after the dust settles InUse must be exactly
// zero and a full-capacity sweep must still find every frame.
func TestConcurrentAllocFreeConservesFrames(t *testing.T) {
	const (
		ncpu     = 4
		capacity = 512
		rounds   = 200
		batch    = 8
	)
	m := NewMemory(capacity)
	m.AttachCaches(ncpu)

	var wg sync.WaitGroup
	for g := 0; g < ncpu; g++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			held := make([]PFN, 0, 2*batch)
			for r := 0; r < rounds; r++ {
				for i := 0; i < batch; i++ {
					pfn, err := m.AllocOn(cpu)
					if err != nil {
						continue // another goroutine holds the frames
					}
					m.StoreWord(pfn, 0, uint32(cpu)<<16|uint32(r))
					held = append(held, pfn)
				}
				// Break a few aliases the COW way.
				for i := 0; i < 2 && i < len(held); i++ {
					if dup, err := m.CopyFrameOn(held[i], cpu); err == nil {
						held = append(held, dup)
					}
				}
				for _, pfn := range held {
					m.DecRefOn(pfn, cpu)
				}
				held = held[:0]
			}
		}(g)
	}
	wg.Wait()

	if got := m.InUse(); got != 0 {
		t.Fatalf("InUse = %d after all frees, want 0", got)
	}
	// Copies allocate through AllocOn, so Allocs already counts them.
	if m.Allocs.Load() != m.Frees.Load() {
		t.Fatalf("allocs(%d) != frees(%d)", m.Allocs.Load(), m.Frees.Load())
	}

	// Every frame must still be allocatable exactly once, and zeroed.
	seen := map[PFN]bool{}
	for i := 0; i < capacity; i++ {
		pfn, err := m.AllocOn(i % ncpu)
		if err != nil {
			t.Fatalf("alloc %d/%d after storm: %v", i, capacity, err)
		}
		if seen[pfn] {
			t.Fatalf("frame %d handed out twice", pfn)
		}
		seen[pfn] = true
		if v := m.LoadWord(pfn, 0); v != 0 {
			t.Fatalf("recycled frame %d not zeroed: %#x", pfn, v)
		}
	}
	if _, err := m.AllocOn(0); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
}

// TestConcurrentRefCountsConserve races IncRef/DecRef on shared frames —
// the fork/COW alias pattern — and verifies the count comes back exact.
func TestConcurrentRefCountsConserve(t *testing.T) {
	const (
		ncpu   = 4
		frames = 16
		rounds = 500
	)
	m := NewMemory(64)
	m.AttachCaches(ncpu)
	pfns := make([]PFN, frames)
	for i := range pfns {
		pfn, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pfns[i] = pfn
	}

	var wg sync.WaitGroup
	for g := 0; g < ncpu; g++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				pfn := pfns[(cpu+r)%frames]
				m.IncRef(pfn)
				m.DecRefOn(pfn, cpu)
			}
		}(g)
	}
	wg.Wait()

	for _, pfn := range pfns {
		if got := m.Ref(pfn); got != 1 {
			t.Fatalf("frame %d ref = %d, want 1", pfn, got)
		}
	}
	if got := m.InUse(); got != frames {
		t.Fatalf("InUse = %d, want %d", got, frames)
	}
}
