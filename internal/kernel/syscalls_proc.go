package kernel

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/klock"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Process-management errors.
var (
	ErrNoChildren = errors.New("kernel: no children to wait for") // ECHILD
	ErrInterrupt  = errors.New("kernel: interrupted system call") // EINTR
	ErrNoProc     = errors.New("kernel: no such process")         // ESRCH
	ErrTooMany    = errors.New("kernel: too many processes")      // EAGAIN
	ErrPerm       = errors.New("kernel: operation not permitted") // EPERM
)

// Getpid returns the process id.
func (c *Context) Getpid() int {
	return invoke1(c, sysGetpid, func() int {
		return c.P.PID
	})
}

// Getppid returns the parent's process id.
func (c *Context) Getppid() int {
	return invoke1(c, sysGetppid, func() int {
		c.P.Mu.Lock()
		defer c.P.Mu.Unlock()
		return c.P.PPID
	})
}

// checkProcLimit enforces the PR_MAXPROCS per-user limit.
func (c *Context) checkProcLimit() error {
	if c.S.NProcs() >= c.S.cfg.MaxProcs {
		return ErrTooMany
	}
	return nil
}

// newChild builds the common parts of a fork/sproc child: identity copy
// and bookkeeping. VM and descriptor setup differ per call.
func (c *Context) newChild(name string) *proc.Proc {
	p := c.P
	child := proc.New(c.S.allocPID(), name)
	child.Sched = c.S.Sched
	child.PPID = p.PID
	p.Mu.Lock()
	child.Uid, child.Gid = p.Uid, p.Gid
	child.Umask = p.Umask
	child.Ulimit = p.Ulimit
	child.StackMax = p.StackMax
	child.FdMax = p.FdMax
	child.NextShm = p.NextShm
	child.Prio.Store(p.Prio.Load())
	child.SigMask = p.SigMask
	child.Handlers = p.Handlers
	p.Children = append(p.Children, child)
	p.Mu.Unlock()
	return child
}

// Fork creates a new process executing childMain with a copy-on-write
// image of the parent, a duplicated descriptor table, and the parent's
// directories. A fork by a share-group member creates the child OUTSIDE
// the group (paper §5.1), with every group-visible region left as a
// copy-on-write element of the child.
//
// Because a simulated program is a Go closure, fork cannot return twice;
// the child's program is passed explicitly instead. This is the one
// deliberate interface divergence from fork(2).
func (c *Context) Fork(name string, childMain Main) (int, error) {
	return invoke(c, sysFork, func() (int, error) {
		if err := c.checkProcLimit(); err != nil {
			return -1, err
		}
		p := c.P
		mach := c.S.Machine
		child := c.newChild(name)
		child.ASID = mach.AllocASID()

		// Descriptor table, directories.
		p.Mu.Lock()
		child.Fd, child.FdFlags = p.DupFdTable()
		child.Cdir = p.Cdir.Hold()
		child.Rdir = p.Rdir.Hold()
		nfds := p.OpenFdCount()
		p.Mu.Unlock()

		// Copy-on-write image. Duplication makes previously writable frames
		// aliased, so the parent space's cached translations are flushed on
		// every CPU before the child can run — unless no duplicated region
		// ever held a writable PTE, in which case no stale writable entry
		// can exist and the flush is skipped. The duplication itself is
		// lazy by default (O(1) per region, DESIGN.md §16); the table walk
		// is charged at first touch by the fault handler.
		cpu := c.cpu()
		if sa := groupOf(p); sa != nil {
			child.Private = sa.COWImage(p, func() { mach.ShootdownSpace(cpu, sa.ASID) })
		} else {
			child.Private = c.dupPrivate(p)
		}
		child.Stack = vm.Find(child.Private, stackBaseOf(p))

		// Charge what fork costs: proc setup plus image duplication plus
		// descriptor duplication.
		c.charge(mach.Cost.ProcCreate + int64(nfds)*mach.Cost.FDTableCopy)
		c.chargeImageDup(child.Private)

		c.S.Machine.Trace.Record(trace.EvCreate, int32(p.PID), c.P.CPU.Load(), uint64(child.PID), trace.CreateFork)
		c.S.register(child)
		c.S.startProc(child, childMain)
		return child.PID, nil
	})
}

// dupPrivate duplicates p's private pregion list for a child image,
// honoring the EagerDup ablation, and flushes the parent's space only when
// the duplication created stale writable translations (some duplicated
// region has held a writable PTE).
func (c *Context) dupPrivate(p *proc.Proc) []*vm.PRegion {
	dup := vm.DupListFlush
	if c.S.cfg.EagerDup {
		dup = vm.DupListEager
	}
	img, flush := dup(p.Private)
	if flush {
		c.S.Machine.ShootdownSpace(c.cpu(), p.ASID)
	}
	return img
}

// chargeImageDup charges the creation-time duplication cost of a child
// image: per page under the EagerDup ablation (the spawn walks every
// slot), per region on the lazy path — where the per-page walk is charged
// to whichever CPU takes the first touch, by the fault handler.
func (c *Context) chargeImageDup(img []*vm.PRegion) {
	mach := c.S.Machine
	if c.S.cfg.EagerDup {
		c.charge(int64(vm.TotalPages(img)) * mach.Cost.RegionDup)
		return
	}
	c.charge(int64(len(img)) * mach.Cost.LazyDup)
}

// groupOf returns p's share block, if any.
func groupOf(p *proc.Proc) *core.ShAddr {
	if sa, ok := p.ShareGrp().(*core.ShAddr); ok {
		return sa
	}
	return nil
}

// GroupOf exposes a process's shared address block for diagnostics and
// experiment instrumentation (sgtop, workload drivers).
func GroupOf(p *proc.Proc) *core.ShAddr { return groupOf(p) }

// stackBaseOf returns the base address of p's stack region.
func stackBaseOf(p *proc.Proc) hw.VAddr {
	if p.Stack != nil {
		return p.Stack.Base
	}
	return 0
}

// Sproc creates a new process within the caller's share group (creating
// the group on first use), sharing the resources selected by shmask. The
// child starts at entry with arg as its only argument, on a fresh stack
// carved from the shared space. The child's share mask is masked against
// the parent's — strict inheritance (paper §5.1).
func (c *Context) Sproc(name string, entry func(*Context, int64), shmask proc.Mask, arg int64) (int, error) {
	return invoke(c, sysSproc, func() (int, error) {
		return c.sproc(name, entry, shmask, arg, false)
	})
}

// ThreadCreate is the Mach-baseline creation path (paper §2, Figure 3): a
// new execution context sharing everything in the task, paying only for a
// kernel stack and thread context — no region or descriptor duplication.
// It is implemented on the share-group machinery with a full share mask,
// which is exactly the paper's argument: a thread is a process that shares
// everything.
func (c *Context) ThreadCreate(name string, entry func(*Context, int64), arg int64) (int, error) {
	return invoke(c, sysThread, func() (int, error) {
		return c.sproc(name, entry, proc.PRSALL, arg, true)
	})
}

// sproc is the shared creation path behind Sproc and ThreadCreate; the
// caller dispatches it through the gateway under its own descriptor.
func (c *Context) sproc(name string, entry func(*Context, int64), shmask proc.Mask, arg int64, asThread bool) (int, error) {
	if err := c.checkProcLimit(); err != nil {
		return -1, err
	}
	p := c.P
	mach := c.S.Machine

	// First sproc creates the share group.
	sa := groupOf(p)
	if sa == nil {
		sa = core.NewWithOptions(p, core.Options{
			ExclusiveVMLock: c.S.cfg.ExclusiveVMLock,
			EagerAttrSync:   c.S.cfg.EagerAttrSync,
			Topo:            mach.Topo,
			EagerDup:        c.S.cfg.EagerDup,
		})
	}
	// The group's own member ceiling (setshares MemberCap) is enforced
	// here, like the per-user limit above: EAGAIN, before any side effect,
	// so the gateway's sfRetry backoff applies and attrition can admit the
	// call on a later attempt.
	if cap := sa.MemberCap(); cap > 0 && sa.Size() >= int(cap) {
		return -1, ErrTooMany
	}
	shmask &= p.ShMask() // strict inheritance

	child := c.newChild(name)
	child.Arg = arg
	shareVM := shmask&proc.PRSADDR != 0

	// Virtual memory.
	cpu := c.cpu()
	if shareVM {
		child.ASID = sa.ASID
		child.Stack = sa.CarveStack(child, mach.Mem, child.StackMax, true)
		child.Private = []*vm.PRegion{
			{Reg: vm.NewRegion(mach.Mem, vm.RPRDA, vm.PRDAPages), Base: vm.PRDABase},
		}
		if asThread {
			c.charge(mach.Cost.ThreadCreate)
		} else {
			c.charge(mach.Cost.ProcCreate)
		}
	} else {
		// Copy-on-write image of the group's space; the new stack is
		// not visible in the share group (paper §5.1).
		child.ASID = mach.AllocASID()
		img := sa.COWImage(p, func() { mach.ShootdownSpace(cpu, sa.ASID) })
		// Replace the inherited PRDA copy with a fresh private one; the
		// PRDA sits at its fixed base in every image, so the index finds it
		// without a scan.
		if pr := vm.Find(img, vm.PRDABase); pr != nil && pr.Reg.Type == vm.RPRDA {
			img = vm.Remove(img, pr)
			pr.Reg.Detach()
		}
		img = vm.Insert(img, &vm.PRegion{Reg: vm.NewRegion(mach.Mem, vm.RPRDA, vm.PRDAPages), Base: vm.PRDABase})
		child.Stack = sa.CarveStack(child, mach.Mem, child.StackMax, false)
		img = vm.Insert(img, child.Stack)
		child.Private = img
		c.charge(mach.Cost.ProcCreate)
		c.chargeImageDup(img)
	}

	// Descriptors and directories: from the block when shared, from the
	// parent otherwise.
	cdir, rdir, umask, ulimit, uid, gid := sa.ShadowEnv()
	if shmask&proc.PRSFDS != 0 {
		child.Fd, child.FdFlags = sa.ShadowFds(p)
		if !asThread { // Mach threads reference the task's table directly
			p.Mu.Lock()
			nfds := p.OpenFdCount()
			p.Mu.Unlock()
			c.charge(int64(nfds) * mach.Cost.FDTableCopy)
		}
	} else {
		p.Mu.Lock()
		child.Fd, child.FdFlags = p.DupFdTable()
		p.Mu.Unlock()
	}
	child.Mu.Lock()
	if shmask&proc.PRSDIR != 0 {
		child.Cdir, child.Rdir = cdir.Hold(), rdir.Hold()
	} else {
		p.Mu.Lock()
		child.Cdir, child.Rdir = p.Cdir.Hold(), p.Rdir.Hold()
		p.Mu.Unlock()
	}
	if shmask&proc.PRSUMASK != 0 {
		child.Umask = umask
	}
	if shmask&proc.PRSULIMIT != 0 {
		child.Ulimit = ulimit
	}
	if shmask&proc.PRSID != 0 {
		child.Uid, child.Gid = uid, gid
	}
	child.Mu.Unlock()

	child.SetShMask(shmask)
	sa.AddMember(child)

	// Batched frame reservation: prepay the child's expected working set
	// against the group's account with one CAS, so a creation storm of
	// members does not serialize on per-page quota charges. A refusal
	// (quota cannot absorb the batch) just falls back to per-fill
	// charging; the reservation's remainder is returned at reap.
	if n := int64(c.S.cfg.SpawnReserve); n > 0 {
		if rv := sa.FrameAcct().Reserve(n); rv != nil {
			child.Resv = rv
			c.S.spawnReserved.Add(n)
		}
	}

	kind := trace.CreateSproc
	if asThread {
		kind = trace.CreateThread
	}
	c.S.Machine.Trace.Record(trace.EvCreate, int32(p.PID), c.P.CPU.Load(), uint64(child.PID), kind)
	c.S.register(child)
	c.S.startProc(child, func(cc *Context) { entry(cc, arg) })
	return child.PID, nil
}

// PrctlOpt selects a prctl(2) operation. The first four options are the
// paper's §5.2 set; the last two implement the §8 scheduling extensions
// ("the shared address block ... provides a convenient handle for making
// scheduling decisions about the process group as a whole").
type PrctlOpt int

const (
	PRMaxProcs     PrctlOpt = 1 // limit on processes per user
	PRMaxPProcs    PrctlOpt = 2 // number of processes the system can run in parallel
	PRSetStackSize PrctlOpt = 3 // set the maximum stack size (bytes)
	PRGetStackSize PrctlOpt = 4 // get the maximum stack size (bytes)
	// Deprecated: the raw int64-valued group options survive only as a
	// compatibility surface. New code controls a group through the typed
	// calls — SetGang/SetGroupPrio wrappers and Setshares(GroupLimits) —
	// which the gateway dispatches under their own descriptors.
	PRSetGang   PrctlOpt = 5 // value!=0: gang-schedule this share group (§8)
	PRGroupPrio PrctlOpt = 6 // set the scheduling priority of the whole group (§8)
)

var prctlNames = map[PrctlOpt]string{
	PRMaxProcs: "PR_MAXPROCS", PRMaxPProcs: "PR_MAXPPROCS",
	PRSetStackSize: "PR_SETSTACKSIZE", PRGetStackSize: "PR_GETSTACKSIZE",
	PRSetGang: "PR_SETGANG", PRGroupPrio: "PR_GROUPPRIO",
}

// String returns the symbolic option name (PR_MAXPROCS). Unknown options
// render in the stable PR_UNKNOWN(<n>) form, so log scrapers can match the
// prefix without tracking the option set.
func (o PrctlOpt) String() string {
	if n, ok := prctlNames[o]; ok {
		return n
	}
	return fmt.Sprintf("PR_UNKNOWN(%d)", int(o))
}

// Prctl queries and controls share-group features (paper §5.2).
func (c *Context) Prctl(option PrctlOpt, value int64) (int64, error) {
	return invoke(c, sysPrctl, func() (int64, error) {
		switch option {
		case PRMaxProcs:
			return int64(c.S.cfg.MaxProcs), nil
		case PRMaxPProcs:
			return int64(c.S.Machine.NCPU()), nil
		case PRSetStackSize:
			if value <= 0 {
				return -1, fmt.Errorf("kernel: prctl: bad stack size %d", value)
			}
			pages := int((value + hw.PageSize - 1) / hw.PageSize)
			c.P.Mu.Lock()
			c.P.StackMax = pages
			c.P.Mu.Unlock()
			return int64(pages) * hw.PageSize, nil
		case PRGetStackSize:
			c.P.Mu.Lock()
			defer c.P.Mu.Unlock()
			return int64(c.P.StackMax) * hw.PageSize, nil
		case PRSetGang:
			sa := groupOf(c.P)
			if sa == nil {
				return -1, fmt.Errorf("kernel: prctl: PR_SETGANG outside a share group")
			}
			sa.SetGang(value != 0)
			return value, nil
		case PRGroupPrio:
			sa := groupOf(c.P)
			if sa == nil {
				return -1, fmt.Errorf("kernel: prctl: PR_GROUPPRIO outside a share group")
			}
			for _, m := range sa.Members() {
				m.Prio.Store(int32(value))
			}
			return value, nil
		default:
			return -1, fmt.Errorf("kernel: prctl: unknown option %v", option)
		}
	})
}

// The ergonomic prctl wrappers: each is one option of the raw call with a
// properly typed result. Raw Prctl stays available for the §5.2 interface.

// MaxProcs returns the per-user process limit (PR_MAXPROCS).
func (c *Context) MaxProcs() int {
	v, _ := c.Prctl(PRMaxProcs, 0)
	return int(v)
}

// MaxPProcs returns how many processes the system can run in parallel —
// the CPU count (PR_MAXPPROCS).
func (c *Context) MaxPProcs() int {
	v, _ := c.Prctl(PRMaxPProcs, 0)
	return int(v)
}

// SetStackSize sets the maximum stack size in bytes (PR_SETSTACKSIZE) and
// returns the page-rounded size actually in effect.
func (c *Context) SetStackSize(bytes int64) (int64, error) {
	return c.Prctl(PRSetStackSize, bytes)
}

// GetStackSize returns the maximum stack size in bytes (PR_GETSTACKSIZE).
func (c *Context) GetStackSize() int64 {
	v, _ := c.Prctl(PRGetStackSize, 0)
	return v
}

// SetGang turns gang scheduling for the caller's share group on or off
// (PR_SETGANG). Fails outside a share group.
func (c *Context) SetGang(on bool) error {
	v := int64(0)
	if on {
		v = 1
	}
	_, err := c.Prctl(PRSetGang, v)
	return err
}

// SetGroupPrio sets the scheduling priority of every member of the
// caller's share group (PR_GROUPPRIO). Fails outside a share group.
func (c *Context) SetGroupPrio(prio int32) error {
	_, err := c.Prctl(PRGroupPrio, int64(prio))
	return err
}

// Unshare implements the §8 "stop sharing" extension: the caller withdraws
// the given resources from its share mask. Attribute resources simply stop
// synchronizing (the caller keeps its current private copies, which live
// in its user area already); withdrawing PR_SADDR converts the caller's
// view of the shared space into a copy-on-write private image, the same
// transition fork performs.
func (c *Context) Unshare(mask proc.Mask) error {
	return invoke0(c, sysUnshare, func() error {
		p := c.P
		sa := groupOf(p)
		if sa == nil {
			return fmt.Errorf("kernel: unshare outside a share group")
		}
		mask &= p.ShMask()
		if mask&proc.PRSADDR != 0 {
			mach := c.S.Machine
			cpu := c.cpu()
			old := p.Private
			img := sa.UnshareVM(p, func() { mach.ShootdownSpace(cpu, sa.ASID) })
			p.Private = img
			vm.DetachList(old)
			p.ASID = mach.AllocASID()
			if p.Stack != nil {
				p.Stack = vm.Find(img, p.Stack.Base)
			}
		}
		p.SetShMask(p.ShMask() &^ mask)
		// Synchronization bits for the withdrawn resources are now stale;
		// clear exactly those, keeping any pending sync for what remains.
		var stale uint32
		for _, mb := range []struct {
			m proc.Mask
			b uint32
		}{
			{proc.PRSFDS, proc.FSyncFds}, {proc.PRSDIR, proc.FSyncDir},
			{proc.PRSUMASK, proc.FSyncUmask}, {proc.PRSULIMIT, proc.FSyncUlimit},
			{proc.PRSID, proc.FSyncID},
		} {
			if mask&mb.m != 0 {
				stale |= mb.b
			}
		}
		for {
			oldBits := p.Flag.Load()
			if p.Flag.CompareAndSwap(oldBits, oldBits&^stale) {
				break
			}
		}
		return nil
	})
}

// Exec overlays the process with a new program image. The process is
// removed from its share group before the overlay, insuring a secure
// environment for the new image (paper §5.1); close-on-exec descriptors
// are closed and signal handlers reset. The body never returns: it panics
// with processExec, and the gateway's deferred exit path closes the trace
// span during the unwind.
func (c *Context) Exec(name string, main Main) error {
	return invoke0(c, sysExec, func() error {
		p := c.P

		// Leave the share group before overlaying (paper §5.1). Leave detaches
		// the member's sproc stack from the shared space with a shootdown.
		// The spawn-time frame reservation goes back with the membership:
		// the new image no longer charges the group.
		if rv := p.Resv; rv != nil {
			p.Resv = nil
			rv.Release()
		}
		if sa := groupOf(p); sa != nil {
			sa.Leave(p)
		}

		// Tear down the old private image and take a fresh address space
		// identifier; ASIDs are never reused, so stale TLB entries for the
		// old identifier can never match again and need no flush.
		vm.DetachList(p.Private)
		p.Private = nil
		p.ASID = c.S.Machine.AllocASID()

		p.Mu.Lock()
		for fd, f := range p.Fd {
			if f != nil && p.FdFlags[fd]&proc.FdCloseOnExec != 0 {
				f.Release()
				p.Fd[fd] = nil
				p.FdFlags[fd] = 0
			}
		}
		for i := range p.Handlers {
			p.Handlers[i] = nil
		}
		p.Mu.Unlock()

		c.S.newImage(p)
		c.charge(c.S.Machine.Cost.ProcCreate) // image construction
		c.S.Machine.Trace.Record(trace.EvCreate, int32(p.PID), c.P.CPU.Load(), uint64(p.PID), trace.CreateExec)
		panic(processExec{name: name, main: main})
	})
}

// Exit terminates the process with the given status. The body panics with
// processExit; the gateway's deferred exit path closes the trace span
// during the unwind.
func (c *Context) Exit(status int) {
	invoke1(c, sysExit, func() struct{} {
		panic(processExit{status: status})
	})
}

// Wait blocks until a child exits, reaps it, and returns its pid and exit
// status. It returns ErrNoChildren when no children remain and
// ErrInterrupt when a signal breaks the sleep.
func (c *Context) Wait() (int, int, error) {
	r, err := invoke(c, sysWait, func() ([2]int, error) {
		p := c.P
		for {
			p.Mu.Lock()
			if len(p.Children) == 0 {
				p.Mu.Unlock()
				return [2]int{-1, 0}, ErrNoChildren
			}
			for i, ch := range p.Children {
				select {
				case <-ch.Exited:
					p.Children = append(p.Children[:i], p.Children[i+1:]...)
					p.Mu.Unlock()
					c.S.unregister(ch)
					return [2]int{ch.PID, ch.ExitStatus}, nil
				default:
				}
			}
			p.Mu.Unlock()
			// SIGCLD must not abort wait(2): it is the very signal that
			// announces the event being waited for. Any other deliverable
			// signal interrupts the call.
			abort := func() bool { return p.UnmaskedPending(1 << proc.SIGCLD) }
			if !p.SleepInterruptibleIf(p.DeadSema, "wait(2) for child exit", abort) {
				if p.UnmaskedPending(1 << proc.SIGCLD) {
					return [2]int{-1, 0}, ErrInterrupt
				}
				// Woken by SIGCLD (or a stale token): rescan children.
			}
		}
	})
	return r[0], r[1], err
}

// Kill posts sig to the process with the given pid.
func (c *Context) Kill(pid, sig int) error {
	return invoke0(c, sysKill, func() error {
		target, ok := c.S.Lookup(pid)
		if !ok {
			return ErrNoProc
		}
		c.P.Mu.Lock()
		uid := c.P.Uid
		c.P.Mu.Unlock()
		target.Mu.Lock()
		tuid := target.Uid
		target.Mu.Unlock()
		if uid != 0 && uid != tuid {
			return ErrPerm
		}
		target.Post(sig)
		return nil
	})
}

// Signal installs handler for sig (nil restores the default action).
func (c *Context) Signal(sig int, handler proc.Handler) {
	invoke1(c, sysSignal, func() struct{} {
		c.P.SetHandler(sig, handler)
		return struct{}{}
	})
}

// Sigmask replaces the signal mask, returning the old one. SIGKILL cannot
// be masked.
func (c *Context) Sigmask(mask uint32) uint32 {
	return invoke1(c, sysSigmask, func() uint32 {
		c.P.Mu.Lock()
		old := c.P.SigMask
		c.P.SigMask = mask &^ (1 << proc.SIGKILL)
		c.P.Mu.Unlock()
		return old
	})
}

// Pause sleeps until a signal is delivered. A signal already pending on
// entry returns immediately — the check and the sleep are atomic, closing
// the classic pause(2) race.
func (c *Context) Pause() error {
	return invoke0(c, sysPause, func() error {
		s := klock.NewSema(0)
		c.P.SleepInterruptibleIf(s, "pause(2)", func() bool { return c.P.UnmaskedPending(0) })
		return ErrInterrupt
	})
}
