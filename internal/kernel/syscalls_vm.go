package kernel

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// VM errors.
var (
	ErrNoRegion = errors.New("kernel: address not mapped") // EINVAL
	ErrNoMem    = errors.New("kernel: out of memory")      // ENOMEM
)

// dataRegion finds the caller's data region — on the shared list for a
// VM-sharing member, in the private list otherwise.
func (c *Context) dataRegion() *vm.PRegion {
	p := c.P
	if p.Shares(proc.PRSADDR) {
		return groupOf(p).FindShared(p, vm.DataBase)
	}
	return vm.Find(p.Private, vm.DataBase)
}

// Brk returns the current program break (first address past the data
// region).
func (c *Context) Brk() hw.VAddr {
	return invoke1(c, sysBrk, func() hw.VAddr {
		if d := c.dataRegion(); d != nil {
			return d.End()
		}
		return 0
	})
}

// Sbrk grows (positive) or shrinks (negative) the data region by delta
// bytes, rounded up to whole pages, returning the previous break. For a
// VM-sharing member the change happens under the group's update lock: by
// the time Sbrk returns, every member sees the new size (paper §5.1); a
// shrink performs the synchronous machine-wide TLB shootdown before
// freeing pages (paper §6.2).
func (c *Context) Sbrk(delta int64) (hw.VAddr, error) {
	return invoke(c, sysSbrk, func() (hw.VAddr, error) {
		d := c.dataRegion()
		if d == nil {
			return 0, ErrNoRegion
		}
		old := d.End()
		if delta == 0 {
			return old, nil
		}
		pages := int((absI64(delta) + hw.PageSize - 1) / hw.PageSize)
		p := c.P
		mach := c.S.Machine
		if sa := groupOf(p); sa != nil && p.ShMask()&proc.PRSADDR != 0 {
			if delta > 0 {
				sa.GrowShared(p, d, pages)
			} else {
				cpu := c.cpu()
				// Only the freed tail needs to leave the TLBs: a small
				// shrink is shot down page-by-page so members keep their
				// other cached translations. The tail is computed inside
				// the closure, which ShrinkShared runs under the group's
				// update lock: another member may grow or shrink the
				// region between our size check and the lock, and a range
				// captured early would flush the wrong pages while the
				// ones actually freed kept stale TLB entries.
				if _, err := sa.ShrinkShared(p, d, pages, func() {
					vpn := uint32(d.Base>>hw.PageShift) + uint32(d.Reg.Pages()-pages)
					mach.ShootdownRange(cpu, vpn, pages, sa.ASID)
				}); err != nil {
					return 0, ErrNoRegion
				}
			}
			return old, nil
		}
		if delta > 0 {
			d.Reg.Grow(pages)
		} else {
			if pages > d.Reg.Pages() {
				return 0, ErrNoRegion
			}
			vpn := uint32(d.Base>>hw.PageShift) + uint32(d.Reg.Pages()-pages)
			mach.ShootdownRange(c.cpu(), vpn, pages, p.ASID)
			d.Reg.Shrink(pages)
		}
		return old, nil
	})
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Mmap creates an anonymous demand-zero mapping of npages pages and
// returns its base address. For a VM-sharing member the mapping lands on
// the shared pregion list, so "all other share group members will
// immediately see that new virtual region" (paper §6.2).
func (c *Context) Mmap(npages int) (hw.VAddr, error) {
	return invoke(c, sysMmap, func() (hw.VAddr, error) {
		if npages <= 0 {
			return 0, fmt.Errorf("kernel: mmap of %d pages", npages)
		}
		p := c.P
		reg := vm.NewRegion(c.S.Machine.Mem, vm.RShm, npages)
		if sa := groupOf(p); sa != nil && p.ShMask()&proc.PRSADDR != 0 {
			return sa.AttachAnon(p, reg), nil
		}
		base := p.AllocShmRange(npages)
		p.Private = vm.Insert(p.Private, &vm.PRegion{Reg: reg, Base: base})
		return base, nil
	})
}

// MmapPrivate creates an anonymous mapping visible only to the caller,
// even when the caller shares its address space with a group — the §8
// extension ("it could be possible to share part of the VM image and have
// copy-on-write access to other parts ... it only requires proper
// management of the private pregion list and the shared pregion list").
// The mapping lands on the caller's private pregion list, which the fault
// handler scans before the shared list.
func (c *Context) MmapPrivate(npages int) (hw.VAddr, error) {
	return invoke(c, sysMmapPrivate, func() (hw.VAddr, error) {
		if npages <= 0 {
			return 0, fmt.Errorf("kernel: mmap of %d pages", npages)
		}
		p := c.P
		reg := vm.NewRegion(c.S.Machine.Mem, vm.RShm, npages)
		var base hw.VAddr
		if sa := groupOf(p); sa != nil && p.ShMask()&proc.PRSADDR != 0 {
			// Carve the range from the shared arena so it cannot collide
			// with group mappings, but attach the region privately.
			base = sa.AttachPrivateRange(p, npages)
		} else {
			base = p.AllocShmRange(npages)
		}
		p.Private = vm.Insert(p.Private, &vm.PRegion{Reg: reg, Base: base})
		return base, nil
	})
}

// Munmap removes the mapping based at va, following the detach protocol:
// for a shared mapping the group's update lock is taken, every CPU's TLB
// is flushed, and only then are the physical pages freed.
func (c *Context) Munmap(va hw.VAddr) error {
	return invoke0(c, sysMunmap, func() error {
		p := c.P
		mach := c.S.Machine
		if sa := groupOf(p); sa != nil && p.ShMask()&proc.PRSADDR != 0 {
			pr := sa.FindShared(p, va)
			if pr == nil || pr.Base != va {
				return ErrNoRegion
			}
			cpu := c.cpu()
			// The range is read inside the closure — under DetachShared's
			// update lock — so a concurrent resize of the region cannot
			// leave the shootdown covering a stale extent.
			return sa.DetachShared(p, pr, func() {
				mach.ShootdownRange(cpu, uint32(pr.Base>>hw.PageShift), pr.Reg.Pages(), sa.ASID)
			})
		}
		pr := vm.Find(p.Private, va)
		if pr == nil || pr.Base != va {
			return ErrNoRegion
		}
		p.Private = vm.Remove(p.Private, pr)
		mach.ShootdownRange(c.cpu(), uint32(pr.Base>>hw.PageShift), pr.Reg.Pages(), p.ASID)
		if pr.Reg.Type == vm.RShm && pr.Base >= vm.ShmBase && pr.Base < vm.SprocStackBase {
			p.FreeShmRange(pr.Base, pr.Reg.Pages())
		}
		pr.Reg.Detach()
		return nil
	})
}

// ResidentPages reports the number of resident pages in the caller's
// visible image (diagnostics).
func (c *Context) ResidentPages() int {
	return invoke1(c, sysResident, func() int {
		n := vm.ResidentPages(c.P.Private)
		if sa := groupOf(c.P); sa != nil && c.P.ShMask()&proc.PRSADDR != 0 {
			n += vm.ResidentPages(sa.RegionList(c.P))
		}
		return n
	})
}
