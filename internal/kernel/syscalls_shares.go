package kernel

import (
	"fmt"

	"repro/internal/core"
)

// This file is the typed resource-control plane for share groups: the
// share block is the resource principal (the §8 observation that "the
// shared address block ... provides a convenient handle for making
// scheduling decisions about the process group as a whole", extended from
// scheduling to every resource the group consumes). setshares(2) writes a
// group's entitlements; getusage(2) reads back what the group has actually
// been delivered. Both replace the raw int64-valued prctl(2) group options
// as the supported control interface — Prctl remains as a compatibility
// shim over the same state.

// GroupLimits is the settable entitlement record of one share group — the
// argument of setshares(2). Fields follow a leave-unchanged convention so
// a caller can adjust one knob without reading the others first:
//
//   - CPUShares: relative CPU entitlement weight of the group under
//     fair-share scheduling. <= 0 leaves the current weight; setting any
//     positive weight arms fair-share dispatch machine-wide (one-way).
//   - FrameQuota: cap on resident physical frames charged to the group.
//     < 0 leaves the current quota; 0 removes it (unlimited). Lowering a
//     quota below current residency evicts nothing — the group degrades
//     through zero-page reclaim at its next over-quota fault.
//   - MemberCap: ceiling on concurrent group members enforced by
//     sproc(2)/thread_create(2) with EAGAIN. < 0 leaves the current cap;
//     0 removes it.
type GroupLimits struct {
	CPUShares  int32
	FrameQuota int64
	MemberCap  int32
}

// GroupUsage is the delivery record of one share group — the result of
// getusage(2). Entitlements are echoed next to the consumption they
// govern, so one call answers "what is this group promised, and what has
// it gotten".
type GroupUsage struct {
	// CPU: entitlement weight, undecayed cycles actually delivered to
	// members, the decayed usage accumulator the scheduler banded from,
	// and the band itself (0 = most favoured).
	CPUShares    int32
	Delivered    int64
	DecayedUsage float64
	Band         int32

	// Memory: frames currently charged to the group against its quota
	// (0 = unlimited), fills refused by the quota, reclaim passes run
	// before letting an over-quota fault surface, and zero pages those
	// passes recovered.
	FramesUsed     int64
	FrameQuota     int64
	QuotaHits      int64
	QuotaReclaims  int64
	ReclaimedZeros int64

	// Membership: current member count against the sproc cap (0 =
	// unlimited).
	Members   int
	MemberCap int32
}

// Setshares applies lim to the caller's share group (setshares(2)). It
// fails with EINVAL outside a share group: the share block is the
// principal the entitlements attach to, so there is nothing to configure
// before the first sproc. The first positive CPUShares anywhere in the
// system arms fair-share dispatch; a system in which setshares is never
// called schedules exactly as the share-blind baseline.
func (c *Context) Setshares(lim GroupLimits) error {
	return invoke0(c, sysSetshares, func() error {
		sa := groupOf(c.P)
		if sa == nil {
			return fmt.Errorf("kernel: setshares outside a share group")
		}
		if lim.CPUShares > 0 {
			sa.CPUAcct().SetShares(lim.CPUShares)
			c.S.Sched.SetFairShare()
		}
		if lim.FrameQuota >= 0 {
			sa.FrameAcct().SetQuota(lim.FrameQuota)
		}
		if lim.MemberCap >= 0 {
			sa.SetMemberCap(lim.MemberCap)
		}
		return nil
	})
}

// Getusage returns the caller's group entitlement and delivery record
// (getusage(2)). Fails with EINVAL outside a share group.
func (c *Context) Getusage() (GroupUsage, error) {
	return invoke(c, sysGetusage, func() (GroupUsage, error) {
		sa := groupOf(c.P)
		if sa == nil {
			return GroupUsage{}, fmt.Errorf("kernel: getusage outside a share group")
		}
		return c.S.groupUsage(sa), nil
	})
}

// groupUsage snapshots one group's entitlement/delivery record.
func (s *System) groupUsage(sa *core.ShAddr) GroupUsage {
	now := s.Machine.TotalCycles()
	ca, fa := sa.CPUAcct(), sa.FrameAcct()
	return GroupUsage{
		CPUShares:    ca.Shares(),
		Delivered:    ca.Delivered.Load(),
		DecayedUsage: ca.Usage(now),
		Band:         ca.Band(),

		FramesUsed:     fa.Used(),
		FrameQuota:     fa.Quota(),
		QuotaHits:      fa.QuotaHits.Load(),
		QuotaReclaims:  sa.QuotaReclaims.Load(),
		ReclaimedZeros: sa.ReclaimedZeros.Load(),

		Members:   sa.Size(),
		MemberCap: sa.MemberCap(),
	}
}
