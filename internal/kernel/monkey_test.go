package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// TestMonkey drives pseudo-random (seeded, reproducible) syscall sequences
// through share groups and checks the global invariants afterwards: no
// frame leaks, no inode leaks beyond the namespace, no proc-table leaks,
// and the kernel never wedges.
func TestMonkey(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runMonkey(t, seed)
		})
	}
}

func runMonkey(t *testing.T, seed int64) {
	cfg := testConfig()
	cfg.MaxProcs = 64
	s := NewSystem(cfg)

	s.Start("monkey", func(c *Context) {
		rng := rand.New(rand.NewSource(seed))
		var body func(cc *Context, depth int, rng *rand.Rand)
		body = func(cc *Context, depth int, rng *rand.Rand) {
			kids := 0
			for step := 0; step < 60; step++ {
				switch rng.Intn(14) {
				case 0: // open/write/close a random file
					path := fmt.Sprintf("/m%d", rng.Intn(8))
					fd, err := cc.Open(path, fs.ORead|fs.OWrite|fs.OCreat, 0o644)
					if err == nil {
						cc.WriteString(fd, vm.DataBase, "x")
						if rng.Intn(4) > 0 {
							cc.Close(fd)
						}
					}
				case 1: // unlink
					cc.Unlink(fmt.Sprintf("/m%d", rng.Intn(8)))
				case 2: // mmap / munmap churn
					if va, err := cc.Mmap(1 + rng.Intn(3)); err == nil {
						cc.Store32(va, uint32(step))
						if rng.Intn(2) == 0 {
							cc.Munmap(va)
						}
					}
				case 3: // sbrk wiggle
					if _, err := cc.Sbrk(hw.PageSize); err == nil && rng.Intn(2) == 0 {
						cc.Sbrk(-hw.PageSize)
					}
				case 4: // touch memory
					cc.Store32(vm.DataBase+hw.VAddr(4*rng.Intn(1024)), uint32(step))
				case 5: // umask / ulimit churn (propagates in groups)
					cc.Umask(uint16(rng.Intn(0o777)))
				case 6: // chdir between / and a made dir
					cc.Mkdir("/d", 0o755)
					if rng.Intn(2) == 0 {
						cc.Chdir("/d")
					} else {
						cc.Chdir("/")
					}
				case 7: // dup / dup2
					if fd, err := cc.Open("/m0", fs.ORead|fs.OCreat, 0o644); err == nil {
						if d, err := cc.Dup(fd); err == nil && rng.Intn(2) == 0 {
							cc.Close(d)
						}
						cc.Close(fd)
					}
				case 8: // signals to self (handled)
					cc.Signal(proc.SIGUSR1, func(int) {})
					cc.Kill(cc.Getpid(), proc.SIGUSR1)
				case 9: // sproc a child that runs a shorter monkey
					if depth < 2 && kids < 3 {
						mask := proc.Mask(rng.Uint32()) & proc.PRSALL
						childSeed := rng.Int63()
						_, err := cc.Sproc("m", func(k *Context, _ int64) {
							body(k, depth+1, rand.New(rand.NewSource(childSeed)))
						}, mask, 0)
						if err == nil {
							kids++
						}
					}
				case 10: // fork a child that runs a shorter monkey
					if depth < 2 && kids < 3 {
						childSeed := rng.Int63()
						_, err := cc.Fork("f", func(k *Context) {
							body(k, depth+1, rand.New(rand.NewSource(childSeed)))
						})
						if err == nil {
							kids++
						}
					}
				case 11: // reap if available (never block: scan first)
					if kids > 0 {
						if _, _, err := cc.Wait(); err == nil {
							kids--
						}
					}
				case 12: // pipes
					if r, w, err := cc.Pipe(); err == nil {
						cc.WriteString(w, vm.DataBase, "p")
						cc.Read(r, vm.DataBase+64, 1)
						cc.Close(r)
						cc.Close(w)
					}
				case 13: // unshare something, sometimes
					if cc.P.InGroup() && rng.Intn(4) == 0 {
						cc.Unshare(proc.Mask(rng.Uint32()) & (proc.PRSUMASK | proc.PRSULIMIT | proc.PRSID))
					}
				}
			}
			for kids > 0 {
				if _, _, err := cc.Wait(); err != nil {
					break
				}
				kids--
			}
		}
		body(c, 0, rng)
	})
	waitIdle(t, s)

	if used := s.Machine.Mem.InUse(); used != 0 {
		t.Errorf("seed %d: %d frames leaked", seed, used)
	}
	if n := s.NProcs(); n != 0 {
		t.Errorf("seed %d: %d proc entries leaked", seed, n)
	}
}
