package kernel

import "fmt"

// Sysno identifies one system call in the gateway's descriptor table.
type Sysno uint8

// Syscall numbers. The numbering is internal to the simulation (it is the
// index into the descriptor table and the accounting arrays), grouped by
// the source file that implements the call.
const (
	sysNone Sysno = iota

	// File and attribute calls (syscalls_fs.go).
	SysOpen
	SysClose
	SysDup
	SysDup2
	SysFcntl // SetCloseOnExec
	SysRead
	SysWrite
	SysLseek
	SysMkdir
	SysUnlink
	SysLink
	SysStat
	SysReadDir
	SysChdir
	SysChroot
	SysUmask
	SysUlimit
	SysSetuid
	SysSetgid
	SysGetuid

	// Virtual memory (syscalls_vm.go).
	SysBrk
	SysSbrk
	SysMmap
	SysMmapPrivate
	SysMunmap
	SysResident

	// IPC (syscalls_ipc.go).
	SysPipe
	SysMsgget
	SysMsgsnd
	SysMsgrcv
	SysSemget
	SysSemop
	SysSemval
	SysShmget
	SysShmat
	SysShmRemove
	SysNetListen
	SysNetAccept
	SysNetConnect

	// Processes and signals (syscalls_proc.go).
	SysGetpid
	SysGetppid
	SysFork
	SysSproc
	SysThreadCreate
	SysPrctl
	SysUnshare
	SysExec
	SysExit
	SysWait
	SysKill
	SysSignal
	SysSigmask
	SysPause

	// NSys bounds the table; it is the size of every per-syscall array.
	NSys
)

// Class groups syscalls for profiling output (sgtop, ktrace).
type Class uint8

const (
	ClassNone Class = iota
	ClassFS         // files, descriptors, shared attributes
	ClassVM         // address-space management
	ClassIPC        // pipes, System V IPC, streams
	ClassProc       // creation, control, signals
)

var classNames = [...]string{"none", "fs", "vm", "ipc", "proc"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// sysDesc is one descriptor of the gateway table: the identity of a system
// call plus its dispatch-cost hint. Cost is charged by the gateway at entry
// on top of the machine's SyscallEntry cost — the hook per-syscall cost
// modelling and fault injection hang off; 0 means the call has no fixed
// cost beyond the trap itself.
type sysDesc struct {
	num   Sysno
	name  string
	class Class
	cost  int64
}

// The descriptor table. Syscall bodies reference these package-level
// descriptors when dispatching through invoke.
var (
	sysOpen        = &sysDesc{SysOpen, "open", ClassFS, 0}
	sysClose       = &sysDesc{SysClose, "close", ClassFS, 0}
	sysDup         = &sysDesc{SysDup, "dup", ClassFS, 0}
	sysDup2        = &sysDesc{SysDup2, "dup2", ClassFS, 0}
	sysFcntl       = &sysDesc{SysFcntl, "fcntl", ClassFS, 0}
	sysRead        = &sysDesc{SysRead, "read", ClassFS, 0}
	sysWrite       = &sysDesc{SysWrite, "write", ClassFS, 0}
	sysLseek       = &sysDesc{SysLseek, "lseek", ClassFS, 0}
	sysMkdir       = &sysDesc{SysMkdir, "mkdir", ClassFS, 0}
	sysUnlink      = &sysDesc{SysUnlink, "unlink", ClassFS, 0}
	sysLink        = &sysDesc{SysLink, "link", ClassFS, 0}
	sysStat        = &sysDesc{SysStat, "stat", ClassFS, 0}
	sysReadDir     = &sysDesc{SysReadDir, "readdir", ClassFS, 0}
	sysChdir       = &sysDesc{SysChdir, "chdir", ClassFS, 0}
	sysChroot      = &sysDesc{SysChroot, "chroot", ClassFS, 0}
	sysUmask       = &sysDesc{SysUmask, "umask", ClassFS, 0}
	sysUlimit      = &sysDesc{SysUlimit, "ulimit", ClassFS, 0}
	sysSetuid      = &sysDesc{SysSetuid, "setuid", ClassFS, 0}
	sysSetgid      = &sysDesc{SysSetgid, "setgid", ClassFS, 0}
	sysGetuid      = &sysDesc{SysGetuid, "getuid", ClassFS, 0}
	sysBrk         = &sysDesc{SysBrk, "brk", ClassVM, 0}
	sysSbrk        = &sysDesc{SysSbrk, "sbrk", ClassVM, 0}
	sysMmap        = &sysDesc{SysMmap, "mmap", ClassVM, 0}
	sysMmapPrivate = &sysDesc{SysMmapPrivate, "mmap_priv", ClassVM, 0}
	sysMunmap      = &sysDesc{SysMunmap, "munmap", ClassVM, 0}
	sysResident    = &sysDesc{SysResident, "resident", ClassVM, 0}
	sysPipe        = &sysDesc{SysPipe, "pipe", ClassIPC, 0}
	sysMsgget      = &sysDesc{SysMsgget, "msgget", ClassIPC, 0}
	sysMsgsnd      = &sysDesc{SysMsgsnd, "msgsnd", ClassIPC, 0}
	sysMsgrcv      = &sysDesc{SysMsgrcv, "msgrcv", ClassIPC, 0}
	sysSemget      = &sysDesc{SysSemget, "semget", ClassIPC, 0}
	sysSemop       = &sysDesc{SysSemop, "semop", ClassIPC, 0}
	sysSemval      = &sysDesc{SysSemval, "semval", ClassIPC, 0}
	sysShmget      = &sysDesc{SysShmget, "shmget", ClassIPC, 0}
	sysShmat       = &sysDesc{SysShmat, "shmat", ClassIPC, 0}
	sysShmRemove   = &sysDesc{SysShmRemove, "shmrm", ClassIPC, 0}
	sysNetListen   = &sysDesc{SysNetListen, "netlisten", ClassIPC, 0}
	sysNetAccept   = &sysDesc{SysNetAccept, "netaccept", ClassIPC, 0}
	sysNetConnect  = &sysDesc{SysNetConnect, "netconnect", ClassIPC, 0}
	sysGetpid      = &sysDesc{SysGetpid, "getpid", ClassProc, 0}
	sysGetppid     = &sysDesc{SysGetppid, "getppid", ClassProc, 0}
	sysFork        = &sysDesc{SysFork, "fork", ClassProc, 0}
	sysSproc       = &sysDesc{SysSproc, "sproc", ClassProc, 0}
	sysThread      = &sysDesc{SysThreadCreate, "thread_create", ClassProc, 0}
	sysPrctl       = &sysDesc{SysPrctl, "prctl", ClassProc, 0}
	sysUnshare     = &sysDesc{SysUnshare, "unshare", ClassProc, 0}
	sysExec        = &sysDesc{SysExec, "exec", ClassProc, 0}
	sysExit        = &sysDesc{SysExit, "exit", ClassProc, 0}
	sysWait        = &sysDesc{SysWait, "wait", ClassProc, 0}
	sysKill        = &sysDesc{SysKill, "kill", ClassProc, 0}
	sysSignal      = &sysDesc{SysSignal, "signal", ClassProc, 0}
	sysSigmask     = &sysDesc{SysSigmask, "sigmask", ClassProc, 0}
	sysPause       = &sysDesc{SysPause, "pause", ClassProc, 0}
)

// sysTable indexes the descriptors by number for name and class lookups.
var sysTable = func() [NSys]*sysDesc {
	var t [NSys]*sysDesc
	for _, d := range []*sysDesc{
		sysOpen, sysClose, sysDup, sysDup2, sysFcntl, sysRead, sysWrite,
		sysLseek, sysMkdir, sysUnlink, sysLink, sysStat, sysReadDir,
		sysChdir, sysChroot, sysUmask, sysUlimit, sysSetuid, sysSetgid,
		sysGetuid, sysBrk, sysSbrk, sysMmap, sysMmapPrivate, sysMunmap,
		sysResident, sysPipe, sysMsgget, sysMsgsnd, sysMsgrcv, sysSemget,
		sysSemop, sysSemval, sysShmget, sysShmat, sysShmRemove,
		sysNetListen, sysNetAccept, sysNetConnect, sysGetpid, sysGetppid,
		sysFork, sysSproc, sysThread, sysPrctl, sysUnshare, sysExec,
		sysExit, sysWait, sysKill, sysSignal, sysSigmask, sysPause,
	} {
		if t[d.num] != nil {
			panic("kernel: duplicate syscall number " + d.name)
		}
		t[d.num] = d
	}
	return t
}()

// SysName returns the name of a syscall number ("open"), for trace and
// profile rendering.
func SysName(n Sysno) string {
	if n < NSys && sysTable[n] != nil {
		return sysTable[n].name
	}
	return fmt.Sprintf("sys(%d)", uint8(n))
}

// SysClass returns the profiling class of a syscall number.
func SysClass(n Sysno) Class {
	if n < NSys && sysTable[n] != nil {
		return sysTable[n].class
	}
	return ClassNone
}
