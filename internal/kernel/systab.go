package kernel

import "fmt"

// Sysno identifies one system call in the gateway's descriptor table.
type Sysno uint8

// Syscall numbers. The numbering is internal to the simulation (it is the
// index into the descriptor table and the accounting arrays), grouped by
// the source file that implements the call.
const (
	sysNone Sysno = iota

	// File and attribute calls (syscalls_fs.go).
	SysOpen
	SysClose
	SysDup
	SysDup2
	SysFcntl // SetCloseOnExec
	SysRead
	SysWrite
	SysLseek
	SysMkdir
	SysUnlink
	SysLink
	SysStat
	SysReadDir
	SysChdir
	SysChroot
	SysUmask
	SysUlimit
	SysSetuid
	SysSetgid
	SysGetuid

	// Virtual memory (syscalls_vm.go).
	SysBrk
	SysSbrk
	SysMmap
	SysMmapPrivate
	SysMunmap
	SysResident

	// IPC (syscalls_ipc.go).
	SysPipe
	SysMsgget
	SysMsgsnd
	SysMsgrcv
	SysSemget
	SysSemop
	SysSemval
	SysShmget
	SysShmat
	SysShmRemove
	SysNetListen
	SysNetAccept
	SysNetConnect
	SysPoll

	// Processes and signals (syscalls_proc.go).
	SysGetpid
	SysGetppid
	SysFork
	SysSproc
	SysThreadCreate
	SysPrctl
	SysUnshare
	SysExec
	SysExit
	SysWait
	SysKill
	SysSignal
	SysSigmask
	SysPause

	// Typed resource control (syscalls_shares.go): the share group as a
	// resource principal.
	SysSetshares
	SysGetusage

	// Sleep-wake (syscalls_block.go): the paper's §3 process-blocking
	// calls backing hybrid spin-then-block synchronization.
	SysBlockproc
	SysUnblockproc
	SysSetblockproccnt

	// Checkpoint/restore (syscalls_ckpt.go): live share-group checkpoint
	// by iterative pre-copy, and group reconstruction from an image.
	SysCkpt
	SysRestore

	// NSys bounds the table; it is the size of every per-syscall array.
	NSys
)

// Class groups syscalls for profiling output (sgtop, ktrace).
type Class uint8

const (
	ClassNone Class = iota
	ClassFS         // files, descriptors, shared attributes
	ClassVM         // address-space management
	ClassIPC        // pipes, System V IPC, streams
	ClassProc       // creation, control, signals
)

var classNames = [...]string{"none", "fs", "vm", "ipc", "proc"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Per-syscall policy flags: how the gateway degrades the call under
// faults. The restart/retry bits encode UNIX semantics (which calls
// SA_RESTART may transparently restart, which transient failures are safe
// to re-run); the sfInj bits bound what an armed fault plan may inject at
// entry, so a call never reports an errno its contract does not allow.
const (
	sfRestart   uint8 = 1 << iota // EINTR from a blocking wait transparently restarts (SA_RESTART)
	sfRetry                       // transient EAGAIN retries with escalating backoff
	sfInjEINTR                    // plan may inject EINTR at entry
	sfInjEAGAIN                   // plan may inject EAGAIN at entry
	sfInjENOMEM                   // plan may inject ENOMEM at entry
)

// sysDesc is one descriptor of the gateway table: the identity of a system
// call plus its dispatch-cost hint and degradation policy. Cost is charged
// by the gateway at entry on top of the machine's SyscallEntry cost; 0
// means the call has no fixed cost beyond the trap itself.
type sysDesc struct {
	num   Sysno
	name  string
	class Class
	cost  int64
	flags uint8
}

// The descriptor table. Syscall bodies reference these package-level
// descriptors when dispatching through invoke.
var (
	sysOpen        = &sysDesc{SysOpen, "open", ClassFS, 0, sfInjEINTR}
	sysClose       = &sysDesc{SysClose, "close", ClassFS, 0, 0}
	sysDup         = &sysDesc{SysDup, "dup", ClassFS, 0, 0}
	sysDup2        = &sysDesc{SysDup2, "dup2", ClassFS, 0, 0}
	sysFcntl       = &sysDesc{SysFcntl, "fcntl", ClassFS, 0, 0}
	sysRead        = &sysDesc{SysRead, "read", ClassFS, 0, sfRestart | sfInjEINTR}
	sysWrite       = &sysDesc{SysWrite, "write", ClassFS, 0, sfRestart | sfInjEINTR}
	sysLseek       = &sysDesc{SysLseek, "lseek", ClassFS, 0, 0}
	sysMkdir       = &sysDesc{SysMkdir, "mkdir", ClassFS, 0, 0}
	sysUnlink      = &sysDesc{SysUnlink, "unlink", ClassFS, 0, 0}
	sysLink        = &sysDesc{SysLink, "link", ClassFS, 0, 0}
	sysStat        = &sysDesc{SysStat, "stat", ClassFS, 0, 0}
	sysReadDir     = &sysDesc{SysReadDir, "readdir", ClassFS, 0, 0}
	sysChdir       = &sysDesc{SysChdir, "chdir", ClassFS, 0, 0}
	sysChroot      = &sysDesc{SysChroot, "chroot", ClassFS, 0, 0}
	sysUmask       = &sysDesc{SysUmask, "umask", ClassFS, 0, 0}
	sysUlimit      = &sysDesc{SysUlimit, "ulimit", ClassFS, 0, 0}
	sysSetuid      = &sysDesc{SysSetuid, "setuid", ClassFS, 0, 0}
	sysSetgid      = &sysDesc{SysSetgid, "setgid", ClassFS, 0, 0}
	sysGetuid      = &sysDesc{SysGetuid, "getuid", ClassFS, 0, 0}
	sysBrk         = &sysDesc{SysBrk, "brk", ClassVM, 0, sfInjENOMEM}
	sysSbrk        = &sysDesc{SysSbrk, "sbrk", ClassVM, 0, sfInjENOMEM}
	sysMmap        = &sysDesc{SysMmap, "mmap", ClassVM, 0, sfInjENOMEM}
	sysMmapPrivate = &sysDesc{SysMmapPrivate, "mmap_priv", ClassVM, 0, sfInjENOMEM}
	sysMunmap      = &sysDesc{SysMunmap, "munmap", ClassVM, 0, 0}
	sysResident    = &sysDesc{SysResident, "resident", ClassVM, 0, 0}
	sysPipe        = &sysDesc{SysPipe, "pipe", ClassIPC, 0, 0}
	sysMsgget      = &sysDesc{SysMsgget, "msgget", ClassIPC, 0, 0}
	sysMsgsnd      = &sysDesc{SysMsgsnd, "msgsnd", ClassIPC, 0, sfRestart | sfInjEINTR}
	sysMsgrcv      = &sysDesc{SysMsgrcv, "msgrcv", ClassIPC, 0, sfRestart | sfInjEINTR}
	sysSemget      = &sysDesc{SysSemget, "semget", ClassIPC, 0, 0}
	sysSemop       = &sysDesc{SysSemop, "semop", ClassIPC, 0, sfRestart | sfInjEINTR}
	sysSemval      = &sysDesc{SysSemval, "semval", ClassIPC, 0, 0}
	sysShmget      = &sysDesc{SysShmget, "shmget", ClassIPC, 0, sfInjENOMEM}
	sysShmat       = &sysDesc{SysShmat, "shmat", ClassIPC, 0, sfInjENOMEM}
	sysShmRemove   = &sysDesc{SysShmRemove, "shmrm", ClassIPC, 0, 0}
	sysNetListen   = &sysDesc{SysNetListen, "netlisten", ClassIPC, 0, 0}
	sysNetAccept   = &sysDesc{SysNetAccept, "netaccept", ClassIPC, 0, sfRestart | sfInjEINTR}
	sysNetConnect  = &sysDesc{SysNetConnect, "netconnect", ClassIPC, 0, sfRestart}

	// poll is not sfRestart: like pause(2), returning EINTR after a
	// caught signal is its contract — the serving loops use the break to
	// re-examine shutdown flags before re-entering the wait.
	sysPoll    = &sysDesc{SysPoll, "poll", ClassIPC, 0, sfInjEINTR}
	sysGetpid  = &sysDesc{SysGetpid, "getpid", ClassProc, 0, 0}
	sysGetppid = &sysDesc{SysGetppid, "getppid", ClassProc, 0, 0}
	sysFork    = &sysDesc{SysFork, "fork", ClassProc, 0, sfRetry | sfInjEAGAIN | sfInjENOMEM}
	sysSproc   = &sysDesc{SysSproc, "sproc", ClassProc, 0, sfRetry | sfInjEAGAIN | sfInjENOMEM}
	sysThread  = &sysDesc{SysThreadCreate, "thread_create", ClassProc, 0, sfRetry | sfInjEAGAIN | sfInjENOMEM}
	sysPrctl   = &sysDesc{SysPrctl, "prctl", ClassProc, 0, 0}
	sysUnshare = &sysDesc{SysUnshare, "unshare", ClassProc, 0, 0}
	sysExec    = &sysDesc{SysExec, "exec", ClassProc, 0, sfInjENOMEM}
	sysExit    = &sysDesc{SysExit, "exit", ClassProc, 0, 0}
	sysWait    = &sysDesc{SysWait, "wait", ClassProc, 0, sfInjEINTR}
	sysKill    = &sysDesc{SysKill, "kill", ClassProc, 0, 0}
	sysSignal  = &sysDesc{SysSignal, "signal", ClassProc, 0, 0}
	sysSigmask = &sysDesc{SysSigmask, "sigmask", ClassProc, 0, 0}
	sysPause   = &sysDesc{SysPause, "pause", ClassProc, 0, 0}

	// setshares/getusage are not sfRestart: they never block, so an
	// injected EINTR surfaces to the caller — the fault-injection tests
	// depend on seeing it.
	sysSetshares = &sysDesc{SysSetshares, "setshares", ClassProc, 0, sfInjEINTR}
	sysGetusage  = &sysDesc{SysGetusage, "getusage", ClassProc, 0, sfInjEINTR}

	// blockproc is not sfRestart: like pause(2) and wait(2), returning
	// EINTR after a caught signal is its contract — the hybrid uspin
	// primitives depend on it to withdraw their waiter registration.
	sysBlockproc       = &sysDesc{SysBlockproc, "blockproc", ClassProc, 0, sfInjEINTR}
	sysUnblockproc     = &sysDesc{SysUnblockproc, "unblockproc", ClassProc, 0, 0}
	sysSetblockproccnt = &sysDesc{SysSetblockproccnt, "setblockproccnt", ClassProc, 0, 0}

	// ckpt is sfRetry: losing the one-initiator-at-a-time race, failing to
	// quiesce the group in bounded passes, and the injected pass-boundary
	// fault all surface as EAGAIN with the group thawed and unchanged, so
	// the gateway's escalating backoff can re-run the call safely.
	sysCkpt    = &sysDesc{SysCkpt, "ckpt", ClassProc, 0, sfRetry | sfInjEAGAIN}
	sysRestore = &sysDesc{SysRestore, "restore", ClassProc, 0, sfInjENOMEM}
)

// sysTable indexes the descriptors by number for name and class lookups.
var sysTable = func() [NSys]*sysDesc {
	var t [NSys]*sysDesc
	for _, d := range []*sysDesc{
		sysOpen, sysClose, sysDup, sysDup2, sysFcntl, sysRead, sysWrite,
		sysLseek, sysMkdir, sysUnlink, sysLink, sysStat, sysReadDir,
		sysChdir, sysChroot, sysUmask, sysUlimit, sysSetuid, sysSetgid,
		sysGetuid, sysBrk, sysSbrk, sysMmap, sysMmapPrivate, sysMunmap,
		sysResident, sysPipe, sysMsgget, sysMsgsnd, sysMsgrcv, sysSemget,
		sysSemop, sysSemval, sysShmget, sysShmat, sysShmRemove,
		sysNetListen, sysNetAccept, sysNetConnect, sysPoll, sysGetpid, sysGetppid,
		sysFork, sysSproc, sysThread, sysPrctl, sysUnshare, sysExec,
		sysExit, sysWait, sysKill, sysSignal, sysSigmask, sysPause,
		sysSetshares, sysGetusage,
		sysBlockproc, sysUnblockproc, sysSetblockproccnt,
		sysCkpt, sysRestore,
	} {
		if t[d.num] != nil {
			panic("kernel: duplicate syscall number " + d.name)
		}
		t[d.num] = d
	}
	return t
}()

// SysName returns the name of a syscall number ("open"), for trace and
// profile rendering.
func SysName(n Sysno) string {
	if n < NSys && sysTable[n] != nil {
		return sysTable[n].name
	}
	return fmt.Sprintf("sys(%d)", uint8(n))
}

// SysRestartable reports whether the gateway transparently restarts n
// after an EINTR whose signal was caught (SA_RESTART semantics). wait(2)
// and pause(2) are deliberately not restartable: returning EINTR after a
// caught signal is their UNIX contract.
func SysRestartable(n Sysno) bool {
	return n < NSys && sysTable[n] != nil && sysTable[n].flags&sfRestart != 0
}

// SysRetryable reports whether the gateway retries n with backoff after a
// transient EAGAIN (process-creation calls whose limit check precedes any
// side effect).
func SysRetryable(n Sysno) bool {
	return n < NSys && sysTable[n] != nil && sysTable[n].flags&sfRetry != 0
}

// SysClass returns the profiling class of a syscall number.
func SysClass(n Sysno) Class {
	if n < NSys && sysTable[n] != nil {
		return sysTable[n].class
	}
	return ClassNone
}
