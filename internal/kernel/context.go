package kernel

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Context is the user-mode execution surface of one process: memory
// accesses run through the per-CPU software TLB and region fault handler,
// and system calls pass the kernel entry/exit points. A Context is only
// valid on the goroutine of the process it belongs to.
type Context struct {
	S *System
	P *proc.Proc
}

// ErrFault is the base of address faults surfaced to programs that catch
// SIGSEGV; programs without a handler are terminated instead.
type FaultError struct {
	VA    hw.VAddr
	Write bool
	Cause error
}

func (e *FaultError) Error() string {
	kind := "load"
	if e.Write {
		kind = "store"
	}
	if e.Cause != nil {
		return fmt.Sprintf("fault: %s at %#x: %v", kind, uint32(e.VA), e.Cause)
	}
	return fmt.Sprintf("fault: %s at %#x: no region", kind, uint32(e.VA))
}

// Unwrap exposes the underlying fill failure, so a caller (and the errno
// table) can distinguish an exhausted machine or group quota from a plain
// bad address with errors.Is.
func (e *FaultError) Unwrap() error { return e.Cause }

// cpu returns the CPU the process is currently executing on.
func (c *Context) cpu() *hw.CPU { return c.S.Sched.CurrentCPU(c.P) }

// charge accounts n cycles to the current CPU and takes the preemption
// check when the time slice runs out. It also latches SIGKILL promptly.
func (c *Context) charge(n int64) {
	c.cpu().Charge(n)
	c.P.Cycles.Add(n)
	if c.P.SliceLeft.Add(-n) <= 0 {
		c.S.Sched.Yield(c.P)
	}
	if c.P.Killed.Load() {
		panic(processExit{status: 128 + proc.SIGKILL})
	}
}

// DeliverSignals runs pending, unmasked signal actions: handlers execute
// on this process's own context; fatal defaults terminate it.
func (c *Context) DeliverSignals() { c.deliverPending() }

// deliverPending is the delivery core: it consumes every pending unmasked
// signal and reports whether a caught handler actually ran. Fatal
// defaults unwind the process; signals whose default action discards them
// (SIGCLD) are consumed without counting as a delivery — the distinction
// SpinWait32 needs, because a spin must break with EINTR only when the
// process observably handled a signal, not when the kernel threw one
// away.
func (c *Context) deliverPending() bool {
	delivered := false
	for {
		sig := c.P.PendingSignal()
		if sig == 0 {
			return delivered
		}
		h, fatal := c.P.SignalAction(sig)
		c.S.Machine.Trace.Record(trace.EvSignal, int32(c.P.PID), c.P.CPU.Load(), uint64(sig), 0)
		switch {
		case h != nil:
			h(sig)
			delivered = true
		case fatal:
			panic(processExit{status: 128 + sig})
		}
	}
}

// freezePark is the checkpoint safepoint slow path: the process has a
// pending freeze gate, so park on it until the initiator thaws the group.
// The loop re-checks after waking — a new checkpoint may have installed a
// fresh gate while this one was opening. Both safepoints that call this
// (the top of translate and the kernel entry) precede any lock
// acquisition, so a parked member never holds a kernel lock, and every
// user-visible store passes through translate first, so no store is in
// flight past a safepoint the member already crossed.
func (c *Context) freezePark() {
	p := c.P
	for {
		g := p.Freeze()
		if g == nil {
			return
		}
		p.MarkParked(g)
		c.S.Sched.Park(p, g.Thaw())
		p.ClearParked(g)
	}
}

// translate resolves va for the given access kind, consulting the TLB
// first and falling back to the fault path. The private pregion list is
// scanned first, then the share group's shared list under the shared read
// lock (paper §6.2). The freeze check on entry is the memory-access
// checkpoint safepoint: it runs before the access is charged or resolved,
// so a member observed parked here has not yet landed the store it was
// about to make.
func (c *Context) translate(va hw.VAddr, write bool) (hw.PFN, error) {
	if c.P.FreezePending() {
		c.freezePark()
	}
	cpu := c.cpu()
	c.charge(c.S.Machine.Cost.MemAccess)
	if va >= vm.PRDABase && va < vm.PRDABase+hw.VAddr(vm.PRDAPages*hw.PageSize) {
		return c.translatePRDA(va, write)
	}
	vpn := va.VPN()
	if pfn, w, ok := cpu.TLB.Lookup(vpn, c.P.ASID); ok && (!write || w) {
		return pfn, nil
	}
	return c.fault(va, write)
}

// translatePRDA resolves the process data area. Every VM-sharing member
// runs under the group's ASID yet has a private page at the same fixed
// virtual address (paper §5.1), so the translation can never be cached in
// the ordinary TLB — IRIX wires it into a reserved, per-process TLB slot
// reloaded on context switch, modelled here as a fixed-cost lookup that
// bypasses the shared TLB.
func (c *Context) translatePRDA(va hw.VAddr, write bool) (hw.PFN, error) {
	pr := vm.Find(c.P.Private, va)
	if pr == nil {
		return hw.NoPFN, c.segv(va, write, fmt.Errorf("no PRDA"))
	}
	pfn, _, res, _, err := pr.Reg.FillAccounted(pr.PageIndex(va), write, c.cpu().ID, c.frameAcct(), c.P.Resv)
	if err != nil {
		return hw.NoPFN, c.segv(va, write, err)
	}
	if res == vm.FillZeroed {
		c.cpu().Charge(c.S.Machine.Cost.PageFault + c.S.Machine.Cost.PageZero)
	}
	return pfn, nil
}

// frameAcct returns the group frame account every frame this process
// acquires is charged to, or nil when it is not in a share group.
func (c *Context) frameAcct() *hw.FrameAcct {
	if sa := groupOf(c.P); sa != nil {
		return sa.FrameAcct()
	}
	return nil
}

// fault is the TLB-miss / protection-fault handler. A fill refused by the
// group's frame quota does not surface immediately: the group's own
// all-zero pages are reclaimed first and the fill retried, so a group
// running against its cap degrades (refault + rezero) before it fails —
// the same reclaim-before-ENOMEM contract the allocator's cache drain
// gives machine-wide exhaustion, scoped to one group.
func (c *Context) fault(va hw.VAddr, write bool) (hw.PFN, error) {
	cpu := c.cpu()
	cpu.Faults.Add(1)
	c.S.Machine.Trace.Record(trace.EvFault, int32(c.P.PID), int32(cpu.ID), uint64(va), 0)

	sa := groupOf(c.P)
	var acct *hw.FrameAcct
	if sa != nil {
		acct = sa.FrameAcct()
	}

	var pfn hw.PFN
	var writable bool
	var res vm.FillResult
	var lazyPages int
	var err error

	for attempt := 0; ; attempt++ {
		found := false
		var lazy int
		if pr := vm.Find(c.P.Private, va); pr != nil {
			pfn, writable, res, lazy, err = pr.Reg.FillAccounted(pr.PageIndex(va), write, cpu.ID, acct, c.P.Resv)
			found = true
		} else if sa != nil {
			pfn, writable, res, lazy, found, err = sa.ResolveSharedAccounted(c.P, va, write)
		}
		lazyPages += lazy
		if !found {
			return hw.NoPFN, c.segv(va, write, nil)
		}
		if err == nil {
			break
		}
		if sa != nil && attempt < 2 && errors.Is(err, hw.ErrNoQuota) &&
			sa.ReclaimQuota(c.P, func() { c.S.Machine.ShootdownSpace(cpu, sa.ASID) }) > 0 {
			continue
		}
		return hw.NoPFN, c.segv(va, write, err)
	}

	switch res {
	case vm.FillCached:
		cpu.Charge(c.S.Machine.Cost.TLBRefill)
	case vm.FillZeroed:
		cpu.Charge(c.S.Machine.Cost.PageFault + c.S.Machine.Cost.PageZero)
	case vm.FillCopied:
		cpu.Charge(c.S.Machine.Cost.PageFault + c.S.Machine.Cost.PageCopy)
	}
	if lazyPages > 0 {
		// First touch materialized a lazy duplication: the table walk the
		// spawn deferred is charged here, to the CPU that needed it, and
		// recorded so ktrace can show where creation cost actually landed.
		cpu.Charge(int64(lazyPages) * c.S.Machine.Cost.RegionDup)
		c.S.Machine.Trace.Record(trace.EvLazyBreak, int32(c.P.PID), int32(cpu.ID), uint64(va), uint32(lazyPages))
	}
	// On a NUMA machine a fill backed by a remote node's frame pays the
	// interconnect round trip (per hop). Locality-aware allocation makes
	// this rare; the node-blind ablation makes it the norm.
	if penalty := c.S.Machine.NodePenalty(cpu.ID, pfn); penalty > 0 {
		cpu.Charge(penalty)
	}
	cpu.TLB.Insert(va.VPN(), c.P.ASID, pfn, writable)
	return pfn, nil
}

// segv delivers the address fault: a process with a SIGSEGV handler gets
// the handler plus an error return; anything else dies.
func (c *Context) segv(va hw.VAddr, write bool, cause error) error {
	ferr := &FaultError{VA: va, Write: write, Cause: cause}
	if h, _ := c.P.SignalAction(proc.SIGSEGV); h != nil {
		h(proc.SIGSEGV)
		return ferr
	}
	panic(processExit{status: 128 + proc.SIGSEGV})
}

// Load32 loads the 32-bit word at va (va must be word aligned).
func (c *Context) Load32(va hw.VAddr) (uint32, error) {
	if va&3 != 0 {
		return 0, c.segv(va, false, fmt.Errorf("unaligned load"))
	}
	pfn, err := c.translate(va, false)
	if err != nil {
		return 0, err
	}
	return c.S.Machine.Mem.LoadWord(pfn, va.Offset()>>2), nil
}

// Store32 stores v at word-aligned va.
func (c *Context) Store32(va hw.VAddr, v uint32) error {
	if va&3 != 0 {
		return c.segv(va, true, fmt.Errorf("unaligned store"))
	}
	pfn, err := c.translate(va, true)
	if err != nil {
		return err
	}
	c.S.Machine.Mem.StoreWord(pfn, va.Offset()>>2, v)
	return nil
}

// CAS32 performs the hardware interlocked compare-and-swap at va — the
// primitive user-level busy-wait locks are built on (paper §3).
func (c *Context) CAS32(va hw.VAddr, old, new uint32) (bool, error) {
	if va&3 != 0 {
		return false, c.segv(va, true, fmt.Errorf("unaligned CAS"))
	}
	pfn, err := c.translate(va, true)
	if err != nil {
		return false, err
	}
	return c.S.Machine.Mem.CASWord(pfn, va.Offset()>>2, old, new), nil
}

// Add32 atomically adds delta at va, returning the new value.
func (c *Context) Add32(va hw.VAddr, delta uint32) (uint32, error) {
	if va&3 != 0 {
		return 0, c.segv(va, true, fmt.Errorf("unaligned add"))
	}
	pfn, err := c.translate(va, true)
	if err != nil {
		return 0, err
	}
	return c.S.Machine.Mem.AddWord(pfn, va.Offset()>>2, delta), nil
}

// LoadBytes copies len(dst) bytes from va, crossing pages as needed.
func (c *Context) LoadBytes(va hw.VAddr, dst []byte) error {
	for len(dst) > 0 {
		pfn, err := c.translate(va, false)
		if err != nil {
			return err
		}
		n := hw.PageSize - int(va.Offset())
		if n > len(dst) {
			n = len(dst)
		}
		c.S.Machine.Mem.ReadBytes(pfn, va.Offset(), dst[:n])
		c.charge(int64(n / 64)) // bulk transfer cost beyond the first access
		dst = dst[n:]
		va += hw.VAddr(n)
	}
	return nil
}

// StoreBytes copies src to va, crossing pages as needed.
func (c *Context) StoreBytes(va hw.VAddr, src []byte) error {
	for len(src) > 0 {
		pfn, err := c.translate(va, true)
		if err != nil {
			return err
		}
		n := hw.PageSize - int(va.Offset())
		if n > len(src) {
			n = len(src)
		}
		c.S.Machine.Mem.WriteBytes(pfn, va.Offset(), src[:n])
		c.charge(int64(n / 64))
		src = src[n:]
		va += hw.VAddr(n)
	}
	return nil
}

// SpinPollBatch is the number of cached polls a spinner runs between
// full-cost refreshes — one "round" of SpinWaitBounded's budget.
const SpinPollBatch = 4096

// SpinWait32 busy-waits until pred is true of the word at va and returns
// the observed value. It models a processor spinning on a cached word
// (paper §3: "processes that attempt to acquire the lock simply loop"):
// the first access and periodic refreshes go through the MMU at full cost,
// but failed polls run against the local cache and cost almost nothing.
// A small periodic charge keeps the spinner preemptible, so a descheduled
// partner can still be dispatched — the situation gang scheduling (§8)
// exists to avoid.
//
// At each full-cost refresh the spinner polls for pending unmasked
// signals: a caught handler runs and the spin returns ErrInterrupt
// (EINTR), and a fatal default terminates the process — so a spinner
// orphaned by a dead partner dies on kill instead of looping forever.
// Discarded signals (default-ignored SIGCLD) do not break the spin.
func (c *Context) SpinWait32(va hw.VAddr, pred func(uint32) bool) (uint32, error) {
	for {
		v, done, err := c.spinBatch(va, pred)
		if done || err != nil {
			return v, err
		}
	}
}

// SpinWaitBounded is SpinWait32 with a budget: at most rounds full-cost
// refreshes of SpinPollBatch cached polls each. It reports done=false
// when the budget expires without pred holding — the point where a hybrid
// spin-then-block primitive stops burning the processor and falls back to
// blockproc(2).
func (c *Context) SpinWaitBounded(va hw.VAddr, pred func(uint32) bool, rounds int) (v uint32, done bool, err error) {
	for r := 0; r < rounds; r++ {
		v, done, err = c.spinBatch(va, pred)
		if done || err != nil {
			return v, done, err
		}
	}
	return v, false, nil
}

// spinBatch runs one refresh-plus-cached-polls round of a spin wait.
func (c *Context) spinBatch(va hw.VAddr, pred func(uint32) bool) (uint32, bool, error) {
	// Signal poll at the refresh boundary: without it a spinner whose
	// partner died holding the lock is unkillable except by SIGKILL.
	if c.P.UnmaskedPending(0) && c.deliverPending() {
		return 0, false, ErrInterrupt
	}
	// Full-cost access: re-translates, honouring remaps, and keeps the
	// TLB entry warm.
	v, err := c.Load32(va)
	if err != nil {
		return 0, false, err
	}
	if pred(v) {
		return v, true, nil
	}
	pfn, err := c.translate(va, false)
	if err != nil {
		return 0, false, err
	}
	word := va.Offset() >> 2
	for i := 0; i < SpinPollBatch; i++ {
		v = c.S.Machine.Mem.LoadWord(pfn, word)
		if pred(v) {
			return v, true, nil
		}
		if i&7 == 7 {
			// Cache spin: near-zero cost per poll, but enough drip
			// charge that a spinner exhausts its slice and can be
			// preempted in reasonable time when CPUs are overcommitted.
			c.charge(1)
		}
		runtime.Gosched()
	}
	return v, false, nil
}

// StackBase returns the lowest address of this process's stack region.
func (c *Context) StackBase() hw.VAddr {
	if c.P.Stack != nil {
		return c.P.Stack.Base
	}
	return 0
}

// StackTop returns the first address above this process's stack region.
func (c *Context) StackTop() hw.VAddr {
	if c.P.Stack != nil {
		return c.P.Stack.End()
	}
	return 0
}
