package kernel

// Tests for the gateway's SA_RESTART-style degradation policy: a signal
// that interrupts a blocking syscall either transparently restarts the
// call (restartable class: read, write, semop, msgsnd/rcv, accept) or
// surfaces as EINTR (non-restartable class: wait, pause), and a fatal
// signal always terminates the call instead of looping.

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/proc"
	"repro/internal/vm"
)

func TestRestartTable(t *testing.T) {
	restartable := []Sysno{SysRead, SysWrite, SysMsgsnd, SysMsgrcv, SysSemop, SysNetAccept, SysNetConnect}
	for _, n := range restartable {
		if !SysRestartable(n) {
			t.Errorf("SysRestartable(%s) = false, want true", SysName(n))
		}
	}
	notRestartable := []Sysno{SysWait, SysPause, SysOpen, SysFork, SysExit}
	for _, n := range notRestartable {
		if SysRestartable(n) {
			t.Errorf("SysRestartable(%s) = true, want false", SysName(n))
		}
	}
	for _, n := range []Sysno{SysFork, SysSproc, SysThreadCreate} {
		if !SysRetryable(n) {
			t.Errorf("SysRetryable(%s) = false, want true", SysName(n))
		}
	}
	if SysRetryable(SysRead) {
		t.Error("SysRetryable(read) = true, want false")
	}
}

// A caught signal landing in a blocked pipe read must run the handler and
// transparently restart the read — the caller sees the data, not EINTR.
func TestPipeReadRestartsAfterSignal(t *testing.T) {
	s := NewSystem(testConfig())
	base := s.restarts.Load()
	var handlerRuns atomic.Int64
	s.Start("parent", func(c *Context) {
		rfd, wfd, err := c.Pipe()
		if err != nil {
			t.Fatalf("Pipe: %v", err)
		}
		pid, _ := c.Fork("reader", func(cc *Context) {
			cc.Signal(proc.SIGUSR1, func(int) { handlerRuns.Add(1) })
			got, err := cc.ReadString(rfd, vm.DataBase, 16)
			if err != nil || got != "restarted" {
				t.Errorf("read after signal = (%q, %v), want (\"restarted\", nil)", got, err)
			}
		})
		// Keep signalling until the gateway has observed at least one
		// EINTR restart — a single signal could be consumed at the
		// Signal() syscall's own exit, before the read ever blocks.
		for s.restarts.Load() == base {
			if err := c.Kill(pid, proc.SIGUSR1); err != nil {
				t.Fatalf("kill: %v", err)
			}
		}
		if _, err := c.WriteString(wfd, vm.DataBase, "restarted"); err != nil {
			t.Fatalf("write: %v", err)
		}
		c.Wait()
	})
	waitIdle(t, s)
	if s.restarts.Load() == base {
		t.Error("no restart recorded")
	}
	if handlerRuns.Load() == 0 {
		t.Error("handler never ran")
	}
	if st := s.Stats(); st.SyscallRestarts == 0 {
		t.Error("Stats().SyscallRestarts = 0")
	}
}

// Same policy for semop: interrupted P-operations restart and eventually
// succeed once the V arrives.
func TestSemopRestartsAfterSignal(t *testing.T) {
	s := NewSystem(testConfig())
	base := s.restarts.Load()
	s.Start("parent", func(c *Context) {
		id := c.Semget(7, 1)
		pid, _ := c.Fork("waiter", func(cc *Context) {
			cc.Signal(proc.SIGUSR1, func(int) {})
			if err := cc.Semop(id, 0, -1); err != nil {
				t.Errorf("semop after signal = %v, want nil", err)
			}
		})
		for s.restarts.Load() == base {
			if err := c.Kill(pid, proc.SIGUSR1); err != nil {
				t.Fatalf("kill: %v", err)
			}
		}
		if err := c.Semop(id, 0, 1); err != nil {
			t.Fatalf("semop +1: %v", err)
		}
		c.Wait()
	})
	waitIdle(t, s)
	if s.restarts.Load() == base {
		t.Error("no restart recorded")
	}
}

// wait(2) is NOT restartable: a signal that is not SIGCLD interrupts it
// and the caller sees EINTR.
func TestWaitInterruptedReturnsEINTR(t *testing.T) {
	s := NewSystem(testConfig())
	var sawEINTR atomic.Bool
	s.Start("parent", func(c *Context) {
		c.Signal(proc.SIGUSR1, func(int) {})
		rfd, wfd, err := c.Pipe()
		if err != nil {
			t.Fatalf("Pipe: %v", err)
		}
		ppid := c.Getpid()
		c.Fork("signaller", func(cc *Context) {
			for !sawEINTR.Load() {
				if err := cc.Kill(ppid, proc.SIGUSR1); err != nil {
					t.Errorf("kill: %v", err)
					return
				}
			}
			// Parked until the parent has seen its EINTR.
			cc.Read(rfd, vm.DataBase, 1)
		})
		_, _, err = c.Wait()
		if !errors.Is(err, ErrInterrupt) || !errors.Is(err, EINTR) {
			t.Errorf("Wait = %v, want EINTR", err)
		}
		if ErrnoOf(err) == EINTR {
			sawEINTR.Store(true)
		}
		if _, err := c.WriteString(wfd, vm.DataBase, "x"); err != nil {
			t.Fatalf("release write: %v", err)
		}
		// A straggler signal may interrupt the reap too; retry.
		for {
			if _, _, err := c.Wait(); err == nil {
				break
			} else if !errors.Is(err, EINTR) {
				t.Fatalf("reap: %v", err)
			}
		}
	})
	waitIdle(t, s)
	if !sawEINTR.Load() {
		t.Error("wait(2) never returned EINTR")
	}
}

// A fatal signal must terminate a restartable call, not restart it: the
// SA_RESTART loop delivers the signal, and an unhandled SIGKILL unwinds
// the process.
func TestFatalSignalBreaksRestartableRead(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		rfd, _, err := c.Pipe()
		if err != nil {
			t.Fatalf("Pipe: %v", err)
		}
		pid, _ := c.Fork("reader", func(cc *Context) {
			cc.Read(rfd, vm.DataBase, 1) // blocks forever: no writer writes
			t.Error("reader survived SIGKILL")
		})
		for i := 0; i < 50; i++ {
			c.Getpid() // give the reader time to block
		}
		c.Kill(pid, proc.SIGKILL)
		_, status, err := c.Wait()
		if err != nil || status != 128+proc.SIGKILL {
			t.Errorf("Wait = (status %d, %v), want status %d", status, err, 128+proc.SIGKILL)
		}
	})
	waitIdle(t, s)
}
