package kernel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/proc"
	"repro/internal/vm"
)

// Tests for the §3 sleep-wake subsystem: blockproc(2), unblockproc(2),
// setblockproccnt(2), and the banked-count semantics that make an
// unblock-before-block impossible to lose.

func TestBlockprocBankedUnblockNeverLost(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		readyVA := vm.DataBase
		pid, _ := c.Sproc("sleeper", func(cc *Context, _ int64) {
			cc.Store32(readyVA, 1)
			// Three banked unblocks pay for three blockprocs: none of
			// these may sleep, let alone hang.
			for i := 0; i < 3; i++ {
				if err := cc.Blockproc(0); err != nil {
					t.Errorf("banked blockproc %d: %v", i, err)
				}
			}
		}, proc.PRSALL, 0)
		// Bank the wakes before the child blocks. The child may not have
		// started yet — that is the point: the count retains them.
		for i := 0; i < 3; i++ {
			if err := c.Unblockproc(pid); err != nil {
				t.Errorf("unblockproc: %v", err)
			}
		}
		c.Wait()
	})
	waitIdle(t, s)
	st := s.Stats()
	if st.BankedWakes == 0 && st.ProcWakes == 0 {
		t.Errorf("no wake recorded at all: banked=%d wakes=%d", st.BankedWakes, st.ProcWakes)
	}
}

func TestBlockprocWakeRoundTrip(t *testing.T) {
	s := NewSystem(testConfig())
	var woke atomic.Bool
	s.Start("parent", func(c *Context) {
		gateVA := vm.DataBase
		pid, _ := c.Sproc("sleeper", func(cc *Context, _ int64) {
			cc.Store32(gateVA, 1)
			if err := cc.Blockproc(0); err != nil {
				t.Errorf("blockproc: %v", err)
				return
			}
			woke.Store(true)
		}, proc.PRSALL, 0)
		c.SpinWait32(gateVA, func(v uint32) bool { return v == 1 })
		if err := c.Unblockproc(pid); err != nil {
			t.Errorf("unblockproc: %v", err)
		}
		c.Wait()
	})
	waitIdle(t, s)
	if !woke.Load() {
		t.Fatal("sleeper never resumed after unblockproc")
	}
	st := s.Stats()
	if st.ProcBlocks == 0 {
		t.Errorf("ProcBlocks = 0, want at least the sleeper's block")
	}
	if st.ProcWakes+st.BankedWakes == 0 {
		t.Errorf("no wake counted: wakes=%d banked=%d", st.ProcWakes, st.BankedWakes)
	}
}

func TestBlockprocErrnos(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("main", func(c *Context) {
		pid, _ := c.Sproc("bystander", func(cc *Context, _ int64) {
			cc.Blockproc(0)
		}, proc.PRSALL, 0)

		// blockproc may only block the caller: any other pid is EINVAL.
		if err := c.Blockproc(pid); !errors.Is(err, ErrBadBlockPid) || ErrnoOf(err) != EINVAL {
			t.Errorf("Blockproc(other) = %v, want ErrBadBlockPid/EINVAL", err)
		}
		// Unknown targets are ESRCH, like kill(2).
		if err := c.Unblockproc(9999); ErrnoOf(err) != ESRCH {
			t.Errorf("Unblockproc(9999) = %v, want ESRCH", err)
		}
		if err := c.Setblockproccnt(9999, 1); ErrnoOf(err) != ESRCH {
			t.Errorf("Setblockproccnt(9999) = %v, want ESRCH", err)
		}
		// Out-of-range counts are EINVAL before the pid is even looked at.
		if err := c.Setblockproccnt(pid, -1); ErrnoOf(err) != EINVAL {
			t.Errorf("Setblockproccnt(-1) = %v, want EINVAL", err)
		}
		if err := c.Setblockproccnt(pid, proc.BlockCntMax+1); ErrnoOf(err) != EINVAL {
			t.Errorf("Setblockproccnt(max+1) = %v, want EINVAL", err)
		}
		// The administrative reset releases a sleeper. Wait until the
		// bystander is demonstrably down (count gone negative) so the
		// reset-to-zero is a release, not a no-op it can sleep past.
		target, ok := c.S.Lookup(pid)
		if !ok {
			t.Fatal("bystander vanished")
		}
		for target.BlockCnt() >= 0 {
			runtime.Gosched()
		}
		if err := c.Setblockproccnt(pid, 0); err != nil {
			t.Errorf("Setblockproccnt(0) = %v", err)
		}
		c.Wait()
	})
	waitIdle(t, s)
}

func TestBlockprocSignalInterruptsSleep(t *testing.T) {
	s := NewSystem(testConfig())
	var gotEINTR atomic.Bool
	s.Start("parent", func(c *Context) {
		gateVA := vm.DataBase
		pid, _ := c.Sproc("sleeper", func(cc *Context, _ int64) {
			cc.Signal(proc.SIGUSR1, func(int) {})
			cc.Store32(gateVA, 1)
			err := cc.Blockproc(0)
			if ErrnoOf(err) == EINTR {
				gotEINTR.Store(true)
			} else {
				t.Errorf("blockproc after signal = %v, want EINTR", err)
			}
		}, proc.PRSALL, 0)
		c.SpinWait32(gateVA, func(v uint32) bool { return v == 1 })
		if err := c.Kill(pid, proc.SIGUSR1); err != nil {
			t.Errorf("kill: %v", err)
		}
		c.Wait()
	})
	waitIdle(t, s)
	if !gotEINTR.Load() {
		t.Fatal("caught signal did not interrupt blockproc with EINTR")
	}
}

func TestBlockprocFatalSignalKillsSleeper(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		gateVA := vm.DataBase
		pid, _ := c.Sproc("victim", func(cc *Context, _ int64) {
			cc.Store32(gateVA, 1)
			cc.Blockproc(0) // no handler: SIGTERM is fatal mid-sleep
			t.Error("victim survived a fatal signal in blockproc")
		}, proc.PRSALL, 0)
		c.SpinWait32(gateVA, func(v uint32) bool { return v == 1 })
		c.Kill(pid, proc.SIGTERM)
		wpid, status, err := c.Wait()
		if err != nil || wpid != pid || status != 128+proc.SIGTERM {
			t.Errorf("Wait = (%d,%d,%v), want (%d,%d,nil)", wpid, status, err, pid, 128+proc.SIGTERM)
		}
	})
	waitIdle(t, s)
}

// TestBlockprocSpuriousWake arms the SiteBlockSleep fault site at 100%:
// every blockproc sleep receives a stale wake token before going down.
// The sleep loop must absorb it — re-check the count, go back to sleep —
// and still wake correctly on the real unblock.
func TestBlockprocSpuriousWake(t *testing.T) {
	s := NewSystem(testConfig())
	plan := faultinject.New(7, 0)
	plan.SetRate(faultinject.SiteBlockSleep, 1000)
	s.ArmFaults(plan)
	var woke atomic.Bool
	s.Start("parent", func(c *Context) {
		gateVA := vm.DataBase
		pid, _ := c.Sproc("sleeper", func(cc *Context, _ int64) {
			cc.Store32(gateVA, 1)
			if err := cc.Blockproc(0); err != nil {
				t.Errorf("blockproc under spurious wake: %v", err)
				return
			}
			woke.Store(true)
		}, proc.PRSALL, 0)
		c.SpinWait32(gateVA, func(v uint32) bool { return v == 1 })
		c.Unblockproc(pid)
		c.Wait()
	})
	waitIdle(t, s)
	if !woke.Load() {
		t.Fatal("sleeper never resumed")
	}
	if plan.Injected(faultinject.SiteBlockSleep) == 0 {
		t.Error("fault plan armed at 1000‰ but injected nothing — site not wired")
	}
}

// TestSpinWaitSignalInterrupt is the headline bugfix: a pure spin wait on
// a word that will never change must be interruptible by a caught signal
// (EINTR) rather than spinning forever.
func TestSpinWaitSignalInterrupt(t *testing.T) {
	s := NewSystem(testConfig())
	var gotEINTR atomic.Bool
	s.Start("parent", func(c *Context) {
		gateVA := vm.DataBase
		pid, _ := c.Sproc("spinner", func(cc *Context, _ int64) {
			cc.Signal(proc.SIGUSR1, func(int) {})
			cc.Store32(gateVA, 1)
			// vm.DataBase+64 stays 0 forever: only the signal ends this.
			_, err := cc.SpinWait32(vm.DataBase+64, func(v uint32) bool { return v != 0 })
			if errors.Is(err, ErrInterrupt) {
				gotEINTR.Store(true)
			} else {
				t.Errorf("SpinWait32 after signal = %v, want ErrInterrupt", err)
			}
		}, proc.PRSALL, 0)
		c.SpinWait32(gateVA, func(v uint32) bool { return v == 1 })
		c.Kill(pid, proc.SIGUSR1)
		c.Wait()
	})
	waitIdle(t, s)
	if !gotEINTR.Load() {
		t.Fatal("signal did not interrupt the spin")
	}
}
