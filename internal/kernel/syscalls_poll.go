package kernel

import (
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fs"
)

// This file implements poll(2) and select(2) over the waitable-descriptor
// abstraction (fs.Pollable): readiness is level-triggered state published
// by the streams themselves, so poll is a pure consumer — register on
// every descriptor's event queues, scan, and sleep until some stream
// publishes a transition. One process watching ten thousand descriptors
// replaces ten thousand processes blocked one-per-descriptor, which is
// what lets a small share group serve the C10k workload (EXPERIMENTS S7).

// Readiness bits re-exported at the syscall surface.
const (
	PollIn   = fs.PollIn
	PollOut  = fs.PollOut
	PollErr  = fs.PollErr
	PollHup  = fs.PollHup
	PollNval = fs.PollNval
)

// PollFd is one entry of a poll set: a descriptor, the events the caller
// cares about, and the result mask the kernel fills in.
type PollFd struct {
	Fd      int
	Events  uint16
	Revents uint16
}

// pollScan fills in Revents for every entry and returns the number of
// entries with a non-zero result. Error conditions (PollErr, PollHup,
// PollNval) report regardless of Events, as in poll(2).
func (c *Context) pollScan(fds []PollFd) int {
	n := 0
	// One table walk per scan: the classic kernel cost poll pays that a
	// blocked read does not, charged per 8 descriptors like the bitmap
	// word walks of the historical implementation.
	c.charge(int64(len(fds)+7) / 8)
	for i := range fds {
		fds[i].Revents = 0
		f, err := c.fdFile(fds[i].Fd)
		if err != nil {
			fds[i].Revents = fs.PollNval
			n++
			continue
		}
		mask := f.PollReady()
		r := mask & (fds[i].Events | fs.PollErr | fs.PollHup | fs.PollNval)
		if r != 0 {
			fds[i].Revents = r
			n++
		}
	}
	return n
}

// Poll waits for readiness on a set of descriptors. timeout follows
// poll(2) shape: 0 scans once without sleeping, a negative value blocks
// until some entry is ready, and a positive value bounds the sleep to
// that many milliseconds — the timer's expiry rides the same wake-token
// baton a stream's readiness transition does, so a timed wait that
// expires with nothing ready returns 0 like poll(2). It returns the
// number of entries with non-zero Revents.
//
// Poll is deliberately not restartable: a caught signal surfaces as EINTR
// (like pause(2)), so serving loops can re-examine shutdown state.
func (c *Context) Poll(fds []PollFd, timeout int) (int, error) {
	return invoke(c, sysPoll, func() (int, error) {
		p := c.P
		w := &fs.PollWaiter{T: p}
		registered := false
		defer func() {
			if registered {
				for i := range fds {
					if f, err := c.fdFile(fds[i].Fd); err == nil {
						f.PollUnregister(w)
					}
				}
			}
		}()
		// A positive timeout arms a one-shot timer whose expiry notifies
		// our own waiter registration: the same level-triggered deposit a
		// stream transition makes, so the sleep below needs no second wake
		// channel. A timer that outlives the call (Stop lost the race with
		// the firing) leaves at most one stale wake token behind, which
		// every kernel sleep already tolerates as a spurious wake.
		var expired atomic.Bool
		if timeout > 0 {
			tm := time.AfterFunc(time.Duration(timeout)*time.Millisecond, func() {
				expired.Store(true)
				w.Notify()
			})
			defer tm.Stop()
		}
		for {
			// Register before scanning so a transition that lands between
			// the scan and the sleep deposits a wake token instead of being
			// lost. Stale tokens surface as spurious wakes; the loop
			// re-scans and goes back down.
			if timeout != 0 && !registered {
				for i := range fds {
					if f, err := c.fdFile(fds[i].Fd); err == nil {
						f.PollRegister(w)
					}
				}
				registered = true
			}
			if n := c.pollScan(fds); n > 0 {
				return n, nil
			}
			if timeout == 0 || expired.Load() {
				return 0, nil
			}
			if p.SignalPending() {
				return -1, ErrInterrupt
			}
			if pl := c.S.faults; pl.Armed(faultinject.SitePollSleep) {
				if hit, _ := pl.Decide(faultinject.SitePollSleep, uint32(p.PID)); hit {
					// Spurious wakeup: deposit a stale wake token. The loop
					// re-scans and goes back down when nothing is ready.
					pl.Note(faultinject.SitePollSleep, faultinject.FaultWakeup, uint32(p.PID))
					p.NotifyWake()
				}
			}
			c.S.pollSleeps.Add(1)
			p.Block("poll(2)")
			// Loop: re-scan before looking at signals again, so a wake that
			// carries both readiness and a signal (a child writing and then
			// exiting) reports the events — EINTR only when nothing is ready.
		}
	})
}

// Select is the select(2) veneer: readable and writable descriptor sets
// expressed as one poll set. It is pure delegation — the call dispatches
// (and is accounted) as poll — and returns the subsets actually ready.
func (c *Context) Select(readfds, writefds []int, timeout int) (r, w []int, err error) {
	fds := make([]PollFd, 0, len(readfds)+len(writefds))
	for _, fd := range readfds {
		fds = append(fds, PollFd{Fd: fd, Events: fs.PollIn})
	}
	for _, fd := range writefds {
		fds = append(fds, PollFd{Fd: fd, Events: fs.PollOut})
	}
	if _, err := c.Poll(fds, timeout); err != nil {
		return nil, nil, err
	}
	for i, pf := range fds {
		if pf.Revents == 0 {
			continue
		}
		if i < len(readfds) {
			r = append(r, pf.Fd)
		} else {
			w = append(w, pf.Fd)
		}
	}
	return r, w, nil
}
