package kernel

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// testConfig keeps slices short so preemption and contention happen even
// in small tests.
func testConfig() Config {
	return Config{NCPU: 4, MemFrames: 8192, TimeSlice: 500}
}

// waitIdle waits for every process to exit, failing the test on deadlock.
func waitIdle(t *testing.T, s *System) {
	t.Helper()
	done := make(chan struct{})
	go func() { s.WaitIdle(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("system did not go idle (deadlock?)")
	}
}

func TestRunExitWait(t *testing.T) {
	s := NewSystem(testConfig())
	var ran atomic.Bool
	s.Start("init", func(c *Context) {
		ran.Store(true)
		if c.Getpid() != 1 {
			t.Errorf("pid = %d, want 1", c.Getpid())
		}
		c.Exit(7)
		t.Error("unreachable after Exit")
	})
	waitIdle(t, s)
	if !ran.Load() {
		t.Fatal("program never ran")
	}
	if s.NProcs() != 0 {
		t.Fatalf("proc table has %d entries after idle", s.NProcs())
	}
}

func TestForkWaitStatus(t *testing.T) {
	s := NewSystem(testConfig())
	var childPid atomic.Int64
	s.Start("parent", func(c *Context) {
		pid, err := c.Fork("child", func(cc *Context) {
			childPid.Store(int64(cc.Getpid()))
			if cc.Getppid() != 1 {
				t.Errorf("child ppid = %d", cc.Getppid())
			}
			cc.Exit(42)
		})
		if err != nil {
			t.Errorf("Fork: %v", err)
			return
		}
		wpid, status, err := c.Wait()
		if err != nil || wpid != pid || status != 42 {
			t.Errorf("Wait = (%d,%d,%v), want (%d,42,nil)", wpid, status, err, pid)
		}
		if _, _, err := c.Wait(); !errors.Is(err, ErrNoChildren) {
			t.Errorf("second Wait: %v", err)
		}
	})
	waitIdle(t, s)
	if childPid.Load() != 2 {
		t.Fatalf("child pid = %d", childPid.Load())
	}
}

func TestForkCopyOnWriteIsolation(t *testing.T) {
	s := NewSystem(testConfig())
	const va = vm.DataBase
	s.Start("parent", func(c *Context) {
		if err := c.Store32(va, 100); err != nil {
			t.Errorf("parent store: %v", err)
		}
		c.Fork("child", func(cc *Context) {
			if v, _ := cc.Load32(va); v != 100 {
				t.Errorf("child sees %d, want parent's 100", v)
			}
			cc.Store32(va, 200)
			if v, _ := cc.Load32(va); v != 200 {
				t.Errorf("child lost own write: %d", v)
			}
			cc.Exit(0)
		})
		c.Wait()
		if v, _ := c.Load32(va); v != 100 {
			t.Errorf("child write leaked into parent: %d", v)
		}
		// Parent writes after child exits: still works (sole owner again).
		c.Store32(va, 300)
		if v, _ := c.Load32(va); v != 300 {
			t.Errorf("parent post-fork write: %d", v)
		}
	})
	waitIdle(t, s)
}

func TestSprocSharedMemory(t *testing.T) {
	s := NewSystem(testConfig())
	const flag = vm.DataBase
	const data = vm.DataBase + 4
	s.Start("creator", func(c *Context) {
		c.Store32(data, 0)
		_, err := c.Sproc("member", func(cc *Context, arg int64) {
			if arg != 77 {
				t.Errorf("sproc arg = %d", arg)
			}
			cc.Store32(data, 555)
			cc.Store32(flag, 1)
		}, proc.PRSALL, 77)
		if err != nil {
			t.Errorf("Sproc: %v", err)
			return
		}
		// Busy-wait on shared memory — the paper's synchronization style.
		for {
			v, err := c.Load32(flag)
			if err != nil {
				t.Errorf("load flag: %v", err)
				return
			}
			if v == 1 {
				break
			}
		}
		if v, _ := c.Load32(data); v != 555 {
			t.Errorf("shared write not visible: %d", v)
		}
		c.Wait()
	})
	waitIdle(t, s)
}

func TestSprocStackVisibleToGroup(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		var stackVA atomic.Uint32
		var ready atomic.Bool
		c.Sproc("member", func(cc *Context, _ int64) {
			// Write a "local variable" on the child's stack and pass
			// its address to the parent (the paper's §5.1 scenario).
			va := cc.StackBase() + 64
			cc.Store32(va, 0xfeed)
			stackVA.Store(uint32(va))
			ready.Store(true)
			// Hold the stack alive until the parent reads it.
			for cc.Load32AndIgnore(va) != 0xdead {
			}
		}, proc.PRSALL, 0)
		for !ready.Load() {
			c.Load32(vm.DataBase) // burn cycles, stay preemptible
		}
		va := hw.VAddr(stackVA.Load())
		if v, _ := c.Load32(va); v != 0xfeed {
			t.Errorf("parent cannot read child stack: %#x", v)
		}
		c.Store32(va, 0xdead) // release the child
		c.Wait()
	})
	waitIdle(t, s)
}

func TestStrictInheritance(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		// Child shares only fds; its own child requests everything but
		// may only get fds.
		c.Sproc("limited", func(cc *Context, _ int64) {
			if cc.P.ShMask() != proc.PRSFDS {
				t.Errorf("limited mask = %v", cc.P.ShMask())
			}
			cc.Sproc("grandchild", func(g *Context, _ int64) {
				if g.P.ShMask() != proc.PRSFDS {
					t.Errorf("grandchild mask = %v, want PR_SFDS only (strict inheritance)", g.P.ShMask())
				}
			}, proc.PRSALL, 0)
			cc.Wait()
		}, proc.PRSFDS, 0)
		c.Wait()
	})
	waitIdle(t, s)
}

func TestSprocSharedFds(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		var childFd atomic.Int64
		childFd.Store(-1)
		c.Sproc("opener", func(cc *Context, _ int64) {
			fd, err := cc.Open("/shared.txt", fs.ORead|fs.OWrite|fs.OCreat, 0o644)
			if err != nil {
				t.Errorf("child open: %v", err)
				return
			}
			cc.WriteString(fd, cc.StackBase(), "from child")
			childFd.Store(int64(fd))
		}, proc.PRSALL, 0)
		for childFd.Load() < 0 {
			c.Getpid() // kernel entries let the sync bits land
		}
		c.Wait()
		// After a kernel entry the descriptor must be visible here.
		fd := int(childFd.Load())
		c.Getpid()
		c.P.Mu.Lock()
		f, err := c.P.GetFd(fd)
		c.P.Mu.Unlock()
		if err != nil {
			t.Errorf("parent does not see child's fd %d: %v", fd, err)
			return
		}
		if f.Offset() != int64(len("from child")) {
			t.Errorf("shared offset = %d", f.Offset())
		}
		// The descriptor works: seek and read through it.
		if _, err := c.Lseek(fd, 0, fs.SeekSet); err != nil {
			t.Errorf("lseek: %v", err)
		}
		got, err := c.ReadString(fd, vm.DataBase, 32)
		if err != nil || got != "from child" {
			t.Errorf("read through shared fd = (%q,%v)", got, err)
		}
	})
	waitIdle(t, s)
}

func TestSprocNoVMShareIsCOW(t *testing.T) {
	s := NewSystem(testConfig())
	const va = vm.DataBase
	s.Start("creator", func(c *Context) {
		c.Store32(va, 1)
		var done atomic.Bool
		c.Sproc("cow-child", func(cc *Context, _ int64) {
			if v, _ := cc.Load32(va); v != 1 {
				t.Errorf("cow child sees %d", v)
			}
			cc.Store32(va, 2)
			done.Store(true)
		}, proc.PRSFDS, 0) // no PR_SADDR
		for !done.Load() {
			c.Getpid()
		}
		c.Wait()
		if v, _ := c.Load32(va); v != 1 {
			t.Errorf("non-VM-sharing child's write leaked: %d", v)
		}
	})
	waitIdle(t, s)
}

func TestChdirPropagation(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		c.Mkdir("/work", 0o755)
		var moved, checked atomic.Bool
		c.Sproc("mover", func(cc *Context, _ int64) {
			if err := cc.Chdir("/work"); err != nil {
				t.Errorf("chdir: %v", err)
			}
			moved.Store(true)
			for !checked.Load() {
				cc.Getpid()
			}
		}, proc.PRSALL, 0)
		for !moved.Load() {
			c.Getpid()
		}
		// One kernel entry later, a relative create lands in /work.
		if _, err := c.Creat("hello", 0o644); err != nil {
			t.Errorf("relative creat: %v", err)
		}
		if _, err := c.Stat("/work/hello"); err != nil {
			t.Errorf("file not in propagated cwd: %v", err)
		}
		checked.Store(true)
		c.Wait()
	})
	waitIdle(t, s)
}

func TestUmaskAndUlimitPropagation(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		var set, verified atomic.Bool
		c.Sproc("setter", func(cc *Context, _ int64) {
			cc.Umask(0o077)
			cc.Ulimit(2, 100)
			set.Store(true)
			for !verified.Load() {
				cc.Getpid()
			}
		}, proc.PRSALL, 0)
		for !set.Load() {
			c.Getpid()
		}
		c.Getpid() // sync point
		c.P.Mu.Lock()
		umask, ulimit := c.P.Umask, c.P.Ulimit
		c.P.Mu.Unlock()
		if umask != 0o077 {
			t.Errorf("umask not propagated: %o", umask)
		}
		if ulimit != 100 {
			t.Errorf("ulimit not propagated: %d", ulimit)
		}
		// The propagated ulimit is enforced.
		fd, _ := c.Creat("/big", 0o644)
		if err := c.StoreBytes(vm.DataBase, make([]byte, 200)); err != nil {
			t.Errorf("store: %v", err)
		}
		if _, err := c.Write(fd, vm.DataBase, 200); !errors.Is(err, fs.ErrFileLimit) {
			t.Errorf("ulimit write: %v", err)
		}
		verified.Store(true)
		c.Wait()
	})
	waitIdle(t, s)
}

func TestSetuidPropagation(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		var set atomic.Bool
		c.Sproc("setter", func(cc *Context, _ int64) {
			if err := cc.Setuid(42); err != nil {
				t.Errorf("setuid: %v", err)
			}
			set.Store(true)
		}, proc.PRSALL, 0)
		for !set.Load() {
			c.Getpid()
		}
		c.Wait()
		if uid := c.Getuid(); uid != 42 {
			t.Errorf("uid not propagated: %d", uid)
		}
	})
	waitIdle(t, s)
}

func TestExecLeavesGroup(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		done := make(chan struct{})
		c.Sproc("execer", func(cc *Context, _ int64) {
			fd, _ := cc.Creat("/keep", 0o644)
			cfd, _ := cc.Creat("/lose", 0o644)
			cc.SetCloseOnExec(cfd, true)
			cc.Exec("newimage", func(n *Context) {
				defer close(done)
				if n.P.InGroup() {
					t.Error("exec'd process still in share group")
				}
				if n.P.ShMask() != 0 {
					t.Error("share mask survived exec")
				}
				n.P.Mu.Lock()
				_, errKeep := n.P.GetFd(fd)
				_, errLose := n.P.GetFd(cfd)
				n.P.Mu.Unlock()
				if errKeep != nil {
					t.Error("plain fd did not survive exec")
				}
				if errLose == nil {
					t.Error("close-on-exec fd survived exec")
				}
				// Fresh image: data region is zeroed.
				if v, _ := n.Load32(vm.DataBase); v != 0 {
					t.Errorf("exec image not fresh: %d", v)
				}
			})
		}, proc.PRSALL, 0)
		c.Store32(vm.DataBase, 7) // group data, must not leak into image
		<-done
		c.Wait()
		if c.P.ShareGrp() == nil {
			t.Error("creator lost its group")
		}
	})
	waitIdle(t, s)
}

func TestGroupSurvivesCreatorExit(t *testing.T) {
	s := NewSystem(testConfig())
	var finished atomic.Int32
	s.Start("creator", func(c *Context) {
		for i := 0; i < 3; i++ {
			c.Sproc("worker", func(cc *Context, arg int64) {
				// Workers outlive the creator.
				for j := 0; j < 50; j++ {
					cc.Add32(vm.DataBase, 1)
				}
				finished.Add(1)
			}, proc.PRSALL, int64(i))
		}
		// Exit without waiting: children are orphaned but the share
		// group (and its address space) must survive.
	})
	waitIdle(t, s)
	if finished.Load() != 3 {
		t.Fatalf("finished = %d", finished.Load())
	}
}

func TestSignalsDefaultAndHandler(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		pid, _ := c.Fork("victim", func(cc *Context) {
			for {
				cc.Getpid()
			}
		})
		c.Kill(pid, proc.SIGTERM)
		wpid, status, err := c.Wait()
		if err != nil || wpid != pid || status != 128+proc.SIGTERM {
			t.Errorf("Wait = (%d,%d,%v)", wpid, status, err)
		}

		// Handler: child catches SIGUSR1 and exits gracefully.
		var caught atomic.Bool
		pid2, _ := c.Fork("catcher", func(cc *Context) {
			cc.Signal(proc.SIGUSR1, func(sig int) {
				caught.Store(true)
				cc.P.Post(proc.SIGTERM) // then die on the next delivery
			})
			for {
				cc.Getpid()
			}
		})
		c.Kill(pid2, proc.SIGUSR1)
		c.Wait()
		if !caught.Load() {
			t.Error("handler did not run")
		}
	})
	waitIdle(t, s)
}

func TestPauseInterruptedBySignal(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		var woke atomic.Bool
		pid, _ := c.Fork("pauser", func(cc *Context) {
			cc.Signal(proc.SIGUSR1, func(int) {})
			if err := cc.Pause(); !errors.Is(err, ErrInterrupt) {
				t.Errorf("Pause = %v", err)
			}
			woke.Store(true)
		})
		// A single signal could land at the Signal() syscall's own exit,
		// before Pause begins — the classic pause(2) race that real UNIX
		// has too. Keep signalling until the pauser reports waking.
		for !woke.Load() {
			if err := c.Kill(pid, proc.SIGUSR1); err != nil {
				t.Errorf("kill: %v", err)
				break
			}
		}
		c.Wait()
		if !woke.Load() {
			t.Error("pauser never woke")
		}
	})
	waitIdle(t, s)
}

func TestKillSleepingProcess(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		pid, _ := c.Fork("sleeper", func(cc *Context) {
			cc.Pause() // interruptible sleep
			// SIGKILL latched: death happens on the next kernel crossing.
			cc.Getpid()
			t.Error("sleeper survived SIGKILL")
		})
		for i := 0; i < 50; i++ {
			c.Getpid()
		}
		c.Kill(pid, proc.SIGKILL)
		_, status, _ := c.Wait()
		if status != 128+proc.SIGKILL {
			t.Errorf("status = %d", status)
		}
	})
	waitIdle(t, s)
}

func TestSbrkGrowVisibleToGroup(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		oldBrk := c.Brk()
		var grown, read atomic.Bool
		c.Sproc("grower", func(cc *Context, _ int64) {
			if _, err := cc.Sbrk(8 * hw.PageSize); err != nil {
				t.Errorf("sbrk: %v", err)
			}
			cc.Store32(oldBrk+4, 0xabcd) // write in the new pages
			grown.Store(true)
			for !read.Load() {
				cc.Getpid()
			}
		}, proc.PRSALL, 0)
		for !grown.Load() {
			c.Getpid()
		}
		// The grower has returned from sbrk, so this member must see the
		// new size immediately (paper §5.1 VM rule).
		if v, err := c.Load32(oldBrk + 4); err != nil || v != 0xabcd {
			t.Errorf("growth not visible: (%v,%v)", v, err)
		}
		read.Store(true)
		c.Wait()
	})
	waitIdle(t, s)
}

func TestSbrkShrinkShootsDown(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		end := c.Brk()
		// Touch the last data page so a translation is cached.
		c.Store32(end-hw.PageSize, 9)
		before := s.Machine.ShootdownOps.Load()
		if _, err := c.Sbrk(-hw.PageSize); err != nil {
			t.Errorf("sbrk shrink: %v", err)
		}
		if s.Machine.ShootdownOps.Load() == before {
			t.Error("shrink did not shoot down TLBs")
		}
		// Install a handler so the fault comes back as an error.
		c.Signal(proc.SIGSEGV, func(int) {})
		if _, err := c.Load32(end - hw.PageSize); err == nil {
			t.Error("shrunk page still accessible")
		}
	})
	waitIdle(t, s)
}

func TestMmapMunmapShared(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		va, err := c.Mmap(4)
		if err != nil {
			t.Errorf("mmap: %v", err)
			return
		}
		var wrote atomic.Bool
		c.Sproc("writer", func(cc *Context, _ int64) {
			cc.Store32(va, 4242) // mapping made before sproc: visible
			wrote.Store(true)
		}, proc.PRSALL, 0)
		for !wrote.Load() {
			c.Getpid()
		}
		c.Wait()
		if v, _ := c.Load32(va); v != 4242 {
			t.Errorf("mmap not shared: %d", v)
		}
		if err := c.Munmap(va); err != nil {
			t.Errorf("munmap: %v", err)
		}
		c.Signal(proc.SIGSEGV, func(int) {})
		if _, err := c.Load32(va); err == nil {
			t.Error("unmapped page accessible")
		}
		if err := c.Munmap(va); !errors.Is(err, ErrNoRegion) {
			t.Errorf("double munmap: %v", err)
		}
	})
	waitIdle(t, s)
}

func TestPRDAIsPrivatePerMember(t *testing.T) {
	s := NewSystem(testConfig())
	const members = 4
	s.Start("creator", func(c *Context) {
		var done atomic.Int32
		for i := 0; i < members; i++ {
			c.Sproc("m", func(cc *Context, arg int64) {
				// Same fixed virtual address in every process.
				cc.Store32(vm.PRDABase, uint32(1000+arg))
				for j := 0; j < 100; j++ {
					if v, _ := cc.Load32(vm.PRDABase); v != uint32(1000+arg) {
						t.Errorf("member %d PRDA clobbered: %d", arg, v)
						break
					}
					cc.Getpid()
				}
				done.Add(1)
			}, proc.PRSALL, int64(i))
		}
		c.Store32(vm.PRDABase, 1)
		for done.Load() != members {
			if v, _ := c.Load32(vm.PRDABase); v != 1 {
				t.Errorf("creator PRDA clobbered: %d", v)
				break
			}
		}
		for i := 0; i < members; i++ {
			c.Wait()
		}
	})
	waitIdle(t, s)
}

func TestSelfSchedulingPoolCAS(t *testing.T) {
	// The paper's §3 model: a preallocated pool of processes
	// self-scheduling work from shared memory with busy-wait sync.
	s := NewSystem(testConfig())
	const workers = 6
	const items = 300
	const counterVA = vm.DataBase
	const nextVA = vm.DataBase + 4
	s.Start("creator", func(c *Context) {
		for w := 0; w < workers; w++ {
			c.Sproc("worker", func(cc *Context, _ int64) {
				for {
					// Claim the next work item.
					n, _ := cc.Add32(nextVA, 1)
					if n > items {
						return
					}
					cc.Add32(counterVA, 1)
				}
			}, proc.PRSALL, int64(w))
		}
		for w := 0; w < workers; w++ {
			c.Wait()
		}
		if v, _ := c.Load32(counterVA); v != items {
			t.Errorf("counter = %d, want %d", v, items)
		}
	})
	waitIdle(t, s)
}

func TestSEGVKillsWithoutHandler(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		pid, _ := c.Fork("wild", func(cc *Context) {
			cc.Load32(0xdeadbeef &^ 3)
			t.Error("survived wild access")
		})
		wpid, status, _ := c.Wait()
		if wpid != pid || status != 128+proc.SIGSEGV {
			t.Errorf("Wait = (%d,%d)", wpid, status)
		}
	})
	waitIdle(t, s)
}

func TestProcLimit(t *testing.T) {
	cfg := testConfig()
	cfg.MaxProcs = 3
	s := NewSystem(cfg)
	s.Start("parent", func(c *Context) {
		release := make(chan struct{})
		for i := 0; i < 2; i++ {
			if _, err := c.Fork("filler", func(cc *Context) { <-release }); err != nil {
				t.Errorf("fork %d: %v", i, err)
			}
		}
		if _, err := c.Fork("overflow", func(cc *Context) {}); !errors.Is(err, ErrTooMany) {
			t.Errorf("fork past limit: %v", err)
		}
		close(release)
		c.Wait()
		c.Wait()
	})
	waitIdle(t, s)
}

func TestPrctl(t *testing.T) {
	cfg := testConfig()
	s := NewSystem(cfg)
	s.Start("p", func(c *Context) {
		if v, _ := c.Prctl(PRMaxPProcs, 0); v != int64(cfg.NCPU) {
			t.Errorf("PR_MAXPPROCS = %d", v)
		}
		if v, _ := c.Prctl(PRMaxProcs, 0); v != int64(256) {
			t.Errorf("PR_MAXPROCS = %d", v)
		}
		if _, err := c.Prctl(PRSetStackSize, 128*1024); err != nil {
			t.Errorf("set stack: %v", err)
		}
		if v, _ := c.Prctl(PRGetStackSize, 0); v != 128*1024 {
			t.Errorf("get stack = %d", v)
		}
		// The new size takes effect for sproc children and is inherited.
		c.Sproc("kid", func(cc *Context, _ int64) {
			if got := cc.StackTop() - cc.StackBase(); got != 128*1024 {
				t.Errorf("child stack size = %d", got)
			}
			if v, _ := cc.Prctl(PRGetStackSize, 0); v != 128*1024 {
				t.Errorf("inherited stack size = %d", v)
			}
		}, proc.PRSALL, 0)
		c.Wait()
		if _, err := c.Prctl(99, 0); err == nil {
			t.Error("unknown prctl option accepted")
		}
		if _, err := c.Prctl(PRSetStackSize, -5); err == nil {
			t.Error("negative stack size accepted")
		}
		// The typed wrappers agree with the raw call.
		if got := c.MaxPProcs(); got != cfg.NCPU {
			t.Errorf("MaxPProcs() = %d", got)
		}
		if got := c.MaxProcs(); got != 256 {
			t.Errorf("MaxProcs() = %d", got)
		}
		if rounded, err := c.SetStackSize(64 * 1024); err != nil || rounded != 64*1024 {
			t.Errorf("SetStackSize = (%d, %v)", rounded, err)
		}
		if got := c.GetStackSize(); got != 64*1024 {
			t.Errorf("GetStackSize() = %d", got)
		}
		// The earlier Sproc made this a share-group leader, so the gang
		// wrappers work here too (the no-group error is covered by
		// TestPrctlGangAndGroupPrio).
		if err := c.SetGang(true); err != nil {
			t.Errorf("SetGang: %v", err)
		}
		if err := c.SetGroupPrio(3); err != nil {
			t.Errorf("SetGroupPrio: %v", err)
		}
		if PRSetGang.String() != "PR_SETGANG" || PrctlOpt(99).String() != "PR_UNKNOWN(99)" {
			t.Error("PrctlOpt.String broken")
		}
	})
	waitIdle(t, s)
}

func TestNonGroupProcessesUnaffected(t *testing.T) {
	// Design goal 4: normal processes pay nothing for share groups. A
	// plain process's syscalls must never touch share machinery (no
	// propagations, no syncs) even while a group runs beside it.
	s := NewSystem(testConfig())
	s.Start("group", func(c *Context) {
		c.Sproc("m", func(cc *Context, _ int64) {
			for i := 0; i < 100; i++ {
				cc.Umask(0o022)
			}
		}, proc.PRSALL, 0)
		c.Wait()
	})
	s.Start("plain", func(c *Context) {
		for i := 0; i < 200; i++ {
			c.Getpid()
			c.Umask(0o022)
		}
		if c.P.Flag.Load() != 0 {
			t.Error("plain process accumulated sync bits")
		}
		if c.P.ShareGrp() != nil {
			t.Error("plain process joined a group")
		}
	})
	waitIdle(t, s)
}

func TestMemoryReclaimedAfterExit(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		// Dirty some pages, spawn group members that dirty more, and
		// make sure everything is returned when the processes die.
		c.Store32(vm.DataBase, 1)
		for i := 0; i < 4; i++ {
			c.Sproc("m", func(cc *Context, arg int64) {
				cc.Store32(cc.StackBase()+8, uint32(arg))
				cc.Store32(vm.DataBase+hw.VAddr(4096*(1+arg)), 7)
			}, proc.PRSALL, int64(i))
		}
		for i := 0; i < 4; i++ {
			c.Wait()
		}
	})
	waitIdle(t, s)
	if used := s.Machine.Mem.InUse(); used != 0 {
		t.Fatalf("%d frames leaked after all processes exited", used)
	}
}

// Load32AndIgnore is a test helper on Context: a load that swallows fault
// errors (used in spin loops where the address is known valid).
func (c *Context) Load32AndIgnore(va hw.VAddr) uint32 {
	v, _ := c.Load32(va)
	return v
}
