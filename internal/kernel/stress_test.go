package kernel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// System-wide stress: several share groups, plain forkers and exec chains
// churn concurrently; afterwards the machine must be fully reclaimed.
func TestSystemStress(t *testing.T) {
	cfg := testConfig()
	cfg.MaxProcs = 128
	s := NewSystem(cfg)

	var groupSums atomic.Int64
	const groups = 3
	for g := 0; g < groups; g++ {
		s.Start(fmt.Sprintf("group-%d", g), func(c *Context) {
			shm, err := c.Mmap(2)
			if err != nil {
				t.Errorf("mmap: %v", err)
				return
			}
			const members, per = 3, 100
			for m := 0; m < members; m++ {
				c.Sproc("w", func(cc *Context, _ int64) {
					for i := 0; i < per; i++ {
						cc.Add32(shm, 1)
						if i%25 == 0 {
							cc.Getpid() // sync checkpoints
						}
					}
				}, proc.PRSALL, int64(m))
			}
			for m := 0; m < members; m++ {
				c.Wait()
			}
			v, _ := c.Load32(shm)
			groupSums.Add(int64(v))
			c.Munmap(shm)
		})
	}

	var forked atomic.Int64
	s.Start("forker", func(c *Context) {
		for i := 0; i < 20; i++ {
			_, err := c.Fork("kid", func(cc *Context) {
				cc.Store32(vm.DataBase, 1)
				cc.Exit(int(cc.Load32AndIgnore(vm.DataBase)))
			})
			if err != nil {
				t.Errorf("fork %d: %v", i, err)
				return
			}
			if _, status, err := c.Wait(); err != nil || status != 1 {
				t.Errorf("wait %d = (%d,%v)", i, status, err)
			}
			forked.Add(1)
		}
	})

	var execs atomic.Int64
	s.Start("execer", func(c *Context) {
		var chain func(depth int) Main
		chain = func(depth int) Main {
			return func(cc *Context) {
				execs.Add(1)
				if depth == 0 {
					return
				}
				cc.Creat(fmt.Sprintf("/gen%d", depth), 0o644)
				cc.Exec("next", chain(depth-1))
			}
		}
		chain(6)(c)
	})

	s.WaitIdle()
	if got := groupSums.Load(); got != groups*3*100 {
		t.Errorf("group sums = %d, want %d", got, groups*3*100)
	}
	if forked.Load() != 20 {
		t.Errorf("forked = %d", forked.Load())
	}
	if execs.Load() != 7 {
		t.Errorf("exec chain ran %d images", execs.Load())
	}
	if used := s.Machine.Mem.InUse(); used != 0 {
		t.Errorf("%d frames leaked after stress", used)
	}
	if n := s.NProcs(); n != 0 {
		t.Errorf("%d proc-table entries leaked", n)
	}
}

func TestDup2(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("p", func(c *Context) {
		fd, _ := c.Open("/log", fs.ORead|fs.OWrite|fs.OCreat, 0o644)
		other, _ := c.Creat("/other", 0o644)
		// Redirect "other" onto the log file.
		got, err := c.Dup2(fd, other)
		if err != nil || got != other {
			t.Errorf("Dup2 = (%d,%v)", got, err)
		}
		c.WriteString(other, vm.DataBase, "redirected")
		st, _ := c.Stat("/log")
		if st.Size != 10 {
			t.Errorf("log size = %d", st.Size)
		}
		if st2, _ := c.Stat("/other"); st2.Size != 0 {
			t.Errorf("other size = %d (write went to wrong file)", st2.Size)
		}
		// Self-dup is a no-op; bad targets are rejected.
		if got, err := c.Dup2(fd, fd); err != nil || got != fd {
			t.Errorf("self Dup2 = (%d,%v)", got, err)
		}
		if _, err := c.Dup2(fd, proc.NOFILE); !errors.Is(err, fs.ErrBadFd) {
			t.Errorf("oob Dup2: %v", err)
		}
		if _, err := c.Dup2(55, 3); !errors.Is(err, fs.ErrBadFd) {
			t.Errorf("bad src Dup2: %v", err)
		}
	})
	waitIdle(t, s)
}

func TestMmapPrivateInGroup(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		done := make(chan struct{})
		probe := make(chan uint32, 1)
		var privVA atomic.Uint32
		c.Sproc("m", func(cc *Context, _ int64) {
			defer close(done)
			va, err := cc.MmapPrivate(2)
			if err != nil {
				t.Errorf("MmapPrivate: %v", err)
				return
			}
			cc.Store32(va, 0xbeef)
			privVA.Store(uint32(va))
			// Stay alive until the creator has probed.
			<-probe
			if v, _ := cc.Load32(va); v != 0xbeef {
				t.Errorf("member lost private mapping: %#x", v)
			}
		}, proc.PRSALL, 0)
		for privVA.Load() == 0 {
			c.Getpid()
		}
		// The creator shares the address space yet must NOT see the
		// member's private mapping (SEGV → error with handler).
		c.Signal(proc.SIGSEGV, func(int) {})
		if _, err := c.Load32(hw.VAddr(privVA.Load())); err == nil {
			t.Error("private mapping visible to another member")
		}
		probe <- 1
		<-done
		c.Wait()
	})
	waitIdle(t, s)
	if used := s.Machine.Mem.InUse(); used != 0 {
		t.Errorf("%d frames leaked", used)
	}
}

func TestTextIsWriteProtected(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("solo", func(c *Context) {
		c.Signal(proc.SIGSEGV, func(int) {})
		if _, err := c.Load32(vm.TextBase); err != nil {
			t.Errorf("text load: %v", err)
		}
		if err := c.Store32(vm.TextBase, 1); err == nil {
			t.Error("store to private text succeeded")
		}
		// Same protection through the shared list.
		done := make(chan struct{})
		c.Sproc("m", func(cc *Context, _ int64) {
			defer close(done)
			cc.Signal(proc.SIGSEGV, func(int) {})
			if err := cc.Store32(vm.TextBase, 1); err == nil {
				t.Error("store to shared text succeeded")
			}
		}, proc.PRSALL, 0)
		<-done
		c.Wait()
	})
	waitIdle(t, s)
}

func TestSEGVWithoutHandlerOnTextStore(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		pid, _ := c.Fork("scribbler", func(cc *Context) {
			cc.Store32(vm.TextBase, 7)
			t.Error("survived text store")
		})
		wpid, status, _ := c.Wait()
		if wpid != pid || status != 128+proc.SIGSEGV {
			t.Errorf("Wait = (%d,%d)", wpid, status)
		}
	})
	waitIdle(t, s)
}

// TestArenaRecycling: sustained map/unmap churn must not march the mapping
// arena toward the end of the 32-bit address space — released ranges are
// reused (the failure mode is address wrap-around after ~4000 rounds).
func TestArenaRecycling(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("churner", func(c *Context) {
		// Group path.
		c.Sproc("m", func(cc *Context, _ int64) {}, proc.PRSALL, 0)
		c.Wait()
		first, err := c.Mmap(8)
		if err != nil {
			t.Errorf("mmap: %v", err)
			return
		}
		c.Munmap(first)
		for i := 0; i < 500; i++ {
			va, err := c.Mmap(8)
			if err != nil {
				t.Errorf("round %d: %v", i, err)
				return
			}
			if va != first {
				t.Errorf("round %d: range not recycled (%#x vs %#x)", i, uint32(va), uint32(first))
				return
			}
			c.Store32(va, uint32(i))
			if err := c.Munmap(va); err != nil {
				t.Errorf("munmap %d: %v", i, err)
				return
			}
		}
	})
	s.Start("solo-churner", func(c *Context) {
		first, _ := c.Mmap(4)
		c.Munmap(first)
		for i := 0; i < 500; i++ {
			va, _ := c.Mmap(4)
			if va != first {
				t.Errorf("solo round %d: not recycled", i)
				return
			}
			c.Munmap(va)
		}
	})
	waitIdle(t, s)
	if used := s.Machine.Mem.InUse(); used != 0 {
		t.Errorf("%d frames leaked", used)
	}
}
