package kernel

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Live checkpoint/restore of a running share group (DESIGN.md §17).
//
// ckpt(2) snapshots the caller's share group by iterative pre-copy: the
// regions' writable PTE bits are cleared and a dirty bitmap armed
// (vm.TrackDirty), the whole resident set is copied while every member
// keeps running, and each subsequent pass re-copies only the pages members
// re-dirtied in the meantime (vm.TakeDirty). When the requested passes are
// spent, the group is frozen — every member is parked at its next
// safepoint (Context.freezePark) or found already asleep — and only the
// final dirty delta is copied inside the stop-the-world window, together
// with the register-level member state and the share block's attributes.
// The window's length is therefore proportional to the last pass's dirty
// delta, not to the image: that is the whole point of pre-copy, and the
// S10 benchmark pins it.
//
// restore(2) is the inverse: a group-less caller adopts the image's
// creator role (identity, descriptor table, PRDA, stack geometry), a fresh
// share block is built around it, the shared regions are reconciled to the
// image's geometry, page contents are written back through the vm fill
// path (never through raw PTE words — the lint-ckpt boundary), and the
// remaining members are respawned at their recorded stack addresses with
// their recorded entry arguments. Respawned members begin their entry
// functions from the top: the simulation checkpoints memory and kernel
// state, not Go execution state, so restartable workloads structure their
// entries in phases keyed off the shared memory they find.

// Checkpoint/restore errors. Both quiescence failure and a lost initiator
// race surface as EAGAIN with the group thawed and tracking disarmed, so
// the gateway's sfRetry backoff can safely re-run the call.
var (
	ErrCkptBusy    = errors.New("kernel: another checkpoint is in progress") // EAGAIN
	ErrCkptQuiesce = errors.New("kernel: share group failed to quiesce")     // EAGAIN
)

// quiesceMaxIters bounds the freeze protocol's wait for every member to
// reach a safepoint or a sleep; a group that stays runnable past it (a
// member spinning without touching memory) fails the checkpoint with
// EAGAIN rather than wedging the initiator.
const quiesceMaxIters = 100000

// CkptOpts selects how a checkpoint trades live copying for stop time.
type CkptOpts struct {
	// Passes is the number of pre-copy passes run while members execute
	// (the first pass copies the whole resident set, later ones only the
	// re-dirtied delta). 0 skips pre-copy entirely: a naive stop-everything
	// snapshot, the differential baseline the validation layers compare
	// against.
	Passes int
	// PassGap is the simulated cycles the initiator idles between
	// consecutive pre-copy passes, charged in small slices so its CPU
	// actually rotates to the running members. Iterative pre-copy only
	// converges if the passes are spaced against the workload's dirtying
	// rate (CRIU spaces its pre-dump iterations the same way); 0 runs the
	// passes back to back, which is right for an already-quiet group.
	PassGap int64
}

// CkptInfo reports what a checkpoint cost — the S10 benchmark's row.
type CkptInfo struct {
	Passes     int   // pre-copy passes actually run (early-converged loops run fewer)
	PrePages   int   // pages copied live, members running
	STWPages   int   // pages copied inside the stop-the-world window
	STWCycles  int64 // simulated cycles the initiator charged while the group was stopped
	ImageBytes int   // encoded image size
}

// Ckpt checkpoints the caller's share group into a deterministic image
// (ckpt(2)). Every member must share the address space (PR_SADDR): private
// COW images are not captured, so a mixed group fails with EINVAL. One
// checkpoint runs at a time system-wide; a racing initiator gets EAGAIN.
func (c *Context) Ckpt(opts CkptOpts) (*ckpt.Image, CkptInfo, error) {
	type result struct {
		img  *ckpt.Image
		info CkptInfo
	}
	r, err := invoke(c, sysCkpt, func() (result, error) {
		img, info, err := c.ckpt(opts)
		return result{img, info}, err
	})
	return r.img, r.info, err
}

func (c *Context) ckpt(opts CkptOpts) (*ckpt.Image, CkptInfo, error) {
	p := c.P
	sa := groupOf(p)
	if sa == nil {
		return nil, CkptInfo{}, fmt.Errorf("kernel: ckpt outside a share group")
	}
	for _, m := range sa.Members() {
		if m.ShMask()&proc.PRSADDR == 0 {
			return nil, CkptInfo{}, fmt.Errorf("kernel: ckpt of member %d (%s) outside the shared address space", m.PID, m.Name)
		}
	}
	if !c.S.ckptMu.TryLock() {
		return nil, CkptInfo{}, ErrCkptBusy
	}
	defer c.S.ckptMu.Unlock()

	mach := c.S.Machine
	cpu := c.cpu()
	cpuIdx := int(p.CPU.Load())
	pl := c.S.faults

	// pages accumulates the newest copy of every captured page, keyed by
	// pregion so a region detached mid-flight simply drops out when the
	// list is re-snapshotted at stop-the-world.
	pages := map[*vm.PRegion]map[int][]byte{}
	tracked := map[*vm.PRegion]bool{}
	armed := map[*vm.Region]bool{}
	frozen := map[*proc.Proc]bool{}
	var gate *proc.FreezeGate
	var info CkptInfo

	// The cleanup runs on every exit — success, EAGAIN abort, or a kill
	// unwinding the initiator mid-checkpoint: disarm tracking, flush the
	// cleared writable bits' stale TLB entries, then thaw. Thaw order
	// matters: clear every member's freeze pointer before opening the
	// gate, so a member that races past Freeze() cannot re-park on a gate
	// that will never open again.
	defer func() {
		for r := range armed {
			r.UntrackDirty()
		}
		if len(armed) > 0 {
			mach.ShootdownSpace(cpu, sa.ASID)
		}
		for m := range frozen {
			m.ClearFreeze(gate)
		}
		if gate != nil {
			gate.Open()
		}
	}()

	copyInto := func(pr *vm.PRegion, idxs []int) int {
		dst := pages[pr]
		if dst == nil {
			dst = map[int][]byte{}
			pages[pr] = dst
		}
		n := 0
		for _, idx := range idxs {
			buf := make([]byte, hw.PageSize)
			if pr.Reg.ReadPage(idx, buf) {
				dst[idx] = buf
				n++
			}
		}
		c.charge(int64(n) * mach.Cost.RegionDup)
		return n
	}
	allPages := func(pr *vm.PRegion) []int {
		idxs := make([]int, pr.Reg.Pages())
		for i := range idxs {
			idxs[i] = i
		}
		return idxs
	}
	// A lazy-dup clone's contents live in its parent's table until a first
	// touch materializes it; nudge one fill through so ReadPage sees the
	// real resident set before the snapshot relies on it.
	materialize := func(pr *vm.PRegion) error {
		if !pr.Reg.Lazy() {
			return nil
		}
		_, _, _, lazyPages, err := pr.Reg.FillAccounted(0, false, cpuIdx, sa.FrameAcct(), nil)
		c.charge(int64(lazyPages) * mach.Cost.RegionDup)
		return err
	}

	// Pre-copy: arm dirty tracking on the current region list, flush so
	// the cleared writable bits take effect, then copy pass by pass while
	// the members keep running.
	regs := sa.RegionList(p)
	if opts.Passes > 0 {
		for _, pr := range regs {
			if err := materialize(pr); err != nil {
				return nil, info, err
			}
			pr.Reg.TrackDirty()
			tracked[pr] = true
			armed[pr.Reg] = true
		}
		mach.ShootdownSpace(cpu, sa.ASID)
		for pass := 0; pass < opts.Passes; pass++ {
			copied := 0
			if pass == 0 {
				for _, pr := range regs {
					copied += copyInto(pr, allPages(pr))
				}
			} else {
				// Harvest every region's delta first, then flush once:
				// a store through a stale writable TLB entry before the
				// flush lands in a frame this pass still copies; after
				// it, the store faults and marks the next pass's bitmap.
				deltas := make([][]int, len(regs))
				for i, pr := range regs {
					deltas[i] = pr.Reg.TakeDirty()
				}
				mach.ShootdownSpace(cpu, sa.ASID)
				for i, pr := range regs {
					copied += copyInto(pr, deltas[i])
				}
			}
			info.Passes++
			info.PrePages += copied
			c.S.ckptPasses.Add(1)
			c.S.ckptPrePages.Add(int64(copied))
			mach.Trace.Record(trace.EvCkptPass, int32(p.PID), p.CPU.Load(), uint64(copied), uint32(pass))

			// Pass-boundary fault injection: half the draws stretch the
			// pre-copy window (members re-dirty more, the next delta
			// grows), the other half abort the checkpoint — tracking is
			// disarmed and nothing was frozen yet, so EAGAIN is clean.
			if pl.Armed(faultinject.SiteCkpt) {
				if hit, draw := pl.Decide(faultinject.SiteCkpt, uint32(pass)); hit {
					if draw>>10&1 == 0 {
						pl.Note(faultinject.SiteCkpt, faultinject.FaultDelay, uint32(pass))
						c.charge(int64(256 + draw%2048))
					} else {
						pl.Note(faultinject.SiteCkpt, faultinject.FaultEAGAIN, uint32(pass))
						return nil, info, ErrCkptBusy
					}
				}
			}
			if pass > 0 && copied == 0 {
				break // converged: nothing re-dirtied since the last pass
			}
			if pass+1 < opts.Passes && opts.PassGap > 0 {
				for left := opts.PassGap; left > 0; left -= 512 {
					c.charge(512)
					runtime.Gosched()
				}
			}
		}
	}

	// Freeze: every other member must reach a safepoint (parked on the
	// gate) or already be off-CPU in a sleep or zombie state. The member
	// list is re-snapshotted every iteration so children sproc'd while we
	// were freezing get a freeze pointer too; the charge keeps the
	// initiator's clock honest while it waits, and Gosched lets runnable
	// members actually reach their safepoints.
	gate = proc.NewFreezeGate()
	for iter := 0; ; iter++ {
		quiet := true
		for _, m := range sa.Members() {
			if m == p {
				continue
			}
			if !frozen[m] {
				m.SetFreeze(gate)
				frozen[m] = true
			}
			if st := m.State(); !m.FrozenAt(gate) && st != proc.SSleep && st != proc.SZomb {
				quiet = false
			}
		}
		if quiet {
			break
		}
		if iter >= quiesceMaxIters {
			return nil, info, ErrCkptQuiesce
		}
		c.charge(32)
		runtime.Gosched()
	}

	// Stop-the-world window: re-snapshot the region list (regions attached
	// mid-pre-copy were never tracked and are copied whole; detached ones
	// drop out), harvest the final delta, and capture the member and
	// attribute state no store can now be racing.
	stwStart := p.Cycles.Load()
	regsNow := sa.RegionList(p)
	for _, pr := range regsNow {
		if err := materialize(pr); err != nil {
			return nil, info, err
		}
		var idxs []int
		if tracked[pr] {
			idxs = pr.Reg.TakeDirty()
		} else {
			idxs = allPages(pr)
		}
		info.STWPages += copyInto(pr, idxs)
	}

	members := sa.Members()
	img := &ckpt.Image{Version: ckpt.Version, PageSize: hw.PageSize}
	_, _, umask, ulimit, uid, gid := sa.ShadowEnv()
	img.Attr = ckpt.GroupAttr{
		Umask: umask, Ulimit: ulimit, Uid: uid, Gid: gid,
		CPUShares:  sa.CPUAcct().Shares(),
		FrameQuota: sa.FrameAcct().Quota(),
		MemberCap:  sa.MemberCap(),
		Gang:       sa.Gang(),
	}
	for _, pr := range regsNow {
		ri := ckpt.RegionImage{
			Base:  uint64(pr.Base),
			Pages: pr.Reg.Pages(),
			Type:  uint8(pr.Reg.Type),
		}
		for idx, data := range pages[pr] {
			if idx < ri.Pages {
				ri.Resid = append(ri.Resid, ckpt.PageImage{Index: idx, Data: data})
			}
		}
		img.Regions = append(img.Regions, ri)
	}
	for _, m := range members {
		if m.State() == proc.SZomb || m.Stack == nil {
			continue
		}
		img.Members = append(img.Members, ckpt.MemberImage{
			PID:        m.PID,
			Name:       m.Name,
			Mask:       uint32(m.ShMask()),
			Prio:       m.Prio.Load(),
			Arg:        m.Arg,
			StackBase:  uint64(m.Stack.Base),
			StackPages: m.Stack.Reg.Pages(),
			PRDA:       capturePRDA(m),
			Fds:        captureFds(m),
		})
	}
	img.Normalize()
	if err := img.Validate(); err != nil {
		return nil, info, err
	}
	info.STWCycles = p.Cycles.Load() - stwStart
	enc := img.Encode()
	info.ImageBytes = len(enc)

	c.S.ckpts.Add(1)
	c.S.ckptSTWPages.Add(int64(info.STWPages))
	c.S.ckptSTWCycles.Add(info.STWCycles)
	c.S.ckptImageBytes.Add(int64(info.ImageBytes))
	mach.Trace.Record(trace.EvCkptSTW, int32(p.PID), p.CPU.Load(), uint64(info.STWPages), uint32(len(frozen)))
	return img, info, nil
}

// capturePRDA copies a member's PRDA page contents, nil when the page was
// never touched (demand-zero, restored as such).
func capturePRDA(m *proc.Proc) []byte {
	pr := vm.Find(m.Private, vm.PRDABase)
	if pr == nil {
		return nil
	}
	buf := make([]byte, hw.PageSize)
	if !pr.Reg.ReadPage(0, buf) {
		return nil
	}
	return buf
}

// captureFds records a member's descriptor table: path, flags and offset
// for regular files (the CRIU convention — enough to reacquire them),
// structural presence only for anonymous stream endpoints.
func captureFds(m *proc.Proc) []ckpt.FdImage {
	m.Mu.Lock()
	defer m.Mu.Unlock()
	var out []ckpt.FdImage
	for fd, f := range m.Fd {
		if f == nil {
			continue
		}
		// OCreat/OTrunc describe how the file was opened, not what the
		// descriptor is; the restore reopens without them, so capturing
		// them would make a round-tripped image differ from its source.
		fi := ckpt.FdImage{
			Fd: fd, Path: f.Path, Flags: f.Flags &^ (fs.OCreat | fs.OTrunc), FdFlags: m.FdFlags[fd],
			Stream: f.Stream != nil,
		}
		if f.Stream == nil {
			fi.Offset = f.Offset()
		}
		out = append(out, fi)
	}
	return out
}

// Restore rebuilds a checkpointed share group around the caller
// (restore(2)). The caller must not already be in a group; it adopts the
// image's creator role — identity, umask/ulimit, descriptor table, PRDA
// and stack geometry — and the remaining members are respawned inside the
// new group at their recorded stack addresses, each executing entry with
// its recorded argument. Respawned members do not start running until the
// whole image is written back. Returns the number of members respawned.
//
// Restore is not atomic against failure: an error partway (a vanished
// file, the process limit) leaves the caller with whatever was rebuilt.
func (c *Context) Restore(img *ckpt.Image, entry func(*Context, int64)) (int, error) {
	return invoke(c, sysRestore, func() (int, error) {
		return c.restore(img, entry)
	})
}

func (c *Context) restore(img *ckpt.Image, entry func(*Context, int64)) (int, error) {
	p := c.P
	if groupOf(p) != nil {
		return -1, fmt.Errorf("kernel: restore inside a share group")
	}
	if err := img.Validate(); err != nil {
		return -1, err
	}
	if img.PageSize != hw.PageSize {
		return -1, fmt.Errorf("kernel: image page size %d, machine uses %d", img.PageSize, hw.PageSize)
	}
	mach := c.S.Machine
	cpu := c.cpu()
	cpuIdx := int(p.CPU.Load())

	// The caller adopts the creator's identity and descriptor table BEFORE
	// the share block exists, so the block's shadow state is built from
	// restored values rather than synchronized after the fact.
	creator := &img.Members[0]
	p.Mu.Lock()
	p.Umask = img.Attr.Umask
	p.Ulimit = img.Attr.Ulimit
	p.Uid, p.Gid = img.Attr.Uid, img.Attr.Gid
	p.Mu.Unlock()
	if err := c.restoreFds(p, creator.Fds); err != nil {
		return -1, err
	}
	p.Name = creator.Name
	p.Arg = creator.Arg
	p.Prio.Store(creator.Prio)
	if p.Stack == nil || uint64(p.Stack.Base) != creator.StackBase {
		return -1, fmt.Errorf("kernel: restore caller stack at %#x, image creator stack at %#x (stack geometry must match)", stackBaseOf(p), creator.StackBase)
	}

	sa := core.NewWithOptions(p, core.Options{
		ExclusiveVMLock: c.S.cfg.ExclusiveVMLock,
		EagerAttrSync:   c.S.cfg.EagerAttrSync,
		Topo:            mach.Topo,
		EagerDup:        c.S.cfg.EagerDup,
	})
	p.SetShMask(proc.Mask(creator.Mask))

	// Member stacks are carved per respawned member at their recorded
	// bases; every other image region is reconciled against the fresh
	// group's list — matched by base and resized, or attached anew.
	memberStack := map[uint64]bool{}
	for _, m := range img.Members[1:] {
		memberStack[m.StackBase] = true
	}
	inImage := map[uint64]*ckpt.RegionImage{}
	shoot := func() { mach.ShootdownSpace(cpu, sa.ASID) }
	for i := range img.Regions {
		ri := &img.Regions[i]
		inImage[ri.Base] = ri
		if memberStack[ri.Base] {
			continue
		}
		pr := sa.FindShared(p, hw.VAddr(ri.Base))
		if pr == nil || uint64(pr.Base) != ri.Base {
			pr = &vm.PRegion{Reg: vm.NewRegion(mach.Mem, vm.RegionType(ri.Type), ri.Pages), Base: hw.VAddr(ri.Base)}
			if err := sa.AttachShared(p, pr); err != nil {
				return -1, err
			}
			continue
		}
		if uint8(pr.Reg.Type) != ri.Type {
			return -1, fmt.Errorf("kernel: region at %#x is %v, image says %v", ri.Base, pr.Reg.Type, vm.RegionType(ri.Type))
		}
		if n := pr.Reg.Pages(); n < ri.Pages {
			sa.GrowShared(p, pr, ri.Pages-n)
		} else if n > ri.Pages {
			if _, err := sa.ShrinkShared(p, pr, n-ri.Pages, shoot); err != nil {
				return -1, err
			}
		}
	}
	// Regions the caller brought in that the image does not know (beyond
	// its own stack, which was geometry-checked above) would reappear in a
	// re-checkpoint and break the restore-and-diff layer; detach them.
	rebuilt := sa.RegionList(p)
	for _, pr := range rebuilt {
		if inImage[uint64(pr.Base)] == nil && pr != p.Stack {
			if err := sa.DetachShared(p, pr, shoot); err != nil {
				return -1, err
			}
		}
	}

	// Respawn members[1:]: proc-table identity from the restored caller,
	// stack at the recorded base. They are registered and counted but not
	// started — no restored member runs before the memory it expects is
	// written back. If the restore fails after this point, the already
	// registered children are started with a no-op body so they exit and
	// the system can still drain: restore is not atomic, but it never
	// strands an unstartable process.
	var spawned []*proc.Proc
	started := false
	defer func() {
		if started {
			return
		}
		for _, child := range spawned {
			c.S.startProc(child, func(*Context) {})
		}
	}()
	for i := range img.Members[1:] {
		m := &img.Members[1:][i]
		if err := c.checkProcLimit(); err != nil {
			return -1, err
		}
		child := c.newChild(m.Name)
		child.Arg = m.Arg
		child.Prio.Store(m.Prio)
		child.StackMax = m.StackPages
		child.ASID = sa.ASID
		stack, err := sa.CarveStackAt(child, mach.Mem, hw.VAddr(m.StackBase), m.StackPages, true)
		if err != nil {
			return -1, err
		}
		child.Stack = stack
		child.Private = []*vm.PRegion{
			{Reg: vm.NewRegion(mach.Mem, vm.RPRDA, vm.PRDAPages), Base: vm.PRDABase},
		}
		mask := proc.Mask(m.Mask)
		cdir, rdir, umask, ulimit, uid, gid := sa.ShadowEnv()
		if mask&proc.PRSFDS != 0 {
			child.Fd, child.FdFlags = sa.ShadowFds(p)
		} else if err := c.restoreFds(child, m.Fds); err != nil {
			return -1, err
		}
		child.Mu.Lock()
		child.Cdir, child.Rdir = cdir.Hold(), rdir.Hold()
		if mask&proc.PRSUMASK != 0 {
			child.Umask = umask
		}
		if mask&proc.PRSULIMIT != 0 {
			child.Ulimit = ulimit
		}
		if mask&proc.PRSID != 0 {
			child.Uid, child.Gid = uid, gid
		}
		child.Mu.Unlock()
		child.SetShMask(mask)
		sa.AddMember(child)
		if n := int64(c.S.cfg.SpawnReserve); n > 0 {
			if rv := sa.FrameAcct().Reserve(n); rv != nil {
				child.Resv = rv
				c.S.spawnReserved.Add(n)
			}
		}
		c.charge(mach.Cost.ProcCreate)
		mach.Trace.Record(trace.EvCreate, int32(p.PID), p.CPU.Load(), uint64(child.PID), trace.CreateSproc)
		c.S.register(child)
		spawned = append(spawned, child)
	}

	// Write page contents back through the fill path: write-mode fills
	// break any COW aliasing the caller's history left, so the bytes land
	// in frames this group owns. Text pages are filled read-only (text is
	// immutable) and only written when the image actually recorded
	// non-zero contents. Pages resident in a matched region but absent
	// from the image are demand-zero in the image's world — zero them, or
	// the restore-and-diff layer sees ghosts of the caller's past.
	acct := sa.FrameAcct()
	written := 0
	restored := sa.RegionList(p)
	for _, pr := range restored {
		ri := inImage[uint64(pr.Base)]
		if ri == nil {
			continue
		}
		resid := map[int][]byte{}
		for _, pg := range ri.Resid {
			resid[pg.Index] = pg.Data
		}
		for idx := 0; idx < pr.Reg.Pages(); idx++ {
			data := resid[idx]
			if data == nil {
				if pr.Reg.Frame(idx) == hw.NoPFN || pr.Reg.Type == vm.RText {
					continue
				}
				data = make([]byte, hw.PageSize) // zero out a resident ghost
			}
			if pr.Reg.Type == vm.RText && zeroBytes(data) {
				continue
			}
			write := pr.Reg.Type != vm.RText
			pfn, _, _, lazyPages, err := pr.Reg.FillAccounted(idx, write, cpuIdx, acct, nil)
			if err != nil {
				return -1, err
			}
			c.charge(int64(lazyPages) * mach.Cost.RegionDup)
			mach.Mem.WriteBytes(pfn, 0, data)
			written++
		}
	}
	// PRDA contents: the creator's own page, then each respawned member's.
	prdaProcs := append([]*proc.Proc{p}, spawned...)
	for i, mp := range prdaProcs {
		if i >= len(img.Members) {
			break
		}
		data := img.Members[i].PRDA
		pr := vm.Find(mp.Private, vm.PRDABase)
		if pr == nil {
			continue
		}
		if data == nil {
			if pr.Reg.Frame(0) == hw.NoPFN {
				continue
			}
			data = make([]byte, hw.PageSize)
		}
		pfn, _, _, _, err := pr.Reg.FillAccounted(0, true, cpuIdx, acct, nil)
		if err != nil {
			return -1, err
		}
		mach.Mem.WriteBytes(pfn, 0, data)
		written++
	}
	c.charge(int64(written) * mach.Cost.RegionDup)

	// Entitlements last: applying the frame quota before the content
	// writes would refuse the restore's own fills.
	if img.Attr.CPUShares > 0 {
		sa.CPUAcct().SetShares(img.Attr.CPUShares)
		c.S.Sched.SetFairShare()
	}
	if img.Attr.FrameQuota > 0 {
		sa.FrameAcct().SetQuota(img.Attr.FrameQuota)
	}
	if img.Attr.MemberCap > 0 {
		sa.SetMemberCap(img.Attr.MemberCap)
	}
	sa.SetGang(img.Attr.Gang)

	// The write-mode fills rewired translations under the caller's feet;
	// flush before anyone runs on the restored space.
	mach.ShootdownSpace(cpu, sa.ASID)
	c.S.restores.Add(1)
	mach.Trace.Record(trace.EvRestore, int32(p.PID), p.CPU.Load(), uint64(len(spawned)), 0)
	started = true
	for _, child := range spawned {
		arg := child.Arg
		c.S.startProc(child, func(cc *Context) { entry(cc, arg) })
	}
	return len(spawned), nil
}

// restoreFds replaces a process's descriptor table with the image's:
// path-backed files are reopened (never created or truncated — restore
// reacquires, it does not author) and repositioned; anonymous stream
// records are structural only and leave their slot empty.
func (c *Context) restoreFds(p *proc.Proc, fds []ckpt.FdImage) error {
	cred := c.cred()
	p.Mu.Lock()
	p.CloseAllFds()
	p.Mu.Unlock()
	for _, fi := range fds {
		if fi.Stream || fi.Path == "" {
			continue
		}
		f, err := c.S.FS.Open(cred, fi.Path, fi.Flags&^(fs.OCreat|fs.OTrunc), 0)
		if err != nil {
			return fmt.Errorf("kernel: restore fd %d: reopen %q: %w", fi.Fd, fi.Path, err)
		}
		if _, err := f.Seek(fi.Offset, fs.SeekSet); err != nil {
			f.Release()
			return fmt.Errorf("kernel: restore fd %d: seek %q: %w", fi.Fd, fi.Path, err)
		}
		p.Mu.Lock()
		p.SetFd(fi.Fd, f)
		p.FdFlags[fi.Fd] = fi.FdFlags
		p.ResetFdHint()
		p.Mu.Unlock()
	}
	return nil
}

func zeroBytes(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
