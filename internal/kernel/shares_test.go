package kernel

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hw"
	"repro/internal/proc"
)

// The typed control plane rejects callers outside a share group with
// EINVAL: there is no principal to attach entitlements to.
func TestSetsharesOutsideGroup(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("loner", func(c *Context) {
		if err := c.Setshares(GroupLimits{CPUShares: 4}); !errors.Is(err, EINVAL) {
			t.Errorf("setshares outside group: %v, want EINVAL", err)
		}
		if _, err := c.Getusage(); !errors.Is(err, EINVAL) {
			t.Errorf("getusage outside group: %v, want EINVAL", err)
		}
	})
	waitIdle(t, s)
}

// Round trip: setshares writes the group's entitlement record, getusage
// reads it back next to the delivery counters, and the leave-unchanged
// convention (negative fields) really leaves fields unchanged.
func TestSetsharesGetusage(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("leader", func(c *Context) {
		c.Sproc("m", func(*Context, int64) {}, proc.PRSALL, 0)
		c.Wait()
		if err := c.Setshares(GroupLimits{CPUShares: 5, FrameQuota: 100, MemberCap: 3}); err != nil {
			t.Fatalf("setshares: %v", err)
		}
		u, err := c.Getusage()
		if err != nil {
			t.Fatalf("getusage: %v", err)
		}
		if u.CPUShares != 5 || u.FrameQuota != 100 || u.MemberCap != 3 {
			t.Errorf("usage echoes (%d,%d,%d), want (5,100,3)", u.CPUShares, u.FrameQuota, u.MemberCap)
		}
		if u.Members != 1 {
			t.Errorf("members = %d, want 1 (the leader)", u.Members)
		}
		// Adjust one knob; the others must hold.
		if err := c.Setshares(GroupLimits{CPUShares: -1, FrameQuota: -1, MemberCap: 2}); err != nil {
			t.Fatalf("setshares update: %v", err)
		}
		u, _ = c.Getusage()
		if u.CPUShares != 5 || u.FrameQuota != 100 || u.MemberCap != 2 {
			t.Errorf("after partial update: (%d,%d,%d), want (5,100,2)", u.CPUShares, u.FrameQuota, u.MemberCap)
		}
		// Setting shares armed fair-share dispatch, and usage accrues.
		if !s.Stats().FairShareOn {
			t.Error("FairShareOn false after setshares")
		}
	})
	waitIdle(t, s)
}

// The member cap is enforced by sproc with EAGAIN — after the gateway's
// sfRetry backoff budget, since attrition could admit the call.
func TestMemberCapEAGAIN(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("leader", func(c *Context) {
		release := make(chan struct{})
		c.Sproc("m1", func(*Context, int64) { <-release }, proc.PRSALL, 0)
		if err := c.Setshares(GroupLimits{CPUShares: -1, FrameQuota: -1, MemberCap: 2}); err != nil {
			t.Fatalf("setshares: %v", err)
		}
		// Two members live (leader + m1): the cap is full.
		if _, err := c.Sproc("m2", func(*Context, int64) {}, proc.PRSALL, 0); !errors.Is(err, EAGAIN) {
			t.Errorf("sproc over member cap: %v, want EAGAIN", err)
		}
		close(release)
		c.Wait()
		// Attrition freed a slot: the same sproc is admitted now.
		if _, err := c.Sproc("m3", func(*Context, int64) {}, proc.PRSALL, 0); err != nil {
			t.Errorf("sproc after attrition: %v", err)
		}
		c.Wait()
	})
	waitIdle(t, s)
}

// An armed fault plan may inject EINTR into setshares/getusage (their only
// permitted injection). Neither is restartable, so the injection surfaces
// to the caller — the degradation contract tests depend on that.
func TestSetsharesGetusageEINTRInjection(t *testing.T) {
	s := NewSystem(testConfig())
	var sawSet, sawGet bool
	s.Start("leader", func(c *Context) {
		c.Sproc("m", func(*Context, int64) {}, proc.PRSALL, 0)
		c.Wait()
		// Arm at 100% only now, so group setup above ran clean.
		plan := faultinject.New(11, 0)
		plan.SetRate(faultinject.SiteSyscallEnter, 1000)
		s.ArmFaults(plan)
		if err := c.Setshares(GroupLimits{CPUShares: 2, FrameQuota: -1, MemberCap: -1}); errors.Is(err, EINTR) {
			sawSet = true
		}
		if _, err := c.Getusage(); errors.Is(err, EINTR) {
			sawGet = true
		}
		s.ArmFaults(nil)
		// The injected failure happened before the body: nothing was applied.
		u, err := c.Getusage()
		if err != nil {
			t.Fatalf("getusage after disarm: %v", err)
		}
		if u.CPUShares != 1 {
			t.Errorf("shares = %d after injected setshares, want untouched default 1", u.CPUShares)
		}
	})
	waitIdle(t, s)
	if !sawSet || !sawGet {
		t.Errorf("injected EINTR not surfaced: setshares=%v getusage=%v", sawSet, sawGet)
	}
}

// The frame-quota errno contract: a group that exhausts its quota on pages
// that cannot be reclaimed (non-zero data) sees the fault surface as
// ENOMEM — classified through the FaultError chain — and never as a bare
// EFAULT; and the quota accountant never lets residency exceed the cap.
func TestFrameQuotaENOMEMContract(t *testing.T) {
	const quota = 8
	s := NewSystem(testConfig())
	s.Start("leader", func(c *Context) {
		c.Sproc("m", func(*Context, int64) {}, proc.PRSALL, 0)
		c.Wait()
		if err := c.Setshares(GroupLimits{CPUShares: -1, FrameQuota: quota, MemberCap: -1}); err != nil {
			t.Fatalf("setshares: %v", err)
		}
		c.Signal(proc.SIGSEGV, func(int) {})
		base, err := c.Mmap(4 * quota)
		if err != nil {
			t.Fatalf("mmap: %v", err)
		}
		// Phase 1 — reads only. Every fill is an all-zero frame, so each
		// over-quota fault can reclaim an older zero page and proceed:
		// the group degrades (refault + rezero) instead of failing.
		reads := 0
		for p := 0; p < 4*quota; p++ {
			if _, err := c.Load32(base + hw.VAddr(p*hw.PageSize)); err == nil {
				reads++
			}
		}
		u, err := c.Getusage()
		if err != nil {
			t.Fatalf("getusage: %v", err)
		}
		if reads < 3*quota {
			t.Errorf("only %d/%d zero-page reads survived the quota", reads, 4*quota)
		}
		if u.QuotaHits == 0 || u.QuotaReclaims == 0 || u.ReclaimedZeros == 0 {
			t.Errorf("after read stream: QuotaHits=%d QuotaReclaims=%d ReclaimedZeros=%d, want all > 0",
				u.QuotaHits, u.QuotaReclaims, u.ReclaimedZeros)
		}

		// Phase 2 — writes. Dirty pages are unreclaimable, so once the
		// quota is full of them the reclaim pass runs dry and the fault
		// must surface as ENOMEM (never EFAULT).
		sawENOMEM := false
		for p := 0; p < 4*quota; p++ {
			err := c.Store32(base+hw.VAddr(p*hw.PageSize), 0xbeef)
			if err == nil {
				continue
			}
			if !errors.Is(err, hw.ErrNoQuota) {
				t.Fatalf("quota fault cause = %v, want hw.ErrNoQuota in chain", err)
			}
			if eno := ErrnoOf(err); eno != ENOMEM {
				t.Fatalf("quota fault errno = %v, want ENOMEM", eno)
			}
			sawENOMEM = true
		}
		if !sawENOMEM {
			t.Error("dirtied 4x the quota without a quota fault")
		}
		u, _ = c.Getusage()
		if u.FramesUsed > quota {
			t.Errorf("FramesUsed = %d, quota %d exceeded", u.FramesUsed, quota)
		}
	})
	waitIdle(t, s)
}
