package kernel

import (
	"errors"
	"fmt"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/ipc"
	"repro/internal/vm"
)

// Errno is the stable system-call error code of the gateway. The subsystem
// packages (fs, vm, ipc, proc) keep their own sentinel error values; the
// gateway normalizes whatever a syscall body returns into a *SysError
// wrapping the original error with one of these codes, so callers can test
// errors.Is(err, kernel.EBADF) — or errors.As for the full envelope —
// without knowing which layer produced the failure. The numbering follows
// the classic System V errno table.
type Errno int32

const (
	EOK          Errno = 0   // no error (exit spans of successful calls)
	EPERM        Errno = 1   // operation not permitted
	ENOENT       Errno = 2   // no such file or directory
	ESRCH        Errno = 3   // no such process
	EINTR        Errno = 4   // interrupted system call
	EBADF        Errno = 9   // bad file descriptor
	ECHILD       Errno = 10  // no child processes
	EAGAIN       Errno = 11  // resource temporarily unavailable
	ENOMEM       Errno = 12  // out of memory
	EACCES       Errno = 13  // permission denied
	EFAULT       Errno = 14  // bad address
	EEXIST       Errno = 17  // file exists
	ENOTDIR      Errno = 20  // not a directory
	EISDIR       Errno = 21  // is a directory
	EINVAL       Errno = 22  // invalid argument
	EMFILE       Errno = 24  // descriptor table full
	EFBIG        Errno = 27  // file too large (ulimit)
	EPIPE        Errno = 32  // broken pipe
	ENOTEMPTY    Errno = 93  // directory not empty
	EADDRINUSE   Errno = 125 // address already in use
	ECONNREFUSED Errno = 146 // connection refused
)

var errnoNames = map[Errno]string{
	EOK: "0", EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH",
	EINTR: "EINTR", EBADF: "EBADF", ECHILD: "ECHILD", EAGAIN: "EAGAIN",
	ENOMEM: "ENOMEM", EACCES: "EACCES", EFAULT: "EFAULT", EEXIST: "EEXIST",
	ENOTDIR: "ENOTDIR", EISDIR: "EISDIR", EINVAL: "EINVAL", EMFILE: "EMFILE",
	EFBIG: "EFBIG", EPIPE: "EPIPE", ENOTEMPTY: "ENOTEMPTY",
	EADDRINUSE: "EADDRINUSE", ECONNREFUSED: "ECONNREFUSED",
}

// String returns the symbolic name (EBADF) of the code.
func (e Errno) String() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", int32(e))
}

// Error makes Errno usable as an errors.Is target and as an error value.
func (e Errno) Error() string { return e.String() }

// SysError is the gateway's error envelope: the syscall that failed, the
// normalized code, and the subsystem's original error. It unwraps to the
// original value, so pre-gateway errors.Is(err, fs.ErrBadFd) tests keep
// working, and matches bare Errno targets, so errors.Is(err, kernel.EBADF)
// works too.
type SysError struct {
	Call string // syscall name from the descriptor table
	Num  Errno  // normalized code
	Err  error  // the subsystem's original error
}

func (e *SysError) Error() string {
	return fmt.Sprintf("%s: %v [%s]", e.Call, e.Err, e.Num)
}

// Unwrap exposes the wrapped subsystem error to errors.Is/As.
func (e *SysError) Unwrap() error { return e.Err }

// Is matches bare Errno targets against the normalized code.
func (e *SysError) Is(target error) bool {
	if num, ok := target.(Errno); ok {
		return e.Num == num
	}
	return false
}

// Errno returns the normalized code.
func (e *SysError) Errno() Errno { return e.Num }

// errnoOf maps the sentinel error values of every subsystem to their
// stable codes. Iterated with errors.Is, so wrapped chains classify too.
var errnoTable = []struct {
	err error
	num Errno
}{
	{fs.ErrNotExist, ENOENT}, {fs.ErrExist, EEXIST}, {fs.ErrNotDir, ENOTDIR},
	{fs.ErrIsDir, EISDIR}, {fs.ErrPerm, EACCES}, {fs.ErrNotEmpty, ENOTEMPTY},
	{fs.ErrFileLimit, EFBIG}, {fs.ErrBadFd, EBADF}, {fs.ErrInval, EINVAL},
	{fs.ErrPipe, EPIPE}, {fs.ErrAgain, EAGAIN},
	{ErrNoChildren, ECHILD}, {ErrInterrupt, EINTR}, {ErrNoProc, ESRCH},
	{ErrTooMany, EAGAIN}, {ErrPerm, EPERM}, {ErrBadBlockPid, EINVAL},
	{ErrCkptBusy, EAGAIN}, {ErrCkptQuiesce, EAGAIN},
	{ErrNoRegion, EINVAL}, {ErrNoMem, ENOMEM}, {hw.ErrNoMemory, ENOMEM},
	{hw.ErrNoQuota, ENOMEM},
	{vm.ErrTextWrite, EFAULT},
	{ipc.ErrNoEntry, EINVAL}, {ipc.ErrTooBig, EINVAL}, {ipc.ErrAgainIPC, EINTR},
	{ipc.ErrIntr, EINTR},
	{ipc.ErrExists, EEXIST}, {ipc.ErrAddrInUse, EADDRINUSE},
	{ipc.ErrNoListen, ECONNREFUSED}, {ipc.ErrClosed, EINVAL},
}

// ErrnoOf returns the stable code for any error a system call can return:
// the envelope's code when already normalized, the sentinel mapping
// otherwise, EFAULT for address faults, and EINVAL as the catch-all for
// free-form errors (bad prctl options, bad mmap sizes).
func ErrnoOf(err error) Errno {
	if err == nil {
		return EOK
	}
	var se *SysError
	if errors.As(err, &se) {
		return se.Num
	}
	var num Errno
	if errors.As(err, &num) {
		return num
	}
	for _, m := range errnoTable {
		if errors.Is(err, m.err) {
			return m.num
		}
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		return EFAULT
	}
	return EINVAL
}
