package kernel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/vm"
)

// TestTraceIntegration checks that the kernel event ring records the
// mechanisms of a known workload in the right quantities.
func TestTraceIntegration(t *testing.T) {
	cfg := testConfig()
	cfg.TraceEvents = 2048
	s := NewSystem(cfg)

	s.Start("traced", func(c *Context) {
		// One sproc, one fork, three fresh-page faults, one umask
		// propagation reconciled by the member, one shrink shootdown,
		// one caught signal.
		done := make(chan struct{})
		c.Sproc("member", func(cc *Context, _ int64) {
			defer close(done)
			for i := 0; i < 3; i++ {
				cc.Store32(vm.DataBase+hw.VAddr(i*4096+8192), 1)
			}
			cc.Umask(0o033)
		}, proc.PRSALL, 0)
		<-done
		c.Getpid() // reconcile -> EvSync
		c.Wait()

		c.Sbrk(4096)
		c.Sbrk(-4096)

		c.Signal(proc.SIGUSR1, func(int) {})
		c.Kill(c.Getpid(), proc.SIGUSR1)
		c.Getpid()

		pid, _ := c.Fork("kid", func(cc *Context) {})
		_ = pid
		c.Wait()
	})
	s.WaitIdle()

	ring := s.Machine.Trace
	if ring == nil {
		t.Fatal("trace ring not enabled")
	}
	if got := ring.CountKind(trace.EvCreate); got != 2 {
		t.Errorf("creates = %d, want 2 (sproc + fork)", got)
	}
	if got := ring.CountKind(trace.EvExit); got != 3 {
		t.Errorf("exits = %d, want 3", got)
	}
	if got := ring.CountKind(trace.EvFault); got < 3 {
		t.Errorf("faults = %d, want >= 3", got)
	}
	if got := ring.CountKind(trace.EvSync); got < 1 {
		t.Errorf("syncs = %d, want >= 1", got)
	}
	if got := ring.CountKind(trace.EvSignal); got < 1 {
		t.Errorf("signals = %d, want >= 1", got)
	}
	// Shootdowns: member exit, the shrink, the fork COW, the final exits.
	if got := ring.CountKind(trace.EvShootdown); got < 3 {
		t.Errorf("shootdowns = %d, want >= 3", got)
	}
	// Dispatch events exist and sequence numbers are strictly increasing.
	events, dropped := ring.Snapshot()
	if dropped != 0 {
		t.Errorf("dropped = %d", dropped)
	}
	if ring.CountKind(trace.EvDispatch) < 3 {
		t.Error("too few dispatches recorded")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatal("sequence not increasing")
		}
	}
}

// TestTraceDisabledByDefault: a default system must pay nothing and record
// nothing.
func TestTraceDisabledByDefault(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("p", func(c *Context) {
		c.Fork("kid", func(cc *Context) {})
		c.Wait()
	})
	waitIdle(t, s)
	if s.Machine.Trace != nil {
		t.Fatal("trace ring allocated without TraceEvents")
	}
}
