package kernel

import (
	"errors"
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/proc"
)

// This file implements the paper's §3 process-blocking calls —
// blockproc(2), unblockproc(2), setblockproccnt(2) — the kernel half of
// hybrid spin-then-block synchronization. Each process carries a
// saturating block count (internal/proc/blockcnt.go): unblockproc banks a
// wakeup, blockproc consumes one and sleeps while the count is negative.
// An unblock issued before the corresponding block is therefore never
// lost, which is what lets a user-level lock release a waiter it has only
// just observed registering.
//
// Divergence from IRIX: blockproc may only block the calling process
// (pid 0 or the caller's own pid). Suspending another running process
// asynchronously has no sensible meaning in this simulation, where a
// process is a goroutine that blocks only at its own kernel crossings;
// unblockproc and setblockproccnt address any process, kill(2)-style.

// ErrBadBlockPid rejects a blockproc target other than the caller.
var ErrBadBlockPid = errors.New("kernel: blockproc: only the caller may block itself") // EINVAL

// blockPermission applies the kill(2) permission rule: root may poke
// anyone, others only processes with their own uid.
func (c *Context) blockPermission(target *proc.Proc) error {
	c.P.Mu.Lock()
	uid := c.P.Uid
	c.P.Mu.Unlock()
	target.Mu.Lock()
	tuid := target.Uid
	target.Mu.Unlock()
	if uid != 0 && uid != tuid {
		return ErrPerm
	}
	return nil
}

// Blockproc decrements the caller's block count and, if it went negative,
// sleeps until banked unblocks bring it back to zero. pid must be 0 or
// the caller's own pid. A banked unblock-before-block returns immediately
// without sleeping; a deliverable signal breaks the sleep with EINTR
// (deliberately not restartable — like pause(2), EINTR is the contract).
func (c *Context) Blockproc(pid int) error {
	return invoke0(c, sysBlockproc, func() error {
		if pid != 0 && pid != c.P.PID {
			return ErrBadBlockPid
		}
		p := c.P
		if !p.BlockprocEnter() {
			return nil // a banked unblock paid for this block
		}
		c.S.blocks.Add(1)
		if pl := c.S.faults; pl.Armed(faultinject.SiteBlockSleep) {
			if hit, _ := pl.Decide(faultinject.SiteBlockSleep, uint32(p.PID)); hit {
				// Spurious wakeup: deposit a stale wake token. The sleep
				// loop re-checks the count and goes back down.
				pl.Note(faultinject.SiteBlockSleep, faultinject.FaultWakeup, uint32(p.PID))
				p.NotifyWake()
			}
		}
		if !p.BlockprocSleep("blockproc(2)") {
			return ErrInterrupt
		}
		return nil
	})
}

// Unblockproc banks one wakeup for pid, releasing it if it is (or is
// about to be) asleep in blockproc. Unblocking a process that has not yet
// blocked is the normal fast case: the count saturates at
// proc.BlockCntMax and the next blockproc consumes it.
func (c *Context) Unblockproc(pid int) error {
	return invoke0(c, sysUnblockproc, func() error {
		target, ok := c.S.Lookup(pid)
		if !ok {
			return ErrNoProc
		}
		if err := c.blockPermission(target); err != nil {
			return err
		}
		if target.BlockprocWake() {
			c.S.blockWakes.Add(1)
		} else {
			c.S.bankedWakes.Add(1)
		}
		return nil
	})
}

// Setblockproccnt sets pid's banked unblock count outright — the
// administrative reset IRIX provided for unwedging a group whose counts
// drifted. cnt must be in [0, proc.BlockCntMax]; a sleeping target is
// released (its count is no longer negative).
func (c *Context) Setblockproccnt(pid, cnt int) error {
	return invoke0(c, sysSetblockproccnt, func() error {
		if cnt < 0 || cnt > proc.BlockCntMax {
			return fmt.Errorf("kernel: setblockproccnt: count %d out of range [0,%d]", cnt, proc.BlockCntMax)
		}
		target, ok := c.S.Lookup(pid)
		if !ok {
			return ErrNoProc
		}
		if err := c.blockPermission(target); err != nil {
			return err
		}
		if target.SetBlockCnt(int32(cnt)) {
			c.S.blockWakes.Add(1)
		}
		return nil
	})
}

// NoteSpinToBlock counts one spin-to-block conversion: a uspin bounded
// spin that gave up and fell back to blockproc. Surface for Stats().
func (c *Context) NoteSpinToBlock() { c.S.spinBlocks.Add(1) }
