package kernel

import (
	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/ipc"
	"repro/internal/proc"
	"repro/internal/vm"
)

// Pipe creates a pipe, returning the read and write descriptors. With
// shared descriptors both ends appear in every sharing member's table.
func (c *Context) Pipe() (int, int, error) {
	fds, err := invoke(c, sysPipe, func() ([2]int, error) {
		p := ipc.NewPipe()
		p.FI = c.S.faults
		p.PS = c.S.pollStats
		rs, ws := p.Ends()
		ri := c.S.FS.MkInode(fs.ModeFIFO|0o600, 0, 0)
		wi := c.S.FS.MkInode(fs.ModeFIFO|0o600, 0, 0)
		rf := fs.NewFile(ri.Hold(), rs, fs.ORead)
		wf := fs.NewFile(wi.Hold(), ws, fs.OWrite)
		rfd, err := c.installFd(rf)
		if err != nil {
			rf.Release()
			wf.Release()
			return [2]int{-1, -1}, err
		}
		wfd, err := c.installFd(wf)
		if err != nil {
			c.closeQuiet(rfd)
			wf.Release()
			return [2]int{-1, -1}, err
		}
		return [2]int{rfd, wfd}, nil
	})
	return fds[0], fds[1], err
}

// closeQuiet releases a descriptor ignoring errors (error-path cleanup).
func (c *Context) closeQuiet(fd int) {
	c.P.Mu.Lock()
	f, err := c.P.ClearFd(fd)
	c.P.Mu.Unlock()
	if err == nil {
		f.Release()
	}
}

// Msgget returns the message queue id for key, creating the queue if
// needed (key 0: private queue).
func (c *Context) Msgget(key int) int {
	return invoke1(c, sysMsgget, func() int {
		return c.S.IPC.Msgget(key)
	})
}

// Msgsnd sends n bytes at va as a message of the given type.
func (c *Context) Msgsnd(id int, typ int64, va hw.VAddr, n int) error {
	return invoke0(c, sysMsgsnd, func() error {
		q, err := c.S.IPC.Msgq(id)
		if err != nil {
			return err
		}
		buf := make([]byte, n)
		if err := c.LoadBytes(va, buf); err != nil {
			return err
		}
		c.charge(int64(n/64) + 1) // kernel copy
		return q.Send(c.P, ipc.Msg{Type: typ, Data: buf})
	})
}

// msgrcvRet carries msgrcv's two results through the gateway.
type msgrcvRet struct {
	n   int
	typ int64
}

// Msgrcv receives the next message of the given type (0: any) into va,
// returning its length and type.
func (c *Context) Msgrcv(id int, typ int64, va hw.VAddr, max int) (int, int64, error) {
	r, err := invoke(c, sysMsgrcv, func() (msgrcvRet, error) {
		q, err := c.S.IPC.Msgq(id)
		if err != nil {
			return msgrcvRet{n: -1}, err
		}
		m, err := q.Recv(c.P, typ)
		if err != nil {
			return msgrcvRet{n: -1}, err
		}
		if len(m.Data) > max {
			m.Data = m.Data[:max]
		}
		c.charge(int64(len(m.Data)/64) + 1) // kernel copy
		if err := c.StoreBytes(va, m.Data); err != nil {
			return msgrcvRet{n: -1}, err
		}
		return msgrcvRet{n: len(m.Data), typ: m.Type}, nil
	})
	return r.n, r.typ, err
}

// Semget returns the id of the n-semaphore set for key.
func (c *Context) Semget(key, n int) int {
	return invoke1(c, sysSemget, func() int {
		return c.S.IPC.Semget(key, n)
	})
}

// Semop applies delta to semaphore idx of set id, sleeping as required —
// the kernel-interaction synchronization cost of the System V model.
func (c *Context) Semop(id, idx, delta int) error {
	return invoke0(c, sysSemop, func() error {
		s, err := c.S.IPC.Sem(id)
		if err != nil {
			return err
		}
		return s.Op(c.P, idx, delta)
	})
}

// Semval returns the value of semaphore idx of set id.
func (c *Context) Semval(id, idx int) (int, error) {
	return invoke(c, sysSemval, func() (int, error) {
		s, err := c.S.IPC.Sem(id)
		if err != nil {
			return -1, err
		}
		return s.Val(idx), nil
	})
}

// Shmget returns the id of the shared-memory segment for key, creating a
// segment of the given size if needed.
func (c *Context) Shmget(key, pages int) int {
	return invoke1(c, sysShmget, func() int {
		return c.S.IPC.Shmget(key, pages, func(n int) *vm.Region {
			return vm.NewRegion(c.S.Machine.Mem, vm.RShm, n)
		})
	})
}

// Shmat attaches segment id into the caller's address space and returns
// the attach address. For a VM-sharing member the attachment lands on the
// shared list, immediately visible to the whole group.
func (c *Context) Shmat(id int) (hw.VAddr, error) {
	return invoke(c, sysShmat, func() (hw.VAddr, error) {
		seg, err := c.S.IPC.Shm(id)
		if err != nil {
			return 0, err
		}
		seg.Reg.Attach()
		seg.Att.Add(1)
		p := c.P
		if sa := groupOf(p); sa != nil && p.ShMask()&proc.PRSADDR != 0 {
			return sa.AttachAnon(p, seg.Reg), nil
		}
		base := p.AllocShmRange(seg.Reg.Pages())
		p.Private = vm.Insert(p.Private, &vm.PRegion{Reg: seg.Reg, Base: base})
		return base, nil
	})
}

// Shmdt detaches the segment mapped at va. The segment itself survives in
// the registry until removed. Munmap performs the full detach protocol
// (update lock + shootdown for shared attachments); the registry's own
// region reference keeps the frames alive. Pure delegation: the call
// dispatches (and is accounted) as munmap.
func (c *Context) Shmdt(va hw.VAddr) error {
	return c.Munmap(va)
}

// ShmRemove deletes a segment from the registry (shmctl IPC_RMID).
func (c *Context) ShmRemove(id int) error {
	return invoke0(c, sysShmRemove, func() error {
		return c.S.IPC.ShmRemove(id)
	})
}

// NetListen binds a stream listener to name and installs it in the
// descriptor table — a listening socket is a waitable descriptor like any
// other stream, so it can be polled alongside connections. Its open flags
// are zero: read(2)/write(2) on a listening socket reject with EBADF.
func (c *Context) NetListen(name string) (int, error) {
	return invoke(c, sysNetListen, func() (int, error) {
		l, err := c.S.Net.Listen(name)
		if err != nil {
			return -1, err
		}
		ino := c.S.FS.MkInode(fs.ModeSock|0o600, 0, 0)
		f := fs.NewFile(ino.Hold(), l, 0)
		fd, err := c.installFd(f)
		if err != nil {
			f.Release()
			return -1, err
		}
		return fd, nil
	})
}

// NetAccept accepts a connection on listening descriptor lfd, returning a
// descriptor for the server side of the stream. With FdNonblock set on
// lfd an empty backlog returns EAGAIN instead of sleeping — the poll-
// driven accept loop's mode.
func (c *Context) NetAccept(lfd int) (int, error) {
	return invoke(c, sysNetAccept, func() (int, error) {
		f, nb, err := c.fdFileNb(lfd)
		if err != nil {
			return -1, err
		}
		l, ok := f.Stream.(*ipc.Listener)
		if !ok {
			return -1, fs.ErrBadFd
		}
		s, err := l.Accept(c.P, nb)
		if err != nil {
			return -1, err
		}
		return c.streamFd(s)
	})
}

// NetConnect connects to the listener at name, returning a descriptor for
// the client side of the stream.
func (c *Context) NetConnect(name string) (int, error) {
	return invoke(c, sysNetConnect, func() (int, error) {
		s, err := c.S.Net.Connect(c.P, name)
		if err != nil {
			return -1, err
		}
		return c.streamFd(s)
	})
}

// streamFd wraps a duplex stream in an open file and installs it.
func (c *Context) streamFd(s fs.Stream) (int, error) {
	ino := c.S.FS.MkInode(fs.ModeSock|0o600, 0, 0)
	f := fs.NewFile(ino.Hold(), s, fs.ORead|fs.OWrite)
	fd, err := c.installFd(f)
	if err != nil {
		f.Release()
		return -1, err
	}
	return fd, nil
}
