package kernel

import (
	"errors"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/proc"
	"repro/internal/trace"
)

// This file is the system-call gateway: the one path every syscall in
// syscalls_{fs,vm,ipc,proc}.go crosses. A syscall body never touches the
// trap machinery itself — it hands the gateway its descriptor and a
// closure, and the gateway uniformly performs, in order:
//
//   entry:  charge the trap cost (plus the descriptor's cost hint),
//           run the §6.3 single-test share-group synchronization check,
//           record the trace.EvSyscallEnter span open;
//   body:   the actual semantics;
//   exit:   normalize the error into a *SysError carrying a stable Errno,
//           charge the return-to-user cost, accumulate per-CPU and
//           per-process syscall counts and simcyc latency, record the
//           trace.EvSyscallExit span close carrying the errno, and deliver
//           pending signals.
//
// The exit half runs on panic unwinds too (exit(2), exec(2), fatal
// signals), so every EvSyscallEnter has a matching EvSyscallExit even for
// calls that never return.

// sysAcct is one CPU's syscall accounting: call counts and simcyc latency
// accumulators indexed by syscall number. One per CPU plus an overflow slot
// mirrors the trace ring's sharding, so the hot path never funnels every
// processor through shared counters.
type sysAcct struct {
	count  [NSys]atomic.Int64
	simcyc [NSys]atomic.Int64
	_      [64]byte // keep neighbouring CPUs' accumulators apart
}

// Degradation policy bounds: how often the gateway quietly absorbs a
// transient failure before letting it surface. Both bounds exist so an
// adversarial fault plan (or a genuinely wedged resource) cannot spin a
// syscall forever.
const (
	maxRestarts  = 16 // EINTR auto-restarts per call (SA_RESTART policy)
	maxRetries   = 4  // EAGAIN retries per call
	retryBackoff = 64 // base backoff charge, doubled per retry
)

// errInjected is the underlying error of every gateway-injected fault.
var errInjected = errors.New("kernel: injected fault")

// invoke dispatches one system call through the gateway, applying the
// descriptor's degradation policy around the body:
//
//   - an armed fault plan may replace the body with an injected
//     EINTR/EAGAIN/ENOMEM failure (only errnos the descriptor permits);
//   - EINTR from a restartable call (sfRestart) delivers the pending
//     signal — a caught handler runs, a fatal default unwinds — and then
//     transparently restarts the body, as SA_RESTART would;
//   - EAGAIN from a retryable call (sfRetry) re-runs the body after an
//     escalating backoff charge.
func invoke[T any](c *Context, d *sysDesc, body func() (T, error)) (T, error) {
	start := c.enterSys(d)
	var eno Errno
	completed := false
	defer func() { c.exitSys(d, start, eno, completed) }()

	var ret T
	var err error
	restarts, retries := 0, 0
	for {
		if ieno := c.injectEnter(d); ieno != EOK {
			var zero T
			ret, err = zero, &SysError{Call: d.name, Num: ieno, Err: errInjected}
		} else {
			ret, err = body()
		}
		if err == nil {
			break
		}
		switch ErrnoOf(err) {
		case EINTR:
			if d.flags&sfRestart != 0 && restarts < maxRestarts {
				restarts++
				c.S.restarts.Add(1)
				// The signal that broke the wait is consumed here: its
				// handler runs on this process's context, or its fatal
				// default unwinds the call. Then the body re-runs as if
				// never interrupted.
				c.DeliverSignals()
				c.charge(c.S.Machine.Cost.SyscallEntry)
				continue
			}
		case EAGAIN:
			if d.flags&sfRetry != 0 && retries < maxRetries {
				retries++
				c.S.retries.Add(1)
				c.charge(retryBackoff << retries)
				continue
			}
		}
		break
	}
	if err != nil {
		eno = ErrnoOf(err)
		if _, ok := err.(*SysError); !ok {
			err = &SysError{Call: d.name, Num: eno, Err: err}
		}
	}
	completed = true
	return ret, err
}

// injectEnter asks the fault plan whether this syscall crossing should
// fail before its body runs, returning the injected errno or EOK. Calls
// whose descriptor permits no injection never consume a decision draw, so
// arming the plan does not perturb the injection sequence of the calls
// that matter.
func (c *Context) injectEnter(d *sysDesc) Errno {
	pl := c.S.faults
	if pl == nil || d.flags&(sfInjEINTR|sfInjEAGAIN|sfInjENOMEM) == 0 {
		return EOK
	}
	hit, draw := pl.Decide(faultinject.SiteSyscallEnter, uint32(d.num))
	if !hit {
		return EOK
	}
	var permitted []faultinject.Fault
	if d.flags&sfInjEINTR != 0 {
		permitted = append(permitted, faultinject.FaultEINTR)
	}
	if d.flags&sfInjEAGAIN != 0 {
		permitted = append(permitted, faultinject.FaultEAGAIN)
	}
	if d.flags&sfInjENOMEM != 0 {
		permitted = append(permitted, faultinject.FaultENOMEM)
	}
	f := permitted[int(draw>>32)%len(permitted)]
	pl.Note(faultinject.SiteSyscallEnter, f, uint32(d.num))
	switch f {
	case faultinject.FaultEINTR:
		return EINTR
	case faultinject.FaultEAGAIN:
		return EAGAIN
	default:
		return ENOMEM
	}
}

// invoke0 dispatches a syscall with no result value.
func invoke0(c *Context, d *sysDesc, body func() error) error {
	_, err := invoke(c, d, func() (struct{}, error) { return struct{}{}, body() })
	return err
}

// invoke1 dispatches a syscall that cannot fail.
func invoke1[T any](c *Context, d *sysDesc, body func() T) T {
	ret, _ := invoke(c, d, func() (T, error) { return body(), nil })
	return ret
}

// enterSys is the trap into the kernel: charge the entry cost and perform
// the single-test synchronization check of paper §6.3, then open the trace
// span. It returns the process-cycle snapshot the latency accounting closes
// against.
func (c *Context) enterSys(d *sysDesc) int64 {
	// Checkpoint safepoint: a member with a pending freeze gate parks here,
	// before the body can acquire any kernel lock or mutate kernel state
	// the checkpoint captures (fd tables, the shared region list).
	if c.P.FreezePending() {
		c.freezePark()
	}
	start := c.P.Cycles.Load()
	c.charge(c.S.Machine.Cost.SyscallEntry + d.cost)
	if c.P.Flag.Load()&proc.FSyncAny != 0 {
		if sa := c.P.ShareGrp(); sa != nil {
			c.cpu().Charge(c.S.Machine.Cost.AttrSync)
			c.S.Machine.Trace.Record(trace.EvSync, int32(c.P.PID), c.P.CPU.Load(), uint64(c.P.Flag.Load()), 0)
			sa.SyncEntry(c.P)
		}
	}
	c.S.Machine.Trace.Record(trace.EvSyscallEnter, int32(c.P.PID), c.P.CPU.Load(), uint64(d.num), 0)
	return start
}

// exitSys is the return-to-user path: charge the exit cost, account the
// call, close the trace span, and — only when the body completed normally —
// deliver pending signals. On a panic unwind (exit, exec, fatal signal) the
// span closes with errno 0 and no signal delivery; the unwind carries its
// own disposition.
func (c *Context) exitSys(d *sysDesc, start int64, eno Errno, completed bool) {
	exitCost := c.S.Machine.Cost.SyscallExit
	c.cpu().Charge(exitCost)
	c.S.sysAccount(d.num, c.P, c.P.Cycles.Load()-start+exitCost)
	c.S.Machine.Trace.Record(trace.EvSyscallExit, int32(c.P.PID), c.P.CPU.Load(), uint64(d.num), uint32(eno))
	if completed {
		c.DeliverSignals()
	}
}

// sysAccount charges one completed syscall to the CPU it finished on and to
// the calling process's own profile.
func (s *System) sysAccount(n Sysno, p *proc.Proc, cycles int64) {
	i := int(p.CPU.Load())
	if i < 0 || i >= len(s.sysacct)-1 {
		i = len(s.sysacct) - 1
	}
	a := s.sysacct[i]
	a.count[n].Add(1)
	a.simcyc[n].Add(cycles)
	if pc := p.SysCount; pc != nil {
		pc[n].Add(1)
	}
}

// SyscallCountsByCPU returns the per-CPU call-count matrix: row i is CPU
// i's counts indexed by syscall number; the last row is the overflow slot
// for calls finishing with no CPU context. The conservation stress test
// sums this matrix against the driver's own issue counts.
func (s *System) SyscallCountsByCPU() [][]int64 {
	out := make([][]int64, len(s.sysacct))
	for i, a := range s.sysacct {
		row := make([]int64, NSys)
		for n := range row {
			row[n] = a.count[n].Load()
		}
		out[i] = row
	}
	return out
}

// ProcSyscalls returns a process's own per-syscall call counts (nonzero
// entries only, ordered by number) — the per-member profile sgtop
// aggregates over a share group.
func ProcSyscalls(p *proc.Proc) []SyscallStat {
	if p.SysCount == nil {
		return nil
	}
	var out []SyscallStat
	for n := Sysno(0); n < NSys; n++ {
		if c := p.SysCount[n].Load(); c > 0 {
			out = append(out, SyscallStat{Num: n, Name: SysName(n), Count: c})
		}
	}
	return out
}
