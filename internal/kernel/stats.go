package kernel

import (
	"repro/internal/core"
	"repro/internal/hw"
)

// Stats is a point-in-time snapshot of the kernel's hot-path counters: the
// per-CPU dispatch, frame-cache, and trace-ring instrumentation added for
// the MP-scalability work. All counters are cumulative since boot.
type Stats struct {
	// Scheduler.
	Dispatches  int64 // processes placed on a CPU
	Preemptions int64 // slice-expiry CPU handoffs
	StickyHolds int64 // preemptions suppressed by gang stickiness
	LocalPicks  int64 // dispatches served from the CPU's own run queue
	Steals      int64 // dispatches taken from another CPU's run queue
	StealScans  int64 // slow-path scans over all run queues
	RunqLen     int   // ready, undispatched processes right now
	IdleCPUs    int   // processors with nothing to run right now

	// NUMA locality (all zero on a flat machine).
	NUMANodes    int               // locality domains
	LocalSteals  int64             // steals from a queue on the thief's own node
	RemoteSteals int64             // steals that crossed a node boundary
	LocalTakes   int64             // frames refilled from the home-node pool
	RemoteTakes  int64             // frames refilled from a remote node's pool
	RemoteFills  int64             // page fills backed by a remote-node frame
	RemoteIPIs   int64             // shootdown IPIs that crossed a node boundary
	NodePools    []hw.NodePoolStat // per-node frame-pool occupancy right now

	// Frame allocator.
	FrameAllocs    int64 // frames handed out
	FrameFrees     int64 // frames returned (refcount reached zero)
	FrameCopies    int64 // copy-on-write frame copies
	CacheHits      int64 // allocations served by a per-CPU frame cache
	CacheRefills   int64 // batch refills of a per-CPU cache from the pool
	CacheDrains    int64 // batch give-backs from a cache to the pool
	CacheScavenges int64 // frames reclaimed from other CPUs' caches
	PoolAllocs     int64 // allocations that fell through to the global pool
	FramesInUse    int   // referenced frames right now
	FramesCached   int   // frames parked in per-CPU caches right now

	// Fault fast path (lock-free resident fills, pregion lookup caches,
	// batched shootdowns). VMCacheHits/Misses are summed over the live
	// share groups; a torn-down group's counts leave the totals.
	FastFills       int64 // resident faults resolved with zero lock acquisitions
	SlowFills       int64 // faults that took a fill stripe (zero fill, COW, upgrade)
	VMCacheHits     int64 // faults resolved from a member's last-hit pregion cache
	VMCacheMisses   int64 // faults that scanned the shared pregion list
	PageShootdowns  int64 // TLB shootdowns served page-by-page (small ranges)
	SpaceShootdowns int64 // TLB shootdowns that flushed a whole address space

	// Lazy creation (DESIGN.md §16). Conservation once a creation storm
	// drains: LazyDups == LazyBreaks + LazyDrops.
	LazyDups       int64 // O(1) region clones created at spawn
	LazyBreaks     int64 // clones materialized by a first touch
	LazyDrops      int64 // clones that exited untouched (walk never happened)
	LazyBreakPages int64 // page-table slots walked by materializations
	SpawnReserved  int64 // frames prepaid to sproc children (SpawnReserve)

	// Trace ring.
	TraceEvents  int      // events currently buffered across all shards
	TraceDropped uint64   // events lost to ring wrap-around, total
	TraceDrops   []uint64 // per-shard drops: index = CPU, last = overflow shard

	// Syscall gateway: per-syscall counts and in-kernel simcyc latency,
	// summed over the per-CPU accumulators. Nonzero entries only, ordered
	// by syscall number.
	Syscalls []SyscallStat

	// Fault injection and degradation. Zero throughout when no plan is
	// armed; FaultSites has one row per injection site otherwise.
	FaultChecks     int64           // injection decisions taken
	FaultsInjected  int64           // faults actually injected
	FaultSites      []FaultSiteStat // per-site breakdown
	FrameReclaims   int64           // cache-drain-and-reclaim passes
	ReclaimedFrames int64           // frames repatriated to the pool by reclaims
	SyscallRestarts int64           // EINTR auto-restarts (SA_RESTART policy)
	SyscallRetries  int64           // EAGAIN retries with backoff

	// Blockproc sleep-wake subsystem (paper §3 blockproc/unblockproc).
	ProcBlocks   int64 // blockproc(2) calls that actually slept
	ProcWakes    int64 // unblockproc/setblockproccnt calls that released a sleeper
	BankedWakes  int64 // unblocks banked with no sleeper to release (wasted wakes)
	SpinToBlocks int64 // uspin bounded spins converted to blockproc sleeps

	// Readiness layer (poll(2) and the stream event queues).
	PollSleeps        int64 // poll(2) waits that actually slept
	ReadyTransitions  int64 // readiness transitions published by streams
	ReadySleeperWakes int64 // blocked stream operations released by transitions
	ReadyPollerWakes  int64 // poll registrations notified by transitions

	// Fair-share scheduling and group resource control. FairShareOn
	// latches once any group is given a CPU entitlement; until then
	// dispatch is share-blind and the usage counters merely accumulate.
	// Groups has one delivery record per live share group (a torn-down
	// group's row leaves the snapshot, like the VM cache counts above).
	FairShareOn  bool         // fair-share dispatch armed (setshares called)
	FairPasses   int64        // dispatch decisions taken with banding active
	FlushedCyc   int64        // quantum-boundary cycles flushed into usage accounts
	UngroupedCyc int64        // flushed cycles with no group to charge
	Groups       []GroupUsage // per-group entitlement/delivery records

	// Live checkpoint/restore (syscalls_ckpt.go, DESIGN.md §17).
	Ckpts          int64 // checkpoints completed
	CkptPasses     int64 // pre-copy passes executed
	CkptPrePages   int64 // pages copied live by pre-copy passes
	CkptSTWPages   int64 // pages copied inside stop-the-world windows
	CkptSTWCycles  int64 // simulated cycles initiators spent stopped
	CkptImageBytes int64 // encoded image bytes produced
	Restores       int64 // groups rebuilt from an image

	// Spawn-reservation flow, summed over live groups (hw.FrameAcct). At
	// quiescence the conservation law holds:
	// ResvReserved + ResvRefunds == ResvConsumed + ResvReleased.
	ResvReserved int64 // frames prepaid by batched reservations
	ResvConsumed int64 // prepaid frames taken by page fills
	ResvRefunds  int64 // consumed frames returned by failed allocations
	ResvReleased int64 // frames returned to the group account
}

// FaultSiteStat is one injection site's counters.
type FaultSiteStat struct {
	Site     string // site name ("sysenter", "framealloc", ...)
	Checks   int64  // decisions taken at the site
	Injected int64  // faults injected at the site
}

// SyscallStat is one syscall's accounting line: how often it was called
// and the simulated cycles spent inside the kernel across those calls
// (entry cost, body, exit cost — everything between the gateway's trap and
// return).
type SyscallStat struct {
	Num    Sysno
	Name   string
	Count  int64
	SimCyc int64
}

// CyclesPerCall returns the mean in-kernel simcyc latency of the call.
func (st SyscallStat) CyclesPerCall() float64 {
	if st.Count == 0 {
		return 0
	}
	return float64(st.SimCyc) / float64(st.Count)
}

// Stats snapshots the hot-path counters.
func (s *System) Stats() Stats {
	mem := s.Machine.Mem
	st := Stats{
		Dispatches:  s.Sched.Dispatches.Load(),
		Preemptions: s.Sched.Preemptions.Load(),
		StickyHolds: s.Sched.StickyHolds.Load(),
		LocalPicks:  s.Sched.LocalPicks.Load(),
		Steals:      s.Sched.Steals.Load(),
		StealScans:  s.Sched.StealScans.Load(),
		RunqLen:     s.Sched.RunqLen(),
		IdleCPUs:    s.Sched.IdleCPUs(),

		FrameAllocs:    mem.Allocs.Load(),
		FrameFrees:     mem.Frees.Load(),
		FrameCopies:    mem.Copies.Load(),
		CacheHits:      mem.CacheHits.Load(),
		CacheRefills:   mem.Refills.Load(),
		CacheDrains:    mem.Drains.Load(),
		CacheScavenges: mem.Scavenges.Load(),
		PoolAllocs:     mem.PoolAllocs.Load(),
		FramesInUse:    mem.InUse(),
		FramesCached:   mem.CachedFrames(),

		FastFills:       mem.FastFills.Load(),
		SlowFills:       mem.SlowFills.Load(),
		PageShootdowns:  s.Machine.PageShootdowns.Load(),
		SpaceShootdowns: s.Machine.SpaceShootdowns.Load(),

		LazyDups:       mem.LazyDups.Load(),
		LazyBreaks:     mem.LazyBreaks.Load(),
		LazyDrops:      mem.LazyDrops.Load(),
		LazyBreakPages: mem.LazyBreakPages.Load(),
		SpawnReserved:  s.spawnReserved.Load(),
	}
	if !s.Machine.Topo.Flat() {
		st.NUMANodes = s.Machine.Topo.Nodes
		st.LocalSteals = s.Sched.LocalSteals.Load()
		st.RemoteSteals = s.Sched.RemoteSteals.Load()
		st.LocalTakes = mem.LocalTakes.Load()
		st.RemoteTakes = mem.RemoteTakes.Load()
		st.RemoteFills = s.Machine.RemoteFills.Load()
		st.RemoteIPIs = s.Machine.RemoteIPIs.Load()
		st.NodePools = mem.NodeOccupancy()
	}
	st.FairShareOn = s.Sched.FairActive()
	st.FairPasses = s.Sched.FairPasses.Load()
	st.FlushedCyc = s.Sched.FlushedCyc.Load()
	st.UngroupedCyc = s.Sched.UngroupedCyc.Load()
	groups := map[*core.ShAddr]bool{}
	for _, p := range s.Procs() {
		if sa := groupOf(p); sa != nil && !groups[sa] {
			groups[sa] = true
			st.VMCacheHits += sa.CacheHits.Load()
			st.VMCacheMisses += sa.CacheMisses.Load()
			st.Groups = append(st.Groups, s.groupUsage(sa))
			acct := sa.FrameAcct()
			st.ResvReserved += acct.ResvReserved.Load()
			st.ResvConsumed += acct.ResvConsumed.Load()
			st.ResvRefunds += acct.ResvRefunds.Load()
			st.ResvReleased += acct.ResvReleased.Load()
		}
	}
	if r := s.Machine.Trace; r != nil {
		st.TraceEvents = r.Len()
		st.TraceDrops = r.DropsByCPU()
		for _, d := range st.TraceDrops {
			st.TraceDropped += d
		}
	}
	for n := Sysno(0); n < NSys; n++ {
		var count, cyc int64
		for _, a := range s.sysacct {
			count += a.count[n].Load()
			cyc += a.simcyc[n].Load()
		}
		if count > 0 {
			st.Syscalls = append(st.Syscalls, SyscallStat{Num: n, Name: SysName(n), Count: count, SimCyc: cyc})
		}
	}
	st.FrameReclaims = mem.Reclaims.Load()
	st.ReclaimedFrames = mem.ReclaimedFrames.Load()
	st.SyscallRestarts = s.restarts.Load()
	st.SyscallRetries = s.retries.Load()
	st.ProcBlocks = s.blocks.Load()
	st.ProcWakes = s.blockWakes.Load()
	st.BankedWakes = s.bankedWakes.Load()
	st.SpinToBlocks = s.spinBlocks.Load()
	st.Ckpts = s.ckpts.Load()
	st.CkptPasses = s.ckptPasses.Load()
	st.CkptPrePages = s.ckptPrePages.Load()
	st.CkptSTWPages = s.ckptSTWPages.Load()
	st.CkptSTWCycles = s.ckptSTWCycles.Load()
	st.CkptImageBytes = s.ckptImageBytes.Load()
	st.Restores = s.restores.Load()
	st.PollSleeps = s.pollSleeps.Load()
	st.ReadyTransitions = s.pollStats.Transitions.Load()
	st.ReadySleeperWakes = s.pollStats.SleeperWakes.Load()
	st.ReadyPollerWakes = s.pollStats.PollerWakes.Load()
	if pl := s.faults; pl != nil {
		st.FaultChecks = pl.TotalChecks()
		st.FaultsInjected = pl.TotalInjected()
		for _, row := range pl.Stats() {
			st.FaultSites = append(st.FaultSites, FaultSiteStat{
				Site: row.Name, Checks: row.Checks, Injected: row.Injected,
			})
		}
	}
	return st
}
