package kernel

import (
	"sort"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/proc"
)

// propagated charges the eager-push ablation's inline cost: the updater
// pays one attribute-sync per sharing member at update time. The deferred
// design charges each member at its own next kernel entry instead.
func (c *Context) propagated(sa interface{ Size() int }) {
	if c.S.cfg.EagerAttrSync {
		c.charge(int64(sa.Size()-1) * c.S.Machine.Cost.AttrSync)
	}
}

// cred snapshots the identity and filter state filesystem operations run
// under. Caller must not hold P.Mu.
func (c *Context) cred() fs.Cred {
	p := c.P
	p.Mu.Lock()
	defer p.Mu.Unlock()
	return fs.Cred{Uid: p.Uid, Gid: p.Gid, Umask: p.Umask, Cwd: p.Cdir, Root: p.Rdir}
}

// installFd places f in the caller's descriptor table and, when the caller
// shares descriptors with its group, publishes the new slot. On V.3 the
// descriptor table lives in the user area; the share block's shadow copy
// (s_ofile) is what other members synchronize from (paper §6.3).
func (c *Context) installFd(f *fs.File) (int, error) {
	p := c.P
	if p.Shares(proc.PRSFDS) {
		sa := groupOf(p)
		sa.BeginFdUpdate(p)
		p.Mu.Lock()
		fd, err := p.AllocFd(f)
		p.Mu.Unlock()
		if err != nil {
			sa.FupdSema.V()
			return -1, err
		}
		sa.EndFdUpdate(p, fd)
		c.propagated(sa)
		return fd, nil
	}
	p.Mu.Lock()
	defer p.Mu.Unlock()
	return p.AllocFd(f)
}

// Open opens (or with fs.OCreat creates) the file at path, returning a
// descriptor. When the caller shares descriptors, every sharing member
// sees the new file as immediately available (paper §4).
func (c *Context) Open(path string, flags int, mode uint16) (int, error) {
	return invoke(c, sysOpen, func() (int, error) {
		f, err := c.S.FS.Open(c.cred(), path, flags, mode)
		if err != nil {
			return -1, err
		}
		fd, err := c.installFd(f)
		if err != nil {
			f.Release()
			return -1, err
		}
		return fd, nil
	})
}

// Creat is open(path, O_WRONLY|O_CREAT|O_TRUNC, mode). It is pure
// delegation: the call dispatches (and is accounted) as open.
func (c *Context) Creat(path string, mode uint16) (int, error) {
	return c.Open(path, fs.OWrite|fs.OCreat|fs.OTrunc, mode)
}

// Close releases descriptor fd, propagating the closure to sharing
// members.
func (c *Context) Close(fd int) error {
	return invoke0(c, sysClose, func() error {
		p := c.P
		if p.Shares(proc.PRSFDS) {
			sa := groupOf(p)
			sa.BeginFdUpdate(p)
			p.Mu.Lock()
			f, err := p.ClearFd(fd)
			p.Mu.Unlock()
			if err != nil {
				sa.FupdSema.V()
				return err
			}
			f.Release()
			sa.EndFdUpdate(p, fd)
			return nil
		}
		p.Mu.Lock()
		f, err := p.ClearFd(fd)
		p.Mu.Unlock()
		if err != nil {
			return err
		}
		f.Release()
		return nil
	})
}

// Dup duplicates fd into the lowest free slot; both descriptors share one
// open-file entry and offset.
func (c *Context) Dup(fd int) (int, error) {
	return invoke(c, sysDup, func() (int, error) {
		p := c.P
		p.Mu.Lock()
		f, err := p.GetFd(fd)
		p.Mu.Unlock()
		if err != nil {
			return -1, err
		}
		nfd, err := c.installFd(f.Hold())
		if err != nil {
			f.Release()
			return -1, err
		}
		return nfd, nil
	})
}

// Dup2 duplicates fd onto target, closing target first if open. Both
// descriptors share one open-file entry; the change propagates to sharing
// members like any descriptor-table update.
func (c *Context) Dup2(fd, target int) (int, error) {
	return invoke(c, sysDup2, func() (int, error) {
		p := c.P
		if target < 0 || target >= p.FdCeiling() {
			return -1, fs.ErrBadFd
		}
		apply := func() error {
			p.Mu.Lock()
			defer p.Mu.Unlock()
			f, err := p.GetFd(fd)
			if err != nil {
				return err
			}
			if fd == target {
				return nil
			}
			p.GrowFd(target + 1)
			if old := p.Fd[target]; old != nil {
				old.Release()
			}
			p.SetFd(target, f.Hold())
			p.FdFlags[target] = 0
			return nil
		}
		if p.Shares(proc.PRSFDS) {
			sa := groupOf(p)
			sa.BeginFdUpdate(p)
			if err := apply(); err != nil {
				sa.FupdSema.V()
				return -1, err
			}
			sa.EndFdUpdate(p, target)
			return target, nil
		}
		if err := apply(); err != nil {
			return -1, err
		}
		return target, nil
	})
}

// SetCloseOnExec marks fd to be closed across exec(2).
func (c *Context) SetCloseOnExec(fd int, on bool) error {
	return invoke0(c, sysFcntl, func() error {
		p := c.P
		p.Mu.Lock()
		if _, err := p.GetFd(fd); err != nil {
			p.Mu.Unlock()
			return err
		}
		if on {
			p.FdFlags[fd] |= proc.FdCloseOnExec
		} else {
			p.FdFlags[fd] &^= proc.FdCloseOnExec
		}
		p.Mu.Unlock()
		if p.Shares(proc.PRSFDS) {
			sa := groupOf(p)
			sa.BeginFdUpdate(p)
			sa.EndFdUpdate(p, fd)
		}
		return nil
	})
}

// SetNonblock sets or clears per-descriptor non-blocking mode (fcntl
// F_SETFL O_NDELAY): stream operations on fd that would sleep return
// EAGAIN instead. Like close-on-exec the bit lives in the fd-flag table
// and propagates to descriptor-sharing members.
func (c *Context) SetNonblock(fd int, on bool) error {
	return invoke0(c, sysFcntl, func() error {
		p := c.P
		p.Mu.Lock()
		if _, err := p.GetFd(fd); err != nil {
			p.Mu.Unlock()
			return err
		}
		if on {
			p.FdFlags[fd] |= proc.FdNonblock
		} else {
			p.FdFlags[fd] &^= proc.FdNonblock
		}
		p.Mu.Unlock()
		if p.Shares(proc.PRSFDS) {
			sa := groupOf(p)
			sa.BeginFdUpdate(p)
			sa.EndFdUpdate(p, fd)
		}
		return nil
	})
}

// fdFile fetches the open file behind fd.
func (c *Context) fdFile(fd int) (*fs.File, error) {
	c.P.Mu.Lock()
	defer c.P.Mu.Unlock()
	return c.P.GetFd(fd)
}

// fdFileNb fetches the open file behind fd along with the descriptor's
// non-blocking mode — the pair every data-moving syscall needs.
func (c *Context) fdFileNb(fd int) (*fs.File, bool, error) {
	c.P.Mu.Lock()
	defer c.P.Mu.Unlock()
	f, err := c.P.GetFd(fd)
	if err != nil {
		return nil, false, err
	}
	return f, c.P.FdFlags[fd]&proc.FdNonblock != 0, nil
}

// Read reads up to n bytes from fd into the process's memory at va,
// returning the count. The transfer faults pages in as needed.
func (c *Context) Read(fd int, va hw.VAddr, n int) (int, error) {
	return invoke(c, sysRead, func() (int, error) {
		f, nb, err := c.fdFileNb(fd)
		if err != nil {
			return -1, err
		}
		buf := make([]byte, n)
		got, err := f.Read(c.P, buf, nb)
		if err != nil {
			return -1, err
		}
		if err := c.StoreBytes(va, buf[:got]); err != nil {
			return -1, err
		}
		return got, nil
	})
}

// Write writes n bytes from the process's memory at va to fd.
func (c *Context) Write(fd int, va hw.VAddr, n int) (int, error) {
	return invoke(c, sysWrite, func() (int, error) {
		f, nb, err := c.fdFileNb(fd)
		if err != nil {
			return -1, err
		}
		buf := make([]byte, n)
		if err := c.LoadBytes(va, buf); err != nil {
			return -1, err
		}
		c.P.Mu.Lock()
		limit := c.P.Ulimit
		c.P.Mu.Unlock()
		return f.Write(c.P, buf, limit, nb)
	})
}

// Lseek repositions fd's offset.
func (c *Context) Lseek(fd int, off int64, whence int) (int64, error) {
	return invoke(c, sysLseek, func() (int64, error) {
		f, err := c.fdFile(fd)
		if err != nil {
			return -1, err
		}
		return f.Seek(off, whence)
	})
}

// Mkdir creates a directory.
func (c *Context) Mkdir(path string, mode uint16) error {
	return invoke0(c, sysMkdir, func() error {
		_, err := c.S.FS.Mkdir(c.cred(), path, mode)
		return err
	})
}

// Unlink removes a directory entry.
func (c *Context) Unlink(path string) error {
	return invoke0(c, sysUnlink, func() error {
		return c.S.FS.Unlink(c.cred(), path)
	})
}

// Link creates a hard link.
func (c *Context) Link(oldpath, newpath string) error {
	return invoke0(c, sysLink, func() error {
		return c.S.FS.Link(c.cred(), oldpath, newpath)
	})
}

// Stat describes the file at path.
func (c *Context) Stat(path string) (fs.Stat, error) {
	return invoke(c, sysStat, func() (fs.Stat, error) {
		return c.S.FS.StatPath(c.cred(), path)
	})
}

// ReadDir lists the names in the directory at path, sorted.
func (c *Context) ReadDir(path string) ([]string, error) {
	return invoke(c, sysReadDir, func() ([]string, error) {
		cr := c.cred()
		ip, err := c.S.FS.Lookup(cr, path)
		if err != nil {
			return nil, err
		}
		if !ip.IsDir() {
			return nil, fs.ErrNotDir
		}
		if err := ip.Access(cr.Uid, cr.Gid, 4); err != nil {
			return nil, err
		}
		names := ip.Entries()
		sort.Strings(names)
		c.charge(int64(len(names)))
		return names, nil
	})
}

// Chdir changes the current directory; with PR_SDIR the change applies to
// every sharing member of the group ("the ability to change the working
// directory ... of an entire set of processes at once", paper §4).
func (c *Context) Chdir(path string) error {
	return invoke0(c, sysChdir, func() error {
		dir, err := c.S.FS.Lookup(c.cred(), path)
		if err != nil {
			return err
		}
		if !dir.IsDir() {
			return fs.ErrNotDir
		}
		cr := c.cred()
		if err := dir.Access(cr.Uid, cr.Gid, 1); err != nil {
			return err
		}
		p := c.P
		p.Mu.Lock()
		old := p.Cdir
		p.Cdir = dir.Hold()
		p.Mu.Unlock()
		old.Release()
		if p.Shares(proc.PRSDIR) {
			sa := groupOf(p)
			sa.PropagateDir(p)
			c.propagated(sa)
		}
		return nil
	})
}

// Chroot changes the root directory (uid 0 only), propagating with
// PR_SDIR.
func (c *Context) Chroot(path string) error {
	return invoke0(c, sysChroot, func() error {
		cr := c.cred()
		if cr.Uid != 0 {
			return ErrPerm
		}
		dir, err := c.S.FS.Lookup(cr, path)
		if err != nil {
			return err
		}
		if !dir.IsDir() {
			return fs.ErrNotDir
		}
		p := c.P
		p.Mu.Lock()
		old := p.Rdir
		p.Rdir = dir.Hold()
		p.Mu.Unlock()
		old.Release()
		if p.Shares(proc.PRSDIR) {
			sa := groupOf(p)
			sa.PropagateDir(p)
			c.propagated(sa)
		}
		return nil
	})
}

// Umask sets the file-creation mask and returns the previous value,
// propagating with PR_SUMASK.
func (c *Context) Umask(mask uint16) uint16 {
	return invoke1(c, sysUmask, func() uint16 {
		p := c.P
		p.Mu.Lock()
		old := p.Umask
		p.Umask = mask & 0o777
		p.Mu.Unlock()
		if p.Shares(proc.PRSUMASK) {
			sa := groupOf(p)
			sa.PropagateUmask(p)
			c.propagated(sa)
		}
		return old
	})
}

// Ulimit gets (cmd 1) or sets (cmd 2) the maximum file size, propagating
// with PR_SULIMIT.
func (c *Context) Ulimit(cmd int, newLimit int64) (int64, error) {
	return invoke(c, sysUlimit, func() (int64, error) {
		p := c.P
		switch cmd {
		case 1:
			p.Mu.Lock()
			defer p.Mu.Unlock()
			return p.Ulimit, nil
		case 2:
			p.Mu.Lock()
			cur := p.Ulimit
			uid := p.Uid
			if newLimit > cur && uid != 0 {
				p.Mu.Unlock()
				return -1, ErrPerm
			}
			p.Ulimit = newLimit
			p.Mu.Unlock()
			if p.Shares(proc.PRSULIMIT) {
				sa := groupOf(p)
				sa.PropagateUlimit(p)
				c.propagated(sa)
			}
			return newLimit, nil
		default:
			return -1, fs.ErrInval
		}
	})
}

// Setuid changes the effective uid (uid 0 or a no-op change), propagating
// with PR_SID.
func (c *Context) Setuid(uid uint16) error {
	return invoke0(c, sysSetuid, func() error {
		p := c.P
		p.Mu.Lock()
		if p.Uid != 0 && p.Uid != uid {
			p.Mu.Unlock()
			return ErrPerm
		}
		p.Uid = uid
		p.Mu.Unlock()
		if p.Shares(proc.PRSID) {
			sa := groupOf(p)
			sa.PropagateID(p)
			c.propagated(sa)
		}
		return nil
	})
}

// Setgid changes the effective gid, propagating with PR_SID.
func (c *Context) Setgid(gid uint16) error {
	return invoke0(c, sysSetgid, func() error {
		p := c.P
		p.Mu.Lock()
		if p.Uid != 0 && p.Gid != gid {
			p.Mu.Unlock()
			return ErrPerm
		}
		p.Gid = gid
		p.Mu.Unlock()
		if p.Shares(proc.PRSID) {
			sa := groupOf(p)
			sa.PropagateID(p)
			c.propagated(sa)
		}
		return nil
	})
}

// Getuid returns the effective uid.
func (c *Context) Getuid() uint16 {
	return invoke1(c, sysGetuid, func() uint16 {
		c.P.Mu.Lock()
		defer c.P.Mu.Unlock()
		return c.P.Uid
	})
}

// WriteString is a convenience wrapper writing s at va through the MMU and
// then to fd — the common pattern of simulated programs.
func (c *Context) WriteString(fd int, va hw.VAddr, s string) (int, error) {
	if err := c.StoreBytes(va, []byte(s)); err != nil {
		return -1, err
	}
	return c.Write(fd, va, len(s))
}

// ReadString reads up to n bytes from fd via va and returns them as a
// string.
func (c *Context) ReadString(fd int, va hw.VAddr, n int) (string, error) {
	got, err := c.Read(fd, va, n)
	if err != nil {
		return "", err
	}
	buf := make([]byte, got)
	if err := c.LoadBytes(va, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
