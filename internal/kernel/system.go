// Package kernel is the system-call layer tying the substrates together:
// it boots a simulated machine, owns the process table, dispatches
// processes through the scheduler, and implements the V.3 system-call
// surface extended with the paper's sproc(2) and prctl(2).
//
// A simulated program is a Go closure of type Main executing against a
// Context, which stands in for the user-mode CPU state: every memory
// access goes through the per-CPU software TLB and the region fault
// handler, and every system call passes the kernel entry point where the
// p_flag synchronization bits are checked in a single test (paper §6.3).
package kernel

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/ipc"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Config describes the simulated system. Zero values select the documented
// defaults; negative values (and out-of-range rates) are rejected by
// Validate — a degenerate machine is a configuration error, not something
// to boot.
type Config struct {
	NCPU      int   // processors (default 4)
	MemFrames int   // physical page frames (default 16384 = 64 MiB)
	TimeSlice int64 // charge units per slice (default sched.DefaultSlice)
	MaxProcs  int   // per-user process limit, PR_MAXPROCS (default 256)
	MaxFiles  int   // per-process descriptor ceiling (default proc.NOFILE)
	Gang      bool  // gang-schedule share groups (paper §8 extension)

	// NUMANodes splits the CPUs and physical memory into that many
	// locality domains (default 1 = the flat SMP the paper measured).
	// Values above NCPU are clamped by the topology.
	NUMANodes int
	// NodeBlindAlloc disables locality in the frame allocator (round-robin
	// over the node pools) while keeping the cost model's remote penalty —
	// the S6 ablation that shows what node-aware placement buys.
	NodeBlindAlloc bool

	// Image geometry for fresh processes.
	TextPages int // default 16
	DataPages int // default 64

	// Ablation switches (DESIGN.md §6): the designs the paper rejected.
	ExclusiveVMLock bool // exclusive lock on the shared pregion list
	EagerAttrSync   bool // push attribute updates instead of deferring
	EagerDup        bool // spawn-time region table walks (pre-lazy fork)

	// SpawnReserve prepays that many frames of group quota to each sproc
	// child with a single CAS at creation (DESIGN.md §16); the child's
	// fills consume the batch before touching the shared account, and the
	// remainder is returned at reap. 0 (the default) charges per fill.
	SpawnReserve int

	// TraceEvents enables the kernel event ring with the given capacity
	// (0 disables tracing entirely).
	TraceEvents int

	// Fault injection: when FaultRate is positive, the system boots with a
	// deterministic fault plan seeded from FaultSeed, armed at every site
	// with FaultRate per-mille probability (tune per site afterwards via
	// FaultPlan). The same seed reproduces the same injection sequence.
	FaultSeed uint64
	FaultRate int // per-mille, 0 = no injection, max 1000
}

func (c Config) withDefaults() Config {
	if c.NCPU == 0 {
		c.NCPU = 4
	}
	if c.MemFrames == 0 {
		c.MemFrames = 16384
	}
	if c.MaxProcs == 0 {
		c.MaxProcs = 256
	}
	if c.TextPages == 0 {
		c.TextPages = 16
	}
	if c.DataPages == 0 {
		c.DataPages = 64
	}
	return c
}

// Validate rejects configurations that cannot describe a machine. Zero
// means "use the default" throughout, so only genuinely meaningless values
// (negative counts, out-of-range rates) fail.
func (c Config) Validate() error {
	switch {
	case c.NCPU < 0:
		return fmt.Errorf("kernel: Config.NCPU must be >= 0 (0 = default), got %d", c.NCPU)
	case c.MemFrames < 0:
		return fmt.Errorf("kernel: Config.MemFrames must be >= 0 (0 = default), got %d", c.MemFrames)
	case c.TimeSlice < 0:
		return fmt.Errorf("kernel: Config.TimeSlice must be >= 0 (0 = default), got %d", c.TimeSlice)
	case c.MaxProcs < 0:
		return fmt.Errorf("kernel: Config.MaxProcs must be >= 0 (0 = default), got %d", c.MaxProcs)
	case c.MaxFiles < 0:
		return fmt.Errorf("kernel: Config.MaxFiles must be >= 0 (0 = default), got %d", c.MaxFiles)
	case c.NUMANodes < 0:
		return fmt.Errorf("kernel: Config.NUMANodes must be >= 0 (0 = flat), got %d", c.NUMANodes)
	case c.TextPages < 0:
		return fmt.Errorf("kernel: Config.TextPages must be >= 0 (0 = default), got %d", c.TextPages)
	case c.DataPages < 0:
		return fmt.Errorf("kernel: Config.DataPages must be >= 0 (0 = default), got %d", c.DataPages)
	case c.SpawnReserve < 0:
		return fmt.Errorf("kernel: Config.SpawnReserve must be >= 0 (0 = off), got %d", c.SpawnReserve)
	case c.TraceEvents < 0:
		return fmt.Errorf("kernel: Config.TraceEvents must be >= 0 (0 = off), got %d", c.TraceEvents)
	case c.FaultRate < 0 || c.FaultRate > 1000:
		return fmt.Errorf("kernel: Config.FaultRate is per-mille, 0..1000, got %d", c.FaultRate)
	}
	return nil
}

// Main is a user program: the code a process executes.
type Main func(*Context)

// System is the booted kernel.
type System struct {
	Machine *hw.Machine
	FS      *fs.FS
	Sched   *sched.Sched
	IPC     *ipc.Registry
	Net     *ipc.NetNames
	cfg     Config

	// sysacct is the gateway's per-CPU syscall accounting (one slot per
	// CPU plus an overflow slot for calls finishing off-CPU).
	sysacct []*sysAcct

	mu      sync.Mutex
	procs   map[int]*proc.Proc
	mains   map[int]Main // pending images for Exec
	nextPID int

	// Fault injection and degradation counters.
	faults   *faultinject.Plan
	restarts atomic.Int64 // EINTR auto-restarts performed by the gateway
	retries  atomic.Int64 // EAGAIN retries performed by the gateway

	spawnReserved atomic.Int64 // frames prepaid to sproc children (SpawnReserve)

	// Blockproc sleep-wake counters (syscalls_block.go).
	blocks      atomic.Int64 // blockproc calls that actually slept
	blockWakes  atomic.Int64 // unblocks that released a sleeper
	bankedWakes atomic.Int64 // unblocks banked with no sleeper to release
	spinBlocks  atomic.Int64 // uspin bounded spins converted to blockproc

	// Readiness-notification aggregation (syscalls_poll.go, ipc/pollable.go).
	pollStats  *ipc.PollStats
	pollSleeps atomic.Int64 // poll(2) calls that actually slept (per wait)

	// Checkpoint/restore (syscalls_ckpt.go). ckptMu serializes initiators:
	// one live checkpoint at a time, system-wide; a loser surfaces EAGAIN
	// so the gateway's retry backoff applies instead of queueing frozen
	// initiators behind each other.
	ckptMu         sync.Mutex
	ckpts          atomic.Int64 // checkpoints completed
	ckptPasses     atomic.Int64 // pre-copy passes executed
	ckptPrePages   atomic.Int64 // pages copied live by pre-copy passes
	ckptSTWPages   atomic.Int64 // pages copied inside stop-the-world windows
	ckptSTWCycles  atomic.Int64 // simulated cycles initiators spent in STW
	ckptImageBytes atomic.Int64 // encoded image bytes produced
	restores       atomic.Int64 // groups rebuilt from an image

	wg sync.WaitGroup // live processes
}

// NewSystem boots a machine and kernel with the given configuration. It
// panics on an invalid configuration; use NewSystemChecked to get the
// error instead.
func NewSystem(cfg Config) *System {
	s, err := NewSystemChecked(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSystemChecked is NewSystem returning configuration errors.
func NewSystemChecked(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	nodes := cfg.NUMANodes
	if nodes < 1 {
		nodes = 1
	}
	m := hw.NewMachineNUMA(cfg.NCPU, cfg.MemFrames, nodes)
	m.Mem.NodeBlind = cfg.NodeBlindAlloc
	s := &System{
		Machine: m,
		FS:      fs.New(),
		Sched:   sched.New(m, cfg.TimeSlice),
		IPC:     ipc.NewRegistry(),
		Net:     ipc.NewNetNames(),
		cfg:     cfg,
		procs:   map[int]*proc.Proc{},
		mains:   map[int]Main{},
	}
	s.Sched.SetGang(cfg.Gang)
	s.pollStats = &ipc.PollStats{}
	s.Net.SetPollStats(s.pollStats)
	s.sysacct = make([]*sysAcct, cfg.NCPU+1)
	for i := range s.sysacct {
		s.sysacct[i] = &sysAcct{}
	}
	if cfg.TraceEvents > 0 {
		m.Trace = trace.NewMP(cfg.TraceEvents, cfg.NCPU)
	}
	if cfg.FaultRate > 0 {
		s.ArmFaults(faultinject.New(cfg.FaultSeed, cfg.FaultRate))
	}
	return s, nil
}

// ArmFaults wires a fault plan into every injection site: the syscall
// gateway, the frame allocator, the dispatcher, and the blocking IPC
// paths. Injected faults are recorded as EvFaultInject trace events. Call
// at boot, before user code runs; nil disarms the gateway and allocator
// sites (IPC objects created while armed keep their plan).
func (s *System) ArmFaults(pl *faultinject.Plan) {
	s.faults = pl
	s.Machine.Mem.FI = pl
	s.Sched.FI = pl
	s.IPC.SetFault(pl)
	s.Net.SetFault(pl)
	if pl != nil {
		pl.Recorder = func(site faultinject.Site, fault faultinject.Fault, key uint32) {
			s.Machine.Trace.Record(trace.EvFaultInject, -1, -1,
				uint64(key), uint32(site)<<8|uint32(fault))
		}
	}
}

// FaultPlan returns the armed fault plan, or nil.
func (s *System) FaultPlan() *faultinject.Plan { return s.faults }

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// allocPID hands out the next process id.
func (s *System) allocPID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextPID++
	return s.nextPID
}

// register adds p to the process table and arms its per-process syscall
// profile (read back through ProcSyscalls).
func (s *System) register(p *proc.Proc) {
	p.SysCount = make([]atomic.Int64, NSys)
	s.mu.Lock()
	s.procs[p.PID] = p
	s.mu.Unlock()
}

// unregister removes p from the process table.
func (s *System) unregister(p *proc.Proc) {
	s.mu.Lock()
	delete(s.procs, p.PID)
	s.mu.Unlock()
}

// Lookup finds a process by pid.
func (s *System) Lookup(pid int) (*proc.Proc, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.procs[pid]
	return p, ok
}

// NProcs returns the number of live process-table entries.
func (s *System) NProcs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.procs)
}

// Procs returns a snapshot of the process table.
func (s *System) Procs() []*proc.Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*proc.Proc, 0, len(s.procs))
	for _, p := range s.procs {
		out = append(out, p)
	}
	return out
}

// newImage builds a standard fresh address space: text, data, stack at the
// top of the space, and a private PRDA at its fixed location.
func (s *System) newImage(p *proc.Proc) {
	mem := s.Machine.Mem
	stackBase := vm.MainStackTop - hw.VAddr(p.StackMax*hw.PageSize)
	p.Private = vm.BuildList(
		&vm.PRegion{Reg: vm.NewRegion(mem, vm.RText, s.cfg.TextPages), Base: vm.TextBase},
		&vm.PRegion{Reg: vm.NewRegion(mem, vm.RData, s.cfg.DataPages), Base: vm.DataBase},
		&vm.PRegion{Reg: vm.NewRegion(mem, vm.RStack, p.StackMax), Base: stackBase},
		&vm.PRegion{Reg: vm.NewRegion(mem, vm.RPRDA, vm.PRDAPages), Base: vm.PRDABase},
	)
	p.Stack = vm.Find(p.Private, stackBase)
}

// Start launches a fresh top-level process executing main and returns its
// pid immediately. The process's cdir and rdir are the filesystem root; it
// owns a standard image and runs as root. This is the system's one entry
// point for launching programs (WaitIdle blocks until all have exited).
func (s *System) Start(name string, main Main) int {
	p := proc.New(s.allocPID(), name)
	p.Sched = s.Sched
	p.ASID = s.Machine.AllocASID()
	p.Cdir = s.FS.Root().Hold()
	p.Rdir = s.FS.Root().Hold()
	p.FdMax = s.cfg.MaxFiles
	s.newImage(p)
	s.register(p)
	s.startProc(p, main)
	return p.PID
}

// processExit unwinds a process's stack on exit(2) or a fatal signal.
type processExit struct{ status int }

// processExec unwinds a process's stack on exec(2), carrying the new image.
type processExec struct {
	name string
	main Main
}

// startProc launches p's goroutine: dispatch, run images until the process
// exits, then reap.
func (s *System) startProc(p *proc.Proc, main Main) {
	s.wg.Add(1)
	s.Sched.Spawn(p, func() {
		defer s.wg.Done()
		status := 0
		img := main
		for img != nil {
			next, st := s.runImage(p, img)
			img, status = next, st
		}
		s.reap(p, status)
	})
}

// runImage executes one program image, converting the exit/exec panics
// into control flow. It returns the next image to run (exec) or nil (exit)
// with the exit status.
func (s *System) runImage(p *proc.Proc, img Main) (next Main, status int) {
	defer func() {
		r := recover()
		switch e := r.(type) {
		case nil:
		case processExit:
			next, status = nil, e.status
		case processExec:
			p.Name = e.name
			next, status = e.main, 0
		default:
			panic(r)
		}
	}()
	img(&Context{S: s, P: p})
	return nil, 0
}

// reap performs the kernel half of exit(2): release the image and
// descriptors, leave the share group, reparent children, notify the
// parent. The proc-table entry survives as a zombie until the parent waits
// (or is removed immediately if no one can wait).
func (s *System) reap(p *proc.Proc, status int) {
	// Return the unconsumed remainder of the spawn-time frame reservation
	// before anything else: the group account must not carry a dead
	// member's prepaid quota (the storm tests assert zero leaked
	// reservations once a creation storm drains).
	if rv := p.Resv; rv != nil {
		p.Resv = nil
		rv.Release()
	}
	// Leave the share group first: the group must survive member exit,
	// and the member's sproc stack is detached under the update lock
	// with a full shootdown (paper §6.2).
	if sa := p.ShareGrp(); sa != nil {
		sa.Leave(p)
	}

	p.Mu.Lock()
	p.CloseAllFds()
	cdir, rdir := p.Cdir, p.Rdir
	p.Cdir, p.Rdir = nil, nil
	p.ExitStatus = status
	p.Mu.Unlock()
	cdir.Release()
	rdir.Release()

	vm.DetachList(p.Private)
	p.Private = nil
	s.Machine.ShootdownSpace(nil, p.ASID)

	// Reparent children: orphans that are already zombies are discarded;
	// live orphans will be discarded when they exit.
	p.Mu.Lock()
	children := p.Children
	p.Children = nil
	p.Mu.Unlock()
	for _, c := range children {
		c.Mu.Lock()
		c.PPID = 0 // orphaned
		c.Mu.Unlock()
		select {
		case <-c.Exited:
			s.unregister(c)
		default:
		}
	}

	p.SetState(proc.SZomb)
	s.Machine.Trace.Record(trace.EvExit, int32(p.PID), -1, uint64(status), 0)
	close(p.Exited)

	// Notify the parent.
	s.mu.Lock()
	parent := s.procs[p.PPID]
	s.mu.Unlock()
	if parent != nil {
		parent.Post(proc.SIGCLD)
		parent.DeadSema.V()
	} else {
		// Orphan: no one will wait; drop the table entry now. A signal
		// death with nobody to observe it is reported like a shell
		// would, so misbehaving programs are not silently lost.
		if status >= 128 {
			fmt.Fprintf(os.Stderr, "kernel: pid %d (%s) killed by signal %d\n", p.PID, p.Name, status-128)
		}
		s.unregister(p)
	}
}

// WaitIdle blocks until every process has exited (test and example
// teardown).
func (s *System) WaitIdle() { s.wg.Wait() }

// String summarizes the system.
func (s *System) String() string {
	return fmt.Sprintf("system{%v, procs=%d}", s.Machine, s.NProcs())
}
