package kernel

import (
	"sync/atomic"
	"testing"

	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// Tests for the §8 future-work extensions (unshare, per-group gang
// scheduling, group priority) and the ablation switches.

func TestUnshareAttrs(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		var unshared, checked atomic.Bool
		c.Sproc("rebel", func(cc *Context, _ int64) {
			if err := cc.Unshare(proc.PRSUMASK | proc.PRSULIMIT); err != nil {
				t.Errorf("unshare: %v", err)
			}
			if cc.P.ShMask()&proc.PRSUMASK != 0 {
				t.Error("umask bit survived unshare")
			}
			if !cc.P.InGroup() {
				t.Error("unshare of attrs removed group membership")
			}
			unshared.Store(true)
			for !checked.Load() {
				cc.Getpid()
			}
			// The rebel no longer follows the group's umask.
			cc.P.Mu.Lock()
			um := cc.P.Umask
			cc.P.Mu.Unlock()
			if um == 0o077 {
				t.Error("unshared member still received umask update")
			}
		}, proc.PRSALL, 0)
		for !unshared.Load() {
			c.Getpid()
		}
		c.Umask(0o077) // must not reach the rebel
		checked.Store(true)
		c.Wait()
	})
	waitIdle(t, s)
}

func TestUnshareVM(t *testing.T) {
	s := NewSystem(testConfig())
	const va = vm.DataBase
	s.Start("creator", func(c *Context) {
		c.Store32(va, 1)
		var unshared, wrote atomic.Bool
		c.Sproc("rebel", func(cc *Context, _ int64) {
			if v, _ := cc.Load32(va); v != 1 {
				t.Errorf("rebel pre-unshare read %d", v)
			}
			stackWord := cc.StackBase() + 64
			cc.Store32(stackWord, 0xcafe)
			if err := cc.Unshare(proc.PRSADDR); err != nil {
				t.Errorf("unshare VM: %v", err)
			}
			// The COW image preserves everything it could see,
			// including its own stack contents.
			if v, _ := cc.Load32(va); v != 1 {
				t.Errorf("rebel post-unshare read %d", v)
			}
			if v, _ := cc.Load32(stackWord); v != 0xcafe {
				t.Errorf("rebel stack lost on unshare: %#x", v)
			}
			unshared.Store(true)
			// Writes no longer reach the group.
			cc.Store32(va, 99)
			wrote.Store(true)
		}, proc.PRSALL, 0)
		for !unshared.Load() || !wrote.Load() {
			c.Getpid()
		}
		c.Wait()
		if v, _ := c.Load32(va); v != 1 {
			t.Errorf("unshared member's write leaked into group: %d", v)
		}
		// And the group's writes don't reach... (member gone; check that
		// the group still works at all.)
		c.Store32(va, 2)
		if v, _ := c.Load32(va); v != 2 {
			t.Error("group space broken after unshare")
		}
	})
	waitIdle(t, s)
	if used := s.Machine.Mem.InUse(); used != 0 {
		t.Fatalf("%d frames leaked", used)
	}
}

func TestUnshareOutsideGroupFails(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("plain", func(c *Context) {
		if err := c.Unshare(proc.PRSALL); err == nil {
			t.Error("unshare outside a group succeeded")
		}
	})
	waitIdle(t, s)
}

func TestPrctlGangAndGroupPrio(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		if err := c.SetGang(true); err == nil {
			t.Error("PR_SETGANG outside group accepted")
		}
		c.Sproc("m", func(cc *Context, _ int64) {
			for cc.P.Prio.Load() != 7 {
				cc.Getpid()
			}
		}, proc.PRSALL, 0)
		if err := c.SetGang(true); err != nil {
			t.Errorf("PR_SETGANG: %v", err)
		}
		sa := GroupOf(c.P)
		if !sa.Gang() {
			t.Error("gang flag not set")
		}
		if err := c.SetGroupPrio(7); err != nil {
			t.Errorf("PR_GROUPPRIO: %v", err)
		}
		if c.P.Prio.Load() != 7 {
			t.Errorf("creator prio = %d", c.P.Prio.Load())
		}
		c.Wait() // member loops until it observes prio 7
	})
	waitIdle(t, s)
}

func TestEagerAttrSyncAblation(t *testing.T) {
	cfg := testConfig()
	cfg.EagerAttrSync = true
	s := NewSystem(cfg)
	s.Start("creator", func(c *Context) {
		var hold atomic.Bool
		c.Sproc("m", func(cc *Context, _ int64) {
			for !hold.Load() {
				cc.Getpid()
			}
			// No kernel entry needed: the update was pushed.
			cc.P.Mu.Lock()
			um := cc.P.Umask
			cc.P.Mu.Unlock()
			if um != 0o031 {
				t.Errorf("eager push missed: umask %o", um)
			}
			if cc.P.Flag.Load()&proc.FSyncAny != 0 {
				t.Error("eager mode left sync bits")
			}
		}, proc.PRSALL, 0)
		c.Umask(0o031)
		hold.Store(true)
		c.Wait()
	})
	waitIdle(t, s)
}

func TestExclusiveVMLockAblation(t *testing.T) {
	cfg := testConfig()
	cfg.ExclusiveVMLock = true
	s := NewSystem(cfg)
	s.Start("creator", func(c *Context) {
		va, _ := c.Mmap(16)
		done := make(chan struct{}, 2)
		for i := 0; i < 2; i++ {
			c.Sproc("faulter", func(cc *Context, arg int64) {
				for p := 0; p < 8; p++ {
					cc.Store32(va+hw.VAddr(int(arg)*8*4096+p*4096), 1)
				}
				done <- struct{}{}
			}, proc.PRSALL, int64(i))
		}
		<-done
		<-done
		c.Wait()
		c.Wait()
		sa := GroupOf(c.P)
		// In exclusive mode every fault took the update lock.
		if sa.Acc.RLocks.Load() > 0 && sa.Acc.WLocks.Load() == 0 {
			t.Error("exclusive ablation did not use the exclusive lock")
		}
	})
	waitIdle(t, s)
}
