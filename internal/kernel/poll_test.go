package kernel

// Tests for poll(2)/select(2), per-descriptor non-blocking mode, and the
// SitePollSleep chaos site: readiness scanning, EINTR-not-restarted
// semantics, and same-seed → same-injection-log determinism.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ipc"
	"repro/internal/proc"
	"repro/internal/vm"
)

func TestPollBasicReadiness(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("main", func(c *Context) {
		r, w, err := c.Pipe()
		if err != nil {
			t.Fatalf("pipe: %v", err)
		}
		// Empty pipe: read end idle, write end has space.
		set := []PollFd{
			{Fd: r, Events: PollIn},
			{Fd: w, Events: PollOut},
			{Fd: 99, Events: PollIn},
		}
		n, err := c.Poll(set, 0)
		if err != nil || n != 2 {
			t.Fatalf("poll(empty) = %d, %v", n, err)
		}
		if set[0].Revents != 0 {
			t.Errorf("empty read end revents %#x", set[0].Revents)
		}
		if set[1].Revents&PollOut == 0 {
			t.Errorf("write end revents %#x, want PollOut", set[1].Revents)
		}
		if set[2].Revents != PollNval {
			t.Errorf("bad fd revents %#x, want PollNval", set[2].Revents)
		}

		c.WriteString(w, vm.DataBase, "hi")
		if n, _ = c.Poll(set[:1], 0); n != 1 || set[0].Revents&PollIn == 0 {
			t.Errorf("after write: n=%d revents %#x, want PollIn", n, set[0].Revents)
		}

		// A positive timeout with data already buffered returns at once.
		if n, err := c.Poll(set[:1], 1000); err != nil || n != 1 || set[0].Revents&PollIn == 0 {
			t.Errorf("poll(timeout, ready) = (%d, %v) revents %#x, want PollIn", n, err, set[0].Revents)
		}

		// Closing the read end makes the write end an error condition —
		// reported even though Events only asked for PollOut.
		c.Close(r)
		if n, _ = c.Poll(set[1:2], 0); n != 1 || set[1].Revents&PollErr == 0 {
			t.Errorf("readerless write end: n=%d revents %#x, want PollErr", n, set[1].Revents)
		}
	})
	waitIdle(t, s)
}

func TestPollBlocksUntilChildWrites(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("main", func(c *Context) {
		r, w, err := c.Pipe()
		if err != nil {
			t.Fatalf("pipe: %v", err)
		}
		c.Fork("writer", func(cc *Context) {
			for i := 0; i < 200; i++ {
				cc.Getpid() // burn some time before signalling readiness
			}
			cc.WriteString(w, vm.DataBase, "x")
		})
		set := []PollFd{{Fd: r, Events: PollIn}}
		n, err := c.Poll(set, -1)
		if err != nil || n != 1 || set[0].Revents&PollIn == 0 {
			t.Errorf("poll = (%d, %v) revents %#x", n, err, set[0].Revents)
		}
		c.Wait()
	})
	waitIdle(t, s)
}

// TestPollTimedExpiry: a positive timeout bounds the sleep — nothing ever
// becomes ready, so poll must come back with 0 instead of blocking
// forever (the pre-fix kernel rejected every positive timeout EINVAL).
func TestPollTimedExpiry(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("main", func(c *Context) {
		r, _, err := c.Pipe()
		if err != nil {
			t.Fatalf("pipe: %v", err)
		}
		set := []PollFd{{Fd: r, Events: PollIn}}
		start := time.Now()
		n, err := c.Poll(set, 25)
		if err != nil || n != 0 {
			t.Errorf("poll(timeout=25, idle) = (%d, %v), want (0, nil)", n, err)
		}
		if el := time.Since(start); el < 20*time.Millisecond {
			t.Errorf("timed poll returned after %v, want a ~25ms bounded sleep", el)
		}
		if set[0].Revents != 0 {
			t.Errorf("expired poll revents %#x, want 0", set[0].Revents)
		}
	})
	waitIdle(t, s)
	if st := s.Stats(); st.PollSleeps == 0 {
		t.Error("timed poll never actually slept")
	}
}

// TestPollTimedReadiness: a readiness transition during the bounded sleep
// ends it early with the event, ahead of the timer.
func TestPollTimedReadiness(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("main", func(c *Context) {
		r, w, err := c.Pipe()
		if err != nil {
			t.Fatalf("pipe: %v", err)
		}
		c.Fork("writer", func(cc *Context) {
			for i := 0; i < 200; i++ {
				cc.Getpid() // burn some time before signalling readiness
			}
			cc.WriteString(w, vm.DataBase, "x")
		})
		set := []PollFd{{Fd: r, Events: PollIn}}
		// Generous bound: the writer's readiness, not the timer, must end
		// the wait.
		n, err := c.Poll(set, 60_000)
		if err != nil || n != 1 || set[0].Revents&PollIn == 0 {
			t.Errorf("timed poll = (%d, %v) revents %#x, want PollIn", n, err, set[0].Revents)
		}
		c.Wait()
	})
	waitIdle(t, s)
}

// TestPollTimedEINTR: the EINTR contract holds for timed waits too — a
// caught signal during the bounded sleep surfaces as EINTR, not as a
// silent restart or a timeout.
func TestPollTimedEINTR(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		var woke atomic.Bool
		pid, _ := c.Fork("poller", func(cc *Context) {
			cc.Signal(proc.SIGUSR1, func(int) {})
			r, _, err := cc.Pipe()
			if err != nil {
				t.Errorf("pipe: %v", err)
				return
			}
			set := []PollFd{{Fd: r, Events: PollIn}}
			// A bound far past the test's patience: only the signal can
			// end this poll this fast.
			_, err = cc.Poll(set, 600_000)
			if !errors.Is(err, ErrInterrupt) || ErrnoOf(err) != EINTR {
				t.Errorf("interrupted timed poll = %v (errno %v), want EINTR", err, ErrnoOf(err))
			}
			woke.Store(true)
		})
		for !woke.Load() {
			if err := c.Kill(pid, proc.SIGUSR1); err != nil {
				t.Errorf("kill: %v", err)
				break
			}
		}
		c.Wait()
	})
	waitIdle(t, s)
}

func TestSelectSplitsReadWrite(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("main", func(c *Context) {
		r, w, err := c.Pipe()
		if err != nil {
			t.Fatalf("pipe: %v", err)
		}
		c.WriteString(w, vm.DataBase, "z")
		rr, ww, err := c.Select([]int{r}, []int{w}, 0)
		if err != nil {
			t.Fatalf("select: %v", err)
		}
		if len(rr) != 1 || rr[0] != r {
			t.Errorf("readable = %v, want [%d]", rr, r)
		}
		if len(ww) != 1 || ww[0] != w {
			t.Errorf("writable = %v, want [%d]", ww, w)
		}
	})
	waitIdle(t, s)
}

// TestSetNonblockEAGAIN: FdNonblock turns would-sleep into EAGAIN in both
// directions, and the flag is per-descriptor, not per-open-file.
func TestSetNonblockEAGAIN(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("main", func(c *Context) {
		r, w, err := c.Pipe()
		if err != nil {
			t.Fatalf("pipe: %v", err)
		}
		if err := c.SetNonblock(r, true); err != nil {
			t.Fatalf("setnonblock: %v", err)
		}
		if _, err := c.Read(r, vm.DataBase, 4); ErrnoOf(err) != EAGAIN {
			t.Errorf("nonblock read of empty pipe errno %v, want EAGAIN", ErrnoOf(err))
		}
		// A dup of the same open file without the flag would still sleep:
		// the bit lives in the descriptor table, so clearing it restores
		// blocking semantics on the same fd.
		if err := c.SetNonblock(r, false); err != nil {
			t.Fatalf("setnonblock(clear): %v", err)
		}

		c.SetNonblock(w, true)
		c.Store32(vm.DataBase, 0x61626364)
		wrote := 0
		for {
			n, err := c.Write(w, vm.DataBase, 4)
			wrote += n
			if err != nil {
				if ErrnoOf(err) != EAGAIN {
					t.Errorf("filling pipe: errno %v, want EAGAIN", ErrnoOf(err))
				}
				break
			}
			if wrote > ipc.PipeCap {
				t.Fatalf("wrote %d bytes past PipeCap without EAGAIN", wrote)
			}
		}
		if wrote != ipc.PipeCap {
			t.Errorf("nonblock fill stopped at %d bytes, want PipeCap=%d", wrote, ipc.PipeCap)
		}
	})
	waitIdle(t, s)
}

// TestPollEINTRNotRestarted: poll is not under the SA_RESTART policy — a
// caught signal surfaces as EINTR (like pause(2)) so serving loops get a
// chance to re-examine shutdown state.
func TestPollEINTRNotRestarted(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		var woke atomic.Bool
		pid, _ := c.Fork("poller", func(cc *Context) {
			cc.Signal(proc.SIGUSR1, func(int) {})
			r, _, err := cc.Pipe()
			if err != nil {
				t.Errorf("pipe: %v", err)
				return
			}
			set := []PollFd{{Fd: r, Events: PollIn}}
			// Nobody ever writes: only the signal can end this poll. If the
			// gateway restarted it, the call would never return.
			_, err = cc.Poll(set, -1)
			if !errors.Is(err, ErrInterrupt) || ErrnoOf(err) != EINTR {
				t.Errorf("interrupted poll = %v (errno %v), want EINTR", err, ErrnoOf(err))
			}
			woke.Store(true)
		})
		// The signal may land before the poller reaches its sleep (the
		// pause(2) race); keep signalling until it reports waking.
		for !woke.Load() {
			if err := c.Kill(pid, proc.SIGUSR1); err != nil {
				t.Errorf("kill: %v", err)
				break
			}
		}
		c.Wait()
	})
	waitIdle(t, s)
}

// TestPollSleepChaosDeterminism arms only SitePollSleep and replays the
// run: the injected spurious wakeups are drawn from the site's own
// sequence counter, so the same seed must produce the identical log —
// same hits, same sequence numbers — no matter how the host schedules the
// goroutines underneath.
func TestPollSleepChaosDeterminism(t *testing.T) {
	run := func() []faultinject.Record {
		s := NewSystem(testConfig())
		pl := faultinject.New(0xabcdef, 0)
		pl.SetRate(faultinject.SitePollSleep, 800)
		pl.EnableLog(4096)
		s.ArmFaults(pl)

		procCh := make(chan *proc.Proc, 1)
		s.Start("poller", func(c *Context) {
			c.Signal(proc.SIGUSR1, func(int) {})
			r, _, err := c.Pipe()
			if err != nil {
				t.Errorf("pipe: %v", err)
				return
			}
			procCh <- c.P
			set := []PollFd{{Fd: r, Events: PollIn}}
			// Nothing is ever written: the poller spins through the injected
			// spurious wakeups until the site draws a miss, then sleeps for
			// real until the host interrupts it.
			if _, err := c.Poll(set, -1); ErrnoOf(err) != EINTR {
				t.Errorf("chaos poll = %v, want EINTR", err)
			}
		})
		p := <-procCh

		// Wait until the site's decision counter settles: the injected-hit
		// run is a tight spin (each spurious wake returns immediately), so a
		// stable count means the poller drew its miss and truly blocked.
		site := faultinject.SitePollSleep
		deadline := time.Now().Add(10 * time.Second)
		for pl.Checks(site) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("poller never reached the pollsleep site")
			}
			time.Sleep(time.Millisecond)
		}
		for stable := 0; stable < 3; {
			before := pl.Checks(site)
			time.Sleep(50 * time.Millisecond)
			if pl.Checks(site) == before {
				stable++
			} else {
				stable = 0
			}
		}
		p.Post(proc.SIGUSR1)
		waitIdle(t, s)
		return pl.Log()
	}

	log1 := run()
	log2 := run()
	if len(log1) == 0 {
		t.Fatal("seed 0xabcdef at rate 800 injected no spurious wakeups")
	}
	if len(log1) != len(log2) {
		t.Fatalf("log lengths differ: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("log[%d] differs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	for _, rec := range log1 {
		if rec.Site != faultinject.SitePollSleep || rec.Fault != faultinject.FaultWakeup {
			t.Errorf("unexpected record %+v with only pollsleep armed", rec)
		}
	}
}
