package kernel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// Integration tests for the wider syscall surface: pipes, System V IPC,
// sockets, descriptor-table details, and error paths.

func TestPipeSyscallAcrossFork(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		rfd, wfd, err := c.Pipe()
		if err != nil {
			t.Errorf("Pipe: %v", err)
			return
		}
		c.Fork("writer", func(cc *Context) {
			cc.Close(rfd)
			cc.WriteString(wfd, vm.DataBase, "through the queue")
			cc.Close(wfd)
		})
		c.Close(wfd)
		got, err := c.ReadString(rfd, vm.DataBase, 64)
		if err != nil || got != "through the queue" {
			t.Errorf("read = (%q,%v)", got, err)
		}
		// All writers closed: EOF.
		if n, err := c.Read(rfd, vm.DataBase, 8); n != 0 || err != nil {
			t.Errorf("EOF = (%d,%v)", n, err)
		}
		c.Wait()
	})
	waitIdle(t, s)
}

func TestPipeSharedThroughGroup(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		rfd, wfd, err := c.Pipe()
		if err != nil {
			t.Errorf("Pipe: %v", err)
			return
		}
		c.Sproc("writer", func(cc *Context, _ int64) {
			// The descriptors are shared, not copied: same table slots.
			cc.WriteString(wfd, cc.StackBase(), "group pipe")
		}, proc.PRSALL, 0)
		got, err := c.ReadString(rfd, vm.DataBase, 32)
		if err != nil || got != "group pipe" {
			t.Errorf("read = (%q,%v)", got, err)
		}
		c.Wait()
	})
	waitIdle(t, s)
}

func TestMsgQueueSyscalls(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		id := c.Msgget(77)
		if c.Msgget(77) != id {
			t.Error("key not stable")
		}
		c.Fork("consumer", func(cc *Context) {
			n, typ, err := cc.Msgrcv(id, 2, vm.DataBase, 64)
			if err != nil || typ != 2 {
				t.Errorf("Msgrcv = (%d,%d,%v)", n, typ, err)
				return
			}
			buf := make([]byte, n)
			cc.LoadBytes(vm.DataBase, buf)
			if string(buf) != "typed" {
				t.Errorf("got %q", buf)
			}
		})
		c.StoreBytes(vm.DataBase, []byte("typed"))
		if err := c.Msgsnd(id, 2, vm.DataBase, 5); err != nil {
			t.Errorf("Msgsnd: %v", err)
		}
		c.Wait()
		if _, _, err := c.Msgrcv(999, 0, vm.DataBase, 8); err == nil {
			t.Error("recv on bad id succeeded")
		}
	})
	waitIdle(t, s)
}

func TestSemSyscalls(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		id := c.Semget(5, 1)
		c.Semop(id, 0, 1)
		if v, _ := c.Semval(id, 0); v != 1 {
			t.Errorf("semval = %d", v)
		}
		var order atomic.Int32
		c.Fork("waiter", func(cc *Context) {
			cc.Semop(id, 0, -2) // blocks until parent adds one more
			if order.Load() != 1 {
				t.Error("semop returned before V")
			}
			order.Store(2)
		})
		for i := 0; i < 50; i++ {
			c.Getpid() // let the child reach the sleep
		}
		order.Store(1)
		c.Semop(id, 0, 1)
		c.Wait()
		if order.Load() != 2 {
			t.Error("waiter never completed")
		}
		if err := c.Semop(999, 0, 1); err == nil {
			t.Error("semop on bad id succeeded")
		}
	})
	waitIdle(t, s)
}

func TestShmSyscallsAcrossProcesses(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("parent", func(c *Context) {
		id := c.Shmget(9, 2)
		va, err := c.Shmat(id)
		if err != nil {
			t.Errorf("Shmat: %v", err)
			return
		}
		c.Store32(va, 1234)
		var childSaw atomic.Uint32
		c.Fork("peer", func(cc *Context) {
			cva, err := cc.Shmat(id) // second attachment, own address
			if err != nil {
				t.Errorf("child Shmat: %v", err)
				return
			}
			v, _ := cc.Load32(cva)
			childSaw.Store(v)
			cc.Store32(cva+4, 4321)
			cc.Shmdt(cva)
		})
		c.Wait()
		if childSaw.Load() != 1234 {
			t.Errorf("child saw %d", childSaw.Load())
		}
		if v, _ := c.Load32(va + 4); v != 4321 {
			t.Errorf("parent missed child write: %d", v)
		}
		if err := c.Shmdt(va); err != nil {
			t.Errorf("Shmdt: %v", err)
		}
		if err := c.ShmRemove(id); err != nil {
			t.Errorf("ShmRemove: %v", err)
		}
	})
	waitIdle(t, s)
	if used := s.Machine.Mem.InUse(); used != 0 {
		t.Fatalf("%d frames leaked", used)
	}
}

func TestDupSharesOffsetAndPropagates(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		fd, _ := c.Open("/f", fs.ORead|fs.OWrite|fs.OCreat, 0o644)
		dup, err := c.Dup(fd)
		if err != nil {
			t.Errorf("Dup: %v", err)
			return
		}
		c.WriteString(fd, vm.DataBase, "abc")
		c.WriteString(dup, vm.DataBase, "def") // shared offset appends
		st, _ := c.Stat("/f")
		if st.Size != 6 {
			t.Errorf("size = %d, want 6 (shared offset)", st.Size)
		}
		// The dup propagates to a sharing member.
		var ok atomic.Bool
		done := make(chan struct{})
		c.Sproc("m", func(cc *Context, _ int64) {
			defer close(done)
			cc.P.Mu.Lock()
			_, err := cc.P.GetFd(dup)
			cc.P.Mu.Unlock()
			ok.Store(err == nil)
		}, proc.PRSALL, 0)
		<-done
		c.Wait()
		if !ok.Load() {
			t.Error("dup'd descriptor not visible to member")
		}
	})
	waitIdle(t, s)
}

func TestReadWriteErrorPaths(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("p", func(c *Context) {
		if _, err := c.Read(42, vm.DataBase, 8); !errors.Is(err, fs.ErrBadFd) {
			t.Errorf("read bad fd: %v", err)
		}
		if _, err := c.Write(42, vm.DataBase, 8); !errors.Is(err, fs.ErrBadFd) {
			t.Errorf("write bad fd: %v", err)
		}
		if _, err := c.Lseek(42, 0, fs.SeekSet); !errors.Is(err, fs.ErrBadFd) {
			t.Errorf("lseek bad fd: %v", err)
		}
		// Write from an unmapped buffer faults (handler installed so the
		// process survives to report).
		c.Signal(proc.SIGSEGV, func(int) {})
		fd, _ := c.Creat("/x", 0o644)
		if _, err := c.Write(fd, 0x6f00_0000, 8); err == nil {
			t.Error("write from unmapped buffer succeeded")
		}
		if err := c.Close(fd); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := c.Close(fd); !errors.Is(err, fs.ErrBadFd) {
			t.Errorf("double close: %v", err)
		}
	})
	waitIdle(t, s)
}

func TestSbrkErrors(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("p", func(c *Context) {
		brk := c.Brk()
		if brk != vm.DataBase+hw.VAddr(s.Config().DataPages*hw.PageSize) {
			t.Errorf("initial brk = %#x", uint32(brk))
		}
		if _, err := c.Sbrk(-int64(s.Config().DataPages+1) * hw.PageSize); err == nil {
			t.Error("shrinking below zero succeeded")
		}
		if old, err := c.Sbrk(0); err != nil || old != brk {
			t.Errorf("sbrk(0) = (%#x,%v)", uint32(old), err)
		}
	})
	waitIdle(t, s)
}

func TestSigmask(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("p", func(c *Context) {
		var got atomic.Int32
		c.Signal(proc.SIGUSR1, func(int) { got.Add(1) })
		old := c.Sigmask(1 << proc.SIGUSR1)
		if old != 0 {
			t.Errorf("old mask = %#x", old)
		}
		c.P.Post(proc.SIGUSR1)
		for i := 0; i < 20; i++ {
			c.Getpid()
		}
		if got.Load() != 0 {
			t.Error("masked signal delivered")
		}
		c.Sigmask(0)
		c.Getpid()
		if got.Load() != 1 {
			t.Errorf("unmasked deliveries = %d", got.Load())
		}
		// SIGKILL cannot be masked.
		if m := c.Sigmask(^uint32(0)); m != 0 {
			t.Errorf("mask = %#x", m)
		}
		c.P.Mu.Lock()
		km := c.P.SigMask
		c.P.Mu.Unlock()
		if km&(1<<proc.SIGKILL) != 0 {
			t.Error("SIGKILL maskable")
		}
	})
	waitIdle(t, s)
}

func TestChrootInGroup(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		c.Mkdir("/jail", 0o755)
		c.Mkdir("/jail/home", 0o755)
		var moved atomic.Bool
		done := make(chan struct{})
		c.Sproc("m", func(cc *Context, _ int64) {
			defer close(done)
			for !moved.Load() {
				cc.Getpid()
			}
			cc.Getpid() // sync point
			// The member's absolute paths now resolve inside the jail.
			if _, err := cc.Stat("/home"); err != nil {
				t.Errorf("member not jailed: %v", err)
			}
		}, proc.PRSALL, 0)
		if err := c.Chroot("/jail"); err != nil {
			t.Errorf("chroot: %v", err)
		}
		moved.Store(true)
		<-done
		c.Wait()
	})
	waitIdle(t, s)
}

func TestQuickStrictInheritance(t *testing.T) {
	// E9 property: along any sproc chain, a child's share mask is always
	// a subset of its parent's, whatever masks are requested.
	f := func(reqs []uint32) bool {
		if len(reqs) > 5 {
			reqs = reqs[:5]
		}
		cfg := testConfig()
		s := NewSystem(cfg)
		okc := make(chan bool, 1)
		s.Start("root", func(c *Context) {
			var spawn func(cc *Context, depth int) bool
			spawn = func(cc *Context, depth int) bool {
				if depth >= len(reqs) {
					return true
				}
				parentMask := cc.P.ShMask()
				if !cc.P.InGroup() {
					parentMask = proc.PRSALL // first sproc creates the group
				}
				res := make(chan bool, 1)
				req := proc.Mask(reqs[depth]) & proc.PRSALL
				_, err := cc.Sproc("kid", func(k *Context, _ int64) {
					if k.P.ShMask()&^parentMask != 0 {
						res <- false
						return
					}
					if k.P.ShMask() != req&parentMask {
						res <- false
						return
					}
					res <- spawn(k, depth+1)
				}, req, 0)
				if err != nil {
					return false
				}
				// Wait through the simulated kernel first: it releases
				// this process's CPU, so a deep sproc chain cannot
				// exhaust the machine's processors while parents block.
				cc.Wait()
				return <-res
			}
			okc <- spawn(c, 0)
		})
		s.WaitIdle()
		return <-okc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadCreateInsideGroupKeepsMask(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("creator", func(c *Context) {
		done := make(chan struct{})
		c.Sproc("limited", func(cc *Context, _ int64) {
			defer close(done)
			// A "thread" from a limited member can only share what the
			// member shares: strict inheritance applies to threads too.
			res := make(chan proc.Mask, 1)
			cc.ThreadCreate("t", func(tc *Context, _ int64) {
				res <- tc.P.ShMask()
			}, 0)
			if m := <-res; m != proc.PRSFDS {
				t.Errorf("thread mask = %v, want PR_SFDS", m)
			}
			cc.Wait()
		}, proc.PRSFDS, 0)
		<-done
		c.Wait()
	})
	waitIdle(t, s)
}

func TestWriteToReadOnlyTextFaults(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("p", func(c *Context) {
		// Text is readable...
		if _, err := c.Load32(vm.TextBase); err != nil {
			t.Errorf("text read: %v", err)
		}
		// ...and in this simulation also writable by its sole owner, but
		// after a fork the text region is SHARED, so a write must not be
		// possible to see from the child if COW semantics were violated.
		// (Text sharing on fork is exercised here.)
		c.Fork("kid", func(cc *Context) {
			if _, err := cc.Load32(vm.TextBase); err != nil {
				t.Errorf("child text read: %v", err)
			}
		})
		c.Wait()
	})
	waitIdle(t, s)
}
