package kernel

// Tests for the deterministic fault-injection plan wired through the
// kernel: same seed → same injection sequence, counters surfaced through
// Stats(), EvFaultInject trace events, and the frame allocator's
// drain-and-reclaim degradation path.

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/trace"
	"repro/internal/vm"
)

// faultScript is a strictly single-process, signal-free syscall sequence:
// with one process there is exactly one draw order per site, so two runs
// under the same seed must make identical injection decisions.
func faultScript(c *Context) {
	for i := 0; i < 60; i++ {
		fd, err := c.Open("/f", fs.ORead|fs.OWrite|fs.OCreat, 0o644)
		if err != nil {
			continue // injected EINTR: open is not restartable
		}
		c.WriteString(fd, vm.DataBase, "abcdefgh")
		c.Read(fd, vm.DataBase+64, 8)
		c.Close(fd)
		c.Sbrk(hw.PageSize)
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	run := func() ([]faultinject.Record, int64) {
		cfg := testConfig()
		cfg.FaultSeed = 0xbeefcafe
		cfg.FaultRate = 250
		s := NewSystem(cfg)
		s.FaultPlan().EnableLog(4096)
		s.Start("script", faultScript)
		waitIdle(t, s)
		return s.FaultPlan().Log(), s.FaultPlan().TotalInjected()
	}
	log1, n1 := run()
	log2, n2 := run()
	if n1 == 0 {
		t.Fatal("plan injected nothing at rate 250")
	}
	if n1 != n2 {
		t.Fatalf("injection counts differ: %d vs %d", n1, n2)
	}
	if len(log1) != len(log2) {
		t.Fatalf("log lengths differ: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("log[%d] differs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
}

func TestFaultSeedChangesSequence(t *testing.T) {
	run := func(seed uint64) []faultinject.Record {
		cfg := testConfig()
		cfg.FaultSeed = seed
		cfg.FaultRate = 250
		s := NewSystem(cfg)
		s.FaultPlan().EnableLog(4096)
		s.Start("script", faultScript)
		waitIdle(t, s)
		return s.FaultPlan().Log()
	}
	a, b := run(1), run(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same && len(a) > 0 {
			t.Error("different seeds produced identical injection logs")
		}
	}
}

// Injected faults must be visible in Stats() and in the trace ring: one
// EvFaultInject event per injection (as long as nothing was dropped).
func TestFaultCountersAndTrace(t *testing.T) {
	cfg := testConfig()
	cfg.FaultSeed = 42
	cfg.FaultRate = 200
	cfg.TraceEvents = 1 << 16
	s := NewSystem(cfg)
	s.Start("script", faultScript)
	waitIdle(t, s)

	st := s.Stats()
	if st.FaultChecks == 0 || st.FaultsInjected == 0 {
		t.Fatalf("FaultChecks=%d FaultsInjected=%d, want both > 0", st.FaultChecks, st.FaultsInjected)
	}
	var checks, injected int64
	for _, row := range st.FaultSites {
		checks += row.Checks
		injected += row.Injected
	}
	if checks != st.FaultChecks || injected != st.FaultsInjected {
		t.Errorf("site rows sum to (%d,%d), totals are (%d,%d)", checks, injected, st.FaultChecks, st.FaultsInjected)
	}
	if st.TraceDropped == 0 {
		if got := s.Machine.Trace.CountKind(trace.EvFaultInject); int64(got) != st.FaultsInjected {
			t.Errorf("EvFaultInject events = %d, injections = %d", got, st.FaultsInjected)
		}
	}
}

// The frame allocator degrades before failing: an injected allocation
// fault first drains the per-CPU caches back to the pool (FrameReclaims),
// and only a fraction surfaces as ENOMEM. Processes touching memory under
// that regime may die on the injected SIGSEGV, but the kernel must not —
// and frame conservation must hold afterwards.
func TestFrameReclaimUnderInjection(t *testing.T) {
	cfg := testConfig()
	cfg.FaultSeed = 7
	cfg.FaultRate = 400
	s := NewSystem(cfg)
	s.Start("parent", func(c *Context) {
		for i := 0; i < 8; i++ {
			c.Fork("toucher", func(cc *Context) {
				for j := 0; j < 32; j++ {
					va, err := cc.Sbrk(hw.PageSize)
					if err != nil {
						continue // injected ENOMEM: degrade, keep going
					}
					// Touch the new page (Sbrk returns the old break): frame
					// allocation happens at fault time, where injection bites.
					cc.Store32(va, uint32(j))
				}
			})
		}
		for {
			if _, _, err := c.Wait(); err != nil {
				if errors.Is(err, ErrNoChildren) {
					break
				}
			}
		}
	})
	waitIdle(t, s)
	st := s.Stats()
	if st.FrameReclaims == 0 {
		t.Error("no drain-and-reclaim pass ran under 400‰ framealloc injection")
	}
	if st.FramesInUse != 0 {
		t.Errorf("FramesInUse = %d after idle, want 0", st.FramesInUse)
	}
	if st.FrameAllocs-st.FrameFrees != 0 {
		t.Errorf("Allocs-Frees = %d after idle, want 0", st.FrameAllocs-st.FrameFrees)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NCPU: -1},
		{MemFrames: -5},
		{TimeSlice: -1},
		{MaxProcs: -2},
		{FaultRate: -1},
		{FaultRate: 1001},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
		if _, err := NewSystemChecked(cfg); err == nil {
			t.Errorf("NewSystemChecked(%+v) = nil error, want error", cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("Validate(zero) = %v, want nil", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewSystem(invalid) did not panic")
			}
		}()
		NewSystem(Config{NCPU: -1})
	}()
}
