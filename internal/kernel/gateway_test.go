package kernel

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/fs"
	"repro/internal/proc"
	"repro/internal/trace"
)

// TestErrnoMapping pins the error envelope contract: a syscall failure is a
// *SysError carrying a stable Errno, matchable three ways — errors.Is
// against the original sentinel, errors.Is against the bare Errno, and
// errors.As extraction of the envelope.
func TestErrnoMapping(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("errno", func(c *Context) {
		_, err := c.Open("/does/not/exist", fs.ORead, 0)
		if err == nil {
			t.Fatal("open of missing file succeeded")
		}
		if !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("err %v does not match fs.ErrNotExist", err)
		}
		if !errors.Is(err, ENOENT) {
			t.Errorf("err %v does not match ENOENT", err)
		}
		var se *SysError
		if !errors.As(err, &se) {
			t.Fatalf("err %v is not a *SysError", err)
		}
		if se.Num != ENOENT || se.Call != "open" {
			t.Errorf("envelope = {call %q, errno %v}, want {open, ENOENT}", se.Call, se.Num)
		}
		if got := ErrnoOf(err); got != ENOENT {
			t.Errorf("ErrnoOf = %v, want ENOENT", got)
		}

		if _, err := c.Read(42, 0, 1); !errors.Is(err, EBADF) {
			t.Errorf("read(42) = %v, want EBADF", err)
		}
		if _, _, err := c.Wait(); !errors.Is(err, ECHILD) {
			t.Errorf("wait = %v, want ECHILD", err)
		}
	})
	s.WaitIdle()
}

// TestSyscallAccountingConservation drives a share group and a forked
// process through a known syscall mix on all CPUs concurrently, then checks
// that the per-CPU accounting matrix conserves every issued call: sum over
// CPUs == calls the drivers counted themselves. Run under -race this also
// hammers the gateway's sharded counters.
func TestSyscallAccountingConservation(t *testing.T) {
	cfg := testConfig()
	s := NewSystem(cfg)

	var issuedGetpid, issuedOpen, issuedClose, issuedLseek atomic.Int64
	const workers = 6
	const rounds = 40

	s.Start("driver", func(c *Context) {
		worker := func(cc *Context, id int64) {
			for i := 0; i < rounds; i++ {
				cc.Getpid()
				issuedGetpid.Add(1)
				fd, err := cc.Open("/tmp", fs.ORead, 0)
				issuedOpen.Add(1)
				if err != nil {
					t.Errorf("worker %d: open: %v", id, err)
					return
				}
				cc.Lseek(fd, 0, fs.SeekSet)
				issuedLseek.Add(1)
				cc.Close(fd)
				issuedClose.Add(1)
			}
		}
		if err := c.Mkdir("/tmp", 0o777); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		for i := 0; i < workers/2; i++ {
			if _, err := c.Sproc("member", worker, proc.PRSALL, int64(i)); err != nil {
				t.Errorf("sproc: %v", err)
			}
		}
		for i := workers / 2; i < workers; i++ {
			id := int64(i)
			if _, err := c.Fork("kid", func(cc *Context) { worker(cc, id) }); err != nil {
				t.Errorf("fork: %v", err)
			}
		}
		for i := 0; i < workers; i++ {
			if _, _, err := c.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
		}
		worker(c, -1)
	})
	s.WaitIdle()

	matrix := s.SyscallCountsByCPU()
	if len(matrix) != cfg.NCPU+1 {
		t.Fatalf("matrix rows = %d, want NCPU+1 = %d", len(matrix), cfg.NCPU+1)
	}
	sum := func(n Sysno) int64 {
		var total int64
		for _, row := range matrix {
			total += row[n]
		}
		return total
	}
	for _, tc := range []struct {
		name   string
		num    Sysno
		issued int64
	}{
		{"getpid", SysGetpid, issuedGetpid.Load()},
		{"open", SysOpen, issuedOpen.Load()},
		{"lseek", SysLseek, issuedLseek.Load()},
		{"close", SysClose, issuedClose.Load()},
	} {
		if got := sum(tc.num); got != tc.issued {
			t.Errorf("%s: accounted %d calls, drivers issued %d", tc.name, got, tc.issued)
		}
	}

	// Stats() must agree with the raw matrix and carry nonzero latency.
	for _, st := range s.Stats().Syscalls {
		if got := sum(st.Num); got != st.Count {
			t.Errorf("%s: Stats count %d != matrix sum %d", st.Name, st.Count, got)
		}
		if st.Count > 0 && st.SimCyc <= 0 {
			t.Errorf("%s: %d calls accounted but zero simcyc", st.Name, st.Count)
		}
		if st.Count > 0 && st.CyclesPerCall() < float64(hwEntryExitFloor()) {
			t.Errorf("%s: %.0f cycles/call below the entry+exit floor", st.Name, st.CyclesPerCall())
		}
	}
}

// hwEntryExitFloor is the minimum possible in-kernel latency of any call:
// the trap and return costs alone.
func hwEntryExitFloor() int64 {
	s := NewSystem(Config{NCPU: 1, MemFrames: 64})
	return s.Machine.Cost.SyscallEntry + s.Machine.Cost.SyscallExit
}

// TestSyscallSpansMatch checks the trace contract: every EvSyscallEnter has
// a matching EvSyscallExit with the same syscall number, in order, per
// process — including calls that never return (exit(2), exec(2)) — and the
// exit event of a failing call carries the right errno.
func TestSyscallSpansMatch(t *testing.T) {
	cfg := testConfig()
	cfg.TraceEvents = 1 << 14
	s := NewSystem(cfg)

	s.Start("spans", func(c *Context) {
		c.Open("/missing", fs.ORead, 0) // ENOENT exit span
		done := make(chan struct{})
		c.Sproc("member", func(cc *Context, _ int64) {
			defer close(done)
			cc.Umask(0o027)
			cc.Getpid()
		}, proc.PRSALL, 0)
		<-done
		c.Getpid() // reconcile: sync runs inside this call's span
		c.Wait()
		c.Fork("execer", func(cc *Context) {
			cc.Exec("image2", func(c2 *Context) { c2.Getpid() })
		})
		c.Wait()
		c.Fork("exiter", func(cc *Context) { cc.Exit(3) })
		c.Wait()
	})
	s.WaitIdle()

	events, dropped := s.Machine.Trace.Snapshot()
	if dropped != 0 {
		t.Fatalf("ring dropped %d events; grow TraceEvents", dropped)
	}

	// Per-PID span matching. Syscalls never nest (delegating calls like
	// creat dispatch once, as the delegate), so within one process the
	// enter/exit events must strictly alternate with equal syscall numbers.
	open := map[int32]trace.Event{}
	inFlight := map[int32]bool{}
	enters, exits := 0, 0
	var sawENOENT bool
	for _, ev := range events {
		switch ev.Kind {
		case trace.EvSyscallEnter:
			enters++
			if inFlight[ev.PID] {
				t.Fatalf("pid %d: nested enter of %s while %s in flight",
					ev.PID, SysName(Sysno(ev.Arg)), SysName(Sysno(open[ev.PID].Arg)))
			}
			inFlight[ev.PID] = true
			open[ev.PID] = ev
		case trace.EvSyscallExit:
			exits++
			if !inFlight[ev.PID] {
				t.Fatalf("pid %d: exit of %s with no open span", ev.PID, SysName(Sysno(ev.Arg)))
			}
			if open[ev.PID].Arg != ev.Arg {
				t.Fatalf("pid %d: enter %s closed by exit %s",
					ev.PID, SysName(Sysno(open[ev.PID].Arg)), SysName(Sysno(ev.Arg)))
			}
			inFlight[ev.PID] = false
			if Sysno(ev.Arg) == SysOpen && Errno(ev.Aux) == ENOENT {
				sawENOENT = true
			}
		}
	}
	for pid, in := range inFlight {
		if in {
			t.Errorf("pid %d: span %s never closed", pid, SysName(Sysno(open[pid].Arg)))
		}
	}
	if enters == 0 || enters != exits {
		t.Errorf("enter/exit events = %d/%d, want equal and nonzero", enters, exits)
	}
	if !sawENOENT {
		t.Error("no open exit span carried ENOENT")
	}
}

// TestFdTableGrowthAcrossShareBlock is the regression test for the
// descriptor-sync truncation bug: a member whose table grew past another
// member's must not lose descriptors when the smaller table synchronizes —
// the table grows to the block's length instead.
func TestFdTableGrowthAcrossShareBlock(t *testing.T) {
	s := NewSystem(testConfig())
	const nopen = proc.NFdInit + 8 // force growth past the initial table

	s.Start("grower", func(c *Context) {
		if err := c.Mkdir("/tmp", 0o777); err != nil {
			t.Errorf("mkdir: %v", err)
			return
		}
		done := make(chan struct{})
		if _, err := c.Sproc("opener", func(cc *Context, _ int64) {
			defer close(done)
			for i := 0; i < nopen; i++ {
				fd, err := cc.Open("/tmp", fs.ORead, 0)
				if err != nil {
					t.Errorf("opener: open %d: %v", i, err)
					return
				}
				if i == nopen-1 && fd < proc.NFdInit {
					t.Errorf("last fd = %d, want >= %d (table did not grow)", fd, proc.NFdInit)
				}
			}
		}, proc.PRSALL, 0); err != nil {
			t.Fatalf("sproc: %v", err)
		}
		<-done
		// Parent's table is still NFdInit long; its next kernel entry
		// must reconcile and GROW it, not silently drop fds >= NFdInit.
		if _, err := c.Lseek(nopen-1, 0, fs.SeekSet); err != nil {
			t.Errorf("parent lost synchronized fd %d: %v", nopen-1, err)
		}
		c.Wait()
	})
	s.WaitIdle()
}
