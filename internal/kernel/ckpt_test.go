package kernel

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/vm"
)

// ckptPattern is the word each member writes into its page of the shared
// window: distinct per (member, word) so a restore that swaps pages or
// members shows up as a value mismatch, not just a count.
func ckptPattern(member int64, word int) uint32 {
	return uint32(0xC0DE0000) | uint32(member)<<8 | uint32(word)
}

// shmBaseOf finds the shared-memory window in an image (the group list
// also carries text, data and stack regions).
func shmBaseOf(t *testing.T, img *ckpt.Image) hw.VAddr {
	t.Helper()
	for _, r := range img.Regions {
		if r.Type == uint8(vm.RShm) {
			return hw.VAddr(r.Base)
		}
	}
	t.Fatal("image has no shm region")
	return 0
}

// waitAsleep spins the caller's clock until every listed pid is blocked
// in blockproc (SSleep). Used by initiators to reach a known-quiescent
// point before checkpointing.
func waitAsleep(c *Context, pids []int) {
	for {
		asleep := true
		for _, pid := range pids {
			p, ok := c.S.Lookup(pid)
			if !ok || p.State() != proc.SSleep {
				asleep = false
				break
			}
		}
		if asleep {
			return
		}
		c.Getpid() // a kernel crossing: burns cycles, lets members run
	}
}

// runCkptWorkload boots a fresh system, has a driver spawn `members`
// sharing-everything sprocs that each stamp one page of a shared window
// and block, and checkpoints the quiescent group with the given pass
// count. Returns the encoded image and the checkpoint's cost report.
func runCkptWorkload(t *testing.T, members, passes int, twice bool) ([]byte, []byte, CkptInfo) {
	t.Helper()
	s := NewSystem(testConfig())
	var enc, enc2 []byte
	var info CkptInfo
	s.Start("driver", func(c *Context) {
		va, err := c.Mmap(members)
		if err != nil {
			t.Errorf("mmap: %v", err)
			return
		}
		var pids []int
		for i := 0; i < members; i++ {
			pid, err := c.Sproc("stamper", func(cc *Context, arg int64) {
				base := va + hw.VAddr(int(arg)*hw.PageSize)
				for w := 0; w < 8; w++ {
					cc.Store32(base+hw.VAddr(w*4), ckptPattern(arg, w))
				}
				cc.Blockproc(0)
			}, proc.PRSALL, int64(i))
			if err != nil {
				t.Errorf("sproc %d: %v", i, err)
				return
			}
			pids = append(pids, pid)
		}
		waitAsleep(c, pids)
		img, inf, err := c.Ckpt(CkptOpts{Passes: passes})
		if err != nil {
			t.Errorf("ckpt: %v", err)
			return
		}
		enc, info = img.Encode(), inf
		if twice {
			img2, _, err := c.Ckpt(CkptOpts{Passes: passes})
			if err != nil {
				t.Errorf("second ckpt: %v", err)
				return
			}
			enc2 = img2.Encode()
		}
		for _, pid := range pids {
			c.Unblockproc(pid)
		}
		for range pids {
			c.Wait()
		}
	})
	waitIdle(t, s)
	return enc, enc2, info
}

func TestCkptRestoreRoundTrip(t *testing.T) {
	const members = 3
	enc, _, info := runCkptWorkload(t, members, 2, false)
	if enc == nil {
		t.Fatal("no image produced")
	}
	if info.Passes != 2 || info.ImageBytes != len(enc) {
		t.Fatalf("info = %+v, want 2 passes and %d image bytes", info, len(enc))
	}
	img, err := ckpt.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(img.Members) != members+1 {
		t.Fatalf("image has %d members, want %d", len(img.Members), members+1)
	}

	// Rebuild the group in a brand-new system. The respawned members run
	// a verification entry against the memory the restore wrote back.
	s2 := NewSystem(testConfig())
	var verified atomic.Int32
	var respawned atomic.Int32
	shm := shmBaseOf(t, img)
	s2.Start("blank", func(c *Context) {
		n, err := c.Restore(img, func(cc *Context, arg int64) {
			base := shm
			for w := 0; w < 8; w++ {
				if v, err := cc.Load32(base + hw.VAddr(int(arg)*hw.PageSize+w*4)); err != nil || v != ckptPattern(arg, w) {
					t.Errorf("member %d word %d = %#x (%v), want %#x", arg, w, v, err, ckptPattern(arg, w))
					return
				}
			}
			verified.Add(1)
		})
		if err != nil {
			t.Errorf("restore: %v", err)
			return
		}
		respawned.Store(int32(n))
		if c.P.Name != "driver" {
			t.Errorf("caller name = %q, want creator's %q", c.P.Name, "driver")
		}
		for i := 0; i < n; i++ {
			c.Wait()
		}
	})
	waitIdle(t, s2)
	if respawned.Load() != members {
		t.Fatalf("respawned %d members, want %d", respawned.Load(), members)
	}
	if verified.Load() != members {
		t.Fatalf("%d members verified their pages, want %d", verified.Load(), members)
	}
}

// Satellite: determinism. The same seeded workload checkpointed in two
// independent systems — and twice at the same quiescent point in one
// system — must produce byte-identical images. Anything nondeterministic
// leaking into the image (map order, clock values, allocation addresses)
// fails here.
func TestCkptDeterministicImages(t *testing.T) {
	encA, encA2, _ := runCkptWorkload(t, 3, 1, true)
	encB, _, _ := runCkptWorkload(t, 3, 1, false)
	if encA == nil || encA2 == nil || encB == nil {
		t.Fatal("missing images")
	}
	if !bytes.Equal(encA, encA2) {
		t.Error("back-to-back checkpoints of a quiescent group differ")
	}
	if !bytes.Equal(encA, encB) {
		t.Error("identical workloads in fresh systems produced different images")
	}
}

// A quiescent group re-dirties nothing between passes, so with pre-copy
// enabled the stop-the-world window should copy zero pages; with
// passes=0 the whole resident set lands inside the window. This is the
// unit-sized version of benchtab's S10 claim.
func TestCkptPrecopyEmptiesSTW(t *testing.T) {
	_, _, pre := runCkptWorkload(t, 2, 1, false)
	if pre.STWPages != 0 {
		t.Errorf("quiescent group with 1 pre-copy pass: STW copied %d pages, want 0", pre.STWPages)
	}
	if pre.PrePages == 0 {
		t.Error("pre-copy pass copied nothing")
	}
	_, _, stop := runCkptWorkload(t, 2, 0, false)
	if stop.PrePages != 0 || stop.STWPages == 0 {
		t.Errorf("naive snapshot: pre=%d stw=%d, want 0 and >0", stop.PrePages, stop.STWPages)
	}
	if stop.STWPages != pre.PrePages+pre.STWPages {
		t.Errorf("naive STW copied %d pages, pre-copy run captured %d", stop.STWPages, pre.PrePages+pre.STWPages)
	}
}

// Satellite: checkpoint → restore → continue must end in the same memory
// state as the same workload running uninterrupted. Phase 1 stamps, phase
// 2 mixes the stamp; run A does both phases in one life, run B is
// checkpointed between the phases and finishes in a restored system.
func TestCkptRestoreContinueMatchesUninterrupted(t *testing.T) {
	const members, words = 3, 8
	phase2 := func(cc *Context, arg int64, base hw.VAddr) {
		for w := 0; w < words; w++ {
			va := base + hw.VAddr(int(arg)*hw.PageSize+w*4)
			v, err := cc.Load32(va)
			if err != nil {
				t.Errorf("phase2 load: %v", err)
				return
			}
			cc.Store32(va, v*31+uint32(arg)+uint32(w))
		}
	}
	final := func(c *Context, base hw.VAddr) []uint32 {
		out := make([]uint32, members*words)
		for m := 0; m < members; m++ {
			for w := 0; w < words; w++ {
				v, err := c.Load32(base + hw.VAddr(m*hw.PageSize+w*4))
				if err != nil {
					t.Errorf("final load: %v", err)
				}
				out[m*words+w] = v
			}
		}
		return out
	}

	// Run A: uninterrupted.
	sA := NewSystem(testConfig())
	var wantMem []uint32
	sA.Start("driver", func(c *Context) {
		va, _ := c.Mmap(members)
		var pids []int
		for i := 0; i < members; i++ {
			pid, _ := c.Sproc("two-phase", func(cc *Context, arg int64) {
				base := va + hw.VAddr(int(arg)*hw.PageSize)
				for w := 0; w < words; w++ {
					cc.Store32(base+hw.VAddr(w*4), ckptPattern(arg, w))
				}
				cc.Blockproc(0)
				phase2(cc, arg, va)
			}, proc.PRSALL, int64(i))
			pids = append(pids, pid)
		}
		waitAsleep(c, pids)
		for _, pid := range pids {
			c.Unblockproc(pid)
		}
		for range pids {
			c.Wait()
		}
		wantMem = final(c, va)
	})
	waitIdle(t, sA)

	// Run B: identical phase 1, checkpoint at the quiescent point.
	sB := NewSystem(testConfig())
	var enc []byte
	sB.Start("driver", func(c *Context) {
		va, _ := c.Mmap(members)
		var pids []int
		for i := 0; i < members; i++ {
			pid, _ := c.Sproc("two-phase", func(cc *Context, arg int64) {
				base := va + hw.VAddr(int(arg)*hw.PageSize)
				for w := 0; w < words; w++ {
					cc.Store32(base+hw.VAddr(w*4), ckptPattern(arg, w))
				}
				cc.Blockproc(0)
			}, proc.PRSALL, int64(i))
			pids = append(pids, pid)
		}
		waitAsleep(c, pids)
		img, _, err := c.Ckpt(CkptOpts{Passes: 2})
		if err != nil {
			t.Errorf("ckpt: %v", err)
		} else {
			enc = img.Encode()
		}
		for _, pid := range pids {
			c.Unblockproc(pid)
		}
		for range pids {
			c.Wait()
		}
	})
	waitIdle(t, sB)
	if enc == nil {
		t.Fatal("run B produced no image")
	}

	// Run B': restore and run only phase 2, then compare final memory.
	img, err := ckpt.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	sC := NewSystem(testConfig())
	var gotMem []uint32
	sC.Start("blank", func(c *Context) {
		base := shmBaseOf(t, img)
		n, err := c.Restore(img, func(cc *Context, arg int64) {
			phase2(cc, arg, base)
		})
		if err != nil {
			t.Errorf("restore: %v", err)
			return
		}
		for i := 0; i < n; i++ {
			c.Wait()
		}
		gotMem = final(c, base)
	})
	waitIdle(t, sC)
	if wantMem == nil || gotMem == nil {
		t.Fatal("missing final memory snapshots")
	}
	for i := range wantMem {
		if gotMem[i] != wantMem[i] {
			t.Fatalf("word %d: restored run ended with %#x, uninterrupted run with %#x", i, gotMem[i], wantMem[i])
		}
	}
}

func TestCkptErrors(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("loner", func(c *Context) {
		if _, _, err := c.Ckpt(CkptOpts{}); err == nil {
			t.Error("ckpt outside a share group succeeded")
		} else if ErrnoOf(err) != EINVAL {
			t.Errorf("ckpt outside group: errno %v, want EINVAL", ErrnoOf(err))
		}
		// A member sharing nothing (mask without PR_SADDR) makes the
		// group uncheckpointable: its private image is not captured.
		pid, err := c.Sproc("private", func(cc *Context, _ int64) {
			cc.Blockproc(0)
		}, proc.PRSFDS, 0)
		if err != nil {
			t.Errorf("sproc: %v", err)
			return
		}
		waitAsleep(c, []int{pid})
		if _, _, err := c.Ckpt(CkptOpts{}); ErrnoOf(err) != EINVAL {
			t.Errorf("ckpt with non-PRSADDR member: %v, want EINVAL", err)
		}
		// Restore from inside a group is rejected outright.
		if _, err := c.Restore(&ckpt.Image{}, func(*Context, int64) {}); ErrnoOf(err) != EINVAL {
			t.Errorf("restore inside group: %v, want EINVAL", err)
		}
		c.Unblockproc(pid)
		c.Wait()
	})
	waitIdle(t, s)
}

// A second initiator racing an in-flight checkpoint is turned away with
// EAGAIN (after the gateway's bounded retries) rather than queued behind
// a frozen group.
func TestCkptBusy(t *testing.T) {
	s := NewSystem(testConfig())
	s.Start("driver", func(c *Context) {
		pid, err := c.Sproc("m", func(cc *Context, _ int64) {
			cc.Blockproc(0)
		}, proc.PRSALL, 0)
		if err != nil {
			t.Errorf("sproc: %v", err)
			return
		}
		waitAsleep(c, []int{pid})
		c.S.ckptMu.Lock() // stand in for a concurrent initiator
		_, _, err = c.Ckpt(CkptOpts{})
		c.S.ckptMu.Unlock()
		if !errors.Is(err, ErrCkptBusy) || ErrnoOf(err) != EAGAIN {
			t.Errorf("ckpt vs held initiator lock: %v, want ErrCkptBusy/EAGAIN", err)
		}
		c.Unblockproc(pid)
		c.Wait()
	})
	waitIdle(t, s)
	st := s.Stats()
	if st.Ckpts != 0 || st.Restores != 0 {
		t.Errorf("stats counted ckpts=%d restores=%d for failed attempts", st.Ckpts, st.Restores)
	}
}

// Checkpoint counters must flow to Stats so sgtop can graph them.
func TestCkptStats(t *testing.T) {
	enc, _, info := runCkptWorkload(t, 2, 1, false)
	if enc == nil || info.PrePages == 0 {
		t.Fatal("workload produced no checkpoint")
	}
	// runCkptWorkload tears its system down; re-run inline to inspect stats.
	s := NewSystem(testConfig())
	s.Start("driver", func(c *Context) {
		va, _ := c.Mmap(1)
		pid, _ := c.Sproc("m", func(cc *Context, _ int64) {
			cc.Store32(va, 0xBEEF)
			cc.Blockproc(0)
		}, proc.PRSALL, 0)
		waitAsleep(c, []int{pid})
		if _, _, err := c.Ckpt(CkptOpts{Passes: 1}); err != nil {
			t.Errorf("ckpt: %v", err)
		}
		c.Unblockproc(pid)
		c.Wait()
	})
	waitIdle(t, s)
	st := s.Stats()
	if st.Ckpts != 1 || st.CkptPasses == 0 || st.CkptPrePages == 0 || st.CkptImageBytes == 0 {
		t.Errorf("stats = ckpts=%d passes=%d prepages=%d bytes=%d; want all nonzero",
			st.Ckpts, st.CkptPasses, st.CkptPrePages, st.CkptImageBytes)
	}
}
