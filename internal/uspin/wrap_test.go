package uspin

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/vm"
)

// TestBarrierGenerationWraparound pins the wraparound contract documented
// on Barrier: the generation word is a free-running uint32 compared only
// for inequality against the value sampled at entry, so the 2^32 rollover
// must be invisible — no member released early (observing a "changed"
// generation before all N arrived) and none stranded (sleeping through a
// release because the wrapped value compared equal). The test pre-seeds
// the generation word just below the rollover and drives episodes across
// 0xFFFFFFFE → 0xFFFFFFFF → 0 → 1 → 2, checking the per-round work ledger
// at every exit exactly like TestBarrierRounds does in the mid-range.
func TestBarrierGenerationWraparound(t *testing.T) {
	const workers = 4
	const rounds = 5 // crosses the wrap on round 2
	runSystem(t, func(c *kernel.Context) {
		b := Barrier{VA: vm.DataBase, N: workers}
		if err := b.Init(c); err != nil {
			t.Fatalf("init: %v", err)
		}
		// Park the free-running generation two episodes shy of rollover.
		// Init is done, no one has entered yet, so a plain store is safe.
		if err := c.Store32(b.VA+4, 0xFFFFFFFE); err != nil {
			t.Fatalf("seed generation: %v", err)
		}
		for w := 0; w < workers; w++ {
			c.Sproc("wrap-worker", func(cc *kernel.Context, _ int64) {
				for r := 0; r < rounds; r++ {
					va := vm.DataBase + 64 + hw.VAddr(4*r)
					cc.Add32(va, 1)
					if err := b.Enter(cc); err != nil {
						t.Errorf("round %d: barrier: %v", r, err)
						return
					}
					// An early release would exit with the round's ledger
					// short of N; a stranded member would hang the whole
					// test (runSystem's deadlock watchdog catches it).
					if v, _ := cc.Load32(va); v != workers {
						t.Errorf("round %d incomplete at barrier exit: %d of %d arrivals", r, v, workers)
						return
					}
				}
			}, proc.PRSALL, int64(w))
		}
		for w := 0; w < workers; w++ {
			c.Wait()
		}
		// The generation word wrapped through zero and kept counting:
		// 0xFFFFFFFE + 5 episodes ≡ 3 (mod 2^32).
		if g, _ := c.Load32(b.VA + 4); g != 3 {
			t.Errorf("generation after %d episodes = %d, want 3 (wrapped)", rounds, g)
		}
	})
}

// TestBarrierWraparoundHybridSleepers repeats the crossing with the spin
// budget forced to zero, so every non-last arrival takes the blockproc
// sleep path and the wrap is exercised against the sleeper-table re-check
// in Barrier.sleep (the g != gen comparison under the table guard).
func TestBarrierWraparoundHybridSleepers(t *testing.T) {
	old := SpinRounds
	SpinRounds = 0
	defer func() { SpinRounds = old }()

	const workers = 3
	const rounds = 4
	runSystem(t, func(c *kernel.Context) {
		b := Barrier{VA: vm.DataBase, N: workers + 1} // driver participates
		if err := b.Init(c); err != nil {
			t.Fatalf("init: %v", err)
		}
		if err := c.Store32(b.VA+4, 0xFFFFFFFF); err != nil { // next episode wraps to 0
			t.Fatalf("seed generation: %v", err)
		}
		for w := 0; w < workers; w++ {
			c.Sproc("sleeper", func(cc *kernel.Context, _ int64) {
				for r := 0; r < rounds; r++ {
					if err := b.Enter(cc); err != nil {
						t.Errorf("round %d: %v", r, err)
						return
					}
				}
			}, proc.PRSALL, int64(w))
		}
		for r := 0; r < rounds; r++ {
			// The driver arrives last-ish; sleepers blocked via the table
			// must all be released every episode or Wait below hangs.
			if err := b.Enter(c); err != nil {
				t.Fatalf("driver round %d: %v", r, err)
			}
		}
		for w := 0; w < workers; w++ {
			c.Wait()
		}
		if g, _ := c.Load32(b.VA + 4); g != 3 {
			t.Errorf("generation = %d, want 3 (0xFFFFFFFF + 4 episodes)", g)
		}
	})
}
