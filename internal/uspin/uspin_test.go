package uspin

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/vm"
)

func runSystem(t *testing.T, main kernel.Main) *kernel.System {
	t.Helper()
	s := kernel.NewSystem(kernel.Config{NCPU: 4, MemFrames: 8192, TimeSlice: 300})
	s.Start("main", main)
	done := make(chan struct{})
	go func() { s.WaitIdle(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock")
	}
	return s
}

func TestMutexExcludesAcrossMembers(t *testing.T) {
	const workers = 4
	const iters = 200
	runSystem(t, func(c *kernel.Context) {
		m := Mutex{VA: vm.DataBase}
		counterVA := vm.DataBase + 64 // non-atomic counter guarded by m
		m.Init(c)
		c.Store32(counterVA, 0)
		for i := 0; i < workers; i++ {
			c.Sproc("locker", func(cc *kernel.Context, _ int64) {
				for j := 0; j < iters; j++ {
					if err := m.Lock(cc); err != nil {
						t.Errorf("lock: %v", err)
						return
					}
					v, _ := cc.Load32(counterVA)
					cc.Store32(counterVA, v+1)
					m.Unlock(cc)
				}
			}, proc.PRSALL, 0)
		}
		for i := 0; i < workers; i++ {
			c.Wait()
		}
		if v, _ := c.Load32(counterVA); v != workers*iters {
			t.Errorf("counter = %d, want %d (lost updates => lock broken)", v, workers*iters)
		}
	})
}

func TestMutexTryLock(t *testing.T) {
	runSystem(t, func(c *kernel.Context) {
		m := Mutex{VA: vm.DataBase}
		m.Init(c)
		if ok, _ := m.TryLock(c); !ok {
			t.Error("TryLock on free lock failed")
		}
		if ok, _ := m.TryLock(c); ok {
			t.Error("TryLock on held lock succeeded")
		}
		m.Unlock(c)
		if ok, _ := m.TryLock(c); !ok {
			t.Error("TryLock after unlock failed")
		}
	})
}

func TestBarrierRounds(t *testing.T) {
	const workers = 4
	const rounds = 10
	runSystem(t, func(c *kernel.Context) {
		b := Barrier{VA: vm.DataBase, N: workers}
		b.Init(c)
		// Each worker bumps a per-round slot; after each barrier, every
		// worker checks that all slots of the round are complete.
		for w := 0; w < workers; w++ {
			c.Sproc("barrier-worker", func(cc *kernel.Context, _ int64) {
				for r := 0; r < rounds; r++ {
					va := vm.DataBase + 64 + hw.VAddr(4*r)
					cc.Add32(va, 1)
					if err := b.Enter(cc); err != nil {
						t.Errorf("barrier: %v", err)
						return
					}
					if v, _ := cc.Load32(va); v != workers {
						t.Errorf("round %d incomplete at barrier exit: %d", r, v)
						return
					}
				}
			}, proc.PRSALL, int64(w))
		}
		for w := 0; w < workers; w++ {
			c.Wait()
		}
	})
}

func TestCounterSelfScheduling(t *testing.T) {
	const workers = 5
	const items = 500
	runSystem(t, func(c *kernel.Context) {
		cursor := Counter{VA: vm.DataBase}
		doneVA := vm.DataBase + 8
		for w := 0; w < workers; w++ {
			c.Sproc("claimer", func(cc *kernel.Context, _ int64) {
				for {
					n, err := cursor.Next(cc)
					if err != nil {
						t.Errorf("next: %v", err)
						return
					}
					if n > items {
						return
					}
					cc.Add32(doneVA, 1)
				}
			}, proc.PRSALL, 0)
		}
		for w := 0; w < workers; w++ {
			c.Wait()
		}
		if v, _ := c.Load32(doneVA); v != items {
			t.Errorf("processed %d items, want %d", v, items)
		}
	})
}

func TestCounterValue(t *testing.T) {
	runSystem(t, func(c *kernel.Context) {
		ct := Counter{VA: vm.DataBase}
		if v, err := ct.Value(c); err != nil || v != 0 {
			t.Errorf("fresh Value = (%d,%v)", v, err)
		}
		for i := 1; i <= 5; i++ {
			if n, _ := ct.Next(c); n != uint32(i) {
				t.Errorf("Next = %d, want %d", n, i)
			}
		}
		if v, _ := ct.Value(c); v != 5 {
			t.Errorf("Value = %d", v)
		}
	})
}

func TestBarrierReuseAcrossGenerations(t *testing.T) {
	// A single participant: every Enter is the last arrival, so the
	// barrier must reset and advance its generation each time.
	runSystem(t, func(c *kernel.Context) {
		b := Barrier{VA: vm.DataBase, N: 1}
		b.Init(c)
		for i := 0; i < 50; i++ {
			if err := b.Enter(c); err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
		}
		if gen, _ := c.Load32(vm.DataBase + 4); gen != 50 {
			t.Errorf("generation = %d", gen)
		}
		if count, _ := c.Load32(vm.DataBase); count != 0 {
			t.Errorf("count = %d", count)
		}
	})
}
