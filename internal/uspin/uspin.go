// Package uspin provides user-level synchronization on shared memory —
// the highest-bandwidth, lowest-latency mechanism of paper §3: "the best
// performance is obtained using some form of busy-waiting ... with
// hardware support, synchronization speeds can approach memory access
// speeds." Locks and barriers live in the simulated shared address space
// and are manipulated with the hardware's interlocked operations, so no
// kernel interaction is needed on the fast path.
//
// Busy-waiting is only the fast path, though: when a partner is
// descheduled or dead, spinning burns the processor for nothing. The
// hybrid primitives here spin a bounded number of polls, then register in
// a waiter table beside the lock word, publish a waiter bit, and block in
// the kernel with blockproc(2); release performs an unblockproc(2)
// fan-out over the registered waiters. All spin paths are signal
// interruptible (EINTR), so a spinner orphaned by a dead lock holder dies
// on kill instead of looping forever.
package uspin

import (
	"errors"

	"repro/internal/hw"
	"repro/internal/kernel"
)

// SpinRounds is the bounded-spin budget of the hybrid primitives: how
// many kernel.SpinPollBatch-sized rounds Mutex.Lock and Barrier.Enter
// burn before converting the wait to a blockproc sleep. A variable so
// experiments can tune the spin/block tradeoff.
var SpinRounds = 2

// Memory footprints. A Mutex or Barrier owns this many bytes at its VA:
// the lock words plus a small waiter-pid table the blocking slow path
// registers in. Callers placing data beside a primitive must leave the
// whole footprint to it.
const (
	MutexBytes   = 64
	BarrierBytes = 64
)

// Lock-word bits.
const (
	lockHeld    uint32 = 1 << 0 // the mutex is held
	lockWaiters uint32 = 1 << 1 // blocked waiters are registered
)

// Waiter-table capacities (words remaining after the header words).
const (
	mutexMaxWaiters    = MutexBytes/4 - 3
	barrierMaxSleepers = BarrierBytes/4 - 4
)

// ErrZeroBarrier rejects a Barrier with N == 0: the first arrival would
// count itself as 1 ≠ 0 and spin unreleasably.
var ErrZeroBarrier = errors.New("uspin: barrier with N == 0 can never release")

// ─── waiter table ────────────────────────────────────────────────────────

// wtab is a small waiter-pid table in shared memory: a count word and cap
// pid slots, guarded by a spin word. Guard critical sections are a
// handful of memory operations, so a plain spin guard is appropriate.
type wtab struct {
	guard, cnt, tab hw.VAddr
	cap             int
}

// lock acquires the guard. Interruptible: a caught signal surfaces as
// ErrIntr, which is safe before any registration has happened.
func (w wtab) lock(c *kernel.Context) error {
	for {
		ok, err := c.CAS32(w.guard, 0, 1)
		if err != nil || ok {
			return err
		}
		if _, err := c.SpinWait32(w.guard, func(v uint32) bool { return v == 0 }); err != nil {
			return err
		}
	}
}

// lockCleanup acquires the guard on a cancellation or release path,
// absorbing EINTR: the caller is already unwinding on a delivered signal
// and must finish its table surgery regardless; a fatal signal still
// terminates through the delivery unwind.
func (w wtab) lockCleanup(c *kernel.Context) error {
	for {
		err := w.lock(c)
		if err == nil || !errors.Is(err, kernel.ErrInterrupt) {
			return err
		}
	}
}

// unlock releases the guard. Only the holder stores the zero, so a plain
// store is race-free here (unlike the mutex lock word, which mixes CAS
// publishers).
func (w wtab) unlock(c *kernel.Context) error { return c.Store32(w.guard, 0) }

// add registers pid unless already present, reporting whether the table
// had room (an already-present pid counts as room). Caller holds the
// guard.
func (w wtab) add(c *kernel.Context, pid uint32) (bool, error) {
	n, err := c.Load32(w.cnt)
	if err != nil {
		return false, err
	}
	for i := uint32(0); i < n; i++ {
		v, err := c.Load32(w.tab + hw.VAddr(4*i))
		if err != nil {
			return false, err
		}
		if v == pid {
			return true, nil
		}
	}
	if int(n) >= w.cap {
		return false, nil
	}
	if err := c.Store32(w.tab+hw.VAddr(4*n), pid); err != nil {
		return false, err
	}
	return true, c.Store32(w.cnt, n+1)
}

// remove deletes pid if present, preserving FIFO order of the rest.
// Caller holds the guard.
func (w wtab) remove(c *kernel.Context, pid uint32) (bool, error) {
	n, err := c.Load32(w.cnt)
	if err != nil {
		return false, err
	}
	for i := uint32(0); i < n; i++ {
		v, err := c.Load32(w.tab + hw.VAddr(4*i))
		if err != nil {
			return false, err
		}
		if v != pid {
			continue
		}
		for j := i + 1; j < n; j++ {
			s, err := c.Load32(w.tab + hw.VAddr(4*j))
			if err != nil {
				return false, err
			}
			if err := c.Store32(w.tab+hw.VAddr(4*(j-1)), s); err != nil {
				return false, err
			}
		}
		return true, c.Store32(w.cnt, n-1)
	}
	return false, nil
}

// pop removes and returns the oldest registered pid. Caller holds the
// guard.
func (w wtab) pop(c *kernel.Context) (uint32, bool, error) {
	n, err := c.Load32(w.cnt)
	if err != nil || n == 0 {
		return 0, false, err
	}
	pid, err := c.Load32(w.tab)
	if err != nil {
		return 0, false, err
	}
	for j := uint32(1); j < n; j++ {
		s, err := c.Load32(w.tab + hw.VAddr(4*j))
		if err != nil {
			return 0, false, err
		}
		if err := c.Store32(w.tab+hw.VAddr(4*(j-1)), s); err != nil {
			return 0, false, err
		}
	}
	return pid, true, c.Store32(w.cnt, n-1)
}

// size returns the registered-waiter count. Caller holds the guard.
func (w wtab) size(c *kernel.Context) (uint32, error) { return c.Load32(w.cnt) }

// ─── mutex ───────────────────────────────────────────────────────────────

// Mutex is a hybrid spin-then-block mutual-exclusion lock occupying
// MutexBytes of (usually shared) process memory. Layout, in words from
// VA:
//
//	+0   lock word: bit 0 held, bit 1 waiters registered
//	+4   waiter-table guard
//	+8   waiter count
//	+12… waiter pids (mutexMaxWaiters slots)
//
// The protocol: acquirers spin a bounded budget, then register their pid,
// publish the waiter bit with an interlocked update, and blockproc;
// release clears the held bit with a CAS that preserves the waiter bit,
// then pops and unblockprocs the oldest waiter. The waiter bit is retired
// only when the table is observed empty under the guard, so a concurrent
// registration can never be stranded bitless.
type Mutex struct {
	VA hw.VAddr
}

func (m Mutex) tab() wtab {
	return wtab{guard: m.VA + 4, cnt: m.VA + 8, tab: m.VA + 12, cap: mutexMaxWaiters}
}

// Init clears the lock word and waiter table.
func (m Mutex) Init(c *kernel.Context) error {
	for off := hw.VAddr(0); off < MutexBytes; off += 4 {
		if err := c.Store32(m.VA+off, 0); err != nil {
			return err
		}
	}
	return nil
}

// Lock acquires the mutex adaptively (paper §3: busy-waiting is only the
// fast path): an interlocked fast path, a bounded test-and-test-and-set
// spin of SpinRounds rounds, then conversion to a blockproc sleep. It
// returns ErrIntr (EINTR) when a caught signal interrupts the wait, with
// any waiter registration withdrawn.
func (m Mutex) Lock(c *kernel.Context) error {
	ok, err := c.CAS32(m.VA, 0, lockHeld)
	if err != nil || ok {
		return err
	}
	free := func(v uint32) bool { return v&lockHeld == 0 }
	for r := 0; r < SpinRounds; r++ {
		v, hit, err := c.SpinWaitBounded(m.VA, free, 1)
		if err != nil {
			return err
		}
		if !hit {
			continue
		}
		ok, err := c.CAS32(m.VA, v, v|lockHeld)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
	c.NoteSpinToBlock()
	return m.lockBlocking(c)
}

// LockSpin acquires the mutex by pure busy-waiting — the paper's original
// §3 discipline, kept for the spin-only arm of the overcommit experiment
// (and as the fallback when the waiter table is full). Signal
// interruptible like every spin path.
func (m Mutex) LockSpin(c *kernel.Context) error {
	for {
		v, err := c.SpinWait32(m.VA, func(v uint32) bool { return v&lockHeld == 0 })
		if err != nil {
			return err
		}
		ok, err := c.CAS32(m.VA, v, v|lockHeld)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
}

// TryLock attempts one acquisition without waiting.
func (m Mutex) TryLock(c *kernel.Context) (bool, error) {
	v, err := c.Load32(m.VA)
	if err != nil || v&lockHeld != 0 {
		return false, err
	}
	return c.CAS32(m.VA, v, v|lockHeld)
}

// lockBlocking is the spin-to-block slow path: register, publish the
// waiter bit, sleep, retry. The registration/publication order matters —
// the waiter bit is only ever set by a registered waiter, and only ever
// retired when the table is empty, so release cannot miss a waiter.
func (m Mutex) lockBlocking(c *kernel.Context) error {
	w := m.tab()
	self := uint32(c.P.PID)
	registered := false
	for {
		if !registered {
			if err := w.lock(c); err != nil {
				return err
			}
			room, err := w.add(c, self)
			if uerr := w.unlock(c); err == nil {
				err = uerr
			}
			if err != nil {
				return err
			}
			if !room {
				// Table full: degrade to pure spinning.
				return m.LockSpin(c)
			}
			registered = true
		}
		v, err := c.Load32(m.VA)
		if err != nil {
			return m.abortLock(c, self, err)
		}
		switch {
		case v&lockHeld == 0:
			ok, err := c.CAS32(m.VA, v, v|lockHeld)
			if err != nil {
				return m.abortLock(c, self, err)
			}
			if ok {
				return m.deregister(c, self)
			}
		case v&lockWaiters == 0:
			// Publish the waiter bit so the holder's release takes the
			// wake path. Interlocked, so a racing release (which updates
			// the word by CAS too) cannot clobber it.
			if _, err := c.CAS32(m.VA, v, v|lockWaiters); err != nil {
				return m.abortLock(c, self, err)
			}
		default:
			if err := c.Blockproc(0); err != nil {
				return m.abortLock(c, self, err)
			}
			// Woken: the release popped us from the table before the
			// unblock, so re-register before sleeping again. A stale
			// banked wake (add finds us still present) is tolerated: the
			// loop re-checks the lock word before every sleep.
			registered = false
		}
	}
}

// deregister withdraws an acquirer that just took the lock, retiring the
// waiter bit when it was the last registered waiter.
func (m Mutex) deregister(c *kernel.Context, self uint32) error {
	w := m.tab()
	if err := w.lockCleanup(c); err != nil {
		return err
	}
	if _, err := w.remove(c, self); err != nil {
		w.unlock(c)
		return err
	}
	n, err := w.size(c)
	if err != nil {
		w.unlock(c)
		return err
	}
	if n == 0 {
		if err := m.clearWaiterBit(c); err != nil {
			w.unlock(c)
			return err
		}
	}
	return w.unlock(c)
}

// clearWaiterBit retires the waiter bit with an interlocked update.
// Caller holds the table guard with the table empty, so no registered
// waiter can be stranded: registration happens under the same guard, and
// the bit is only published by registered waiters.
func (m Mutex) clearWaiterBit(c *kernel.Context) error {
	for {
		v, err := c.Load32(m.VA)
		if err != nil {
			return err
		}
		if v&lockWaiters == 0 {
			return nil
		}
		ok, err := c.CAS32(m.VA, v, v&^lockWaiters)
		if err != nil || ok {
			return err
		}
	}
}

// abortLock withdraws a cancelled waiter (EINTR, fault) and passes any
// wake meant for it along to the next registered waiter, so a release's
// wakeup does not die with the interrupted process. A redundant wake is
// harmless — it banks on the target, whose sleep loop re-checks the lock
// word — but a lost one would strand a sleeper forever.
func (m Mutex) abortLock(c *kernel.Context, self uint32, cause error) error {
	w := m.tab()
	if err := w.lockCleanup(c); err != nil {
		return cause
	}
	if _, err := w.remove(c, self); err != nil {
		w.unlock(c)
		return cause
	}
	pid, ok, err := w.pop(c)
	if err != nil {
		w.unlock(c)
		return cause
	}
	if !ok {
		m.clearWaiterBit(c)
	}
	w.unlock(c)
	if ok {
		c.Unblockproc(int(pid)) // ESRCH (died while registered) is fine
	}
	return cause
}

// Unlock releases the mutex with an interlocked update that preserves
// the waiter bit — a plain store could clobber a bit published between
// the load and the store — and wakes the oldest registered waiter when
// the bit is set.
func (m Mutex) Unlock(c *kernel.Context) error {
	for {
		v, err := c.Load32(m.VA)
		if err != nil {
			return err
		}
		ok, err := c.CAS32(m.VA, v, v&^lockHeld)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if v&lockWaiters == 0 {
			return nil
		}
		return m.wakeOne(c)
	}
}

// wakeOne pops the oldest registered waiter and unblocks it, skipping
// pids that died while registered (ESRCH) and retiring the waiter bit if
// the table has drained (every waiter cancelled).
func (m Mutex) wakeOne(c *kernel.Context) error {
	w := m.tab()
	for {
		if err := w.lockCleanup(c); err != nil {
			return err
		}
		pid, ok, err := w.pop(c)
		if err != nil {
			w.unlock(c)
			return err
		}
		if !ok {
			err := m.clearWaiterBit(c)
			if uerr := w.unlock(c); err == nil {
				err = uerr
			}
			return err
		}
		if err := w.unlock(c); err != nil {
			return err
		}
		err = c.Unblockproc(int(pid))
		if err == nil || !errors.Is(err, kernel.ESRCH) {
			return err
		}
	}
}

// ─── barrier ─────────────────────────────────────────────────────────────

// Barrier is a sense-reversing barrier for N participants occupying
// BarrierBytes of shared memory. Layout, in words from VA:
//
//	+0   arrival count
//	+4   generation
//	+8   sleeper-table guard
//	+12  sleeper count
//	+16… sleeper pids (barrierMaxSleepers slots)
//
// Generation wraparound contract: the generation word is a free-running
// uint32, incremented once per completed episode and compared only for
// inequality against the value sampled at entry. Wraparound at 2^32 is
// therefore harmless as long as no waiter can sleep through 2^32
// consecutive episodes — guaranteed, because every episode requires all N
// members (the waiter included) to arrive.
type Barrier struct {
	VA hw.VAddr
	N  uint32
}

func (b Barrier) tab() wtab {
	return wtab{guard: b.VA + 8, cnt: b.VA + 12, tab: b.VA + 16, cap: barrierMaxSleepers}
}

// Init clears the barrier words and sleeper table.
func (b Barrier) Init(c *kernel.Context) error {
	for off := hw.VAddr(0); off < BarrierBytes; off += 4 {
		if err := c.Store32(b.VA+off, 0); err != nil {
			return err
		}
	}
	return nil
}

// Enter blocks until all N participants have arrived: a bounded spin on
// the generation word, then a blockproc sleep with the last arrival
// performing the unblockproc fan-out. Returns ErrZeroBarrier for N == 0
// and ErrIntr (EINTR) when a caught signal interrupts the wait.
func (b Barrier) Enter(c *kernel.Context) error { return b.enter(c, true) }

// EnterSpin is Enter with pure busy-waiting — the paper's original
// discipline, kept for the spin-only experiment arm. The release path
// still wakes hybrid sleepers, so modes can mix within one barrier.
func (b Barrier) EnterSpin(c *kernel.Context) error { return b.enter(c, false) }

func (b Barrier) enter(c *kernel.Context, hybrid bool) error {
	if b.N == 0 {
		return ErrZeroBarrier
	}
	gen, err := c.Load32(b.VA + 4)
	if err != nil {
		return err
	}
	n, err := c.Add32(b.VA, 1)
	if err != nil {
		return err
	}
	if n == b.N {
		// Last arrival: reset the count, advance the generation, wake
		// the sleepers.
		if err := c.Store32(b.VA, 0); err != nil {
			return err
		}
		if err := c.Store32(b.VA+4, gen+1); err != nil {
			return err
		}
		return b.wakeSleepers(c)
	}
	advanced := func(g uint32) bool { return g != gen }
	if !hybrid {
		_, err := c.SpinWait32(b.VA+4, advanced)
		return err
	}
	_, done, err := c.SpinWaitBounded(b.VA+4, advanced, SpinRounds)
	if err != nil || done {
		return err
	}
	c.NoteSpinToBlock()
	return b.sleep(c, gen)
}

// sleep blocks a non-last arrival until the generation advances past gen.
// The generation is re-checked under the table guard before every sleep,
// so a release that raced ahead of the registration is never missed: the
// releaser advances the generation before taking the guard to pop.
func (b Barrier) sleep(c *kernel.Context, gen uint32) error {
	w := b.tab()
	self := uint32(c.P.PID)
	for {
		if err := w.lock(c); err != nil {
			return err
		}
		g, err := c.Load32(b.VA + 4)
		if err != nil {
			w.unlock(c)
			return err
		}
		if g != gen {
			// Released while (re-)registering: withdraw and go.
			_, rerr := w.remove(c, self)
			if uerr := w.unlock(c); rerr == nil {
				rerr = uerr
			}
			return rerr
		}
		room, err := w.add(c, self)
		if uerr := w.unlock(c); err == nil {
			err = uerr
		}
		if err != nil {
			return err
		}
		if !room {
			// Table full: spin out the rest of the wait.
			_, err := c.SpinWait32(b.VA+4, func(g uint32) bool { return g != gen })
			return err
		}
		if err := c.Blockproc(0); err != nil {
			return b.abortSleep(c, self, err)
		}
		// Woken: either this episode released (the loop exits on the
		// generation check) or the wake was a stale banked one —
		// re-register and sleep again.
	}
}

// abortSleep withdraws a cancelled sleeper. No wake hand-off is needed
// (unlike the mutex): the release fan-out wakes every registered sleeper
// individually, so no other sleeper's wake can be riding on this one.
func (b Barrier) abortSleep(c *kernel.Context, self uint32, cause error) error {
	w := b.tab()
	if err := w.lockCleanup(c); err != nil {
		return cause
	}
	w.remove(c, self)
	w.unlock(c)
	return cause
}

// wakeSleepers is the release fan-out: pop every registered sleeper and
// unblockproc each. Pids that died while registered (ESRCH) are skipped.
func (b Barrier) wakeSleepers(c *kernel.Context) error {
	w := b.tab()
	if err := w.lockCleanup(c); err != nil {
		return err
	}
	var pids []uint32
	for {
		pid, ok, err := w.pop(c)
		if err != nil {
			w.unlock(c)
			return err
		}
		if !ok {
			break
		}
		pids = append(pids, pid)
	}
	if err := w.unlock(c); err != nil {
		return err
	}
	for _, pid := range pids {
		if err := c.Unblockproc(int(pid)); err != nil && !errors.Is(err, kernel.ESRCH) {
			return err
		}
	}
	return nil
}

// ─── counter and word ────────────────────────────────────────────────────

// Counter is an atomic counter in shared memory (work-queue cursors, the
// self-scheduling primitive of paper §3).
type Counter struct {
	VA hw.VAddr
}

// Next claims and returns the next value (starting from 1).
func (ct Counter) Next(c *kernel.Context) (uint32, error) {
	return c.Add32(ct.VA, 1)
}

// Value reads the counter.
func (ct Counter) Value(c *kernel.Context) (uint32, error) {
	return c.Load32(ct.VA)
}

// Word is a shared signalling word: phase flags, readiness counts, and
// other one-word conditions programs busy-wait on. It exists so user
// programs never hand-roll raw Context.SpinWait32 loops (enforced by a
// make-lint rule): routing every user-level wait through uspin keeps the
// spin policy — signal interruption, the preemptible drip charge — in one
// place.
type Word struct {
	VA hw.VAddr
}

// Load reads the word.
func (w Word) Load(c *kernel.Context) (uint32, error) { return c.Load32(w.VA) }

// Store writes the word.
func (w Word) Store(c *kernel.Context, v uint32) error { return c.Store32(w.VA, v) }

// Add atomically adds delta, returning the new value.
func (w Word) Add(c *kernel.Context, delta uint32) (uint32, error) {
	return c.Add32(w.VA, delta)
}

// Await spins until pred holds of the word, returning the observed value.
func (w Word) Await(c *kernel.Context, pred func(uint32) bool) (uint32, error) {
	return c.SpinWait32(w.VA, pred)
}

// AwaitEq spins until the word equals v.
func (w Word) AwaitEq(c *kernel.Context, v uint32) error {
	_, err := c.SpinWait32(w.VA, func(x uint32) bool { return x == v })
	return err
}

// AwaitNe spins until the word differs from v, returning the new value.
func (w Word) AwaitNe(c *kernel.Context, v uint32) (uint32, error) {
	return c.SpinWait32(w.VA, func(x uint32) bool { return x != v })
}

// AwaitMin spins until the word is at least v, returning the value seen.
func (w Word) AwaitMin(c *kernel.Context, v uint32) (uint32, error) {
	return c.SpinWait32(w.VA, func(x uint32) bool { return x >= v })
}
