// Package uspin provides user-level busy-wait synchronization on shared
// memory — the highest-bandwidth, lowest-latency mechanism of paper §3:
// "the best performance is obtained using some form of busy-waiting ...
// with hardware support, synchronization speeds can approach memory access
// speeds." Locks and barriers live in the simulated shared address space
// and are manipulated with the hardware's interlocked operations, so no
// kernel interaction is needed on the fast path.
package uspin

import (
	"repro/internal/hw"
	"repro/internal/kernel"
)

// Mutex is a spinlock at a word of (usually shared) process memory.
type Mutex struct {
	VA hw.VAddr
}

// Init clears the lock word.
func (m Mutex) Init(c *kernel.Context) error {
	return c.Store32(m.VA, 0)
}

// Lock busy-waits until the lock word is claimed. Spinning runs through
// the simulated MMU, so it charges cycles and remains preemptible — the
// scenario gang scheduling (paper §8) exists to optimize.
func (m Mutex) Lock(c *kernel.Context) error {
	for {
		ok, err := c.CAS32(m.VA, 0, 1)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		// Spin reading the cached word until it looks free, then retry
		// the interlocked operation (test-and-test-and-set).
		if _, err := c.SpinWait32(m.VA, func(v uint32) bool { return v == 0 }); err != nil {
			return err
		}
	}
}

// TryLock attempts one acquisition.
func (m Mutex) TryLock(c *kernel.Context) (bool, error) {
	return c.CAS32(m.VA, 0, 1)
}

// Unlock releases the lock word.
func (m Mutex) Unlock(c *kernel.Context) error {
	return c.Store32(m.VA, 0)
}

// Barrier is a sense-reversing spin barrier in two words of shared memory:
// VA holds the arrival count, VA+4 the generation.
type Barrier struct {
	VA hw.VAddr
	N  uint32
}

// Init clears the barrier words.
func (b Barrier) Init(c *kernel.Context) error {
	if err := c.Store32(b.VA, 0); err != nil {
		return err
	}
	return c.Store32(b.VA+4, 0)
}

// Enter blocks (spinning) until all N participants have arrived.
func (b Barrier) Enter(c *kernel.Context) error {
	gen, err := c.Load32(b.VA + 4)
	if err != nil {
		return err
	}
	n, err := c.Add32(b.VA, 1)
	if err != nil {
		return err
	}
	if n == b.N {
		// Last arrival: reset the count and advance the generation.
		if err := c.Store32(b.VA, 0); err != nil {
			return err
		}
		return c.Store32(b.VA+4, gen+1)
	}
	_, err = c.SpinWait32(b.VA+4, func(g uint32) bool { return g != gen })
	return err
}

// Counter is an atomic counter in shared memory (work-queue cursors, the
// self-scheduling primitive of paper §3).
type Counter struct {
	VA hw.VAddr
}

// Next claims and returns the next value (starting from 1).
func (ct Counter) Next(c *kernel.Context) (uint32, error) {
	return c.Add32(ct.VA, 1)
}

// Value reads the counter.
func (ct Counter) Value(c *kernel.Context) (uint32, error) {
	return c.Load32(ct.VA)
}
