package uspin

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/vm"
)

// Tests for the hybrid spin-then-block layer: signal interruption of both
// spinning and blocked waiters, dead-waiter tolerance on unlock, and the
// race storm that guards the no-lost-wakeups invariant.

// TestKillSpinningMember is the regression for the headline bug: a pure
// spinner on a lock that will never be released must die promptly on
// SIGTERM instead of spinning forever. The signal poll sits at every
// spin-batch refresh — well under one scheduling quantum — so the kill
// must land long before the deadlock guard.
func TestKillSpinningMember(t *testing.T) {
	start := time.Now()
	runSystem(t, func(c *kernel.Context) {
		m := Mutex{VA: vm.DataBase}
		m.Init(c)
		gateVA := vm.DataBase + MutexBytes
		m.Lock(c) // held forever: the spinner can never win
		pid, _ := c.Sproc("spinner", func(cc *kernel.Context, _ int64) {
			cc.Store32(gateVA, 1)
			m.LockSpin(cc) // fatal signal ends this, nothing else will
			t.Error("spinner acquired a lock that was never released")
		}, proc.PRSALL, 0)
		c.SpinWait32(gateVA, func(v uint32) bool { return v == 1 })
		c.Kill(pid, proc.SIGTERM)
		wpid, status, err := c.Wait()
		if err != nil || wpid != pid || status != 128+proc.SIGTERM {
			t.Errorf("Wait = (%d,%d,%v), want (%d,%d,nil)", wpid, status, err, pid, 128+proc.SIGTERM)
		}
		m.Unlock(c)
	})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("killing a spinner took %v — signal poll in the spin path is broken", elapsed)
	}
}

// TestKillBlockedWaiter kills a member asleep in blockproc under
// Mutex.Lock, then verifies Unlock tolerates the dead pid left in the
// waiter table (unblockproc returns ESRCH and the release moves on).
func TestKillBlockedWaiter(t *testing.T) {
	runSystem(t, func(c *kernel.Context) {
		m := Mutex{VA: vm.DataBase}
		m.Init(c)
		m.Lock(c)
		pid, _ := c.Sproc("waiter", func(cc *kernel.Context, _ int64) {
			m.Lock(cc) // spins its budget, then blocks; SIGTERM is fatal
			t.Error("waiter acquired the lock after a fatal signal")
		}, proc.PRSALL, 0)
		target, ok := c.S.Lookup(pid)
		if !ok {
			t.Fatal("waiter vanished")
		}
		for target.BlockCnt() >= 0 {
			runtime.Gosched() // wait until it is demonstrably asleep
		}
		c.Kill(pid, proc.SIGTERM)
		wpid, status, err := c.Wait()
		if err != nil || wpid != pid || status != 128+proc.SIGTERM {
			t.Errorf("Wait = (%d,%d,%v), want (%d,%d,nil)", wpid, status, err, pid, 128+proc.SIGTERM)
		}
		// The dead waiter may still be registered; Unlock must skip it.
		if err := m.Unlock(c); err != nil {
			t.Errorf("Unlock over a dead waiter: %v", err)
		}
		if ok, _ := m.TryLock(c); !ok {
			t.Error("lock not reacquirable after a waiter died in it")
		}
	})
}

// TestMutexLockEINTR interrupts a blocked Lock with a caught signal: the
// EINTR must propagate out of Lock, and the lock must stay fully usable.
func TestMutexLockEINTR(t *testing.T) {
	var gotEINTR atomic.Bool
	runSystem(t, func(c *kernel.Context) {
		m := Mutex{VA: vm.DataBase}
		m.Init(c)
		m.Lock(c)
		pid, _ := c.Sproc("waiter", func(cc *kernel.Context, _ int64) {
			cc.Signal(proc.SIGUSR1, func(int) {})
			err := m.Lock(cc)
			if errors.Is(err, kernel.ErrInterrupt) {
				gotEINTR.Store(true)
				return
			}
			if err != nil {
				t.Errorf("Lock = %v, want ErrInterrupt", err)
				return
			}
			m.Unlock(cc) // lost the race: signal landed before the block
		}, proc.PRSALL, 0)
		target, _ := c.S.Lookup(pid)
		for target.BlockCnt() >= 0 {
			runtime.Gosched()
		}
		c.Kill(pid, proc.SIGUSR1)
		c.Wait()
		if err := m.Unlock(c); err != nil {
			t.Errorf("Unlock after interrupted waiter: %v", err)
		}
		if ok, _ := m.TryLock(c); !ok {
			t.Error("lock unusable after EINTR'd waiter")
		}
	})
	if !gotEINTR.Load() {
		t.Fatal("signal did not interrupt the blocked Lock with EINTR")
	}
}

// TestBarrierEnterEINTR interrupts a barrier sleeper with a caught
// signal; the barrier must still release cleanly for the remaining
// arrival (the aborted member's count contribution stands).
func TestBarrierEnterEINTR(t *testing.T) {
	var gotEINTR atomic.Bool
	runSystem(t, func(c *kernel.Context) {
		b := Barrier{VA: vm.DataBase, N: 2}
		b.Init(c)
		pid, _ := c.Sproc("member", func(cc *kernel.Context, _ int64) {
			cc.Signal(proc.SIGUSR1, func(int) {})
			err := b.Enter(cc)
			if errors.Is(err, kernel.ErrInterrupt) {
				gotEINTR.Store(true)
			} else if err != nil {
				t.Errorf("Enter = %v, want ErrInterrupt or nil", err)
			}
		}, proc.PRSALL, 0)
		target, _ := c.S.Lookup(pid)
		for target.BlockCnt() >= 0 {
			runtime.Gosched()
		}
		c.Kill(pid, proc.SIGUSR1)
		c.Wait()
		// Our own arrival completes the generation; must not hang.
		if err := b.Enter(c); err != nil {
			t.Errorf("final Enter: %v", err)
		}
	})
	if !gotEINTR.Load() {
		t.Fatal("signal did not interrupt the blocked Enter with EINTR")
	}
}

func TestBarrierZeroN(t *testing.T) {
	runSystem(t, func(c *kernel.Context) {
		b := Barrier{VA: vm.DataBase, N: 0}
		b.Init(c)
		if err := b.Enter(c); !errors.Is(err, ErrZeroBarrier) {
			t.Errorf("Enter(N=0) = %v, want ErrZeroBarrier", err)
		}
		if err := b.EnterSpin(c); !errors.Is(err, ErrZeroBarrier) {
			t.Errorf("EnterSpin(N=0) = %v, want ErrZeroBarrier", err)
		}
	})
}

// TestHybridMutexStormRace is the -race contention storm: 8 members on 4
// CPUs hammer one hybrid lock. Any lost wakeup deadlocks the run (the
// harness fails it), any lost update breaks the counter, and overcommit
// must force at least one spin-to-block conversion.
func TestHybridMutexStormRace(t *testing.T) {
	const workers = 8
	const iters = 150
	s := runSystem(t, func(c *kernel.Context) {
		m := Mutex{VA: vm.DataBase}
		counterVA := vm.DataBase + MutexBytes
		scratchVA := counterVA + 4
		m.Init(c)
		for w := 0; w < workers; w++ {
			c.Sproc("stormer", func(cc *kernel.Context, _ int64) {
				for i := 0; i < iters; i++ {
					if err := m.Lock(cc); err != nil {
						t.Errorf("lock: %v", err)
						return
					}
					v, _ := cc.Load32(counterVA)
					// Enough held work that holders get preempted
					// mid-section and waiters outlive their spin budget.
					for g := 0; g < 60; g++ {
						cc.Store32(scratchVA, uint32(g))
					}
					cc.Store32(counterVA, v+1)
					if err := m.Unlock(cc); err != nil {
						t.Errorf("unlock: %v", err)
						return
					}
				}
			}, proc.PRSALL, int64(w))
		}
		for w := 0; w < workers; w++ {
			c.Wait()
		}
		if v, _ := c.Load32(counterVA); v != workers*iters {
			t.Errorf("counter = %d, want %d (lost update)", v, workers*iters)
		}
	})
	if st := s.Stats(); st.SpinToBlocks == 0 {
		t.Errorf("8 members on 4 CPUs never converted a spin to a block (s2b=%d)", st.SpinToBlocks)
	}
}
