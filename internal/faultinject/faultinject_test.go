package faultinject

import (
	"testing"
)

// Same seed, same call sequence → identical decisions and identical log.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]bool, []Record) {
		p := New(42, 200)
		p.EnableLog(1024)
		var hits []bool
		for i := 0; i < 500; i++ {
			site := Site(i % int(NSites))
			hit, _ := p.Decide(site, uint32(i%7))
			hits = append(hits, hit)
			if hit {
				p.Note(site, FaultEINTR, uint32(i%7))
			}
		}
		return hits, p.Log()
	}
	h1, l1 := run()
	h2, l2 := run()
	if len(h1) != len(h2) {
		t.Fatalf("decision counts differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("decision %d differs across identical runs", i)
		}
	}
	if len(l1) == 0 {
		t.Fatalf("rate 200/1000 over 500 decisions injected nothing")
	}
	if len(l1) != len(l2) {
		t.Fatalf("log lengths differ: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("log record %d differs: %+v vs %+v", i, l1[i], l2[i])
		}
	}
}

// Different seeds should produce different decision sequences.
func TestSeedMatters(t *testing.T) {
	a, b := New(1, 500), New(2, 500)
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		ha, _ := a.Decide(SiteSyscallEnter, 0)
		hb, _ := b.Decide(SiteSyscallEnter, 0)
		if ha == hb {
			same++
		}
	}
	if same == n {
		t.Fatalf("seeds 1 and 2 produced identical decision sequences")
	}
}

func TestRatesAndCounters(t *testing.T) {
	p := New(7, 0)
	if p.Armed(SiteFrameAlloc) {
		t.Fatalf("zero-rate plan reports armed")
	}
	hit, _ := p.Decide(SiteFrameAlloc, 0)
	if hit {
		t.Fatalf("disarmed site injected")
	}
	if p.Checks(SiteFrameAlloc) != 0 {
		t.Fatalf("disarmed Decide consumed a sequence draw")
	}

	p.SetRate(SiteFrameAlloc, 1000)
	if got := p.Rate(SiteFrameAlloc); got != 1000 {
		t.Fatalf("Rate = %d, want 1000", got)
	}
	for i := 0; i < 10; i++ {
		hit, _ := p.Decide(SiteFrameAlloc, uint32(i))
		if !hit {
			t.Fatalf("rate-1000 site missed at decision %d", i)
		}
		p.Note(SiteFrameAlloc, FaultENOMEM, uint32(i))
	}
	if p.Checks(SiteFrameAlloc) != 10 || p.Injected(SiteFrameAlloc) != 10 {
		t.Fatalf("counters = %d/%d, want 10/10",
			p.Checks(SiteFrameAlloc), p.Injected(SiteFrameAlloc))
	}
	if p.TotalInjected() != 10 || p.TotalChecks() != 10 {
		t.Fatalf("totals = %d/%d, want 10/10", p.TotalChecks(), p.TotalInjected())
	}

	st := p.Stats()
	if len(st) != int(NSites) {
		t.Fatalf("Stats rows = %d, want %d", len(st), NSites)
	}
	if st[SiteFrameAlloc].Injected != 10 || st[SiteFrameAlloc].Name != "framealloc" {
		t.Fatalf("framealloc row = %+v", st[SiteFrameAlloc])
	}

	// Clamping.
	p.SetRate(SiteDispatch, 5000)
	if p.Rate(SiteDispatch) != 1000 {
		t.Fatalf("rate not clamped to 1000: %d", p.Rate(SiteDispatch))
	}
	p.SetRate(SiteDispatch, -3)
	if p.Rate(SiteDispatch) != 0 {
		t.Fatalf("negative rate not clamped to 0: %d", p.Rate(SiteDispatch))
	}
}

// The Recorder observes every Note.
func TestRecorder(t *testing.T) {
	p := New(3, 1000)
	var got []Fault
	p.Recorder = func(site Site, fault Fault, key uint32) {
		got = append(got, fault)
	}
	p.Note(SiteIPCData, FaultShortIO, 9)
	p.Note(SiteSyscallEnter, FaultEAGAIN, 4)
	if len(got) != 2 || got[0] != FaultShortIO || got[1] != FaultEAGAIN {
		t.Fatalf("recorder saw %v", got)
	}
}

// Nil plans are safe at every entry point (the kernel's unarmed fast path).
func TestNilPlan(t *testing.T) {
	var p *Plan
	if hit, _ := p.Decide(SiteSyscallEnter, 1); hit {
		t.Fatalf("nil plan injected")
	}
	p.Note(SiteSyscallEnter, FaultEINTR, 1)
	if p.Armed(SiteSyscallEnter) || p.Checks(SiteSyscallEnter) != 0 || p.Injected(SiteSyscallEnter) != 0 {
		t.Fatalf("nil plan reports state")
	}
	if p.Stats() != nil {
		t.Fatalf("nil plan returned stats")
	}
}

func TestNames(t *testing.T) {
	for s := Site(0); s < NSites; s++ {
		if s.String() == "" {
			t.Fatalf("site %d has no name", s)
		}
	}
	for f := FaultNone; f < nFaults; f++ {
		if f.String() == "" {
			t.Fatalf("fault %d has no name", f)
		}
	}
	if Site(200).String() != "site(200)" || Fault(200).String() != "fault(200)" {
		t.Fatalf("out-of-range names wrong")
	}
}
