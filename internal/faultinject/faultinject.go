// Package faultinject is a seeded, deterministic fault-injection plan for
// the simulated kernel. Subsystems that can fail under resource pressure
// (the syscall gateway, the frame allocator, the dispatcher, the blocking
// IPC paths) each own a named injection Site; at every site they ask the
// plan whether this particular crossing should fault.
//
// Decisions are pure functions of (seed, site, per-site sequence number,
// caller key) — no wall clock, no global PRNG — so a run with a given seed
// injects the same faults at the same crossings every time, and a chaos
// soak that exposes a degradation bug is replayable from its seed alone.
// Per-site sequence counters (rather than one global counter) keep a
// single-threaded driver fully deterministic even while other sites fire.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Site names one injection point in the kernel.
type Site uint8

const (
	// SiteSyscallEnter injects EINTR/EAGAIN/ENOMEM (per the descriptor's
	// injectable set) at the gateway, before the syscall body runs.
	SiteSyscallEnter Site = iota
	// SiteSyscallExit injects extra return-to-user latency at the gateway
	// exit. Delay only: a call whose body completed must never report a
	// failure it did not have (UNIX forbids EINTR after completion).
	SiteSyscallExit
	// SiteFrameAlloc injects frame-allocation failure: the allocator first
	// drains the per-CPU caches back to the pool (the reclaim fallback),
	// and a fraction of hits still surface as hard ENOMEM.
	SiteFrameAlloc
	// SiteDispatch injects a forced short time slice and a dispatch stall
	// when the scheduler places a process on a CPU.
	SiteDispatch
	// SiteIPCSleep injects a spurious wakeup where a blocking IPC path
	// (pipe, message queue, semaphore, accept) is about to sleep.
	SiteIPCSleep
	// SiteIPCData injects short reads and short writes on pipe data moves.
	SiteIPCData
	// SiteBlockSleep injects a spurious wakeup where blockproc(2) is about
	// to sleep — the sleeper must re-check its count and go back down.
	SiteBlockSleep
	// SitePollSleep injects a spurious wakeup where poll(2) is about to
	// sleep on its readiness set — the poller must re-scan and go back
	// down when nothing is ready.
	SitePollSleep
	// SiteCkpt injects at checkpoint pass boundaries: a delay charged to
	// the initiator (stretching the pre-copy window so members re-dirty
	// more), or a transient EAGAIN that aborts the checkpoint after the
	// group is thawed — the abort path the soak's validation layers must
	// survive.
	SiteCkpt

	// NSites bounds the per-site arrays.
	NSites
)

var siteNames = [...]string{
	"sysenter", "sysexit", "framealloc", "dispatch", "ipcsleep", "ipcdata",
	"blocksleep", "pollsleep", "ckpt",
}

func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Fault names what was injected at a site.
type Fault uint8

const (
	FaultNone    Fault = iota
	FaultEINTR         // interrupted system call
	FaultEAGAIN        // transient resource shortage
	FaultENOMEM        // hard allocation failure
	FaultReclaim       // transient allocation failure absorbed by cache reclaim
	FaultDelay         // extra latency charged
	FaultPreempt       // forced short slice at dispatch
	FaultWakeup        // spurious wakeup before an IPC sleep
	FaultShortIO       // short read/write

	nFaults
)

var faultNames = [...]string{
	"none", "EINTR", "EAGAIN", "ENOMEM", "reclaim", "delay", "preempt",
	"wakeup", "shortio",
}

func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Record is one injected fault in the plan's optional log, identified by
// the site's decision sequence number — the replay identity a determinism
// test compares across runs.
type Record struct {
	Site  Site
	Seq   uint64 // the site's decision counter when the fault was drawn
	Fault Fault
	Key   uint32 // caller-supplied locus (syscall number, pid, cpu, ...)
}

// SiteStats is one site's counters in a Stats snapshot.
type SiteStats struct {
	Site     Site
	Name     string
	Checks   int64 // decisions taken at the site
	Injected int64 // faults actually injected
}

// siteState is one site's decision state, padded so the per-site atomics
// of concurrently firing sites do not share cache lines.
type siteState struct {
	rate     atomic.Uint32 // per-mille injection probability
	seq      atomic.Uint64 // decisions taken (the deterministic sequence)
	injected atomic.Int64
	_        [64]byte
}

// Plan is a seeded fault-injection plan. The zero-rate plan is armed
// nowhere and costs one atomic load per site crossing.
type Plan struct {
	seed  uint64
	sites [NSites]siteState

	// Recorder, when set, observes every injected fault (the kernel wires
	// it to the trace ring as EvFaultInject events).
	Recorder func(site Site, fault Fault, key uint32)

	logMu  sync.Mutex
	logCap int
	log    []Record
}

// New returns a plan for seed with the same per-mille rate armed at every
// site. Rate 0 arms nothing; use SetRate for per-site tailoring.
func New(seed uint64, permille int) *Plan {
	p := &Plan{seed: seed}
	for s := Site(0); s < NSites; s++ {
		p.SetRate(s, permille)
	}
	return p
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// SetRate arms site with a per-mille injection probability, clamped to
// [0, 1000]. Rate 0 disarms the site.
func (p *Plan) SetRate(site Site, permille int) {
	if site >= NSites {
		return
	}
	if permille < 0 {
		permille = 0
	}
	if permille > 1000 {
		permille = 1000
	}
	p.sites[site].rate.Store(uint32(permille))
}

// Rate returns site's per-mille injection probability.
func (p *Plan) Rate(site Site) int {
	if site >= NSites {
		return 0
	}
	return int(p.sites[site].rate.Load())
}

// Armed reports whether site can inject at all.
func (p *Plan) Armed(site Site) bool { return p != nil && p.Rate(site) > 0 }

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality bijective mix. Determinism needs nothing fancier.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Decide draws the site's next decision: whether to inject at this
// crossing, plus the raw draw the caller may use to shape the fault
// (which errno, how short a read). key localizes the decision (syscall
// number, pid) without perturbing the site's sequence.
func (p *Plan) Decide(site Site, key uint32) (hit bool, draw uint64) {
	if p == nil || site >= NSites {
		return false, 0
	}
	st := &p.sites[site]
	rate := st.rate.Load()
	if rate == 0 {
		return false, 0
	}
	seq := st.seq.Add(1)
	draw = splitmix64(p.seed ^ uint64(site)<<56 ^ seq<<16 ^ uint64(key))
	return draw%1000 < uint64(rate), draw
}

// Note counts an injected fault at site and publishes it to the Recorder
// and the log. Callers invoke it only for decisions that actually injected
// (a Decide hit the caller chose to honour).
func (p *Plan) Note(site Site, fault Fault, key uint32) {
	if p == nil || site >= NSites {
		return
	}
	st := &p.sites[site]
	st.injected.Add(1)
	if p.logCap > 0 {
		p.logMu.Lock()
		if len(p.log) < p.logCap {
			p.log = append(p.log, Record{Site: site, Seq: st.seq.Load(), Fault: fault, Key: key})
		}
		p.logMu.Unlock()
	}
	if r := p.Recorder; r != nil {
		r(site, fault, key)
	}
}

// EnableLog arms the bounded injection log (n records); the determinism
// test replays a run and compares logs.
func (p *Plan) EnableLog(n int) {
	p.logMu.Lock()
	p.logCap = n
	p.log = make([]Record, 0, n)
	p.logMu.Unlock()
}

// Log returns a copy of the injection log.
func (p *Plan) Log() []Record {
	p.logMu.Lock()
	defer p.logMu.Unlock()
	return append([]Record(nil), p.log...)
}

// Checks returns the number of decisions taken at site.
func (p *Plan) Checks(site Site) int64 {
	if p == nil || site >= NSites {
		return 0
	}
	return int64(p.sites[site].seq.Load())
}

// Injected returns the number of faults injected at site.
func (p *Plan) Injected(site Site) int64 {
	if p == nil || site >= NSites {
		return 0
	}
	return p.sites[site].injected.Load()
}

// Stats snapshots every site's counters.
func (p *Plan) Stats() []SiteStats {
	if p == nil {
		return nil
	}
	out := make([]SiteStats, 0, NSites)
	for s := Site(0); s < NSites; s++ {
		out = append(out, SiteStats{
			Site:     s,
			Name:     s.String(),
			Checks:   p.Checks(s),
			Injected: p.Injected(s),
		})
	}
	return out
}

// TotalInjected sums injected faults over every site.
func (p *Plan) TotalInjected() int64 {
	var n int64
	for s := Site(0); s < NSites; s++ {
		n += p.Injected(s)
	}
	return n
}

// TotalChecks sums decisions over every site.
func (p *Plan) TotalChecks() int64 {
	var n int64
	for s := Site(0); s < NSites; s++ {
		n += p.Checks(s)
	}
	return n
}
