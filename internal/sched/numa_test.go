package sched

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/proc"
)

// fakeGroup satisfies proc.ShareGroup for placement tests.
type fakeGroup struct {
	gang bool
	acct *proc.CPUAcct
}

func (g *fakeGroup) Gang() bool           { return g.gang }
func (g *fakeGroup) SyncEntry(*proc.Proc) {}
func (g *fakeGroup) Leave(*proc.Proc)     {}
func (g *fakeGroup) Size() int            { return 1 }

func (g *fakeGroup) CPUAcct() *proc.CPUAcct {
	if g.acct == nil {
		g.acct = proc.NewCPUAcct()
	}
	return g.acct
}

func TestScanOrderLocality(t *testing.T) {
	m := hw.NewMachineNUMA(16, 1024, 4) // 4 CPUs per node
	s := New(m, 0)
	for cpu := 0; cpu < 16; cpu++ {
		order := s.scanOrder[cpu]
		if len(order) != 15 {
			t.Fatalf("cpu %d: scanOrder has %d entries", cpu, len(order))
		}
		myNode := cpu / 4
		// The first three entries are the node-mates.
		for i := 0; i < 3; i++ {
			if order[i]/4 != myNode {
				t.Fatalf("cpu %d: scanOrder[%d] = %d crosses nodes before mates done", cpu, i, order[i])
			}
		}
		// Distances are non-decreasing after that.
		dist := func(a, b int) int {
			if a > b {
				return a - b
			}
			return b - a
		}
		prev := 0
		for _, c := range order {
			d := dist(c/4, myNode)
			if d < prev {
				t.Fatalf("cpu %d: scanOrder not nearest-first: %v", cpu, order)
			}
			prev = d
		}
	}
}

func TestScanOrderFlatMachine(t *testing.T) {
	m := hw.NewMachine(4, 256)
	s := New(m, 0)
	for cpu := 0; cpu < 4; cpu++ {
		if len(s.scanOrder[cpu]) != 3 {
			t.Fatalf("flat scanOrder[%d] = %v", cpu, s.scanOrder[cpu])
		}
	}
}

func TestHomeNodePlacement(t *testing.T) {
	m := hw.NewMachineNUMA(8, 1024, 4) // 2 CPUs per node
	s := New(m, 0)

	// A process that ran on CPU 5 is homed on node 2.
	p := proc.New(1, "old")
	p.Sched = s
	p.LastCPU.Store(5)
	if n := s.homeNode(p); n != 2 {
		t.Fatalf("homeNode(last=5) = %d, want 2", n)
	}

	// A fresh group member homes where its group-mate runs.
	grp := &fakeGroup{}
	mate := proc.New(2, "mate")
	mate.SetShare(grp)
	s.cpuProc[6].Store(mate) // node 3

	fresh := proc.New(3, "fresh")
	fresh.SetShare(grp)
	if n := s.homeNode(fresh); n != 3 {
		t.Fatalf("homeNode(fresh member) = %d, want 3", n)
	}

	// No history, no group: no preference.
	lone := proc.New(4, "lone")
	if n := s.homeNode(lone); n != -1 {
		t.Fatalf("homeNode(lone) = %d, want -1", n)
	}

	// claimIdleOn claims only within the node.
	cpu := s.claimIdleOn(3)
	if cpu != 6 && cpu != 7 {
		t.Fatalf("claimIdleOn(3) = %d", cpu)
	}
	if again := s.claimIdleOn(3); again == cpu {
		t.Fatalf("claimIdleOn returned the same CPU twice")
	}
	s.setIdle(6)
	s.setIdle(7)
}
