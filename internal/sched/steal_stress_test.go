package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStealingNeverLosesOrDuplicatesWork piles every process onto CPU 0's
// run queue (by faking their dispatch affinity) so the other CPUs can only
// obtain work by stealing, then checks that every body ran exactly once
// and the scheduler drained completely.
func TestStealingNeverLosesOrDuplicatesWork(t *testing.T) {
	const (
		ncpu  = 4
		procs = 64
	)
	s, _ := newSched(ncpu, 100)
	var ran [procs]atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		p := mkProc(s, i+1)
		p.LastCPU.Store(0) // skew every enqueue onto CPU 0's queue
		i := i
		wg.Add(1)
		s.Spawn(p, func() {
			defer wg.Done()
			ran[i].Add(1)
			// A couple of forced preemption points so processes re-enter
			// the queues mid-storm, not just at first dispatch.
			for j := 0; j < 3; j++ {
				p.SliceLeft.Store(0)
				s.Yield(p)
				p.LastCPU.Store(0) // keep the skew on re-entry
			}
		})
	}
	wg.Wait()

	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("process %d ran %d times, want 1", i+1, n)
		}
	}
	if s.Steals.Load() == 0 {
		t.Fatal("no steals despite every enqueue targeting CPU 0")
	}
	if got := s.RunqLen(); got != 0 {
		t.Fatalf("run queue length = %d after drain, want 0", got)
	}
	if got := s.IdleCPUs(); got != ncpu {
		t.Fatalf("idle CPUs = %d after drain, want %d", got, ncpu)
	}
	if got := s.Dispatches.Load(); got < procs {
		t.Fatalf("dispatches = %d, want >= %d", got, procs)
	}
}

// TestAgedWaiterIsNotStarved pins two chatty processes to one CPU's queue
// and parks a third on another queue whose owner never yields; the age
// bound must force the busy CPU to fetch the aged process.
func TestAgedWaiterIsNotStarved(t *testing.T) {
	s, _ := newSched(1, 100)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p := mkProc(s, i+1)
		i := i
		wg.Add(1)
		s.Spawn(p, func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				p.SliceLeft.Store(0)
				s.Yield(p)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	wg.Wait()
	if len(order) != 3 {
		t.Fatalf("finished %d of 3", len(order))
	}
}
