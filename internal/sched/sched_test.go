package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/klock"
	"repro/internal/proc"
)

func newSched(ncpu int, slice int64) (*Sched, *hw.Machine) {
	m := hw.NewMachine(ncpu, 64)
	return New(m, slice), m
}

func mkProc(s *Sched, pid int) *proc.Proc {
	p := proc.New(pid, "t")
	p.Sched = s
	return p
}

func TestParallelismCappedAtNCPU(t *testing.T) {
	const ncpu = 2
	s, _ := newSched(ncpu, 100)
	var inside, maxSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		p := mkProc(s, i+1)
		wg.Add(1)
		s.Spawn(p, func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				n := inside.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(100 * time.Microsecond)
				inside.Add(-1)
				// Exhaust the slice so others run.
				p.SliceLeft.Store(0)
				s.Yield(p)
			}
		})
	}
	wg.Wait()
	if m := maxSeen.Load(); m > ncpu {
		t.Fatalf("observed %d simultaneous processes on %d CPUs", m, ncpu)
	}
	if s.IdleCPUs() != ncpu {
		t.Fatalf("idle = %d after all exit", s.IdleCPUs())
	}
}

func TestBlockReleasesCPU(t *testing.T) {
	s, _ := newSched(1, 1000)
	sem := klock.NewSema(0)
	first := mkProc(s, 1)
	second := mkProc(s, 2)
	order := make(chan int, 4)
	var wg sync.WaitGroup
	wg.Add(2)
	s.Spawn(first, func() {
		defer wg.Done()
		order <- 1
		sem.P(first, "wait for second") // must release the only CPU
		order <- 3
	})
	// Wait until first is sleeping before starting second, so the
	// dispatch order is deterministic.
	for first.State() != proc.SSleep {
		time.Sleep(time.Millisecond)
	}
	s.Spawn(second, func() {
		defer wg.Done()
		order <- 2
		sem.V()
	})
	wg.Wait()
	got := []int{<-order, <-order, <-order}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestPriorityDispatch(t *testing.T) {
	s, _ := newSched(1, 1000)
	gate := klock.NewSema(0)
	hog := mkProc(s, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	s.Spawn(hog, func() {
		defer wg.Done()
		gate.P(hog, "hold cpu until both contenders queued")
	})
	for hog.State() != proc.SSleep {
		time.Sleep(time.Millisecond)
	}
	// Re-grab the CPU with a spinner that yields only when told.
	release := make(chan struct{})
	spinner := mkProc(s, 2)
	wg.Add(1)
	s.Spawn(spinner, func() {
		defer wg.Done()
		gate.V() // let the hog finish; it queues behind us
		<-release
		spinner.SliceLeft.Store(0)
		s.Yield(spinner)
	})
	// Queue low then high priority.
	order := make(chan string, 2)
	low := mkProc(s, 3)
	low.Prio.Store(1)
	high := mkProc(s, 4)
	high.Prio.Store(5)
	wg.Add(2)
	s.Spawn(low, func() { defer wg.Done(); order <- "low" })
	s.Spawn(high, func() { defer wg.Done(); order <- "high" })
	for s.RunqLen() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	first := <-order
	if first != "high" {
		t.Fatalf("first dispatched = %q, want high", first)
	}
	wg.Wait()
}

func TestPreemptionHappens(t *testing.T) {
	s, _ := newSched(1, 50)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		p := mkProc(s, i+1)
		wg.Add(1)
		s.Spawn(p, func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				if p.SliceLeft.Add(-20) <= 0 {
					s.Yield(p)
				}
			}
		})
	}
	wg.Wait()
	if s.Preemptions.Load() == 0 {
		t.Fatal("no preemptions despite slice exhaustion and contention")
	}
}

func TestYieldWithEmptyRunqKeepsCPU(t *testing.T) {
	s, _ := newSched(1, 50)
	p := mkProc(s, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	s.Spawn(p, func() {
		defer wg.Done()
		p.SliceLeft.Store(0)
		s.Yield(p) // nobody waiting: must not deadlock
		if p.SliceLeft.Load() != s.Slice() {
			t.Error("slice not replenished")
		}
	})
	wg.Wait()
	if s.Preemptions.Load() != 0 {
		t.Fatal("counted a preemption with empty runq")
	}
}

func TestGangAffinity(t *testing.T) {
	// Two CPUs. A member of group A holds CPU 0; when CPU 1 frees up
	// with both a group-B process and A's other member queued, gang
	// mode must pick the group-mate even though B queued first.
	s, _ := newSched(2, 1000)
	s.SetGang(true)

	// The id field keeps the struct non-zero-sized so the two groups get
	// distinct addresses.
	type group struct {
		fakeShare
		id int
	}
	ga, gb := &group{id: 1}, &group{id: 2}

	holder := mkProc(s, 1)
	holder.SetShare(ga)
	var wg sync.WaitGroup
	wg.Add(1)
	releaseHolder := make(chan struct{})
	s.Spawn(holder, func() {
		defer wg.Done()
		<-releaseHolder
	})
	for holder.State() != proc.SRun {
		time.Sleep(time.Millisecond)
	}
	occupier := mkProc(s, 2)
	wg.Add(1)
	releaseOccupier := make(chan struct{})
	s.Spawn(occupier, func() {
		defer wg.Done()
		<-releaseOccupier
	})
	for occupier.State() != proc.SRun {
		time.Sleep(time.Millisecond)
	}
	order := make(chan string, 2)
	bMember := mkProc(s, 3)
	bMember.SetShare(gb)
	aMember := mkProc(s, 4)
	aMember.SetShare(ga)
	wg.Add(2)
	s.Spawn(bMember, func() { defer wg.Done(); order <- "b" })
	s.Spawn(aMember, func() { defer wg.Done(); order <- "a" })
	for s.RunqLen() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(releaseOccupier) // frees CPU 1 while holder (group A) still runs
	if first := <-order; first != "a" {
		t.Fatalf("gang dispatch picked %q first, want group-mate 'a'", first)
	}
	close(releaseHolder)
	wg.Wait()
}

type fakeShare struct{}

func (*fakeShare) SyncEntry(*proc.Proc) {}
func (*fakeShare) Leave(*proc.Proc)     {}
func (*fakeShare) Size() int            { return 2 }
func (*fakeShare) Gang() bool           { return false }

var fakeShareAcct = proc.NewCPUAcct()

func (*fakeShare) CPUAcct() *proc.CPUAcct { return fakeShareAcct }

func TestContextSwitchAccounting(t *testing.T) {
	s, m := newSched(1, 1000)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		p := mkProc(s, i+1)
		wg.Add(1)
		s.Spawn(p, func() { defer wg.Done() })
	}
	wg.Wait()
	if got := s.Dispatches.Load(); got < 4 {
		t.Fatalf("dispatches = %d, want >= 4", got)
	}
	if m.CPUs[0].Cycles.Load() < 4*m.Cost.ContextSwitch {
		t.Fatal("context switch cycles not charged")
	}
}

func TestRunningSnapshot(t *testing.T) {
	s, _ := newSched(2, 1000)
	gate := klock.NewSema(0)
	p := mkProc(s, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	s.Spawn(p, func() {
		defer wg.Done()
		gate.P(p, "hold")
	})
	for p.State() != proc.SSleep {
		time.Sleep(time.Millisecond)
	}
	snap := s.Running()
	if len(snap) != 2 || snap[0] != nil || snap[1] != nil {
		t.Fatalf("Running = %v, want both idle while p sleeps", snap)
	}
	gate.V()
	wg.Wait()
}
