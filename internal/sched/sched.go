// Package sched is the multiprocessor scheduler: it multiplexes simulated
// processes (each a goroutine) onto the machine's NCPU processors, so true
// parallelism is capped at NCPU exactly as on the paper's hardware, sleeping
// in the kernel releases the processor, and the time-slice preemption that
// motivates the deferred-synchronization design really happens.
//
// It also implements the gang-scheduling extension sketched in the paper's
// §8 ("the shared address block ... provides a convenient handle for making
// scheduling decisions about the process group as a whole"): in gang mode
// the dispatcher prefers runnable processes whose share group already has a
// member running, so busy-wait synchronization inside a group completes
// quickly instead of spinning against a descheduled partner.
package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/trace"
)

// DefaultSlice is the time-slice length in charge units (simulated cycles
// of user work between preemption checks).
const DefaultSlice = 20000

// Sched dispatches processes onto CPUs.
type Sched struct {
	mu      sync.Mutex
	machine *hw.Machine
	runq    []*proc.Proc // ready processes, scanned by priority
	cpuProc []*proc.Proc // what each CPU is running (nil = idle)
	idle    []int        // idle CPU ids
	gang    bool
	slice   int64

	Dispatches  atomic.Int64
	Preemptions atomic.Int64
	StickyHolds atomic.Int64 // preemptions suppressed by gang stickiness
}

// New creates a scheduler for the machine. slice is the time-slice length
// in charge units; 0 selects DefaultSlice.
func New(machine *hw.Machine, slice int64) *Sched {
	if slice <= 0 {
		slice = DefaultSlice
	}
	s := &Sched{
		machine: machine,
		cpuProc: make([]*proc.Proc, machine.NCPU()),
		slice:   slice,
	}
	for i := machine.NCPU() - 1; i >= 0; i-- {
		s.idle = append(s.idle, i)
	}
	return s
}

// SetGang enables or disables gang-mode dispatch.
func (s *Sched) SetGang(on bool) {
	s.mu.Lock()
	s.gang = on
	s.mu.Unlock()
}

// Slice returns the configured time-slice length.
func (s *Sched) Slice() int64 { return s.slice }

// Spawn runs body as the process p: the goroutine waits for its first
// dispatch, runs, and releases its CPU on return. The caller must have set
// p.Sched to this scheduler.
func (s *Sched) Spawn(p *proc.Proc, body func()) {
	go func() {
		<-p.RunGate
		body()
		s.Exit(p)
	}()
	s.Ready(p)
}

// Ready makes p runnable, dispatching it immediately if a CPU is idle.
func (s *Sched) Ready(p *proc.Proc) {
	s.mu.Lock()
	p.SetState(proc.SReady)
	if n := len(s.idle); n > 0 {
		cpu := s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.dispatch(p, cpu)
		s.mu.Unlock()
		return
	}
	s.runq = append(s.runq, p)
	s.mu.Unlock()
}

// dispatch hands cpu to p. Caller holds s.mu.
func (s *Sched) dispatch(p *proc.Proc, cpu int) {
	s.cpuProc[cpu] = p
	p.SetState(proc.SRun)
	p.CPU.Store(int32(cpu))
	p.Dispatched.Add(1)
	p.SliceLeft.Store(s.slice)
	c := s.machine.CPUs[cpu]
	c.Switches.Add(1)
	c.Charge(s.machine.Cost.ContextSwitch)
	s.Dispatches.Add(1)
	s.machine.Trace.Record(trace.EvDispatch, int32(p.PID), int32(cpu), 0, 0)
	p.RunGate <- cpu
}

// releaseCPU takes p off its CPU, handing the CPU to the best ready
// process or marking it idle. Caller holds s.mu.
func (s *Sched) releaseCPU(p *proc.Proc) {
	cpu := int(p.CPU.Swap(-1))
	if cpu < 0 {
		return
	}
	s.cpuProc[cpu] = nil
	if next := s.pickNext(); next != nil {
		s.dispatch(next, cpu)
		return
	}
	s.idle = append(s.idle, cpu)
}

// pickNext removes and returns the best ready process: highest priority,
// FIFO within a priority, with a gang-affinity boost when enabled. Caller
// holds s.mu.
func (s *Sched) pickNext() *proc.Proc {
	if len(s.runq) == 0 {
		return nil
	}
	best := 0
	bestScore := s.score(s.runq[0])
	for i := 1; i < len(s.runq); i++ {
		if sc := s.score(s.runq[i]); sc > bestScore {
			best, bestScore = i, sc
		}
	}
	p := s.runq[best]
	s.runq = append(s.runq[:best], s.runq[best+1:]...)
	return p
}

// score ranks a ready process. Caller holds s.mu.
func (s *Sched) score(p *proc.Proc) int {
	sc := int(p.Prio.Load()) * 2
	grp := p.ShareGrp()
	if grp != nil && (s.gang || grp.Gang()) {
		for _, r := range s.cpuProc {
			if r != nil && r.ShareGrp() == grp {
				sc++
				break
			}
		}
	}
	return sc
}

// Block implements proc.Scheduler: release the CPU, sleep until Unblock,
// then contend for a CPU again. Called by p's own goroutine.
func (s *Sched) Block(p *proc.Proc, reason string) {
	p.LastSleep.Store(reason)
	if c := s.cpuOf(p); c != nil {
		c.Charge(s.machine.Cost.SemaSleep)
	}
	s.mu.Lock()
	s.releaseCPU(p)
	p.SetState(proc.SSleep)
	s.mu.Unlock()
	p.WaitWake()
	s.Ready(p)
	<-p.RunGate
}

// Unblock implements proc.Scheduler: deposit the wakeup token. The sleeping
// goroutine re-enters the run queue itself.
func (s *Sched) Unblock(p *proc.Proc) {
	p.NotifyWake()
}

// gangSticky reports whether p should keep its CPU at a preemption point:
// p is a gang-scheduled group member, a group-mate is running on another
// CPU, and no member of the same group is waiting in the run queue. This
// is the co-scheduling half of the §8 extension — rotating a member out in
// favour of an unrelated process would leave its spinning partners running
// against a descheduled peer. Caller holds s.mu.
func (s *Sched) gangSticky(p *proc.Proc) bool {
	grp := p.ShareGrp()
	if grp == nil || !(s.gang || grp.Gang()) {
		return false
	}
	mateRunning := false
	for _, r := range s.cpuProc {
		if r != nil && r != p && r.ShareGrp() == grp {
			mateRunning = true
			break
		}
	}
	if !mateRunning {
		return false
	}
	for _, q := range s.runq {
		if q.ShareGrp() == grp {
			return false // a group-mate needs the slot more than p does
		}
	}
	return true
}

// Yield is the preemption point: when p's slice is exhausted and another
// process is ready, p surrenders its CPU and waits to be dispatched again.
func (s *Sched) Yield(p *proc.Proc) {
	s.mu.Lock()
	if len(s.runq) == 0 {
		p.SliceLeft.Store(s.slice)
		s.mu.Unlock()
		return
	}
	if s.gangSticky(p) {
		s.StickyHolds.Add(1)
		p.SliceLeft.Store(s.slice)
		s.mu.Unlock()
		return
	}
	cpu := int(p.CPU.Swap(-1))
	if cpu < 0 {
		s.mu.Unlock()
		return
	}
	s.cpuProc[cpu] = nil
	next := s.pickNext()
	s.dispatch(next, cpu)
	p.SetState(proc.SReady)
	s.runq = append(s.runq, p)
	s.Preemptions.Add(1)
	s.machine.Trace.Record(trace.EvPreempt, int32(p.PID), int32(cpu), 0, 0)
	s.mu.Unlock()
	<-p.RunGate
}

// Exit releases p's CPU for good and marks it a zombie.
func (s *Sched) Exit(p *proc.Proc) {
	s.mu.Lock()
	s.releaseCPU(p)
	p.SetState(proc.SZomb)
	s.mu.Unlock()
}

// cpuOf returns the hw.CPU p is running on, or nil.
func (s *Sched) cpuOf(p *proc.Proc) *hw.CPU {
	if cpu := p.CPU.Load(); cpu >= 0 {
		return s.machine.CPUs[cpu]
	}
	return nil
}

// CurrentCPU returns the hw.CPU p occupies; it panics if p is not running
// (kernel code must be entered from the process itself).
func (s *Sched) CurrentCPU(p *proc.Proc) *hw.CPU {
	if c := s.cpuOf(p); c != nil {
		return c
	}
	panic("sched: process not on a CPU")
}

// RunqLen returns the number of ready, undispatched processes.
func (s *Sched) RunqLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runq)
}

// IdleCPUs returns the number of idle processors.
func (s *Sched) IdleCPUs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idle)
}

// Running returns a snapshot of what each CPU is running (nil = idle).
func (s *Sched) Running() []*proc.Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*proc.Proc, len(s.cpuProc))
	copy(out, s.cpuProc)
	return out
}
