// Package sched is the multiprocessor scheduler: it multiplexes simulated
// processes (each a goroutine) onto the machine's NCPU processors, so true
// parallelism is capped at NCPU exactly as on the paper's hardware, sleeping
// in the kernel releases the processor, and the time-slice preemption that
// motivates the deferred-synchronization design really happens.
//
// Dispatch state is sharded per CPU so the common paths never funnel every
// processor through one lock: each CPU owns a run queue (guarded by its own
// rarely-contended lock), idle processors are tracked in an atomic bitmask,
// and a CPU whose queue runs dry — or whose queue's best candidate is beaten
// by another queue's priority hint — steals work from its peers. Priority
// order, FIFO within a priority, and the gang-affinity boost are preserved:
// a steal scan ranks candidates with the same score function the old global
// scan used, so a higher-priority process or a gang-mate on another CPU's
// queue still wins the processor.
//
// It also implements the gang-scheduling extension sketched in the paper's
// §8 ("the shared address block ... provides a convenient handle for making
// scheduling decisions about the process group as a whole"): in gang mode
// the dispatcher prefers runnable processes whose share group already has a
// member running, so busy-wait synchronization inside a group completes
// quickly instead of spinning against a descheduled partner.
package sched

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/hw"
	"repro/internal/proc"
	"repro/internal/trace"
)

// DefaultSlice is the time-slice length in charge units (simulated cycles
// of user work between preemption checks).
const DefaultSlice = 20000

// noPrio marks an empty queue's priority hint.
const noPrio = math.MinInt32

// noSeq marks an empty queue's age hint.
const noSeq = math.MaxUint64

// noBand marks an empty queue's fair-share band hint.
const noBand = math.MaxInt32

// entry is one queued process stamped with its global ready sequence
// number. The stamp makes FIFO-within-priority hold across the whole
// machine, not just within one queue: without it, a CPU whose queue always
// has a fresh candidate could rotate its own pair forever while an equal-
// priority process ages on another queue.
type entry struct {
	p   *proc.Proc
	seq uint64
}

// runQueue is one CPU's ready list. maxPrio and oldest are lock-free hints
// — an upper bound on the queued priorities and the age of the queue's
// oldest entry — letting other CPUs decide whether a steal scan could
// possibly pay off without taking the lock.
type runQueue struct {
	mu      sync.Mutex
	q       []entry
	maxPrio atomic.Int32  // highest queued priority, noPrio when empty
	oldest  atomic.Uint64 // ready stamp of the oldest entry, noSeq when empty
	minBand atomic.Int32  // lowest fair-share band queued, noBand when empty
	_       [64]byte      // keep neighbouring queues off the same cache line
}

// Sched dispatches processes onto CPUs.
type Sched struct {
	machine *hw.Machine
	slice   int64
	topo    hw.Topology // the machine's NUMA shape (flat when Nodes <= 1)
	gang    atomic.Bool // global gang-mode switch
	sawGang atomic.Bool // a per-group gang flag has been seen (sticky)
	fair    atomic.Bool // fair-share banding armed (sticky; setshares(2))

	// scanOrder[cpu] lists every other CPU in locality order: node-mates
	// first, then remote nodes nearest-first. Steal scans and hint checks
	// walk this order so same-node work is found (and taken) before the
	// scan ever crosses the interconnect. Built once in New.
	scanOrder [][]int

	queues   []*runQueue
	cpuProc  []atomic.Pointer[proc.Proc] // what each CPU runs (nil = idle)
	idle     []atomic.Uint64             // idle-CPU bitmask, 64 CPUs per word
	queued   atomic.Int64                // ready, undispatched processes
	rr       atomic.Uint32               // round-robin cursor for unplaced processes
	readySeq atomic.Uint64               // global enqueue stamp (machine-wide FIFO)

	Dispatches   atomic.Int64
	Preemptions  atomic.Int64
	StickyHolds  atomic.Int64 // preemptions suppressed by gang stickiness
	FlushedCyc   atomic.Int64 // cycles flushed to usage accounts at quantum ends
	UngroupedCyc atomic.Int64 // flushed cycles with no group to charge
	FairPasses   atomic.Int64 // dispatch decisions made with banding active
	Steals       atomic.Int64 // picks taken from another CPU's queue
	LocalSteals  atomic.Int64 // steals from a queue on the thief's own node
	RemoteSteals atomic.Int64 // steals that crossed a node boundary
	LocalPicks   atomic.Int64 // picks served from the CPU's own queue
	StealScans   atomic.Int64 // full steal scans (the slow pick path)
	Sleeps       atomic.Int64 // kernel sleeps (processes leaving the run queues)

	// FI, when armed at SiteDispatch, forces occasional short slices and
	// dispatch stalls — the scheduler's deterministic perturbation under a
	// chaos plan. Set before the first process runs; nil means off.
	FI *faultinject.Plan
}

// New creates a scheduler for the machine. slice is the time-slice length
// in charge units; 0 selects DefaultSlice.
func New(machine *hw.Machine, slice int64) *Sched {
	if slice <= 0 {
		slice = DefaultSlice
	}
	ncpu := machine.NCPU()
	topo := machine.Topo
	if topo.NCPU != ncpu || topo.Nodes < 1 {
		// Machines built outside NewMachineNUMA carry a zero Topology;
		// normalize to flat so the locality paths degenerate cleanly.
		topo = hw.NewTopology(ncpu, 1)
	}
	s := &Sched{
		machine: machine,
		slice:   slice,
		topo:    topo,
		queues:  make([]*runQueue, ncpu),
		cpuProc: make([]atomic.Pointer[proc.Proc], ncpu),
		idle:    make([]atomic.Uint64, (ncpu+63)/64),
	}
	for i := range s.queues {
		s.queues[i] = &runQueue{}
		s.queues[i].maxPrio.Store(noPrio)
		s.queues[i].oldest.Store(noSeq)
		s.queues[i].minBand.Store(noBand)
	}
	s.scanOrder = make([][]int, ncpu)
	cpn := topo.CPUsPerNode()
	for cpu := 0; cpu < ncpu; cpu++ {
		order := make([]int, 0, ncpu-1)
		for _, n := range topo.NodeOrder(topo.NodeOf(cpu)) {
			lo, hi := n*cpn, (n+1)*cpn
			if hi > ncpu {
				hi = ncpu
			}
			for c := lo; c < hi; c++ {
				if c != cpu {
					order = append(order, c)
				}
			}
		}
		s.scanOrder[cpu] = order
	}
	for cpu := 0; cpu < ncpu; cpu++ {
		s.setIdle(cpu)
	}
	return s
}

// SetGang enables or disables gang-mode dispatch.
func (s *Sched) SetGang(on bool) { s.gang.Store(on) }

// SetFairShare arms fair-share banding. The switch is sticky and one-way:
// it flips the first time any group sets a CPU-share entitlement
// (setshares(2)), so a system that never uses entitlements dispatches
// exactly as the share-blind scheduler did, paying nothing.
func (s *Sched) SetFairShare() { s.fair.Store(true) }

// FairActive reports whether fair-share banding influences dispatch.
func (s *Sched) FairActive() bool { return s.fair.Load() }

// Slice returns the configured time-slice length.
func (s *Sched) Slice() int64 { return s.slice }

// gangActive reports whether gang affinity can influence dispatch at all:
// either the global switch is on or some group has asked for it.
func (s *Sched) gangActive() bool { return s.gang.Load() || s.sawGang.Load() }

// ─── idle-CPU mask ───────────────────────────────────────────────────────

// setIdle marks cpu idle.
func (s *Sched) setIdle(cpu int) {
	w, b := cpu/64, uint(cpu%64)
	for {
		v := s.idle[w].Load()
		if s.idle[w].CompareAndSwap(v, v|1<<b) {
			return
		}
	}
}

// claimIdle claims any idle CPU, returning its id or -1.
func (s *Sched) claimIdle() int {
	for w := range s.idle {
		for {
			v := s.idle[w].Load()
			if v == 0 {
				break
			}
			b := bits.TrailingZeros64(v)
			if s.idle[w].CompareAndSwap(v, v&^(1<<uint(b))) {
				return w*64 + b
			}
		}
	}
	return -1
}

// claimThis claims the specific idle cpu; false if it was not idle.
func (s *Sched) claimThis(cpu int) bool {
	w, b := cpu/64, uint(cpu%64)
	for {
		v := s.idle[w].Load()
		if v&(1<<b) == 0 {
			return false
		}
		if s.idle[w].CompareAndSwap(v, v&^(1<<b)) {
			return true
		}
	}
}

// ─── ready / dispatch ────────────────────────────────────────────────────

// Spawn runs body as the process p: the goroutine waits for its first
// dispatch, runs, and releases its CPU on return. The caller must have set
// p.Sched to this scheduler.
func (s *Sched) Spawn(p *proc.Proc, body func()) {
	go func() {
		<-p.RunGate
		body()
		s.Exit(p)
	}()
	s.Ready(p)
}

// Ready makes p runnable, dispatching it immediately if a CPU is idle.
// On a NUMA machine the idle claim prefers p's home node — where it last
// ran, or for a never-dispatched group member, where a group-mate is
// already running, so new members start next to the group's working set.
func (s *Sched) Ready(p *proc.Proc) {
	p.SetState(proc.SReady)
	if g := p.ShareGrp(); g != nil && g.Gang() {
		s.sawGang.Store(true)
	}
	if !s.topo.Flat() {
		if node := s.homeNode(p); node >= 0 {
			if cpu := s.claimIdleOn(node); cpu >= 0 {
				s.dispatch(p, cpu)
				return
			}
		}
	}
	if cpu := s.claimIdle(); cpu >= 0 {
		s.dispatch(p, cpu)
		return
	}
	s.enqueue(p)
	// Close the lost-wakeup race: a CPU may have gone idle between the
	// claim attempt above and the enqueue.
	s.kickIdle()
}

// homeNode returns the node p should land on: its last CPU's node when it
// has run before, else the node of a running share-group mate (the frames
// a new member will fault on are the ones its siblings already touched),
// else -1.
func (s *Sched) homeNode(p *proc.Proc) int {
	if last := int(p.LastCPU.Load()); last >= 0 && last < len(s.queues) {
		return s.topo.NodeOf(last)
	}
	if grp := p.ShareGrp(); grp != nil {
		for i := range s.cpuProc {
			if r := s.cpuProc[i].Load(); r != nil && r.ShareGrp() == grp {
				return s.topo.NodeOf(i)
			}
		}
	}
	return -1
}

// claimIdleOn claims an idle CPU on the given node, or returns -1.
func (s *Sched) claimIdleOn(node int) int {
	cpn := s.topo.CPUsPerNode()
	lo, hi := node*cpn, (node+1)*cpn
	if hi > len(s.queues) {
		hi = len(s.queues)
	}
	for cpu := lo; cpu < hi; cpu++ {
		if s.claimThis(cpu) {
			return cpu
		}
	}
	return -1
}

// enqueue places p on its last CPU's queue (cache affinity). A fresh
// process with no dispatch history spreads round-robin — within its home
// node's block when a group-mate pins one.
func (s *Sched) enqueue(p *proc.Proc) {
	cpu := int(p.LastCPU.Load())
	if cpu < 0 || cpu >= len(s.queues) {
		if node := s.homeNode(p); node >= 0 && !s.topo.Flat() {
			cpn := s.topo.CPUsPerNode()
			lo, n := node*cpn, cpn
			if lo+n > len(s.queues) {
				n = len(s.queues) - lo
			}
			cpu = lo + int(s.rr.Add(1))%n
		} else {
			cpu = int(s.rr.Add(1)) % len(s.queues)
		}
	}
	q := s.queues[cpu]
	seq := s.readySeq.Add(1)
	q.mu.Lock()
	q.q = append(q.q, entry{p: p, seq: seq})
	if pr := p.Prio.Load(); pr > q.maxPrio.Load() {
		q.maxPrio.Store(pr)
	}
	if o := q.oldest.Load(); seq < o {
		q.oldest.Store(seq)
	}
	if s.fair.Load() {
		if b := s.bandOf(p); b < q.minBand.Load() {
			q.minBand.Store(b)
		}
	}
	q.mu.Unlock()
	s.queued.Add(1)
}

// kickIdle pairs queued work with idle CPUs until one of them runs out.
func (s *Sched) kickIdle() {
	for s.queued.Load() > 0 {
		cpu := s.claimIdle()
		if cpu < 0 {
			return
		}
		next := s.pickNext(cpu)
		if next == nil {
			s.setIdle(cpu)
			return
		}
		s.dispatch(next, cpu)
	}
}

// dispatch hands cpu to p. The caller must own cpu exclusively (it claimed
// the idle bit or is vacating the CPU itself).
func (s *Sched) dispatch(p *proc.Proc, cpu int) {
	s.cpuProc[cpu].Store(p)
	p.SetState(proc.SRun)
	p.CPU.Store(int32(cpu))
	p.LastCPU.Store(int32(cpu))
	p.Dispatched.Add(1)
	c := s.machine.CPUs[cpu]
	slice := s.slice
	if hit, draw := s.FI.Decide(faultinject.SiteDispatch, uint32(p.PID)); hit {
		// Forced near-immediate preemption: a fraction of the normal slice,
		// plus an extra context-switch charge as the dispatch stall.
		slice = 1 + int64(draw>>16)%(s.slice/4+1)
		c.Charge(s.machine.Cost.ContextSwitch)
		s.FI.Note(faultinject.SiteDispatch, faultinject.FaultPreempt, uint32(p.PID))
	}
	p.SliceLeft.Store(slice)
	p.RunStamp.Store(p.Cycles.Load())
	c.Switches.Add(1)
	c.Charge(s.machine.Cost.ContextSwitch)
	s.Dispatches.Add(1)
	s.machine.Trace.Record(trace.EvDispatch, int32(p.PID), int32(cpu), 0, 0)
	p.RunGate <- cpu
}

// releaseCPU takes p off its CPU, handing the CPU to the best ready
// process or marking it idle.
func (s *Sched) releaseCPU(p *proc.Proc) {
	cpu := int(p.CPU.Swap(-1))
	if cpu < 0 {
		return
	}
	s.cpuProc[cpu].Store(nil)
	s.findWork(cpu)
}

// findWork gives the vacated cpu to the best ready process, or marks it
// idle — re-checking the queues after publishing the idle bit so an
// enqueue racing with the release cannot strand work.
func (s *Sched) findWork(cpu int) {
	for {
		if next := s.pickNext(cpu); next != nil {
			s.dispatch(next, cpu)
			return
		}
		s.setIdle(cpu)
		if s.queued.Load() == 0 || !s.claimThis(cpu) {
			return
		}
	}
}

// ─── picking and stealing ────────────────────────────────────────────────

// ageSlack bounds how much machine-wide FIFO order a local pick may skip:
// a CPU keeps serving its own queue until an equal-score process elsewhere
// is more than this many enqueues older, then the steal scan fetches the
// aged one. Small enough that no process starves behind a busy CPU's
// private rotation, large enough that balanced load almost never scans.
func (s *Sched) ageSlack() uint64 { return uint64(4 * len(s.queues)) }

// pickNext removes and returns the best ready process for cpu: highest
// score (priority doubled, plus the gang-affinity boost), oldest first
// within a score — machine-wide. The fast path consults only cpu's own
// queue, using the other queues' lock-free hints to prove no remote
// candidate can beat (or is aged enough to displace) the local best; only
// when a hint says otherwise does the slow steal scan run.
func (s *Sched) pickNext(cpu int) *proc.Proc {
	gangScan := s.gangActive()
	fair := s.fair.Load()
	if fair {
		s.FairPasses.Add(1)
	}
	own := s.queues[cpu]

	own.mu.Lock()
	li, lscore, lband, lseq := s.bestOf(own)
	steal := false
	for _, i := range s.scanOrder[cpu] {
		h := s.queues[i].maxPrio.Load()
		if h == noPrio {
			continue
		}
		if li < 0 {
			steal = true
			break
		}
		bound := int(h) * 2
		if gangScan {
			bound++
		}
		if bound > lscore {
			steal = true
			break
		}
		if bound == lscore {
			// A remote queue whose best candidate sits in a lower fair-share
			// band (a more under-delivered group) displaces the local pick,
			// so banding biases the work-stealing scan too, not just queue
			// order — one hot group cannot hide behind per-CPU affinity.
			if fair {
				if rb := s.queues[i].minBand.Load(); rb != noBand && rb < lband {
					steal = true
					break
				}
			}
			if o := s.queues[i].oldest.Load(); o != noSeq && o+s.ageSlack() < lseq {
				steal = true
				break
			}
		}
	}
	if !steal {
		if li < 0 {
			own.mu.Unlock()
			return nil
		}
		p := s.removeAt(own, li)
		own.mu.Unlock()
		s.queued.Add(-1)
		s.LocalPicks.Add(1)
		return p
	}
	own.mu.Unlock()
	return s.pickStealing(cpu)
}

// pickStealing is the slow pick path: peek every queue (own first, then
// node-mates, then remote nodes nearest-first, one lock at a time), choose
// the globally best candidate — highest score, then oldest ready stamp —
// and re-verify and pop it. On a NUMA machine a remote candidate's age is
// handicapped by ageSlack before comparison: equal-score ties go to the
// thief's own node, but a remote process more than ageSlack enqueues older
// still wins, so the machine-wide starvation bound survives the locality
// bias (it merely widens by one slack).
func (s *Sched) pickStealing(cpu int) *proc.Proc {
	s.StealScans.Add(1)
	slack := s.ageSlack()
	myNode := s.topo.NodeOf(cpu)
	for attempt := 0; attempt < 4; attempt++ {
		bestQ, bestScore := -1, math.MinInt
		bestBand := int32(noBand)
		bestEff := uint64(noSeq)
		scan := func(i int) {
			q := s.queues[i]
			if i != cpu && q.maxPrio.Load() == noPrio {
				return
			}
			q.mu.Lock()
			idx, sc, band, seq := s.bestOf(q)
			q.mu.Unlock()
			if idx < 0 {
				return
			}
			eff := seq
			if s.topo.NodeOf(i) != myNode {
				eff += slack
			}
			if sc > bestScore || (sc == bestScore &&
				(band < bestBand || (band == bestBand && eff < bestEff))) {
				bestQ, bestScore, bestBand, bestEff = i, sc, band, eff
			}
		}
		scan(cpu)
		for _, i := range s.scanOrder[cpu] {
			scan(i)
		}
		if bestQ < 0 {
			return nil
		}
		q := s.queues[bestQ]
		q.mu.Lock()
		idx, _, _, _ := s.bestOf(q)
		if idx < 0 {
			q.mu.Unlock()
			continue // raced: the queue drained underneath us
		}
		p := s.removeAt(q, idx)
		q.mu.Unlock()
		s.queued.Add(-1)
		if bestQ == cpu {
			s.LocalPicks.Add(1)
		} else {
			s.Steals.Add(1)
			if s.topo.NodeOf(bestQ) == myNode {
				s.LocalSteals.Add(1)
			} else {
				s.RemoteSteals.Add(1)
			}
		}
		return p
	}
	// Heavy contention: fall back to whatever the own queue holds.
	own := s.queues[cpu]
	own.mu.Lock()
	defer own.mu.Unlock()
	if idx, _, _, _ := s.bestOf(own); idx >= 0 {
		p := s.removeAt(own, idx)
		s.queued.Add(-1)
		s.LocalPicks.Add(1)
		return p
	}
	return nil
}

// bestOf returns the index, score, fair-share band, and ready stamp of the
// best process in q, or (-1, MinInt, noBand, noSeq) when empty. Ordering:
// highest score first (priority still dominates fairness), then the lowest
// band — the most under-delivered group — then oldest, preserving FIFO
// within a (score, band) class. An entry older than bandAgeBound competes
// as band 0, so the PR 1 age-bound starvation guarantee survives banding:
// no process waits forever behind a perpetually under-delivered group.
// Caller holds q.mu.
func (s *Sched) bestOf(q *runQueue) (int, int, int32, uint64) {
	best, bestScore := -1, math.MinInt
	bestBand := int32(noBand)
	bestSeq := uint64(noSeq)
	fair := s.fair.Load()
	var nowSeq, bound uint64
	if fair {
		nowSeq = s.readySeq.Load()
		bound = s.bandAgeBound()
	}
	for i, e := range q.q {
		sc := s.score(e.p)
		b := int32(0)
		if fair {
			if b = s.bandOf(e.p); b != 0 && nowSeq-e.seq > bound {
				b = 0 // aged out: the starvation bound overrides fairness
			}
		}
		if sc > bestScore || (sc == bestScore &&
			(b < bestBand || (b == bestBand && e.seq < bestSeq))) {
			best, bestScore, bestBand, bestSeq = i, sc, b, e.seq
		}
	}
	return best, bestScore, bestBand, bestSeq
}

// removeAt removes q.q[i] preserving order and refreshes the lock-free
// hints. Caller holds q.mu.
func (s *Sched) removeAt(q *runQueue, i int) *proc.Proc {
	p := q.q[i].p
	q.q = append(q.q[:i], q.q[i+1:]...)
	hint := int32(noPrio)
	old := uint64(noSeq)
	band := int32(noBand)
	fair := s.fair.Load()
	for _, e := range q.q {
		if pr := e.p.Prio.Load(); hint == noPrio || pr > hint {
			hint = pr
		}
		if e.seq < old {
			old = e.seq
		}
		if fair {
			if b := s.bandOf(e.p); b < band {
				band = b
			}
		}
	}
	q.maxPrio.Store(hint)
	q.oldest.Store(old)
	q.minBand.Store(band)
	return p
}

// bandAgeBound is the banding override horizon, in enqueue stamps: an
// entry that has waited longer competes at band 0 regardless of its
// group's usage. A multiple of ageSlack so the fair-share bound composes
// with (and stays proportional to) the share-blind one.
func (s *Sched) bandAgeBound() uint64 { return 8 * s.ageSlack() }

// bandOf returns p's group's current fair-share band (0 for ungrouped
// processes, which are not resource principals and schedule as before).
// The read refreshes a stale account first, so a group that has been idle
// regains priority without needing to run to decay its own usage.
func (s *Sched) bandOf(p *proc.Proc) int32 {
	g := p.ShareGrp()
	if g == nil {
		return 0
	}
	a := g.CPUAcct()
	a.Refresh(s.machine.TotalCycles())
	return a.Band()
}

// flushUsage charges the cycles p consumed since its last dispatch (or
// flush) to its group's fair-share account — the quantum-boundary hook
// from the per-CPU cycle accounting into the decayed usage accumulator.
// Ungrouped cycles go to a machine counter so the conservation storm can
// assert flushed == Σ group Delivered + ungrouped exactly.
func (s *Sched) flushUsage(p *proc.Proc) {
	now := p.Cycles.Load()
	delta := now - p.RunStamp.Swap(now)
	if delta <= 0 {
		return
	}
	s.FlushedCyc.Add(delta)
	if g := p.ShareGrp(); g != nil {
		g.CPUAcct().Charge(delta, s.machine.TotalCycles())
	} else {
		s.UngroupedCyc.Add(delta)
	}
}

// score ranks a ready process: doubled priority plus one when gang
// affinity applies and a group-mate is already running somewhere.
func (s *Sched) score(p *proc.Proc) int {
	sc := int(p.Prio.Load()) * 2
	grp := p.ShareGrp()
	if grp != nil && (s.gang.Load() || grp.Gang()) {
		for i := range s.cpuProc {
			if r := s.cpuProc[i].Load(); r != nil && r.ShareGrp() == grp {
				sc++
				break
			}
		}
	}
	return sc
}

// ─── blocking, preemption, exit ──────────────────────────────────────────

// Block implements proc.Scheduler: release the CPU, sleep until Unblock,
// then contend for a CPU again. Called by p's own goroutine. A blocked
// process is off every run queue — it costs the dispatcher nothing until
// its wake token arrives.
func (s *Sched) Block(p *proc.Proc, reason string) {
	s.flushUsage(p)
	p.LastSleep.Store(reason)
	cpu := p.CPU.Load()
	if c := s.cpuOf(p); c != nil {
		c.Charge(s.machine.Cost.SemaSleep)
	}
	s.Sleeps.Add(1)
	s.machine.Trace.Record(trace.EvBlock, int32(p.PID), cpu, 0, 0)
	s.releaseCPU(p)
	p.SetState(proc.SSleep)
	p.WaitWake()
	s.machine.Trace.Record(trace.EvUnblock, int32(p.PID), -1, 0, 0)
	s.Ready(p)
	<-p.RunGate
}

// Park is the checkpoint-freeze sleep: release the CPU and wait until the
// gate channel closes. Unlike Block it must not touch the wake-token
// channel — a parked member is not waiting for an Unblock, and consuming a
// banked token here would lose a wakeup another subsystem deposited for
// the sleep the member returns to after the thaw.
func (s *Sched) Park(p *proc.Proc, gate <-chan struct{}) {
	s.flushUsage(p)
	p.LastSleep.Store("ckpt-freeze")
	cpu := p.CPU.Load()
	s.Sleeps.Add(1)
	s.machine.Trace.Record(trace.EvBlock, int32(p.PID), cpu, 0, 0)
	s.releaseCPU(p)
	p.SetState(proc.SSleep)
	<-gate
	s.machine.Trace.Record(trace.EvUnblock, int32(p.PID), -1, 0, 0)
	s.Ready(p)
	<-p.RunGate
}

// Unblock implements proc.Scheduler: deposit the wakeup token. The sleeping
// goroutine re-enters the run queue itself — wake is the non-blocking
// NotifyWake edge, safe to call from a waker holding arbitrary locks.
func (s *Sched) Unblock(p *proc.Proc) {
	p.NotifyWake()
}

// gangSticky reports whether p should keep its CPU at a preemption point:
// p is a gang-scheduled group member, a group-mate is running on another
// CPU, and no member of the same group is waiting in any run queue. This
// is the co-scheduling half of the §8 extension — rotating a member out in
// favour of an unrelated process would leave its spinning partners running
// against a descheduled peer.
func (s *Sched) gangSticky(p *proc.Proc) bool {
	grp := p.ShareGrp()
	if grp == nil || !(s.gang.Load() || grp.Gang()) {
		return false
	}
	mateRunning := false
	for i := range s.cpuProc {
		if r := s.cpuProc[i].Load(); r != nil && r != p && r.ShareGrp() == grp {
			mateRunning = true
			break
		}
	}
	if !mateRunning {
		return false
	}
	for _, q := range s.queues {
		q.mu.Lock()
		for _, w := range q.q {
			if w.p.ShareGrp() == grp {
				q.mu.Unlock()
				return false // a group-mate needs the slot more than p does
			}
		}
		q.mu.Unlock()
	}
	return true
}

// Yield is the preemption point: when p's slice is exhausted and another
// process is ready, p surrenders its CPU and waits to be dispatched again.
//
// Every keep-the-CPU exit still yields the host thread: a woken process
// is runnable (its wake token is deposited) for a window before its
// goroutine re-enters a run queue, and a compute-bound process that never
// cedes the host during that window starves it indefinitely when
// GOMAXPROCS is low — the run queue stays empty, so no preemption ever
// fires and the group serializes. One Gosched per simulated quantum
// bounds that wake-to-runnable latency without measurable cost.
func (s *Sched) Yield(p *proc.Proc) {
	// Every exit from Yield — preempted or keeping the CPU — re-arms the
	// slice, so this is a quantum boundary either way: flush the quantum's
	// cycles into the group's usage account before deciding.
	s.flushUsage(p)
	if s.queued.Load() == 0 {
		p.SliceLeft.Store(s.slice)
		runtime.Gosched()
		return
	}
	if s.gangSticky(p) {
		s.StickyHolds.Add(1)
		p.SliceLeft.Store(s.slice)
		runtime.Gosched()
		return
	}
	cpu := int(p.CPU.Load())
	if cpu < 0 {
		return
	}
	next := s.pickNext(cpu)
	if next == nil {
		// The queues drained while we decided: keep the CPU.
		p.SliceLeft.Store(s.slice)
		runtime.Gosched()
		return
	}
	p.CPU.Store(-1)
	p.SetState(proc.SReady)
	s.enqueue(p)
	s.Preemptions.Add(1)
	s.machine.Trace.Record(trace.EvPreempt, int32(p.PID), int32(cpu), 0, 0)
	s.dispatch(next, cpu)
	<-p.RunGate
}

// Exit releases p's CPU for good and marks it a zombie. The final flush
// settles the last partial quantum, so an exited process's cycles are
// fully accounted to its group (the conservation invariant depends on it).
func (s *Sched) Exit(p *proc.Proc) {
	s.flushUsage(p)
	s.releaseCPU(p)
	p.SetState(proc.SZomb)
}

// cpuOf returns the hw.CPU p is running on, or nil.
func (s *Sched) cpuOf(p *proc.Proc) *hw.CPU {
	if cpu := p.CPU.Load(); cpu >= 0 {
		return s.machine.CPUs[cpu]
	}
	return nil
}

// CurrentCPU returns the hw.CPU p occupies; it panics if p is not running
// (kernel code must be entered from the process itself).
func (s *Sched) CurrentCPU(p *proc.Proc) *hw.CPU {
	if c := s.cpuOf(p); c != nil {
		return c
	}
	panic("sched: process not on a CPU")
}

// RunqLen returns the number of ready, undispatched processes.
func (s *Sched) RunqLen() int { return int(s.queued.Load()) }

// QueueLens returns the per-CPU run-queue lengths (diagnostics).
func (s *Sched) QueueLens() []int {
	out := make([]int, len(s.queues))
	for i, q := range s.queues {
		q.mu.Lock()
		out[i] = len(q.q)
		q.mu.Unlock()
	}
	return out
}

// IdleCPUs returns the number of idle processors.
func (s *Sched) IdleCPUs() int {
	n := 0
	for w := range s.idle {
		n += bits.OnesCount64(s.idle[w].Load())
	}
	return n
}

// Running returns a snapshot of what each CPU is running (nil = idle).
func (s *Sched) Running() []*proc.Proc {
	out := make([]*proc.Proc, len(s.cpuProc))
	for i := range s.cpuProc {
		out[i] = s.cpuProc[i].Load()
	}
	return out
}
