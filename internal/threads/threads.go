// Package threads is the Mach-style lightweight-process baseline the paper
// compares against (§2, Figure 3): a task is one address space and
// resource set; threads are execution contexts inside it that share
// everything. Thread creation pays only for a kernel stack and thread
// context, which is why "the Mach kernel can create and destroy threads at
// 10 times the rate of the fork() system call" (§3) — and also why the
// model offers no selective sharing: every thread sees every resource.
//
// The package is a deliberately thin veneer over the kernel's full-share
// machinery. That is the paper's own observation: a thread is exactly a
// process that shares everything, so a kernel with share groups gets
// threads for free.
package threads

import (
	"sync/atomic"

	"repro/internal/kernel"
)

// Task is a Mach task: the resource container threads run inside.
type Task struct {
	ctx     *kernel.Context
	Threads atomic.Int32 // live threads (including the bootstrap thread)
}

// NewTask adopts the calling process as a task's bootstrap thread.
func NewTask(ctx *kernel.Context) *Task {
	t := &Task{ctx: ctx}
	t.Threads.Store(1)
	return t
}

// ThreadCreate starts a new thread in the task executing entry(arg). All
// task resources — address space, descriptors, identity, directories,
// limits — are visible to it.
func (t *Task) ThreadCreate(entry func(*kernel.Context, int64), arg int64) (int, error) {
	t.Threads.Add(1)
	return t.ctx.ThreadCreate("thread", func(c *kernel.Context, a int64) {
		defer t.Threads.Add(-1)
		entry(c, a)
	}, arg)
}

// Join waits for n threads to exit.
func (t *Task) Join(n int) {
	for i := 0; i < n; i++ {
		t.ctx.Wait()
	}
}
