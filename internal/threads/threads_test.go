package threads

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/vm"
)

func runSystem(t *testing.T, main kernel.Main) *kernel.System {
	return runSystemCfg(t, kernel.Config{NCPU: 4, MemFrames: 8192, TimeSlice: 300}, main)
}

func runSystemCfg(t *testing.T, cfg kernel.Config, main kernel.Main) *kernel.System {
	t.Helper()
	s := kernel.NewSystem(cfg)
	s.Start("main", main)
	done := make(chan struct{})
	go func() { s.WaitIdle(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock")
	}
	return s
}

func TestThreadsShareEverything(t *testing.T) {
	runSystem(t, func(c *kernel.Context) {
		task := NewTask(c)
		const n = 4
		for i := 0; i < n; i++ {
			if _, err := task.ThreadCreate(func(cc *kernel.Context, arg int64) {
				cc.Add32(vm.DataBase, uint32(1+arg)) // shared address space
			}, int64(i)); err != nil {
				t.Errorf("ThreadCreate: %v", err)
			}
		}
		task.Join(n)
		if v, _ := c.Load32(vm.DataBase); v != 1+2+3+4 {
			t.Errorf("shared sum = %d, want 10", v)
		}
		if task.Threads.Load() != 1 {
			t.Errorf("thread count = %d", task.Threads.Load())
		}
	})
}

func TestThreadSeesTaskFds(t *testing.T) {
	runSystem(t, func(c *kernel.Context) {
		fd, err := c.Creat("/task-file", 0o644)
		if err != nil {
			t.Errorf("creat: %v", err)
			return
		}
		task := NewTask(c)
		var ok atomic.Bool
		task.ThreadCreate(func(cc *kernel.Context, _ int64) {
			cc.P.Mu.Lock()
			_, err := cc.P.GetFd(fd)
			cc.P.Mu.Unlock()
			ok.Store(err == nil)
		}, 0)
		task.Join(1)
		if !ok.Load() {
			t.Error("thread does not see task descriptor")
		}
	})
}

func TestThreadCreationCheaperThanFork(t *testing.T) {
	// The §3 claim: thread creation is roughly an order of magnitude
	// cheaper than fork — the *traditional* fork that walks the page
	// tables at spawn, so this boots the EagerDup ablation. (The lazy
	// default collapses exactly this gap for untouched children; benchtab
	// E1c measures that directly.)
	s := runSystemCfg(t, kernel.Config{NCPU: 4, MemFrames: 8192, TimeSlice: 300, EagerDup: true}, func(c *kernel.Context) {
		task := NewTask(c)
		startThreads := s0(c)
		const n = 16
		for i := 0; i < n; i++ {
			task.ThreadCreate(func(cc *kernel.Context, _ int64) {}, 0)
		}
		task.Join(n)
		threadCost := s0(c) - startThreads

		startForks := s0(c)
		for i := 0; i < n; i++ {
			c.Fork("forked", func(cc *kernel.Context) {})
			c.Wait()
		}
		forkCost := s0(c) - startForks

		if forkCost < 4*threadCost {
			t.Errorf("fork/thread cycle ratio too small: fork=%d thread=%d", forkCost, threadCost)
		}
	})
	_ = s
}

// s0 reads the machine's total cycle counter via the context's system.
func s0(c *kernel.Context) int64 { return c.S.Machine.TotalCycles() }
