package vm

import (
	"sync/atomic"

	"repro/internal/hw"
)

// Checkpoint dirty tracking (DESIGN.md §17). The iterative pre-copy
// protocol snapshots a region pass by pass while members keep running; in
// between passes it needs to know exactly which pages were re-dirtied.
// The mechanism is the same one copy-on-write duplication already uses:
// clear every writable PTE bit so the next store through the region takes
// the fill slow path, and have that slow path record the page in a bitmap
// before it re-installs the writable mapping. The writable bit is a cached
// permission, not the authority (region.go), so clearing it is always
// safe — at worst it costs one extra fault per page per pass.
//
// The caller's obligations mirror Dup's: after TrackDirty or TakeDirty
// returns, stale writable TLB entries must be flushed (a space shootdown
// for the group's ASID) before the cleared bits actually force stores back
// through the slow path. Both entry points take every stripe, so they
// serialize against fills, grow/shrink, and lazy-dup materialization.

// dirtyMap is a fixed-size dirty bitmap, one bit per page of the table it
// was sized against. Bits are set with a CAS loop from the fill slow path
// and only ever read or reset under all stripes.
type dirtyMap struct {
	bits []atomic.Uint64
}

func newDirtyMap(npages int) *dirtyMap {
	return &dirtyMap{bits: make([]atomic.Uint64, (npages+63)/64)}
}

func (d *dirtyMap) set(idx int) {
	word := idx >> 6
	if word < 0 || word >= len(d.bits) {
		// A page grown in after arming: TakeDirty treats everything past
		// the bitmap's coverage as dirty, so nothing is lost.
		return
	}
	mask := uint64(1) << (idx & 63)
	for {
		old := d.bits[word].Load()
		if old&mask != 0 || d.bits[word].CompareAndSwap(old, old|mask) {
			return
		}
	}
}

func (d *dirtyMap) get(idx int) bool {
	word := idx >> 6
	if word >= len(d.bits) {
		return false
	}
	return d.bits[word].Load()&(uint64(1)<<(idx&63)) != 0
}

// noteDirty records a writable install while tracking is armed. Called
// from fillSlow with the page's stripe held, so the bitmap pointer cannot
// be swapped mid-call (TakeDirty holds every stripe).
func (r *Region) noteDirty(idx int) {
	if d := r.dirty.Load(); d != nil {
		d.set(idx)
	}
}

// Tracking reports whether checkpoint dirty tracking is armed.
func (r *Region) Tracking() bool { return r.dirty.Load() != nil }

// TrackDirty arms dirty tracking: every writable PTE bit is cleared so the
// next store through the region faults into the slow path, which records
// the page in a fresh bitmap before re-installing the writable mapping.
// The caller must complete a TLB shootdown for every address space mapping
// the region before relying on the tracking (paper §6.2 — a stale writable
// TLB entry lets a store bypass the fault path, exactly as in Dup).
func (r *Region) TrackDirty() {
	r.lockAllResolved()
	defer r.unlockAll()
	t := r.table.Load()
	if r.everWritable.Load() {
		for i := range t.slots {
			w := t.slots[i].Load()
			if w&ptePresent != 0 && w&pteWritable != 0 {
				t.slots[i].Store(pteEncode(hw.PFN(w&ptePFNMask), false))
			}
		}
	}
	r.dirty.Store(newDirtyMap(len(t.slots)))
}

// TakeDirty harvests the pages dirtied since TrackDirty (or the previous
// TakeDirty), re-arms tracking for the next pass, and returns the dirty
// page indices in ascending order. Pages that appeared beyond the armed
// bitmap's coverage (a concurrent Grow) are conservatively reported dirty.
// Returns nil when tracking is not armed. The caller owes the same TLB
// shootdown as TrackDirty before trusting the new pass.
func (r *Region) TakeDirty() []int {
	r.lockAllResolved()
	defer r.unlockAll()
	d := r.dirty.Load()
	if d == nil {
		return nil
	}
	t := r.table.Load()
	covered := len(d.bits) * 64
	var out []int
	for i := range t.slots {
		w := t.slots[i].Load()
		if i < covered {
			if d.get(i) {
				out = append(out, i)
			}
		} else if w&ptePresent != 0 {
			out = append(out, i)
		}
		if w&ptePresent != 0 && w&pteWritable != 0 {
			t.slots[i].Store(pteEncode(hw.PFN(w&ptePFNMask), false))
		}
	}
	r.dirty.Store(newDirtyMap(len(t.slots)))
	return out
}

// UntrackDirty disarms tracking. Writable bits repopulate lazily through
// the ordinary sole-owner upgrade on the next store fault; no flush is
// owed (clearing permission was the conservative direction).
func (r *Region) UntrackDirty() {
	r.lockAllResolved()
	defer r.unlockAll()
	r.dirty.Store(nil)
}

// ReadPage copies the contents of page idx into buf (at most one page) and
// reports whether the page was resident. This is the serialization surface
// of the checkpoint image builder: contents flow out through the region,
// never through raw PTE words, so the image layer stays independent of the
// PTE encoding.
func (r *Region) ReadPage(idx int, buf []byte) bool {
	pfn := r.Frame(idx)
	if pfn == hw.NoPFN {
		return false
	}
	if len(buf) > hw.PageSize {
		buf = buf[:hw.PageSize]
	}
	r.mem.ReadBytes(pfn, 0, buf)
	return true
}
