package vm

import (
	"testing"

	"repro/internal/hw"
)

// TestTrackDirtyBasics arms tracking, dirties a subset of pages, and
// checks the harvested set is exactly that subset — reads must not count.
func TestTrackDirtyBasics(t *testing.T) {
	m := mem(32)
	r := NewRegion(m, RData, 8)
	for i := 0; i < 8; i++ {
		if _, _, _, err := r.Fill(i, true); err != nil {
			t.Fatalf("prefill %d: %v", i, err)
		}
	}
	r.TrackDirty()
	if !r.Tracking() {
		t.Fatal("TrackDirty did not arm")
	}
	// Stores to pages 1, 4, 6; reads to 2 and 5.
	for _, idx := range []int{1, 4, 6} {
		if _, w, _, err := r.Fill(idx, true); err != nil || !w {
			t.Fatalf("store fill %d = (w=%v, err=%v)", idx, w, err)
		}
	}
	for _, idx := range []int{2, 5} {
		if _, w, _, err := r.Fill(idx, false); err != nil {
			t.Fatalf("read fill %d: %v", idx, err)
		} else if w {
			t.Fatalf("read fill %d re-installed writable under tracking", idx)
		}
	}
	got := r.TakeDirty()
	want := []int{1, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("TakeDirty = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TakeDirty = %v, want %v", got, want)
		}
	}
	// The harvest re-armed: a fresh pass starts clean and collects anew.
	if d := r.TakeDirty(); len(d) != 0 {
		t.Fatalf("second TakeDirty = %v, want empty", d)
	}
	if _, _, _, err := r.Fill(3, true); err != nil {
		t.Fatal(err)
	}
	if d := r.TakeDirty(); len(d) != 1 || d[0] != 3 {
		t.Fatalf("third TakeDirty = %v, want [3]", d)
	}
	r.UntrackDirty()
	if r.Tracking() {
		t.Fatal("UntrackDirty did not disarm")
	}
	if d := r.TakeDirty(); d != nil {
		t.Fatalf("TakeDirty after untrack = %v, want nil", d)
	}
}

// TestTrackDirtyNewFills asserts demand zero fills and COW breaks under
// tracking count as dirty — both change the page set the image must carry.
func TestTrackDirtyNewFills(t *testing.T) {
	m := mem(32)
	r := NewRegion(m, RData, 4)
	if _, _, _, err := r.Fill(0, true); err != nil {
		t.Fatal(err)
	}
	kid := r.Dup() // alias page 0 so a store must COW-break
	defer kid.Detach()
	r.TrackDirty()
	if _, _, res, err := r.Fill(2, true); err != nil || res != FillZeroed {
		t.Fatalf("zero fill = (%v, %v)", res, err)
	}
	if _, _, res, err := r.Fill(0, true); err != nil || res != FillCopied {
		t.Fatalf("cow fill = (%v, %v)", res, err)
	}
	got := r.TakeDirty()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("TakeDirty = %v, want [0 2]", got)
	}
	r.UntrackDirty()
}

// TestTrackDirtyGrow grows the region mid-pass: the grown pages fall past
// the armed bitmap and must be conservatively reported dirty once filled.
func TestTrackDirtyGrow(t *testing.T) {
	m := mem(32)
	r := NewRegion(m, RData, 2)
	r.TrackDirty()
	r.Grow(2)
	if _, _, _, err := r.Fill(3, true); err != nil {
		t.Fatal(err)
	}
	got := r.TakeDirty()
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("TakeDirty after grow = %v, want [3]", got)
	}
	r.UntrackDirty()
}

// TestReadPage checks the serialization surface: contents out through the
// region API, absence reported for unfilled slots.
func TestReadPage(t *testing.T) {
	m := mem(8)
	r := NewRegion(m, RData, 2)
	pfn, _, _, _ := r.Fill(0, true)
	m.StoreWord(pfn, 16, 0xdeadbeef) // word 16 = byte offset 64
	buf := make([]byte, hw.PageSize)
	if !r.ReadPage(0, buf) {
		t.Fatal("ReadPage missed a resident page")
	}
	if buf[64] != 0xef || buf[65] != 0xbe || buf[66] != 0xad || buf[67] != 0xde {
		t.Fatalf("ReadPage contents wrong: % x", buf[64:68])
	}
	if r.ReadPage(1, buf) {
		t.Fatal("ReadPage claimed an absent page resident")
	}
}
