package vm

import (
	"fmt"
	"sort"

	"repro/internal/hw"
)

// Virtual address space layout. A 32-bit space laid out the way the IRIX
// implementation does: fixed text and data bases, the PRDA at a fixed
// virtual location in every process so shared code can reach private data
// (paper §5.1), an mmap/shm arena, sproc stacks allocated non-overlapping
// below the main stack, and the initial stack at the top growing down.
const (
	TextBase       hw.VAddr = 0x0040_0000
	DataBase       hw.VAddr = 0x1000_0000
	PRDABase       hw.VAddr = 0x2000_0000
	ShmBase        hw.VAddr = 0x3000_0000
	SprocStackBase hw.VAddr = 0x5000_0000
	MainStackTop   hw.VAddr = 0x7fff_f000
)

// PRDAPages is the size of the process data area: "a small amount of
// memory (typically less than a page in size)" — one page here.
const PRDAPages = 1

// PRegion attaches a Region to an address space at a base virtual address.
// Private pregions hang off the proc; shared pregions hang off the share
// group's shared address block and are protected by its shared read lock.
type PRegion struct {
	Reg  *Region
	Base hw.VAddr
}

// End returns the first address past the pregion's current extent.
func (p *PRegion) End() hw.VAddr {
	return p.Base + hw.VAddr(p.Reg.Pages()*hw.PageSize)
}

// Contains reports whether va falls inside the pregion's current extent.
func (p *PRegion) Contains(va hw.VAddr) bool {
	return va >= p.Base && va < p.End()
}

// PageIndex returns the region page index of va, which must be contained.
func (p *PRegion) PageIndex(va hw.VAddr) int {
	return int((va - p.Base) >> hw.PageShift)
}

func (p *PRegion) String() string {
	return fmt.Sprintf("pregion{%s %#x..%#x, %d pages, refs %d}",
		p.Reg.Type, uint32(p.Base), uint32(p.End()), p.Reg.Pages(), p.Reg.Refs())
}

// Pregion lists are an ordered interval index: every list handled by the
// functions below is sorted by Base, and attachments never overlap (Insert
// callers check Overlaps first). Find and Overlaps are therefore binary
// searches — O(log n) where the paper's linear pregion scan was O(n) —
// which is what keeps the fault path flat when a share group maps tens of
// thousands of regions. The one wrinkle is zero-page pregions (a region
// shrunk to nothing): they occupy a base address but no address *space*,
// so another region's extent may legitimately span them; searches skip
// them, membership operations keep them.
//
// The paper's locking story is unchanged: "the shared pregion list is
// protected via the shared lock in all places that the pregion list is
// accessed" — the index only changes what a scan costs under that lock.

// searchBase returns the index of the first pregion with Base > va.
func searchBase(list []*PRegion, va hw.VAddr) int {
	return sort.Search(len(list), func(i int) bool { return list[i].Base > va })
}

// Find returns the pregion containing va, or nil. It binary-searches for
// the last pregion based at or below va, then walks left past any
// zero-page entries parked inside a larger region's span.
func Find(list []*PRegion, va hw.VAddr) *PRegion {
	for i := searchBase(list, va) - 1; i >= 0; i-- {
		if list[i].Contains(va) {
			return list[i]
		}
		if list[i].Reg.Pages() > 0 {
			// A non-empty pregion at or below va that doesn't contain it:
			// everything further left ends even lower.
			return nil
		}
	}
	return nil
}

// Overlaps reports whether a new attachment [base, base+pages) would
// collide with any pregion in the list. Zero-length probes never collide,
// and zero-page entries never obstruct.
func Overlaps(list []*PRegion, base hw.VAddr, pages int) bool {
	if pages <= 0 {
		return false
	}
	end := base + hw.VAddr(pages*hw.PageSize)
	// First pregion based at or past end cannot overlap; scan left from
	// there, skipping zero-page entries (they occupy no address space).
	// The first non-empty pregion decides: if it ends at or below base,
	// every earlier one ends lower still.
	for i := searchBase(list, end-1) - 1; i >= 0; i-- {
		if list[i].Reg.Pages() == 0 {
			continue
		}
		return list[i].End() > base
	}
	return false
}

// Insert adds pr to the list, keeping it sorted by Base, and returns the
// grown list. Callers must have checked Overlaps (the list stays a set of
// disjoint intervals); equal bases (zero-page entries) keep insertion
// order.
func Insert(list []*PRegion, pr *PRegion) []*PRegion {
	i := searchBase(list, pr.Base)
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = pr
	return list
}

// Remove deletes pr from list, returning the shortened list. It is the
// caller's job to hold whatever lock protects the list and to detach the
// region afterwards. The vacated tail slot is cleared so the backing array
// keeps no stale pointer pinning the detached pregion.
func Remove(list []*PRegion, pr *PRegion) []*PRegion {
	// Binary search to the first candidate with pr's base, then match by
	// identity (equal bases are possible among zero-page entries).
	i := sort.Search(len(list), func(i int) bool { return list[i].Base >= pr.Base })
	for ; i < len(list) && list[i].Base == pr.Base; i++ {
		if list[i] == pr {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = nil
			return list[:len(list)-1]
		}
	}
	return list
}

// DupList copy-on-write-duplicates a pregion list (the fork path). Text
// regions are shared rather than duplicated — System V shares text on fork
// — and shm regions stay attached to the same segment, matching System V
// shared-memory semantics (a segment remains shared across fork). The
// duplication is lazy (Region.DupLazy): O(1) per region, with the table
// walk deferred to first touch.
func DupList(list []*PRegion) []*PRegion {
	out, _ := DupListFlush(list)
	return out
}

// DupListFlush is DupList additionally reporting whether the source
// address space needs a TLB flush before either side runs: true exactly
// when some duplicated region has ever held a writable PTE, so the space
// may cache a writable TLB entry that would let an unfaulted store leak
// into the clone's snapshot. A never-written image (and the shared text
// and shm attachments, which are not duplicated at all) forks with no
// flush. The child's interval index is rebuilt through the ordered-insert
// API rather than trusted to append order (lint-pregion checks the dup
// path stays that way).
func DupListFlush(list []*PRegion) ([]*PRegion, bool) {
	return dupList(list, false)
}

// DupListEager is DupListFlush with the spawn-time table walk of the
// pre-lazy fork path (Region.Dup). It is kept as the measured ablation —
// Config.EagerDup, benchtab E1c — so the O(pages) cost the lazy path
// removes stays visible on the same workload.
func DupListEager(list []*PRegion) ([]*PRegion, bool) {
	return dupList(list, true)
}

func dupList(list []*PRegion, eager bool) ([]*PRegion, bool) {
	out := make([]*PRegion, 0, len(list))
	flush := false
	for _, pr := range list {
		nr := pr.Reg
		switch {
		case nr.Type == RText || nr.Type == RShm:
			nr.Attach()
		default:
			if nr.EverWritable() {
				flush = true
			}
			if eager {
				nr = nr.Dup()
			} else {
				nr = nr.DupLazy()
			}
		}
		out = Insert(out, &PRegion{Reg: nr, Base: pr.Base})
	}
	return out, flush
}

// MergeLists combines two sorted pregion lists into one sorted list (the
// unshare path joining a proc's private list with its group's shared
// list). The inputs must be address-disjoint, as private and shared
// attachments always are.
func MergeLists(a, b []*PRegion) []*PRegion {
	out := make([]*PRegion, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Base <= b[j].Base {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Partition splits a sorted list into the pregions satisfying keep and the
// rest, both still sorted (the share-group creation path separating what
// moves to the shared block from what stays private).
func Partition(list []*PRegion, keep func(*PRegion) bool) (kept, rest []*PRegion) {
	for _, pr := range list {
		if keep(pr) {
			kept = append(kept, pr)
		} else {
			rest = append(rest, pr)
		}
	}
	return kept, rest
}

// BuildList sorts prs by base and returns it as a valid index (address-
// space construction, where the natural build order — text, data, stack,
// PRDA — is not address order).
func BuildList(prs ...*PRegion) []*PRegion {
	sort.Slice(prs, func(i, j int) bool { return prs[i].Base < prs[j].Base })
	return prs
}

// DetachList detaches every region in the list.
func DetachList(list []*PRegion) {
	for _, pr := range list {
		pr.Reg.Detach()
	}
}

// TotalPages sums the mapped pages across a list.
func TotalPages(list []*PRegion) int {
	n := 0
	for _, pr := range list {
		n += pr.Reg.Pages()
	}
	return n
}

// ResidentPages sums the demand-filled pages across a list.
func ResidentPages(list []*PRegion) int {
	n := 0
	for _, pr := range list {
		n += pr.Reg.Resident()
	}
	return n
}
