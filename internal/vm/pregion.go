package vm

import (
	"fmt"

	"repro/internal/hw"
)

// Virtual address space layout. A 32-bit space laid out the way the IRIX
// implementation does: fixed text and data bases, the PRDA at a fixed
// virtual location in every process so shared code can reach private data
// (paper §5.1), an mmap/shm arena, sproc stacks allocated non-overlapping
// below the main stack, and the initial stack at the top growing down.
const (
	TextBase       hw.VAddr = 0x0040_0000
	DataBase       hw.VAddr = 0x1000_0000
	PRDABase       hw.VAddr = 0x2000_0000
	ShmBase        hw.VAddr = 0x3000_0000
	SprocStackBase hw.VAddr = 0x5000_0000
	MainStackTop   hw.VAddr = 0x7fff_f000
)

// PRDAPages is the size of the process data area: "a small amount of
// memory (typically less than a page in size)" — one page here.
const PRDAPages = 1

// PRegion attaches a Region to an address space at a base virtual address.
// Private pregions hang off the proc; shared pregions hang off the share
// group's shared address block and are protected by its shared read lock.
type PRegion struct {
	Reg  *Region
	Base hw.VAddr
}

// End returns the first address past the pregion's current extent.
func (p *PRegion) End() hw.VAddr {
	return p.Base + hw.VAddr(p.Reg.Pages()*hw.PageSize)
}

// Contains reports whether va falls inside the pregion's current extent.
func (p *PRegion) Contains(va hw.VAddr) bool {
	return va >= p.Base && va < p.End()
}

// PageIndex returns the region page index of va, which must be contained.
func (p *PRegion) PageIndex(va hw.VAddr) int {
	return int((va - p.Base) >> hw.PageShift)
}

func (p *PRegion) String() string {
	return fmt.Sprintf("pregion{%s %#x..%#x, %d pages, refs %d}",
		p.Reg.Type, uint32(p.Base), uint32(p.End()), p.Reg.Pages(), p.Reg.Refs())
}

// Find scans a pregion list for the one containing va. This is the scan
// the paper protects with the shared read lock: "the shared pregion list
// is protected via the shared lock in all places that the pregion list is
// accessed".
func Find(list []*PRegion, va hw.VAddr) *PRegion {
	for _, pr := range list {
		if pr.Contains(va) {
			return pr
		}
	}
	return nil
}

// Overlaps reports whether a new attachment [base, base+pages) would
// collide with any pregion in the list.
func Overlaps(list []*PRegion, base hw.VAddr, pages int) bool {
	end := base + hw.VAddr(pages*hw.PageSize)
	for _, pr := range list {
		if base < pr.End() && pr.Base < end {
			return true
		}
	}
	return false
}

// Remove deletes pr from list, returning the shortened list. It is the
// caller's job to hold whatever lock protects the list and to detach the
// region afterwards.
func Remove(list []*PRegion, pr *PRegion) []*PRegion {
	for i, q := range list {
		if q == pr {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// DupList copy-on-write-duplicates a pregion list (the fork path). Text
// regions are shared rather than duplicated — System V shares text on fork
// — and shm regions stay attached to the same segment, matching System V
// shared-memory semantics (a segment remains shared across fork).
func DupList(list []*PRegion) []*PRegion {
	out := make([]*PRegion, 0, len(list))
	for _, pr := range list {
		if pr.Reg.Type == RText || pr.Reg.Type == RShm {
			pr.Reg.Attach()
			out = append(out, &PRegion{Reg: pr.Reg, Base: pr.Base})
			continue
		}
		out = append(out, &PRegion{Reg: pr.Reg.Dup(), Base: pr.Base})
	}
	return out
}

// DetachList detaches every region in the list.
func DetachList(list []*PRegion) {
	for _, pr := range list {
		pr.Reg.Detach()
	}
}

// ResidentPages sums the demand-filled pages across a list.
func ResidentPages(list []*PRegion) int {
	n := 0
	for _, pr := range list {
		n += pr.Reg.Resident()
	}
	return n
}
