// The resident-fault fast path. This file is the lock-free half of the
// region fault handler and is kept separate so the build can enforce its
// one structural invariant mechanically: `make lint` rejects any mutex
// acquisition in this file. The common fault — page already resident,
// permission adequate — must complete with three atomic loads and no lock
// (paper §6.2's hot path; the slow cases live in region.go).
package vm

import "repro/internal/hw"

// FillOn is Fill with CPU affinity: frames allocated or freed on the fault
// path go through cpu's frame cache, so concurrent faults on different
// processors never contend on the global frame pool. cpu < 0 uses the
// global pool.
//
// Fast path: load the page table pointer, check that no lazy duplication
// is pending, load the PTE. If the page is present and the access is
// permitted by the cached writable bit, the fault is resolved with no lock
// and no store. Everything else — absent page, write to a non-writable
// PTE, a pending lazy dup — falls to the striped slow path, which
// re-checks under the slot's stripe (the state may have changed between
// the unlocked check and the lock).
//
// The lazy-dup gate keeps the source of a DupLazy honest: while a clone
// is pending, the source's writable bits are still set (clearing them is
// exactly the work being deferred), so the fast path must not reinstall a
// writable mapping from them. Checking the pending count *before* loading
// the slot makes the gate decisive — if the count reads zero after a
// materialization finished, the subsequent slot load is ordered after the
// walk's stores and sees the cleared bit.
//
// The unlocked read is safe against every concurrent mutation: slot words
// change atomically and only ever under a stripe lock, and the table
// pointer is swapped only with all stripes held, so a loaded snapshot is
// internally consistent. A fast-path read racing a structural teardown
// (shrink, final detach) behaves exactly like a hardware TLB that has not
// yet been shot down — and is excluded the same way, by the share group's
// update-lock + shootdown protocol, before any frame is freed.
func (r *Region) FillOn(idx int, write bool, cpu int) (pfn hw.PFN, writable bool, res FillResult, err error) {
	return r.FillFor(idx, write, cpu, nil)
}

// FillFor is FillOn charging any frame the fill allocates (zero fill, COW
// copy) to acct, the faulting process's resource principal. The fast path
// is unchanged — a resident fault allocates nothing and costs no quota.
func (r *Region) FillFor(idx int, write bool, cpu int, acct *hw.FrameAcct) (pfn hw.PFN, writable bool, res FillResult, err error) {
	pfn, writable, res, _, err = r.FillAccounted(idx, write, cpu, acct, nil)
	return pfn, writable, res, err
}

// FillAccounted is the full fill entry point: FillFor drawing quota from a
// spawn-time frame reservation when one is supplied, and additionally
// reporting how many page-table slots a lazy-dup materialization walked on
// this call (zero on the fast path and on already-materialized slow
// fills), so the kernel can charge the deferred duplication cost to the
// faulting CPU instead of pretending first touch is free.
func (r *Region) FillAccounted(idx int, write bool, cpu int, acct *hw.FrameAcct, resv *hw.FrameResv) (pfn hw.PFN, writable bool, res FillResult, lazyPages int, err error) {
	t := r.table.Load()
	if idx < 0 || idx >= len(t.slots) {
		return hw.NoPFN, false, FillCached, 0, outOfRange(r, idx, len(t.slots))
	}
	if r.Type == RText && write {
		return hw.NoPFN, false, FillCached, 0, ErrTextWrite
	}
	if r.lazyPend.Load() == 0 {
		if w := t.slots[idx].Load(); w&ptePresent != 0 {
			if w&pteWritable != 0 {
				r.mem.FastFills.Add(1)
				return hw.PFN(w & ptePFNMask), true, FillCached, 0, nil
			}
			if !write && r.Type == RText {
				r.mem.FastFills.Add(1)
				return hw.PFN(w & ptePFNMask), false, FillCached, 0, nil
			}
			// Non-writable data page: a read could be served here, but the
			// frame may have become sole-owned again (COW partner detached),
			// in which case the slow path upgrades the PTE so the *next*
			// access is a fast hit. Taking the stripe once now is cheaper
			// than pinning the page read-only forever.
		}
	}
	r.mem.SlowFills.Add(1)
	return r.fillSlow(idx, write, cpu, acct, resv)
}
