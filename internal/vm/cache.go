package vm

import "sync/atomic"

// LookupCache is a one-entry last-hit pregion cache (the vmacache idea):
// each process remembers the shared pregion its previous fault resolved
// to, tagged with the generation of the shared list at that moment. A
// fault first consults the cache under the shared read lock; if the
// group's generation still matches, the pregion is guaranteed to still be
// on the list (every list or extent mutation bumps the generation while
// holding the update lock), and the O(n) list scan is skipped entirely.
//
// The cache is written only by its owning process (faults are taken on
// the process's own execution), but the fields are atomics so diagnostic
// readers need no lock and a future cross-process toucher cannot tear the
// pair: Put publishes the pregion before the generation, and Get checks
// the generation first, so a mismatched pair fails toward a miss.
type LookupCache struct {
	gen atomic.Uint64
	pr  atomic.Pointer[PRegion]
}

// Get returns the cached pregion if it was stored at generation gen,
// else nil. The caller must still check the address is inside the
// pregion (the cache is a last-hit hint, not a mapping).
func (c *LookupCache) Get(gen uint64) *PRegion {
	if c.gen.Load() != gen {
		return nil
	}
	return c.pr.Load()
}

// Put records the pregion a fault resolved to at generation gen. The
// caller must hold the shared read lock that made gen current.
func (c *LookupCache) Put(gen uint64, pr *PRegion) {
	c.pr.Store(pr)
	c.gen.Store(gen)
}

// Clear evicts the cached entry. Called when the owner leaves its share
// group (or unshares VM): generations are per-group counters, so an entry
// carried into a different group could collide with that group's
// generation and validate a pregion that is not on its list.
func (c *LookupCache) Clear() {
	c.pr.Store(nil)
}
