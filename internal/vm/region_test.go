package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

func mem(frames int) *hw.Memory { return hw.NewMemory(frames) }

func TestRegionDemandFill(t *testing.T) {
	m := mem(8)
	r := NewRegion(m, RData, 4)
	if r.Resident() != 0 {
		t.Fatalf("fresh region resident = %d", r.Resident())
	}
	pfn, w, res, err := r.Fill(2, false)
	if err != nil || pfn == hw.NoPFN || !w || res != FillZeroed {
		t.Fatalf("Fill = (%v,%v,%v,%v)", pfn, w, res, err)
	}
	// Second fill of the same page returns the same frame.
	pfn2, _, res2, _ := r.Fill(2, true)
	if pfn2 != pfn || res2 != FillCached {
		t.Fatalf("refill gave different frame %d != %d (res %v)", pfn2, pfn, res2)
	}
	if r.Resident() != 1 {
		t.Fatalf("resident = %d, want 1", r.Resident())
	}
	if _, _, _, err := r.Fill(4, false); err == nil {
		t.Fatal("fill outside region must fail")
	}
}

func TestRegionCopyOnWrite(t *testing.T) {
	m := mem(8)
	parent := NewRegion(m, RData, 2)
	pfn, _, _, _ := parent.Fill(0, true)
	m.StoreWord(pfn, 0, 77)

	child := parent.Dup()
	if m.Ref(pfn) != 2 {
		t.Fatalf("frame ref after dup = %d, want 2", m.Ref(pfn))
	}
	// Read through the child: same frame, not writable.
	cp, w, _, _ := child.Fill(0, false)
	if cp != pfn || w {
		t.Fatalf("child read fill = (%d,%v), want (%d,false)", cp, w, pfn)
	}
	// Write through the child: private copy, original untouched.
	cp, w, res, err := child.Fill(0, true)
	if err != nil || cp == pfn || !w || res != FillCopied {
		t.Fatalf("child write fill = (%d,%v,%v,%v)", cp, w, res, err)
	}
	if m.LoadWord(cp, 0) != 77 {
		t.Fatal("COW copy lost contents")
	}
	m.StoreWord(cp, 0, 88)
	if m.LoadWord(pfn, 0) != 77 {
		t.Fatal("write through child leaked into parent")
	}
	// Parent now holds the sole reference again: writable.
	pp, w, _, _ := parent.Fill(0, true)
	if pp != pfn || !w {
		t.Fatalf("parent after child copy = (%d,%v)", pp, w)
	}
	if m.Ref(pfn) != 1 {
		t.Fatalf("parent frame ref = %d, want 1", m.Ref(pfn))
	}
}

func TestRegionDetachFreesFrames(t *testing.T) {
	m := mem(8)
	r := NewRegion(m, RData, 3)
	r.Fill(0, true)
	r.Fill(1, true)
	if m.InUse() != 2 {
		t.Fatalf("InUse = %d", m.InUse())
	}
	r.Attach()
	if n := r.Detach(); n != 1 {
		t.Fatalf("Detach = %d, want 1", n)
	}
	if m.InUse() != 2 {
		t.Fatal("frames freed while still attached")
	}
	if n := r.Detach(); n != 0 {
		t.Fatalf("final Detach = %d", n)
	}
	if m.InUse() != 0 {
		t.Fatalf("InUse after final detach = %d, want 0", m.InUse())
	}
}

func TestRegionDupThenDetachSharedFrames(t *testing.T) {
	m := mem(8)
	a := NewRegion(m, RData, 1)
	pfn, _, _, _ := a.Fill(0, true)
	b := a.Dup()
	a.Detach()
	if m.Ref(pfn) != 1 {
		t.Fatalf("ref after parent detach = %d, want 1", m.Ref(pfn))
	}
	// b can now write the frame directly (sole owner).
	bp, w, _, _ := b.Fill(0, true)
	if bp != pfn || !w {
		t.Fatalf("b fill = (%d,%v)", bp, w)
	}
	b.Detach()
	if m.InUse() != 0 {
		t.Fatal("frame leaked")
	}
}

func TestRegionGrowShrink(t *testing.T) {
	m := mem(16)
	r := NewRegion(m, RData, 2)
	r.Fill(0, true)
	r.Fill(1, true)
	r.Grow(3)
	if r.Pages() != 5 {
		t.Fatalf("Pages = %d, want 5", r.Pages())
	}
	r.Fill(4, true)
	if freed := r.Shrink(4); freed != 2 { // pages 1..4, of which 1 and 4 resident
		t.Fatalf("Shrink freed %d, want 2", freed)
	}
	if r.Pages() != 1 || m.InUse() != 1 {
		t.Fatalf("Pages=%d InUse=%d", r.Pages(), m.InUse())
	}
	if _, _, _, err := r.Fill(1, false); err == nil {
		t.Fatal("fill past shrunk end must fail")
	}
}

func TestRegionShrinkOutOfRangePanics(t *testing.T) {
	m := mem(2)
	r := NewRegion(m, RData, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Shrink(2)
}

func TestRegionOOM(t *testing.T) {
	m := mem(1)
	r := NewRegion(m, RData, 2)
	if _, _, _, err := r.Fill(0, true); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.Fill(1, true); err != hw.ErrNoMemory {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
}

func TestPRegionGeometry(t *testing.T) {
	m := mem(8)
	pr := &PRegion{Reg: NewRegion(m, RData, 4), Base: DataBase}
	if !pr.Contains(DataBase) || !pr.Contains(DataBase+4*hw.PageSize-1) {
		t.Fatal("Contains misses own range")
	}
	if pr.Contains(DataBase-1) || pr.Contains(DataBase+4*hw.PageSize) {
		t.Fatal("Contains accepts outside range")
	}
	if pr.PageIndex(DataBase+2*hw.PageSize+123) != 2 {
		t.Fatal("PageIndex wrong")
	}
}

func TestFindScansInOrder(t *testing.T) {
	m := mem(8)
	list := []*PRegion{
		{Reg: NewRegion(m, RText, 2), Base: TextBase},
		{Reg: NewRegion(m, RData, 2), Base: DataBase},
	}
	if pr := Find(list, DataBase+hw.PageSize); pr != list[1] {
		t.Fatal("Find missed data region")
	}
	if pr := Find(list, ShmBase); pr != nil {
		t.Fatal("Find invented a region")
	}
}

func TestOverlaps(t *testing.T) {
	m := mem(8)
	list := []*PRegion{{Reg: NewRegion(m, RShm, 4), Base: ShmBase}}
	cases := []struct {
		base  hw.VAddr
		pages int
		want  bool
	}{
		{ShmBase, 1, true},
		{ShmBase + 3*hw.PageSize, 1, true},
		{ShmBase + 4*hw.PageSize, 1, false},
		{ShmBase - hw.PageSize, 1, false},
		{ShmBase - hw.PageSize, 2, true},
	}
	for _, c := range cases {
		if got := Overlaps(list, c.base, c.pages); got != c.want {
			t.Errorf("Overlaps(%#x,%d) = %v, want %v", uint32(c.base), c.pages, got, c.want)
		}
	}
}

func TestDupListSharesTextCopiesData(t *testing.T) {
	m := mem(16)
	text := NewRegion(m, RText, 2)
	data := NewRegion(m, RData, 2)
	list := []*PRegion{{Reg: text, Base: TextBase}, {Reg: data, Base: DataBase}}
	dup := DupList(list)
	if dup[0].Reg != text {
		t.Fatal("text must be shared, not duplicated")
	}
	if text.Refs() != 2 {
		t.Fatalf("text refs = %d, want 2", text.Refs())
	}
	if dup[1].Reg == data {
		t.Fatal("data must be duplicated")
	}
	DetachList(dup)
	if text.Refs() != 1 {
		t.Fatal("detach did not release text")
	}
}

func TestRemove(t *testing.T) {
	m := mem(8)
	a := &PRegion{Reg: NewRegion(m, RShm, 1), Base: ShmBase}
	b := &PRegion{Reg: NewRegion(m, RShm, 1), Base: ShmBase + hw.PageSize}
	list := []*PRegion{a, b}
	list = Remove(list, a)
	if len(list) != 1 || list[0] != b {
		t.Fatalf("Remove left %v", list)
	}
	list = Remove(list, a) // absent: no-op
	if len(list) != 1 {
		t.Fatal("Remove of absent element changed list")
	}
}

// Property: after any interleaving of Dup/write/detach, no frame leaks and
// every region sees its own writes.
func TestQuickCOWNoLeaks(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		m := mem(256)
		root := NewRegion(m, RData, 4)
		live := []*Region{root}
		shadow := []map[int]uint32{{}} // expected word 0 of each page
		for _, op := range ops {
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			switch op % 3 {
			case 0: // dup
				if len(live) < 8 {
					live = append(live, live[i].Dup())
					cp := map[int]uint32{}
					for k, v := range shadow[i] {
						cp[k] = v
					}
					shadow = append(shadow, cp)
				}
			case 1: // write a random page
				page := rng.Intn(4)
				val := rng.Uint32()
				pfn, w, _, err := live[i].Fill(page, true)
				if err != nil || !w {
					return false
				}
				m.StoreWord(pfn, 0, val)
				shadow[i][page] = val
			case 2: // verify a page this region has written
				for page, want := range shadow[i] {
					pfn, _, _, err := live[i].Fill(page, false)
					if err != nil {
						return false
					}
					if m.LoadWord(pfn, 0) != want {
						return false
					}
					break
				}
			}
		}
		for _, r := range live {
			r.Detach()
		}
		return m.InUse() == 0
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
