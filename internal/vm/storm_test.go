package vm

import (
	"sync"
	"testing"

	"repro/internal/hw"
)

// Fault-storm races over the lock-free fill fast path. These tests are the
// -race companions of the property test in region_test.go: many goroutines
// (standing in for CPUs) fault concurrently through FillOn while frames are
// zero-filled, shared, COW-broken and upgraded, and the invariant checked
// is conservation — every frame allocated is freed exactly once, and the
// O(1) resident counter never drifts from the page table it summarizes.

// TestFaultStormRefcountConservation hammers one region from several
// goroutines with mixed read/write faults. First-touch zero fills race on
// the same stripes; resident re-faults take the lock-free path. Afterwards
// the resident counter must match the table and detach must free every
// frame.
func TestFaultStormRefcountConservation(t *testing.T) {
	const (
		ncpu   = 4
		pages  = 64
		rounds = 500
	)
	m := hw.NewMemory(4 * pages)
	m.AttachCaches(ncpu)
	r := NewRegion(m, RData, pages)

	var wg sync.WaitGroup
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			idx := (cpu * 17) % pages
			for i := 0; i < rounds; i++ {
				write := i%3 != 0
				pfn, w, _, err := r.FillOn(idx, write, cpu)
				if err != nil {
					t.Errorf("cpu %d: FillOn(%d,%v) = %v", cpu, idx, write, err)
					return
				}
				if write && !w {
					t.Errorf("cpu %d: write fill of page %d came back read-only", cpu, idx)
					return
				}
				if write {
					// Each goroutine owns word index cpu, so stores to a
					// shared frame never race on the same word.
					m.StoreWord(pfn, uint32(cpu), uint32(i))
				}
				idx = (idx + 7) % pages
			}
		}(cpu)
	}
	wg.Wait()

	present := 0
	for i := 0; i < pages; i++ {
		if r.Frame(i) != hw.NoPFN {
			present++
		}
	}
	if got := r.Resident(); got != present {
		t.Fatalf("resident counter = %d, table has %d present pages", got, present)
	}
	if m.InUse() != present {
		t.Fatalf("InUse = %d, want %d", m.InUse(), present)
	}
	r.Detach()
	if m.InUse() != 0 {
		t.Fatalf("frames leaked: InUse = %d after detach", m.InUse())
	}
}

// TestConcurrentCOWBreakConservation duplicates a fully-resident region and
// lets writers hammer parent and child concurrently. Competing COW breaks
// on the same frame must neither leak it (both copiers decrement once, so
// the ref reaches zero exactly when the last sharer leaves) nor double-free
// it. Readers mixed in exercise the sole-owner writable upgrade racing the
// copies.
func TestConcurrentCOWBreakConservation(t *testing.T) {
	const (
		pages   = 32
		writers = 4
		rounds  = 300
	)
	m := hw.NewMemory(8 * pages)
	m.AttachCaches(writers)
	parent := NewRegion(m, RData, pages)
	for i := 0; i < pages; i++ {
		if _, _, _, err := parent.Fill(i, true); err != nil {
			t.Fatal(err)
		}
	}
	child := parent.Dup()
	if got := child.Resident(); got != pages {
		t.Fatalf("dup resident = %d, want %d", got, pages)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := parent
			if w%2 == 1 {
				r = child
			}
			idx := (w * 11) % pages
			for i := 0; i < rounds; i++ {
				pfn, writable, _, err := r.FillOn(idx, i%4 != 0, w)
				if err != nil {
					t.Errorf("writer %d: FillOn(%d) = %v", w, idx, err)
					return
				}
				if i%4 != 0 {
					if !writable {
						t.Errorf("writer %d: write fill of page %d read-only", w, idx)
						return
					}
					m.StoreWord(pfn, uint32(w), uint32(i))
				}
				idx = (idx + 5) % pages
			}
		}(w)
	}
	wg.Wait()

	// Every page of both regions is resident; every frame ref must match
	// how many of the two regions map it.
	for i := 0; i < pages; i++ {
		pp, cp := parent.Frame(i), child.Frame(i)
		if pp == hw.NoPFN || cp == hw.NoPFN {
			t.Fatalf("page %d lost residency: parent=%v child=%v", i, pp, cp)
		}
		want := int32(1)
		if pp == cp {
			want = 2
		}
		if m.Ref(pp) != want {
			t.Fatalf("page %d: parent frame ref = %d, want %d", i, m.Ref(pp), want)
		}
		if pp != cp && m.Ref(cp) != 1 {
			t.Fatalf("page %d: child frame ref = %d, want 1", i, m.Ref(cp))
		}
	}
	parent.Detach()
	child.Detach()
	if m.InUse() != 0 {
		t.Fatalf("frames leaked or double-freed: InUse = %d", m.InUse())
	}
}
