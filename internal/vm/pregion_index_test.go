package vm

import (
	"sync"
	"testing"

	"repro/internal/hw"
)

// Tests for the ordered pregion interval index: the sorted-by-base
// invariant, binary-search Find/Overlaps at exact boundaries, zero-page
// regions, and a -race storm proving the index swap preserves the
// conservation invariants the linear scan had.

const pg = hw.PageSize

func newPR(m *hw.Memory, base hw.VAddr, pages int) *PRegion {
	return &PRegion{Reg: NewRegion(m, RData, pages), Base: base}
}

func checkSorted(t *testing.T, list []*PRegion) {
	t.Helper()
	for i := 1; i < len(list); i++ {
		if list[i].Base < list[i-1].Base {
			t.Fatalf("index out of order at %d: %#x after %#x",
				i, uint32(list[i].Base), uint32(list[i-1].Base))
		}
	}
}

func TestInsertKeepsOrder(t *testing.T) {
	m := mem(256)
	var list []*PRegion
	// Insert in a deliberately shuffled order.
	for _, base := range []hw.VAddr{0x9000, 0x1000, 0x5000, 0x3000, 0xd000, 0x7000} {
		list = Insert(list, newPR(m, base, 1))
		checkSorted(t, list)
	}
	if len(list) != 6 {
		t.Fatalf("len = %d, want 6", len(list))
	}
	for _, base := range []hw.VAddr{0x1000, 0x3000, 0x5000, 0x7000, 0x9000, 0xd000} {
		pr := Find(list, base)
		if pr == nil || pr.Base != base {
			t.Fatalf("Find(%#x) = %v", uint32(base), pr)
		}
	}
}

func TestFindExactBoundaries(t *testing.T) {
	m := mem(256)
	a := newPR(m, 0x4000, 4) // [0x4000, 0x8000)
	b := newPR(m, 0x8000, 2) // adjacent, not overlapping: [0x8000, 0xa000)
	list := BuildList(b, a)
	checkSorted(t, list)

	// Exact base is inside; exact end is outside (and here, inside b).
	if Find(list, 0x4000) != a {
		t.Fatalf("Find at exact base missed")
	}
	if Find(list, 0x7fff) != a {
		t.Fatalf("Find at last byte missed")
	}
	if Find(list, 0x8000) != b {
		t.Fatalf("Find at a's end must hit the adjacent b")
	}
	if Find(list, 0x9fff) != b {
		t.Fatalf("Find at b's last byte missed")
	}
	if Find(list, 0xa000) != nil {
		t.Fatalf("Find past the last end must miss")
	}
	if Find(list, 0x3fff) != nil {
		t.Fatalf("Find below the first base must miss")
	}
}

func TestOverlapsAdjacentAndBoundaries(t *testing.T) {
	m := mem(256)
	list := BuildList(newPR(m, 0x4000, 4)) // [0x4000, 0x8000)

	// Adjacent on both sides: no overlap.
	if Overlaps(list, 0x2000, 2) || Overlaps(list, 0x8000, 4) {
		t.Fatalf("adjacent ranges reported overlapping")
	}
	// One page of contact on either edge: overlap.
	if !Overlaps(list, 0x3000, 2) || !Overlaps(list, 0x7000, 2) {
		t.Fatalf("edge-contact ranges reported clear")
	}
	// Fully inside and fully spanning: overlap.
	if !Overlaps(list, 0x5000, 1) || !Overlaps(list, 0x1000, 16) {
		t.Fatalf("contained/spanning ranges reported clear")
	}
	// Zero-length probe never collides.
	if Overlaps(list, 0x5000, 0) {
		t.Fatalf("zero-page probe reported overlapping")
	}
}

func TestZeroPageRegions(t *testing.T) {
	m := mem(256)
	big := newPR(m, 0x4000, 8) // [0x4000, 0xc000)
	z := newPR(m, 0x6000, 2)
	z.Reg.Shrink(2) // now zero pages, based inside big's span
	small := newPR(m, 0xc000, 1)
	list := BuildList(big, z, small)
	checkSorted(t, list)

	// Find must step over the empty entry and land on the spanning region.
	if Find(list, 0x6000) != big || Find(list, 0x6fff) != big {
		t.Fatalf("Find did not skip the zero-page entry")
	}
	// The empty entry obstructs nothing.
	if got := Overlaps(list, 0x6000, 1); !got {
		t.Fatalf("probe inside big must still collide with big")
	}
	listNoBig := Remove(list, big)
	if Overlaps(listNoBig, 0x6000, 1) {
		t.Fatalf("zero-page entry obstructed an attachment")
	}
	if Find(listNoBig, 0x6000) != nil {
		t.Fatalf("Find matched a zero-page entry")
	}
	// But it stays findable for membership ops: Remove by identity works.
	rest := Remove(listNoBig, z)
	if len(rest) != 1 || rest[0] != small {
		t.Fatalf("Remove of zero-page entry failed: %v", rest)
	}
}

// Remove must clear the vacated tail slot so the backing array does not pin
// the detached pregion (the PR 6 leak fix).
func TestRemoveClearsTailSlot(t *testing.T) {
	m := mem(256)
	list := BuildList(newPR(m, 0x1000, 1), newPR(m, 0x3000, 1), newPR(m, 0x5000, 1))
	victim := list[1]
	shorter := Remove(list, victim)
	if len(shorter) != 2 {
		t.Fatalf("len = %d, want 2", len(shorter))
	}
	if tail := list[:3][2]; tail != nil {
		t.Fatalf("backing array tail still holds %v", tail)
	}
	// Removing something not on the list is a no-op.
	if got := Remove(shorter, victim); len(got) != 2 {
		t.Fatalf("second Remove changed the list")
	}
}

func TestMergeAndPartition(t *testing.T) {
	m := mem(256)
	a := BuildList(newPR(m, 0x1000, 1), newPR(m, 0x5000, 1), newPR(m, 0x9000, 1))
	b := BuildList(newPR(m, 0x3000, 1), newPR(m, 0x7000, 1))
	merged := MergeLists(a, b)
	if len(merged) != 5 {
		t.Fatalf("merged len = %d", len(merged))
	}
	checkSorted(t, merged)

	kept, rest := Partition(merged, func(pr *PRegion) bool { return pr.Base < 0x6000 })
	checkSorted(t, kept)
	checkSorted(t, rest)
	if len(kept) != 3 || len(rest) != 2 {
		t.Fatalf("partition sizes %d/%d", len(kept), len(rest))
	}
	if TotalPages(merged) != 5 {
		t.Fatalf("TotalPages = %d, want 5", TotalPages(merged))
	}
}

// TestPregionIndexStorm interleaves Find, DupList, Insert and Remove the
// way the fault and fork paths do — readers under a share-group read lock,
// writers under the update lock — and checks conservation: after every
// duplicate is detached and the list drained, no frame remains in use.
// Run with -race; the RWMutex stands in for the group's MRLock.
func TestPregionIndexStorm(t *testing.T) {
	const (
		readers = 4
		rounds  = 400
	)
	m := mem(4096)
	m.AttachCaches(readers)

	var mu sync.RWMutex
	list := BuildList(
		newPR(m, 0x10_0000, 4),
		newPR(m, 0x20_0000, 4),
		newPR(m, 0x30_0000, 4),
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			va := hw.VAddr(0x10_0000)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				if pr := Find(list, va); pr != nil {
					if _, _, _, err := pr.Reg.FillOn(pr.PageIndex(va), i%2 == 0, cpu); err != nil {
						t.Errorf("FillOn: %v", err)
						mu.RUnlock()
						return
					}
				}
				dup := DupList(list)
				mu.RUnlock()
				checkSorted(t, dup)
				DetachList(dup)
				va = hw.VAddr(0x10_0000 + uint32(i%3)*0x10_0000 + uint32(i%4)*pg)
			}
		}(r)
	}

	// Writer: churn attachments under the exclusive lock.
	base := hw.VAddr(0x50_0000)
	for i := 0; i < rounds; i++ {
		pr := newPR(m, base, 2)
		mu.Lock()
		if Overlaps(list, pr.Base, 2) {
			t.Fatalf("carved range overlapped")
		}
		list = Insert(list, pr)
		checkSorted(t, list)
		mu.Unlock()
		base += 4 * pg

		if i%2 == 1 {
			mu.Lock()
			victim := list[len(list)-1]
			list = Remove(list, victim)
			mu.Unlock()
			victim.Reg.Detach()
		}
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	DetachList(list)
	list = nil
	mu.Unlock()
	if m.InUse() != 0 {
		t.Fatalf("InUse = %d after the storm drained", m.InUse())
	}
}
