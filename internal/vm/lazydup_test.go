package vm

import (
	"sync"
	"testing"

	"repro/internal/hw"
)

// TestLazyDupCOWBreakStorm is the -race companion for the lazy duplication
// protocol (DESIGN.md §16): a resident source region is cloned in O(1) many
// times per round, and the clones' fates race — some exit untouched (the
// O(1) dropKid path), some write-fault (materializing every pending sibling
// and COW-breaking against the source), some read-fault — while writers
// keep storming the source itself, forcing the fill paths to detect the
// pending duplication and resolve it mid-flight. The invariants are the
// conservation laws the whole design rests on: every lazy clone is
// eventually either materialized or dropped (LazyDups == LazyBreaks +
// LazyDrops), a write fill never returns read-only, and teardown frees
// every frame exactly once.
func TestLazyDupCOWBreakStorm(t *testing.T) {
	const (
		pages  = 32
		clones = 6
	)
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	m := hw.NewMemory(64 * pages)
	m.AttachCaches(4)
	src := NewRegion(m, RData, pages)
	for i := 0; i < pages; i++ {
		if _, _, _, err := src.Fill(i, true); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; round < rounds; round++ {
		kids := make([]*Region, clones)
		for i := range kids {
			kids[i] = src.DupLazy()
		}
		var wg sync.WaitGroup
		for i, k := range kids {
			wg.Add(1)
			go func(i int, k *Region) {
				defer wg.Done()
				cpu := i % 4
				switch i % 3 {
				case 0:
					// Exit untouched: the O(1) unlink, unless a sibling's
					// fault materialized this clone first.
				case 1:
					// Write faults: materialize, then COW-break a stride of
					// pages against the source's frames.
					for j := i % 3; j < pages; j += 3 {
						pfn, w, _, err := k.FillOn(j, true, cpu)
						if err != nil {
							t.Errorf("clone %d: write FillOn(%d) = %v", i, j, err)
							return
						}
						if !w {
							t.Errorf("clone %d: write fill of page %d came back read-only", i, j)
							return
						}
						m.StoreWord(pfn, uint32(cpu), uint32(round))
					}
				case 2:
					// Read faults: materialize and share, never break.
					for j := i % 5; j < pages; j += 5 {
						if _, _, _, err := k.FillOn(j, false, cpu); err != nil {
							t.Errorf("clone %d: read FillOn(%d) = %v", i, j, err)
							return
						}
					}
				}
				k.Detach()
			}(i, k)
		}
		// The source keeps writing while its clones resolve: each store must
		// re-break any alias the resolution installed, and the fast path must
		// refuse writable returns while the duplication is pending.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < pages; j += 2 {
				pfn, w, _, err := src.FillOn(j, true, 3)
				if err != nil || !w {
					t.Errorf("source: write FillOn(%d) = (%v, %v)", j, w, err)
					return
				}
				m.StoreWord(pfn, 3, ^uint32(round))
			}
		}()
		wg.Wait()
		if src.Lazy() {
			t.Fatalf("round %d: pending lazy state survived the storm", round)
		}
	}

	// Deterministic drop pass: with no fault in between, a clone that
	// detaches unlinks in O(1) and the walk never happens. (The racing
	// rounds above rarely see this — a sibling's materialization usually
	// resolves the whole pending set first, which is also correct.)
	drops0 := m.LazyDrops.Load()
	for i := 0; i < clones; i++ {
		src.DupLazy().Detach()
	}
	if got := m.LazyDrops.Load() - drops0; got != clones {
		t.Errorf("untouched clones dropped = %d, want %d", got, clones)
	}

	dups, breaks, drops := m.LazyDups.Load(), m.LazyBreaks.Load(), m.LazyDrops.Load()
	if dups == 0 {
		t.Fatal("storm never created a lazy clone")
	}
	if dups != breaks+drops {
		t.Fatalf("lazy conservation violated: dups=%d breaks=%d drops=%d", dups, breaks, drops)
	}
	if breaks == 0 {
		t.Error("storm never materialized a clone")
	}
	// After the last round the source must own its frames alone: every
	// clone detached, so each page's frame ref is exactly one.
	for i := 0; i < pages; i++ {
		pfn := src.Frame(i)
		if pfn == hw.NoPFN {
			t.Fatalf("source page %d lost residency", i)
		}
		if got := m.Ref(pfn); got != 1 {
			t.Fatalf("source page %d: frame ref = %d, want 1 after all clones detached", i, got)
		}
	}
	src.Detach()
	if m.InUse() != 0 {
		t.Fatalf("frames leaked or double-freed: InUse = %d", m.InUse())
	}
}
