// Package vm implements the System V.3 region model of virtual memory
// [Bach 1986] that the share-group implementation is built on: regions
// describe contiguous virtual spaces and hold the page-table information;
// pregions are linked per process (or, for a share group, per shared
// address block) and describe where a region is attached.
//
// The package supplies the pieces the paper's §6.2 needs: copy-on-write
// duplication for fork and non-VM-sharing sproc, demand zero-fill, region
// grow/shrink for sbrk and stack autogrow, and fault resolution that scans
// a private pregion list first and a shared list second. The fault path is
// built so the common case — page resident, permission adequate — takes no
// lock at all: the page table is an array of atomic PTE words (fillfast.go)
// and only the fill slow paths (zero-fill, copy-on-write, permission
// upgrade) serialize, on a per-page-range stripe rather than a region-wide
// mutex.
package vm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hw"
)

// ErrTextWrite reports a store into a text region, which is never
// writable: System V shares text between processes, so a breakpoint-style
// modification requires a private text region instead.
var ErrTextWrite = errors.New("vm: store to text region")

// RegionType classifies a region.
type RegionType int

const (
	RText  RegionType = iota // program text (read-only, shared on fork)
	RData                    // heap/data (grows up via brk)
	RStack                   // stack (grows down, autogrow)
	RShm                     // System V shared memory / mmap
	RPRDA                    // process data area: always private (paper §5.1)
)

var regionTypeNames = map[RegionType]string{
	RText: "text", RData: "data", RStack: "stack", RShm: "shm", RPRDA: "prda",
}

func (t RegionType) String() string {
	if s, ok := regionTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("region(%d)", int(t))
}

// The packed PTE word. An empty slot is 0; a filled slot carries the frame
// number in the low 32 bits, ptePresent, and pteWritable if a store through
// this region may hit the frame directly. The writable bit is a cached
// permission, not the authority: it is set only while the region holds the
// sole reference to the frame (or on a fresh zero fill), cleared by Dup
// when aliases are created, and re-derived from the frame reference count
// on the fill slow path. A clear bit therefore never permits a wrong store;
// at worst it costs one extra fault that upgrades it.
const (
	ptePFNMask  uint64 = 1<<32 - 1
	ptePresent  uint64 = 1 << 32
	pteWritable uint64 = 1 << 33
)

// outOfRange builds the fill bounds error (shared by the fast and slow
// paths; it lives here so fillfast.go stays free of fmt).
func outOfRange(r *Region, idx, npages int) error {
	return fmt.Errorf("vm: page %d outside %s region of %d pages", idx, r.Type, npages)
}

func pteEncode(pfn hw.PFN, writable bool) uint64 {
	w := uint64(pfn) | ptePresent
	if writable {
		w |= pteWritable
	}
	return w
}

// pteTable is an immutable-length page table: the slot values mutate
// atomically, but the slice itself is only ever swapped wholesale (Grow,
// Shrink) under every stripe, so a reader holding a *pteTable can index it
// freely within len(slots).
type pteTable struct {
	slots []atomic.Uint64
}

// regionStripes is the number of fill-path locks per region. Slot idx is
// protected by stripe idx&(regionStripes-1); structural operations (grow,
// shrink, duplicate, final detach) hold all stripes.
const regionStripes = 8

// Region is a contiguous virtual space: its page table (one atomic PTE per
// page, empty until demand-filled), a type, and a reference count of
// attachments. A region attached by several pregions (shared text, SysV
// shm, a share group's shared list) is one object; copy-on-write
// duplication creates a second Region whose slots alias the same frames
// with bumped frame reference counts.
//
// Concurrency: Fill/FillOn may be called from any number of CPUs at once
// with no external lock. Structural mutations (Grow, Shrink, Dup, the
// final Detach) exclude the fill slow paths by taking every stripe, but
// the lock-free fast path can still be concurrently reading the old table;
// the share group's update-lock + TLB-shootdown protocol (paper §6.2) is
// what keeps a racing fault from resurrecting a freed frame, exactly as it
// keeps a racing hardware TLB from doing the same.
type Region struct {
	Type     RegionType
	table    atomic.Pointer[pteTable]
	refs     atomic.Int32 // pregion attachments
	resident atomic.Int64 // filled slots, maintained so Resident is O(1)
	mem      *hw.Memory
	stripes  [regionStripes]sync.Mutex

	// Lazy-duplication state (DESIGN.md §16). A region created by DupLazy
	// starts with an empty table and a pointer back to its source; the
	// source keeps the clone on lazyKids until the first slow-path fault on
	// either side (or a structural operation) materializes every pending
	// clone in one walk. lazyPend counts the pending relationships the
	// region participates in — one per pending clone for a source, one for
	// an unmaterialized clone — so both fill paths detect "lazy work
	// pending" with a single atomic load. Invariant: a region with pending
	// clones is never itself unmaterialized (DupLazy resolves an
	// unmaterialized source first), so resolution never chains.
	lazySrc  atomic.Pointer[Region]
	lazyKids []*Region // pending clones; guarded by lockAll
	lazyPend atomic.Int32

	// everWritable latches when the region first installs a writable PTE.
	// A region that never held one (text, never-stored data) has no
	// writable bits to clear at duplication time and its address space
	// cannot cache a writable TLB entry, so its dup skips the source-side
	// flush entirely.
	everWritable atomic.Bool

	// dirty, when non-nil, is the armed checkpoint dirty bitmap (dirty.go):
	// the fill slow path records every writable install in it so iterative
	// pre-copy can harvest the pages re-dirtied between passes.
	dirty atomic.Pointer[dirtyMap]
}

// NewRegion creates a region of npages demand-zero pages.
func NewRegion(mem *hw.Memory, typ RegionType, npages int) *Region {
	r := &Region{Type: typ, mem: mem}
	r.refs.Store(1)
	r.table.Store(&pteTable{slots: make([]atomic.Uint64, npages)})
	return r
}

// lockAll takes every stripe (in index order; all callers use this helper,
// so the order is consistent and deadlock-free).
func (r *Region) lockAll() {
	for i := range r.stripes {
		r.stripes[i].Lock()
	}
}

func (r *Region) unlockAll() {
	for i := range r.stripes {
		r.stripes[i].Unlock()
	}
}

// lockAllResolved materializes any pending lazy duplication, then takes
// every stripe, retrying if a new clone slipped in between. The structural
// operations (grow, shrink, reclaim, eager dup) go through this: they
// mutate the table, and a pending clone's deferred snapshot depends on the
// table staying exactly as it was at DupLazy time.
func (r *Region) lockAllResolved() {
	for {
		r.materialize()
		r.lockAll()
		if r.lazyPend.Load() == 0 {
			return
		}
		r.unlockAll()
	}
}

// Pages returns the current length of the region in pages.
func (r *Region) Pages() int { return len(r.table.Load().slots) }

// Refs returns the attachment count.
func (r *Region) Refs() int32 { return r.refs.Load() }

// Attach bumps the attachment count (a new pregion references the region).
func (r *Region) Attach() { r.refs.Add(1) }

// Detach drops one attachment; the last detach frees every resident frame.
// It returns the remaining count.
func (r *Region) Detach() int32 {
	n := r.refs.Add(-1)
	if n < 0 {
		panic("vm: Detach below zero")
	}
	if n == 0 {
		// A clone dying untouched just unlinks from its source: no frame
		// was ever aliased, so there is nothing to free and the source
		// keeps its writable bits — the O(1) exit half of the O(1) spawn.
		if src := r.lazySrc.Load(); src != nil && src.dropKid(r) {
			return 0
		}
		// Pending clones of this region alias into its frames; they must
		// materialize before the frames are released.
		r.materialize()
		r.lockAll()
		t := r.table.Load()
		for i := range t.slots {
			if w := t.slots[i].Load(); w&ptePresent != 0 {
				r.mem.DecRef(hw.PFN(w & ptePFNMask))
				t.slots[i].Store(0)
			}
		}
		r.resident.Store(0)
		r.unlockAll()
	}
	return n
}

// Frame returns the frame backing page idx, or NoPFN if not yet filled.
func (r *Region) Frame(idx int) hw.PFN {
	t := r.table.Load()
	if idx < 0 || idx >= len(t.slots) {
		return hw.NoPFN
	}
	if w := t.slots[idx].Load(); w&ptePresent != 0 {
		return hw.PFN(w & ptePFNMask)
	}
	return hw.NoPFN
}

// Resident counts demand-filled pages. O(1): the count is maintained on
// fill, shrink and detach (sgtop and the conservation audits call this
// per group member). An unmaterialized lazy clone reports zero — it
// genuinely occupies no frames until its first touch.
func (r *Region) Resident() int { return int(r.resident.Load()) }

// EverWritable reports whether the region has ever installed a writable
// PTE — and so whether its address space may cache a writable TLB entry
// that a COW duplication must flush.
func (r *Region) EverWritable() bool { return r.everWritable.Load() }

// Lazy reports whether the region is an unmaterialized clone or has
// unmaterialized clones pending (the storm tests use it to assert the
// steady state drains).
func (r *Region) Lazy() bool { return r.lazyPend.Load() != 0 }

// FillResult says how a fault was resolved, so the fault handler can
// charge the right cost.
type FillResult int

const (
	FillCached FillResult = iota // frame was already resident and adequate
	FillZeroed                   // demand zero-fill allocated a frame
	FillCopied                   // copy-on-write broke an alias
)

// Fill resolves a fault on page idx for the given access. It demand-fills
// an absent page with a zero frame and, on a write to a frame whose
// reference count exceeds one (a copy-on-write alias created by Dup),
// replaces it with a private copy. It returns the frame to map and whether
// the mapping may be writable. writable is true exactly when this region
// holds the sole reference to the frame, so a TLB entry installed from the
// result can never allow a store to an aliased frame.
func (r *Region) Fill(idx int, write bool) (pfn hw.PFN, writable bool, res FillResult, err error) {
	return r.FillOn(idx, write, -1)
}

// fillSlow is the locked half of FillOn: lazy-dup materialization, zero
// fill, copy-on-write break, and writable upgrade, serialized per page on
// the slot's stripe. The caller (the lock-free fast path in fillfast.go)
// has already failed the unlocked check; everything is re-checked here
// because another CPU may have filled the slot between the check and the
// lock. lazyPages reports the page-table slots a materialization walked on
// this call, so the kernel can charge the deferred duplication cost to the
// faulting CPU.
func (r *Region) fillSlow(idx int, write bool, cpu int, acct *hw.FrameAcct, resv *hw.FrameResv) (pfn hw.PFN, writable bool, res FillResult, lazyPages int, err error) {
	stripe := &r.stripes[idx&(regionStripes-1)]
	for {
		stripe.Lock()
		if r.lazyPend.Load() == 0 {
			break
		}
		// A lazy duplication is pending on this region (it is an untouched
		// clone, or clones of it are). The stripe cannot be held across the
		// resolution — materialize takes every stripe — so drop it, walk,
		// and retry. The pending count is stable under the stripe (DupLazy
		// and resolveKids both require all stripes), so the re-check after
		// relock is decisive.
		stripe.Unlock()
		lazyPages += r.materialize()
	}
	defer stripe.Unlock()
	// Re-load the table under the stripe: holding any stripe excludes the
	// structural operations, so this snapshot cannot be swapped out from
	// under us.
	t := r.table.Load()
	if idx >= len(t.slots) {
		return hw.NoPFN, false, FillCached, lazyPages, fmt.Errorf("vm: page %d outside %s region of %d pages", idx, r.Type, len(t.slots))
	}
	slot := &t.slots[idx]
	w := slot.Load()
	if w&ptePresent == 0 {
		// Demand zero fill, charged to the faulting principal (drawing on
		// its spawn-time reservation first, when it has one).
		pfn, err = r.mem.AllocResv(cpu, acct, resv)
		if err != nil {
			return hw.NoPFN, false, FillCached, lazyPages, err
		}
		writable = r.Type != RText
		if writable {
			r.everWritable.Store(true)
			r.noteDirty(idx)
		}
		slot.Store(pteEncode(pfn, writable))
		r.resident.Add(1)
		return pfn, writable, FillZeroed, lazyPages, nil
	}
	pfn = hw.PFN(w & ptePFNMask)
	if r.Type == RText {
		return pfn, false, FillCached, lazyPages, nil
	}
	if w&pteWritable != 0 {
		// Another CPU resolved this page (zero fill or COW break) between
		// our fast-path check and taking the stripe.
		return pfn, true, FillCached, lazyPages, nil
	}
	if r.mem.Ref(pfn) == 1 {
		if !write && r.dirty.Load() != nil {
			// Tracking armed: a read must not re-install the writable bit,
			// or pages merely read between pre-copy passes would count as
			// dirtied. The store that eventually comes re-faults and lands
			// in the upgrade below with write == true.
			return pfn, false, FillCached, lazyPages, nil
		}
		// Sole owner again (the alias detached since Dup cleared the bit):
		// upgrade in place.
		r.everWritable.Store(true)
		r.noteDirty(idx)
		slot.Store(pteEncode(pfn, true))
		return pfn, true, FillCached, lazyPages, nil
	}
	if !write {
		return pfn, false, FillCached, lazyPages, nil
	}
	// Copy-on-write: break the alias; the copy is the faulter's charge.
	cp, err := r.mem.CopyFrameResv(pfn, cpu, acct, resv)
	if err != nil {
		return hw.NoPFN, false, FillCached, lazyPages, err
	}
	r.mem.DecRefOn(pfn, cpu)
	r.everWritable.Store(true)
	r.noteDirty(idx)
	slot.Store(pteEncode(cp, true))
	return cp, true, FillCopied, lazyPages, nil
}

// ReclaimZero frees the region's resident, sole-referenced, all-zero
// frames charged to acct (every frame when acct is nil), returning how
// many it released. Dropping an all-zero page is semantically lossless —
// the next touch demand-zero-fills an identical frame — which makes this
// the cheapest way for an over-quota principal to get back under its
// ceiling before the allocator has to report ENOMEM. Like Shrink, the
// caller must hold the share group's update lock and complete a TLB
// shootdown before relying on the frames being unreachable (paper §6.2).
func (r *Region) ReclaimZero(acct *hw.FrameAcct, cpu int) int {
	if r.Type == RText {
		return 0 // text never holds zero garbage worth refaulting
	}
	r.lockAllResolved()
	defer r.unlockAll()
	t := r.table.Load()
	freed := 0
	for i := range t.slots {
		w := t.slots[i].Load()
		if w&ptePresent == 0 {
			continue
		}
		pfn := hw.PFN(w & ptePFNMask)
		if r.mem.Ref(pfn) != 1 {
			continue // a COW alias: freeing it would not uncharge anyway
		}
		if acct != nil && r.mem.OwnerOf(pfn) != acct {
			continue
		}
		if !r.mem.FrameZero(pfn) {
			continue
		}
		r.mem.DecRefOn(pfn, cpu)
		t.slots[i].Store(0)
		freed++
	}
	r.resident.Add(int64(-freed))
	return freed
}

// ReclaimZeroList runs ReclaimZero over every region of a pregion list,
// returning the total frames released. The caller holds the list's update
// lock and owes a TLB shootdown before the frames are unreachable.
func ReclaimZeroList(list []*PRegion, acct *hw.FrameAcct, cpu int) int {
	freed := 0
	for _, pr := range list {
		freed += pr.Reg.ReclaimZero(acct, cpu)
	}
	return freed
}

// Dup creates an eager copy-on-write duplicate of the region: a new
// Region whose page table aliases the same frames with incremented frame
// reference counts, built with a full table walk at spawn time. Subsequent
// writes through either region break the alias page by page (the fork path
// of paper §6.2). When the source has ever held a writable PTE its
// writable bits are cleared too — a later store through the source
// re-faults and the slow path re-derives the permission — and the caller
// is then responsible for flushing stale writable TLB entries for the
// source space. A source that never installed a writable PTE has nothing
// to clear and needs no flush, so the walk is pure aliasing.
//
// Fork no longer uses this path by default: DupLazy defers the whole walk
// to first touch, making creation O(1) in image size. Dup remains the
// measured ablation (Config.EagerDup, benchtab E1c) and the simple API for
// callers that want a materialized copy immediately.
func (r *Region) Dup() *Region {
	r.lockAllResolved()
	defer r.unlockAll()
	t := r.table.Load()
	d := &Region{Type: r.Type, mem: r.mem}
	d.refs.Store(1)
	dt := &pteTable{slots: make([]atomic.Uint64, len(t.slots))}
	clearSrc := r.everWritable.Load()
	n := int64(0)
	for i := range t.slots {
		w := t.slots[i].Load()
		if w&ptePresent == 0 {
			continue
		}
		pfn := hw.PFN(w & ptePFNMask)
		r.mem.IncRef(pfn)
		if clearSrc && w&pteWritable != 0 {
			t.slots[i].Store(pteEncode(pfn, false))
		}
		dt.slots[i].Store(pteEncode(pfn, false))
		n++
	}
	d.table.Store(dt)
	d.resident.Store(n)
	return d
}

// DupLazy creates a copy-on-write duplicate in O(1) of the region size:
// only the region header is cloned — the clone's table is empty and the
// source merely records the clone on its pending list. The PTE aliasing,
// frame refcount bumps, and source writable-bit clearing that Dup does at
// spawn time are deferred to the first slow-path fault on either region
// (materialize), riding the striped fill locks; a clone that exits
// untouched unlinks in O(1) and the walk never happens at all.
//
// The caller owes the same source-space TLB flush as Dup when the source
// has ever held a writable PTE (EverWritable): that flush cannot be
// deferred, because a store through a stale writable TLB entry would never
// fault, and an unfaulted store cannot be retroactively excluded from the
// clone's snapshot. After the flush the fast path keeps the source honest —
// it refuses to reinstall a writable mapping while a duplication is
// pending — so materialization itself needs no shootdown.
func (r *Region) DupLazy() *Region {
	// An unmaterialized clone cannot serve as a source (its table is still
	// empty); resolve it first so pending chains stay one level deep and
	// the resolution walk never recurses.
	if r.lazySrc.Load() != nil {
		r.materialize()
	}
	r.lockAll()
	defer r.unlockAll()
	d := &Region{Type: r.Type, mem: r.mem}
	d.refs.Store(1)
	d.table.Store(&pteTable{slots: make([]atomic.Uint64, len(r.table.Load().slots))})
	if r.resident.Load() == 0 {
		// Nothing resident: the clone is an ordinary demand-zero region
		// and needs no link back to the source.
		return d
	}
	d.lazySrc.Store(r)
	d.lazyPend.Store(1)
	r.lazyKids = append(r.lazyKids, d)
	r.lazyPend.Add(1)
	r.mem.LazyDups.Add(1)
	return d
}

// materialize resolves every lazy relationship the region is pending in:
// as an unmaterialized clone, by resolving its source (which populates
// this clone along with its siblings); as a source, by resolving its own
// pending clones. It returns the number of page-table slots walked — the
// deferred duplication work the kernel charges to the faulting CPU. Safe
// to call from any number of CPUs at once; the walk happens once and
// racers contribute zero.
func (r *Region) materialize() int {
	walked := 0
	for r.lazyPend.Load() != 0 {
		if src := r.lazySrc.Load(); src != nil {
			walked += src.resolveKids()
			continue
		}
		walked += r.resolveKids()
	}
	return walked
}

// resolveKids is the deferred half of DupLazy: one walk over the source
// table aliases every present frame into every pending clone at once,
// bumps the frame refcounts, and — only when the source has ever held a
// writable PTE — clears the source's writable bits so its next store
// re-faults and breaks the alias. The spawn-time flush already removed
// any writable TLB entries for the source space, and the fill fast path
// refuses to reinstall one while the duplication is pending, so no
// shootdown happens here. Lock order is source-then-clone, and a clone
// never resolves while it has a pending source, so the order is acyclic.
func (r *Region) resolveKids() int {
	r.lockAll()
	kids := r.lazyKids
	r.lazyKids = nil
	if len(kids) == 0 {
		r.unlockAll()
		return 0
	}
	for _, k := range kids {
		k.lockAll()
	}
	t := r.table.Load()
	clearSrc := r.everWritable.Load()
	aliased := int64(0)
	for i := range t.slots {
		w := t.slots[i].Load()
		if w&ptePresent == 0 {
			continue
		}
		pfn := hw.PFN(w & ptePFNMask)
		for _, k := range kids {
			r.mem.IncRef(pfn)
			k.table.Load().slots[i].Store(pteEncode(pfn, false))
		}
		if clearSrc && w&pteWritable != 0 {
			t.slots[i].Store(pteEncode(pfn, false))
		}
		aliased++
	}
	walked := len(t.slots) * len(kids)
	r.mem.LazyBreaks.Add(int64(len(kids)))
	r.mem.LazyBreakPages.Add(int64(walked))
	for _, k := range kids {
		k.resident.Store(aliased)
		k.lazySrc.Store(nil)
		k.lazyPend.Add(-1)
		k.unlockAll()
	}
	r.lazyPend.Add(-int32(len(kids)))
	r.unlockAll()
	return walked
}

// dropKid unlinks a dying, never-touched clone from its source: no frame
// was aliased yet, so the clone's teardown has nothing to free and the
// source keeps its writable bits. It reports false when a concurrent
// materialization resolved the clone first — the caller then tears it
// down normally.
func (r *Region) dropKid(k *Region) bool {
	r.lockAll()
	defer r.unlockAll()
	for i, kid := range r.lazyKids {
		if kid != k {
			continue
		}
		r.lazyKids = append(r.lazyKids[:i], r.lazyKids[i+1:]...)
		k.lazySrc.Store(nil)
		k.lazyPend.Add(-1)
		r.lazyPend.Add(-1)
		r.mem.LazyDrops.Add(1)
		return true
	}
	return false
}

// Grow extends the region by n demand-zero pages (sbrk, stack autogrow).
func (r *Region) Grow(n int) {
	if n < 0 {
		panic("vm: Grow with negative count")
	}
	r.lockAllResolved()
	defer r.unlockAll()
	t := r.table.Load()
	nt := &pteTable{slots: make([]atomic.Uint64, len(t.slots)+n)}
	for i := range t.slots {
		nt.slots[i].Store(t.slots[i].Load())
	}
	r.table.Store(nt)
}

// Shrink removes the last n pages, releasing their frames. The caller must
// hold the share group's update lock and complete a TLB shootdown before
// the freed frames can be considered unreachable (paper §6.2: the physical
// pages must not be freed until all members have agreed not to reference
// them; the synchronous shootdown provides that agreement). It returns the
// number of frames released.
func (r *Region) Shrink(n int) int {
	r.lockAllResolved()
	defer r.unlockAll()
	t := r.table.Load()
	if n < 0 || n > len(t.slots) {
		panic("vm: Shrink out of range")
	}
	freed := 0
	for i := len(t.slots) - n; i < len(t.slots); i++ {
		if w := t.slots[i].Load(); w&ptePresent != 0 {
			r.mem.DecRef(hw.PFN(w & ptePFNMask))
			t.slots[i].Store(0)
			freed++
		}
	}
	r.resident.Add(int64(-freed))
	r.table.Store(&pteTable{slots: t.slots[:len(t.slots)-n]})
	return freed
}
