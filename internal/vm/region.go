// Package vm implements the System V.3 region model of virtual memory
// [Bach 1986] that the share-group implementation is built on: regions
// describe contiguous virtual spaces and hold the page-table information;
// pregions are linked per process (or, for a share group, per shared
// address block) and describe where a region is attached.
//
// The package supplies the pieces the paper's §6.2 needs: copy-on-write
// duplication for fork and non-VM-sharing sproc, demand zero-fill, region
// grow/shrink for sbrk and stack autogrow, and fault resolution that scans
// a private pregion list first and a shared list second. The fault path is
// built so the common case — page resident, permission adequate — takes no
// lock at all: the page table is an array of atomic PTE words (fillfast.go)
// and only the fill slow paths (zero-fill, copy-on-write, permission
// upgrade) serialize, on a per-page-range stripe rather than a region-wide
// mutex.
package vm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hw"
)

// ErrTextWrite reports a store into a text region, which is never
// writable: System V shares text between processes, so a breakpoint-style
// modification requires a private text region instead.
var ErrTextWrite = errors.New("vm: store to text region")

// RegionType classifies a region.
type RegionType int

const (
	RText  RegionType = iota // program text (read-only, shared on fork)
	RData                    // heap/data (grows up via brk)
	RStack                   // stack (grows down, autogrow)
	RShm                     // System V shared memory / mmap
	RPRDA                    // process data area: always private (paper §5.1)
)

var regionTypeNames = map[RegionType]string{
	RText: "text", RData: "data", RStack: "stack", RShm: "shm", RPRDA: "prda",
}

func (t RegionType) String() string {
	if s, ok := regionTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("region(%d)", int(t))
}

// The packed PTE word. An empty slot is 0; a filled slot carries the frame
// number in the low 32 bits, ptePresent, and pteWritable if a store through
// this region may hit the frame directly. The writable bit is a cached
// permission, not the authority: it is set only while the region holds the
// sole reference to the frame (or on a fresh zero fill), cleared by Dup
// when aliases are created, and re-derived from the frame reference count
// on the fill slow path. A clear bit therefore never permits a wrong store;
// at worst it costs one extra fault that upgrades it.
const (
	ptePFNMask  uint64 = 1<<32 - 1
	ptePresent  uint64 = 1 << 32
	pteWritable uint64 = 1 << 33
)

// outOfRange builds the fill bounds error (shared by the fast and slow
// paths; it lives here so fillfast.go stays free of fmt).
func outOfRange(r *Region, idx, npages int) error {
	return fmt.Errorf("vm: page %d outside %s region of %d pages", idx, r.Type, npages)
}

func pteEncode(pfn hw.PFN, writable bool) uint64 {
	w := uint64(pfn) | ptePresent
	if writable {
		w |= pteWritable
	}
	return w
}

// pteTable is an immutable-length page table: the slot values mutate
// atomically, but the slice itself is only ever swapped wholesale (Grow,
// Shrink) under every stripe, so a reader holding a *pteTable can index it
// freely within len(slots).
type pteTable struct {
	slots []atomic.Uint64
}

// regionStripes is the number of fill-path locks per region. Slot idx is
// protected by stripe idx&(regionStripes-1); structural operations (grow,
// shrink, duplicate, final detach) hold all stripes.
const regionStripes = 8

// Region is a contiguous virtual space: its page table (one atomic PTE per
// page, empty until demand-filled), a type, and a reference count of
// attachments. A region attached by several pregions (shared text, SysV
// shm, a share group's shared list) is one object; copy-on-write
// duplication creates a second Region whose slots alias the same frames
// with bumped frame reference counts.
//
// Concurrency: Fill/FillOn may be called from any number of CPUs at once
// with no external lock. Structural mutations (Grow, Shrink, Dup, the
// final Detach) exclude the fill slow paths by taking every stripe, but
// the lock-free fast path can still be concurrently reading the old table;
// the share group's update-lock + TLB-shootdown protocol (paper §6.2) is
// what keeps a racing fault from resurrecting a freed frame, exactly as it
// keeps a racing hardware TLB from doing the same.
type Region struct {
	Type     RegionType
	table    atomic.Pointer[pteTable]
	refs     atomic.Int32 // pregion attachments
	resident atomic.Int64 // filled slots, maintained so Resident is O(1)
	mem      *hw.Memory
	stripes  [regionStripes]sync.Mutex
}

// NewRegion creates a region of npages demand-zero pages.
func NewRegion(mem *hw.Memory, typ RegionType, npages int) *Region {
	r := &Region{Type: typ, mem: mem}
	r.refs.Store(1)
	r.table.Store(&pteTable{slots: make([]atomic.Uint64, npages)})
	return r
}

// lockAll takes every stripe (in index order; all callers use this helper,
// so the order is consistent and deadlock-free).
func (r *Region) lockAll() {
	for i := range r.stripes {
		r.stripes[i].Lock()
	}
}

func (r *Region) unlockAll() {
	for i := range r.stripes {
		r.stripes[i].Unlock()
	}
}

// Pages returns the current length of the region in pages.
func (r *Region) Pages() int { return len(r.table.Load().slots) }

// Refs returns the attachment count.
func (r *Region) Refs() int32 { return r.refs.Load() }

// Attach bumps the attachment count (a new pregion references the region).
func (r *Region) Attach() { r.refs.Add(1) }

// Detach drops one attachment; the last detach frees every resident frame.
// It returns the remaining count.
func (r *Region) Detach() int32 {
	n := r.refs.Add(-1)
	if n < 0 {
		panic("vm: Detach below zero")
	}
	if n == 0 {
		r.lockAll()
		t := r.table.Load()
		for i := range t.slots {
			if w := t.slots[i].Load(); w&ptePresent != 0 {
				r.mem.DecRef(hw.PFN(w & ptePFNMask))
				t.slots[i].Store(0)
			}
		}
		r.resident.Store(0)
		r.unlockAll()
	}
	return n
}

// Frame returns the frame backing page idx, or NoPFN if not yet filled.
func (r *Region) Frame(idx int) hw.PFN {
	t := r.table.Load()
	if idx < 0 || idx >= len(t.slots) {
		return hw.NoPFN
	}
	if w := t.slots[idx].Load(); w&ptePresent != 0 {
		return hw.PFN(w & ptePFNMask)
	}
	return hw.NoPFN
}

// Resident counts demand-filled pages. O(1): the count is maintained on
// fill, shrink and detach (sgtop and the conservation audits call this
// per group member).
func (r *Region) Resident() int { return int(r.resident.Load()) }

// FillResult says how a fault was resolved, so the fault handler can
// charge the right cost.
type FillResult int

const (
	FillCached FillResult = iota // frame was already resident and adequate
	FillZeroed                   // demand zero-fill allocated a frame
	FillCopied                   // copy-on-write broke an alias
)

// Fill resolves a fault on page idx for the given access. It demand-fills
// an absent page with a zero frame and, on a write to a frame whose
// reference count exceeds one (a copy-on-write alias created by Dup),
// replaces it with a private copy. It returns the frame to map and whether
// the mapping may be writable. writable is true exactly when this region
// holds the sole reference to the frame, so a TLB entry installed from the
// result can never allow a store to an aliased frame.
func (r *Region) Fill(idx int, write bool) (pfn hw.PFN, writable bool, res FillResult, err error) {
	return r.FillOn(idx, write, -1)
}

// fillSlow is the locked half of FillOn: zero fill, copy-on-write break,
// and writable upgrade, serialized per page on the slot's stripe. The
// caller (the lock-free fast path in fillfast.go) has already failed the
// unlocked check; everything is re-checked here because another CPU may
// have filled the slot between the check and the lock.
func (r *Region) fillSlow(idx int, write bool, cpu int, acct *hw.FrameAcct) (pfn hw.PFN, writable bool, res FillResult, err error) {
	stripe := &r.stripes[idx&(regionStripes-1)]
	stripe.Lock()
	defer stripe.Unlock()
	// Re-load the table under the stripe: holding any stripe excludes the
	// structural operations, so this snapshot cannot be swapped out from
	// under us.
	t := r.table.Load()
	if idx >= len(t.slots) {
		return hw.NoPFN, false, FillCached, fmt.Errorf("vm: page %d outside %s region of %d pages", idx, r.Type, len(t.slots))
	}
	slot := &t.slots[idx]
	w := slot.Load()
	if w&ptePresent == 0 {
		// Demand zero fill, charged to the faulting principal.
		pfn, err = r.mem.AllocFor(cpu, acct)
		if err != nil {
			return hw.NoPFN, false, FillCached, err
		}
		writable = r.Type != RText
		slot.Store(pteEncode(pfn, writable))
		r.resident.Add(1)
		return pfn, writable, FillZeroed, nil
	}
	pfn = hw.PFN(w & ptePFNMask)
	if r.Type == RText {
		return pfn, false, FillCached, nil
	}
	if w&pteWritable != 0 {
		// Another CPU resolved this page (zero fill or COW break) between
		// our fast-path check and taking the stripe.
		return pfn, true, FillCached, nil
	}
	if r.mem.Ref(pfn) == 1 {
		// Sole owner again (the alias detached since Dup cleared the bit):
		// upgrade in place.
		slot.Store(pteEncode(pfn, true))
		return pfn, true, FillCached, nil
	}
	if !write {
		return pfn, false, FillCached, nil
	}
	// Copy-on-write: break the alias; the copy is the faulter's charge.
	cp, err := r.mem.CopyFrameFor(pfn, cpu, acct)
	if err != nil {
		return hw.NoPFN, false, FillCached, err
	}
	r.mem.DecRefOn(pfn, cpu)
	slot.Store(pteEncode(cp, true))
	return cp, true, FillCopied, nil
}

// ReclaimZero frees the region's resident, sole-referenced, all-zero
// frames charged to acct (every frame when acct is nil), returning how
// many it released. Dropping an all-zero page is semantically lossless —
// the next touch demand-zero-fills an identical frame — which makes this
// the cheapest way for an over-quota principal to get back under its
// ceiling before the allocator has to report ENOMEM. Like Shrink, the
// caller must hold the share group's update lock and complete a TLB
// shootdown before relying on the frames being unreachable (paper §6.2).
func (r *Region) ReclaimZero(acct *hw.FrameAcct, cpu int) int {
	if r.Type == RText {
		return 0 // text never holds zero garbage worth refaulting
	}
	r.lockAll()
	defer r.unlockAll()
	t := r.table.Load()
	freed := 0
	for i := range t.slots {
		w := t.slots[i].Load()
		if w&ptePresent == 0 {
			continue
		}
		pfn := hw.PFN(w & ptePFNMask)
		if r.mem.Ref(pfn) != 1 {
			continue // a COW alias: freeing it would not uncharge anyway
		}
		if acct != nil && r.mem.OwnerOf(pfn) != acct {
			continue
		}
		if !r.mem.FrameZero(pfn) {
			continue
		}
		r.mem.DecRefOn(pfn, cpu)
		t.slots[i].Store(0)
		freed++
	}
	r.resident.Add(int64(-freed))
	return freed
}

// ReclaimZeroList runs ReclaimZero over every region of a pregion list,
// returning the total frames released. The caller holds the list's update
// lock and owes a TLB shootdown before the frames are unreachable.
func ReclaimZeroList(list []*PRegion, acct *hw.FrameAcct, cpu int) int {
	freed := 0
	for _, pr := range list {
		freed += pr.Reg.ReclaimZero(acct, cpu)
	}
	return freed
}

// Dup creates a copy-on-write duplicate of the region: a new Region whose
// page table aliases the same frames with incremented frame reference
// counts. Subsequent writes through either region break the alias page by
// page (the fork path of paper §6.2). Because the frames become aliased,
// the source region's writable bits are cleared too — a later store through
// the source re-faults and the slow path re-derives the permission — and
// the caller is responsible for flushing stale writable TLB entries for
// the source space.
func (r *Region) Dup() *Region {
	r.lockAll()
	defer r.unlockAll()
	t := r.table.Load()
	d := &Region{Type: r.Type, mem: r.mem}
	d.refs.Store(1)
	dt := &pteTable{slots: make([]atomic.Uint64, len(t.slots))}
	n := int64(0)
	for i := range t.slots {
		w := t.slots[i].Load()
		if w&ptePresent == 0 {
			continue
		}
		pfn := hw.PFN(w & ptePFNMask)
		r.mem.IncRef(pfn)
		t.slots[i].Store(pteEncode(pfn, false))
		dt.slots[i].Store(pteEncode(pfn, false))
		n++
	}
	d.table.Store(dt)
	d.resident.Store(n)
	return d
}

// Grow extends the region by n demand-zero pages (sbrk, stack autogrow).
func (r *Region) Grow(n int) {
	if n < 0 {
		panic("vm: Grow with negative count")
	}
	r.lockAll()
	defer r.unlockAll()
	t := r.table.Load()
	nt := &pteTable{slots: make([]atomic.Uint64, len(t.slots)+n)}
	for i := range t.slots {
		nt.slots[i].Store(t.slots[i].Load())
	}
	r.table.Store(nt)
}

// Shrink removes the last n pages, releasing their frames. The caller must
// hold the share group's update lock and complete a TLB shootdown before
// the freed frames can be considered unreachable (paper §6.2: the physical
// pages must not be freed until all members have agreed not to reference
// them; the synchronous shootdown provides that agreement). It returns the
// number of frames released.
func (r *Region) Shrink(n int) int {
	r.lockAll()
	defer r.unlockAll()
	t := r.table.Load()
	if n < 0 || n > len(t.slots) {
		panic("vm: Shrink out of range")
	}
	freed := 0
	for i := len(t.slots) - n; i < len(t.slots); i++ {
		if w := t.slots[i].Load(); w&ptePresent != 0 {
			r.mem.DecRef(hw.PFN(w & ptePFNMask))
			t.slots[i].Store(0)
			freed++
		}
	}
	r.resident.Add(int64(-freed))
	r.table.Store(&pteTable{slots: t.slots[:len(t.slots)-n]})
	return freed
}
