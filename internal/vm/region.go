// Package vm implements the System V.3 region model of virtual memory
// [Bach 1986] that the share-group implementation is built on: regions
// describe contiguous virtual spaces and hold the page-table information;
// pregions are linked per process (or, for a share group, per shared
// address block) and describe where a region is attached.
//
// The package supplies the pieces the paper's §6.2 needs: copy-on-write
// duplication for fork and non-VM-sharing sproc, demand zero-fill, region
// grow/shrink for sbrk and stack autogrow, and fault resolution that scans
// a private pregion list first and a shared list second.
package vm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hw"
)

// ErrTextWrite reports a store into a text region, which is never
// writable: System V shares text between processes, so a breakpoint-style
// modification requires a private text region instead.
var ErrTextWrite = errors.New("vm: store to text region")

// RegionType classifies a region.
type RegionType int

const (
	RText  RegionType = iota // program text (read-only, shared on fork)
	RData                    // heap/data (grows up via brk)
	RStack                   // stack (grows down, autogrow)
	RShm                     // System V shared memory / mmap
	RPRDA                    // process data area: always private (paper §5.1)
)

var regionTypeNames = map[RegionType]string{
	RText: "text", RData: "data", RStack: "stack", RShm: "shm", RPRDA: "prda",
}

func (t RegionType) String() string {
	if s, ok := regionTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("region(%d)", int(t))
}

// Region is a contiguous virtual space: its page table (frame per page,
// NoPFN until demand-filled), a type, and a reference count of attachments.
// A region attached by several pregions (shared text, SysV shm, a share
// group's shared list) is one object; copy-on-write duplication creates a
// second Region whose slots alias the same frames with bumped frame
// reference counts.
type Region struct {
	mu    sync.Mutex
	Type  RegionType
	pages []hw.PFN
	refs  int32 // pregion attachments
	mem   *hw.Memory
}

// NewRegion creates a region of npages demand-zero pages.
func NewRegion(mem *hw.Memory, typ RegionType, npages int) *Region {
	r := &Region{Type: typ, pages: make([]hw.PFN, npages), refs: 1, mem: mem}
	for i := range r.pages {
		r.pages[i] = hw.NoPFN
	}
	return r
}

// Pages returns the current length of the region in pages.
func (r *Region) Pages() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pages)
}

// Refs returns the attachment count.
func (r *Region) Refs() int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refs
}

// Attach bumps the attachment count (a new pregion references the region).
func (r *Region) Attach() {
	r.mu.Lock()
	r.refs++
	r.mu.Unlock()
}

// Detach drops one attachment; the last detach frees every resident frame.
// It returns the remaining count.
func (r *Region) Detach() int32 {
	r.mu.Lock()
	r.refs--
	n := r.refs
	if n < 0 {
		r.mu.Unlock()
		panic("vm: Detach below zero")
	}
	if n == 0 {
		for i, pfn := range r.pages {
			if pfn != hw.NoPFN {
				r.mem.DecRef(pfn)
				r.pages[i] = hw.NoPFN
			}
		}
	}
	r.mu.Unlock()
	return n
}

// Frame returns the frame backing page idx, or NoPFN if not yet filled.
func (r *Region) Frame(idx int) hw.PFN {
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx < 0 || idx >= len(r.pages) {
		return hw.NoPFN
	}
	return r.pages[idx]
}

// Resident counts demand-filled pages.
func (r *Region) Resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, p := range r.pages {
		if p != hw.NoPFN {
			n++
		}
	}
	return n
}

// FillResult says how a fault was resolved, so the fault handler can
// charge the right cost.
type FillResult int

const (
	FillCached FillResult = iota // frame was already resident and adequate
	FillZeroed                   // demand zero-fill allocated a frame
	FillCopied                   // copy-on-write broke an alias
)

// Fill resolves a fault on page idx for the given access. It demand-fills
// an absent page with a zero frame and, on a write to a frame whose
// reference count exceeds one (a copy-on-write alias created by Dup),
// replaces it with a private copy. It returns the frame to map and whether
// the mapping may be writable. writable is true exactly when this region
// holds the sole reference to the frame, so a TLB entry installed from the
// result can never allow a store to an aliased frame.
func (r *Region) Fill(idx int, write bool) (pfn hw.PFN, writable bool, res FillResult, err error) {
	return r.FillOn(idx, write, -1)
}

// FillOn is Fill with CPU affinity: frames allocated or freed on the fault
// path go through cpu's frame cache, so concurrent faults on different
// processors never contend on the global frame pool (the fault hot path of
// paper §6.2). cpu < 0 uses the global pool.
func (r *Region) FillOn(idx int, write bool, cpu int) (pfn hw.PFN, writable bool, res FillResult, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx < 0 || idx >= len(r.pages) {
		return hw.NoPFN, false, FillCached, fmt.Errorf("vm: page %d outside %s region of %d pages", idx, r.Type, len(r.pages))
	}
	if r.Type == RText && write {
		return hw.NoPFN, false, FillCached, ErrTextWrite
	}
	pfn = r.pages[idx]
	if pfn == hw.NoPFN {
		pfn, err = r.mem.AllocOn(cpu)
		if err != nil {
			return hw.NoPFN, false, FillCached, err
		}
		r.pages[idx] = pfn
		return pfn, r.Type != RText, FillZeroed, nil
	}
	if r.Type == RText {
		return pfn, false, FillCached, nil
	}
	if r.mem.Ref(pfn) == 1 {
		return pfn, true, FillCached, nil
	}
	if !write {
		return pfn, false, FillCached, nil
	}
	// Copy-on-write: break the alias.
	copy, err := r.mem.CopyFrameOn(pfn, cpu)
	if err != nil {
		return hw.NoPFN, false, FillCached, err
	}
	r.mem.DecRefOn(pfn, cpu)
	r.pages[idx] = copy
	return copy, true, FillCopied, nil
}

// Dup creates a copy-on-write duplicate of the region: a new Region whose
// page table aliases the same frames with incremented frame reference
// counts. Subsequent writes through either region break the alias page by
// page (the fork path of paper §6.2). The caller is responsible for
// flushing stale writable TLB entries for the source space.
func (r *Region) Dup() *Region {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := &Region{Type: r.Type, pages: make([]hw.PFN, len(r.pages)), refs: 1, mem: r.mem}
	for i, pfn := range r.pages {
		d.pages[i] = pfn
		if pfn != hw.NoPFN {
			r.mem.IncRef(pfn)
		}
	}
	return d
}

// Grow extends the region by n demand-zero pages (sbrk, stack autogrow).
func (r *Region) Grow(n int) {
	if n < 0 {
		panic("vm: Grow with negative count")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < n; i++ {
		r.pages = append(r.pages, hw.NoPFN)
	}
}

// Shrink removes the last n pages, releasing their frames. The caller must
// hold the share group's update lock and complete a TLB shootdown before
// the freed frames can be considered unreachable (paper §6.2: the physical
// pages must not be freed until all members have agreed not to reference
// them; the synchronous shootdown provides that agreement). It returns the
// number of frames released.
func (r *Region) Shrink(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 0 || n > len(r.pages) {
		panic("vm: Shrink out of range")
	}
	freed := 0
	for i := len(r.pages) - n; i < len(r.pages); i++ {
		if r.pages[i] != hw.NoPFN {
			r.mem.DecRef(r.pages[i])
			freed++
		}
	}
	r.pages = r.pages[:len(r.pages)-n]
	return freed
}
