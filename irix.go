// Package irix reproduces the process share groups of Barton & Wagner,
// "Enhanced Resource Sharing in UNIX" (Computing Systems 1(2), 1988; USENIX
// Winter 1988): a System V.3-style UNIX kernel, simulated in user space on
// a software-TLB multiprocessor, whose processes can selectively share the
// virtual address space, open descriptors, current/root directory, umask,
// ulimit and ids through the sproc(2)/prctl(2) interface.
//
// A simulated program is a Go closure running against a *Ctx, the
// process's user-mode surface: every memory access goes through a per-CPU
// software-managed TLB and the region fault handler, and every system call
// crosses the kernel entry point where shared-resource synchronization
// happens. Example:
//
//	sys := irix.New(irix.Config{NCPU: 4})
//	sys.Start("main", func(c *irix.Ctx) {
//		c.Sproc("worker", func(w *irix.Ctx, arg int64) {
//			w.Add32(irix.DataBase, uint32(arg)) // shared memory
//		}, irix.PRSADDR|irix.PRSFDS, 42)
//		c.Wait()
//	})
//	sys.WaitIdle()
//
// The subsystem packages live under internal/: hw (machine), klock (kernel
// locks incl. the shared read lock), vm (regions), fs, proc, sched, ipc,
// threads (the Mach baseline), uspin (busy-wait sync), core (the shared
// address block — the paper's contribution) and kernel (the syscall
// layer). This package re-exports the programming surface.
package irix

import (
	"repro/internal/ckpt"
	"repro/internal/fs"
	"repro/internal/hw"
	"repro/internal/ipc"
	"repro/internal/kernel"
	"repro/internal/proc"
	"repro/internal/threads"
	"repro/internal/uspin"
	"repro/internal/vm"
)

// Core programming surface.
type (
	// Config describes the simulated machine and kernel.
	Config = kernel.Config
	// Ctx is a process's user-mode execution surface (memory + syscalls).
	Ctx = kernel.Context
	// Main is a simulated program.
	Main = kernel.Main
	// Mask is a share mask for sproc.
	Mask = proc.Mask
	// VAddr is a 32-bit simulated virtual address.
	VAddr = hw.VAddr
	// Stat describes a file.
	Stat = fs.Stat
	// Handler is a signal handler.
	Handler = proc.Handler
	// Listener accepts stream connections. NetListen installs one behind
	// a descriptor; NetAccept takes that descriptor. The type is exported
	// for tests that reach under the descriptor table.
	Listener = ipc.Listener
	// PollFd is one entry of a Poll set: descriptor, requested events,
	// and the kernel-filled result mask.
	PollFd = kernel.PollFd
	// Task is a Mach-style task (the lightweight-process baseline).
	Task = threads.Task
	// FaultError reports an unresolvable memory access (caught SIGSEGV).
	FaultError = kernel.FaultError
	// Errno is a System V errno value; every syscall failure carries one.
	Errno = kernel.Errno
	// SysError is the envelope every failing syscall returns: the call
	// name, the errno, and the underlying subsystem error (errors.As /
	// errors.Is compatible).
	SysError = kernel.SysError
	// Sysno numbers a system call in the gateway's descriptor table.
	Sysno = kernel.Sysno
	// SyscallStat is one row of the kernel's per-syscall accounting.
	SyscallStat = kernel.SyscallStat
	// Stats is a snapshot of the kernel's hot-path counters, including the
	// fault-injection and degradation counters and the fault fast-path
	// counters (lock-free fills, pregion-cache hits, page-vs-space
	// shootdowns).
	Stats = kernel.Stats
	// FaultSiteStat is one fault-injection site's check/inject counters.
	FaultSiteStat = kernel.FaultSiteStat
	// PrctlOpt selects a prctl(2) operation.
	PrctlOpt = kernel.PrctlOpt
	// Entitlement is a share group's settable resource entitlements —
	// CPU shares, frame quota, member cap — the argument of
	// Setshares (setshares(2)). The typed replacement for the raw
	// int64-valued prctl group options.
	Entitlement = kernel.GroupLimits
	// GroupUsage is a share group's delivery record — entitlements next
	// to consumption — returned by Getusage (getusage(2)) and listed
	// per live group in Stats.Groups.
	GroupUsage = kernel.GroupUsage
	// CkptOpts selects the pre-copy budget of a live group checkpoint
	// (Ckpt, ckpt(2)): passes over the dirty set before the
	// stop-the-world delta, and the pacing gap between them.
	CkptOpts = kernel.CkptOpts
	// CkptInfo is a checkpoint's cost report — pages copied live vs
	// stopped, cycles spent stopped, encoded image size.
	CkptInfo = kernel.CkptInfo
	// CkptImage is a share group's deterministic checkpoint image:
	// regions, resident pages, members, descriptor tables and shared
	// attributes. Restore (restore(2)) rebuilds a group from one.
	CkptImage = ckpt.Image
)

// ErrnoOf extracts the errno from any error a syscall returned (EOK for
// nil, EINVAL for errors from outside the syscall layer).
func ErrnoOf(err error) Errno { return kernel.ErrnoOf(err) }

// SysName names a syscall number ("open", "sproc", ...).
func SysName(n Sysno) string { return kernel.SysName(n) }

// Errno values (System V numbering) observable through ErrnoOf and
// errors.Is on syscall errors.
const (
	EOK     = kernel.EOK
	EPERM   = kernel.EPERM
	ENOENT  = kernel.ENOENT
	ESRCH   = kernel.ESRCH
	EINTR   = kernel.EINTR
	EBADF   = kernel.EBADF
	ECHILD  = kernel.ECHILD
	EAGAIN  = kernel.EAGAIN
	ENOMEM  = kernel.ENOMEM
	EACCES  = kernel.EACCES
	EFAULT  = kernel.EFAULT
	EEXIST  = kernel.EEXIST
	ENOTDIR = kernel.ENOTDIR
	EISDIR  = kernel.EISDIR
	EINVAL  = kernel.EINVAL
	EMFILE  = kernel.EMFILE
	EFBIG   = kernel.EFBIG
	EPIPE   = kernel.EPIPE
)

// Share mask bits (paper §5.1).
const (
	PRSADDR   = proc.PRSADDR   // share the virtual address space
	PRSULIMIT = proc.PRSULIMIT // share ulimit values
	PRSUMASK  = proc.PRSUMASK  // share the umask value
	PRSDIR    = proc.PRSDIR    // share current/root directory
	PRSFDS    = proc.PRSFDS    // share open file descriptors
	PRSID     = proc.PRSID     // share uid/gid
	PRSALL    = proc.PRSALL    // share everything
)

// prctl options (paper §5.2 plus the §8 scheduling extensions). Typed as
// PrctlOpt; Ctx also offers ergonomic wrappers (MaxProcs, SetStackSize,
// SetGang, ...) over the raw Prctl call.
const (
	PRMaxProcs     = kernel.PRMaxProcs
	PRMaxPProcs    = kernel.PRMaxPProcs
	PRSetStackSize = kernel.PRSetStackSize
	PRGetStackSize = kernel.PRGetStackSize
	PRSetGang      = kernel.PRSetGang
	PRGroupPrio    = kernel.PRGroupPrio
)

// Inode mode bits (Stat.Mode).
const (
	ModeDir  = fs.ModeDir
	ModeFile = fs.ModeFile
	ModeFIFO = fs.ModeFIFO
	ModeSock = fs.ModeSock
	TypeMask = fs.TypeMask
	PermMask = fs.PermMask
)

// Open flags and seek whences.
const (
	ORead   = fs.ORead
	OWrite  = fs.OWrite
	OAppend = fs.OAppend
	OCreat  = fs.OCreat
	OTrunc  = fs.OTrunc

	SeekSet = fs.SeekSet
	SeekCur = fs.SeekCur
	SeekEnd = fs.SeekEnd
)

// Readiness bits (Poll events/revents; level-triggered poll(2) semantics).
const (
	PollIn   = kernel.PollIn   // readable: data, EOF, or a pending connection
	PollOut  = kernel.PollOut  // writable: buffer space and a reader present
	PollErr  = kernel.PollErr  // write side of a readerless pipe (EPIPE)
	PollHup  = kernel.PollHup  // peer gone: writers closed, listener shut down
	PollNval = kernel.PollNval // descriptor not open
)

// Signals.
const (
	SIGHUP  = proc.SIGHUP
	SIGINT  = proc.SIGINT
	SIGKILL = proc.SIGKILL
	SIGSEGV = proc.SIGSEGV
	SIGPIPE = proc.SIGPIPE
	SIGTERM = proc.SIGTERM
	SIGUSR1 = proc.SIGUSR1
	SIGUSR2 = proc.SIGUSR2
	SIGCLD  = proc.SIGCLD
)

// Address-space geometry.
const (
	PageSize = hw.PageSize
	TextBase = vm.TextBase
	DataBase = vm.DataBase
	PRDABase = vm.PRDABase
	ShmBase  = vm.ShmBase
)

// Errors a program can observe.
var (
	ErrNoChildren  = kernel.ErrNoChildren
	ErrInterrupt   = kernel.ErrInterrupt
	ErrCkptBusy    = kernel.ErrCkptBusy
	ErrCkptQuiesce = kernel.ErrCkptQuiesce
	ErrNoProc      = kernel.ErrNoProc
	ErrTooMany     = kernel.ErrTooMany
	ErrPerm        = kernel.ErrPerm
	ErrNoRegion    = kernel.ErrNoRegion
	ErrNotExist    = fs.ErrNotExist
	ErrExist       = fs.ErrExist
	ErrBadFd       = fs.ErrBadFd
	ErrFileLimit   = fs.ErrFileLimit
	ErrPipe        = fs.ErrPipe
)

// User-level synchronization in shared memory (paper §3). The lock and
// barrier are hybrid spin-then-block: a bounded busy-wait, then a
// blockproc(2) sleep with unblockproc(2) wakeup. Each owns SyncBytes of
// memory at its VA (lock word plus waiter table).
type (
	// Spinlock is a hybrid mutual-exclusion lock. Lock spins then
	// blocks; LockSpin is the paper's pure busy-wait discipline.
	Spinlock = uspin.Mutex
	// Barrier is a sense-reversing hybrid barrier for N members.
	Barrier = uspin.Barrier
	// Counter is an atomic work-claiming cursor (self-scheduling).
	Counter = uspin.Counter
	// Word is a shared signalling word with interruptible Await waits —
	// the primitive for hand-rolled phase flags and readiness counts.
	Word = uspin.Word
)

// SyncBytes is the memory footprint of a Spinlock or Barrier: the lock
// words plus the waiter-pid table the blocking slow path registers in.
// Data placed beside a primitive must start at VA+SyncBytes or later.
const SyncBytes = uspin.MutexBytes

// ErrZeroBarrier rejects Barrier{N: 0}, which could never release.
var ErrZeroBarrier = uspin.ErrZeroBarrier

// System is a booted simulated machine and kernel. The embedded
// kernel.System provides the full surface: Start launches a program,
// WaitIdle blocks until every process has exited, Stats snapshots the
// kernel counters (including fault-injection and degradation counters).
type System struct {
	*kernel.System
}

// New boots a system. The zero Config gives 4 CPUs, 64 MiB of memory and
// default limits. It panics on an invalid configuration (negative CPU or
// memory counts, out-of-range fault rates); use NewChecked for the error.
func New(cfg Config) *System {
	return &System{kernel.NewSystem(cfg)}
}

// NewChecked is New returning configuration errors instead of panicking.
func NewChecked(cfg Config) (*System, error) {
	s, err := kernel.NewSystemChecked(cfg)
	if err != nil {
		return nil, err
	}
	return &System{s}, nil
}

// NewTask adopts the calling process as the bootstrap thread of a
// Mach-style task (the lightweight-process baseline of paper §2).
func NewTask(c *Ctx) *Task { return threads.NewTask(c) }
