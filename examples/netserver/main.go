// Netserver implements the paper's §1 motivating example: "a network
// server could share file descriptors with several children. The server
// would perform security checks and open a socket descriptor to the
// client, and then pass this descriptor to a waiting child with a simple
// message containing the descriptor."
//
// The dispatcher accepts connections, performs the "security check", and
// passes each accepted descriptor *number* to a waiting share-group worker
// through a shared-memory mailbox — the descriptor itself is already in
// the worker's table because descriptors are shared (PR_SFDS).
package main

import (
	"fmt"
	"log"

	irix "repro"
)

const (
	workers = 3
	clients = 6
)

func main() {
	sys := irix.New(irix.Config{NCPU: 4})

	// The server process: dispatcher + worker pool in one share group.
	sys.Start("server", func(c *irix.Ctx) {
		mbox, err := c.Mmap(1)
		if err != nil {
			log.Fatal(err)
		}
		// Mailbox protocol: word 0 = ticket (fd+1 when a job is ready,
		// 0 when free, ^0 = shutdown); word 1 = jobs completed.
		ticket, done := irix.Word{VA: mbox}, irix.Word{VA: mbox + 4}

		l, err := c.NetListen("echo")
		if err != nil {
			log.Fatal(err)
		}

		for w := 0; w < workers; w++ {
			c.Sproc("worker", func(wc *irix.Ctx, id int64) {
				for {
					// Claim a ticket with the hardware interlock.
					v, err := ticket.AwaitNe(wc, 0)
					if err != nil {
						return
					}
					if v == ^uint32(0) {
						return // shutdown broadcast: leave it set for the others
					}
					ok, _ := wc.CAS32(ticket.VA, v, 0)
					if !ok {
						continue // another worker claimed it
					}
					fd := int(v - 1)
					// The shared descriptor is immediately usable: serve
					// the connection and close our use of it.
					buf := wc.StackBase()
					req, err := wc.ReadString(fd, buf, 64)
					if err != nil {
						log.Fatalf("worker read: %v", err)
					}
					wc.WriteString(fd, buf+128, fmt.Sprintf("worker %d echoes %q", id, req))
					wc.Close(fd)
					done.Add(wc, 1)
				}
			}, irix.PRSADDR|irix.PRSFDS, int64(w))
		}

		// Client processes, outside the group, connect over the socket
		// queueing layer.
		for i := 0; i < clients; i++ {
			c.Fork("client", func(cc *irix.Ctx) {
				fd, err := cc.NetConnect("echo")
				if err != nil {
					log.Fatalf("connect: %v", err)
				}
				me := fmt.Sprintf("client %d", cc.Getpid())
				cc.WriteString(fd, irix.DataBase, me)
				resp, err := cc.ReadString(fd, irix.DataBase+4096, 128)
				if err != nil {
					log.Fatalf("client read: %v", err)
				}
				fmt.Printf("  %s\n", resp)
			})
		}

		// Dispatcher loop: accept, check, hand the descriptor number to
		// whichever worker grabs it first.
		for i := 0; i < clients; i++ {
			fd, err := c.NetAccept(l)
			if err != nil {
				log.Fatal(err)
			}
			// "Security check": a placeholder credential inspection.
			if uid := c.Getuid(); uid != 0 {
				c.Close(fd)
				continue
			}
			ticket.AwaitEq(c, 0)
			ticket.Store(c, uint32(fd+1))
		}

		// Wait for completion, then broadcast shutdown.
		done.AwaitEq(c, clients)
		ticket.AwaitEq(c, 0)
		ticket.Store(c, ^uint32(0))
		for i := 0; i < workers+clients; i++ {
			c.Wait()
		}
		fmt.Printf("served %d clients with %d share-group workers (descriptors passed by number)\n",
			clients, workers)
	})

	sys.WaitIdle()
}
