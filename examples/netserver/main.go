// Netserver implements the paper's §1 motivating example: "a network
// server could share file descriptors with several children. The server
// would perform security checks and open a socket descriptor to the
// client, and then pass this descriptor to a waiting child with a simple
// message containing the descriptor."
//
// The dispatcher accepts connections, performs the "security check", and
// passes each accepted descriptor *number* to a share-group worker — the
// descriptor itself is already in the worker's table because descriptors
// are shared (PR_SFDS).
//
// Member count, before and after: the original version of this example
// drove 3 workers through a one-slot busy-wait mailbox, so at most one
// connection was in flight at a time and holding more open would have
// taken one blocked worker each. With the readiness layer the pool is
// poll(2)-driven end to end — the dispatcher multiplexes the listener and
// the per-worker job pipes, each worker multiplexes its whole shard of
// connections through one poll set — and 2 workers now hold all 12 client
// connections open concurrently.
package main

import (
	"errors"
	"fmt"
	"log"

	irix "repro"
)

const (
	workers = 2
	clients = 12
)

func main() {
	sys := irix.New(irix.Config{NCPU: 4})

	// The server process: dispatcher + worker pool in one share group.
	sys.Start("server", func(c *irix.Ctx) {
		l, err := c.NetListen("echo")
		if err != nil {
			log.Fatal(err)
		}

		// One job pipe per worker: accepted descriptor numbers travel as
		// 4-byte messages. The read ends are non-blocking from the start
		// (workers batch-drain them); the flag rides the shared table.
		jobR := make([]int, workers)
		jobW := make([]int, workers)
		for w := range jobR {
			r, wr, err := c.Pipe()
			if err != nil {
				log.Fatal(err)
			}
			c.SetNonblock(r, true)
			jobR[w], jobW[w] = r, wr
		}
		for w := 0; w < workers; w++ {
			c.Sproc("worker", func(wc *irix.Ctx, id int64) {
				serveWorker(wc, id, jobR[id])
			}, irix.PRSADDR|irix.PRSFDS, int64(w))
		}

		// Client processes, outside the group, connect over the socket
		// queueing layer.
		for i := 0; i < clients; i++ {
			c.Fork("client", func(cc *irix.Ctx) {
				fd, err := cc.NetConnect("echo")
				if err != nil {
					log.Fatalf("connect: %v", err)
				}
				me := fmt.Sprintf("client %d", cc.Getpid())
				cc.WriteString(fd, irix.DataBase, me)
				resp, err := cc.ReadString(fd, irix.DataBase+4096, 128)
				if err != nil {
					log.Fatalf("client read: %v", err)
				}
				fmt.Printf("  %s\n", resp)
			})
		}

		// Poll-driven dispatcher: sleep until the listener turns readable,
		// accept, check, deal the descriptor number round-robin.
		lset := []irix.PollFd{{Fd: l, Events: irix.PollIn}}
		for i := 0; i < clients; i++ {
			if err := pollRetry(c, lset); err != nil {
				log.Fatal(err)
			}
			fd, err := c.NetAccept(l)
			if err != nil {
				log.Fatal(err)
			}
			// "Security check": a placeholder credential inspection.
			if uid := c.Getuid(); uid != 0 {
				c.Close(fd)
				continue
			}
			c.Store32(irix.DataBase, uint32(fd))
			if _, err := c.Write(jobW[i%workers], irix.DataBase, 4); err != nil {
				log.Fatal(err)
			}
		}

		// Shutdown sentinel down every job pipe, then reap.
		for w := 0; w < workers; w++ {
			c.Store32(irix.DataBase, ^uint32(0))
			if _, err := c.Write(jobW[w], irix.DataBase, 4); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < workers+clients; i++ {
			c.Wait()
		}
		fmt.Printf("served %d clients with %d poll-driven share-group workers (descriptors passed by number)\n",
			clients, workers)
	})

	sys.WaitIdle()
}

// pollRetry is an indefinite poll restarted across EINTR: poll(2) is
// pause-style non-restarting, and the dispatcher's clients deliver a
// SIGCLD every time one exits, so a bare Poll(-1) next to exiting
// children must be retried.
func pollRetry(c *irix.Ctx, set []irix.PollFd) error {
	for {
		_, err := c.Poll(set, -1)
		if err == nil || !errors.Is(err, irix.ErrInterrupt) {
			return err
		}
	}
}

// serveWorker multiplexes the job pipe plus every owned connection through
// one poll set: slot 0 is the job pipe, the rest are accepted descriptors
// this worker was dealt. A readable connection gets the echo treatment; a
// readable job pipe is batch-drained for new descriptor numbers until the
// shutdown sentinel arrives, after which the worker finishes its remaining
// connections and exits.
func serveWorker(wc *irix.Ctx, id int64, jobR int) {
	buf := wc.StackBase()
	set := []irix.PollFd{{Fd: jobR, Events: irix.PollIn}}
	draining := false
	for {
		if draining && len(set) == 1 {
			wc.Close(jobR)
			return
		}
		if err := pollRetry(wc, set); err != nil {
			log.Fatalf("worker poll: %v", err)
		}
		live := set[:1]
		for _, pf := range set[1:] {
			if pf.Revents == 0 {
				live = append(live, irix.PollFd{Fd: pf.Fd, Events: irix.PollIn})
				continue
			}
			// Sole reader of this connection: the PollIn edge cannot be
			// consumed by anyone else, so a blocking read returns at once.
			req, err := wc.ReadString(pf.Fd, buf, 64)
			if err != nil {
				log.Fatalf("worker read: %v", err)
			}
			wc.WriteString(pf.Fd, buf+128, fmt.Sprintf("worker %d echoes %q", id, req))
			wc.Close(pf.Fd)
		}
		set = live
		if set[0].Revents != 0 && !draining {
			for {
				n, err := wc.Read(jobR, buf+256, 4)
				if err != nil || n != 4 {
					break // EAGAIN: batch drained
				}
				v, _ := wc.Load32(buf + 256)
				if v == ^uint32(0) {
					draining = true
					break
				}
				set = append(set, irix.PollFd{Fd: int(v), Events: irix.PollIn})
			}
		}
		set[0] = irix.PollFd{Fd: jobR, Events: irix.PollIn}
	}
}
