// Quickstart: boot the simulated system, create a share group with
// sproc(2), and have the members cooperate through shared memory with
// busy-wait synchronization — the paper's basic programming model.
package main

import (
	"fmt"
	"log"

	irix "repro"
)

func main() {
	sys := irix.New(irix.Config{NCPU: 4})

	sys.Start("quickstart", func(c *irix.Ctx) {
		// Map eight pages of memory. Because the mapping happens before
		// the group is created, it is moved onto the shared pregion list
		// by the first sproc and every member sees it.
		shm, err := c.Mmap(8)
		if err != nil {
			log.Fatal(err)
		}
		lock := irix.Spinlock{VA: shm}  // the lock owns shm..shm+SyncBytes
		counter := shm + irix.SyncBytes // protected counter, past the lock
		lock.Init(c)

		// Create four members sharing everything. Each increments the
		// counter 1000 times under the user-level lock; no kernel calls
		// are needed on the synchronization fast path.
		const members, perMember = 4, 1000
		for i := 0; i < members; i++ {
			pid, err := c.Sproc("worker", func(w *irix.Ctx, arg int64) {
				for n := 0; n < perMember; n++ {
					lock.Lock(w)
					v, _ := w.Load32(counter)
					w.Store32(counter, v+1)
					lock.Unlock(w)
				}
			}, irix.PRSALL, int64(i))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("sproc'd worker pid %d\n", pid)
		}

		// Normal UNIX semantics are retained: wait(2) reaps members.
		for i := 0; i < members; i++ {
			if _, _, err := c.Wait(); err != nil {
				log.Fatal(err)
			}
		}
		v, _ := c.Load32(counter)
		fmt.Printf("counter = %d (want %d) — no lost updates through the shared space\n",
			v, members*perMember)

		// prctl reports the machine's parallelism, as the paper defines.
		fmt.Printf("PR_MAXPPROCS: the system can run %d processes in parallel\n", c.MaxPProcs())

		// Prefork serving pool: the leader dirties its data segment (so
		// every worker clones a real image), listens, and holds a
		// two-worker pool where each worker exits after two requests —
		// the classic max-requests-per-child churn. Creation is O(1) in
		// the image size: a worker's COW duplication is deferred to first
		// touch, and a worker that never touches the image unlinks for
		// free at exit.
		for i := 0; i < 16; i++ {
			c.Store32(irix.DataBase+irix.VAddr(i*irix.PageSize), uint32(i))
		}
		lfd, err := c.NetListen("quickstart")
		if err != nil {
			log.Fatal(err)
		}
		const conns, lifespan, pool = 8, 2, 2
		worker := func(w *irix.Ctx, _ int64) {
			buf := w.StackBase()
			for r := 0; r < lifespan; r++ {
				fd, err := w.NetAccept(lfd)
				if err != nil {
					log.Fatal(err)
				}
				w.Read(fd, buf, 4)
				w.Write(fd, buf, 4) // echo
				w.Close(fd)
			}
		}
		gens := conns / lifespan
		for i := 0; i < pool; i++ {
			if _, err := c.Sproc("worker", worker, irix.PRSFDS, 0); err != nil {
				log.Fatal(err)
			}
		}
		c.Fork("client", func(cc *irix.Ctx) {
			buf := cc.StackBase()
			for i := 0; i < conns; i++ {
				fd, err := cc.NetConnect("quickstart")
				if err != nil {
					log.Fatal(err)
				}
				cc.Store32(buf, uint32(i))
				cc.Write(fd, buf, 4)
				cc.Read(fd, buf, 4)
				cc.Close(fd)
			}
		})
		// Reap everything, refilling the pool until the generations run out.
		for spawned, reaped := pool, 0; reaped < gens+1; reaped++ {
			if _, _, err := c.Wait(); err != nil {
				log.Fatal(err)
			}
			if spawned < gens {
				if _, err := c.Sproc("worker", worker, irix.PRSFDS, 0); err != nil {
					log.Fatal(err)
				}
				spawned++
			}
		}
		fmt.Printf("prefork pool served %d connections through %d worker generations\n", conns, gens)
	})

	sys.WaitIdle()

	// The lazy-creation counters balance once everything has exited:
	// every O(1) clone was either materialized by a first touch or
	// dropped untouched at exit (DESIGN.md §16).
	st := sys.Stats()
	fmt.Printf("lazy creation: dups=%d = breaks=%d + drops=%d\n",
		st.LazyDups, st.LazyBreaks, st.LazyDrops)
}
