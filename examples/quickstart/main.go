// Quickstart: boot the simulated system, create a share group with
// sproc(2), and have the members cooperate through shared memory with
// busy-wait synchronization — the paper's basic programming model.
package main

import (
	"fmt"
	"log"

	irix "repro"
)

func main() {
	sys := irix.New(irix.Config{NCPU: 4})

	sys.Start("quickstart", func(c *irix.Ctx) {
		// Map eight pages of memory. Because the mapping happens before
		// the group is created, it is moved onto the shared pregion list
		// by the first sproc and every member sees it.
		shm, err := c.Mmap(8)
		if err != nil {
			log.Fatal(err)
		}
		lock := irix.Spinlock{VA: shm}  // the lock owns shm..shm+SyncBytes
		counter := shm + irix.SyncBytes // protected counter, past the lock
		lock.Init(c)

		// Create four members sharing everything. Each increments the
		// counter 1000 times under the user-level lock; no kernel calls
		// are needed on the synchronization fast path.
		const members, perMember = 4, 1000
		for i := 0; i < members; i++ {
			pid, err := c.Sproc("worker", func(w *irix.Ctx, arg int64) {
				for n := 0; n < perMember; n++ {
					lock.Lock(w)
					v, _ := w.Load32(counter)
					w.Store32(counter, v+1)
					lock.Unlock(w)
				}
			}, irix.PRSALL, int64(i))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("sproc'd worker pid %d\n", pid)
		}

		// Normal UNIX semantics are retained: wait(2) reaps members.
		for i := 0; i < members; i++ {
			if _, _, err := c.Wait(); err != nil {
				log.Fatal(err)
			}
		}
		v, _ := c.Load32(counter)
		fmt.Printf("counter = %d (want %d) — no lost updates through the shared space\n",
			v, members*perMember)

		// prctl reports the machine's parallelism, as the paper defines.
		fmt.Printf("PR_MAXPPROCS: the system can run %d processes in parallel\n", c.MaxPProcs())
	})

	sys.WaitIdle()
}
