// Parallel implements the paper's §3 parallel-programming model: a
// preallocated pool of share-group processes self-scheduling work from
// shared memory with busy-wait synchronization, computing π by the
// rectangle rule. "The scheduling model used in such applications is
// self-scheduling, in which an independent task waits for work to be
// queued, and competes for that work with other tasks."
package main

import (
	"fmt"
	"log"

	irix "repro"
)

const (
	workers    = 4
	rectangles = 4096
	chunk      = 64
	scale      = 1 << 28 // fixed-point scale for the accumulated sum
)

func main() {
	sys := irix.New(irix.Config{NCPU: 4})

	sys.Start("pi", func(c *irix.Ctx) {
		shm, err := c.Mmap(1)
		if err != nil {
			log.Fatal(err)
		}
		cursor := irix.Counter{VA: shm} // next chunk to claim
		acc := shm + 8                  // fixed-point sum of f(x_i)/N

		// Preallocate the pool before entering the parallel section, so
		// creation cost is off the critical path (paper §3).
		for w := 0; w < workers; w++ {
			if _, err := c.Sproc("pi-worker", worker(cursor, acc), irix.PRSALL, int64(w)); err != nil {
				log.Fatal(err)
			}
		}
		for w := 0; w < workers; w++ {
			if _, _, err := c.Wait(); err != nil {
				log.Fatal(err)
			}
		}

		sum, _ := c.Load32(acc)
		pi := float64(sum) / scale
		fmt.Printf("pi ≈ %.6f (%d rectangles, %d self-scheduling workers)\n", pi, rectangles, workers)

		// Show that the work really spread across the machine.
		fmt.Println("simulated CPU cycle distribution:")
		for _, cpu := range c.S.Machine.CPUs {
			fmt.Printf("  cpu%d: %12d cycles, %d context switches\n",
				cpu.ID, cpu.Cycles.Load(), cpu.Switches.Load())
		}
	})

	sys.WaitIdle()
}

// worker returns the pool member body: claim a chunk of rectangles from
// the shared cursor, integrate 4/(1+x²) over it, fold the fixed-point
// partial sum into the shared accumulator with the hardware interlock.
func worker(cursor irix.Counter, acc irix.VAddr) func(*irix.Ctx, int64) {
	return func(w *irix.Ctx, id int64) {
		scratch := w.StackBase() + 256 // private working storage
		for {
			n, err := cursor.Next(w)
			if err != nil {
				log.Fatalf("worker %d: %v", id, err)
			}
			first := (int(n) - 1) * chunk
			if first >= rectangles {
				return
			}
			var partial uint32
			for i := first; i < first+chunk && i < rectangles; i++ {
				x := (float64(i) + 0.5) / rectangles
				f := 4.0 / (1.0 + x*x)
				term := uint32(f * scale / rectangles)
				// Stage the term through simulated memory: the model's
				// work is memory traffic, not host floating point.
				if err := w.Store32(scratch, term); err != nil {
					log.Fatalf("worker %d store: %v", id, err)
				}
				v, _ := w.Load32(scratch)
				partial += v
			}
			if _, err := w.Add32(acc, partial); err != nil {
				log.Fatalf("worker %d add: %v", id, err)
			}
		}
	}
}
