// Asyncio implements the paper's §4 example: "a user-level asynchronous
// I/O scheme could be implemented by sharing the memory and file
// descriptors. High level I/O calls are translated into an equivalent call
// in a child shared process, which performs the I/O directly from the
// original buffer and then signals the parent."
//
// The parent enqueues write requests into a shared-memory ring; the I/O
// child picks them up, performs the write(2) on the *shared descriptor*
// directly from the original buffer address, and raises a completion flag.
// The parent overlaps "computation" with the I/O.
package main

import (
	"fmt"
	"log"

	irix "repro"
)

// Request slot layout in shared memory (one cache-line-ish stride):
//
//	+0  state: 0 free, 1 submitted, 2 complete
//	+4  fd
//	+8  buffer address (in the shared space!)
//	+12 length
const (
	slotState = 0
	slotFd    = 4
	slotBuf   = 8
	slotLen   = 12
	slotSize  = 64
	nslots    = 4
)

func main() {
	sys := irix.New(irix.Config{NCPU: 2})

	sys.Start("asyncio", func(c *irix.Ctx) {
		ring, err := c.Mmap(16) // request ring + data buffers + control words
		if err != nil {
			log.Fatal(err)
		}
		bufArea := ring + nslots*slotSize

		fd, err := c.Open("/journal", irix.ORead|irix.OWrite|irix.OCreat, 0o644)
		if err != nil {
			log.Fatal(err)
		}

		// The I/O worker: shares address space AND descriptors, so the
		// fd number and the buffer address it reads from the ring are
		// directly usable. A monotonic doorbell word wakes it from its
		// cache spin without races.
		ctl := ring + nslots*slotSize + 32*1024
		doorbell, stop := irix.Word{VA: ctl}, ctl+4
		c.Sproc("io-worker", func(w *irix.Ctx, _ int64) {
			var seen uint32
			for {
				served := false
				for s := 0; s < nslots; s++ {
					slot := ring + irix.VAddr(s*slotSize)
					st, _ := w.Load32(slot + slotState)
					if st != 1 {
						continue
					}
					served = true
					rfd, _ := w.Load32(slot + slotFd)
					buf, _ := w.Load32(slot + slotBuf)
					n, _ := w.Load32(slot + slotLen)
					// The I/O happens directly from the original buffer.
					if _, err := w.Write(int(rfd), irix.VAddr(buf), int(n)); err != nil {
						log.Fatalf("io-worker write: %v", err)
					}
					w.Store32(slot+slotState, 2) // completion "signal"
				}
				if v, _ := w.Load32(stop); v == 1 {
					return
				}
				if !served {
					v, _ := doorbell.AwaitNe(w, seen)
					seen = v
				}
			}
		}, irix.PRSADDR|irix.PRSFDS, 0)

		// Submit eight asynchronous writes, overlapping with "compute".
		submitted := 0
		for i := 0; i < 8; i++ {
			// Find a free slot (completions free slots as we go).
			var slot irix.VAddr
			for {
				found := false
				for s := 0; s < nslots; s++ {
					cand := ring + irix.VAddr(s*slotSize)
					if st, _ := c.Load32(cand + slotState); st != 1 {
						if st == 2 {
							fmt.Printf("  completion harvested from slot %d\n", s)
						}
						slot, found = cand, true
						break
					}
				}
				if found {
					break
				}
			}
			msg := fmt.Sprintf("async record %d\n", i)
			buf := bufArea + irix.VAddr(i*64)
			c.StoreBytes(buf, []byte(msg))
			c.Store32(slot+slotFd, uint32(fd))
			c.Store32(slot+slotBuf, uint32(buf))
			c.Store32(slot+slotLen, uint32(len(msg)))
			c.Store32(slot+slotState, 1)
			doorbell.Add(c, 1) // ring the worker
			submitted++

			// Overlapped computation.
			for k := 0; k < 500; k++ {
				c.Store32(bufArea+16*1024, uint32(k))
			}
		}

		// Drain: wait until every slot is free or complete.
		for s := 0; s < nslots; s++ {
			slot := ring + irix.VAddr(s*slotSize)
			irix.Word{VA: slot + slotState}.AwaitNe(c, 1)
		}
		c.Store32(stop, 1)
		doorbell.Add(c, 1)
		c.Wait()

		st, _ := c.Stat("/journal")
		fmt.Printf("submitted %d async writes; /journal is %d bytes\n", submitted, st.Size)
		c.Lseek(fd, 0, irix.SeekSet)
		contents, _ := c.ReadString(fd, bufArea+20*1024, int(st.Size))
		fmt.Printf("journal contents:\n%s", contents)
	})

	sys.WaitIdle()
}
