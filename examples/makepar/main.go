// Makepar is a parallel, dependency-driven job scheduler — the "simple yet
// powerful applications which use multiple processes" the paper's
// conclusion promises. A build-like DAG of jobs is placed in shared
// memory; a pool of share-group workers claims ready jobs with the
// hardware interlock, "executes" them (writing their artifact through the
// shared descriptor table), and retires their dependents. Everything —
// job states, the ready count, the log descriptor, the working directory —
// is coordinated through share-group resources.
package main

import (
	"fmt"
	"log"

	irix "repro"
)

// Job table entry layout in shared memory.
const (
	jobState = 0  // 0 pending, 1 ready, 2 claimed, 3 done
	jobDeps  = 4  // remaining dependency count
	jobSize  = 32 // stride
)

// The DAG: a classic build shape.
//
//	0:parse  1:lex          (no deps)
//	2:ast  <- parse,lex
//	3:opt  <- ast
//	4:gen  <- ast
//	5:link <- opt,gen
//	6:test <- link
var deps = [][]int{
	{}, {}, {0, 1}, {2}, {2}, {3, 4}, {5},
}

var names = []string{"parse", "lex", "ast", "opt", "gen", "link", "test"}

const workers = 3

func main() {
	sys := irix.New(irix.Config{NCPU: 4})

	sys.Start("makepar", func(c *irix.Ctx) {
		tbl, err := c.Mmap(1)
		if err != nil {
			log.Fatal(err)
		}
		doneCount := irix.Word{VA: tbl + irix.VAddr(len(deps)*jobSize)}

		// Build the shared job table: dependency counts; roots are ready.
		for j, dl := range deps {
			slot := tbl + irix.VAddr(j*jobSize)
			c.Store32(slot+jobDeps, uint32(len(dl)))
			if len(dl) == 0 {
				c.Store32(slot+jobState, 1)
			}
		}

		// A shared build log: workers append through the same offset.
		c.Mkdir("/build", 0o755)
		c.Chdir("/build") // propagates: workers inherit and share cwd
		logFd, err := c.Open("log", irix.ORead|irix.OWrite|irix.OCreat|irix.OAppend, 0o644)
		if err != nil {
			log.Fatal(err)
		}

		for w := 0; w < workers; w++ {
			c.Sproc("builder", func(wc *irix.Ctx, id int64) {
				for {
					n, _ := doneCount.Load(wc)
					if n == uint32(len(deps)) {
						return
					}
					claimed := -1
					for j := range deps {
						slot := tbl + irix.VAddr(j*jobSize)
						if ok, _ := wc.CAS32(slot+jobState, 1, 2); ok {
							claimed = j
							break
						}
					}
					if claimed < 0 {
						// Nothing ready: spin on the done counter.
						doneCount.AwaitNe(wc, n)
						continue
					}
					runJob(wc, id, claimed, logFd)
					// Retire: mark done, decrement dependents, publish.
					slot := tbl + irix.VAddr(claimed*jobSize)
					wc.Store32(slot+jobState, 3)
					for k, dl := range deps {
						for _, d := range dl {
							if d != claimed {
								continue
							}
							kslot := tbl + irix.VAddr(k*jobSize)
							if left, _ := wc.Add32(kslot+jobDeps, ^uint32(0)); left == 0 {
								wc.Store32(kslot+jobState, 1)
							}
						}
					}
					doneCount.Add(wc, 1)
				}
			}, irix.PRSADDR|irix.PRSFDS|irix.PRSDIR, int64(w))
		}

		for w := 0; w < workers; w++ {
			if _, _, err := c.Wait(); err != nil {
				log.Fatal(err)
			}
		}

		// Show the build products and the interleaved log.
		fmt.Println("artifacts in /build:")
		for _, n := range names {
			st, err := c.Stat(n + ".o")
			if err != nil {
				log.Fatalf("missing artifact %s.o", n)
			}
			fmt.Printf("  %-8s %d bytes\n", n+".o", st.Size)
		}
		st, _ := c.Stat("log")
		c.Lseek(logFd, 0, irix.SeekSet)
		text, _ := c.ReadString(logFd, tbl+2048, int(st.Size))
		fmt.Printf("build log (%d bytes):\n%s", st.Size, text)
	})

	sys.WaitIdle()
}

// runJob "builds" one target: it writes the artifact file (relative to the
// group's shared cwd) and appends a line to the shared log.
func runJob(wc *irix.Ctx, worker int64, j int, logFd int) {
	buf := wc.StackBase() + 512
	art, err := wc.Open(names[j]+".o", irix.OWrite|irix.OCreat, 0o644)
	if err != nil {
		log.Fatalf("worker %d: open artifact: %v", worker, err)
	}
	payload := fmt.Sprintf("object code for %s", names[j])
	if _, err := wc.WriteString(art, buf, payload); err != nil {
		log.Fatalf("worker %d: write: %v", worker, err)
	}
	wc.Close(art)
	wc.WriteString(logFd, buf+256, fmt.Sprintf("worker %d built %s\n", worker, names[j]))
}
