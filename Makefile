GO ?= go

# Tier-1 gate: the whole tree must build, pass lint, every test must pass,
# and the seeded chaos soak must hold the conservation invariants.
.PHONY: tier1
tier1: lint
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -short -run 'Chaos' -count=1 ./internal/workload/
	$(GO) test -race -short -run 'FaultStorm|COWBreak|StormRace' -count=1 ./internal/vm/ ./internal/workload/ ./internal/uspin/ ./internal/ipc/

# Chaos: the full seeded fault-injection soak (deterministic per seed).
.PHONY: chaos
chaos:
	$(GO) test -run 'Chaos' -count=1 -v ./internal/workload/
	$(GO) test -run 'TestFault|TestRestart' -count=1 -v ./internal/kernel/

# Lint: vet, plus three structural invariants — every syscall must
# dispatch through the descriptor table (never hand-rolled kernel-entry
# pairs), exhaustion must surface as an errno, never a kernel panic
# (panic is reserved for the exit/exec control-flow unwinds), and the
# resident-fault fast path must stay lock-free.
.PHONY: lint
lint: lint-pregion lint-prctl lint-lazydup lint-ckpt
	$(GO) vet ./...
	@if grep -nE '\.Lock\(\)|\.RLock\(\)|\.Unlock\(\)|\bsync\.' internal/vm/fillfast.go; then \
		echo "lint: fillfast.go is the lock-free fault fast path — no mutex or sync primitive may appear there (slow cases belong in region.go)" >&2; \
		exit 1; \
	fi
	@if grep -nE 'EnterKernel|ExitKernel' internal/kernel/syscalls_*.go; then \
		echo "lint: syscalls_*.go must go through the gateway (invoke/invoke0/invoke1), not EnterKernel/ExitKernel" >&2; \
		exit 1; \
	fi
	@if grep -nE 'panic\(' internal/kernel/syscalls_*.go | grep -vE 'panic\(process(Exit|Exec)\{'; then \
		echo "lint: syscalls_*.go must return *SysError on exhaustion, not panic (only processExit/processExec unwinds may panic)" >&2; \
		exit 1; \
	fi
	@for d in sysBlockproc sysUnblockproc sysSetblockproccnt; do \
		if ! grep -q "$$d" internal/kernel/systab.go; then \
			echo "lint: $$d missing from the systab descriptor table — the sleep-wake calls must dispatch through the gateway" >&2; \
			exit 1; \
		fi; \
	done
	@if grep -rnE '\.SpinWait32\(|\.SpinWaitBounded\(' --include='*.go' . | grep -vE '^\./(internal/uspin/|internal/kernel/)'; then \
		echo "lint: raw SpinWait32/SpinWaitBounded outside internal/uspin and internal/kernel — user code must spin through the uspin primitives (interruptible, spin-then-block)" >&2; \
		exit 1; \
	fi
	@for s in $$(grep -oE '^	Sys[A-Z][A-Za-z0-9]*' internal/kernel/systab.go); do \
		if ! grep -q "sysDesc{$$s," internal/kernel/systab.go; then \
			echo "lint: $$s has no sysDesc descriptor in systab.go — every syscall number must have a table entry (name, class, charge, flags) or the gateway cannot dispatch or account it" >&2; \
			exit 1; \
		fi; \
	done
	@if grep -rnE '\bsleepOn\(|\bevQueue\b|\.sleepers\b' --include='*.go' internal/ cmd/ examples/ *.go | grep -v '^internal/ipc/'; then \
		echo "lint: stream sleep-wake outside internal/ipc — blocking and readiness go through the evQueue protocol (waitOn/wake/baton); other layers consume fs.Pollable or the poll(2) syscall" >&2; \
		exit 1; \
	fi

# lint-pregion: pregion lists are an ordered interval index maintained by
# internal/vm (sorted by base, binary-searched). Kernel-side code must go
# through the vm API — Find/Overlaps/Insert/Remove/DupList/MergeLists/
# Partition/TotalPages — never walk a pregion slice linearly, or the O(n)
# scan the index removed silently comes back. Display tools under cmd/ may
# enumerate for output; lookup paths live in internal/.
.PHONY: lint-pregion
lint-pregion:
	@if grep -rnE 'range [a-zA-Z_.]*(Private\b|\.regions\b|RegionList\()' --include='*.go' internal/ | grep -v '^internal/vm/' | grep -v '_test.go'; then \
		echo "lint: linear scan over a pregion slice outside internal/vm — use the vm index API (Find/Overlaps/Insert/Remove/DupList/MergeLists/Partition/TotalPages)" >&2; \
		exit 1; \
	fi
	@if awk '/^func dupList/,/^}/' internal/vm/pregion.go | grep -nE '\bappend\('; then \
		echo "lint: bare append in the dupList body — the child image index is rebuilt through Insert so it stays ordered" >&2; \
		exit 1; \
	fi

# lint-lazydup: the O(1) creation protocol (DESIGN.md §16) keeps its
# moving parts in fixed places. The deferred duplication walk lives in
# internal/vm — kernel code clones whole images through DupListFlush /
# DupListEager, never region-by-region with DupLazy. Batched frame
# reservations are taken only by the spawn path in internal/kernel (and
# implemented in internal/hw), so no other layer can mint prepaid quota.
# And every lazy-creation counter must stay wired into the kernel Stats
# snapshot, so the observability surface cannot silently rot.
.PHONY: lint-lazydup
lint-lazydup:
	@if grep -rnE '\.DupLazy\(' --include='*.go' internal/ cmd/ examples/ *.go 2>/dev/null | grep -v '^internal/vm/'; then \
		echo "lint: DupLazy outside internal/vm — kernel code duplicates images through vm.DupListFlush/DupListEager" >&2; \
		exit 1; \
	fi
	@if grep -rnE '\.Reserve\(' --include='*.go' internal/ cmd/ examples/ *.go 2>/dev/null | grep -vE '^internal/(hw|kernel)/'; then \
		echo "lint: FrameAcct.Reserve outside internal/hw and internal/kernel — batched reservations belong to the spawn path" >&2; \
		exit 1; \
	fi
	@for ctr in LazyDups LazyBreaks LazyDrops LazyBreakPages SpawnReserved; do \
		if ! grep -q "$$ctr" internal/kernel/stats.go; then \
			echo "lint: $$ctr missing from the kernel Stats snapshot — the lazy-creation counters must stay observable" >&2; \
			exit 1; \
		fi; \
	done

# lint-ckpt: a checkpoint image is content-level state (DESIGN.md §17),
# and two fences keep it that way. internal/ckpt stays a leaf package —
# no repro/ imports, so it can never see a PTE word, a frame number, or
# kernel state, and image determinism cannot come to depend on frame
# placement. And the kernel's checkpoint/restore code serializes memory
# only through the vm page API (TrackDirty/TakeDirty/ReadPage/Fill...),
# never through raw PTE slots or the pte* encoding helpers, so the image
# format survives PTE-format changes. The checkpoint counters must also
# stay wired into the kernel Stats snapshot.
.PHONY: lint-ckpt
lint-ckpt:
	@if grep -nE '"repro(/|")' internal/ckpt/*.go; then \
		echo "lint: internal/ckpt must stay a leaf serialization layer — no repro/ imports (the kernel hands it plain bytes through the vm page-read API)" >&2; \
		exit 1; \
	fi
	@if grep -nE '\.slots\b|\bpte[A-Z]' internal/kernel/syscalls_ckpt.go; then \
		echo "lint: syscalls_ckpt.go touches raw PTE state — checkpoint serialization goes through the vm API (TrackDirty/TakeDirty/ReadPage/FillAccounted), never PTE words" >&2; \
		exit 1; \
	fi
	@for ctr in Ckpts CkptPasses CkptPrePages CkptSTWPages CkptSTWCycles CkptImageBytes Restores; do \
		if ! grep -q "$$ctr" internal/kernel/stats.go; then \
			echo "lint: $$ctr missing from the kernel Stats snapshot — the checkpoint counters must stay observable" >&2; \
			exit 1; \
		fi; \
	done

# lint-prctl: the raw prctl(2) option/int64 surface is a compatibility
# shim. Everything outside internal/kernel (where the typed wrappers —
# MaxProcs, SetStackSize, SetGang, Setshares(GroupLimits), Getusage —
# and the shim itself live) must use the typed calls, so the untyped
# options cannot creep back into new code.
.PHONY: lint-prctl
lint-prctl:
	@if grep -rnE '\.Prctl\(' --include='*.go' internal/ cmd/ examples/ *.go 2>/dev/null | grep -v '^internal/kernel/'; then \
		echo "lint: raw Prctl call outside internal/kernel — use the typed wrappers (MaxProcs, SetStackSize, SetGang, SetGroupPrio, Setshares, Getusage)" >&2; \
		exit 1; \
	fi

.PHONY: vet
vet:
	$(GO) vet ./...

# Race-detector pass over the de-serialized MP substrates and everything
# that drives them; slower than tier1 but catches sharding bugs.
.PHONY: race
race:
	$(GO) test -race ./internal/hw/... ./internal/vm/... ./internal/klock/... ./internal/core/... ./internal/sched/... ./internal/trace/... ./internal/workload/... ./internal/kernel/... ./internal/uspin/... ./internal/ipc/... ./internal/fs/...

.PHONY: bench
bench:
	$(GO) test -run xxx -bench . -benchtime 100x .

.PHONY: tables
tables:
	$(GO) run ./cmd/benchtab -quick
