GO ?= go

# Tier-1 gate: the whole tree must build, pass lint, and every test must pass.
.PHONY: tier1
tier1: lint
	$(GO) build ./...
	$(GO) test ./...

# Lint: vet, plus the gateway invariant — the syscall layer must dispatch
# every call through the descriptor table, never through hand-rolled
# kernel-entry pairs.
.PHONY: lint
lint:
	$(GO) vet ./...
	@if grep -nE 'EnterKernel|ExitKernel' internal/kernel/syscalls_*.go; then \
		echo "lint: syscalls_*.go must go through the gateway (invoke/invoke0/invoke1), not EnterKernel/ExitKernel" >&2; \
		exit 1; \
	fi

.PHONY: vet
vet:
	$(GO) vet ./...

# Race-detector pass over the de-serialized MP substrates and everything
# that drives them; slower than tier1 but catches sharding bugs.
.PHONY: race
race:
	$(GO) test -race ./internal/hw/... ./internal/sched/... ./internal/trace/... ./internal/workload/... ./internal/kernel/...

.PHONY: bench
bench:
	$(GO) test -run xxx -bench . -benchtime 100x .

.PHONY: tables
tables:
	$(GO) run ./cmd/benchtab -quick
