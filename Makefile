GO ?= go

# Tier-1 gate: the whole tree must build and every test must pass.
.PHONY: tier1
tier1:
	$(GO) build ./...
	$(GO) test ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# Race-detector pass over the de-serialized MP substrates and everything
# that drives them; slower than tier1 but catches sharding bugs.
.PHONY: race
race:
	$(GO) test -race ./internal/hw/... ./internal/sched/... ./internal/trace/... ./internal/workload/... ./internal/kernel/...

.PHONY: bench
bench:
	$(GO) test -run xxx -bench . -benchtime 100x .

.PHONY: tables
tables:
	$(GO) run ./cmd/benchtab -quick
