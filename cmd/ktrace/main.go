// Command ktrace boots the simulated system with the kernel event ring
// enabled, runs a representative share-group workload (creation, shared
// faults, attribute propagation, a region shrink with its shootdown, a
// signal), and prints the trace — the observability view of the mechanisms
// the paper describes.
package main

import (
	"fmt"

	irix "repro"
	"repro/internal/kernel"
	"repro/internal/trace"
)

func main() {
	sys := irix.New(irix.Config{NCPU: 4, TraceEvents: 4096})

	sys.Start("traced", func(c *irix.Ctx) {
		shm, _ := c.Mmap(4)
		done := shm + 8
		// Two members: one faults pages in, one updates shared attributes.
		c.Sproc("faulter", func(w *irix.Ctx, _ int64) {
			for i := 0; i < 3; i++ {
				w.Store32(shm+irix.VAddr(i*irix.PageSize), 1)
			}
			w.Add32(done, 1)
		}, irix.PRSALL, 0)
		c.Sproc("updater", func(w *irix.Ctx, _ int64) {
			w.Umask(0o027)
			w.Add32(done, 1)
		}, irix.PRSALL, 0)
		c.SpinWait32(done, func(v uint32) bool { return v == 2 })
		c.Getpid() // reconcile the umask update (EvSync)
		c.Wait()
		c.Wait()

		// A shrink: update lock + machine-wide shootdown.
		c.Sbrk(irix.PageSize)
		c.Sbrk(-irix.PageSize)

		// A signal to a forked child.
		pid, _ := c.Fork("victim", func(w *irix.Ctx) { w.Pause() })
		c.Kill(pid, irix.SIGTERM)
		c.Wait()
	})
	sys.WaitIdle()

	events, dropped := sys.Machine.Trace.Snapshot()
	fmt.Printf("kernel trace: %d events (%d dropped)\n", len(events), dropped)
	for _, e := range events {
		// Syscall spans carry the syscall number (and, on exit, the errno);
		// render them symbolically instead of as raw payload words.
		switch e.Kind {
		case trace.EvSyscallEnter:
			fmt.Printf("  #%d %-9s pid=%-3d cpu=%-2d %s\n",
				e.Seq, e.Kind, e.PID, e.CPU, kernel.SysName(kernel.Sysno(e.Arg)))
		case trace.EvSyscallExit:
			fmt.Printf("  #%d %-9s pid=%-3d cpu=%-2d %s = %s\n",
				e.Seq, e.Kind, e.PID, e.CPU, kernel.SysName(kernel.Sysno(e.Arg)), kernel.Errno(e.Aux))
		default:
			fmt.Println(" ", e)
		}
	}
	fmt.Println("\nsummary:")
	for _, k := range []trace.Kind{
		trace.EvCreate, trace.EvExit, trace.EvDispatch, trace.EvPreempt,
		trace.EvFault, trace.EvShootdown, trace.EvSignal, trace.EvSync,
		trace.EvSyscallEnter, trace.EvSyscallExit,
	} {
		fmt.Printf("  %-10s %d\n", k, sys.Machine.Trace.CountKind(k))
	}

	fmt.Println("\nper-CPU ring shards (drops to wrap-around):")
	drops := sys.Machine.Trace.DropsByCPU()
	for i, d := range drops {
		label := fmt.Sprintf("cpu%d", i)
		if i == len(drops)-1 {
			label = "overflow" // events recorded without a CPU context
		}
		fmt.Printf("  %-10s %d dropped\n", label, d)
	}
	st := sys.Stats()
	fmt.Printf("\nscheduler: dispatches=%d local=%d steals=%d preemptions=%d\n",
		st.Dispatches, st.LocalPicks, st.Steals, st.Preemptions)
	fmt.Printf("frames:    allocs=%d frees=%d cache-hits=%d refills=%d drains=%d\n",
		st.FrameAllocs, st.FrameFrees, st.CacheHits, st.CacheRefills, st.CacheDrains)
}
